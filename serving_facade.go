package seqpoint

import (
	"seqpoint/internal/serving"
	"seqpoint/internal/stats"
)

// Online serving simulation (internal/serving): a deterministic
// discrete-event simulator of load-dependent inference serving on top
// of the same analytical cost model. Requests arrive over time
// (Poisson, burst, or a replayed trace), a batching policy groups
// them, a single-queue server prices each batch through the engine's
// profile cache, and per-request metrics roll up to throughput,
// utilization and p50/p95/p99 latency. This is the regime where the
// paper's sequence-length observation bites hardest: with pad-to-max
// batching, the longest request in a batch sets the whole batch's
// cost, so the arrival stream's SL skew shapes the latency tail.
type (
	// ServingRequest is one inference request of an arrival trace.
	ServingRequest = serving.Request
	// ServingTrace is an arrival-ordered request sequence.
	ServingTrace = serving.Trace
	// ServingSpec describes one online-serving simulation.
	ServingSpec = serving.Spec
	// ServingResult is a serving simulation's full outcome.
	ServingResult = serving.Result
	// ServingSummary is the deterministic serving roll-up (the unit of
	// the serving golden tests).
	ServingSummary = serving.Summary
	// ServingMetric is one request's realized timeline.
	ServingMetric = serving.RequestMetric
	// BatchPolicy decides when the server launches a batch and which
	// queued requests it groups.
	BatchPolicy = serving.Policy
	// BatchDecision is a policy's verdict at one decision instant.
	BatchDecision = serving.Decision
)

// Fleet simulation (internal/serving): the multi-replica
// generalization of the single-queue serving simulator. N replicas —
// optionally heterogeneous via per-replica ClusterConfig — sit behind
// a routing policy (round-robin, least-outstanding,
// join-shortest-queue, power-of-two-choices), bounded per-replica
// queues reject overload as typed drops, and an optional reactive
// autoscaler grows and shrinks the live fleet on queue depth, with
// replica-seconds as the cost proxy. A 1-replica round-robin fleet
// reproduces SimulateServing byte-for-byte (FleetResult.AsServing).
type (
	// FleetSpec describes one multi-replica serving simulation.
	// Parallelism > 1 advances independent replicas concurrently
	// between routing barriers — purely a speed knob; the result is
	// byte-identical to the serial default.
	FleetSpec = serving.FleetSpec
	// FleetResult is a fleet simulation's full outcome.
	FleetResult = serving.FleetResult
	// FleetSummary is the deterministic fleet roll-up (the unit of the
	// fleet golden tests).
	FleetSummary = serving.FleetSummary
	// FleetReplicaStats is one replica's share of a fleet run.
	FleetReplicaStats = serving.ReplicaStats
	// FleetRejection records one request refused by admission control.
	FleetRejection = serving.Rejection
	// FleetAutoscale configures the reactive queue-depth autoscaler.
	FleetAutoscale = serving.AutoscaleConfig
	// FleetRouter assigns each arriving request to a replica.
	FleetRouter = serving.Router
	// FleetReplicaView is the router-visible state of one replica.
	FleetReplicaView = serving.ReplicaView
)

var (
	// SimulateFleet runs a multi-replica serving simulation.
	SimulateFleet = serving.SimulateFleet
	// NewRoundRobin, NewLeastOutstanding, NewJSQ, NewPowerOfTwo and
	// NewKVRouter build the five bundled routing policies.
	NewRoundRobin       = serving.NewRoundRobin
	NewLeastOutstanding = serving.NewLeastOutstanding
	NewJSQ              = serving.NewJSQ
	NewPowerOfTwo       = serving.NewPowerOfTwo
	NewKVRouter         = serving.NewKVRouter
	// ParseRouting maps a CLI/HTTP routing spelling ("rr", "least",
	// "jsq", "po2", "kv") to a router.
	ParseRouting = serving.ParseRouting
)

// Memory-aware serving (internal/serving): the KV-cache capacity model.
// With KVCacheConfig set on a spec, requests are a prefill over their
// input followed by decode steps, the replica holds cache bytes per
// in-flight token against a capacity ceiling, over-capacity picks
// preempt (evict-and-recompute or block into waves), and summaries gain
// time-to-first-token percentiles alongside end-to-end latency. A fleet
// can additionally split into prefill/decode pools joined by a handoff
// queue (FleetDisagg) and route on cache pressure (NewKVRouter).
type (
	// KVCacheConfig enables the per-replica KV-cache capacity model.
	KVCacheConfig = serving.KVConfig
	// KVCacheStats is the cache model's roll-up of one run.
	KVCacheStats = serving.KVRunStats
	// FleetDisagg splits a fleet into prefill and decode pools.
	FleetDisagg = serving.DisaggConfig
)

// KV-model spellings: preemption policies and the cache-pressure router.
const (
	// KVPreemptEvict launches the maximal fitting prefix of a batch and
	// returns the displaced requests to the queue front.
	KVPreemptEvict = serving.PreemptEvict
	// KVPreemptBlock serves an over-capacity batch as consecutive
	// capacity-bounded waves within one busy period.
	KVPreemptBlock = serving.PreemptBlock
	// RoutingKV is the ParseRouting spelling of the least-cache-pressure
	// router.
	RoutingKV = serving.RoutingKV
)

// Workload generation and trace replay (internal/workload, via the
// serving wrappers): a production-shaped multi-tenant arrival
// generator — diurnal rate modulation, weighted cohort mixes,
// Zipf-skewed tenant popularity, bulk-submission clumps — plus a
// versioned JSON-lines trace file format, so the same recorded
// arrivals replay byte-identically through serving, fleet and planner
// runs. Tenanted traces roll up per-tenant latency tails (TenantStats)
// and can be batched tenant-aware (NewWFQBatch) so a clumping bulk
// tenant cannot starve sparse interactive ones.
type (
	// WorkloadGenSpec describes one generated multi-tenant workload.
	WorkloadGenSpec = serving.GenSpec
	// WorkloadCohort is one tenant class of a generated workload.
	WorkloadCohort = serving.Cohort
	// WorkloadPattern shapes the generated arrival rate over time.
	WorkloadPattern = serving.Pattern
	// TenantStats is one tenant's slice of a serving or fleet roll-up.
	TenantStats = serving.TenantStats
)

// Arrival-pattern spellings for WorkloadPattern.Kind.
const (
	// PatternUniform is a homogeneous Poisson process.
	PatternUniform = serving.PatternUniform
	// PatternDiurnal modulates the arrival rate sinusoidally.
	PatternDiurnal = serving.PatternDiurnal
	// TraceFileVersion is the trace file format version WriteTrace
	// emits and ReadTrace accepts.
	TraceFileVersion = serving.TraceFileVersion
)

var (
	// GenerateTrace produces a multi-tenant trace from a
	// WorkloadGenSpec, deterministic at any parallelism.
	GenerateTrace = serving.Generate
	// WriteTrace and ReadTrace stream the versioned JSON-lines trace
	// format; SaveTrace and LoadTrace are their file-path forms
	// (SaveTrace writes atomically via temp-and-rename).
	WriteTrace = serving.WriteTrace
	ReadTrace  = serving.ReadTrace
	SaveTrace  = serving.SaveTrace
	LoadTrace  = serving.LoadTrace
	// NewWFQBatch builds the tenant-aware weighted-fair batching
	// policy: dynamic-style gating with a per-tenant round-robin pick.
	NewWFQBatch = serving.NewWFQBatch
	// ErrBadTrace is the typed cause every trace-validation failure
	// wraps; match with errors.Is.
	ErrBadTrace = serving.ErrBadTrace
)

var (
	// SimulateServing runs an online-serving simulation.
	SimulateServing = serving.Simulate
	// PoissonTrace generates a seeded Poisson arrival trace with
	// request lengths drawn from a corpus.
	PoissonTrace = serving.PoissonTrace
	// BurstTrace generates a fully backlogged trace (every request at
	// time zero) — the capacity probe.
	BurstTrace = serving.BurstTrace
	// ReplayTrace builds a trace from explicit arrival offsets and
	// sequence lengths.
	ReplayTrace = serving.ReplayTrace
	// NewFixedBatch, NewDynamicBatch and NewLengthAware build the three
	// bundled batching policies: fixed-size FIFO, timeout-bounded
	// dynamic batching, and greedy length-aware grouping.
	NewFixedBatch   = serving.NewFixedBatch
	NewDynamicBatch = serving.NewDynamicBatch
	NewLengthAware  = serving.NewLengthAware
	// ParseBatchPolicy maps a CLI/HTTP policy spelling ("fixed",
	// "dynamic", "length") to a policy.
	ParseBatchPolicy = serving.ParsePolicy
	// Percentile is the nearest-rank percentile (p in [0,100]) the
	// serving roll-ups report latency tails with; Percentiles is the
	// bulk form that sorts once for several p values.
	Percentile  = stats.Percentile
	Percentiles = stats.Percentiles
)
