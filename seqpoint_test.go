package seqpoint_test

import (
	"math"
	"testing"

	"seqpoint"
)

// TestEndToEndWorkflow exercises the full public API the way the paper's
// methodology prescribes: simulate one epoch on the calibration config,
// select SeqPoints, profile only those iterations on another config, and
// project that config's total training time and throughput.
func TestEndToEndWorkflow(t *testing.T) {
	lengths := make([]int, 512)
	for i := range lengths {
		lengths[i] = 20 + (i*37)%160
	}
	corpus, err := seqpoint.Synthetic("e2e", lengths, 29)
	if err != nil {
		t.Fatal(err)
	}
	spec := seqpoint.Spec{
		Model:    seqpoint.NewDS2(),
		Train:    corpus,
		Batch:    32,
		Epochs:   1,
		Schedule: seqpoint.DS2Schedule(),
		Seed:     1,
	}
	cfgs := seqpoint.TableII()

	// Step 1: one epoch on config #1, logging per-SL runtimes.
	calib, err := seqpoint.Simulate(spec, cfgs[0])
	if err != nil {
		t.Fatal(err)
	}
	recs, err := seqpoint.RecordsFromRun(calib, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Steps 2-6: select SeqPoints.
	sel, err := seqpoint.Select(recs, seqpoint.Options{ErrorThresholdPct: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Points) == 0 {
		t.Fatal("no seqpoints")
	}
	if len(sel.Points) >= len(recs) {
		t.Errorf("selected %d of %d unique SLs; selection should compress", len(sel.Points), len(recs))
	}

	// Profile only the SeqPoint iterations on config #3 (the paper
	// executes just these per configuration).
	sim, err := seqpoint.NewSimulator(cfgs[2])
	if err != nil {
		t.Fatal(err)
	}
	timesBySL := make(map[int]float64, len(sel.Points))
	for _, p := range sel.Points {
		prof, err := seqpoint.ProfileIteration(sim, spec.Model, spec.Batch, p.SeqLen)
		if err != nil {
			t.Fatal(err)
		}
		timesBySL[p.SeqLen] = prof.TimeUS
	}

	// Project config #3's epoch time and compare with the full sim.
	proj, err := seqpoint.ProjectTotal(sel.Points, timesBySL)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := seqpoint.Simulate(spec, cfgs[2])
	if err != nil {
		t.Fatal(err)
	}
	errPct := math.Abs(proj-truth.TrainUS) / truth.TrainUS * 100
	if errPct > 2 {
		t.Errorf("cross-config projection error = %.2f%%, want <= 2%%", errPct)
	}

	// Throughput projection agrees with the simulated run's throughput.
	thr, err := seqpoint.ProjectThroughput(sel.Points, timesBySL, spec.Batch)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(thr-truth.Throughput()) / truth.Throughput(); rel > 0.02 {
		t.Errorf("throughput projection off by %.1f%%", rel*100)
	}
}

func TestIterTimesBySL(t *testing.T) {
	corpus, err := seqpoint.Synthetic("x", []int{10, 20, 30, 40, 10, 20, 30, 40}, 10)
	if err != nil {
		t.Fatal(err)
	}
	run, err := seqpoint.Simulate(seqpoint.Spec{
		Model:    seqpoint.NewDS2(),
		Train:    corpus,
		Batch:    4,
		Epochs:   1,
		Schedule: seqpoint.DS2Schedule(),
	}, seqpoint.VegaFE())
	if err != nil {
		t.Fatal(err)
	}
	times := seqpoint.IterTimesBySL(run)
	if len(times) != len(run.BySL) {
		t.Error("map size")
	}
	for sl, us := range times {
		if us != run.BySL[sl].TimeUS {
			t.Errorf("SL %d time mismatch", sl)
		}
	}
}

func TestBaselinesAccessible(t *testing.T) {
	recs := []seqpoint.SLRecord{
		{SeqLen: 10, Freq: 3, Stat: 100},
		{SeqLen: 20, Freq: 1, Stat: 150},
	}
	for name, fn := range map[string]func([]seqpoint.SLRecord) (seqpoint.Selection, error){
		"frequent": seqpoint.Frequent,
		"median":   seqpoint.Median,
		"worst":    seqpoint.Worst,
	} {
		sel, err := fn(recs)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if len(sel.Points) != 1 {
			t.Errorf("%s picked %d points", name, len(sel.Points))
		}
	}
	if _, err := seqpoint.SelectKMeans(recs, 2, 1); err != nil {
		t.Errorf("kmeans: %v", err)
	}
	if _, err := seqpoint.Prior([]int{10, 20}, map[int]float64{10: 1, 20: 2}, 0, 2); err != nil {
		t.Errorf("prior: %v", err)
	}
}

func TestPaperCorporaAccessible(t *testing.T) {
	if seqpoint.LibriSpeech100h(1).Size() != 28539 {
		t.Error("LibriSpeech-100h size")
	}
	if seqpoint.IWSLT15(1).Size() != 133317 {
		t.Error("IWSLT'15 size")
	}
	if len(seqpoint.TableII()) != 5 {
		t.Error("Table II configs")
	}
}
