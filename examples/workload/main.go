// Example workload generates a production-shaped multi-tenant arrival
// trace — three Zipf-skewed interactive chat tenants against one bulk
// tenant that submits in clumps, under a diurnal rate swing — records
// it through the versioned trace file format, and replays the loaded
// copy under FIFO and weighted-fair batching. Under FIFO the bulk
// clumps fill every batch and the sparse chat requests queue behind
// them; the wfq policy gives every queued tenant a slot per round and
// collapses the interactive tail at no throughput cost. Everything is
// seeded, so this prints the same numbers on every run.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"seqpoint"
)

const (
	requests = 512
	rate     = 60.0 // req/s of realized request volume
	batch    = 16
)

func main() {
	// Interactive tenants draw short sequences, the bulk tenant long
	// ones — the SL skew that makes pad-to-max batch costs uneven.
	short := make([]int, 24)
	for i := range short {
		short[i] = 4 + (i*5)%24
	}
	long := make([]int, 12)
	for i := range long {
		long[i] = 32 + (i*7)%28
	}

	// The bulk cohort emits 2x-batch clumps, so arrival events carry
	// far more than one request each; pace events accordingly, then
	// pin the realized request rate exactly with ScaleToRate.
	burst := 2 * batch
	reqsPerEvent := (8.0 + float64(burst)) / 9.0
	horizonUS := float64(requests) / rate * 1e6
	trace, err := seqpoint.GenerateTrace(seqpoint.WorkloadGenSpec{
		Name:       "workload-demo",
		Requests:   requests,
		RatePerSec: rate / reqsPerEvent,
		Seed:       7,
		Pattern: seqpoint.WorkloadPattern{
			Kind:      seqpoint.PatternDiurnal,
			PeriodUS:  horizonUS,
			Amplitude: 0.5,
		},
		Cohorts: []seqpoint.WorkloadCohort{
			{Class: "chat", Tenants: 3, Weight: 8, ZipfS: 1.1, SeqLens: short},
			{Class: "bulk", Tenants: 1, Weight: 1, SeqLens: long, Burst: burst},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	trace, err = trace.ScaleToRate(rate)
	if err != nil {
		log.Fatal(err)
	}

	// Record and replay: the versioned JSON-lines file round-trips the
	// trace losslessly, so the simulation below prices the loaded copy.
	dir, err := os.MkdirTemp("", "seqpoint-workload")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "arrivals.trace")
	if err := seqpoint.SaveTrace(path, trace); err != nil {
		log.Fatal(err)
	}
	replay, err := seqpoint.LoadTrace(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded %d requests from %d tenants (trace format v%d) and replayed them\n\n",
		len(replay.Requests), len(replay.Tenants()), seqpoint.TraceFileVersion)

	fifo, err := seqpoint.NewFixedBatch(batch)
	if err != nil {
		log.Fatal(err)
	}
	wfq, err := seqpoint.NewWFQBatch(batch, 25_000)
	if err != nil {
		log.Fatal(err)
	}

	p99 := make(map[string]map[string]float64)
	for _, policy := range []seqpoint.BatchPolicy{fifo, wfq} {
		res, err := seqpoint.SimulateServing(seqpoint.ServingSpec{
			Model:  seqpoint.NewGNMT(),
			Trace:  replay,
			Policy: policy,
		}, seqpoint.VegaFE())
		if err != nil {
			log.Fatal(err)
		}
		s := res.Summary()
		fmt.Printf("%s: %.1f req/s served\n", s.Policy, s.ThroughputRPS)
		fmt.Printf("  %-10s %10s %12s %12s\n", "tenant", "requests", "p50", "p99")
		tails := make(map[string]float64, len(s.PerTenant))
		for _, ts := range s.PerTenant {
			fmt.Printf("  %-10s %10d %10.1fms %10.1fms\n",
				ts.Tenant, ts.Requests, ts.P50LatencyUS/1e3, ts.P99LatencyUS/1e3)
			tails[ts.Tenant] = ts.P99LatencyUS
		}
		p99[s.Policy] = tails
		fmt.Println()
	}

	var fifoTails, wfqTails map[string]float64
	for name, tails := range p99 {
		if len(name) >= 3 && name[:3] == "wfq" {
			wfqTails = tails
		} else {
			fifoTails = tails
		}
	}
	fmt.Println("per-tenant p99 change under weighted-fair batching:")
	for _, tenant := range replay.Tenants() {
		delta := (wfqTails[tenant]/fifoTails[tenant] - 1) * 100
		fmt.Printf("  %-10s %+7.1f%%\n", tenant, delta)
	}
	fmt.Println("\nthe fair pick collapses the interactive tenants' tail without costing the")
	fmt.Println("bulk tenant: batches still fill every round, so aggregate throughput is")
	fmt.Println("unchanged — only who gets the next slot changes.")
}
