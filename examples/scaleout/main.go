// scaleout projects multi-GPU data-parallel training cost the SeqPoint
// way: simulate one epoch on a single GPU, select SeqPoints there, then
// price clusters of 2/4/8 GPUs from per-SL step times alone — shard
// compute plus an analytical ring all-reduce of the gradient bytes —
// and compare the projection against the full cluster simulation.
//
// Run with: go run ./examples/scaleout
package main

import (
	"fmt"
	"log"
	"math"

	"seqpoint"
)

func main() {
	// A subset of the synthetic IWSLT'15 keeps the demo quick.
	train := seqpoint.Subsample(seqpoint.IWSLT15(1), 4096, 1)
	spec := seqpoint.Spec{
		Model:    seqpoint.NewGNMT(),
		Train:    train,
		Batch:    64,
		Epochs:   1,
		Schedule: seqpoint.GNMTSchedule(),
		Seed:     1,
	}
	cfg := seqpoint.VegaFE()

	// Calibration: one epoch on a single GPU, SeqPoints selected there.
	calib, err := seqpoint.Simulate(spec, cfg)
	if err != nil {
		log.Fatal(err)
	}
	recs, err := seqpoint.RecordsFromRun(calib, 0)
	if err != nil {
		log.Fatal(err)
	}
	sel, err := seqpoint.Select(recs, seqpoint.Options{})
	if err != nil {
		log.Fatal(err)
	}
	grad := float64(spec.Model.ParamCount()) * 4
	fmt.Printf("GNMT: %d unique SLs -> %d SeqPoints; gradient %d MB/step\n",
		len(recs), len(sel.Points), int(grad/1e6))
	fmt.Printf("ring all-reduce of that gradient on 8 GPUs @ 25 GB/s: %.1f ms\n\n",
		seqpoint.RingAllReduce(8, grad, 25, 1.5)/1e3)

	fmt.Println("gpus  samples/s  efficiency  proj error")
	base := calib.Throughput()
	fmt.Printf("%4d  %9.1f  %9.1f%%  %9s\n", 1, base, 100.0, "-")

	for _, gpus := range []int{2, 4, 8} {
		cluster := seqpoint.DefaultCluster(gpus)
		run, err := seqpoint.SimulateCluster(spec, cfg, cluster)
		if err != nil {
			log.Fatal(err)
		}

		// Equation 1 on the cluster: the calibration SeqPoints weighted
		// by this cluster's per-SL step times.
		proj, err := seqpoint.ProjectTotal(sel.Points, seqpoint.IterTimesBySL(run))
		if err != nil {
			log.Fatal(err)
		}
		actual := run.TrainUS
		errPct := math.Abs(proj-actual) / actual * 100

		eff := run.Throughput() / base / float64(gpus) * 100
		fmt.Printf("%4d  %9.1f  %9.1f%%  %8.2f%%\n", gpus, run.Throughput(), eff, errPct)
	}
}
