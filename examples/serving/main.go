// Example serving simulates online inference serving of GNMT under
// three batching policies at the same arrival rate, showing how the
// policy choice trades mean latency against the p99 tail — and how the
// length-aware batcher exploits the sequence-length histogram to cut
// padding waste.
package main

import (
	"fmt"
	"log"

	"seqpoint"
)

func main() {
	// A small IWSLT-shaped corpus keeps the demo fast; request lengths
	// are drawn from it uniformly.
	corpus := seqpoint.Subsample(seqpoint.IWSLT15(1), 512, 1)
	trace, err := seqpoint.PoissonTrace(corpus, 256, 120, 7)
	if err != nil {
		log.Fatal(err)
	}

	fixed, err := seqpoint.NewFixedBatch(16)
	if err != nil {
		log.Fatal(err)
	}
	dynamic, err := seqpoint.NewDynamicBatch(16, 50_000)
	if err != nil {
		log.Fatal(err)
	}
	length, err := seqpoint.NewLengthAware(16)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("serving %d GNMT requests at 120 req/s on %s\n\n",
		len(trace.Requests), seqpoint.VegaFE().Name)
	fmt.Printf("%-18s %10s %10s %12s %12s %12s\n",
		"policy", "req/s", "util", "p50", "p95", "p99")
	for _, policy := range []seqpoint.BatchPolicy{fixed, dynamic, length} {
		res, err := seqpoint.SimulateServing(seqpoint.ServingSpec{
			Model:  seqpoint.NewGNMT(),
			Trace:  trace,
			Policy: policy,
		}, seqpoint.VegaFE())
		if err != nil {
			log.Fatal(err)
		}
		s := res.Summary()
		fmt.Printf("%-18s %10.1f %9.1f%% %10.1fms %10.1fms %10.1fms\n",
			s.Policy, s.ThroughputRPS, s.UtilizationPct,
			s.P50LatencyUS/1e3, s.P95LatencyUS/1e3, s.P99LatencyUS/1e3)
	}
	fmt.Println("\nEvery policy reuses the shared engine's profile cache: each unique")
	fmt.Println("(batch, padded SL) forward pass was priced exactly once across all three runs.")
	st := seqpoint.EngineCacheStats()
	fmt.Printf("engine cache: %d profiles computed, %d hits\n", st.Misses, st.Hits)
}
