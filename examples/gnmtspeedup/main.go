// gnmtspeedup projects cross-configuration training speedups for GNMT
// from a handful of SeqPoint iterations and compares the projections —
// and those of the paper's baseline strategies — against full simulated
// runs (the paper's Figs 15/16 experiment).
//
// Run with: go run ./examples/gnmtspeedup
package main

import (
	"fmt"
	"log"
	"math"

	"seqpoint"
)

func main() {
	train := seqpoint.Subsample(seqpoint.IWSLT15(1), 16384, 1)
	spec := seqpoint.Spec{
		Model:    seqpoint.NewGNMT(),
		Train:    train,
		Batch:    64,
		Epochs:   1,
		Schedule: seqpoint.GNMTSchedule(),
		Seed:     1,
	}
	cfgs := seqpoint.TableII()

	// Full runs on every configuration: the ground truth.
	runs := make(map[string]*seqpoint.Run, len(cfgs))
	for _, cfg := range cfgs {
		r, err := seqpoint.Simulate(spec, cfg)
		if err != nil {
			log.Fatal(err)
		}
		runs[cfg.Name] = r
	}
	base := runs[cfgs[0].Name]

	// Selections on the calibration config.
	recs, err := seqpoint.RecordsFromRun(base, 0)
	if err != nil {
		log.Fatal(err)
	}
	type method struct {
		name string
		sel  seqpoint.Selection
	}
	var methods []method
	for _, m := range []struct {
		name string
		fn   func([]seqpoint.SLRecord) (seqpoint.Selection, error)
	}{
		{"worst", seqpoint.Worst},
		{"frequent", seqpoint.Frequent},
		{"median", seqpoint.Median},
		{"seqpoint", func(r []seqpoint.SLRecord) (seqpoint.Selection, error) {
			return seqpoint.Select(r, seqpoint.Options{ErrorThresholdPct: 0.1})
		}},
	} {
		sel, err := m.fn(recs)
		if err != nil {
			log.Fatal(err)
		}
		methods = append(methods, method{m.name, sel})
	}

	fmt.Printf("GNMT on %s: %d iterations/epoch, %d unique SLs\n\n",
		train.Name, base.EpochPlans[0].Iterations(), len(recs))
	fmt.Printf("throughput-uplift projection error (percentage points), config #x -> #1:\n\n")
	fmt.Printf("%-10s", "method")
	for _, cfg := range cfgs[1:] {
		fmt.Printf("  %8s", cfg.Name)
	}
	fmt.Printf("  %8s\n", "iters")

	for _, m := range methods {
		projBase, err := projectThroughput(m.sel, runs[cfgs[0].Name], spec.Batch)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s", m.name)
		for _, cfg := range cfgs[1:] {
			projTgt, err := projectThroughput(m.sel, runs[cfg.Name], spec.Batch)
			if err != nil {
				log.Fatal(err)
			}
			projUp := (projBase/projTgt - 1) * 100
			actUp := (base.Throughput()/runs[cfg.Name].Throughput() - 1) * 100
			fmt.Printf("  %6.2fpp", math.Abs(projUp-actUp))
		}
		fmt.Printf("  %8d\n", len(m.sel.Points))
	}

	fmt.Printf("\nactual uplifts of #1 over:")
	for _, cfg := range cfgs[1:] {
		fmt.Printf("  %s=%.0f%%", cfg.Name,
			(base.Throughput()/runs[cfg.Name].Throughput()-1)*100)
	}
	fmt.Println()
}

// projectThroughput projects samples/s on a run's config from the
// selection's per-SL iteration times under that config.
func projectThroughput(sel seqpoint.Selection, run *seqpoint.Run, batch int) (float64, error) {
	return seqpoint.ProjectThroughput(sel.Points, seqpoint.IterTimesBySL(run), batch)
}
