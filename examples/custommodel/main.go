// custommodel applies SeqPoint to a user-defined network — a small
// Transformer-style encoder classifier built from the public layer
// library — demonstrating the paper's Section VII-B claim: any network
// whose computation varies with input sequence length benefits from the
// methodology, not just the two evaluated SQNNs.
//
// Run with: go run ./examples/custommodel
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"seqpoint"
)

const (
	hidden  = 512
	vocab   = 12000
	classes = 5
	blocks  = 4
)

// buildTransformer returns the layer stack for an iteration whose padded
// input is seqLen symbols: an embedding, `blocks` attention+feedforward
// blocks (attention spans the whole input, so each block's work is
// O(T^2) — even more SL-sensitive than an RNN), and a classifier head.
func buildTransformer(seqLen int) []seqpoint.Layer {
	layers := []seqpoint.Layer{
		seqpoint.NewEmbeddingLayer("embed", vocab, hidden),
	}
	for b := 0; b < blocks; b++ {
		layers = append(layers,
			seqpoint.NewAttention(fmt.Sprintf("selfattn_%d", b), hidden, seqLen),
			seqpoint.NewDense(fmt.Sprintf("ffn_%d_up", b), 4*hidden, true),
			seqpoint.NewDense(fmt.Sprintf("ffn_%d_down", b), hidden, false),
		)
	}
	return append(layers,
		seqpoint.NewDense("classifier", classes, false),
		seqpoint.NewSoftmax("softmax"),
	)
}

func main() {
	model, err := seqpoint.NewCustomModel(
		"mini-transformer",
		25_000_000,
		true, // attention work varies with SL
		func(batch, seqLen int) seqpoint.Activation {
			return seqpoint.Activation{Batch: batch, Time: seqLen, Feat: hidden}
		},
		buildTransformer,
	)
	if err != nil {
		log.Fatal(err)
	}

	// A synthetic review-classification corpus: short-dominated lengths.
	rng := rand.New(rand.NewSource(3))
	lengths := make([]int, 6144)
	for i := range lengths {
		l := 4 + int(rng.ExpFloat64()*30)
		if l > 256 {
			l = 256
		}
		lengths[i] = l
	}
	train, err := seqpoint.Synthetic("reviews", lengths, vocab)
	if err != nil {
		log.Fatal(err)
	}

	spec := seqpoint.Spec{
		Model:    model,
		Train:    train,
		Batch:    32,
		Epochs:   1,
		Schedule: seqpoint.GNMTSchedule(), // bucket-pooled NMT-style batching
		Seed:     3,
	}
	cfgs := seqpoint.TableII()

	calib, err := seqpoint.Simulate(spec, cfgs[0])
	if err != nil {
		log.Fatal(err)
	}
	recs, err := seqpoint.RecordsFromRun(calib, 0)
	if err != nil {
		log.Fatal(err)
	}
	sel, err := seqpoint.Select(recs, seqpoint.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s: %d iterations/epoch, %d unique SLs -> %d SeqPoints "+
		"(self error %.2f%%)\n\n",
		model.Name(), calib.EpochPlans[0].Iterations(), len(recs),
		len(sel.Points), sel.ErrorPct)

	// Attention makes iteration cost super-linear in SL; SeqPoint's
	// binning handles that as long as nearby SLs stay similar.
	fmt.Printf("%8s %10s %14s\n", "seqpoint", "weight", "iter runtime")
	for _, p := range sel.Points {
		fmt.Printf("%8d %10.0f %12.1fms\n", p.SeqLen, p.Weight, p.Stat/1e3)
	}

	// Cross-config check against a full run on config #2.
	target := cfgs[1]
	sim, err := seqpoint.NewSimulator(target)
	if err != nil {
		log.Fatal(err)
	}
	times := map[int]float64{}
	for _, p := range sel.Points {
		prof, err := seqpoint.ProfileIteration(sim, model, spec.Batch, p.SeqLen)
		if err != nil {
			log.Fatal(err)
		}
		times[p.SeqLen] = prof.TimeUS
	}
	proj, err := seqpoint.ProjectTotal(sel.Points, times)
	if err != nil {
		log.Fatal(err)
	}
	truth, err := seqpoint.Simulate(spec, target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nconfig %s projection: %.2f s vs actual %.2f s (error %.2f%%) "+
		"from %d profiled iterations\n",
		target.Name, proj/1e6, truth.TrainUS/1e6,
		math.Abs(proj-truth.TrainUS)/truth.TrainUS*100, len(sel.Points))
}
