// Example fleet simulates a three-replica GNMT serving fleet under
// round-robin, power-of-two-choices and join-shortest-queue routing on
// the same seeded arrival trace, at an offered load just past the
// fleet's saturation knee. Round-robin is oblivious to queue state, so
// short requests pile up behind long batches on whichever replica the
// rotation hits; the queue-aware routers keep the backlog level and
// shave the p99 tail. Everything is seeded and the event loop is
// deterministic, so this prints the same numbers on every run.
package main

import (
	"fmt"
	"log"

	"seqpoint"
)

const (
	replicas = 3
	rate     = 200 // req/s, just past the 3-replica knee for this setup
)

func main() {
	// Request lengths come from a small IWSLT-shaped corpus: real SL
	// skew, which is exactly what makes batch service times uneven and
	// routing quality visible.
	corpus := seqpoint.Subsample(seqpoint.IWSLT15(1), 512, 1)
	trace, err := seqpoint.PoissonTrace(corpus, 384, rate, 7)
	if err != nil {
		log.Fatal(err)
	}
	policy, err := seqpoint.NewDynamicBatch(8, 10_000)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("serving %d GNMT requests at %d req/s on %d replicas (%s each)\n\n",
		len(trace.Requests), rate, replicas, seqpoint.VegaFE().Name)
	fmt.Printf("%-14s %10s %10s %12s %12s %12s\n",
		"routing", "req/s", "mean wait", "p50", "p95", "p99")

	routings := []string{"rr", "po2", "jsq"}
	p99 := make(map[string]float64)
	for _, name := range routings {
		router, err := seqpoint.ParseRouting(name, 7)
		if err != nil {
			log.Fatal(err)
		}
		res, err := seqpoint.SimulateFleet(seqpoint.FleetSpec{
			Model:    seqpoint.NewGNMT(),
			Trace:    trace,
			Policy:   policy,
			Router:   router,
			Replicas: replicas,
		}, seqpoint.VegaFE())
		if err != nil {
			log.Fatal(err)
		}
		s := res.Summary()
		p99[name] = s.P99LatencyUS
		fmt.Printf("%-14s %10.1f %8.1fms %10.1fms %10.1fms %10.1fms\n",
			s.Routing, s.ThroughputRPS, s.MeanWaitUS/1e3,
			s.P50LatencyUS/1e3, s.P95LatencyUS/1e3, s.P99LatencyUS/1e3)
	}

	fmt.Printf("\njoin-shortest-queue cuts the p99 tail %.1f%% below round-robin on the same trace;\n",
		(1-p99["jsq"]/p99["rr"])*100)
	fmt.Println("every replica prices batches through the shared engine cache, so each unique")
	fmt.Println("(batch, padded SL) forward pass was computed exactly once across all three runs.")
}
