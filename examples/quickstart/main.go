// Quickstart: the complete SeqPoint workflow in one page.
//
//  1. Simulate one training epoch of DeepSpeech2 on the calibration
//     configuration, logging each unique sequence length's iteration
//     runtime.
//  2. Select SeqPoints (binning + auto-k).
//  3. Profile ONLY the SeqPoint iterations on a different hardware
//     configuration.
//  4. Project that configuration's total training time and compare with
//     a full simulation.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	"seqpoint"
)

func main() {
	// A 4k-utterance subset of the synthetic LibriSpeech-100h keeps the
	// demo under a couple of seconds; the full corpus works identically.
	train := seqpoint.Subsample(seqpoint.LibriSpeech100h(1), 4096, 1)
	spec := seqpoint.Spec{
		Model:    seqpoint.NewDS2(),
		Train:    train,
		Batch:    64,
		Epochs:   1,
		Schedule: seqpoint.DS2Schedule(),
		Seed:     1,
	}
	cfgs := seqpoint.TableII()

	// Step 1: the calibration run (config #1).
	calib, err := seqpoint.Simulate(spec, cfgs[0])
	if err != nil {
		log.Fatal(err)
	}
	recs, err := seqpoint.RecordsFromRun(calib, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("epoch: %d iterations, %d unique sequence lengths\n",
		calib.EpochPlans[0].Iterations(), len(recs))

	// Step 2: SeqPoint selection.
	sel, err := seqpoint.Select(recs, seqpoint.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("selected %d SeqPoints (self-projection error %.2f%%):\n",
		len(sel.Points), sel.ErrorPct)
	for _, p := range sel.Points {
		fmt.Printf("  SL %4d  weight %5.0f iterations  runtime %8.1f ms\n",
			p.SeqLen, p.Weight, p.Stat/1e3)
	}

	// Step 3: profile only the SeqPoints on config #3 (16 CUs).
	target := cfgs[2]
	sim, err := seqpoint.NewSimulator(target)
	if err != nil {
		log.Fatal(err)
	}
	times := make(map[int]float64, len(sel.Points))
	for _, p := range sel.Points {
		prof, err := seqpoint.ProfileIteration(sim, spec.Model, spec.Batch, p.SeqLen)
		if err != nil {
			log.Fatal(err)
		}
		times[p.SeqLen] = prof.TimeUS
	}

	// Step 4: project and verify against the full simulation.
	projected, err := seqpoint.ProjectTotal(sel.Points, times)
	if err != nil {
		log.Fatal(err)
	}
	truth, err := seqpoint.Simulate(spec, target)
	if err != nil {
		log.Fatal(err)
	}
	errPct := math.Abs(projected-truth.TrainUS) / truth.TrainUS * 100
	fmt.Printf("\nconfig %s epoch time: projected %.2f s from %d iterations, "+
		"actual %.2f s from %d iterations — error %.2f%%\n",
		target.Name, projected/1e6, len(sel.Points),
		truth.TrainUS/1e6, truth.Iterations, errPct)
}
