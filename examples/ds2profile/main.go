// ds2profile characterizes the heterogeneity of DeepSpeech2 training
// iterations — the phenomenon that motivates SeqPoint (paper Sections
// III and IV) — and then shows how few iterations SeqPoint needs to
// summarize the run.
//
// It prints:
//   - the sequence-length histogram of one training epoch (Fig. 7 style),
//   - per-iteration runtime and hardware counters at spread-out sequence
//     lengths (Fig. 4 style),
//   - the near-linear runtime-vs-SL relationship (Fig. 9 style),
//   - the selected SeqPoints and the profiling-cost reduction
//     (Section VI-F style).
//
// Run with: go run ./examples/ds2profile
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"seqpoint"
)

func main() {
	train := seqpoint.Subsample(seqpoint.LibriSpeech100h(1), 8192, 1)
	spec := seqpoint.Spec{
		Model:    seqpoint.NewDS2(),
		Train:    train,
		Batch:    64,
		Epochs:   1,
		Schedule: seqpoint.DS2Schedule(),
		Seed:     1,
	}

	run, err := seqpoint.Simulate(spec, seqpoint.VegaFE())
	if err != nil {
		log.Fatal(err)
	}

	// --- Sequence-length histogram of the epoch (Fig. 7). ---
	sls := run.EpochPlans[0].SeqLens
	fmt.Printf("DeepSpeech2 on %s: %d iterations/epoch\n\n", train.Name, len(sls))
	printHistogram(sls, 8)

	// --- Iteration heterogeneity (Figs 3/4). ---
	unique := run.UniqueSLs()
	fmt.Printf("\nper-iteration profile at spread-out sequence lengths:\n")
	fmt.Printf("%8s %12s %14s %14s\n", "seqlen", "runtime", "VALU insts", "DRAM reads")
	for i := 0; i < 5; i++ {
		sl := unique[i*(len(unique)-1)/4]
		p := run.BySL[sl]
		fmt.Printf("%8d %10.1fms %14.3g %12.1fGB\n",
			sl, p.TimeUS/1e3, p.Counters.VALUInsts, p.Counters.LoadBytes/1e9)
	}

	// --- Near-linearity of runtime vs SL (Fig. 9). ---
	shortest, longest := unique[0], unique[len(unique)-1]
	tShort := run.BySL[shortest].TimeUS
	tLong := run.BySL[longest].TimeUS
	fmt.Printf("\nruntime grows ~linearly with SL: %.1f ms at SL %d -> %.1f ms at SL %d (%.1fx for %.1fx)\n",
		tShort/1e3, shortest, tLong/1e3, longest,
		tLong/tShort, float64(longest)/float64(shortest))

	// --- SeqPoint selection and cost reduction (Section VI-F). ---
	recs, err := seqpoint.RecordsFromRun(run, 0)
	if err != nil {
		log.Fatal(err)
	}
	sel, err := seqpoint.Select(recs, seqpoint.Options{})
	if err != nil {
		log.Fatal(err)
	}
	var epochUS, pointsUS, maxUS float64
	for _, r := range recs {
		epochUS += float64(r.Freq) * r.Stat
	}
	for _, p := range sel.Points {
		pointsUS += p.Stat
		if p.Stat > maxUS {
			maxUS = p.Stat
		}
	}
	fmt.Printf("\nSeqPoint summarizes the epoch with %d of %d iterations "+
		"(self-projection error %.2f%%):\n", len(sel.Points), len(sls), sel.ErrorPct)
	fmt.Printf("  profiling cost: %.1f s serially (%.0fx less than the %.0f s epoch), "+
		"%.2f s in parallel (%.0fx less)\n",
		pointsUS/1e6, epochUS/pointsUS, epochUS/1e6, maxUS/1e6, epochUS/maxUS)
}

// printHistogram renders a compact SL histogram.
func printHistogram(sls []int, bins int) {
	cp := append([]int(nil), sls...)
	sort.Ints(cp)
	lo, hi := cp[0], cp[len(cp)-1]
	span := hi - lo + 1
	counts := make([]int, bins)
	for _, sl := range cp {
		b := (sl - lo) * bins / span
		if b >= bins {
			b = bins - 1
		}
		counts[b]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	fmt.Println("iteration sequence-length histogram:")
	for b, c := range counts {
		width := 0
		if max > 0 {
			width = c * 40 / max
		}
		fmt.Printf("  [%3d-%3d] %4d %s\n",
			lo+b*span/bins, lo+(b+1)*span/bins-1, c, strings.Repeat("#", width))
	}
}
