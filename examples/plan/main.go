// Example plan answers the capacity question in the inverse direction
// of examples/fleet: instead of pricing a fleet shape you picked, it
// hands SolvePlan an SLO — p99 latency under 180 ms, at least 400
// req/s served, zero drops — and lets the planner binary-search
// replicas across four routing disciplines for the cheapest fleet that
// meets it. The probe is an ordinary closure over the deterministic
// fleet simulator, so the whole search is seeded end to end and prints
// the same plan on every run.
package main

import (
	"fmt"
	"log"

	"seqpoint"
)

const (
	rate     = 700 // offered load to plan for, req/s
	requests = 160
	queueCap = 24
	seed     = 42
)

func main() {
	// A synthetic corpus with real sequence-length skew: short and
	// long requests interleave, which is what makes batch service
	// times uneven and capacity planning non-trivial.
	lengths := make([]int, 192)
	for i := range lengths {
		lengths[i] = 4 + (i*13)%48
	}
	corpus, err := seqpoint.Synthetic("plan-demo", lengths, 1000)
	if err != nil {
		log.Fatal(err)
	}

	// One shared profile engine: candidates re-use each other's
	// per-batch-size profiles, so the search stays fast.
	eng := seqpoint.NewEngine()

	// The probe prices one candidate fleet at one offered rate. The
	// planner varies the rate during knee analysis, so the trace is
	// rebuilt per call from the same seed.
	probe := func(c seqpoint.PlanCandidate, rate float64) (seqpoint.FleetSummary, error) {
		trace, err := seqpoint.PoissonTrace(corpus, requests, rate, seed)
		if err != nil {
			return seqpoint.FleetSummary{}, err
		}
		policy, err := seqpoint.NewDynamicBatch(16, 20_000)
		if err != nil {
			return seqpoint.FleetSummary{}, err
		}
		router, err := seqpoint.ParseRouting(c.Routing, seed)
		if err != nil {
			return seqpoint.FleetSummary{}, err
		}
		res, err := seqpoint.SimulateFleet(seqpoint.FleetSpec{
			Model:    seqpoint.NewGNMT(),
			Trace:    trace,
			Policy:   policy,
			Router:   router,
			Replicas: c.Replicas,
			QueueCap: queueCap,
			Profiles: eng,
		}, seqpoint.VegaFE())
		if err != nil {
			return seqpoint.FleetSummary{}, err
		}
		return res.Summary(), nil
	}

	noDrops := 0.0
	plan, err := seqpoint.SolvePlan(seqpoint.PlanSpec{
		SLO: seqpoint.PlanSLO{
			LatencyP99US:     180_000,
			MinThroughputRPS: 400,
			MaxDropRatePct:   &noDrops,
		},
		RatePerSec:  rate,
		MaxReplicas: 8,
		Probe:       probe,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("plan for %d req/s of GNMT on config %s replicas:\n\n", rate, seqpoint.VegaFE().Name)
	fmt.Printf("  %d replicas, %s routing, %s batching (%d probe evaluations)\n",
		plan.Replicas, plan.Routing, plan.Policy, plan.Evaluations)
	fmt.Printf("  cost %.1f replica-seconds, throughput %.1f req/s, p99 %.1f ms\n\n",
		plan.CostReplicaSeconds, plan.Summary.ThroughputRPS, plan.Summary.P99LatencyUS/1000)

	for _, d := range plan.SLO {
		status := "met"
		if !d.OK {
			status = "VIOLATED"
		}
		fmt.Printf("  %-18s target %10.6g  achieved %10.6g  headroom %+6.1f%%  %s\n",
			d.Name, d.Target, d.Achieved, d.HeadroomPct, status)
	}

	sat := plan.Saturation
	fmt.Printf("\n  bottleneck %s (compute %.1f%%, queue %.1f%%)\n",
		sat.Bottleneck, sat.ComputePct, sat.QueuePct)
	fmt.Printf("  knee: SLO holds up to %.1f req/s (%.2fx the planned rate)\n",
		sat.KneeRPS, sat.KneeFactor)
}
