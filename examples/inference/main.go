// inference applies the SeqPoint insight to inference serving (paper
// Section VII-E): request sequence length dictates per-request work, so
// binning request lengths characterizes a serving deployment — its
// latency distribution and its sensitivity to hardware changes — from a
// handful of representative requests.
//
// Run with: go run ./examples/inference
package main

import (
	"fmt"
	"log"
	"math"

	"seqpoint"
)

func main() {
	// Serving GNMT translation requests with IWSLT-shaped lengths.
	requests := seqpoint.Subsample(seqpoint.IWSLT15(1), 8192, 1)
	spec := seqpoint.InferenceSpec{
		Model:    seqpoint.NewGNMT(),
		Requests: requests,
		Batch:    8, // small serving batches: latency matters
		Seed:     1,
	}
	cfgs := seqpoint.TableII()

	calib, err := seqpoint.SimulateInference(spec, cfgs[0])
	if err != nil {
		log.Fatal(err)
	}
	p50, p90, p99 := calib.LatencyPercentiles()
	fmt.Printf("GNMT serving on %s (%s): %d batches, %d unique request lengths\n",
		cfgs[0].Name, requests.Name, len(calib.BatchSLs), len(calib.LatencyBySL))
	fmt.Printf("batch latency: p50 %.1fms  p90 %.1fms  p99 %.1fms  (%.1fx tail spread from SL alone)\n\n",
		p50/1e3, p90/1e3, p99/1e3, p99/p50)

	// Select representative request lengths exactly as for training.
	sums := calib.SLSummaries()
	recs := make([]seqpoint.SLRecord, len(sums))
	for i, s := range sums {
		recs[i] = seqpoint.SLRecord{SeqLen: s.SeqLen, Freq: s.Count, Stat: s.IterTimeUS}
	}
	sel, err := seqpoint.Select(recs, seqpoint.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("representative request lengths (%d of %d, self error %.2f%%):\n",
		len(sel.Points), len(recs), sel.ErrorPct)
	for _, p := range sel.Points {
		fmt.Printf("  SL %4d  weight %5.0f batches  latency %7.1fms\n",
			p.SeqLen, p.Weight, p.Stat/1e3)
	}

	// Project total serving time on every other configuration from
	// just those requests, and verify against full serving runs.
	fmt.Printf("\nprojecting serving time across hardware configs from %d requests:\n", len(sel.Points))
	for _, cfg := range cfgs[1:] {
		truth, err := seqpoint.SimulateInference(spec, cfg)
		if err != nil {
			log.Fatal(err)
		}
		// Measure only the representative request lengths on cfg.
		sim, err := seqpoint.NewSimulator(cfg)
		if err != nil {
			log.Fatal(err)
		}
		times := map[int]float64{}
		for _, p := range sel.Points {
			// Forward-only pass: serving latency for this SL.
			lat, ok := truth.LatencyBySL[p.SeqLen]
			if !ok {
				prof, err := seqpoint.ProfileIteration(sim, spec.Model, spec.Batch, p.SeqLen)
				if err != nil {
					log.Fatal(err)
				}
				lat = prof.TimeUS
			}
			times[p.SeqLen] = lat
		}
		proj, err := seqpoint.ProjectTotal(sel.Points, times)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s: projected %7.1fs  actual %7.1fs  error %.2f%%\n",
			cfg.Name, proj/1e6, truth.TotalUS/1e6,
			math.Abs(proj-truth.TotalUS)/truth.TotalUS*100)
	}
}
