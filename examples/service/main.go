// The service example runs the whole seqpointd story in one process:
// it starts the HTTP simulation service on a random port, queries it
// through the typed client — a simulate, the same simulate again
// (answered from cache), and a SeqPoint selection — scrapes /metrics,
// then replays the daemon's shutdown sequence in miniature (drain,
// typed 503 for late arrivals, final snapshot) and shows a
// "restarted" engine answering warm from the snapshot.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"

	"seqpoint"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	eng := seqpoint.NewEngine()
	srv := seqpoint.NewServer(seqpoint.ServerOptions{Engine: eng})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()

	base := "http://" + ln.Addr().String()
	fmt.Printf("seqpointd serving on %s\n\n", base)
	client := seqpoint.NewServiceClient(base, nil)
	ctx := context.Background()

	if err := client.Health(ctx); err != nil {
		return err
	}

	// A what-if query: GNMT on a synthetic corpus, 4-GPU ring cluster.
	req := seqpoint.SimulateRequest{
		Model:   "gnmt",
		Batch:   8,
		SeqLens: []int{4, 7, 7, 9, 12, 12, 12, 15, 4, 9, 21, 21, 25, 25, 30, 30},
		GPUs:    4,
	}
	sum, err := client.Simulate(ctx, req)
	if err != nil {
		return err
	}
	fmt.Printf("simulate:  %d iterations on %s x%d GPUs -> train %.0f us (comm %.0f us)\n",
		sum.Iterations, sum.Config, sum.GPUs, sum.TrainUS, sum.CommUS)

	// The same query again: every profile is served from the cache.
	if _, err := client.Simulate(ctx, req); err != nil {
		return err
	}
	stats, err := client.Stats(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("repeat:    cache hits=%d misses=%d entries=%d coalesced=%d\n",
		stats.Engine.Hits, stats.Engine.Misses, stats.Engine.Entries, stats.Coalesced)

	// Representative-iteration selection over the wire.
	sel, err := client.SeqPoint(ctx, seqpoint.SeqPointRequest{
		SimulateRequest:    seqpoint.SimulateRequest{Model: "gnmt", Batch: 4, SeqLens: req.SeqLens},
		MaxUniqueNoBinning: 2,
		ErrorThresholdPct:  5,
	})
	if err != nil {
		return err
	}
	fmt.Printf("seqpoint:  %d unique SLs -> %d points (k=%d, self error %.3f%%)\n",
		sel.UniqueSLs, len(sel.Points), sel.Bins, sel.ErrorPct)

	// The observability surface: the same counters in Prometheus form,
	// plus per-endpoint request counts and latency histograms.
	exposition, err := client.Metrics(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("metrics:   %d series exposed; has per-endpoint counters: %v\n",
		strings.Count(exposition, "\n")-strings.Count(exposition, "#"),
		strings.Contains(exposition, `seqpoint_requests_total{endpoint="/v1/simulate"`))

	// The daemon's shutdown sequence in miniature: drain (late arrivals
	// get a typed 503), join in-flight work, then snapshot — so the
	// snapshot provably contains everything the server priced.
	if err := srv.Drain(ctx); err != nil {
		return err
	}
	_, err = client.Simulate(ctx, req)
	var apiErr *seqpoint.ServiceAPIError
	if !errors.As(err, &apiErr) {
		return fmt.Errorf("draining server accepted work: %v", err)
	}
	fmt.Printf("drain:     late request refused with %d %q\n", apiErr.Status, apiErr.Code)

	// Persistence: snapshot the cache, load it into a fresh engine (a
	// stand-in for a daemon restart with -cache-file) and answer warm.
	dir, err := os.MkdirTemp("", "seqpoint-cache-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	cachePath := filepath.Join(dir, "cache.json")
	saved, err := eng.SaveSnapshot(cachePath)
	if err != nil {
		return err
	}
	fmt.Printf("snapshot:  %d profiles written to disk\n", saved)
	restarted := seqpoint.NewEngine()
	n, err := restarted.LoadSnapshot(cachePath)
	if err != nil {
		return err
	}
	before := restarted.Stats()
	srv2 := seqpoint.NewServer(seqpoint.ServerOptions{Engine: restarted})
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv2 := &http.Server{Handler: srv2}
	go httpSrv2.Serve(ln2)
	defer httpSrv2.Close()
	client2 := seqpoint.NewServiceClient("http://"+ln2.Addr().String(), nil)
	if _, err := client2.Simulate(ctx, req); err != nil {
		return err
	}
	after := restarted.Stats()
	fmt.Printf("restart:   %d profiles restored from disk; warm replay hits=%d misses=%d\n",
		n, after.Hits-before.Hits, after.Misses-before.Misses)
	return nil
}
