// Package seqpoint reproduces "SeqPoint: Identifying Representative
// Iterations of Sequence-based Neural Networks" (Pati, Aga, Sinclair,
// Jayasena — ISPASS 2020) as a Go library.
//
// SeqPoint makes profiling the training of sequence-based neural
// networks (SQNNs: RNN/GRU/LSTM/attention models) tractable. SQNN
// training iterations are heterogeneous — the padded input sequence
// length (SL) of each batch dictates how much and what kind of work the
// iteration launches — so profiling a few arbitrary iterations, which
// works for CNNs, misrepresents SQNN training. SeqPoint instead:
//
//  1. logs one epoch's unique SLs, their iteration counts, and the
//     runtime of one iteration per SL (architecture-independent);
//  2. bins the SLs into k contiguous ranges and picks per bin the SL
//     whose runtime is closest to the bin average — a SeqPoint —
//     weighted by the bin's iteration population;
//  3. grows k until the self-projection error drops below a threshold;
//  4. projects whole-run statistics on any hardware configuration as
//     the weighted sum (Equation 1) of per-SeqPoint measurements.
//
// This package is the public facade. It re-exports the SeqPoint
// mechanism (internal/core), the baselines the paper compares against,
// and the simulation substrate used by the reproduction: the DS2/GNMT
// model descriptions, synthetic LibriSpeech/IWSLT corpora, the
// analytical GPU performance model standing in for the paper's Vega FE
// testbed, and the training-run simulator. Simulation runs on a
// concurrent engine (internal/engine) with a process-wide profile
// cache: because every iteration at the same padded sequence length
// performs identical work, each (model, config, cluster, batch, phase,
// SL) profile is priced exactly once per process — across runs,
// workloads and goroutines — with singleflight deduplication, and
// sweeps over (workload × config) grids fan out over a bounded worker
// pool. Parallelism never changes results: same seed ⇒ byte-identical
// output at any worker count. See NewEngine, SharedEngine, Sweep and
// EngineStats.
//
// Beyond the paper's single-GPU testbed, the simulator scales out to
// data-parallel multi-GPU clusters: a ClusterConfig describes the
// replica count and the interconnect (ring or fully-connected
// topology, per-link bandwidth and latency, compute/communication
// overlap), and each training step then prices the per-GPU shard
// compute plus an analytical gradient all-reduce (RingAllReduce) over
// the model's parameter bytes. SeqPoint composes unchanged: select
// SeqPoints on a 1-GPU run, then project any cluster size via
// Equation 1 from per-SL step times. See SimulateCluster,
// ClusterConfig, DefaultCluster and the Spec.Cluster field. Typical
// use:
//
//	run, _ := seqpoint.Simulate(seqpoint.Spec{
//	    Model:    seqpoint.NewGNMT(),
//	    Train:    seqpoint.IWSLT15(1),
//	    Batch:    64,
//	    Epochs:   1,
//	    Schedule: seqpoint.GNMTSchedule(),
//	}, seqpoint.VegaFE())
//	recs, _ := seqpoint.RecordsFromRun(run, 0)
//	sel, _ := seqpoint.Select(recs, seqpoint.Options{})
//	// Profile only sel.Points on other configurations and project with
//	// seqpoint.ProjectTotal / seqpoint.ProjectThroughput.
package seqpoint

import (
	"context"

	"seqpoint/internal/core"
	"seqpoint/internal/dataset"
	"seqpoint/internal/engine"
	"seqpoint/internal/gpusim"
	"seqpoint/internal/models"
	"seqpoint/internal/nn"
	"seqpoint/internal/profiler"
	"seqpoint/internal/tensor"
	"seqpoint/internal/trainer"
)

// Core mechanism types (internal/core).
type (
	// SLRecord is one epoch-log entry: a unique sequence length, its
	// iteration count, and the statistic of one iteration at that SL.
	SLRecord = core.SLRecord
	// SeqPoint is one selected representative iteration.
	SeqPoint = core.SeqPoint
	// Selection is the outcome of representative selection.
	Selection = core.Selection
	// Options tunes SeqPoint selection; the zero value uses the paper's
	// defaults (n=10, initial k=5, e=1%).
	Options = core.Options
	// MethodName identifies a selection strategy in reports.
	MethodName = core.MethodName
)

// Selection strategies.
var (
	// Select runs the SeqPoint mechanism (binning + auto-k).
	Select = core.Select
	// SelectKMeans is the k-means alternative of Section VII-C.
	SelectKMeans = core.SelectKMeans
	// Frequent, Median, Worst and Prior are the single-iteration and
	// contiguous-sampling baselines of the paper's evaluation.
	Frequent = core.Frequent
	Median   = core.Median
	Worst    = core.Worst
	Prior    = core.Prior
)

// Projection helpers (Equation 1 and its normalized/ratio forms).
var (
	ProjectTotal      = core.ProjectTotal
	ProjectMean       = core.ProjectMean
	ProjectThroughput = core.ProjectThroughput
	UpliftPct         = core.UpliftPct
)

// Simulation substrate types.
type (
	// Model is a network description at profiling granularity.
	Model = models.Model
	// Corpus is a training corpus reduced to its sequence lengths.
	Corpus = dataset.Corpus
	// Schedule is a per-epoch batch-ordering policy.
	Schedule = dataset.Schedule
	// Config is one hardware configuration (paper Table II).
	Config = gpusim.Config
	// ClusterConfig describes a data-parallel multi-GPU cluster and its
	// interconnect; the zero value means a single GPU.
	ClusterConfig = gpusim.ClusterConfig
	// Topology names a cluster interconnect wiring (ring or full mesh).
	Topology = gpusim.Topology
	// Simulator prices kernels under a configuration.
	Simulator = gpusim.Simulator
	// Spec describes a training run to simulate.
	Spec = trainer.Spec
	// Run is a simulated training run.
	Run = trainer.Run
	// RunSummary is the deterministic serializable digest of a Run,
	// the unit of the golden determinism tests.
	RunSummary = trainer.RunSummary
	// InferenceSpec describes a serving run to simulate (Section VII-E).
	InferenceSpec = trainer.InferenceSpec
	// InferenceRun is a simulated serving run.
	InferenceRun = trainer.InferenceRun
	// IterationProfile is one iteration's execution profile.
	IterationProfile = profiler.IterationProfile
)

// Models: the paper's two evaluated SQNNs, the Section VII-B extension
// networks (Transformer, attention-free Seq2Seq), and the CNN used for
// the Fig. 3 homogeneity contrast.
var (
	NewDS2         = models.NewDS2
	NewGNMT        = models.NewGNMT
	NewTransformer = models.NewTransformer
	NewSeq2Seq     = models.NewSeq2Seq
	NewCNN         = models.NewCNN
)

// Datasets: synthetic stand-ins with the paper corpora's sizes and SL
// distribution shapes, plus escape hatches for custom length lists and
// fast demo subsets.
var (
	LibriSpeech100h = dataset.LibriSpeech100h
	LibriSpeechDev  = dataset.LibriSpeechDev
	IWSLT15         = dataset.IWSLT15
	IWSLTTest       = dataset.IWSLTTest
	Synthetic       = dataset.Synthetic
	Subsample       = dataset.Subsample
	PlanEpoch       = dataset.PlanEpoch
)

// Layer library for user-defined models (Section VII-B: SeqPoint applies
// to any network whose computation varies with input sequence length).
// Assemble layers with NewCustomModel; each layer emits the logical ops
// its forward and backward passes launch.
type (
	// Layer is one network stage.
	Layer = nn.Layer
	// Activation is the symbolic tensor shape flowing between layers.
	Activation = nn.Activation
	// CellKind selects LSTM or GRU for recurrent layers.
	CellKind = nn.CellKind
	// Op is a logical operation with first-order cost quantities.
	Op = tensor.Op
)

// Recurrent cell kinds.
const (
	CellLSTM = nn.CellLSTM
	CellGRU  = nn.CellGRU
)

// Layer constructors.
var (
	NewRecurrent      = nn.NewRecurrent
	NewDense          = nn.NewDense
	NewEmbeddingLayer = nn.NewEmbedding
	NewAttention      = nn.NewAttention
	NewSoftmax        = nn.NewSoftmax
	NewCTCLoss        = nn.NewCTCLoss
	NewConv           = nn.NewConv
	NewBatchNorm      = nn.NewBatchNorm
	NewLayerNorm      = nn.NewLayerNorm
	NewFlatten        = nn.NewFlatten
	NewPool           = nn.NewPool
)

// NewCustomModel assembles a user-defined model from the layer library;
// the builder runs per iteration with the padded sequence length.
var NewCustomModel = models.NewCustom

// ScheduleProfiling partitions SeqPoints across machines (LPT greedy)
// to minimize parallel profiling time — Section VI-F's observation that
// each SeqPoint is an independent iteration.
var ScheduleProfiling = core.ScheduleProfiling

// ProfilingSchedule is a parallel profiling plan over several machines.
type ProfilingSchedule = core.ProfilingSchedule

// Batch-ordering policies.
var (
	DS2Schedule  = dataset.DS2Schedule
	GNMTSchedule = dataset.GNMTSchedule
)

// Cluster topologies.
const (
	TopologyRing     = gpusim.TopologyRing
	TopologyFullMesh = gpusim.TopologyFullMesh
)

// Hardware configurations and simulation.
var (
	// VegaFE is the calibration configuration (config #1).
	VegaFE = gpusim.VegaFE
	// TableII returns the paper's five hardware configurations.
	TableII = gpusim.TableII
	// NewSimulator builds a kernel-pricing simulator for a config.
	NewSimulator = gpusim.New
	// SingleGPU is the canonical one-GPU cluster configuration.
	SingleGPU = gpusim.SingleGPU
	// DefaultCluster returns a ring-connected n-GPU cluster with
	// default link parameters.
	DefaultCluster = gpusim.DefaultCluster
	// ParseTopology maps a CLI spelling to a cluster topology.
	ParseTopology = gpusim.ParseTopology
	// RingAllReduce prices a bandwidth-optimal ring all-reduce of the
	// given gradient bytes (microseconds).
	RingAllReduce = gpusim.RingAllReduceUS
	// MeshAllReduce prices a fully-connected all-reduce.
	MeshAllReduce = gpusim.MeshAllReduceUS
	// Simulate runs a full training simulation.
	Simulate = trainer.Simulate
	// SimulateCluster runs a training simulation on a data-parallel
	// cluster of identical GPUs.
	SimulateCluster = trainer.SimulateCluster
	// SimulateInference runs a serving simulation (Section VII-E).
	SimulateInference = trainer.SimulateInference
	// ProfileIteration profiles one training iteration of a model.
	ProfileIteration = profiler.ProfileIteration
	// TraceIteration returns one iteration's raw kernel stream.
	TraceIteration = profiler.TraceIteration
	// WriteChromeTrace serializes a kernel stream for chrome://tracing.
	WriteChromeTrace = profiler.WriteChromeTrace
)

// Concurrent simulation engine (internal/engine): a process-lifetime
// profile cache with singleflight deduplication plus bounded-parallel
// grid sweeps. SharedEngine is what Simulate profiles through by
// default; build a private engine with NewEngine to isolate caches.
type (
	// Engine is the concurrent profiling engine with a cross-run cache.
	Engine = engine.Engine
	// EngineStats is a snapshot of an engine's cache counters
	// (hits / misses / dedups / entries).
	EngineStats = engine.Stats
	// SweepTask is one (workload spec, config) cell of a sweep grid.
	SweepTask = engine.SweepTask
	// SweepResult is the outcome of one sweep task.
	SweepResult = engine.SweepResult
	// ProfilePhase distinguishes training from evaluation profiles.
	ProfilePhase = engine.Phase
	// ProfileSource is the trainer's profiling seam; an Engine is one.
	ProfileSource = trainer.ProfileSource
)

// Profile phases.
const (
	PhaseTrain = engine.PhaseTrain
	PhaseEval  = engine.PhaseEval
)

var (
	// NewEngine builds a private engine with an empty cache.
	NewEngine = engine.New
	// SharedEngine returns the process-wide engine whose cache every
	// default-configured simulation shares.
	SharedEngine = engine.Shared
	// FingerprintModel hashes a model's op structure — the model
	// component of the engine's cache key.
	FingerprintModel = engine.Fingerprint
)

// Sweep simulates a (workload × config) grid on the shared engine with
// at most `parallelism` concurrent runs (<= 0 uses the engine default),
// returning results in task order. Results are identical at any
// parallelism; profiles are shared across all cells and with every
// other simulation in the process.
func Sweep(ctx context.Context, tasks []SweepTask, parallelism int) []SweepResult {
	return engine.Shared().Sweep(ctx, tasks, parallelism)
}

// EngineCacheStats returns the shared engine's cache counters — the
// observable measure of cross-run profile reuse.
func EngineCacheStats() EngineStats {
	return engine.Shared().Stats()
}

// RecordsFromRun extracts the SeqPoint input — per-unique-SL iteration
// counts and runtimes — from one epoch of a simulated (or measured) run.
func RecordsFromRun(run *Run, epoch int) ([]SLRecord, error) {
	sum, err := run.EpochSummary(epoch)
	if err != nil {
		return nil, err
	}
	recs := make([]SLRecord, len(sum))
	for i, s := range sum {
		recs[i] = SLRecord{SeqLen: s.SeqLen, Freq: s.Count, Stat: s.IterTimeUS}
	}
	return recs, nil
}

// IterTimesBySL returns each unique SL's single-iteration runtime under
// the run's configuration — the per-config measurement map the
// projection helpers consume.
func IterTimesBySL(run *Run) map[int]float64 {
	out := make(map[int]float64, len(run.BySL))
	for sl, p := range run.BySL {
		out[sl] = p.TimeUS
	}
	return out
}
