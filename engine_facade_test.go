package seqpoint_test

// Facade-level coverage for the concurrent engine: RecordsFromRun, the
// Sweep re-export, determinism of parallel execution (the acceptance
// criterion of the engine PR), and cache-statistics observability.

import (
	"context"
	"reflect"
	"testing"

	"seqpoint"
)

func facadeSpec(t *testing.T) seqpoint.Spec {
	t.Helper()
	lengths := make([]int, 256)
	for i := range lengths {
		lengths[i] = 15 + (i*13)%90
	}
	corpus, err := seqpoint.Synthetic("facade", lengths, 31)
	if err != nil {
		t.Fatal(err)
	}
	evalCorpus, err := seqpoint.Synthetic("facade-eval", lengths[:64], 31)
	if err != nil {
		t.Fatal(err)
	}
	return seqpoint.Spec{
		Model:    seqpoint.NewGNMT(),
		Train:    corpus,
		Eval:     evalCorpus,
		Batch:    16,
		Epochs:   2,
		Schedule: seqpoint.GNMTSchedule(),
		Seed:     3,
	}
}

func TestRecordsFromRun(t *testing.T) {
	spec := facadeSpec(t)
	run, err := seqpoint.Simulate(spec, seqpoint.VegaFE())
	if err != nil {
		t.Fatal(err)
	}

	recs, err := seqpoint.RecordsFromRun(run, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no records extracted")
	}

	// Records are sorted by SL, one per unique SL, frequencies summing
	// to the epoch's iteration count, stats matching the profiled times.
	var iters int
	for i, r := range recs {
		if i > 0 && recs[i-1].SeqLen >= r.SeqLen {
			t.Fatalf("records not sorted by SL: %d before %d", recs[i-1].SeqLen, r.SeqLen)
		}
		if r.Freq <= 0 {
			t.Errorf("SL %d has non-positive frequency %d", r.SeqLen, r.Freq)
		}
		if want := run.BySL[r.SeqLen].TimeUS; r.Stat != want {
			t.Errorf("SL %d stat %.3f != profiled iteration time %.3f", r.SeqLen, r.Stat, want)
		}
		iters += r.Freq
	}
	if epochIters := run.EpochPlans[0].Iterations(); iters != epochIters {
		t.Errorf("record frequencies sum to %d, epoch has %d iterations", iters, epochIters)
	}

	// Epoch plans repeat under this schedule's later-epoch policy only
	// in SL multiset, but every epoch index must be extractable.
	if _, err := seqpoint.RecordsFromRun(run, spec.Epochs-1); err != nil {
		t.Errorf("last epoch not extractable: %v", err)
	}
	if _, err := seqpoint.RecordsFromRun(run, spec.Epochs); err == nil {
		t.Error("out-of-range epoch must error")
	}
	if _, err := seqpoint.RecordsFromRun(run, -1); err == nil {
		t.Error("negative epoch must error")
	}
}

// TestSweepParallelismByteIdentical is the determinism acceptance
// criterion at the facade: a (workload × config) sweep at parallelism 8
// matches parallelism 1 exactly — run totals, per-SL profiles, and the
// per-config projections built from them.
func TestSweepParallelismByteIdentical(t *testing.T) {
	spec := facadeSpec(t)
	cfgs := seqpoint.TableII()
	var tasks []seqpoint.SweepTask
	for _, cfg := range cfgs {
		tasks = append(tasks, seqpoint.SweepTask{Name: "gnmt on " + cfg.Name, Spec: spec, Config: cfg})
	}

	sweep := func(par int) []seqpoint.SweepResult {
		eng := seqpoint.NewEngine()
		eng.SetParallelism(par)
		return eng.Sweep(context.Background(), tasks, par)
	}
	res1, res8 := sweep(1), sweep(8)

	projections := func(results []seqpoint.SweepResult) map[string]float64 {
		recs, err := seqpoint.RecordsFromRun(results[0].Run, 0)
		if err != nil {
			t.Fatal(err)
		}
		sel, err := seqpoint.Select(recs, seqpoint.Options{ErrorThresholdPct: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		out := make(map[string]float64, len(results))
		for _, r := range results {
			proj, err := seqpoint.ProjectTotal(sel.Points, seqpoint.IterTimesBySL(r.Run))
			if err != nil {
				t.Fatal(err)
			}
			out[r.Task.Config.Name] = proj
		}
		return out
	}

	for i := range tasks {
		if res1[i].Err != nil || res8[i].Err != nil {
			t.Fatal(res1[i].Err, res8[i].Err)
		}
		if res1[i].Run.TotalUS() != res8[i].Run.TotalUS() {
			t.Errorf("%s: TotalUS %.9f (par 1) != %.9f (par 8)",
				tasks[i].Name, res1[i].Run.TotalUS(), res8[i].Run.TotalUS())
		}
		if !reflect.DeepEqual(res1[i].Run.BySL, res8[i].Run.BySL) {
			t.Errorf("%s: BySL differs between parallelism 1 and 8", tasks[i].Name)
		}
	}
	p1, p8 := projections(res1), projections(res8)
	if !reflect.DeepEqual(p1, p8) {
		t.Errorf("per-config projections differ: par 1 %v, par 8 %v", p1, p8)
	}
}

func TestEngineCacheStatsObservable(t *testing.T) {
	// Simulate through the facade default path (the shared engine) and
	// watch the counters move: new work misses, repeated work hits.
	spec := facadeSpec(t)
	spec.Batch = 24 // unique batch ⇒ cache keys no other test in this package touches
	before := seqpoint.EngineCacheStats()
	if _, err := seqpoint.Simulate(spec, seqpoint.VegaFE()); err != nil {
		t.Fatal(err)
	}
	mid := seqpoint.EngineCacheStats()
	if mid.Misses <= before.Misses {
		t.Error("first simulation should compute profiles on the shared engine")
	}
	if _, err := seqpoint.Simulate(spec, seqpoint.VegaFE()); err != nil {
		t.Fatal(err)
	}
	after := seqpoint.EngineCacheStats()
	if after.Misses != mid.Misses {
		t.Errorf("re-simulation computed %d new profiles, want 0", after.Misses-mid.Misses)
	}
	if after.Hits <= mid.Hits {
		t.Error("re-simulation should be served from the shared cache")
	}
}
