package seqpoint

import "seqpoint/internal/planner"

// SLO-driven capacity planning (internal/planner): the inverse of the
// serving simulators. Instead of pricing a fleet you chose, SolvePlan
// searches replicas × routing × batching (× KV capacity) for the
// minimal-cost fleet that meets an SLO, probing candidates through a
// caller-supplied PlanProbeFunc — typically a closure over
// SimulateFleet (see examples/plan) — and returns the chosen plan with
// a saturation analysis: per-target headroom, which resource saturates
// first, and the knee rate where the plan leaves the SLO box.
type (
	// PlanSLO is the target envelope a plan must meet; at least one
	// target must be set.
	PlanSLO = planner.SLO
	// PlanSpec is one planning problem: SLO, offered rate, search
	// bounds and the probe.
	PlanSpec = planner.Spec
	// PlanCandidate is one searched fleet shape (replicas, routing,
	// optional policy/KV overrides).
	PlanCandidate = planner.Candidate
	// PlanProbeFunc prices one candidate at one offered rate; it must
	// be deterministic.
	PlanProbeFunc = planner.Probe
	// CapacityPlan is the planner's answer: the minimal candidate, its
	// SLO evidence and its saturation analysis.
	CapacityPlan = planner.Plan
	// PlanDimension is one SLO target checked against a summary.
	PlanDimension = planner.Dimension
	// PlanSaturation is the headroom/bottleneck/knee analysis.
	PlanSaturation = planner.Saturation
)

var (
	// SolvePlan searches the candidate space for the minimal-cost plan
	// meeting the SLO.
	SolvePlan = planner.Solve
	// DefaultPlanRoutings is the routing axis searched when a spec
	// leaves it empty.
	DefaultPlanRoutings = planner.DefaultRoutings
)

// ErrPlanInfeasible reports that no candidate within a spec's bounds
// meets the SLO; test with errors.Is.
var ErrPlanInfeasible = planner.ErrInfeasible

// Saturation bottleneck names returned in PlanSaturation.Bottleneck.
const (
	PlanBottleneckCompute = planner.BottleneckCompute
	PlanBottleneckQueue   = planner.BottleneckQueue
	PlanBottleneckKVBytes = planner.BottleneckKVBytes
)
