// Command loadgen drives a running seqpointd with seeded, open-loop
// simulate traffic and reports achieved throughput and latency
// percentiles. It exits nonzero when the run breaches its SLO (p99
// over budget or too many errors), so it doubles as a CI soak gate:
//
//	loadgen -url http://127.0.0.1:8080 -rps 50 -duration 10s \
//	        -p99-budget 250ms
//
// The arrival schedule and request mix derive entirely from -seed, so
// a failing run is replayable bit-for-bit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"
)

func main() {
	var (
		url       = flag.String("url", "http://127.0.0.1:8080", "seqpointd base URL")
		rps       = flag.Float64("rps", 50, "target offered requests per second")
		duration  = flag.Duration("duration", 10*time.Second, "how long to offer load")
		seed      = flag.Int64("seed", 1, "seed for the arrival schedule and request mix")
		models    = flag.String("models", "gnmt", "comma-separated model mix")
		p99Budget = flag.Duration("p99-budget", 0, "p99 latency SLO; 0 disables the check")
		maxErrPct = flag.Float64("max-error-pct", 0, "tolerated request error percentage")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rep, err := Run(ctx, Config{
		BaseURL:      *url,
		RPS:          *rps,
		Duration:     *duration,
		Seed:         *seed,
		Models:       strings.Split(*models, ","),
		P99Budget:    *p99Budget,
		MaxErrorRate: *maxErrPct / 100,
	})
	fmt.Println(rep)
	if err != nil {
		var slo *SLOViolation
		if errors.As(err, &slo) {
			fmt.Fprintln(os.Stderr, "loadgen:", slo.Reason)
		} else {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
		}
		os.Exit(1)
	}
}
