package main

import (
	"context"
	"errors"
	"net/http/httptest"
	"os"
	"reflect"
	"strings"
	"testing"
	"time"

	"seqpoint/internal/server"
)

// TestScheduleDeterministic: the same seed yields the same arrival
// offsets and the same request mix — a failing run replays exactly.
func TestScheduleDeterministic(t *testing.T) {
	a := schedule(7, 200, time.Second)
	b := schedule(7, 200, time.Second)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different arrival schedules")
	}
	if len(a) == 0 {
		t.Fatal("schedule(200 rps, 1s) produced no arrivals")
	}
	for i := 1; i < len(a); i++ {
		if a[i] <= a[i-1] {
			t.Fatalf("arrival %d at %v not after arrival %d at %v", i, a[i], i-1, a[i-1])
		}
	}
	if last := a[len(a)-1]; last >= time.Second {
		t.Fatalf("arrival beyond the run window: %v", last)
	}
	// ~200 expected; Poisson spread leaves a wide but bounded band.
	if len(a) < 120 || len(a) > 300 {
		t.Fatalf("schedule produced %d arrivals for 200 rps over 1s", len(a))
	}

	ra := requestMix(7, nil, 16)
	rb := requestMix(7, nil, 16)
	if !reflect.DeepEqual(ra, rb) {
		t.Fatal("same seed produced different request mixes")
	}
	if schedule(8, 200, time.Second)[0] == a[0] {
		t.Fatal("different seeds produced identical first arrivals")
	}
}

// TestRunRejectsBadConfig: nonsense configs fail fast, before any
// traffic is offered.
func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(context.Background(), Config{RPS: 0, Duration: time.Second}); err == nil {
		t.Error("rps 0 accepted")
	}
	if _, err := Run(context.Background(), Config{RPS: 10, Duration: 0}); err == nil {
		t.Error("duration 0 accepted")
	}
}

// TestSoakSmoke runs the generator against an in-process daemon: the
// CI soak job's core. Default duration keeps `go test` quick; CI sets
// LOADGEN_SOAK_DURATION=10s for the real soak. The default p99 budget
// is generous because this test also runs under -race (where the
// simulations are an order of magnitude slower); the soak job pins a
// tight budget via LOADGEN_P99_BUDGET.
func TestSoakSmoke(t *testing.T) {
	duration := 1500 * time.Millisecond
	if v := os.Getenv("LOADGEN_SOAK_DURATION"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			t.Fatalf("LOADGEN_SOAK_DURATION %q: %v", v, err)
		}
		duration = d
	}
	budget := 30 * time.Second
	if v := os.Getenv("LOADGEN_P99_BUDGET"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			t.Fatalf("LOADGEN_P99_BUDGET %q: %v", v, err)
		}
		budget = d
	}

	ts := httptest.NewServer(server.New(server.Options{}))
	defer ts.Close()

	rep, err := Run(context.Background(), Config{
		BaseURL:   ts.URL,
		RPS:       40,
		Duration:  duration,
		Seed:      1,
		P99Budget: budget,
	})
	t.Logf("soak report: %s", rep)
	if err != nil {
		t.Fatalf("soak run failed: %v (report: %s)", err, rep)
	}
	if rep.OK == 0 || rep.Errors != 0 {
		t.Fatalf("soak report ok=%d errors=%d (last error: %s)", rep.OK, rep.Errors, rep.LastError)
	}
	if rep.P99 <= 0 || rep.P50 > rep.P95 || rep.P95 > rep.P99 || rep.P99 > rep.MaxLat {
		t.Fatalf("incoherent percentiles in report: %s", rep)
	}
}

// TestRunFlagsSLOBreach: an impossible p99 budget turns into a typed
// SLOViolation (the CLI's nonzero exit), with the report still filled.
func TestRunFlagsSLOBreach(t *testing.T) {
	ts := httptest.NewServer(server.New(server.Options{}))
	defer ts.Close()

	rep, err := Run(context.Background(), Config{
		BaseURL:   ts.URL,
		RPS:       20,
		Duration:  500 * time.Millisecond,
		Seed:      3,
		P99Budget: time.Nanosecond,
	})
	var slo *SLOViolation
	if err == nil {
		t.Fatalf("nanosecond p99 budget passed (report: %s)", rep)
	}
	if !errors.As(err, &slo) {
		t.Fatalf("want *SLOViolation, got %v", err)
	}
	if !strings.Contains(slo.Reason, "p99") {
		t.Fatalf("violation reason %q does not name p99", slo.Reason)
	}
	if rep.Sent == 0 {
		t.Fatal("report empty despite completed run")
	}
}

// TestRunCountsErrors: a target that refuses work (draining) makes the
// run fail its error budget rather than report a clean pass.
func TestRunCountsErrors(t *testing.T) {
	srv := server.New(server.Options{})
	srv.StartDrain()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	rep, err := Run(context.Background(), Config{
		BaseURL:  ts.URL,
		RPS:      20,
		Duration: 500 * time.Millisecond,
		Seed:     5,
	})
	var slo *SLOViolation
	if err == nil || !errors.As(err, &slo) {
		t.Fatalf("draining target passed the run: err=%v report=%s", err, rep)
	}
	if rep.Errors != rep.Sent {
		t.Fatalf("draining target: errors=%d sent=%d, want all rejected", rep.Errors, rep.Sent)
	}
}
