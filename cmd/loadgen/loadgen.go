package main

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"seqpoint/internal/server"
	"seqpoint/internal/stats"
)

// Config parameterizes one load run. Everything that shapes the
// offered load is derived from Seed, so two runs with the same config
// issue byte-identical request sequences on identical schedules.
type Config struct {
	// BaseURL is the daemon under test, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// RPS is the target offered rate. The generator is open-loop: it
	// fires on schedule whether or not earlier requests came back, the
	// arrival model that actually exposes queueing collapse (a
	// closed-loop generator self-throttles and hides it).
	RPS float64
	// Duration is how long to offer load.
	Duration time.Duration
	// Seed drives the arrival process and the request mix.
	Seed int64
	// Models cycles the request mix across these model names; empty
	// defaults to gnmt.
	Models []string
	// P99Budget is the latency SLO; a run whose p99 exceeds it fails
	// (exit nonzero from main). Zero disables the check.
	P99Budget time.Duration
	// MaxErrorRate is the tolerated fraction of failed requests,
	// in [0, 1]. Requests rejected by the limiter (429) count as
	// errors: an overloaded target is a failed run, not background
	// noise.
	MaxErrorRate float64
}

// Report is one load run's outcome.
type Report struct {
	Sent      int
	OK        int
	Errors    int
	Elapsed   time.Duration
	Achieved  float64 // completed requests per second
	P50       time.Duration
	P95       time.Duration
	P99       time.Duration
	MaxLat    time.Duration
	LastError string
}

// SLOViolation explains a failed run; errors.As-able from Run's error.
type SLOViolation struct{ Reason string }

func (v *SLOViolation) Error() string { return "slo violation: " + v.Reason }

// schedule precomputes the open-loop arrival offsets: exponential
// inter-arrivals at rate rps (a Poisson process), seeded. Returned
// offsets are relative to the run start and strictly increasing.
func schedule(seed int64, rps float64, d time.Duration) []time.Duration {
	rng := rand.New(rand.NewSource(seed))
	var out []time.Duration
	t := 0.0
	for {
		t += -math.Log(1-rng.Float64()) / rps
		off := time.Duration(t * float64(time.Second))
		if off >= d {
			return out
		}
		out = append(out, off)
	}
}

// requestMix derives the i-th request deterministically from the seed:
// a handful of distinct (batch, seqlens) shapes so the target sees
// both cache hits and genuine computation.
func requestMix(seed int64, models []string, n int) []server.SimulateRequest {
	if len(models) == 0 {
		models = []string{"gnmt"}
	}
	rng := rand.New(rand.NewSource(seed + 1))
	reqs := make([]server.SimulateRequest, n)
	for i := range reqs {
		batch := 1 + rng.Intn(4)
		seqlens := make([]int, batch)
		for j := range seqlens {
			seqlens[j] = 4 + rng.Intn(12)
		}
		reqs[i] = server.SimulateRequest{
			Model:   models[rng.Intn(len(models))],
			Batch:   batch,
			SeqLens: seqlens,
		}
	}
	return reqs
}

// Run offers cfg.RPS of simulate load to cfg.BaseURL for cfg.Duration
// and reports achieved throughput and latency percentiles. It returns
// a *SLOViolation error when the run breaches the configured budget;
// the Report is valid either way.
func Run(ctx context.Context, cfg Config) (Report, error) {
	if cfg.RPS <= 0 {
		return Report{}, fmt.Errorf("loadgen: rps must be positive, got %v", cfg.RPS)
	}
	if cfg.Duration <= 0 {
		return Report{}, fmt.Errorf("loadgen: duration must be positive, got %v", cfg.Duration)
	}
	arrivals := schedule(cfg.Seed, cfg.RPS, cfg.Duration)
	reqs := requestMix(cfg.Seed, cfg.Models, len(arrivals))
	client := server.NewClient(cfg.BaseURL, nil)

	var (
		mu        sync.Mutex
		latencies []float64 // seconds
		okCount   int
		errCount  int
		lastErr   string
		wg        sync.WaitGroup
	)
	start := time.Now()
	timer := time.NewTimer(0)
	defer timer.Stop()
fire:
	for i, off := range arrivals {
		timer.Reset(time.Until(start.Add(off)))
		select {
		case <-ctx.Done():
			break fire
		case <-timer.C:
		}
		wg.Add(1)
		go func(req server.SimulateRequest) {
			defer wg.Done()
			t0 := time.Now()
			_, err := client.Simulate(ctx, req)
			lat := time.Since(t0).Seconds()
			mu.Lock()
			defer mu.Unlock()
			latencies = append(latencies, lat)
			if err != nil {
				errCount++
				lastErr = err.Error()
				return
			}
			okCount++
		}(reqs[i])
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := Report{
		Sent:      len(latencies),
		OK:        okCount,
		Errors:    errCount,
		Elapsed:   elapsed,
		LastError: lastErr,
	}
	if elapsed > 0 {
		rep.Achieved = float64(okCount) / elapsed.Seconds()
	}
	if len(latencies) > 0 {
		ps, err := stats.PercentilesInPlace(latencies, 50, 95, 99, 100)
		if err != nil {
			return rep, fmt.Errorf("loadgen: percentiles: %w", err)
		}
		rep.P50 = secondsToDuration(ps[0])
		rep.P95 = secondsToDuration(ps[1])
		rep.P99 = secondsToDuration(ps[2])
		rep.MaxLat = secondsToDuration(ps[3])
	}

	if err := ctx.Err(); err != nil && !errors.Is(err, context.Canceled) {
		return rep, err
	}
	if rep.Sent == 0 {
		return rep, &SLOViolation{Reason: "no requests were sent"}
	}
	if rate := float64(rep.Errors) / float64(rep.Sent); rate > cfg.MaxErrorRate {
		return rep, &SLOViolation{Reason: fmt.Sprintf("error rate %.2f%% exceeds budget %.2f%% (last error: %s)",
			rate*100, cfg.MaxErrorRate*100, rep.LastError)}
	}
	if cfg.P99Budget > 0 && rep.P99 > cfg.P99Budget {
		return rep, &SLOViolation{Reason: fmt.Sprintf("p99 %s exceeds budget %s", rep.P99, cfg.P99Budget)}
	}
	return rep, nil
}

func secondsToDuration(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// String renders the report the way the CLI prints it.
func (r Report) String() string {
	return fmt.Sprintf("sent %d ok %d errors %d in %s (%.1f req/s) | p50 %s p95 %s p99 %s max %s",
		r.Sent, r.OK, r.Errors, r.Elapsed.Round(time.Millisecond), r.Achieved,
		r.P50.Round(10*time.Microsecond), r.P95.Round(10*time.Microsecond),
		r.P99.Round(10*time.Microsecond), r.MaxLat.Round(10*time.Microsecond))
}
