// Command seqpoint identifies SeqPoints for a model + dataset + batch
// size: it simulates one training epoch on the calibration configuration
// (config #1), logs the unique sequence lengths, runs the SeqPoint
// selection, and prints the selected representatives with their weights
// alongside the baselines' picks.
//
// Usage:
//
//	seqpoint -model gnmt -batch 64 -seed 1 -e 0.1 -n 10
package main

import (
	"flag"
	"fmt"
	"os"

	"seqpoint/internal/core"
	"seqpoint/internal/experiments"
	"seqpoint/internal/gpusim"
	"seqpoint/internal/report"
)

func main() {
	var (
		model = flag.String("model", "gnmt", "model to analyze: ds2, gnmt, transformer or seq2seq")
		batch = flag.Int("batch", experiments.DefaultBatch, "minibatch size")
		seed  = flag.Int64("seed", experiments.DefaultSeed, "dataset/shuffle seed")
		eThr  = flag.Float64("e", core.DefaultErrorThresholdPct, "error threshold e in percent")
		nThr  = flag.Int("n", core.DefaultMaxUniqueNoBinning, "unique-SL threshold n below which all SLs are taken")
		kInit = flag.Int("k", core.DefaultInitialBins, "initial bin count k")
	)
	flag.Parse()

	if err := run(*model, *batch, *seed, *eThr, *nThr, *kInit); err != nil {
		fmt.Fprintln(os.Stderr, "seqpoint:", err)
		os.Exit(1)
	}
}

func run(model string, batch int, seed int64, eThr float64, nThr, kInit int) error {
	var w experiments.Workload
	switch model {
	case "ds2":
		w = experiments.DS2Workload(seed)
	case "gnmt":
		w = experiments.GNMTWorkload(seed)
	case "transformer":
		w = experiments.TransformerWorkload(seed)
	case "seq2seq":
		w = experiments.Seq2SeqWorkload(seed)
	default:
		return fmt.Errorf("unknown model %q (want ds2, gnmt, transformer or seq2seq)", model)
	}
	w.Batch = batch
	w.Epochs = 1

	lab := experiments.NewLab()
	cfg := gpusim.VegaFE()
	runSim, err := lab.Run(w, cfg)
	if err != nil {
		return err
	}
	recs, err := experiments.SLRecords(runSim, 0)
	if err != nil {
		return err
	}

	opts := core.Options{
		MaxUniqueNoBinning: nThr,
		InitialBins:        kInit,
		ErrorThresholdPct:  eThr,
	}
	sel, err := core.Select(recs, opts)
	if err != nil {
		return err
	}

	fmt.Printf("model=%s dataset=%s batch=%d iterations/epoch=%d uniqueSLs=%d\n",
		w.Name, w.Train.Name, w.Batch, runSim.EpochPlans[0].Iterations(), len(recs))
	fmt.Printf("selection: k=%d binned=%v self-projection error=%s\n\n",
		sel.Bins, sel.Binned, report.Pct(sel.ErrorPct))

	t := report.NewTable("SeqPoints", "#", "seqlen", "weight (iters)", "iter time").AlignNumeric()
	for i, p := range sel.Points {
		t.AddStringRow(fmt.Sprintf("%d", i+1), fmt.Sprintf("%d", p.SeqLen),
			fmt.Sprintf("%.0f", p.Weight), report.US(p.Stat))
	}
	fmt.Print(t.String())

	// Baseline picks for comparison.
	fmt.Println()
	bt := report.NewTable("Baseline selections", "method", "seqlen(s)", "self error").AlignNumeric()
	for _, m := range []struct {
		name string
		fn   func([]core.SLRecord) (core.Selection, error)
	}{
		{"frequent", core.Frequent},
		{"median", core.Median},
		{"worst", core.Worst},
	} {
		s, err := m.fn(recs)
		if err != nil {
			return err
		}
		bt.AddStringRow(m.name, fmt.Sprintf("%d", s.Points[0].SeqLen), report.Pct(s.ErrorPct))
	}
	fmt.Print(bt.String())
	return nil
}
