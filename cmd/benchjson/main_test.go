package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: seqpoint
cpu: AMD EPYC 7B13
BenchmarkSelect/gnmt-8         	       1	   1234567 ns/op
BenchmarkEngineSweep-8        	       1	 987654321 ns/op	  443216 B/op	    1024 allocs/op
PASS
ok  	seqpoint	1.503s
pkg: seqpoint/internal/engine
BenchmarkProfile 	       2	    555555 ns/op
PASS
ok  	seqpoint/internal/engine	0.702s
`

func TestParse(t *testing.T) {
	doc, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" {
		t.Fatalf("headers not captured: %+v", doc)
	}
	if len(doc.Results) != 3 {
		t.Fatalf("parsed %d results, want 3", len(doc.Results))
	}

	r0 := doc.Results[0]
	if r0.Name != "BenchmarkSelect/gnmt" || r0.Procs != 8 || r0.Package != "seqpoint" {
		t.Fatalf("result 0: %+v", r0)
	}
	if r0.NsPerOp != 1234567 || r0.Iterations != 1 {
		t.Fatalf("result 0 metrics: %+v", r0)
	}

	r1 := doc.Results[1]
	if r1.Metrics["B/op"] != 443216 || r1.Metrics["allocs/op"] != 1024 || r1.NsPerOp != 987654321 {
		t.Fatalf("result 1 metrics: %+v", r1)
	}

	r2 := doc.Results[2]
	if r2.Name != "BenchmarkProfile" || r2.Procs != 1 || r2.Package != "seqpoint/internal/engine" {
		t.Fatalf("result 2: %+v", r2)
	}
	if r2.Iterations != 2 || r2.NsPerOp != 555555 {
		t.Fatalf("result 2 metrics: %+v", r2)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	cases := []string{
		"BenchmarkX\t notanumber\t 12 ns/op\n",
		"BenchmarkX\t 1\t 12 ns/op extra\n",
		"BenchmarkX\t 1\t abc ns/op\n",
	}
	for _, in := range cases {
		if _, err := Parse(strings.NewReader(in)); err == nil {
			t.Errorf("malformed line %q parsed without error", strings.TrimSpace(in))
		}
	}
}

func TestParseIgnoresNoise(t *testing.T) {
	doc, err := Parse(strings.NewReader("PASS\nok  \tseqpoint\t0.1s\nBenchmarkRunning\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Results) != 0 {
		t.Fatalf("noise produced %d results", len(doc.Results))
	}
}
