// Command benchjson converts `go test -bench` text output on stdin
// into a machine-readable JSON document on stdout — the format CI
// archives as BENCH_ci.json so benchmark trajectories can be compared
// across commits without re-parsing Go's bench text each time.
//
// Usage:
//
//	go test -run='^$' -bench=. -benchtime=1x ./... | benchjson > BENCH_ci.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	// Package is the Go package the benchmark ran in (from the
	// preceding "pkg:" header line; empty if none was seen).
	Package string `json:"package,omitempty"`
	// Name is the benchmark name without the -P GOMAXPROCS suffix.
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix (1 when absent).
	Procs int `json:"procs"`
	// Iterations is b.N for the measured run.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the headline metric when the line reports one.
	NsPerOp float64 `json:"ns_per_op,omitempty"`
	// Metrics holds every reported "<value> <unit>" pair, including
	// ns/op, B/op and allocs/op.
	Metrics map[string]float64 `json:"metrics"`
}

// Document is the archived artifact: environment headers plus results.
type Document struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	doc, err := Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// Parse reads `go test -bench` output and extracts every benchmark
// result, tolerating interleaved PASS/ok/FAIL lines from multi-package
// runs. Malformed benchmark lines are an error: a silently dropped
// result would show up as a vanished benchmark in the trajectory.
func Parse(r io.Reader) (Document, error) {
	doc := Document{Results: []Result{}}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		res, ok, err := parseBenchLine(line)
		if err != nil {
			return doc, err
		}
		if ok {
			res.Package = pkg
			doc.Results = append(doc.Results, res)
		}
	}
	return doc, sc.Err()
}

// parseBenchLine parses one "BenchmarkName-P  N  v1 u1  v2 u2 ..."
// line. Lines that merely start with "Benchmark" but carry no fields
// (a running benchmark's name echo) report ok=false.
func parseBenchLine(line string) (Result, bool, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Result{}, false, nil
	}
	res := Result{Procs: 1, Metrics: map[string]float64{}}

	res.Name = fields[0]
	if i := strings.LastIndex(res.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(res.Name[i+1:]); err == nil && p > 0 {
			res.Procs = p
			res.Name = res.Name[:i]
		}
	}

	n, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false, fmt.Errorf("bad iteration count in %q: %w", line, err)
	}
	res.Iterations = n

	rest := fields[2:]
	if len(rest)%2 != 0 {
		return Result{}, false, fmt.Errorf("odd metric fields in %q", line)
	}
	for i := 0; i < len(rest); i += 2 {
		v, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return Result{}, false, fmt.Errorf("bad metric value in %q: %w", line, err)
		}
		unit := rest[i+1]
		res.Metrics[unit] = v
		if unit == "ns/op" {
			res.NsPerOp = v
		}
	}
	return res, true, nil
}
