package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func doc(results ...Result) Document {
	return Document{Goos: "linux", Goarch: "amd64", Results: results}
}

func res(pkg, name string, ns float64) Result {
	return Result{
		Package: pkg, Name: name, Procs: 1, Iterations: 1, NsPerOp: ns,
		Metrics: map[string]float64{"ns/op": ns},
	}
}

// resAllocs is res plus an allocs/op measurement.
func resAllocs(pkg, name string, ns, allocs float64) Result {
	r := res(pkg, name, ns)
	r.Metrics["allocs/op"] = allocs
	return r
}

func TestCompareWithinThresholdPasses(t *testing.T) {
	base := doc(res("seqpoint/internal/serving", "BenchmarkFleetMillionEvents", 1000))
	curr := doc(res("seqpoint/internal/serving", "BenchmarkFleetMillionEvents", 1200))
	report, ok, err := Compare(base, curr, 25, 10)
	if err != nil || !ok {
		t.Fatalf("20%% regression under a 25%% threshold should pass; ok=%v err=%v\n%s", ok, err, report)
	}
	if !strings.Contains(report, "+20.0%") {
		t.Fatalf("report missing the delta:\n%s", report)
	}
}

func TestCompareRegressionFails(t *testing.T) {
	base := doc(res("p", "BenchmarkA", 1000))
	curr := doc(res("p", "BenchmarkA", 1300))
	report, ok, err := Compare(base, curr, 25, 10)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("30%% regression passed a 25%% gate:\n%s", report)
	}
	if !strings.Contains(report, "REGRESSED") {
		t.Fatalf("report does not name the regression:\n%s", report)
	}
}

func TestCompareImprovementPasses(t *testing.T) {
	base := doc(res("p", "BenchmarkA", 1000))
	curr := doc(res("p", "BenchmarkA", 400))
	if report, ok, err := Compare(base, curr, 25, 10); err != nil || !ok {
		t.Fatalf("improvement failed the gate; ok=%v err=%v\n%s", ok, err, report)
	}
}

func TestCompareNewBenchmarkSkipped(t *testing.T) {
	base := doc(res("p", "BenchmarkA", 1000))
	curr := doc(res("p", "BenchmarkA", 1000), res("p", "BenchmarkBrandNew", 9e9))
	report, ok, err := Compare(base, curr, 25, 10)
	if err != nil || !ok {
		t.Fatalf("a new benchmark must not fail the gate; ok=%v err=%v\n%s", ok, err, report)
	}
	if !strings.Contains(report, "BenchmarkBrandNew") || !strings.Contains(report, "skipped") {
		t.Fatalf("new benchmark not reported as skipped:\n%s", report)
	}
}

func TestCompareVanishedBenchmarkFails(t *testing.T) {
	base := doc(res("p", "BenchmarkA", 1000), res("p", "BenchmarkGone", 500))
	curr := doc(res("p", "BenchmarkA", 1000))
	report, ok, err := Compare(base, curr, 25, 10)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("vanished benchmark passed the gate:\n%s", report)
	}
	if !strings.Contains(report, "BenchmarkGone") {
		t.Fatalf("report does not name the vanished benchmark:\n%s", report)
	}
}

func TestCompareEmptyDocumentsError(t *testing.T) {
	if _, _, err := Compare(doc(), doc(), 25, 10); err == nil {
		t.Fatal("two empty documents should be an error, not a pass")
	}
}

// TestCompareAllocGate exercises the allocs/op gate across its
// threshold, independence from the ns/op gate, and the
// missing-baseline-metric skip.
func TestCompareAllocGate(t *testing.T) {
	cases := []struct {
		name     string
		base     Result
		curr     Result
		wantOK   bool
		wantFrag string
	}{
		{
			name:     "alloc regression past threshold fails even with flat ns",
			base:     resAllocs("p", "BenchmarkA", 1000, 100),
			curr:     resAllocs("p", "BenchmarkA", 1000, 120),
			wantOK:   false,
			wantFrag: "120 allocs/op (+20.0%) REGRESSED past 10%",
		},
		{
			name:     "alloc growth within threshold passes",
			base:     resAllocs("p", "BenchmarkA", 1000, 100),
			curr:     resAllocs("p", "BenchmarkA", 1000, 105),
			wantOK:   true,
			wantFrag: "105 allocs/op (+5.0%) ok",
		},
		{
			name:     "alloc improvement passes",
			base:     resAllocs("p", "BenchmarkA", 1000, 100),
			curr:     resAllocs("p", "BenchmarkA", 1000, 40),
			wantOK:   true,
			wantFrag: "40 allocs/op (-60.0%) ok",
		},
		{
			name:     "ns regression still fails when allocs are flat",
			base:     resAllocs("p", "BenchmarkA", 1000, 100),
			curr:     resAllocs("p", "BenchmarkA", 1400, 100),
			wantOK:   false,
			wantFrag: "1400 ns/op (+40.0%) REGRESSED past 25%",
		},
		{
			name:   "baseline without allocs skips the alloc gate",
			base:   res("p", "BenchmarkA", 1000),
			curr:   resAllocs("p", "BenchmarkA", 1000, 9999),
			wantOK: true,
		},
		{
			name:   "current without allocs skips the alloc gate",
			base:   resAllocs("p", "BenchmarkA", 1000, 100),
			curr:   res("p", "BenchmarkA", 1000),
			wantOK: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			report, ok, err := Compare(doc(tc.base), doc(tc.curr), 25, 10)
			if err != nil {
				t.Fatal(err)
			}
			if ok != tc.wantOK {
				t.Fatalf("gate ok = %v, want %v:\n%s", ok, tc.wantOK, report)
			}
			if tc.wantFrag != "" && !strings.Contains(report, tc.wantFrag) {
				t.Fatalf("report missing %q:\n%s", tc.wantFrag, report)
			}
		})
	}
}

// TestGateCommittedBaseline runs the gate over the repo's committed
// artifacts: the latest snapshot against itself must pass (guards that
// the committed files stay parseable in benchjson's format), and each
// snapshot against its predecessor must also pass — the trajectory
// only ever improved.
func TestGateCommittedBaseline(t *testing.T) {
	pr10, err := filepath.Abs("../../BENCH_pr10.json")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(pr10); err != nil {
		t.Skipf("committed baseline not found: %v", err)
	}
	report, ok, err := Gate(pr10, pr10, 25, 10)
	if err != nil || !ok {
		t.Fatalf("self-comparison failed; ok=%v err=%v\n%s", ok, err, report)
	}
	dir := filepath.Dir(pr10)
	seed := filepath.Join(dir, "BENCH_seed.json")
	pr6 := filepath.Join(dir, "BENCH_pr6.json")
	pr7 := filepath.Join(dir, "BENCH_pr7.json")
	pr8 := filepath.Join(dir, "BENCH_pr8.json")
	pr9 := filepath.Join(dir, "BENCH_pr9.json")
	report, ok, err = Gate(seed, pr6, 25, 10)
	if err != nil || !ok {
		t.Fatalf("PR 6 numbers regressed against the seed; ok=%v err=%v\n%s", ok, err, report)
	}
	// PR 7 adds the KV model behind a nil-by-default config, so the
	// pre-existing benchmarks' wall time may wander but their
	// allocation counts must hold.
	report, ok, err = Gate(pr6, pr7, 25, 10)
	if err != nil || !ok {
		t.Fatalf("PR 7 numbers regressed against PR 6; ok=%v err=%v\n%s", ok, err, report)
	}
	// PR 8 adds the planner (a new benchmark, skipped against pr7)
	// without touching the serving hot path: allocation counts are
	// byte-identical.
	report, ok, err = Gate(pr7, pr8, 25, 10)
	if err != nil || !ok {
		t.Fatalf("PR 8 numbers regressed against PR 7; ok=%v err=%v\n%s", ok, err, report)
	}
	// PR 9 adds the workload generator (a new benchmark, skipped
	// against pr8); the tenancy fields ride existing structs, so the
	// serving and planner hot paths hold.
	report, ok, err = Gate(pr8, pr9, 25, 10)
	if err != nil || !ok {
		t.Fatalf("PR 9 numbers regressed against PR 8; ok=%v err=%v\n%s", ok, err, report)
	}
	// PR 10 adds the metrics middleware (and a new render benchmark,
	// skipped against pr9); per-request overhead is one histogram
	// observation plus a map bump, so the existing paths hold.
	report, ok, err = Gate(pr9, pr10, 25, 10)
	if err != nil || !ok {
		t.Fatalf("PR 10 numbers regressed against PR 9; ok=%v err=%v\n%s", ok, err, report)
	}
}

// TestMirrorsBenchjson pins this command's duplicated Result/Document
// shape against cmd/benchjson's JSON output format.
func TestMirrorsBenchjson(t *testing.T) {
	sample := `{
  "goos": "linux",
  "goarch": "amd64",
  "results": [
    {
      "package": "seqpoint/internal/serving",
      "name": "BenchmarkServingHotPath",
      "procs": 1,
      "iterations": 1,
      "ns_per_op": 40639250,
      "metrics": {"B/op": 15053728, "allocs/op": 27355, "ns/op": 40639250}
    }
  ]
}`
	var d Document
	if err := json.Unmarshal([]byte(sample), &d); err != nil {
		t.Fatal(err)
	}
	if len(d.Results) != 1 || d.Results[0].Name != "BenchmarkServingHotPath" ||
		d.Results[0].NsPerOp != 40639250 || d.Results[0].Metrics["allocs/op"] != 27355 {
		t.Fatalf("benchjson document did not round-trip: %+v", d)
	}
}
