// Command benchgate compares a freshly-measured benchmark document
// (cmd/benchjson output) against a committed baseline and fails when
// any shared benchmark's ns/op or allocs/op regressed beyond its
// threshold. CI runs it after the bench step, so a hot-path regression
// fails the PR that introduced it instead of silently eroding the perf
// trajectory. ns/op and allocs/op get separate thresholds: wall time
// is noisy under CI load, but allocation counts are near-deterministic
// for these event loops, so the alloc gate can be much tighter.
//
// Benchmarks present only in the current run are reported and skipped:
// a new benchmark has no baseline to regress against, and gating on it
// would force every benchmark PR to land in two commits. Benchmarks
// present only in the baseline fail the gate — a vanished benchmark
// usually means a deleted or broken bench, which is exactly the kind
// of silent trajectory gap the gate exists to catch.
//
// Usage:
//
//	benchgate -baseline BENCH_pr7.json -current BENCH_ci.json -threshold-pct 25 -alloc-threshold-pct 10
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// Result mirrors cmd/benchjson's Result. The two commands are both
// package main, so the shape is duplicated here; TestMirrorsBenchjson
// pins the fields against drift by round-tripping benchjson output.
type Result struct {
	Package    string             `json:"package,omitempty"`
	Name       string             `json:"name"`
	Procs      int                `json:"procs"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Document mirrors cmd/benchjson's Document.
type Document struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Results []Result `json:"results"`
}

// delta is one benchmark metric's baseline-to-current comparison.
type delta struct {
	key      string
	metric   string // "ns/op" or "allocs/op"
	baseline float64
	current  float64
	limit    float64 // max allowed regression in percent
}

// pct is the signed percentage change from baseline to current.
func (d delta) pct() float64 {
	return (d.current - d.baseline) / d.baseline * 100
}

func main() {
	var (
		basePath   = flag.String("baseline", "", "committed benchmark baseline JSON (required)")
		currPath   = flag.String("current", "", "freshly measured benchmark JSON (required)")
		threshold  = flag.Float64("threshold-pct", 25, "maximum allowed ns/op regression in percent")
		allocLimit = flag.Float64("alloc-threshold-pct", 10, "maximum allowed allocs/op regression in percent")
	)
	flag.Parse()
	if *basePath == "" || *currPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -baseline and -current are both required")
		os.Exit(2)
	}
	report, ok, err := Gate(*basePath, *currPath, *threshold, *allocLimit)
	fmt.Print(report)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	if !ok {
		os.Exit(1)
	}
}

// Gate loads both documents and evaluates the regression thresholds,
// returning a human-readable report and whether the gate passed.
func Gate(basePath, currPath string, thresholdPct, allocThresholdPct float64) (string, bool, error) {
	base, err := load(basePath)
	if err != nil {
		return "", false, err
	}
	curr, err := load(currPath)
	if err != nil {
		return "", false, err
	}
	return Compare(base, curr, thresholdPct, allocThresholdPct)
}

// Compare evaluates current against baseline. The gate fails when a
// shared benchmark's ns/op or allocs/op regressed past its threshold
// or a baseline benchmark vanished; new benchmarks are listed and
// skipped. allocs/op is compared only for benchmarks where both runs
// report it — a baseline without b.ReportAllocs data can't gate.
func Compare(base, curr Document, thresholdPct, allocThresholdPct float64) (string, bool, error) {
	baseNs := index(base, "ns/op")
	currNs := index(curr, "ns/op")
	baseAllocs := index(base, "allocs/op")
	currAllocs := index(curr, "allocs/op")

	var deltas []delta
	var newOnes, vanished []string
	for key, ns := range currNs {
		b, ok := baseNs[key]
		if !ok {
			newOnes = append(newOnes, key)
			continue
		}
		deltas = append(deltas, delta{key: key, metric: "ns/op", baseline: b, current: ns, limit: thresholdPct})
		if ba, ok := baseAllocs[key]; ok {
			if ca, ok := currAllocs[key]; ok {
				deltas = append(deltas, delta{key: key, metric: "allocs/op", baseline: ba, current: ca, limit: allocThresholdPct})
			}
		}
	}
	for key := range baseNs {
		if _, ok := currNs[key]; !ok {
			vanished = append(vanished, key)
		}
	}
	sort.Slice(deltas, func(i, j int) bool {
		if deltas[i].key != deltas[j].key {
			return deltas[i].key < deltas[j].key
		}
		return deltas[i].metric > deltas[j].metric // ns/op before allocs/op
	})
	sort.Strings(newOnes)
	sort.Strings(vanished)

	var out []byte
	ok := true
	compared := 0
	for _, d := range deltas {
		if d.metric == "ns/op" {
			compared++
		}
		verdict := "ok"
		if d.pct() > d.limit {
			verdict = fmt.Sprintf("REGRESSED past %.0f%%", d.limit)
			ok = false
		}
		out = fmt.Appendf(out, "%s: %.0f -> %.0f %s (%+.1f%%) %s\n",
			d.key, d.baseline, d.current, d.metric, d.pct(), verdict)
	}
	for _, key := range newOnes {
		out = fmt.Appendf(out, "%s: new benchmark, no baseline — skipped\n", key)
	}
	for _, key := range vanished {
		out = fmt.Appendf(out, "%s: present in baseline but missing from current run\n", key)
		ok = false
	}
	if len(deltas)+len(newOnes)+len(vanished) == 0 {
		return "", false, fmt.Errorf("no benchmarks in either document")
	}
	if ok {
		out = fmt.Appendf(out, "benchgate: pass (%d compared, %d new)\n", compared, len(newOnes))
	} else {
		out = fmt.Appendf(out, "benchgate: FAIL\n")
	}
	return string(out), ok, nil
}

// index keys every result carrying the named metric by
// package/name-procs. For ns/op, the top-level ns_per_op field is
// preferred over the metrics map when present.
func index(doc Document, metric string) map[string]float64 {
	m := make(map[string]float64, len(doc.Results))
	for _, r := range doc.Results {
		v := r.Metrics[metric]
		if metric == "ns/op" && r.NsPerOp != 0 {
			v = r.NsPerOp
		}
		if v <= 0 {
			continue
		}
		m[fmt.Sprintf("%s/%s-%d", r.Package, r.Name, r.Procs)] = v
	}
	return m
}

// load reads one benchjson document from disk.
func load(path string) (Document, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return Document{}, err
	}
	var doc Document
	if err := json.Unmarshal(buf, &doc); err != nil {
		return Document{}, fmt.Errorf("%s: %w", path, err)
	}
	return doc, nil
}
