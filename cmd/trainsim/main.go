// Command trainsim runs the simulated training of a model on a hardware
// configuration and dumps the per-unique-SL iteration profile as CSV
// (seqlen, iterations, iteration time, counters) plus a run summary.
// The CSV is the raw data behind the paper's Figs 7 and 9.
//
// With -serve it instead simulates online inference serving: a Poisson
// arrival trace at -rate requests/s through the -policy batcher,
// reporting throughput, utilization and the p50/p95/p99 latency tail.
// -tenants and -pattern generate multi-tenant, diurnally shaped
// arrivals instead (with per-tenant roll-ups, and "wfq" as the
// tenant-aware batching policy); -trace-out records the arrival trace
// as a versioned JSON-lines file and -trace-in replays one.
//
// With -plan it answers the inverse serving question: given SLO
// targets (-slo-p99-us, -slo-ttft-p99-us, -slo-min-rps,
// -slo-max-drop-pct), search replicas × routing for the cheapest fleet
// that meets them at -rate, and report the plan with its saturation
// analysis — headroom, bottleneck, and the knee rate where it breaks.
//
// Usage:
//
//	trainsim -model ds2 -config 3 -epochs 2 -parallelism 8 -o profile.csv
//	trainsim -model gnmt -gpus 8 -topology ring -linkgbps 25
//	trainsim -model gnmt -serve -rate 120 -policy dynamic -requests 512
//	trainsim -model gnmt -serve -replicas 32 -rate 5000 -cpuprofile cpu.pprof
//	trainsim -model gnmt -serve -tenants chat=3,bulk=1 -pattern diurnal -policy wfq -trace-out arrivals.trace
//	trainsim -model gnmt -serve -trace-in arrivals.trace
//	trainsim -model gnmt -plan -rate 700 -slo-p99-us 180000 -slo-min-rps 400
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"seqpoint/internal/engine"
	"seqpoint/internal/experiments"
	"seqpoint/internal/gpusim"
	"seqpoint/internal/planner"
	"seqpoint/internal/profiler"
	"seqpoint/internal/report"
	"seqpoint/internal/serving"
)

// writeTrace prices one iteration at traceSL and writes its kernel
// timeline as Chrome trace-event JSON.
func writeTrace(w experiments.Workload, cfg gpusim.Config, traceSL int, path string) error {
	sim, err := gpusim.New(cfg)
	if err != nil {
		return err
	}
	invs, err := profiler.TraceIteration(sim, w.Model, w.Batch, traceSL)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return profiler.WriteChromeTrace(f, invs)
}

func main() {
	// The body lives in mainExit so deferred teardown — flushing pprof
	// profiles, above all — runs before the process exits; a bare
	// os.Exit in main would discard a partially-written CPU profile.
	os.Exit(mainExit())
}

func mainExit() int {
	var (
		model    = flag.String("model", "ds2", "model to train: ds2, gnmt, transformer, seq2seq or cnn")
		cfgIdx   = flag.Int("config", 1, "Table II configuration number (1-5)")
		epochs   = flag.Int("epochs", experiments.DefaultEpochs, "epochs to simulate")
		batch    = flag.Int("batch", experiments.DefaultBatch, "minibatch size")
		seed     = flag.Int64("seed", experiments.DefaultSeed, "dataset/shuffle seed")
		outCSV   = flag.String("o", "", "write per-SL profile CSV to this file (default: stdout table only)")
		traceSL  = flag.Int("trace-sl", 0, "also write a Chrome trace of one iteration at this SL")
		traceTo  = flag.String("trace-o", "trace.json", "Chrome trace output path (with -trace-sl)")
		par      = flag.Int("parallelism", 0, "concurrent profiling workers (0 = GOMAXPROCS)")
		gpus     = flag.Int("gpus", 1, "data-parallel GPU count (1 = single-GPU training)")
		topology = flag.String("topology", string(gpusim.TopologyRing), "cluster interconnect: ring or mesh")
		linkGBps = flag.Float64("linkgbps", gpusim.DefaultLinkGBps, "per-link interconnect bandwidth in GB/s")
		linkLat  = flag.Float64("linklatus", gpusim.DefaultLinkLatencyUS, "per-hop interconnect latency in microseconds")
		overlap  = flag.Float64("overlap", gpusim.DefaultOverlap, "fraction of compute the all-reduce can hide behind [0,1]")
		serve    = flag.Bool("serve", false, "simulate online serving instead of training")
		rate     = flag.Float64("rate", 100, "(with -serve) Poisson arrival rate in requests/s")
		policy   = flag.String("policy", serving.PolicyDynamic, "(with -serve) batching policy: fixed, dynamic, length or wfq")
		requests = flag.Int("requests", experiments.DefaultServeRequests, "(with -serve) arrival-trace length")
		tenants  = flag.String("tenants", "", "(with -serve) generate a multi-tenant trace: comma-separated class=count cohorts, e.g. chat=3,bulk=1")
		pattern  = flag.String("pattern", "", "(with -serve) arrival-rate shape for generated traces: uniform or diurnal")
		traceOut = flag.String("trace-out", "", "(with -serve) save the arrival trace to this file (versioned JSON lines)")
		traceIn  = flag.String("trace-in", "", "(with -serve) replay a recorded trace file instead of generating arrivals; an explicit -rate rescales it")
		timeout  = flag.Float64("serve-timeout-us", 50000, "(with -serve) dynamic policy's batching window in µs")
		replicas = flag.Int("replicas", 1, "(with -serve) serving replica count; > 1 simulates a fleet")
		routing  = flag.String("routing", serving.RoutingRoundRobin, "(with -serve) fleet routing: rr, least, jsq or po2")
		queueCap = flag.Int("queue-cap", 0, "(with -serve) per-replica admission queue bound (0 = unbounded)")
		autoScal = flag.Bool("autoscale", false, "(with -serve) autoscale the fleet between 1 and -replicas on queue depth")
		simPar   = flag.Int("sim-parallelism", 0, "(with -serve) advance independent replicas on this many goroutines between routing barriers (0/1 = serial; output is byte-identical)")
		kvCapGB  = flag.Float64("kv-capacity-gb", 0, "(with -serve) per-replica KV-cache capacity in GB; 0 disables the memory model")
		kvSteps  = flag.Int("decode-steps", 0, "(with -serve -kv-capacity-gb) decode steps per request")
		kvPre    = flag.String("kv-preempt", "", "(with -serve -kv-capacity-gb) over-capacity behavior: evict or block")
		disagg   = flag.String("disagg", "", "(with -serve -kv-capacity-gb) split the fleet into prefill:decode pools, e.g. 2:6")
		plan     = flag.Bool("plan", false, "plan capacity: find the minimal fleet meeting the -slo-* targets at -rate")
		sloP99   = flag.Float64("slo-p99-us", 0, "(with -plan) p99 end-to-end latency target in µs (0 = untargeted)")
		sloTTFT  = flag.Float64("slo-ttft-p99-us", 0, "(with -plan) p99 TTFT target in µs; needs -kv-capacity-gb (0 = untargeted)")
		sloRPS   = flag.Float64("slo-min-rps", 0, "(with -plan) served-throughput floor in requests/s (0 = untargeted)")
		sloDrop  = flag.Float64("slo-max-drop-pct", -1, "(with -plan) admission drop-rate cap in percent; 0 means drop nothing (-1 = untargeted)")
		planMax  = flag.Int("plan-max-replicas", planner.DefaultMaxReplicas, "(with -plan) replica search ceiling")
		planRout = flag.String("plan-routings", "", "(with -plan) comma-separated routing axis (default rr,least,jsq,po2)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()
	engine.Shared().SetParallelism(*par)

	// The profiling flags are valid in both modes: the hot paths they
	// exist to inspect span training and serving alike.
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "trainsim:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "trainsim:", err)
			f.Close()
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			if err := writeHeapProfile(*memProf); err != nil {
				fmt.Fprintln(os.Stderr, "trainsim:", err)
			}
		}()
	}

	// The three modes accept disjoint knobs; reject mismatched flags
	// instead of silently ignoring them (forgetting -serve while
	// passing -rate would otherwise run a training simulation, and
	// passing -replicas with -plan would contradict the planner, whose
	// job is to choose the replica count).
	if *serve && *plan {
		fmt.Fprintln(os.Stderr, "trainsim: -serve and -plan are mutually exclusive; choose one mode")
		return 1
	}
	mode := "train"
	switch {
	case *serve:
		mode = "serve"
	case *plan:
		mode = "plan"
	}
	var visited []string
	routingSet, simParSet, rateSet := false, false, false
	flag.Visit(func(f *flag.Flag) {
		routingSet = routingSet || f.Name == "routing"
		simParSet = simParSet || f.Name == "sim-parallelism"
		rateSet = rateSet || f.Name == "rate"
		visited = append(visited, f.Name)
	})
	if bad, hint := badModeFlags(mode, visited); len(bad) > 0 {
		fmt.Fprintf(os.Stderr, "trainsim: %s %s\n", strings.Join(bad, ", "), hint)
		return 1
	}

	if *plan {
		slo := planner.SLO{
			TTFTP99US:        *sloTTFT,
			LatencyP99US:     *sloP99,
			MinThroughputRPS: *sloRPS,
		}
		if *sloDrop >= 0 {
			slo.MaxDropRatePct = sloDrop
		}
		kvCfg, _, err := kvFromFlags(*kvCapGB, *kvSteps, *kvPre, "", 0)
		if err == nil {
			err = runPlan(*model, *cfgIdx, *batch, *seed, *rate, *policy, *requests, *timeout,
				*queueCap, kvCfg, slo, *planMax, *planRout)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "trainsim:", err)
			return 1
		}
		return 0
	}

	if *serve {
		arr := arrivalSpec{tenants: *tenants, pattern: *pattern, in: *traceIn, out: *traceOut, rateSet: rateSet}
		kvCfg, disaggCfg, err := kvFromFlags(*kvCapGB, *kvSteps, *kvPre, *disagg, *replicas)
		if err == nil {
			// Any fleet-only knob — including an explicit -routing, a
			// bounded queue, a pool split, or replica-advancement
			// parallelism on a single replica — selects the fleet
			// simulator, so no flag is ever silently ignored.
			if *replicas > 1 || *autoScal || *queueCap > 0 || routingSet || simParSet || disaggCfg != nil {
				err = runFleet(*model, *cfgIdx, *batch, *seed, *rate, *policy, *requests, *timeout,
					*replicas, *routing, *queueCap, *autoScal, *simPar, kvCfg, disaggCfg, arr)
			} else {
				err = runServe(*model, *cfgIdx, *batch, *seed, *rate, *policy, *requests, *timeout, kvCfg, arr)
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "trainsim:", err)
			return 1
		}
		return 0
	}

	cl, err := clusterFromFlags(*gpus, *topology, *linkGBps, *linkLat, *overlap)
	if err != nil {
		fmt.Fprintln(os.Stderr, "trainsim:", err)
		return 1
	}
	if err := run(*model, *cfgIdx, *epochs, *batch, *seed, *outCSV, *traceSL, *traceTo, cl); err != nil {
		fmt.Fprintln(os.Stderr, "trainsim:", err)
		return 1
	}
	return 0
}

// Flag groups by mode. Serving-shared flags (-rate, -policy, the KV
// model, ...) describe the workload and apply to both -serve and
// -plan; fleet-only flags pick the fleet shape, which in -plan mode is
// the planner's output, not an input.
var (
	trainOnlyFlags = map[string]bool{
		"gpus": true, "topology": true, "linkgbps": true, "linklatus": true,
		"overlap": true, "epochs": true, "o": true, "trace-sl": true, "trace-o": true,
	}
	fleetOnlyFlags = map[string]bool{
		"replicas": true, "routing": true, "autoscale": true,
		"sim-parallelism": true, "disagg": true,
	}
	serveOnlyFlags = map[string]bool{
		"tenants": true, "pattern": true, "trace-out": true, "trace-in": true,
	}
	servingSharedFlags = map[string]bool{
		"rate": true, "policy": true, "requests": true, "serve-timeout-us": true,
		"queue-cap": true, "kv-capacity-gb": true, "decode-steps": true, "kv-preempt": true,
	}
	planOnlyFlags = map[string]bool{
		"slo-p99-us": true, "slo-ttft-p99-us": true, "slo-min-rps": true,
		"slo-max-drop-pct": true, "plan-max-replicas": true, "plan-routings": true,
	}
)

// badModeFlags returns the explicitly-set flags that do not apply to
// the selected mode ("train", "serve" or "plan"), plus the hint to
// print after them.
func badModeFlags(mode string, visited []string) (bad []string, hint string) {
	wrong := func(name string) bool {
		switch mode {
		case "serve":
			return trainOnlyFlags[name] || planOnlyFlags[name]
		case "plan":
			return trainOnlyFlags[name] || fleetOnlyFlags[name] || serveOnlyFlags[name]
		default:
			return servingSharedFlags[name] || fleetOnlyFlags[name] || serveOnlyFlags[name] || planOnlyFlags[name]
		}
	}
	for _, name := range visited {
		if wrong(name) {
			bad = append(bad, "-"+name)
		}
	}
	if len(bad) == 0 {
		return nil, ""
	}
	switch mode {
	case "serve":
		hint = "do not apply to -serve; training flags need the default mode, -slo-*/-plan-* need -plan"
	case "plan":
		hint = "do not apply to -plan: the planner chooses the fleet shape and drives its own probe traces; use -serve to price a fleet you pick"
	default:
		hint = "apply to -serve or -plan only; add one of those flags"
	}
	return bad, hint
}

// writeHeapProfile snapshots the heap into path after a final GC, so
// the profile reflects live allocations rather than garbage.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	return pprof.WriteHeapProfile(f)
}

// kvFromFlags assembles the KV-cache and disaggregation configuration
// from the serve-mode flags; both are nil with the memory model off.
func kvFromFlags(capGB float64, steps int, preempt, disagg string, replicas int) (*serving.KVConfig, *serving.DisaggConfig, error) {
	if capGB == 0 {
		if steps != 0 || preempt != "" || disagg != "" {
			return nil, nil, fmt.Errorf("-decode-steps, -kv-preempt and -disagg need the KV model; add -kv-capacity-gb")
		}
		return nil, nil, nil
	}
	kv := &serving.KVConfig{CapacityBytes: capGB * 1e9, DecodeSteps: steps, Preempt: preempt}
	if err := kv.Validate(); err != nil {
		return nil, nil, err
	}
	if disagg == "" {
		return kv, nil, nil
	}
	var p, d int
	if n, err := fmt.Sscanf(disagg, "%d:%d", &p, &d); n != 2 || err != nil {
		return nil, nil, fmt.Errorf("-disagg wants prefill:decode pool sizes (e.g. 2:6), got %q", disagg)
	}
	if p+d != replicas {
		return nil, nil, fmt.Errorf("-disagg pools must sum to -replicas: %d + %d != %d", p, d, replicas)
	}
	return kv, &serving.DisaggConfig{PrefillReplicas: p, DecodeReplicas: d}, nil
}

// arrivalSpec carries the serve-mode trace-shaping flags: a recorded
// trace to replay, or the generator's tenant mix and arrival pattern,
// plus an optional path to save whichever trace the run used.
type arrivalSpec struct {
	tenants string
	pattern string
	in, out string
	// rateSet records whether -rate was given explicitly; a replayed
	// trace is rescaled to -rate only then, and keeps its recorded
	// arrival times otherwise.
	rateSet bool
}

// arrivalTrace builds the serve-mode arrival trace: a replayed trace
// file, a generated multi-tenant or pattern-shaped trace, or the
// default Poisson process.
func arrivalTrace(w experiments.Workload, requests int, rate float64, seed int64, arr arrivalSpec) (serving.Trace, error) {
	if arr.in != "" {
		if arr.tenants != "" || arr.pattern != "" {
			return serving.Trace{}, fmt.Errorf("-trace-in replays a recorded trace; -tenants and -pattern shape generated ones — drop one side")
		}
		tr, err := serving.LoadTrace(arr.in)
		if err != nil {
			return serving.Trace{}, err
		}
		if arr.rateSet {
			return tr.ScaleToRate(rate)
		}
		return tr, nil
	}
	if arr.tenants == "" && arr.pattern == "" {
		return serving.PoissonTrace(w.Train, requests, rate, seed)
	}
	cohorts, err := parseTenants(arr.tenants, w.Train.Lengths)
	if err != nil {
		return serving.Trace{}, err
	}
	pat := serving.Pattern{Kind: arr.pattern}
	if arr.pattern == serving.PatternDiurnal {
		// Mirror the HTTP envelope's defaults: ±50% swing, two cycles
		// over the nominal trace horizon.
		pat.Amplitude = 0.5
		pat.PeriodUS = float64(requests) / rate * 1e6 / 2
	}
	return serving.Generate(serving.GenSpec{
		Requests:   requests,
		RatePerSec: rate,
		Seed:       seed,
		Pattern:    pat,
		Cohorts:    cohorts,
	})
}

// parseTenants parses the -tenants cohort list ("chat=3,bulk=1") into
// equal-weight cohorts drawing from the corpus lengths. An empty list
// (pattern shaping without tenancy) yields one anonymous cohort.
func parseTenants(spec string, seqLens []int) ([]serving.Cohort, error) {
	if spec == "" {
		return []serving.Cohort{{Tenants: 1, Weight: 1, SeqLens: seqLens}}, nil
	}
	var cohorts []serving.Cohort
	for _, part := range strings.Split(spec, ",") {
		class, count, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || class == "" {
			return nil, fmt.Errorf("-tenants wants class=count pairs (e.g. chat=3,bulk=1), got %q", part)
		}
		n, err := strconv.Atoi(count)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("-tenants cohort %q needs a positive tenant count, got %q", class, count)
		}
		cohorts = append(cohorts, serving.Cohort{Class: class, Tenants: n, Weight: 1, SeqLens: seqLens})
	}
	return cohorts, nil
}

// saveArrivals writes the run's arrival trace when -trace-out is set.
func saveArrivals(path string, tr serving.Trace) error {
	if path == "" {
		return nil
	}
	if err := serving.SaveTrace(path, tr); err != nil {
		return err
	}
	fmt.Printf("wrote %d-request arrival trace to %s\n", len(tr.Requests), path)
	return nil
}

// addTenantTable prints the per-tenant roll-up when the trace carried
// tenant labels.
func addTenantTable(stats []serving.TenantStats, kvOn bool) {
	if len(stats) == 0 {
		return
	}
	cols := []string{"tenant", "requests", "served", "drop", "p50", "p95", "p99"}
	if kvOn {
		cols = append(cols, "p99 TTFT")
	}
	tt := report.NewTable("Per-tenant", cols...).AlignNumeric()
	for _, ts := range stats {
		row := []string{
			ts.Tenant,
			report.Count(ts.Requests),
			report.Count(ts.Served),
			report.Pct(ts.DropRatePct),
			report.US(ts.P50LatencyUS),
			report.US(ts.P95LatencyUS),
			report.US(ts.P99LatencyUS),
		}
		if kvOn {
			row = append(row, report.US(ts.P99TTFTUS))
		}
		tt.AddStringRow(row...)
	}
	fmt.Print(tt.String())
}

// runServe simulates online serving and prints the roll-up.
func runServe(model string, cfgIdx, batch int, seed int64, rate float64, policyName string, requests int, timeoutUS float64, kv *serving.KVConfig, arr arrivalSpec) error {
	cfgs := gpusim.TableII()
	if cfgIdx < 1 || cfgIdx > len(cfgs) {
		return fmt.Errorf("config %d outside Table II range 1-%d", cfgIdx, len(cfgs))
	}
	cfg := cfgs[cfgIdx-1]
	w, err := experiments.ServedWorkloadByName(model, seed)
	if err != nil {
		return err
	}
	pol, err := serving.ParsePolicy(policyName, batch, timeoutUS)
	if err != nil {
		return err
	}
	trace, err := arrivalTrace(w, requests, rate, seed, arr)
	if err != nil {
		return err
	}
	if err := saveArrivals(arr.out, trace); err != nil {
		return err
	}
	res, err := serving.Simulate(serving.Spec{Model: w.Model, Trace: trace, Policy: pol, KV: kv}, cfg)
	if err != nil {
		return err
	}
	sum := res.Summary()

	fmt.Printf("model=%s trace=%s config=%s policy=%s\n", w.Name, trace.Name, cfg, sum.Policy)
	t := report.NewTable("Serving summary", "quantity", "value").Align(1, report.AlignRight)
	t.AddStringRow("requests", report.Count(sum.Requests))
	t.AddStringRow("batches", report.Count(sum.Batches))
	t.AddStringRow("mean batch size", fmt.Sprintf("%.1f", sum.MeanBatch))
	t.AddStringRow("makespan", report.US(sum.MakespanUS))
	t.AddStringRow("utilization", report.Pct(sum.UtilizationPct))
	t.AddStringRow("throughput", fmt.Sprintf("%.1f req/s", sum.ThroughputRPS))
	t.AddStringRow("mean wait", report.US(sum.MeanWaitUS))
	t.AddStringRow("mean latency", report.US(sum.MeanLatencyUS))
	t.AddStringRow("p50 latency", report.US(sum.P50LatencyUS))
	t.AddStringRow("p95 latency", report.US(sum.P95LatencyUS))
	t.AddStringRow("p99 latency", report.US(sum.P99LatencyUS))
	if kv != nil {
		addKVRows(t, sum.MeanTTFTUS, sum.P99TTFTUS, sum.Preemptions, sum.KVPeakBytes, sum.KVCapacityBytes)
	}
	fmt.Print(t.String())
	addTenantTable(sum.PerTenant, kv != nil)
	return nil
}

// addKVRows appends the KV-model rows shared by the serve and fleet
// summaries.
func addKVRows(t *report.Table, meanTTFT, p99TTFT float64, preemptions int, peak, capacity float64) {
	t.AddStringRow("mean TTFT", report.US(meanTTFT))
	t.AddStringRow("p99 TTFT", report.US(p99TTFT))
	t.AddStringRow("preemptions", report.Count(preemptions))
	t.AddStringRow("KV peak / capacity", fmt.Sprintf("%.2f / %.2f GB", peak/1e9, capacity/1e9))
}

// runFleet simulates multi-replica serving and prints the fleet
// roll-up.
func runFleet(model string, cfgIdx, batch int, seed int64, rate float64, policyName string,
	requests int, timeoutUS float64, replicas int, routingName string, queueCap int,
	autoscale bool, simParallelism int, kv *serving.KVConfig, disagg *serving.DisaggConfig,
	arr arrivalSpec) error {
	cfgs := gpusim.TableII()
	if cfgIdx < 1 || cfgIdx > len(cfgs) {
		return fmt.Errorf("config %d outside Table II range 1-%d", cfgIdx, len(cfgs))
	}
	cfg := cfgs[cfgIdx-1]
	w, err := experiments.ServedWorkloadByName(model, seed)
	if err != nil {
		return err
	}
	pol, err := serving.ParsePolicy(policyName, batch, timeoutUS)
	if err != nil {
		return err
	}
	router, err := serving.ParseRouting(routingName, seed)
	if err != nil {
		return err
	}
	trace, err := arrivalTrace(w, requests, rate, seed, arr)
	if err != nil {
		return err
	}
	if err := saveArrivals(arr.out, trace); err != nil {
		return err
	}
	spec := serving.FleetSpec{
		Model:       w.Model,
		Trace:       trace,
		Policy:      pol,
		Router:      router,
		Replicas:    replicas,
		QueueCap:    queueCap,
		Parallelism: simParallelism,
		KV:          kv,
		Disagg:      disagg,
	}
	if autoscale {
		// Scale between one replica and the flag's fleet size: up past
		// one full batch queued per live replica, down below a quarter.
		spec.Replicas = 1
		spec.Autoscale = &serving.AutoscaleConfig{
			Min:        1,
			Max:        replicas,
			UpDepth:    float64(batch),
			DownDepth:  float64(batch) / 4,
			CooldownUS: 50_000,
		}
	}
	res, err := serving.SimulateFleet(spec, cfg)
	if err != nil {
		return err
	}
	sum := res.Summary()

	fmt.Printf("model=%s trace=%s config=%s policy=%s routing=%s replicas=%d\n",
		w.Name, trace.Name, cfg, sum.Policy, sum.Routing, sum.Replicas)
	t := report.NewTable("Fleet summary", "quantity", "value").Align(1, report.AlignRight)
	t.AddStringRow("requests", report.Count(sum.Requests))
	t.AddStringRow("served", report.Count(sum.Served))
	t.AddStringRow("rejected", report.Count(sum.Rejected))
	t.AddStringRow("drop rate", report.Pct(sum.DropRatePct))
	t.AddStringRow("batches", report.Count(sum.Batches))
	t.AddStringRow("makespan", report.US(sum.MakespanUS))
	t.AddStringRow("utilization", report.Pct(sum.UtilizationPct))
	t.AddStringRow("throughput", fmt.Sprintf("%.1f req/s", sum.ThroughputRPS))
	t.AddStringRow("mean wait", report.US(sum.MeanWaitUS))
	t.AddStringRow("p50 latency", report.US(sum.P50LatencyUS))
	t.AddStringRow("p95 latency", report.US(sum.P95LatencyUS))
	t.AddStringRow("p99 latency", report.US(sum.P99LatencyUS))
	t.AddStringRow("replica-seconds", fmt.Sprintf("%.2f", sum.ReplicaSeconds))
	if kv != nil {
		addKVRows(t, sum.MeanTTFTUS, sum.P99TTFTUS, sum.Preemptions, sum.KVPeakBytes, sum.KVCapacityBytes)
	}
	if sum.Disagg != "" {
		t.AddStringRow("pools", sum.Disagg)
	}
	if autoscale {
		t.AddStringRow("scale ups / downs", fmt.Sprintf("%d / %d", sum.ScaleUps, sum.ScaleDowns))
		t.AddStringRow("peak replicas", report.Count(sum.PeakReplicas))
	}
	fmt.Print(t.String())
	addTenantTable(sum.PerTenant, kv != nil)

	rt := report.NewTable("Per-replica", "replica", "gpus", "served", "batches", "busy", "live").AlignNumeric()
	for _, rs := range sum.PerReplica {
		rt.AddStringRow(
			fmt.Sprintf("%d", rs.Replica),
			fmt.Sprintf("%d", rs.GPUs),
			fmt.Sprintf("%d", rs.Served),
			fmt.Sprintf("%d", rs.Batches),
			report.US(rs.BusyUS),
			report.US(rs.LiveUS))
	}
	fmt.Print(rt.String())
	return nil
}

// runPlan searches for the minimal fleet meeting the SLO at the
// offered rate and prints the plan report.
func runPlan(model string, cfgIdx, batch int, seed int64, rate float64, policyName string,
	requests int, timeoutUS float64, queueCap int, kv *serving.KVConfig,
	slo planner.SLO, maxReplicas int, routingsCSV string) error {
	cfgs := gpusim.TableII()
	if cfgIdx < 1 || cfgIdx > len(cfgs) {
		return fmt.Errorf("config %d outside Table II range 1-%d", cfgIdx, len(cfgs))
	}
	cfg := cfgs[cfgIdx-1]
	if err := slo.Validate(); err != nil {
		return fmt.Errorf("%w; set at least one of -slo-p99-us, -slo-ttft-p99-us, -slo-min-rps, -slo-max-drop-pct", err)
	}
	w, err := experiments.ServedWorkloadByName(model, seed)
	if err != nil {
		return err
	}
	w.Batch = batch
	pol, err := serving.ParsePolicy(policyName, batch, timeoutUS)
	if err != nil {
		return err
	}
	var routings []string
	if routingsCSV != "" {
		for _, r := range strings.Split(routingsCSV, ",") {
			name := strings.TrimSpace(r)
			// Validate eagerly: search pruning can skip a combination
			// entirely, which would let a typo ride along unnoticed.
			if _, err := serving.ParseRouting(name, seed); err != nil {
				return err
			}
			routings = append(routings, name)
		}
	}
	probe, err := experiments.PlanProbe(engine.Shared(), w, cfg, experiments.PlanProbeConfig{
		Requests:        requests,
		QueueCap:        queueCap,
		KV:              kv,
		Policy:          pol,
		PolicyTimeoutUS: timeoutUS,
	})
	if err != nil {
		return err
	}
	plan, err := planner.Solve(planner.Spec{
		SLO:         slo,
		RatePerSec:  rate,
		MaxReplicas: maxReplicas,
		Routings:    routings,
		Probe:       probe,
	})
	if err != nil {
		return err
	}

	fmt.Printf("model=%s config=%s rate=%g req/s max-replicas=%d\n", w.Name, cfg, rate, maxReplicas)
	t := report.NewTable("Capacity plan", "quantity", "value").Align(1, report.AlignRight)
	t.AddStringRow("replicas", report.Count(plan.Replicas))
	t.AddStringRow("routing", plan.Routing)
	t.AddStringRow("policy", plan.Policy)
	if plan.KVCapacityGB > 0 {
		t.AddStringRow("KV capacity", fmt.Sprintf("%.2f GB", plan.KVCapacityGB))
	}
	t.AddStringRow("cost", fmt.Sprintf("%.2f replica-s", plan.CostReplicaSeconds))
	t.AddStringRow("throughput", fmt.Sprintf("%.1f req/s", plan.Summary.ThroughputRPS))
	t.AddStringRow("p99 latency", report.US(plan.Summary.P99LatencyUS))
	t.AddStringRow("probe evaluations", report.Count(plan.Evaluations))
	fmt.Print(t.String())

	st := report.NewTable("SLO targets", "dimension", "target", "achieved", "headroom", "met").AlignNumeric()
	for _, d := range plan.SLO {
		met := "yes"
		if !d.OK {
			met = "NO"
		}
		st.AddStringRow(d.Name, fmt.Sprintf("%.6g", d.Target), fmt.Sprintf("%.6g", d.Achieved),
			report.Pct(d.HeadroomPct), met)
	}
	fmt.Print(st.String())

	sat := plan.Saturation
	at := report.NewTable("Saturation", "quantity", "value").Align(1, report.AlignRight)
	at.AddStringRow("bottleneck", sat.Bottleneck)
	at.AddStringRow("compute pressure", report.Pct(sat.ComputePct))
	at.AddStringRow("queue pressure", report.Pct(sat.QueuePct))
	if sat.KVPct > 0 {
		at.AddStringRow("KV pressure", report.Pct(sat.KVPct))
	}
	at.AddStringRow("SLO headroom", report.Pct(sat.SLOHeadroomPct))
	knee := fmt.Sprintf("%.1f req/s (%.2f× planned)", sat.KneeRPS, sat.KneeFactor)
	if sat.KneeCapped {
		knee += " — beyond probed range"
	}
	at.AddStringRow("knee", knee)
	fmt.Print(at.String())
	return nil
}

// clusterFromFlags assembles and validates the cluster configuration.
func clusterFromFlags(gpus int, topology string, linkGBps, linkLatUS, overlap float64) (gpusim.ClusterConfig, error) {
	if gpus <= 1 {
		return gpusim.SingleGPU(), nil
	}
	topo, err := gpusim.ParseTopology(topology)
	if err != nil {
		return gpusim.ClusterConfig{}, err
	}
	cl := gpusim.ClusterConfig{
		GPUs:          gpus,
		Topology:      topo,
		LinkGBps:      linkGBps,
		LinkLatencyUS: linkLatUS,
		Overlap:       overlap,
	}
	return cl, cl.Validate()
}

func run(model string, cfgIdx, epochs, batch int, seed int64, outCSV string, traceSL int, traceTo string, cl gpusim.ClusterConfig) error {
	cfgs := gpusim.TableII()
	if cfgIdx < 1 || cfgIdx > len(cfgs) {
		return fmt.Errorf("config %d outside Table II range 1-%d", cfgIdx, len(cfgs))
	}
	cfg := cfgs[cfgIdx-1]

	w, err := experiments.WorkloadByName(model, seed)
	if err != nil {
		return err
	}
	w.Batch = batch
	w.Epochs = epochs
	w.Cluster = cl

	if traceSL > 0 {
		if err := writeTrace(w, cfg, traceSL, traceTo); err != nil {
			return err
		}
		fmt.Printf("wrote Chrome trace of one %s iteration at SL %d to %s\n",
			w.Name, traceSL, traceTo)
	}

	lab := experiments.NewLab()
	r, err := lab.Run(w, cfg)
	if err != nil {
		return err
	}

	fmt.Printf("model=%s dataset=%s config=%s cluster=%s epochs=%d batch=%d\n",
		w.Name, w.Train.Name, cfg, r.Cluster, epochs, batch)
	st := report.NewTable("Run summary", "quantity", "value").Align(1, report.AlignRight)
	st.AddStringRow("training iterations", report.Count(r.Iterations))
	st.AddStringRow("unique seqlens", report.Count(len(r.BySL)))
	st.AddStringRow("training time", report.US(r.TrainUS))
	if r.Cluster.GPUs > 1 {
		st.AddStringRow("per-GPU shard batch", report.Count(r.Cluster.ShardBatch(r.Batch)))
		st.AddStringRow("exposed comm time", report.US(r.CommUS))
	}
	st.AddStringRow("evaluation time", report.US(r.EvalUS))
	st.AddStringRow("autotune time", report.US(r.AutotuneUS))
	st.AddStringRow("total time", report.US(r.TotalUS()))
	st.AddStringRow("throughput", fmt.Sprintf("%.1f samples/s", r.Throughput()))
	fmt.Print(st.String())

	sum, err := r.EpochSummary(0)
	if err != nil {
		return err
	}
	t := report.NewTable("Per-SL profile (epoch 0)",
		"seqlen", "iterations", "iter_time_us", "valu_insts", "load_bytes", "store_bytes", "write_stall_cycles").
		AlignNumeric()
	for _, s := range sum {
		p := r.BySL[s.SeqLen]
		t.AddStringRow(
			fmt.Sprintf("%d", s.SeqLen),
			fmt.Sprintf("%d", s.Count),
			fmt.Sprintf("%.1f", s.IterTimeUS),
			fmt.Sprintf("%.0f", p.Counters.VALUInsts),
			fmt.Sprintf("%.0f", p.Counters.LoadBytes),
			fmt.Sprintf("%.0f", p.Counters.StoreBytes),
			fmt.Sprintf("%.0f", p.Counters.MemWriteStallCycles),
		)
	}

	var out io.Writer = os.Stdout
	if outCSV != "" {
		f, err := os.Create(outCSV)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
		fmt.Printf("\nwriting %d per-SL rows to %s\n", t.Rows(), outCSV)
		_, err = io.WriteString(out, t.CSV())
		return err
	}
	fmt.Println()
	fmt.Print(t.String())
	return nil
}
