// Command trainsim runs the simulated training of a model on a hardware
// configuration and dumps the per-unique-SL iteration profile as CSV
// (seqlen, iterations, iteration time, counters) plus a run summary.
// The CSV is the raw data behind the paper's Figs 7 and 9.
//
// Usage:
//
//	trainsim -model ds2 -config 3 -epochs 2 -parallelism 8 -o profile.csv
//	trainsim -model gnmt -gpus 8 -topology ring -linkgbps 25
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"seqpoint/internal/engine"
	"seqpoint/internal/experiments"
	"seqpoint/internal/gpusim"
	"seqpoint/internal/profiler"
	"seqpoint/internal/report"
)

// writeTrace prices one iteration at traceSL and writes its kernel
// timeline as Chrome trace-event JSON.
func writeTrace(w experiments.Workload, cfg gpusim.Config, traceSL int, path string) error {
	sim, err := gpusim.New(cfg)
	if err != nil {
		return err
	}
	invs, err := profiler.TraceIteration(sim, w.Model, w.Batch, traceSL)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return profiler.WriteChromeTrace(f, invs)
}

func main() {
	var (
		model    = flag.String("model", "ds2", "model to train: ds2, gnmt, transformer, seq2seq or cnn")
		cfgIdx   = flag.Int("config", 1, "Table II configuration number (1-5)")
		epochs   = flag.Int("epochs", experiments.DefaultEpochs, "epochs to simulate")
		batch    = flag.Int("batch", experiments.DefaultBatch, "minibatch size")
		seed     = flag.Int64("seed", experiments.DefaultSeed, "dataset/shuffle seed")
		outCSV   = flag.String("o", "", "write per-SL profile CSV to this file (default: stdout table only)")
		traceSL  = flag.Int("trace-sl", 0, "also write a Chrome trace of one iteration at this SL")
		traceTo  = flag.String("trace-o", "trace.json", "Chrome trace output path (with -trace-sl)")
		par      = flag.Int("parallelism", 0, "concurrent profiling workers (0 = GOMAXPROCS)")
		gpus     = flag.Int("gpus", 1, "data-parallel GPU count (1 = single-GPU training)")
		topology = flag.String("topology", string(gpusim.TopologyRing), "cluster interconnect: ring or mesh")
		linkGBps = flag.Float64("linkgbps", gpusim.DefaultLinkGBps, "per-link interconnect bandwidth in GB/s")
		linkLat  = flag.Float64("linklatus", gpusim.DefaultLinkLatencyUS, "per-hop interconnect latency in microseconds")
		overlap  = flag.Float64("overlap", gpusim.DefaultOverlap, "fraction of compute the all-reduce can hide behind [0,1]")
	)
	flag.Parse()
	engine.Shared().SetParallelism(*par)

	cl, err := clusterFromFlags(*gpus, *topology, *linkGBps, *linkLat, *overlap)
	if err != nil {
		fmt.Fprintln(os.Stderr, "trainsim:", err)
		os.Exit(1)
	}
	if err := run(*model, *cfgIdx, *epochs, *batch, *seed, *outCSV, *traceSL, *traceTo, cl); err != nil {
		fmt.Fprintln(os.Stderr, "trainsim:", err)
		os.Exit(1)
	}
}

// clusterFromFlags assembles and validates the cluster configuration.
func clusterFromFlags(gpus int, topology string, linkGBps, linkLatUS, overlap float64) (gpusim.ClusterConfig, error) {
	if gpus <= 1 {
		return gpusim.SingleGPU(), nil
	}
	topo, err := gpusim.ParseTopology(topology)
	if err != nil {
		return gpusim.ClusterConfig{}, err
	}
	cl := gpusim.ClusterConfig{
		GPUs:          gpus,
		Topology:      topo,
		LinkGBps:      linkGBps,
		LinkLatencyUS: linkLatUS,
		Overlap:       overlap,
	}
	return cl, cl.Validate()
}

func run(model string, cfgIdx, epochs, batch int, seed int64, outCSV string, traceSL int, traceTo string, cl gpusim.ClusterConfig) error {
	cfgs := gpusim.TableII()
	if cfgIdx < 1 || cfgIdx > len(cfgs) {
		return fmt.Errorf("config %d outside Table II range 1-%d", cfgIdx, len(cfgs))
	}
	cfg := cfgs[cfgIdx-1]

	var w experiments.Workload
	switch model {
	case "ds2":
		w = experiments.DS2Workload(seed)
	case "gnmt":
		w = experiments.GNMTWorkload(seed)
	case "transformer":
		w = experiments.TransformerWorkload(seed)
	case "seq2seq":
		w = experiments.Seq2SeqWorkload(seed)
	case "cnn":
		w = experiments.CNNWorkload(seed)
	default:
		return fmt.Errorf("unknown model %q (want ds2, gnmt, transformer, seq2seq or cnn)", model)
	}
	w.Batch = batch
	w.Epochs = epochs
	w.Cluster = cl

	if traceSL > 0 {
		if err := writeTrace(w, cfg, traceSL, traceTo); err != nil {
			return err
		}
		fmt.Printf("wrote Chrome trace of one %s iteration at SL %d to %s\n",
			w.Name, traceSL, traceTo)
	}

	lab := experiments.NewLab()
	r, err := lab.Run(w, cfg)
	if err != nil {
		return err
	}

	fmt.Printf("model=%s dataset=%s config=%s cluster=%s epochs=%d batch=%d\n",
		w.Name, w.Train.Name, cfg, r.Cluster, epochs, batch)
	st := report.NewTable("Run summary", "quantity", "value").Align(1, report.AlignRight)
	st.AddStringRow("training iterations", report.Count(r.Iterations))
	st.AddStringRow("unique seqlens", report.Count(len(r.BySL)))
	st.AddStringRow("training time", report.US(r.TrainUS))
	if r.Cluster.GPUs > 1 {
		st.AddStringRow("per-GPU shard batch", report.Count(r.Cluster.ShardBatch(r.Batch)))
		st.AddStringRow("exposed comm time", report.US(r.CommUS))
	}
	st.AddStringRow("evaluation time", report.US(r.EvalUS))
	st.AddStringRow("autotune time", report.US(r.AutotuneUS))
	st.AddStringRow("total time", report.US(r.TotalUS()))
	st.AddStringRow("throughput", fmt.Sprintf("%.1f samples/s", r.Throughput()))
	fmt.Print(st.String())

	sum, err := r.EpochSummary(0)
	if err != nil {
		return err
	}
	t := report.NewTable("Per-SL profile (epoch 0)",
		"seqlen", "iterations", "iter_time_us", "valu_insts", "load_bytes", "store_bytes", "write_stall_cycles").
		AlignNumeric()
	for _, s := range sum {
		p := r.BySL[s.SeqLen]
		t.AddStringRow(
			fmt.Sprintf("%d", s.SeqLen),
			fmt.Sprintf("%d", s.Count),
			fmt.Sprintf("%.1f", s.IterTimeUS),
			fmt.Sprintf("%.0f", p.Counters.VALUInsts),
			fmt.Sprintf("%.0f", p.Counters.LoadBytes),
			fmt.Sprintf("%.0f", p.Counters.StoreBytes),
			fmt.Sprintf("%.0f", p.Counters.MemWriteStallCycles),
		)
	}

	var out io.Writer = os.Stdout
	if outCSV != "" {
		f, err := os.Create(outCSV)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
		fmt.Printf("\nwriting %d per-SL rows to %s\n", t.Rows(), outCSV)
		_, err = io.WriteString(out, t.CSV())
		return err
	}
	fmt.Println()
	fmt.Print(t.String())
	return nil
}
