package main

import (
	"testing"

	"seqpoint/internal/gpusim"
	"seqpoint/internal/serving"
)

func TestKVFromFlags(t *testing.T) {
	if kv, dis, err := kvFromFlags(0, 0, "", "", 2); err != nil || kv != nil || dis != nil {
		t.Fatalf("no KV flags should mean no KV model: %v %v %v", kv, dis, err)
	}
	if _, _, err := kvFromFlags(0, 8, "", "", 2); err == nil {
		t.Error("-decode-steps without -kv-capacity-gb should error")
	}
	kv, dis, err := kvFromFlags(0.5, 8, "block", "1:2", 3)
	if err != nil {
		t.Fatal(err)
	}
	if kv == nil || kv.CapacityBytes != 0.5e9 || kv.DecodeSteps != 8 || kv.Preempt != serving.PreemptBlock {
		t.Errorf("kv = %+v", kv)
	}
	if dis == nil || dis.PrefillReplicas != 1 || dis.DecodeReplicas != 2 {
		t.Errorf("disagg = %+v", dis)
	}
	if _, _, err := kvFromFlags(0.5, 8, "", "1:3", 3); err == nil {
		t.Error("pools not summing to replicas should error")
	}
	if _, _, err := kvFromFlags(0.5, 0, "", "nope", 2); err == nil {
		t.Error("malformed -disagg should error")
	}
}

func TestClusterFromFlags(t *testing.T) {
	cl, err := clusterFromFlags(1, "ring", 25, 1.5, 0.5)
	if err != nil || cl.GPUs != 1 {
		t.Fatalf("single GPU: %+v, %v", cl, err)
	}
	cl, err = clusterFromFlags(4, "mesh", 50, 1.0, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if cl.GPUs != 4 || cl.Topology != gpusim.TopologyFullMesh || cl.LinkGBps != 50 {
		t.Errorf("cluster = %+v", cl)
	}
	if _, err := clusterFromFlags(4, "torus", 25, 1.5, 0.5); err == nil {
		t.Error("unknown topology should error")
	}
	if _, err := clusterFromFlags(4, "ring", -1, 1.5, 0.5); err == nil {
		t.Error("negative bandwidth should error")
	}
}

// TestRunServeAndFleet drives the two serving entry points end to end
// (output goes to stdout; errors are what we assert on).
func TestRunServeAndFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("full serving simulations skipped in -short mode")
	}
	if err := runServe("gnmt", 1, 8, 1, 300, "dynamic", 48, 20000, nil); err != nil {
		t.Errorf("runServe: %v", err)
	}
	if err := runFleet("gnmt", 1, 8, 1, 600, "dynamic", 48, 20000, 3, "jsq", 64, false, 0, nil, nil); err != nil {
		t.Errorf("runFleet: %v", err)
	}
	if err := runFleet("gnmt", 1, 8, 1, 600, "dynamic", 48, 20000, 2, "po2", 0, true, 0, nil, nil); err != nil {
		t.Errorf("runFleet autoscale: %v", err)
	}
	kv := &serving.KVConfig{CapacityBytes: 0.05e9, DecodeSteps: 16}
	if err := runServe("gnmt", 1, 8, 1, 300, "dynamic", 48, 20000, kv); err != nil {
		t.Errorf("runServe kv: %v", err)
	}
	if err := runFleet("gnmt", 1, 8, 1, 600, "dynamic", 48, 20000, 3, "kv", 64, false, 0, kv, nil); err != nil {
		t.Errorf("runFleet kv routing: %v", err)
	}
	if err := runFleet("gnmt", 1, 8, 1, 600, "dynamic", 48, 20000, 3, "rr", 64, false, 0, kv,
		&serving.DisaggConfig{PrefillReplicas: 1, DecodeReplicas: 2}); err != nil {
		t.Errorf("runFleet disagg: %v", err)
	}

	// Error paths: bad config index, model, policy, routing.
	if err := runServe("gnmt", 9, 8, 1, 300, "dynamic", 48, 20000, nil); err == nil {
		t.Error("config out of range should error")
	}
	if err := runFleet("gnmt", 0, 8, 1, 300, "dynamic", 48, 20000, 2, "rr", 0, false, 0, nil, nil); err == nil {
		t.Error("config out of range should error")
	}
	if err := runFleet("cnn", 1, 8, 1, 300, "dynamic", 48, 20000, 2, "rr", 0, false, 0, nil, nil); err == nil {
		t.Error("cnn is not servable")
	}
	if err := runFleet("gnmt", 1, 8, 1, 300, "magic", 48, 20000, 2, "rr", 0, false, 0, nil, nil); err == nil {
		t.Error("unknown policy should error")
	}
	if err := runFleet("gnmt", 1, 8, 1, 300, "dynamic", 48, 20000, 2, "torus", 0, false, 0, nil, nil); err == nil {
		t.Error("unknown routing should error")
	}
	if err := runFleet("gnmt", 1, 8, 1, -5, "dynamic", 48, 20000, 2, "rr", 0, false, 0, nil, nil); err == nil {
		t.Error("negative rate should error")
	}
}
