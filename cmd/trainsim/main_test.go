package main

import (
	"reflect"
	"strings"
	"testing"

	"seqpoint/internal/gpusim"
	"seqpoint/internal/planner"
	"seqpoint/internal/serving"
)

// TestBadModeFlags pins the three-way mode × flag-group matrix:
// serving-shared flags work in -serve and -plan, fleet-shape flags are
// serve-only (the planner chooses the fleet), SLO flags are plan-only,
// and training flags belong to the default mode.
func TestBadModeFlags(t *testing.T) {
	cases := []struct {
		name    string
		mode    string
		visited []string
		wantBad []string
		hintHas string
	}{
		{"clean train", "train", []string{"model", "epochs", "gpus", "o"}, nil, ""},
		{"clean serve", "serve", []string{"serve", "rate", "policy", "replicas", "routing", "kv-capacity-gb"}, nil, ""},
		{"clean plan", "plan", []string{"plan", "rate", "policy", "queue-cap", "kv-capacity-gb", "slo-p99-us", "plan-max-replicas"}, nil, ""},
		{"serving flags without a serving mode", "train", []string{"rate", "requests"}, []string{"-rate", "-requests"}, "-serve or -plan"},
		{"slo flags without plan", "train", []string{"slo-min-rps"}, []string{"-slo-min-rps"}, "-serve or -plan"},
		{"train flags under serve", "serve", []string{"serve", "gpus", "topology"}, []string{"-gpus", "-topology"}, "do not apply to -serve"},
		{"plan flags under serve", "serve", []string{"serve", "slo-p99-us", "plan-routings"}, []string{"-slo-p99-us", "-plan-routings"}, "need -plan"},
		{"fleet shape under plan", "plan", []string{"plan", "replicas", "routing", "autoscale"}, []string{"-replicas", "-routing", "-autoscale"}, "planner chooses the fleet shape"},
		{"train flags under plan", "plan", []string{"plan", "epochs"}, []string{"-epochs"}, "do not apply to -plan"},
		{"profiling flags valid everywhere", "plan", []string{"plan", "cpuprofile", "memprofile", "parallelism", "slo-p99-us"}, nil, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bad, hint := badModeFlags(tc.mode, tc.visited)
			if !reflect.DeepEqual(bad, tc.wantBad) {
				t.Errorf("bad = %v, want %v", bad, tc.wantBad)
			}
			if tc.hintHas == "" {
				if hint != "" {
					t.Errorf("hint = %q, want empty", hint)
				}
			} else if !strings.Contains(hint, tc.hintHas) {
				t.Errorf("hint %q missing %q", hint, tc.hintHas)
			}
		})
	}
}

// TestRunPlan drives the planning entry point end to end (output goes
// to stdout; errors are what we assert on).
func TestRunPlan(t *testing.T) {
	if testing.Short() {
		t.Skip("full planning searches skipped in -short mode")
	}
	// Feasible: a loose latency target plus a throughput floor.
	slo := planner.SLO{LatencyP99US: 500_000, MinThroughputRPS: 100}
	if err := runPlan("gnmt", 1, 16, 1, 300, "dynamic", 48, 20000, 0, nil, slo, 4, ""); err != nil {
		t.Errorf("runPlan: %v", err)
	}
	// An explicit routing axis and a bounded queue.
	if err := runPlan("gnmt", 1, 16, 1, 300, "dynamic", 48, 20000, 32, nil, slo, 4, "rr,jsq"); err != nil {
		t.Errorf("runPlan with routings: %v", err)
	}
	// The KV model brings TTFT targets into play.
	kv := &serving.KVConfig{CapacityBytes: 0.5e9, DecodeSteps: 16}
	kvSLO := planner.SLO{TTFTP99US: 1e9, MinThroughputRPS: 10}
	if err := runPlan("gnmt", 1, 16, 1, 300, "dynamic", 48, 20000, 0, kv, kvSLO, 4, ""); err != nil {
		t.Errorf("runPlan kv: %v", err)
	}

	// Error paths: bad config, empty SLO, unknown model/policy/routing,
	// infeasible target.
	if err := runPlan("gnmt", 9, 16, 1, 300, "dynamic", 48, 20000, 0, nil, slo, 4, ""); err == nil {
		t.Error("config out of range should error")
	}
	if err := runPlan("gnmt", 1, 16, 1, 300, "dynamic", 48, 20000, 0, nil, planner.SLO{}, 4, ""); err == nil {
		t.Error("empty SLO should error")
	}
	if err := runPlan("cnn", 1, 16, 1, 300, "dynamic", 48, 20000, 0, nil, slo, 4, ""); err == nil {
		t.Error("cnn is not servable")
	}
	if err := runPlan("gnmt", 1, 16, 1, 300, "magic", 48, 20000, 0, nil, slo, 4, ""); err == nil {
		t.Error("unknown policy should error")
	}
	if err := runPlan("gnmt", 1, 16, 1, 300, "dynamic", 48, 20000, 0, nil, slo, 4, "rr,torus"); err == nil {
		t.Error("unknown routing should error")
	}
	if err := runPlan("gnmt", 1, 16, 1, 300, "dynamic", 48, 20000, 0, nil,
		planner.SLO{LatencyP99US: 1}, 2, "rr"); err == nil {
		t.Error("impossible latency target should be infeasible")
	}
}

func TestKVFromFlags(t *testing.T) {
	if kv, dis, err := kvFromFlags(0, 0, "", "", 2); err != nil || kv != nil || dis != nil {
		t.Fatalf("no KV flags should mean no KV model: %v %v %v", kv, dis, err)
	}
	if _, _, err := kvFromFlags(0, 8, "", "", 2); err == nil {
		t.Error("-decode-steps without -kv-capacity-gb should error")
	}
	kv, dis, err := kvFromFlags(0.5, 8, "block", "1:2", 3)
	if err != nil {
		t.Fatal(err)
	}
	if kv == nil || kv.CapacityBytes != 0.5e9 || kv.DecodeSteps != 8 || kv.Preempt != serving.PreemptBlock {
		t.Errorf("kv = %+v", kv)
	}
	if dis == nil || dis.PrefillReplicas != 1 || dis.DecodeReplicas != 2 {
		t.Errorf("disagg = %+v", dis)
	}
	if _, _, err := kvFromFlags(0.5, 8, "", "1:3", 3); err == nil {
		t.Error("pools not summing to replicas should error")
	}
	if _, _, err := kvFromFlags(0.5, 0, "", "nope", 2); err == nil {
		t.Error("malformed -disagg should error")
	}
}

func TestClusterFromFlags(t *testing.T) {
	cl, err := clusterFromFlags(1, "ring", 25, 1.5, 0.5)
	if err != nil || cl.GPUs != 1 {
		t.Fatalf("single GPU: %+v, %v", cl, err)
	}
	cl, err = clusterFromFlags(4, "mesh", 50, 1.0, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if cl.GPUs != 4 || cl.Topology != gpusim.TopologyFullMesh || cl.LinkGBps != 50 {
		t.Errorf("cluster = %+v", cl)
	}
	if _, err := clusterFromFlags(4, "torus", 25, 1.5, 0.5); err == nil {
		t.Error("unknown topology should error")
	}
	if _, err := clusterFromFlags(4, "ring", -1, 1.5, 0.5); err == nil {
		t.Error("negative bandwidth should error")
	}
}

// TestRunServeAndFleet drives the two serving entry points end to end
// (output goes to stdout; errors are what we assert on).
func TestRunServeAndFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("full serving simulations skipped in -short mode")
	}
	if err := runServe("gnmt", 1, 8, 1, 300, "dynamic", 48, 20000, nil); err != nil {
		t.Errorf("runServe: %v", err)
	}
	if err := runFleet("gnmt", 1, 8, 1, 600, "dynamic", 48, 20000, 3, "jsq", 64, false, 0, nil, nil); err != nil {
		t.Errorf("runFleet: %v", err)
	}
	if err := runFleet("gnmt", 1, 8, 1, 600, "dynamic", 48, 20000, 2, "po2", 0, true, 0, nil, nil); err != nil {
		t.Errorf("runFleet autoscale: %v", err)
	}
	kv := &serving.KVConfig{CapacityBytes: 0.05e9, DecodeSteps: 16}
	if err := runServe("gnmt", 1, 8, 1, 300, "dynamic", 48, 20000, kv); err != nil {
		t.Errorf("runServe kv: %v", err)
	}
	if err := runFleet("gnmt", 1, 8, 1, 600, "dynamic", 48, 20000, 3, "kv", 64, false, 0, kv, nil); err != nil {
		t.Errorf("runFleet kv routing: %v", err)
	}
	if err := runFleet("gnmt", 1, 8, 1, 600, "dynamic", 48, 20000, 3, "rr", 64, false, 0, kv,
		&serving.DisaggConfig{PrefillReplicas: 1, DecodeReplicas: 2}); err != nil {
		t.Errorf("runFleet disagg: %v", err)
	}

	// Error paths: bad config index, model, policy, routing.
	if err := runServe("gnmt", 9, 8, 1, 300, "dynamic", 48, 20000, nil); err == nil {
		t.Error("config out of range should error")
	}
	if err := runFleet("gnmt", 0, 8, 1, 300, "dynamic", 48, 20000, 2, "rr", 0, false, 0, nil, nil); err == nil {
		t.Error("config out of range should error")
	}
	if err := runFleet("cnn", 1, 8, 1, 300, "dynamic", 48, 20000, 2, "rr", 0, false, 0, nil, nil); err == nil {
		t.Error("cnn is not servable")
	}
	if err := runFleet("gnmt", 1, 8, 1, 300, "magic", 48, 20000, 2, "rr", 0, false, 0, nil, nil); err == nil {
		t.Error("unknown policy should error")
	}
	if err := runFleet("gnmt", 1, 8, 1, 300, "dynamic", 48, 20000, 2, "torus", 0, false, 0, nil, nil); err == nil {
		t.Error("unknown routing should error")
	}
	if err := runFleet("gnmt", 1, 8, 1, -5, "dynamic", 48, 20000, 2, "rr", 0, false, 0, nil, nil); err == nil {
		t.Error("negative rate should error")
	}
}
