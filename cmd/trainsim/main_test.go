package main

import (
	"testing"

	"seqpoint/internal/gpusim"
)

func TestClusterFromFlags(t *testing.T) {
	cl, err := clusterFromFlags(1, "ring", 25, 1.5, 0.5)
	if err != nil || cl.GPUs != 1 {
		t.Fatalf("single GPU: %+v, %v", cl, err)
	}
	cl, err = clusterFromFlags(4, "mesh", 50, 1.0, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if cl.GPUs != 4 || cl.Topology != gpusim.TopologyFullMesh || cl.LinkGBps != 50 {
		t.Errorf("cluster = %+v", cl)
	}
	if _, err := clusterFromFlags(4, "torus", 25, 1.5, 0.5); err == nil {
		t.Error("unknown topology should error")
	}
	if _, err := clusterFromFlags(4, "ring", -1, 1.5, 0.5); err == nil {
		t.Error("negative bandwidth should error")
	}
}

// TestRunServeAndFleet drives the two serving entry points end to end
// (output goes to stdout; errors are what we assert on).
func TestRunServeAndFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("full serving simulations skipped in -short mode")
	}
	if err := runServe("gnmt", 1, 8, 1, 300, "dynamic", 48, 20000); err != nil {
		t.Errorf("runServe: %v", err)
	}
	if err := runFleet("gnmt", 1, 8, 1, 600, "dynamic", 48, 20000, 3, "jsq", 64, false, 0); err != nil {
		t.Errorf("runFleet: %v", err)
	}
	if err := runFleet("gnmt", 1, 8, 1, 600, "dynamic", 48, 20000, 2, "po2", 0, true, 0); err != nil {
		t.Errorf("runFleet autoscale: %v", err)
	}

	// Error paths: bad config index, model, policy, routing.
	if err := runServe("gnmt", 9, 8, 1, 300, "dynamic", 48, 20000); err == nil {
		t.Error("config out of range should error")
	}
	if err := runFleet("gnmt", 0, 8, 1, 300, "dynamic", 48, 20000, 2, "rr", 0, false, 0); err == nil {
		t.Error("config out of range should error")
	}
	if err := runFleet("cnn", 1, 8, 1, 300, "dynamic", 48, 20000, 2, "rr", 0, false, 0); err == nil {
		t.Error("cnn is not servable")
	}
	if err := runFleet("gnmt", 1, 8, 1, 300, "magic", 48, 20000, 2, "rr", 0, false, 0); err == nil {
		t.Error("unknown policy should error")
	}
	if err := runFleet("gnmt", 1, 8, 1, 300, "dynamic", 48, 20000, 2, "torus", 0, false, 0); err == nil {
		t.Error("unknown routing should error")
	}
	if err := runFleet("gnmt", 1, 8, 1, -5, "dynamic", 48, 20000, 2, "rr", 0, false, 0); err == nil {
		t.Error("negative rate should error")
	}
}
