package main

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"seqpoint/internal/experiments"
	"seqpoint/internal/gpusim"
	"seqpoint/internal/planner"
	"seqpoint/internal/serving"
)

// TestBadModeFlags pins the three-way mode × flag-group matrix:
// serving-shared flags work in -serve and -plan, fleet-shape flags are
// serve-only (the planner chooses the fleet), SLO flags are plan-only,
// and training flags belong to the default mode.
func TestBadModeFlags(t *testing.T) {
	cases := []struct {
		name    string
		mode    string
		visited []string
		wantBad []string
		hintHas string
	}{
		{"clean train", "train", []string{"model", "epochs", "gpus", "o"}, nil, ""},
		{"clean serve", "serve", []string{"serve", "rate", "policy", "replicas", "routing", "kv-capacity-gb"}, nil, ""},
		{"clean plan", "plan", []string{"plan", "rate", "policy", "queue-cap", "kv-capacity-gb", "slo-p99-us", "plan-max-replicas"}, nil, ""},
		{"serving flags without a serving mode", "train", []string{"rate", "requests"}, []string{"-rate", "-requests"}, "-serve or -plan"},
		{"slo flags without plan", "train", []string{"slo-min-rps"}, []string{"-slo-min-rps"}, "-serve or -plan"},
		{"train flags under serve", "serve", []string{"serve", "gpus", "topology"}, []string{"-gpus", "-topology"}, "do not apply to -serve"},
		{"plan flags under serve", "serve", []string{"serve", "slo-p99-us", "plan-routings"}, []string{"-slo-p99-us", "-plan-routings"}, "need -plan"},
		{"fleet shape under plan", "plan", []string{"plan", "replicas", "routing", "autoscale"}, []string{"-replicas", "-routing", "-autoscale"}, "planner chooses the fleet shape"},
		{"train flags under plan", "plan", []string{"plan", "epochs"}, []string{"-epochs"}, "do not apply to -plan"},
		{"profiling flags valid everywhere", "plan", []string{"plan", "cpuprofile", "memprofile", "parallelism", "slo-p99-us"}, nil, ""},
		{"clean multi-tenant serve", "serve", []string{"serve", "rate", "policy", "tenants", "pattern", "trace-out"}, nil, ""},
		{"clean replay serve", "serve", []string{"serve", "trace-in", "policy"}, nil, ""},
		{"workload flags without a serving mode", "train", []string{"tenants", "pattern"}, []string{"-tenants", "-pattern"}, "-serve or -plan"},
		{"trace files without a serving mode", "train", []string{"trace-out", "trace-in"}, []string{"-trace-out", "-trace-in"}, "-serve or -plan"},
		{"workload flags under plan", "plan", []string{"plan", "tenants", "pattern", "slo-p99-us"}, []string{"-tenants", "-pattern"}, "probe traces"},
		{"trace files under plan", "plan", []string{"plan", "trace-in", "trace-out", "slo-min-rps"}, []string{"-trace-in", "-trace-out"}, "do not apply to -plan"},
		{"chrome trace flags are train-only", "serve", []string{"serve", "trace-sl", "trace-o"}, []string{"-trace-sl", "-trace-o"}, "do not apply to -serve"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bad, hint := badModeFlags(tc.mode, tc.visited)
			if !reflect.DeepEqual(bad, tc.wantBad) {
				t.Errorf("bad = %v, want %v", bad, tc.wantBad)
			}
			if tc.hintHas == "" {
				if hint != "" {
					t.Errorf("hint = %q, want empty", hint)
				}
			} else if !strings.Contains(hint, tc.hintHas) {
				t.Errorf("hint %q missing %q", hint, tc.hintHas)
			}
		})
	}
}

// TestRunPlan drives the planning entry point end to end (output goes
// to stdout; errors are what we assert on).
func TestRunPlan(t *testing.T) {
	if testing.Short() {
		t.Skip("full planning searches skipped in -short mode")
	}
	// Feasible: a loose latency target plus a throughput floor.
	slo := planner.SLO{LatencyP99US: 500_000, MinThroughputRPS: 100}
	if err := runPlan("gnmt", 1, 16, 1, 300, "dynamic", 48, 20000, 0, nil, slo, 4, ""); err != nil {
		t.Errorf("runPlan: %v", err)
	}
	// An explicit routing axis and a bounded queue.
	if err := runPlan("gnmt", 1, 16, 1, 300, "dynamic", 48, 20000, 32, nil, slo, 4, "rr,jsq"); err != nil {
		t.Errorf("runPlan with routings: %v", err)
	}
	// The KV model brings TTFT targets into play.
	kv := &serving.KVConfig{CapacityBytes: 0.5e9, DecodeSteps: 16}
	kvSLO := planner.SLO{TTFTP99US: 1e9, MinThroughputRPS: 10}
	if err := runPlan("gnmt", 1, 16, 1, 300, "dynamic", 48, 20000, 0, kv, kvSLO, 4, ""); err != nil {
		t.Errorf("runPlan kv: %v", err)
	}

	// Error paths: bad config, empty SLO, unknown model/policy/routing,
	// infeasible target.
	if err := runPlan("gnmt", 9, 16, 1, 300, "dynamic", 48, 20000, 0, nil, slo, 4, ""); err == nil {
		t.Error("config out of range should error")
	}
	if err := runPlan("gnmt", 1, 16, 1, 300, "dynamic", 48, 20000, 0, nil, planner.SLO{}, 4, ""); err == nil {
		t.Error("empty SLO should error")
	}
	if err := runPlan("cnn", 1, 16, 1, 300, "dynamic", 48, 20000, 0, nil, slo, 4, ""); err == nil {
		t.Error("cnn is not servable")
	}
	if err := runPlan("gnmt", 1, 16, 1, 300, "magic", 48, 20000, 0, nil, slo, 4, ""); err == nil {
		t.Error("unknown policy should error")
	}
	if err := runPlan("gnmt", 1, 16, 1, 300, "dynamic", 48, 20000, 0, nil, slo, 4, "rr,torus"); err == nil {
		t.Error("unknown routing should error")
	}
	if err := runPlan("gnmt", 1, 16, 1, 300, "dynamic", 48, 20000, 0, nil,
		planner.SLO{LatencyP99US: 1}, 2, "rr"); err == nil {
		t.Error("impossible latency target should be infeasible")
	}
}

func TestKVFromFlags(t *testing.T) {
	if kv, dis, err := kvFromFlags(0, 0, "", "", 2); err != nil || kv != nil || dis != nil {
		t.Fatalf("no KV flags should mean no KV model: %v %v %v", kv, dis, err)
	}
	if _, _, err := kvFromFlags(0, 8, "", "", 2); err == nil {
		t.Error("-decode-steps without -kv-capacity-gb should error")
	}
	kv, dis, err := kvFromFlags(0.5, 8, "block", "1:2", 3)
	if err != nil {
		t.Fatal(err)
	}
	if kv == nil || kv.CapacityBytes != 0.5e9 || kv.DecodeSteps != 8 || kv.Preempt != serving.PreemptBlock {
		t.Errorf("kv = %+v", kv)
	}
	if dis == nil || dis.PrefillReplicas != 1 || dis.DecodeReplicas != 2 {
		t.Errorf("disagg = %+v", dis)
	}
	if _, _, err := kvFromFlags(0.5, 8, "", "1:3", 3); err == nil {
		t.Error("pools not summing to replicas should error")
	}
	if _, _, err := kvFromFlags(0.5, 0, "", "nope", 2); err == nil {
		t.Error("malformed -disagg should error")
	}
}

func TestClusterFromFlags(t *testing.T) {
	cl, err := clusterFromFlags(1, "ring", 25, 1.5, 0.5)
	if err != nil || cl.GPUs != 1 {
		t.Fatalf("single GPU: %+v, %v", cl, err)
	}
	cl, err = clusterFromFlags(4, "mesh", 50, 1.0, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if cl.GPUs != 4 || cl.Topology != gpusim.TopologyFullMesh || cl.LinkGBps != 50 {
		t.Errorf("cluster = %+v", cl)
	}
	if _, err := clusterFromFlags(4, "torus", 25, 1.5, 0.5); err == nil {
		t.Error("unknown topology should error")
	}
	if _, err := clusterFromFlags(4, "ring", -1, 1.5, 0.5); err == nil {
		t.Error("negative bandwidth should error")
	}
}

// TestRunServeAndFleet drives the two serving entry points end to end
// (output goes to stdout; errors are what we assert on).
func TestRunServeAndFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("full serving simulations skipped in -short mode")
	}
	if err := runServe("gnmt", 1, 8, 1, 300, "dynamic", 48, 20000, nil, arrivalSpec{}); err != nil {
		t.Errorf("runServe: %v", err)
	}
	if err := runFleet("gnmt", 1, 8, 1, 600, "dynamic", 48, 20000, 3, "jsq", 64, false, 0, nil, nil, arrivalSpec{}); err != nil {
		t.Errorf("runFleet: %v", err)
	}
	if err := runFleet("gnmt", 1, 8, 1, 600, "dynamic", 48, 20000, 2, "po2", 0, true, 0, nil, nil, arrivalSpec{}); err != nil {
		t.Errorf("runFleet autoscale: %v", err)
	}
	kv := &serving.KVConfig{CapacityBytes: 0.05e9, DecodeSteps: 16}
	if err := runServe("gnmt", 1, 8, 1, 300, "dynamic", 48, 20000, kv, arrivalSpec{}); err != nil {
		t.Errorf("runServe kv: %v", err)
	}
	if err := runFleet("gnmt", 1, 8, 1, 600, "dynamic", 48, 20000, 3, "kv", 64, false, 0, kv, nil, arrivalSpec{}); err != nil {
		t.Errorf("runFleet kv routing: %v", err)
	}
	if err := runFleet("gnmt", 1, 8, 1, 600, "dynamic", 48, 20000, 3, "rr", 64, false, 0, kv,
		&serving.DisaggConfig{PrefillReplicas: 1, DecodeReplicas: 2}, arrivalSpec{}); err != nil {
		t.Errorf("runFleet disagg: %v", err)
	}

	// Error paths: bad config index, model, policy, routing.
	if err := runServe("gnmt", 9, 8, 1, 300, "dynamic", 48, 20000, nil, arrivalSpec{}); err == nil {
		t.Error("config out of range should error")
	}
	if err := runFleet("gnmt", 0, 8, 1, 300, "dynamic", 48, 20000, 2, "rr", 0, false, 0, nil, nil, arrivalSpec{}); err == nil {
		t.Error("config out of range should error")
	}
	if err := runFleet("cnn", 1, 8, 1, 300, "dynamic", 48, 20000, 2, "rr", 0, false, 0, nil, nil, arrivalSpec{}); err == nil {
		t.Error("cnn is not servable")
	}
	if err := runFleet("gnmt", 1, 8, 1, 300, "magic", 48, 20000, 2, "rr", 0, false, 0, nil, nil, arrivalSpec{}); err == nil {
		t.Error("unknown policy should error")
	}
	if err := runFleet("gnmt", 1, 8, 1, 300, "dynamic", 48, 20000, 2, "torus", 0, false, 0, nil, nil, arrivalSpec{}); err == nil {
		t.Error("unknown routing should error")
	}
	if err := runFleet("gnmt", 1, 8, 1, -5, "dynamic", 48, 20000, 2, "rr", 0, false, 0, nil, nil, arrivalSpec{}); err == nil {
		t.Error("negative rate should error")
	}
}

// TestParseTenants pins the -tenants cohort grammar.
func TestParseTenants(t *testing.T) {
	sls := []int{4, 8}
	cohorts, err := parseTenants("chat=3, bulk=1", sls)
	if err != nil {
		t.Fatal(err)
	}
	if len(cohorts) != 2 || cohorts[0].Class != "chat" || cohorts[0].Tenants != 3 ||
		cohorts[1].Class != "bulk" || cohorts[1].Tenants != 1 {
		t.Errorf("cohorts = %+v", cohorts)
	}
	for _, c := range cohorts {
		if c.Weight != 1 || !reflect.DeepEqual(c.SeqLens, sls) {
			t.Errorf("cohort %q = %+v, want weight 1 and the corpus pool", c.Class, c)
		}
	}
	// Empty spec: one anonymous cohort (pattern shaping without tenancy).
	anon, err := parseTenants("", sls)
	if err != nil || len(anon) != 1 || anon[0].Class != "" || anon[0].Tenants != 1 {
		t.Errorf("anonymous cohort = %+v, %v", anon, err)
	}
	for _, bad := range []string{"chat", "chat=", "chat=0", "chat=-1", "=3", "chat=x", "chat=3,,bulk=1"} {
		if _, err := parseTenants(bad, sls); err == nil {
			t.Errorf("parseTenants(%q) should error", bad)
		}
	}
}

// TestArrivalTrace covers the serve-mode trace construction paths:
// default Poisson, generated multi-tenant, replayed file (with and
// without rescaling), and the replay/generate flag conflict.
func TestArrivalTrace(t *testing.T) {
	w, err := experiments.ServedWorkloadByName("gnmt", 1)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := arrivalTrace(w, 32, 100, 1, arrivalSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Requests) != 32 || plain.Requests[0].Tenant != "" {
		t.Errorf("default trace = %s with %d requests", plain.Name, len(plain.Requests))
	}
	gen, err := arrivalTrace(w, 64, 200, 1, arrivalSpec{tenants: "chat=2,bulk=1", pattern: serving.PatternDiurnal})
	if err != nil {
		t.Fatal(err)
	}
	if len(gen.Requests) != 64 {
		t.Fatalf("generated trace has %d requests", len(gen.Requests))
	}
	tenanted := false
	for _, r := range gen.Requests {
		tenanted = tenanted || r.Tenant != ""
	}
	if !tenanted {
		t.Error("generated multi-tenant trace carries no tenant labels")
	}

	path := filepath.Join(t.TempDir(), "arrivals.trace")
	if err := serving.SaveTrace(path, gen); err != nil {
		t.Fatal(err)
	}
	replay, err := arrivalTrace(w, 0, 0, 0, arrivalSpec{in: path})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(replay, gen) {
		t.Error("replayed trace differs from the recorded one")
	}
	rescaled, err := arrivalTrace(w, 0, 50, 0, arrivalSpec{in: path, rateSet: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := rescaled.ImpliedRatePerSec(); got < 49.9 || got > 50.1 {
		t.Errorf("rescaled implied rate = %v, want ~50", got)
	}

	if _, err := arrivalTrace(w, 32, 100, 1, arrivalSpec{in: path, tenants: "chat=1"}); err == nil {
		t.Error("-trace-in with -tenants should conflict")
	}
	if _, err := arrivalTrace(w, 32, 100, 1, arrivalSpec{in: filepath.Join(t.TempDir(), "missing.trace")}); err == nil {
		t.Error("missing trace file should error")
	}
	if _, err := arrivalTrace(w, 32, 100, 1, arrivalSpec{pattern: "lunar"}); err == nil {
		t.Error("unknown pattern should error")
	}
}

// TestServeRecordReplay drives a full record-then-replay cycle through
// the serving entry point: a wfq multi-tenant run saves its trace, a
// second run replays it.
func TestServeRecordReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("full serving simulations skipped in -short mode")
	}
	path := filepath.Join(t.TempDir(), "arrivals.trace")
	rec := arrivalSpec{tenants: "chat=2,bulk=1", pattern: serving.PatternDiurnal, out: path}
	if err := runServe("gnmt", 1, 8, 1, 300, "wfq", 48, 20000, nil, rec); err != nil {
		t.Fatalf("record run: %v", err)
	}
	if err := runServe("gnmt", 1, 8, 1, 300, "fixed", 0, 20000, nil, arrivalSpec{in: path}); err != nil {
		t.Fatalf("replay run: %v", err)
	}
	if err := runFleet("gnmt", 1, 8, 1, 300, "wfq", 0, 20000, 2, "rr", 0, false, 0, nil, nil,
		arrivalSpec{in: path}); err != nil {
		t.Fatalf("fleet replay run: %v", err)
	}
}
