// Command seqpointd serves the simulation engine over HTTP/JSON: the
// long-running form of SeqPoint's cheap what-if queries. One daemon
// amortizes the profile cache across every request, and with
// -cache-file across restarts too — the cache is loaded on start and
// snapshotted atomically on shutdown (plus periodically with
// -snapshot-interval), so a restarted daemon answers warm.
//
// Usage:
//
//	seqpointd -addr :8080 -cache-file /var/lib/seqpoint/cache.json \
//	          -parallelism 8 -max-inflight 32
//
// Endpoints: POST /v1/simulate, POST /v1/sweep, POST /v1/seqpoint,
// POST /v1/serve, GET /healthz, GET /v1/stats, GET /metrics. See the
// README's "Running as a service" and "Online serving simulation"
// sections for request examples.
//
// On SIGINT/SIGTERM the daemon drains instead of dropping work: new
// simulations are refused with a typed 503 ("draining"), in-flight
// computations — including detached ones whose waiters already timed
// out — are given -drain-window to finish, and only then is the final
// cache snapshot written, so everything priced by in-flight work
// survives the restart.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"seqpoint/internal/engine"
	"seqpoint/internal/server"
)

// options carries everything run needs, so tests can drive a full
// daemon lifecycle in-process without flags or signals.
type options struct {
	addr        string
	cacheFile   string
	parallelism int
	maxInflight int
	timeout     time.Duration
	snapshotInt time.Duration
	drainWindow time.Duration
	// ready, when set, is called once with the bound listen address —
	// the test hook that makes ":0" usable.
	ready func(addr string)
	logf  func(format string, args ...any)
}

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		cacheFile   = flag.String("cache-file", "", "profile-cache snapshot path; empty disables persistence")
		parallelism = flag.Int("parallelism", 0, "engine worker-pool width; <= 0 uses GOMAXPROCS")
		maxInflight = flag.Int("max-inflight", server.DefaultMaxInflight, "max concurrently executing simulation requests")
		timeout     = flag.Duration("request-timeout", server.DefaultRequestTimeout, "per-request wall-clock budget")
		snapshotInt = flag.Duration("snapshot-interval", 0, "periodic cache-snapshot interval; 0 snapshots only on shutdown")
		drainWindow = flag.Duration("drain-window", 30*time.Second, "how long shutdown waits for in-flight simulations")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	err := run(ctx, options{
		addr:        *addr,
		cacheFile:   *cacheFile,
		parallelism: *parallelism,
		maxInflight: *maxInflight,
		timeout:     *timeout,
		snapshotInt: *snapshotInt,
		drainWindow: *drainWindow,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "seqpointd:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, opts options) error {
	if opts.logf == nil {
		opts.logf = log.Printf
	}
	if opts.drainWindow <= 0 {
		opts.drainWindow = 30 * time.Second
	}

	eng := engine.New()
	eng.SetParallelism(opts.parallelism)

	if opts.cacheFile != "" {
		n, err := eng.LoadSnapshot(opts.cacheFile)
		switch {
		case err != nil:
			// A corrupt, truncated or version-mismatched snapshot is not
			// fatal: log why and serve cold.
			opts.logf("cache %s unusable, starting cold: %v", opts.cacheFile, err)
		case n > 0:
			opts.logf("restored %d cached profiles from %s", n, opts.cacheFile)
		default:
			opts.logf("no cache at %s, starting cold", opts.cacheFile)
		}
	}

	srv := server.New(server.Options{
		Engine:         eng,
		MaxInflight:    opts.maxInflight,
		RequestTimeout: opts.timeout,
	})
	ln, err := net.Listen("tcp", opts.addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := context.WithCancel(ctx)
	defer stop()

	// The periodic snapshotter is stopped AND joined before the final
	// shutdown save: without the join, a tick that fired just before the
	// signal could still be mid-write and win the atomic-rename race,
	// persisting a snapshot older than the shutdown one.
	var snapWG sync.WaitGroup
	if opts.cacheFile != "" && opts.snapshotInt > 0 {
		snapWG.Add(1)
		go func() {
			defer snapWG.Done()
			tick := time.NewTicker(opts.snapshotInt)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					n, err := eng.SaveSnapshot(opts.cacheFile)
					if err != nil {
						opts.logf("periodic cache snapshot: %v", err)
						continue
					}
					srv.ObserveSnapshot(int64(n))
				}
			}
		}()
	}

	errc := make(chan error, 1)
	go func() {
		opts.logf("seqpointd listening on %s (parallelism=%d, max-inflight=%d)",
			ln.Addr(), eng.Parallelism(), opts.maxInflight)
		errc <- httpSrv.Serve(ln)
	}()
	if opts.ready != nil {
		opts.ready(ln.Addr().String())
	}

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Drain in dependency order: refuse new simulations first, then
	// close the HTTP side (connected clients get typed 503s until their
	// connections wind down), then join the detached computations that
	// outlive their handlers, then the snapshotter — and only once
	// nothing can add another profile, write the final snapshot.
	opts.logf("shutting down: draining (window %s)", opts.drainWindow)
	srv.StartDrain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), opts.drainWindow)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		opts.logf("shutdown: %v", err)
	}
	if err := srv.Drain(shutdownCtx); err != nil {
		opts.logf("drain incomplete, snapshotting what finished: %v", err)
	}
	stop()
	snapWG.Wait()

	if opts.cacheFile != "" {
		start := time.Now()
		n, err := eng.SaveSnapshot(opts.cacheFile)
		if err != nil {
			return fmt.Errorf("saving cache snapshot: %w", err)
		}
		// n is what actually landed on disk — not a stats reading taken
		// before the write, which missed work that completed during the
		// drain.
		opts.logf("saved %d cached profiles to %s in %s", n, opts.cacheFile, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
