// Command seqpointd serves the simulation engine over HTTP/JSON: the
// long-running form of SeqPoint's cheap what-if queries. One daemon
// amortizes the profile cache across every request, and with
// -cache-file across restarts too — the cache is loaded on start and
// snapshotted atomically on shutdown (plus periodically with
// -snapshot-interval), so a restarted daemon answers warm.
//
// Usage:
//
//	seqpointd -addr :8080 -cache-file /var/lib/seqpoint/cache.json \
//	          -parallelism 8 -max-inflight 32
//
// Endpoints: POST /v1/simulate, POST /v1/sweep, POST /v1/seqpoint,
// POST /v1/serve, GET /healthz, GET /v1/stats. See the README's
// "Running as a service" and "Online serving simulation" sections for
// request examples.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"seqpoint/internal/engine"
	"seqpoint/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		cacheFile   = flag.String("cache-file", "", "profile-cache snapshot path; empty disables persistence")
		parallelism = flag.Int("parallelism", 0, "engine worker-pool width; <= 0 uses GOMAXPROCS")
		maxInflight = flag.Int("max-inflight", server.DefaultMaxInflight, "max concurrently executing simulation requests")
		timeout     = flag.Duration("request-timeout", server.DefaultRequestTimeout, "per-request wall-clock budget")
		snapshotInt = flag.Duration("snapshot-interval", 0, "periodic cache-snapshot interval; 0 snapshots only on shutdown")
	)
	flag.Parse()

	if err := run(*addr, *cacheFile, *parallelism, *maxInflight, *timeout, *snapshotInt); err != nil {
		fmt.Fprintln(os.Stderr, "seqpointd:", err)
		os.Exit(1)
	}
}

func run(addr, cacheFile string, parallelism, maxInflight int, timeout, snapshotInt time.Duration) error {
	eng := engine.New()
	eng.SetParallelism(parallelism)

	if cacheFile != "" {
		n, err := eng.LoadSnapshot(cacheFile)
		switch {
		case err != nil:
			// A corrupt, truncated or version-mismatched snapshot is not
			// fatal: log why and serve cold.
			log.Printf("cache %s unusable, starting cold: %v", cacheFile, err)
		case n > 0:
			log.Printf("restored %d cached profiles from %s", n, cacheFile)
		default:
			log.Printf("no cache at %s, starting cold", cacheFile)
		}
	}

	srv := server.New(server.Options{
		Engine:         eng,
		MaxInflight:    maxInflight,
		RequestTimeout: timeout,
	})
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The periodic snapshotter is stopped AND joined before the final
	// shutdown save: without the join, a tick that fired just before the
	// signal could still be mid-write and win the atomic-rename race,
	// persisting a snapshot older than the shutdown one.
	var snapWG sync.WaitGroup
	if cacheFile != "" && snapshotInt > 0 {
		snapWG.Add(1)
		go func() {
			defer snapWG.Done()
			tick := time.NewTicker(snapshotInt)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					if err := eng.SaveSnapshot(cacheFile); err != nil {
						log.Printf("periodic cache snapshot: %v", err)
					}
				}
			}
		}()
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("seqpointd listening on %s (parallelism=%d, max-inflight=%d)",
			addr, eng.Parallelism(), maxInflight)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	log.Printf("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}

	// Stop and join the snapshotter before the final save so no stale
	// periodic write can land after (and over) the shutdown snapshot.
	stop()
	snapWG.Wait()

	if cacheFile != "" {
		stats := eng.Stats()
		if err := eng.SaveSnapshot(cacheFile); err != nil {
			return fmt.Errorf("saving cache snapshot: %w", err)
		}
		log.Printf("saved %d cached profiles to %s", stats.Entries, cacheFile)
	}
	return nil
}
