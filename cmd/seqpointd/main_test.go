package main

import (
	"context"
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"seqpoint/internal/engine"
	"seqpoint/internal/server"
)

// logSink collects the daemon's log lines for assertion.
type logSink struct {
	mu    sync.Mutex
	lines []string
}

func (l *logSink) logf(format string, args ...any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.lines = append(l.lines, fmt.Sprintf(format, args...))
}

func (l *logSink) joined() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return strings.Join(l.lines, "\n")
}

// TestRunGracefulDrain drives a full daemon lifecycle in-process:
// start, serve real requests, cancel the run context (the signal
// path), and verify the shutdown drained cleanly — run returns nil,
// the final snapshot holds the priced profiles, and the shutdown log
// reports the count actually written, not a stale stats reading.
func TestRunGracefulDrain(t *testing.T) {
	cacheFile := filepath.Join(t.TempDir(), "cache.json")
	logs := &logSink{}
	ready := make(chan string, 1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, options{
			addr:        "127.0.0.1:0",
			cacheFile:   cacheFile,
			maxInflight: 4,
			timeout:     server.DefaultRequestTimeout,
			drainWindow: 20 * time.Second,
			ready:       func(addr string) { ready <- addr },
			logf:        logs.logf,
		})
	}()

	var addr string
	select {
	case addr = <-ready:
	case err := <-errc:
		t.Fatalf("run exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}

	c := server.NewClient("http://"+addr, nil)
	if err := c.Health(ctx); err != nil {
		t.Fatalf("health: %v", err)
	}
	if _, err := c.Simulate(ctx, server.SimulateRequest{Model: "gnmt", Batch: 2, SeqLens: []int{4, 7}}); err != nil {
		t.Fatalf("simulate: %v", err)
	}
	metrics, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	if !strings.Contains(metrics, "seqpoint_requests_total") {
		t.Fatalf("metrics exposition missing request counters:\n%s", metrics)
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run returned %v after graceful shutdown, want nil", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run did not return after context cancellation")
	}

	// The shutdown snapshot holds what the daemon priced, and the log
	// reports exactly that count.
	restored := engine.New()
	n, err := restored.LoadSnapshot(cacheFile)
	if err != nil {
		t.Fatalf("loading shutdown snapshot: %v", err)
	}
	if n == 0 {
		t.Fatal("shutdown snapshot holds no profiles despite served requests")
	}
	m := regexp.MustCompile(`saved (\d+) cached profiles`).FindStringSubmatch(logs.joined())
	if m == nil {
		t.Fatalf("shutdown log never reported the saved count:\n%s", logs.joined())
	}
	if logged, _ := strconv.Atoi(m[1]); logged != n {
		t.Fatalf("shutdown log claims %d profiles saved, snapshot holds %d", logged, n)
	}
	if !strings.Contains(logs.joined(), "draining") {
		t.Fatalf("shutdown log never mentioned draining:\n%s", logs.joined())
	}
}

// TestRunWarmRestart: a second daemon started on the first one's
// snapshot reports a warm start.
func TestRunWarmRestart(t *testing.T) {
	cacheFile := filepath.Join(t.TempDir(), "cache.json")

	runOnce := func(warmAssert bool) {
		logs := &logSink{}
		ready := make(chan string, 1)
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		errc := make(chan error, 1)
		go func() {
			errc <- run(ctx, options{
				addr:      "127.0.0.1:0",
				cacheFile: cacheFile,
				ready:     func(addr string) { ready <- addr },
				logf:      logs.logf,
			})
		}()
		var addr string
		select {
		case addr = <-ready:
		case err := <-errc:
			t.Fatalf("run exited before ready: %v", err)
		case <-time.After(10 * time.Second):
			t.Fatal("daemon never became ready")
		}
		c := server.NewClient("http://"+addr, nil)
		if _, err := c.Simulate(ctx, server.SimulateRequest{Model: "gnmt", Batch: 2, SeqLens: []int{4, 7}}); err != nil {
			t.Fatalf("simulate: %v", err)
		}
		if warmAssert {
			st, err := c.Stats(ctx)
			if err != nil {
				t.Fatalf("stats: %v", err)
			}
			if st.Engine.Misses != 0 {
				t.Fatalf("restarted daemon recomputed %d profiles, want warm cache", st.Engine.Misses)
			}
			if !strings.Contains(logs.joined(), "restored") {
				t.Fatalf("restart log never mentioned the restored cache:\n%s", logs.joined())
			}
		}
		cancel()
		select {
		case err := <-errc:
			if err != nil {
				t.Fatalf("run: %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("run did not return")
		}
	}

	runOnce(false)
	runOnce(true)
}
