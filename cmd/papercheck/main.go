// Command papercheck verifies, end to end, that the reproduced system
// exhibits every qualitative claim the paper's evaluation rests on. It
// regenerates the experiments and asserts the claims programmatically,
// printing PASS/FAIL per claim — a regression gate for the reproduction
// itself.
//
// Usage:
//
//	papercheck [-seed 1] [-parallelism N]
package main

import (
	"flag"
	"fmt"
	"os"

	"seqpoint/internal/core"
	"seqpoint/internal/dataset"
	"seqpoint/internal/engine"
	"seqpoint/internal/experiments"
)

// claim is one verifiable assertion from the paper.
type claim struct {
	id   string
	text string
	eval func(s *experiments.Suite) (bool, string, error)
}

func main() {
	seed := flag.Int64("seed", experiments.DefaultSeed, "dataset/shuffle seed")
	par := flag.Int("parallelism", 0, "concurrent simulation/profiling workers (0 = GOMAXPROCS)")
	flag.Parse()

	engine.Shared().SetParallelism(*par)
	s := experiments.NewSuite(*seed)
	failed := 0
	for _, c := range claims() {
		ok, detail, err := c.eval(s)
		switch {
		case err != nil:
			fmt.Printf("ERROR %-12s %s: %v\n", c.id, c.text, err)
			failed++
		case ok:
			fmt.Printf("PASS  %-12s %s (%s)\n", c.id, c.text, detail)
		default:
			fmt.Printf("FAIL  %-12s %s (%s)\n", c.id, c.text, detail)
			failed++
		}
	}
	if failed > 0 {
		fmt.Printf("\n%d claim(s) failed\n", failed)
		os.Exit(1)
	}
	fmt.Println("\nall claims hold")
}

func claims() []claim {
	return []claim{
		{
			id:   "fig3",
			text: "CNN iterations homogeneous, SQNN iterations heterogeneous",
			eval: func(s *experiments.Suite) (bool, string, error) {
				r, err := experiments.Fig3(s.Lab, s.GNMT, 12, s.Calib())
				if err != nil {
					return false, "", err
				}
				return r.CNNSpreadPct < 0.1 && r.RNNSpreadPct > 20,
					fmt.Sprintf("cnn %.1f%%, sqnn %.1f%%", r.CNNSpreadPct, r.RNNSpreadPct), nil
			},
		},
		{
			id:   "fig4",
			text: "architectural counters vary across iterations by tens of percent",
			eval: func(s *experiments.Suite) (bool, string, error) {
				r, err := experiments.Fig4(s.Lab, s.Workloads(), 4, s.Calib())
				if err != nil {
					return false, "", err
				}
				var max float64
				for _, row := range r.Rows {
					for _, sp := range row.SpreadPct {
						if sp > max {
							max = sp
						}
					}
				}
				return max > 20, fmt.Sprintf("max spread %.0f%%", max), nil
			},
		},
		{
			id:   "table1",
			text: "classifier GEMM has fixed M,K and N proportional to SL",
			eval: func(s *experiments.Suite) (bool, string, error) {
				r, err := experiments.TableI(s.GNMT.Model, s.GNMT.Batch, 94, 9)
				if err != nil {
					return false, "", err
				}
				a := r.Rows[0]
				return a.M == 36549 && a.K == 1024 && a.N1 == 6016 && a.N2 == 576,
					fmt.Sprintf("%dx%d, N %d/%d", a.M, a.K, a.N1, a.N2), nil
			},
		},
		{
			id:   "fig5",
			text: "distant-SL iterations run up to ~20% exclusive kernels; nearby SLs few",
			eval: func(s *experiments.Suite) (bool, string, error) {
				far, err := experiments.Fig5(s.Lab, s.DS2, s.Calib(), [][2]int{{150, 350}})
				if err != nil {
					return false, "", err
				}
				near, err := experiments.Fig5(s.Lab, s.DS2, s.Calib(), [][2]int{{300, 320}})
				if err != nil {
					return false, "", err
				}
				f, n := far.Pairs[0].ExclusivePct(), near.Pairs[0].ExclusivePct()
				return f >= 10 && f <= 40 && n < f,
					fmt.Sprintf("far %.0f%%, near %.0f%%", f, n), nil
			},
		},
		{
			id:   "fig7",
			text: "DS2 SL histogram unimodal-skewed; GNMT long-tailed; many unique SLs",
			eval: func(s *experiments.Suite) (bool, string, error) {
				ds2, err := experiments.Fig7(s.Lab, s.DS2, s.Calib(), 10)
				if err != nil {
					return false, "", err
				}
				gnmt, err := experiments.Fig7(s.Lab, s.GNMT, s.Calib(), 10)
				if err != nil {
					return false, "", err
				}
				ok := float64(ds2.UniqueSLs) > 0.3*float64(ds2.Iterations) &&
					gnmt.MeanSL > gnmt.MedianSL
				return ok, fmt.Sprintf("ds2 %d/%d unique, gnmt mean %.0f > median %.0f",
					ds2.UniqueSLs, ds2.Iterations, gnmt.MeanSL, gnmt.MedianSL), nil
			},
		},
		{
			id:   "fig8",
			text: "nearby SLs have near-identical kernel distributions",
			eval: func(s *experiments.Suite) (bool, string, error) {
				r, err := experiments.Fig6(s.Lab, s.GNMT, s.Calib(), []int{87, 89, 192, 197})
				if err != nil {
					return false, "", err
				}
				if len(r.Columns) < 3 {
					return false, "too few distinct SLs", nil
				}
				near := r.PairShiftPct(0, 1)
				far := r.PairShiftPct(0, len(r.Columns)-1)
				return near < 1 && near < far,
					fmt.Sprintf("near %.2f pp, far %.2f pp", near, far), nil
			},
		},
		{
			id:   "fig9",
			text: "iteration runtime near-linear in SL (both networks)",
			eval: func(s *experiments.Suite) (bool, string, error) {
				g, err := experiments.Fig9(s.Lab, s.GNMT, s.Calib())
				if err != nil {
					return false, "", err
				}
				d, err := experiments.Fig9(s.Lab, s.DS2, s.Calib())
				if err != nil {
					return false, "", err
				}
				return g.Fit.R2 > 0.99 && d.Fit.R2 > 0.99,
					fmt.Sprintf("R² %.4f / %.4f", g.Fit.R2, d.Fit.R2), nil
			},
		},
		{
			id:   "fig11-12",
			text: "SeqPoint projects total training time under ~1% and beats every baseline",
			eval: func(s *experiments.Suite) (bool, string, error) {
				for _, w := range s.Workloads() {
					r, err := experiments.TimeProjection(s.Lab, w, s.Configs, s.Opts)
					if err != nil {
						return false, "", err
					}
					sp := r.GeomeanPct[core.MethodSeqPoint]
					if sp > 1 {
						return false, fmt.Sprintf("%s seqpoint %.2f%%", w.Name, sp), nil
					}
					for _, m := range core.AllMethods() {
						if m != core.MethodSeqPoint && r.GeomeanPct[m] < sp {
							return false, fmt.Sprintf("%s %s beats seqpoint", w.Name, m), nil
						}
					}
				}
				return true, "both networks, all baselines", nil
			},
		},
		{
			id:   "fig13-14",
			text: "per-SL speedups vary across configs (narrow-band sampling is risky)",
			eval: func(s *experiments.Suite) (bool, string, error) {
				r, err := experiments.Sensitivity(s.Lab, s.GNMT, s.Configs, 12)
				if err != nil {
					return false, "", err
				}
				var max float64
				for _, c := range r.Curves {
					if sp := c.SpreadPP(); sp > max {
						max = sp
					}
				}
				return max > 10, fmt.Sprintf("max spread %.0f pp", max), nil
			},
		},
		{
			id:   "fig15-16",
			text: "SeqPoint projects speedups within ~1pp geomean on both networks",
			eval: func(s *experiments.Suite) (bool, string, error) {
				var detail string
				for _, w := range s.Workloads() {
					r, err := experiments.SpeedupProjection(s.Lab, w, s.Configs, s.Opts)
					if err != nil {
						return false, "", err
					}
					sp := r.GeomeanPP[core.MethodSeqPoint]
					detail += fmt.Sprintf("%s %.2fpp ", w.Name, sp)
					if sp > 1.5 {
						return false, detail, nil
					}
				}
				return true, detail, nil
			},
		},
		{
			id:   "sec6f",
			text: "profiling cost drops by orders of magnitude; fewer iterations than prior",
			eval: func(s *experiments.Suite) (bool, string, error) {
				for _, w := range s.Workloads() {
					r, err := experiments.Cost(s.Lab, w, s.Calib(), s.Opts)
					if err != nil {
						return false, "", err
					}
					if r.SerialSpeedup < 20 || r.ParallelSpeedup < 100 || r.IterRatioVsPrior < 2 {
						return false, fmt.Sprintf("%s serial %.0fx parallel %.0fx vs-prior %.1fx",
							w.Name, r.SerialSpeedup, r.ParallelSpeedup, r.IterRatioVsPrior), nil
					}
				}
				return true, "both networks", nil
			},
		},
		{
			id:   "sec7c",
			text: "simple binning performs as well as k-means (scalar and profile-vector)",
			eval: func(s *experiments.Suite) (bool, string, error) {
				for _, w := range s.Workloads() {
					r, err := experiments.ProfileAblation(s.Lab, w, s.Configs, s.Opts, w.Seed)
					if err != nil {
						return false, "", err
					}
					if r.BinningErrPct > 1 || r.RuntimeKMeansErrPct > 1 || r.ProfileKMeansErrPct > 1 {
						return false, fmt.Sprintf("%s errors %.2f/%.2f/%.2f%%", w.Name,
							r.BinningErrPct, r.RuntimeKMeansErrPct, r.ProfileKMeansErrPct), nil
					}
				}
				return true, "all schemes sub-percent", nil
			},
		},
		{
			id:   "sec5c",
			text: "any SL-varying statistic drives an accurate selection",
			eval: func(s *experiments.Suite) (bool, string, error) {
				r, err := experiments.StatChoice(s.Lab, s.GNMT, s.Configs, s.Opts)
				if err != nil {
					return false, "", err
				}
				var detail string
				for stat, e := range r.ErrPctByStat {
					detail += fmt.Sprintf("%s %.2f%% ", stat, e)
					if e > 2 {
						return false, detail, nil
					}
				}
				return true, detail, nil
			},
		},
		{
			id:   "sec5a",
			text: "smaller batch sizes produce more unique sequence lengths",
			eval: func(s *experiments.Suite) (bool, string, error) {
				r, err := experiments.BatchSize(s.Lab, s.GNMT, s.Calib(), []int{16, 64}, s.Opts)
				if err != nil {
					return false, "", err
				}
				small, large := r.Rows[0], r.Rows[1]
				return small.UniqueSLs > large.UniqueSLs,
					fmt.Sprintf("batch 16: %d SLs, batch 64: %d SLs", small.UniqueSLs, large.UniqueSLs), nil
			},
		},
		{
			id:   "sec6f-scale",
			text: "larger datasets with similar SL ranges yield larger profiling speedups",
			eval: func(s *experiments.Suite) (bool, string, error) {
				r, err := experiments.DatasetScale(s.Lab, s.DS2, dataset.LibriSpeech500h(s.DS2.Seed),
					s.Calib(), s.Opts)
				if err != nil {
					return false, "", err
				}
				small, large := r.Rows[0], r.Rows[1]
				return large.SerialSpeedup > small.SerialSpeedup,
					fmt.Sprintf("100h %.0fx -> 500h %.0fx serial", small.SerialSpeedup, large.SerialSpeedup), nil
			},
		},
		{
			id:   "sec7e",
			text: "the methodology characterizes inference runs too",
			eval: func(s *experiments.Suite) (bool, string, error) {
				r, err := experiments.Inference(s.DS2, s.Configs[0], s.Configs[1], s.DS2.Batch, s.Opts)
				if err != nil {
					return false, "", err
				}
				return r.CrossErrPct < 2 && r.Points < r.UniqueSLs,
					fmt.Sprintf("%d of %d SLs, cross error %.2f%%", r.Points, r.UniqueSLs, r.CrossErrPct), nil
			},
		},
	}
}
