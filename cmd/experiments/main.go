// Command experiments regenerates every table and figure of the paper's
// evaluation (Table I, Table II, Figs 3-9 and 11-16, the Section VI-F
// profiling-cost analysis and the Section VII-C k-means ablation) from
// the simulated substrate, writing the renderings to stdout or a file.
// Its output is the data recorded in EXPERIMENTS.md.
//
// Usage:
//
//	experiments [-seed 1] [-o experiments.txt] [-parallelism N]
//	experiments -gpus 1,2,4,8 -topology mesh -linkgbps 50
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"seqpoint/internal/engine"
	"seqpoint/internal/experiments"
	"seqpoint/internal/gpusim"
)

func main() {
	var (
		seed     = flag.Int64("seed", experiments.DefaultSeed, "dataset/shuffle seed")
		out      = flag.String("o", "", "write output to this file instead of stdout")
		csvDir   = flag.String("csv", "", "also write figure-backing CSV files into this directory")
		par      = flag.Int("parallelism", 0, "concurrent simulation/profiling workers (0 = GOMAXPROCS)")
		gpus     = flag.String("gpus", "", "comma-separated GPU counts for the scale-out experiment (default 1,2,4,8)")
		topology = flag.String("topology", string(gpusim.TopologyRing), "scale-out interconnect: ring or mesh")
		linkGBps = flag.Float64("linkgbps", gpusim.DefaultLinkGBps, "scale-out per-link bandwidth in GB/s")
	)
	flag.Parse()
	engine.Shared().SetParallelism(*par)

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	start := time.Now()
	suite := experiments.NewSuite(*seed)
	if err := configureScaleOut(suite, *gpus, *topology, *linkGBps); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	if err := suite.RunAll(w); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}

	if *csvDir != "" {
		if err := writeCSVs(suite, *csvDir); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "\nwrote figure CSVs to %s\n", *csvDir)
	}
	fmt.Fprintf(w, "\nall experiments completed in %s\n", time.Since(start).Round(time.Millisecond))
}

// configureScaleOut applies the cluster flags to the suite's scale-out
// experiment.
func configureScaleOut(suite *experiments.Suite, gpus, topology string, linkGBps float64) error {
	topo, err := gpusim.ParseTopology(topology)
	if err != nil {
		return err
	}
	suite.BaseCluster.Topology = topo
	suite.BaseCluster.LinkGBps = linkGBps
	if gpus != "" {
		var counts []int
		for _, part := range strings.Split(gpus, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return fmt.Errorf("bad -gpus entry %q: %w", part, err)
			}
			counts = append(counts, n)
		}
		suite.ScaleGPUs = counts
	}
	return suite.BaseCluster.Validate()
}

// writeCSVs dumps the figure-backing data series, one file per figure.
func writeCSVs(suite *experiments.Suite, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	bundle, err := suite.CSVBundle()
	if err != nil {
		return err
	}
	for name, content := range bundle {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			return err
		}
	}
	return nil
}
