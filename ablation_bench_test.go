package seqpoint_test

// Ablation benchmarks for the simulator design choices DESIGN.md §5
// calls out. Each reports, as custom metrics, how much a modeled
// mechanism contributes to the behaviours the paper's evaluation rests
// on — so a change that silently disables one shows up as a metric
// shift in `go test -bench=Ablation`.

import (
	"testing"

	"seqpoint/internal/core"
	"seqpoint/internal/gpusim"
	"seqpoint/internal/models"
	"seqpoint/internal/profiler"
)

// iterTime prices one GNMT training iteration at the given SL under cfg.
func iterTime(b *testing.B, cfg gpusim.Config, sl int) float64 {
	b.Helper()
	sim, err := gpusim.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	p, err := profiler.ProfileIteration(sim, models.NewGNMT(), 64, sl)
	if err != nil {
		b.Fatal(err)
	}
	return p.TimeUS
}

// BenchmarkAblationLaunchOverhead quantifies how much of a short-SL
// iteration is kernel-launch overhead vs a long-SL one. This asymmetry
// is the mechanism behind the SL-1 dip in the sensitivity curves
// (Fig. 13): small iterations are launch-bound, so core-clock and CU
// changes speed them up less.
func BenchmarkAblationLaunchOverhead(b *testing.B) {
	withLaunch := gpusim.VegaFE()
	noLaunch := withLaunch
	noLaunch.LaunchOverheadUS = 0

	var shortShare, longShare float64
	for i := 0; i < b.N; i++ {
		shortShare = 1 - iterTime(b, noLaunch, 2)/iterTime(b, withLaunch, 2)
		longShare = 1 - iterTime(b, noLaunch, 150)/iterTime(b, withLaunch, 150)
	}
	b.ReportMetric(shortShare*100, "launch-share-sl2-%")
	b.ReportMetric(longShare*100, "launch-share-sl150-%")
	if shortShare <= longShare {
		b.Fatal("launch overhead must weigh more on short iterations")
	}
}

// BenchmarkAblationCacheSensitivity quantifies the cache model: the
// slowdown from disabling L2 must grow with sequence length (working
// sets cross the L2 capacity as shapes grow), which is what makes
// config #5's uplift SL-dependent in Figs 13/14 — and what breaks
// narrow-band samplers.
func BenchmarkAblationCacheSensitivity(b *testing.B) {
	cfgs := gpusim.TableII()
	full, noL2 := cfgs[0], cfgs[4]

	var slowdownShort, slowdownLong float64
	for i := 0; i < b.N; i++ {
		slowdownShort = iterTime(b, noL2, 10)/iterTime(b, full, 10) - 1
		slowdownLong = iterTime(b, noL2, 180)/iterTime(b, full, 180) - 1
	}
	b.ReportMetric(slowdownShort*100, "no-l2-slowdown-sl10-%")
	b.ReportMetric(slowdownLong*100, "no-l2-slowdown-sl180-%")
}

// BenchmarkAblationWaveQuantization quantifies the wave-quantized
// occupancy model: reducing active CUs from 64 to 16 must hurt a large
// iteration by more than the pure 4x resource ratio's memory-bound
// floor, and the hurt must vary with SL (kernel shapes fill partial
// waves differently) — the source of config #3's SL-dependent uplift.
func BenchmarkAblationWaveQuantization(b *testing.B) {
	cfgs := gpusim.TableII()
	full, quarter := cfgs[0], cfgs[2]

	var s20, s100, s200 float64
	for i := 0; i < b.N; i++ {
		s20 = iterTime(b, quarter, 20) / iterTime(b, full, 20)
		s100 = iterTime(b, quarter, 100) / iterTime(b, full, 100)
		s200 = iterTime(b, quarter, 200) / iterTime(b, full, 200)
	}
	b.ReportMetric(s20, "16cu-slowdown-sl20-x")
	b.ReportMetric(s100, "16cu-slowdown-sl100-x")
	b.ReportMetric(s200, "16cu-slowdown-sl200-x")
}

// BenchmarkAblationPriorWindowPlacement quantifies how much the `prior`
// baseline's accuracy depends on where its contiguous window lands in
// DS2's sorted first epoch — the artifact the paper dissects in
// Section VI-D. Early windows (short iterations) underestimate badly;
// mid-epoch windows land near the representative band.
func BenchmarkAblationPriorWindowPlacement(b *testing.B) {
	s := bsuite(b)
	run, err := s.Lab.Run(s.DS2, s.Calib())
	if err != nil {
		b.Fatal(err)
	}
	epochSLs, err := run.EpochSLs(0)
	if err != nil {
		b.Fatal(err)
	}
	statBySL := make(map[int]float64, len(run.BySL))
	for sl, p := range run.BySL {
		statBySL[sl] = p.TimeUS
	}

	var earlyErr, midErr float64
	for i := 0; i < b.N; i++ {
		early, err := priorErr(epochSLs, statBySL, 10)
		if err != nil {
			b.Fatal(err)
		}
		mid, err := priorErr(epochSLs, statBySL, len(epochSLs)/2-25)
		if err != nil {
			b.Fatal(err)
		}
		earlyErr, midErr = early, mid
	}
	b.ReportMetric(earlyErr, "early-window-err-%")
	b.ReportMetric(midErr, "mid-window-err-%")
	if earlyErr < midErr {
		b.Fatal("on a sorted epoch, an early window must be less representative than a mid one")
	}
}

func priorErr(epochSLs []int, statBySL map[int]float64, warmup int) (float64, error) {
	sel, err := core.Prior(epochSLs, statBySL, warmup, 50)
	if err != nil {
		return 0, err
	}
	return sel.ErrorPct, nil
}
