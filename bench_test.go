package seqpoint_test

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation. Each benchmark regenerates its experiment from the
// simulated substrate and reports the headline quantity as a custom
// metric, so `go test -bench=. -benchmem` reproduces the entire
// evaluation and prints the numbers EXPERIMENTS.md records.
//
// The expensive inputs — full training simulations of DS2 and GNMT on
// all five Table II configurations — are computed once and shared by
// every benchmark through a lazily initialized suite.

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"testing"

	"seqpoint/internal/core"
	"seqpoint/internal/engine"
	"seqpoint/internal/experiments"
	"seqpoint/internal/gpusim"
)

var (
	suiteOnce sync.Once
	suite     *experiments.Suite
)

// bsuite returns the shared, fully-simulated evaluation suite.
func bsuite(b *testing.B) *experiments.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		suite = experiments.NewSuite(experiments.DefaultSeed)
	})
	return suite
}

func BenchmarkFig03CNNvsRNN(b *testing.B) {
	s := bsuite(b)
	var res experiments.Fig3Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Fig3(s.Lab, s.GNMT, 12, s.Calib())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.CNNSpreadPct, "cnn-spread-%")
	b.ReportMetric(res.RNNSpreadPct, "rnn-spread-%")
}

func BenchmarkFig04ArchStats(b *testing.B) {
	s := bsuite(b)
	var res experiments.Fig4Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Fig4(s.Lab, s.Workloads(), 4, s.Calib())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range res.Rows {
		b.ReportMetric(row.SpreadPct[experiments.CounterVALUInsts], row.Network+"-valu-spread-%")
	}
}

func BenchmarkTable01GEMMDims(b *testing.B) {
	s := bsuite(b)
	var res experiments.TableIResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.TableI(s.GNMT.Model, s.GNMT.Batch, 94, 9)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Rows[0].N1), "gemm-a-n-sl1")
	b.ReportMetric(float64(res.Rows[0].N2), "gemm-a-n-sl2")
}

func BenchmarkFig05UniqueKernels(b *testing.B) {
	s := bsuite(b)
	var res experiments.Fig5Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Fig5(s.Lab, s.DS2, s.Calib(), [][2]int{{150, 350}})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Pairs[0].ExclusivePct(), "exclusive-kernels-%")
}

func BenchmarkFig06KernelDist(b *testing.B) {
	s := bsuite(b)
	var res experiments.Fig6Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Fig6(s.Lab, s.GNMT, s.Calib(), []int{3, 180})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.MaxGroupShiftPct(), "max-share-shift-pp")
}

func BenchmarkFig07SLHistograms(b *testing.B) {
	s := bsuite(b)
	var ds2, gnmt experiments.Fig7Result
	var err error
	for i := 0; i < b.N; i++ {
		if ds2, err = experiments.Fig7(s.Lab, s.DS2, s.Calib(), 10); err != nil {
			b.Fatal(err)
		}
		if gnmt, err = experiments.Fig7(s.Lab, s.GNMT, s.Calib(), 10); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(ds2.UniqueSLs), "ds2-unique-sls")
	b.ReportMetric(float64(gnmt.UniqueSLs), "gnmt-unique-sls")
}

func BenchmarkFig08NearbySLs(b *testing.B) {
	s := bsuite(b)
	var res experiments.Fig6Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Fig6(s.Lab, s.GNMT, s.Calib(), []int{87, 89, 192, 197})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.PairShiftPct(0, 1), "nearby-shift-pp")
}

func BenchmarkFig09RuntimeVsSL(b *testing.B) {
	s := bsuite(b)
	var ds2, gnmt experiments.Fig9Result
	var err error
	for i := 0; i < b.N; i++ {
		if gnmt, err = experiments.Fig9(s.Lab, s.GNMT, s.Calib()); err != nil {
			b.Fatal(err)
		}
		if ds2, err = experiments.Fig9(s.Lab, s.DS2, s.Calib()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(gnmt.Fit.R2, "gnmt-r2")
	b.ReportMetric(ds2.Fit.R2, "ds2-r2")
}

func benchTimeProjection(b *testing.B, w func(*experiments.Suite) experiments.Workload) {
	s := bsuite(b)
	var res experiments.TimeProjectionResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.TimeProjection(s.Lab, w(s), s.Configs, s.Opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.GeomeanPct[core.MethodSeqPoint], "seqpoint-geomean-%")
	b.ReportMetric(res.GeomeanPct[core.MethodPrior], "prior-geomean-%")
	b.ReportMetric(res.GeomeanPct[core.MethodWorst], "worst-geomean-%")
	b.ReportMetric(float64(res.SeqPointCount), "seqpoints")
}

func BenchmarkFig11DS2TimeProjection(b *testing.B) {
	benchTimeProjection(b, func(s *experiments.Suite) experiments.Workload { return s.DS2 })
}

func BenchmarkFig12GNMTTimeProjection(b *testing.B) {
	benchTimeProjection(b, func(s *experiments.Suite) experiments.Workload { return s.GNMT })
}

func benchSensitivity(b *testing.B, w func(*experiments.Suite) experiments.Workload) {
	s := bsuite(b)
	var res experiments.SensitivityResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Sensitivity(s.Lab, w(s), s.Configs, 12)
		if err != nil {
			b.Fatal(err)
		}
	}
	var maxSpread float64
	for _, c := range res.Curves {
		if sp := c.SpreadPP(); sp > maxSpread {
			maxSpread = sp
		}
	}
	b.ReportMetric(maxSpread, "max-uplift-spread-pp")
}

func BenchmarkFig13GNMTSensitivity(b *testing.B) {
	benchSensitivity(b, func(s *experiments.Suite) experiments.Workload { return s.GNMT })
}

func BenchmarkFig14DS2Sensitivity(b *testing.B) {
	benchSensitivity(b, func(s *experiments.Suite) experiments.Workload { return s.DS2 })
}

func benchSpeedupProjection(b *testing.B, w func(*experiments.Suite) experiments.Workload) {
	s := bsuite(b)
	var res experiments.SpeedupProjectionResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.SpeedupProjection(s.Lab, w(s), s.Configs, s.Opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.GeomeanPP[core.MethodSeqPoint], "seqpoint-geomean-pp")
	b.ReportMetric(res.GeomeanPP[core.MethodFrequent], "frequent-geomean-pp")
	b.ReportMetric(res.GeomeanPP[core.MethodWorst], "worst-geomean-pp")
}

func BenchmarkFig15DS2SpeedupProjection(b *testing.B) {
	benchSpeedupProjection(b, func(s *experiments.Suite) experiments.Workload { return s.DS2 })
}

func BenchmarkFig16GNMTSpeedupProjection(b *testing.B) {
	benchSpeedupProjection(b, func(s *experiments.Suite) experiments.Workload { return s.GNMT })
}

func BenchmarkProfilingSpeedup(b *testing.B) {
	s := bsuite(b)
	var ds2, gnmt experiments.CostResult
	var err error
	for i := 0; i < b.N; i++ {
		if ds2, err = experiments.Cost(s.Lab, s.DS2, s.Calib(), s.Opts); err != nil {
			b.Fatal(err)
		}
		if gnmt, err = experiments.Cost(s.Lab, s.GNMT, s.Calib(), s.Opts); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(ds2.SerialSpeedup, "ds2-serial-x")
	b.ReportMetric(ds2.ParallelSpeedup, "ds2-parallel-x")
	b.ReportMetric(gnmt.SerialSpeedup, "gnmt-serial-x")
	b.ReportMetric(gnmt.ParallelSpeedup, "gnmt-parallel-x")
}

func BenchmarkKMeansAblation(b *testing.B) {
	s := bsuite(b)
	var ds2 experiments.AblationResult
	var err error
	for i := 0; i < b.N; i++ {
		ds2, err = experiments.Ablation(s.Lab, s.DS2, s.Configs, s.Opts, s.DS2.Seed)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(ds2.BinningErrPct, "binning-geomean-%")
	b.ReportMetric(ds2.KMeansErrPct, "kmeans-geomean-%")
}

// BenchmarkFullSuite regenerates every experiment end to end, discarding
// the rendered output — the wall-clock cost of reproducing the paper.
func BenchmarkFullSuite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(experiments.DefaultSeed)
		if err := s.RunAll(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineSweep measures the (workload × Table II config) grid —
// the paper's whole evaluation input — on a cold engine at parallelism
// 1 versus GOMAXPROCS. The ratio of the two is the engine's wall-clock
// speedup; results are byte-identical at any width, so the parallel run
// is a pure win.
func BenchmarkEngineSweep(b *testing.B) {
	var tasks []engine.SweepTask
	for _, w := range []experiments.Workload{
		experiments.DS2Workload(experiments.DefaultSeed),
		experiments.GNMTWorkload(experiments.DefaultSeed),
	} {
		for _, cfg := range gpusim.TableII() {
			tasks = append(tasks, w.Task(cfg))
		}
	}
	pars := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		pars = append(pars, n)
	}
	for _, par := range pars {
		b.Run(fmt.Sprintf("parallelism=%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				// A fresh engine per iteration: this measures the cold
				// sweep, not cache hits.
				res := engine.New().Sweep(context.Background(), tasks, par)
				for _, r := range res {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
		})
	}
}

// BenchmarkServingLoadSweep measures the online-serving load sweep —
// the arrival-rate saturation curve — on the shared suite, reporting
// the measured capacity and the latency tail on either side of the
// knee. The numbers land in the BENCH_ci.json artifact alongside the
// paper benchmarks.
func BenchmarkServingLoadSweep(b *testing.B) {
	s := bsuite(b)
	var res experiments.LoadSweepResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.LoadSweep(s.Lab, s.GNMT, s.Calib(),
			experiments.DefaultServeRequests, experiments.LoadSweepFactors())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.CapacityRPS, "capacity-rps")
	knee := res.Knee()
	if knee >= 0 {
		b.ReportMetric(res.Rows[knee].P99US, "p99-at-knee-us")
	}
	last := res.Rows[len(res.Rows)-1]
	b.ReportMetric(last.P99US, "p99-overload-us")
	b.ReportMetric(last.ThroughputRPS, "overload-throughput-rps")
}

// BenchmarkFleetSweep measures the replicas × routing grid on the
// shared suite, reporting the routing-policy payoff (round-robin vs
// JSQ p99 at the largest fleet) so the BENCH_ci.json artifact tracks
// the fleet simulator's headline result per commit.
func BenchmarkFleetSweep(b *testing.B) {
	s := bsuite(b)
	var res experiments.FleetSweepResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.FleetSweep(s.Lab, s.GNMT, s.Calib(),
			experiments.DefaultServeRequests,
			experiments.FleetSweepReplicaCounts(), experiments.FleetSweepRoutings(),
			experiments.DefaultFleetLoadFactor)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.CapacityRPS, "replica-capacity-rps")
	maxN := res.Rows[len(res.Rows)-1].Replicas
	var rrP99, jsqP99 float64
	for _, row := range res.Rows {
		if row.Replicas != maxN {
			continue
		}
		switch row.Routing {
		case "rr":
			rrP99 = row.P99US
		case "jsq":
			jsqP99 = row.P99US
		}
	}
	b.ReportMetric(rrP99, "rr-p99-us")
	b.ReportMetric(jsqP99, "jsq-p99-us")
}

// BenchmarkSelect measures the SeqPoint selection algorithm itself
// (binning + auto-k) on a realistic epoch log — microseconds, which is
// the point: selection is free compared to profiling.
func BenchmarkSelect(b *testing.B) {
	s := bsuite(b)
	run, err := s.Lab.Run(s.GNMT, s.Calib())
	if err != nil {
		b.Fatal(err)
	}
	recs, err := experiments.SLRecords(run, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Select(recs, s.Opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateIteration measures pricing one GNMT training
// iteration at a mid-range sequence length — the substrate's unit cost.
func BenchmarkSimulateIteration(b *testing.B) {
	s := bsuite(b)
	sim, err := gpusim.New(s.Calib())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ops := s.GNMT.Model.IterationOps(s.GNMT.Batch, 40)
		_, total := sim.PriceAll(ops)
		if total <= 0 {
			b.Fatal("zero-time iteration")
		}
	}
}
