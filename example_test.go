package seqpoint_test

import (
	"fmt"
	"log"

	"seqpoint"
)

// ExampleSelect shows the core mechanism on a hand-written epoch log:
// few unique sequence lengths, so every SL becomes a SeqPoint and the
// projection is exact.
func ExampleSelect() {
	records := []seqpoint.SLRecord{
		{SeqLen: 20, Freq: 10, Stat: 100}, // 10 iterations, 100 us each
		{SeqLen: 40, Freq: 5, Stat: 190},
		{SeqLen: 80, Freq: 2, Stat: 370},
	}
	sel, err := seqpoint.Select(records, seqpoint.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("points=%d binned=%v error=%.2f%%\n", len(sel.Points), sel.Binned, sel.ErrorPct)
	// Output: points=3 binned=false error=0.00%
}

// ExampleProjectTotal projects a statistic measured per SeqPoint on a
// different configuration onto the whole epoch (Equation 1).
func ExampleProjectTotal() {
	points := []seqpoint.SeqPoint{
		{SeqLen: 20, Weight: 10, Stat: 100},
		{SeqLen: 40, Weight: 5, Stat: 190},
	}
	// Per-iteration runtimes measured on the target configuration.
	measured := map[int]float64{20: 150, 40: 290}
	total, err := seqpoint.ProjectTotal(points, measured)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("projected epoch time: %.0f us\n", total)
	// Output: projected epoch time: 2950 us
}

// ExampleScheduleProfiling plans the parallel profiling of SeqPoints
// over two machines (Section VI-F).
func ExampleScheduleProfiling() {
	points := []seqpoint.SeqPoint{
		{SeqLen: 10, Stat: 5},
		{SeqLen: 20, Stat: 4},
		{SeqLen: 30, Stat: 3},
		{SeqLen: 40, Stat: 3},
		{SeqLen: 50, Stat: 3},
	}
	sched, err := seqpoint.ScheduleProfiling(points, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serial=%.0f makespan=%.0f speedup=%.1fx\n",
		sched.SerialUS, sched.MakespanUS, sched.Speedup())
	// Output: serial=18 makespan=10 speedup=1.8x
}

// ExampleWorst bounds how badly an arbitrary single-iteration choice
// can misproject an epoch.
func ExampleWorst() {
	records := []seqpoint.SLRecord{
		{SeqLen: 10, Freq: 9, Stat: 100},
		{SeqLen: 90, Freq: 1, Stat: 900},
	}
	sel, err := seqpoint.Worst(records)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("worst pick: SL %d, error %.0f%%\n", sel.Points[0].SeqLen, sel.ErrorPct)
	// Output: worst pick: SL 90, error 400%
}
