package seqpoint_test

// Smoke tests for every examples/* program: each is vetted, compiled
// and executed, so examples cannot rot silently when the public facade
// moves under them. Each example is a self-contained demo over a small
// corpus subset, so executing all of them stays within a few seconds.

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// examplePrograms discovers the example directories instead of
// hard-coding them, so a new example is covered the day it lands.
func examplePrograms(t *testing.T) []string {
	t.Helper()
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatalf("listing examples/: %v", err)
	}
	var names []string
	found := make(map[string]bool)
	for _, e := range entries {
		if e.IsDir() {
			names = append(names, e.Name())
			found[e.Name()] = true
		}
	}
	if len(names) == 0 {
		t.Fatal("no example programs found")
	}
	// Discovery covers whatever exists; these README-referenced demos
	// must exist.
	for _, required := range []string{"quickstart", "service", "scaleout", "serving", "fleet", "plan", "workload"} {
		if !found[required] {
			t.Errorf("examples/%s is referenced by the README but missing", required)
		}
	}
	return names
}

func TestExamplesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("example execution skipped in -short mode")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go toolchain not on PATH: %v", err)
	}

	for _, name := range examplePrograms(t) {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			pkg := "./" + filepath.Join("examples", name)

			vet := exec.Command(goBin, "vet", pkg)
			if out, err := vet.CombinedOutput(); err != nil {
				t.Fatalf("go vet %s: %v\n%s", pkg, err, out)
			}

			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			run := exec.CommandContext(ctx, goBin, "run", pkg)
			out, err := run.CombinedOutput()
			if err != nil {
				t.Fatalf("go run %s: %v\n%s", pkg, err, out)
			}
			if len(out) == 0 {
				t.Errorf("%s produced no output", pkg)
			}
		})
	}
}
