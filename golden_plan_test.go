package seqpoint_test

// Golden determinism for the capacity planner. Solve is a pure
// function of its spec, and the fleet simulator underneath is
// deterministic at any profiling parallelism — so the same planning
// problem must serialize to a byte-identical Plan at parallelism 1, 4
// and GOMAXPROCS, pinned against a committed golden file. The brute
// force companion test re-derives the answer by linear scan, proving
// the binary search returns the true minimum and that one replica
// fewer violates the SLO.
//
// Regenerate the golden after an intentional model change with:
//
//	go test -run TestGoldenPlanDeterminism -update-golden .

import (
	"bytes"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"seqpoint"
)

const goldenPlanPath = "testdata/golden_plan.json"

// goldenPlanWorkload is the same synthetic corpus the other goldens
// use, served at 700 rps with dynamic batching behind a bounded queue.
const (
	goldenPlanRate     = 700.0
	goldenPlanRequests = 160
	goldenPlanQueueCap = 24
	goldenPlanSeed     = 42
	goldenPlanMaxRepl  = 8
)

// goldenPlanSLO needs three replicas of every routing on this
// workload: two replicas drop 20% of admissions and miss the
// throughput floor.
func goldenPlanSLO() seqpoint.PlanSLO {
	noDrops := 0.0
	return seqpoint.PlanSLO{
		LatencyP99US:     180_000,
		MinThroughputRPS: 400,
		MaxDropRatePct:   &noDrops,
	}
}

// goldenPlanProbe prices candidates through the public facade: a
// seeded Poisson trace per offered rate, the shared profile engine,
// and the full fleet simulator.
func goldenPlanProbe(t testing.TB, eng *seqpoint.Engine) seqpoint.PlanProbeFunc {
	t.Helper()
	lengths := make([]int, 192)
	for i := range lengths {
		lengths[i] = 4 + (i*13)%48
	}
	corpus, err := seqpoint.Synthetic("golden-plan", lengths, 1000)
	if err != nil {
		t.Fatal(err)
	}
	return func(c seqpoint.PlanCandidate, rate float64) (seqpoint.FleetSummary, error) {
		trace, err := seqpoint.PoissonTrace(corpus, goldenPlanRequests, rate, goldenPlanSeed)
		if err != nil {
			return seqpoint.FleetSummary{}, err
		}
		policy, err := seqpoint.NewDynamicBatch(16, 20000)
		if err != nil {
			return seqpoint.FleetSummary{}, err
		}
		router, err := seqpoint.ParseRouting(c.Routing, goldenPlanSeed)
		if err != nil {
			return seqpoint.FleetSummary{}, err
		}
		res, err := seqpoint.SimulateFleet(seqpoint.FleetSpec{
			Model:    seqpoint.NewGNMT(),
			Trace:    trace,
			Policy:   policy,
			Router:   router,
			Replicas: c.Replicas,
			QueueCap: goldenPlanQueueCap,
			Profiles: eng,
		}, seqpoint.VegaFE())
		if err != nil {
			return seqpoint.FleetSummary{}, err
		}
		return res.Summary(), nil
	}
}

func goldenPlanSpec(t testing.TB, eng *seqpoint.Engine) seqpoint.PlanSpec {
	return seqpoint.PlanSpec{
		SLO:         goldenPlanSLO(),
		RatePerSec:  goldenPlanRate,
		MaxReplicas: goldenPlanMaxRepl,
		Probe:       goldenPlanProbe(t, eng),
	}
}

// TestGoldenPlanDeterminism holds the planner to the repo's byte
// contract: identical Plan JSON at profiling parallelism 1, 4 and
// GOMAXPROCS, pinned against a committed golden file. Regenerate with
// -update-golden.
func TestGoldenPlanDeterminism(t *testing.T) {
	parallelisms := []int{1, 4, runtime.GOMAXPROCS(0)}

	var reference []byte
	for _, par := range parallelisms {
		// A fresh private engine per run: a cold cache is the harder
		// determinism test.
		eng := seqpoint.NewEngine()
		eng.SetParallelism(par)
		plan, err := seqpoint.SolvePlan(goldenPlanSpec(t, eng))
		if err != nil {
			t.Fatalf("parallelism=%d: %v", par, err)
		}
		buf, err := plan.Serialize()
		if err != nil {
			t.Fatalf("parallelism=%d: serialize: %v", par, err)
		}
		if reference == nil {
			reference = buf
			continue
		}
		if !bytes.Equal(buf, reference) {
			t.Fatalf("Plan at parallelism %d differs from parallelism %d:\n%s\nvs\n%s",
				par, parallelisms[0], buf, reference)
		}
	}

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPlanPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPlanPath, reference, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", goldenPlanPath, len(reference))
		return
	}

	want, err := os.ReadFile(goldenPlanPath)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update-golden): %v", err)
	}
	if !bytes.Equal(reference, want) {
		t.Errorf("plan drifted from %s — if the cost model or search changed intentionally, regenerate with -update-golden.\ngot:\n%s\nwant:\n%s",
			goldenPlanPath, reference, want)
	}
}

// TestGoldenPlanMinimality re-derives the golden answer by brute
// force: scan every replica count through the same probe, and confirm
// the planner's binary search returned the smallest feasible fleet —
// in particular that replicas−1 violates the SLO.
func TestGoldenPlanMinimality(t *testing.T) {
	eng := seqpoint.NewEngine()
	plan, err := seqpoint.SolvePlan(goldenPlanSpec(t, eng))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Replicas < 2 {
		t.Fatalf("golden workload plans %d replica(s); the minimality check below would be vacuous", plan.Replicas)
	}

	probe := goldenPlanProbe(t, eng)
	slo := goldenPlanSLO()
	minimal := 0
	for r := 1; r <= goldenPlanMaxRepl; r++ {
		sum, err := probe(seqpoint.PlanCandidate{Replicas: r, Routing: plan.Routing}, goldenPlanRate)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := slo.Check(sum); ok {
			minimal = r
			break
		}
	}
	if minimal == 0 {
		t.Fatal("brute force found no feasible replica count, but the planner returned a plan")
	}
	if plan.Replicas != minimal {
		t.Errorf("planner chose %d replicas, brute-force minimum for routing %q is %d", plan.Replicas, plan.Routing, minimal)
	}

	below, err := probe(seqpoint.PlanCandidate{Replicas: plan.Replicas - 1, Routing: plan.Routing}, goldenPlanRate)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := slo.Check(below); ok {
		t.Errorf("%d replicas also meet the SLO; the plan is not minimal", plan.Replicas-1)
	}
}

// BenchmarkPlanSearch measures planner convergence on the golden
// workload: the full search — four routings, binary search to the
// minimal fleet, knee bisection — against the real profile-backed
// fleet simulator with a warm engine.
func BenchmarkPlanSearch(b *testing.B) {
	eng := seqpoint.NewEngine()
	spec := goldenPlanSpec(b, eng)
	// Warm the profile cache once so iterations measure the search and
	// the simulations, not first-touch profiling.
	if _, err := seqpoint.SolvePlan(spec); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan, err := seqpoint.SolvePlan(spec)
		if err != nil {
			b.Fatal(err)
		}
		if plan.Replicas == 0 {
			b.Fatal("empty plan")
		}
	}
}
