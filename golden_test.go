package seqpoint_test

// Golden determinism harness. The simulator's core promise is that a
// Spec plus a seed pins the result down to the byte — independent of
// profiling parallelism, engine sharing, and cluster size. This test
// runs one Spec at profiling parallelism 1, 4 and GOMAXPROCS, at GPU
// counts 1, 4 and 8, asserts all parallelism levels serialize to
// byte-identical RunSummary JSON, and compares against a committed
// golden file so cross-version drift (a changed cost model, a changed
// float evaluation order) is caught in review instead of silently
// shifting every downstream number.
//
// Regenerate the golden after an intentional model change with:
//
//	go test -run TestGoldenClusterDeterminism -update-golden .

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"seqpoint"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden run-summary file")

const goldenPath = "testdata/golden_cluster_summaries.json"

// goldenSpec is deliberately synthetic and small: a fixed SL list (no
// RNG beyond the seeded shuffle), the real GNMT model, and an eval
// corpus, so every simulator subsystem contributes to the digest while
// the test stays fast.
func goldenSpec(t *testing.T) seqpoint.Spec {
	t.Helper()
	lengths := make([]int, 192)
	for i := range lengths {
		lengths[i] = 4 + (i*13)%48
	}
	train, err := seqpoint.Synthetic("golden-train", lengths, 1000)
	if err != nil {
		t.Fatal(err)
	}
	eval, err := seqpoint.Synthetic("golden-eval", lengths[:64], 1000)
	if err != nil {
		t.Fatal(err)
	}
	return seqpoint.Spec{
		Model:    seqpoint.NewGNMT(),
		Train:    train,
		Eval:     eval,
		Batch:    16,
		Epochs:   2,
		Schedule: seqpoint.GNMTSchedule(),
		Seed:     42,
	}
}

func TestGoldenClusterDeterminism(t *testing.T) {
	parallelisms := []int{1, 4, runtime.GOMAXPROCS(0)}
	gpuCounts := []int{1, 4, 8}

	var got bytes.Buffer
	for _, gpus := range gpuCounts {
		var reference []byte
		for _, par := range parallelisms {
			// A fresh private engine per run: nothing may leak between
			// parallelism levels through a shared cache, and a cold
			// cache is the harder determinism test.
			eng := seqpoint.NewEngine()
			eng.SetParallelism(par)
			spec := goldenSpec(t)
			spec.Profiles = eng
			spec.Cluster = seqpoint.DefaultCluster(gpus)

			run, err := eng.Simulate(spec, seqpoint.VegaFE())
			if err != nil {
				t.Fatalf("gpus=%d parallelism=%d: %v", gpus, par, err)
			}
			buf, err := run.Summary().Serialize()
			if err != nil {
				t.Fatalf("gpus=%d parallelism=%d: serialize: %v", gpus, par, err)
			}
			if reference == nil {
				reference = buf
				continue
			}
			if !bytes.Equal(buf, reference) {
				t.Fatalf("gpus=%d: RunSummary at parallelism %d differs from parallelism %d:\n%s\nvs\n%s",
					gpus, par, parallelisms[0], buf, reference)
			}
		}
		fmt.Fprintf(&got, "=== gpus %d ===\n", gpus)
		got.Write(reference)
	}

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", goldenPath, got.Len())
		return
	}

	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update-golden): %v", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("run summaries drifted from %s — if the cost model changed intentionally, regenerate with -update-golden.\ngot %d bytes, want %d bytes",
			goldenPath, got.Len(), len(want))
	}
}

const goldenServingPath = "testdata/golden_serving_summary.json"

// goldenServingSpec mirrors goldenSpec for the online-serving layer: a
// seeded Poisson trace over a fixed synthetic corpus, served with
// dynamic batching, so the arrival process, the batcher, the event
// loop, and the eval-profile pricing all contribute to the digest.
func goldenServingSpec(t *testing.T, eng *seqpoint.Engine) seqpoint.ServingSpec {
	t.Helper()
	lengths := make([]int, 192)
	for i := range lengths {
		lengths[i] = 4 + (i*13)%48
	}
	corpus, err := seqpoint.Synthetic("golden-serve", lengths, 1000)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := seqpoint.PoissonTrace(corpus, 128, 250, 42)
	if err != nil {
		t.Fatal(err)
	}
	policy, err := seqpoint.NewDynamicBatch(16, 20000)
	if err != nil {
		t.Fatal(err)
	}
	return seqpoint.ServingSpec{
		Model:    seqpoint.NewGNMT(),
		Trace:    trace,
		Policy:   policy,
		Profiles: eng,
	}
}

// TestGoldenServingDeterminism holds the serving simulator to the same
// contract as training: byte-identical ServingSummary JSON at
// profiling parallelism 1, 4 and GOMAXPROCS, pinned against a
// committed golden file. Regenerate with -update-golden.
func TestGoldenServingDeterminism(t *testing.T) {
	parallelisms := []int{1, 4, runtime.GOMAXPROCS(0)}

	var reference []byte
	for _, par := range parallelisms {
		// A fresh private engine per run: a cold cache is the harder
		// determinism test.
		eng := seqpoint.NewEngine()
		eng.SetParallelism(par)
		res, err := seqpoint.SimulateServing(goldenServingSpec(t, eng), seqpoint.VegaFE())
		if err != nil {
			t.Fatalf("parallelism=%d: %v", par, err)
		}
		buf, err := res.Summary().Serialize()
		if err != nil {
			t.Fatalf("parallelism=%d: serialize: %v", par, err)
		}
		if reference == nil {
			reference = buf
			continue
		}
		if !bytes.Equal(buf, reference) {
			t.Fatalf("ServingSummary at parallelism %d differs from parallelism %d:\n%s\nvs\n%s",
				par, parallelisms[0], buf, reference)
		}
	}

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenServingPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenServingPath, reference, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", goldenServingPath, len(reference))
		return
	}

	want, err := os.ReadFile(goldenServingPath)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update-golden): %v", err)
	}
	if !bytes.Equal(reference, want) {
		t.Errorf("serving summary drifted from %s — if the cost model changed intentionally, regenerate with -update-golden.\ngot:\n%s\nwant:\n%s",
			goldenServingPath, reference, want)
	}
}

const goldenFleetPath = "testdata/golden_fleet_summary.json"

// goldenFleetSpec stresses every fleet-only subsystem at once: seeded
// po2 routing, a bounded admission queue, a heterogeneous replica (2
// GPUs), and the reactive autoscaler — so a byte drift in any of them
// shows up in the pinned summary.
func goldenFleetSpec(t *testing.T, eng *seqpoint.Engine) seqpoint.FleetSpec {
	t.Helper()
	lengths := make([]int, 192)
	for i := range lengths {
		lengths[i] = 4 + (i*13)%48
	}
	corpus, err := seqpoint.Synthetic("golden-fleet", lengths, 1000)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := seqpoint.PoissonTrace(corpus, 160, 700, 42)
	if err != nil {
		t.Fatal(err)
	}
	policy, err := seqpoint.NewDynamicBatch(16, 20000)
	if err != nil {
		t.Fatal(err)
	}
	return seqpoint.FleetSpec{
		Model:    seqpoint.NewGNMT(),
		Trace:    trace,
		Policy:   policy,
		Router:   seqpoint.NewPowerOfTwo(42),
		Replicas: 1,
		Clusters: []seqpoint.ClusterConfig{
			seqpoint.SingleGPU(),
			seqpoint.DefaultCluster(2),
			seqpoint.SingleGPU(),
		},
		QueueCap: 24,
		Autoscale: &seqpoint.FleetAutoscale{
			Min: 1, Max: 3, UpDepth: 8, DownDepth: 2, CooldownUS: 10000,
		},
		Profiles: eng,
	}
}

// TestGoldenFleetDeterminism holds the fleet simulator to the same
// contract as training and single-queue serving: byte-identical
// FleetSummary JSON at profiling parallelism 1, 4 and GOMAXPROCS —
// and, since PR 6, at every FleetSpec.Parallelism (the
// replica-advancement knob) — pinned against a committed golden file.
// Regenerate with -update-golden.
func TestGoldenFleetDeterminism(t *testing.T) {
	parallelisms := []int{1, 4, runtime.GOMAXPROCS(0)}

	var reference []byte
	for _, par := range parallelisms {
		// Each profiling parallelism is paired with a different
		// replica-advancement parallelism, so both knobs are swept
		// without quadratic runtime. (This golden spec autoscales, so
		// SimulateFleet falls back to serial advancement — the knob
		// must still not change a byte.)
		for _, simPar := range []int{0, par + 1} {
			// A fresh private engine per run: a cold cache is the harder
			// determinism test.
			eng := seqpoint.NewEngine()
			eng.SetParallelism(par)
			spec := goldenFleetSpec(t, eng)
			spec.Parallelism = simPar
			res, err := seqpoint.SimulateFleet(spec, seqpoint.VegaFE())
			if err != nil {
				t.Fatalf("parallelism=%d sim-parallelism=%d: %v", par, simPar, err)
			}
			buf, err := res.Summary().Serialize()
			if err != nil {
				t.Fatalf("parallelism=%d sim-parallelism=%d: serialize: %v", par, simPar, err)
			}
			if reference == nil {
				reference = buf
				continue
			}
			if !bytes.Equal(buf, reference) {
				t.Fatalf("FleetSummary at parallelism %d/%d differs from the reference run:\n%s\nvs\n%s",
					par, simPar, buf, reference)
			}
		}
	}

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenFleetPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenFleetPath, reference, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", goldenFleetPath, len(reference))
		return
	}

	want, err := os.ReadFile(goldenFleetPath)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update-golden): %v", err)
	}
	if !bytes.Equal(reference, want) {
		t.Errorf("fleet summary drifted from %s — if the cost model changed intentionally, regenerate with -update-golden.\ngot:\n%s\nwant:\n%s",
			goldenFleetPath, reference, want)
	}
}

const goldenFleetKVPath = "testdata/golden_fleet_kv_summary.json"

// goldenFleetKVSpec pins the memory-aware serving stack: the KV-cache
// capacity model with a ceiling tight enough to force preemption
// waves, prefill/decode split pricing, cache-pressure routing, and a
// bounded admission queue. The KV-off goldens above are intentionally
// untouched — with Spec.KV nil the simulator must keep producing them
// byte-for-byte.
func goldenFleetKVSpec(t *testing.T, eng *seqpoint.Engine) seqpoint.FleetSpec {
	t.Helper()
	lengths := make([]int, 192)
	for i := range lengths {
		lengths[i] = 4 + (i*13)%48
	}
	corpus, err := seqpoint.Synthetic("golden-fleet-kv", lengths, 1000)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := seqpoint.PoissonTrace(corpus, 160, 700, 42)
	if err != nil {
		t.Fatal(err)
	}
	policy, err := seqpoint.NewDynamicBatch(16, 20000)
	if err != nil {
		t.Fatal(err)
	}
	return seqpoint.FleetSpec{
		Model:    seqpoint.NewGNMT(),
		Trace:    trace,
		Policy:   policy,
		Router:   seqpoint.NewKVRouter(),
		Replicas: 3,
		QueueCap: 24,
		Profiles: eng,
		KV: &seqpoint.KVCacheConfig{
			// ~Half a full dynamic batch of worst-case contexts fits, so
			// the run preempts without rejecting anything at admission.
			CapacityBytes: 40e6,
			DecodeSteps:   24,
		},
	}
}

// TestGoldenFleetKVDeterminism holds memory-aware serving to the same
// byte contract: identical FleetSummary JSON at profiling parallelism
// 1, 4 and GOMAXPROCS and at every replica-advancement parallelism,
// for both the aggregated fleet and the disaggregated two-pool
// topology, pinned against a committed golden file. Regenerate with
// -update-golden.
func TestGoldenFleetKVDeterminism(t *testing.T) {
	parallelisms := []int{1, 4, runtime.GOMAXPROCS(0)}

	var got bytes.Buffer
	for _, disagg := range []bool{false, true} {
		var reference []byte
		for _, par := range parallelisms {
			for _, simPar := range []int{0, par + 1} {
				eng := seqpoint.NewEngine()
				eng.SetParallelism(par)
				spec := goldenFleetKVSpec(t, eng)
				spec.Parallelism = simPar
				if disagg {
					spec.Router = seqpoint.NewRoundRobin()
					spec.Disagg = &seqpoint.FleetDisagg{PrefillReplicas: 1, DecodeReplicas: 2}
				}
				res, err := seqpoint.SimulateFleet(spec, seqpoint.VegaFE())
				if err != nil {
					t.Fatalf("disagg=%v parallelism=%d sim-parallelism=%d: %v", disagg, par, simPar, err)
				}
				buf, err := res.Summary().Serialize()
				if err != nil {
					t.Fatalf("disagg=%v parallelism=%d sim-parallelism=%d: serialize: %v", disagg, par, simPar, err)
				}
				if reference == nil {
					reference = buf
					continue
				}
				if !bytes.Equal(buf, reference) {
					t.Fatalf("disagg=%v: FleetSummary at parallelism %d/%d differs from the reference run:\n%s\nvs\n%s",
						disagg, par, simPar, buf, reference)
				}
			}
		}
		fmt.Fprintf(&got, "=== disagg %v ===\n", disagg)
		got.Write(reference)
	}

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenFleetKVPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenFleetKVPath, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", goldenFleetKVPath, got.Len())
		return
	}

	want, err := os.ReadFile(goldenFleetKVPath)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update-golden): %v", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("fleet KV summary drifted from %s — if the cost model changed intentionally, regenerate with -update-golden.\ngot:\n%s\nwant:\n%s",
			goldenFleetKVPath, got.Bytes(), want)
	}
}

// TestGoldenSummaryScalesSanely spot-checks the committed scenario's
// physics rather than its bytes: more GPUs must not slow training down,
// and communication only exists on clusters.
func TestGoldenSummaryScalesSanely(t *testing.T) {
	summaries := make(map[int]seqpoint.RunSummary)
	for _, gpus := range []int{1, 4, 8} {
		spec := goldenSpec(t)
		spec.Cluster = seqpoint.DefaultCluster(gpus)
		run, err := seqpoint.Simulate(spec, seqpoint.VegaFE())
		if err != nil {
			t.Fatal(err)
		}
		summaries[gpus] = run.Summary()
	}
	if summaries[1].CommUS != 0 {
		t.Errorf("single GPU reports %v us of communication", summaries[1].CommUS)
	}
	if summaries[4].TrainUS >= summaries[1].TrainUS {
		t.Errorf("4 GPUs train slower than 1 (%.0f >= %.0f us)", summaries[4].TrainUS, summaries[1].TrainUS)
	}
	if summaries[8].TrainUS >= summaries[4].TrainUS {
		t.Errorf("8 GPUs train slower than 4 (%.0f >= %.0f us)", summaries[8].TrainUS, summaries[4].TrainUS)
	}
	if summaries[4].ShardBatch != 4 || summaries[8].ShardBatch != 2 {
		t.Errorf("shard batches %d/%d, want 4/2", summaries[4].ShardBatch, summaries[8].ShardBatch)
	}
}
