package seqpoint

import (
	"seqpoint/internal/engine"
	"seqpoint/internal/server"
)

// HTTP simulation service (internal/server): the engine behind
// seqpointd. A Server exposes the engine over HTTP/JSON — POST
// /v1/simulate, /v1/sweep and /v1/seqpoint, GET /healthz, /v1/stats
// and /metrics (Prometheus text exposition) — with per-request
// timeouts, a bounded in-flight limiter and request coalescing on top
// of the engine's per-profile singleflight. For shutdown, StartDrain
// flips the server into drain mode (new simulations get a typed 503)
// and Drain additionally joins every detached computation, so a final
// cache snapshot taken afterwards holds everything in-flight work
// priced. The typed ServiceClient speaks the same wire format.
type (
	// Server serves an engine over HTTP; it is an http.Handler.
	Server = server.Server
	// ServerOptions configures a Server; the zero value is usable.
	ServerOptions = server.Options
	// ServiceClient is the typed HTTP client for a seqpointd server.
	ServiceClient = server.Client
	// SimulateRequest describes one training-run simulation over the
	// wire.
	SimulateRequest = server.SimulateRequest
	// SweepRequest is a (workload × config) grid request.
	SweepRequest = server.SweepRequest
	// SweepResponse carries per-task sweep results in task order.
	SweepResponse = server.SweepResponse
	// SeqPointRequest asks for representative-iteration selection.
	SeqPointRequest = server.SeqPointRequest
	// SeqPointResponse is the selection outcome over the wire.
	SeqPointResponse = server.SeqPointResponse
	// WorkloadSpec is the request envelope shared by the serving-family
	// endpoints: model, rate, hardware config, batching policy, trace
	// shape and optional KV model. ServeRequest, FleetRequest and
	// PlanRequest embed it, so their JSON wire shapes stay flat.
	WorkloadSpec = server.WorkloadSpec
	// ServeRequest describes one online-serving simulation over the
	// wire (POST /v1/serve).
	ServeRequest = server.ServeRequest
	// ServeResponse is the serving outcome over the wire: the arrival
	// setup plus the throughput/latency-percentile roll-up.
	ServeResponse = server.ServeResponse
	// FleetRequest describes one multi-replica serving simulation over
	// the wire (POST /v1/fleet).
	FleetRequest = server.FleetRequest
	// FleetResponse is the fleet outcome over the wire: routing,
	// admission drops, latency tail and autoscaler activity.
	FleetResponse = server.FleetResponse
	// FleetAutoscaleSpec configures the fleet autoscaler over the wire.
	FleetAutoscaleSpec = server.AutoscaleSpec
	// PlanRequest asks the capacity planner for the minimal fleet
	// meeting an SLO (POST /v1/plan).
	PlanRequest = server.PlanRequest
	// PlanResponse is the planning outcome over the wire.
	PlanResponse = server.PlanResponse
	// PlanSLOSpec is the wire form of the planner's target envelope.
	PlanSLOSpec = server.PlanSLO
	// ServiceAPIError is a non-2xx service response surfaced by the
	// typed client: HTTP status plus the server's error body.
	ServiceAPIError = server.APIError
	// ServiceStats is the service- and engine-level counter snapshot
	// served by GET /v1/stats.
	ServiceStats = server.StatsResponse
)

var (
	// NewServer builds an HTTP simulation server over an engine.
	NewServer = server.New
	// NewServiceClient returns a typed client for the server at the
	// given base URL.
	NewServiceClient = server.NewClient
)

// CacheSnapshotVersion is the on-disk profile-cache format version;
// snapshots written at any other version are invalidated on load. See
// Engine.SaveSnapshot and Engine.LoadSnapshot for the persistence API
// that lets a restarted service answer warm.
const CacheSnapshotVersion = engine.SnapshotVersion
