package seqpoint_test

// Golden determinism for the multi-tenant workload path, end to end:
// a generated diurnal Zipf trace — two cohorts, bulk clumps, four
// tenants — served by a weighted-fair-batched fleet must serialize to
// a byte-identical FleetSummary at profiling parallelism 1, 4 and
// GOMAXPROCS, pinned against a committed golden file. The round-trip
// companion test saves the same trace through the versioned file
// format, loads it back, and replays it to the same bytes — the
// record/replay contract the trainsim and HTTP trace_file paths lean
// on.
//
// Regenerate the golden after an intentional model change with:
//
//	go test -run TestGoldenTenantDeterminism -update-golden .

import (
	"bytes"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"seqpoint"
)

const goldenTenantPath = "testdata/golden_tenant_summary.json"

const (
	goldenTenantRequests = 192
	goldenTenantRate     = 600.0
	goldenTenantSeed     = 42
	goldenTenantReplicas = 2
	goldenTenantQueueCap = 24
	goldenTenantBatch    = 8
)

// goldenTenantTrace generates the pinned workload: a chat cohort of
// three Zipf-skewed interactive tenants against a clumping bulk
// tenant, under a diurnal rate swing spanning one full period.
func goldenTenantTrace(t testing.TB) seqpoint.ServingTrace {
	t.Helper()
	short := make([]int, 24)
	for i := range short {
		short[i] = 4 + (i*5)%24
	}
	long := make([]int, 12)
	for i := range long {
		long[i] = 32 + (i*7)%28
	}
	horizonUS := float64(goldenTenantRequests) / goldenTenantRate * 1e6
	trace, err := seqpoint.GenerateTrace(seqpoint.WorkloadGenSpec{
		Name:       "golden-tenant",
		Requests:   goldenTenantRequests,
		RatePerSec: goldenTenantRate,
		Seed:       goldenTenantSeed,
		Pattern: seqpoint.WorkloadPattern{
			Kind:      seqpoint.PatternDiurnal,
			PeriodUS:  horizonUS,
			Amplitude: 0.5,
		},
		Cohorts: []seqpoint.WorkloadCohort{
			{Class: "chat", Tenants: 3, Weight: 8, ZipfS: 1.1, SeqLens: short},
			{Class: "bulk", Tenants: 1, Weight: 1, SeqLens: long, Burst: 2 * goldenTenantBatch},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return trace
}

// goldenTenantSummary runs the pinned fleet over a trace with a
// private engine at the given profiling parallelism and returns the
// serialized summary.
func goldenTenantSummary(t testing.TB, trace seqpoint.ServingTrace, par int) []byte {
	t.Helper()
	eng := seqpoint.NewEngine()
	eng.SetParallelism(par)
	policy, err := seqpoint.NewWFQBatch(goldenTenantBatch, 15_000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := seqpoint.SimulateFleet(seqpoint.FleetSpec{
		Model:       seqpoint.NewGNMT(),
		Trace:       trace,
		Policy:      policy,
		Router:      seqpoint.NewRoundRobin(),
		Replicas:    goldenTenantReplicas,
		QueueCap:    goldenTenantQueueCap,
		Profiles:    eng,
		Parallelism: par,
	}, seqpoint.VegaFE())
	if err != nil {
		t.Fatal(err)
	}
	buf, err := res.Summary().Serialize()
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// TestGoldenTenantDeterminism holds the multi-tenant pipeline to the
// repo's byte contract: generate → simulate is byte-identical at
// profiling parallelism 1, 4 and GOMAXPROCS, pinned against a
// committed golden. Regenerate with -update-golden.
func TestGoldenTenantDeterminism(t *testing.T) {
	parallelisms := []int{1, 4, runtime.GOMAXPROCS(0)}

	var reference []byte
	for _, par := range parallelisms {
		buf := goldenTenantSummary(t, goldenTenantTrace(t), par)
		if reference == nil {
			reference = buf
			continue
		}
		if !bytes.Equal(buf, reference) {
			t.Fatalf("tenant summary at parallelism %d differs from parallelism %d:\n%s\nvs\n%s",
				par, parallelisms[0], buf, reference)
		}
	}
	if !bytes.Contains(reference, []byte(`"per_tenant"`)) {
		t.Fatalf("golden summary carries no per-tenant block:\n%s", reference)
	}

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenTenantPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenTenantPath, reference, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", goldenTenantPath, len(reference))
		return
	}

	want, err := os.ReadFile(goldenTenantPath)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update-golden): %v", err)
	}
	if !bytes.Equal(reference, want) {
		t.Errorf("tenant summary drifted from %s — if the cost model or generator changed intentionally, regenerate with -update-golden.\ngot:\n%s\nwant:\n%s",
			goldenTenantPath, reference, want)
	}
}

// TestGoldenTenantTraceRoundTrip proves record/replay is lossless:
// saving the golden trace through the versioned file format and
// replaying the loaded copy reproduces the committed summary bytes.
func TestGoldenTenantTraceRoundTrip(t *testing.T) {
	trace := goldenTenantTrace(t)
	path := filepath.Join(t.TempDir(), "golden-tenant.trace")
	if err := seqpoint.SaveTrace(path, trace); err != nil {
		t.Fatal(err)
	}
	loaded, err := seqpoint.LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}

	direct := goldenTenantSummary(t, trace, 1)
	replayed := goldenTenantSummary(t, loaded, 1)
	if !bytes.Equal(replayed, direct) {
		t.Fatalf("replayed trace diverged from the generated one:\n%s\nvs\n%s", replayed, direct)
	}
	if want, err := os.ReadFile(goldenTenantPath); err == nil && !bytes.Equal(replayed, want) {
		t.Errorf("replayed summary drifted from %s:\n%s\nvs\n%s", goldenTenantPath, replayed, want)
	}
}
