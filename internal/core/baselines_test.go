package core

import (
	"errors"
	"math"
	"testing"
)

func TestFrequentPicksMode(t *testing.T) {
	recs := []SLRecord{
		{SeqLen: 10, Freq: 1, Stat: 100},
		{SeqLen: 20, Freq: 7, Stat: 200},
		{SeqLen: 30, Freq: 2, Stat: 300},
	}
	sel, err := Frequent(recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Points) != 1 || sel.Points[0].SeqLen != 20 {
		t.Errorf("frequent picked %+v, want SL 20", sel.Points)
	}
	// The single point stands for all 10 iterations.
	if sel.Points[0].Weight != 10 {
		t.Errorf("weight = %v, want 10", sel.Points[0].Weight)
	}
	// Projection: 10 * 200 = 2000; actual = 100 + 7*200 + 2*300 = 2100.
	if sel.ProjectedStat != 2000 || sel.ActualStat != 2100 {
		t.Errorf("proj=%v actual=%v", sel.ProjectedStat, sel.ActualStat)
	}
}

func TestMedianPicksWeightedMedian(t *testing.T) {
	recs := []SLRecord{
		{SeqLen: 10, Freq: 4, Stat: 1},
		{SeqLen: 20, Freq: 1, Stat: 2},
		{SeqLen: 30, Freq: 1, Stat: 3},
	}
	sel, err := Median(recs)
	if err != nil {
		t.Fatal(err)
	}
	// 6 iterations; the 4th (0-indexed 3) has SL 10.
	if sel.Points[0].SeqLen != 10 {
		t.Errorf("median picked SL %d, want 10", sel.Points[0].SeqLen)
	}
}

func TestWorstMaximizesError(t *testing.T) {
	recs := []SLRecord{
		{SeqLen: 10, Freq: 1, Stat: 100},
		{SeqLen: 20, Freq: 8, Stat: 110},
		{SeqLen: 30, Freq: 1, Stat: 500},
	}
	sel, err := Worst(recs)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Points[0].SeqLen != 30 {
		t.Errorf("worst picked SL %d, want the outlier 30", sel.Points[0].SeqLen)
	}
	// Its error must be at least every other single-SL error.
	for _, r := range recs {
		if e := singlePoint(recs, r.SeqLen).ErrorPct; e > sel.ErrorPct+1e-9 {
			t.Errorf("SL %d has error %v > worst's %v", r.SeqLen, e, sel.ErrorPct)
		}
	}
}

func TestBaselinesEmpty(t *testing.T) {
	for name, fn := range map[string]func([]SLRecord) (Selection, error){
		"frequent": Frequent, "median": Median, "worst": Worst,
	} {
		if _, err := fn(nil); !errors.Is(err, ErrNoRecords) {
			t.Errorf("%s(nil) error = %v, want ErrNoRecords", name, err)
		}
	}
}

func TestPriorScalesSampleToEpoch(t *testing.T) {
	// Epoch of 10 iterations; sample 4 after warmup 2.
	epochSLs := []int{1, 1, 2, 2, 3, 3, 4, 4, 5, 5}
	stat := map[int]float64{1: 10, 2: 20, 3: 30, 4: 40, 5: 50}
	sel, err := Prior(epochSLs, stat, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Sampled window: SLs 2,2,3,3 -> mean 25; projected = 25*10 = 250.
	if sel.ProjectedStat != 250 {
		t.Errorf("projected = %v, want 250", sel.ProjectedStat)
	}
	// Actual: 2*(10+20+30+40+50) = 300.
	if sel.ActualStat != 300 {
		t.Errorf("actual = %v, want 300", sel.ActualStat)
	}
	if got := TotalWeight(sel.Points); math.Abs(got-10) > 1e-9 {
		t.Errorf("total weight = %v, want full epoch 10", got)
	}
}

func TestPriorSortedEpochBias(t *testing.T) {
	// On a sorted epoch, an early window underestimates: the paper's
	// DS2 artifact in reverse — sampling position dictates the bias.
	var epochSLs []int
	stat := map[int]float64{}
	for sl := 1; sl <= 100; sl++ {
		epochSLs = append(epochSLs, sl)
		stat[sl] = float64(sl)
	}
	early, err := Prior(epochSLs, stat, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	mid, err := Prior(epochSLs, stat, 45, 10)
	if err != nil {
		t.Fatal(err)
	}
	if early.ProjectedStat >= early.ActualStat {
		t.Error("early window on a sorted epoch must underestimate")
	}
	if mid.ErrorPct >= early.ErrorPct {
		t.Errorf("mid-epoch window (%v%%) should beat the early window (%v%%)",
			mid.ErrorPct, early.ErrorPct)
	}
}

func TestPriorErrors(t *testing.T) {
	stat := map[int]float64{1: 1}
	if _, err := Prior([]int{1, 1}, stat, -1, 1); err == nil {
		t.Error("negative warmup should error")
	}
	if _, err := Prior([]int{1, 1}, stat, 0, 0); err == nil {
		t.Error("zero count should error")
	}
	if _, err := Prior([]int{1, 1}, stat, 1, 5); err == nil {
		t.Error("window past epoch end should error")
	}
	if _, err := Prior([]int{1, 2}, stat, 0, 2); !errors.Is(err, ErrStatMissing) {
		t.Error("missing stat for sampled SL should report ErrStatMissing")
	}
}

func TestAllMethodsOrder(t *testing.T) {
	ms := AllMethods()
	want := []MethodName{MethodWorst, MethodFrequent, MethodMedian, MethodPrior, MethodSeqPoint}
	if len(ms) != len(want) {
		t.Fatalf("methods = %v", ms)
	}
	for i := range want {
		if ms[i] != want[i] {
			t.Errorf("method %d = %s, want %s (paper plotting order)", i, ms[i], want[i])
		}
	}
}

func TestSeqPointBeatsSingleIterationBaselines(t *testing.T) {
	// The paper's central claim, on a synthetic skewed epoch: SeqPoint's
	// self-projection error is below every single-iteration strategy's.
	var recs []SLRecord
	for sl := 10; sl <= 400; sl += 3 {
		freq := 1
		if sl < 120 {
			freq = 6 // skew toward short iterations
		}
		recs = append(recs, SLRecord{SeqLen: sl, Freq: freq, Stat: float64(sl)*2 + 30})
	}
	sp, err := Select(recs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for name, fn := range map[string]func([]SLRecord) (Selection, error){
		"frequent": Frequent, "median": Median, "worst": Worst,
	} {
		b, err := fn(recs)
		if err != nil {
			t.Fatal(err)
		}
		if sp.ErrorPct >= b.ErrorPct {
			t.Errorf("seqpoint (%.3f%%) should beat %s (%.3f%%)", sp.ErrorPct, name, b.ErrorPct)
		}
	}
}
