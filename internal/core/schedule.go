package core

import (
	"fmt"
	"sort"
)

// Section VI-F of the paper notes that, since each SeqPoint is an
// independent iteration, the selected iterations can be profiled in
// parallel on different machines, multiplying the profiling speedup.
// ScheduleProfiling plans that parallel run: it partitions the
// SeqPoints across machines to minimize the makespan (the time until
// the slowest machine finishes), using the classic longest-processing-
// time-first greedy, which is within 4/3 of optimal.

// MachinePlan is the profiling work assigned to one machine.
type MachinePlan struct {
	// Points are the SeqPoints this machine profiles.
	Points []SeqPoint
	// TimeUS is the machine's total profiling time (sum of its
	// iterations' calibration-config runtimes).
	TimeUS float64
}

// ProfilingSchedule is a parallel profiling plan.
type ProfilingSchedule struct {
	// Machines holds one plan per machine, ordered by descending load.
	Machines []MachinePlan
	// MakespanUS is the parallel profiling time: the largest machine
	// load.
	MakespanUS float64
	// SerialUS is the single-machine profiling time for comparison.
	SerialUS float64
}

// Speedup is the parallel-over-serial profiling speedup of the plan.
func (s ProfilingSchedule) Speedup() float64 {
	if s.MakespanUS == 0 {
		return 0
	}
	return s.SerialUS / s.MakespanUS
}

// ScheduleProfiling assigns the points to `machines` machines using LPT:
// sort by descending runtime, place each on the least-loaded machine.
// Point stats must be the per-iteration profiling cost (runtime on the
// calibration configuration).
func ScheduleProfiling(points []SeqPoint, machines int) (ProfilingSchedule, error) {
	if machines <= 0 {
		return ProfilingSchedule{}, fmt.Errorf("core: machine count must be positive, got %d", machines)
	}
	if len(points) == 0 {
		return ProfilingSchedule{}, ErrNoRecords
	}
	for _, p := range points {
		if p.Stat < 0 {
			return ProfilingSchedule{}, fmt.Errorf("core: SeqPoint SL %d has negative cost %v", p.SeqLen, p.Stat)
		}
	}
	if machines > len(points) {
		machines = len(points)
	}

	sorted := append([]SeqPoint(nil), points...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Stat > sorted[j].Stat })

	plans := make([]MachinePlan, machines)
	var serial float64
	for _, p := range sorted {
		serial += p.Stat
		// Least-loaded machine; ties break toward the lower index for
		// determinism.
		best := 0
		for m := 1; m < machines; m++ {
			if plans[m].TimeUS < plans[best].TimeUS {
				best = m
			}
		}
		plans[best].Points = append(plans[best].Points, p)
		plans[best].TimeUS += p.Stat
	}

	sort.Slice(plans, func(i, j int) bool { return plans[i].TimeUS > plans[j].TimeUS })
	return ProfilingSchedule{
		Machines:   plans,
		MakespanUS: plans[0].TimeUS,
		SerialUS:   serial,
	}, nil
}
