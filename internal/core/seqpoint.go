// Package core implements the SeqPoint methodology — the paper's
// contribution. Given the architecture-independent log of one training
// epoch (each unique input sequence length, how many iterations ran at
// it, and the runtime — or any other statistic — of one such iteration),
// it selects a small set of representative sequence lengths
// ("SeqPoints") with weights, such that the weighted sum of per-SeqPoint
// statistics projects whole-training-run behaviour.
//
// Mechanism (paper Fig. 10):
//
//  1. Log stat per unique sequence length (SL) from one epoch.
//  2. If the number of unique SLs is at most the threshold n, every
//     unique SL is a SeqPoint. Otherwise bin SLs into k contiguous
//     ranges (k starts at 5).
//  3. From each bin pick the SL whose stat is closest to the bin's
//     (frequency-weighted) average stat.
//  4. Weight each SeqPoint by its bin's iteration population.
//  5. Project the epoch statistic as the weighted sum (Equation 1).
//  6. If the self-projection error exceeds the threshold e, increment k
//     and repeat from 2.
//
// The package also implements the baselines the paper evaluates against
// (frequent, median, worst, prior) and the k-means clustering
// alternative of Section VII-C.
package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// SLRecord is the per-unique-sequence-length log entry from one training
// epoch: step 1 of the mechanism.
type SLRecord struct {
	// SeqLen is the padded sequence length.
	SeqLen int
	// Freq is the number of iterations at this SL in the epoch.
	Freq int
	// Stat is the statistic of one iteration at this SL on the
	// calibration configuration (typically runtime in microseconds; any
	// statistic that varies with SL works — Section V-C).
	Stat float64
}

// SeqPoint is one selected representative.
type SeqPoint struct {
	// SeqLen is the representative sequence length to profile.
	SeqLen int
	// Weight is the number of epoch iterations the SeqPoint stands for.
	Weight float64
	// Stat is the calibration-config statistic of the representative.
	Stat float64
	// Bin is the index of the bin this SeqPoint represents.
	Bin int
}

// Options tune the selection; zero values take the paper's defaults.
type Options struct {
	// MaxUniqueNoBinning is n: if the epoch has at most this many
	// unique SLs, all of them become SeqPoints. Paper default: 10.
	MaxUniqueNoBinning int
	// InitialBins is the starting k. Paper default: 5.
	InitialBins int
	// ErrorThresholdPct is e: the self-projection error (percent) below
	// which the selection is accepted. Default: 1.0.
	ErrorThresholdPct float64
	// MaxBins caps the refinement loop; defaults to the sequence-length
	// span (hi-lo+1), the k at which equal-width binning provably
	// isolates every unique SL and the projection becomes exact. (The
	// unique-SL count is not enough: two adjacent SLs can share an
	// equal-width bin while another bin sits empty.)
	MaxBins int
}

// Paper-default option values.
const (
	DefaultMaxUniqueNoBinning = 10
	DefaultInitialBins        = 5
	DefaultErrorThresholdPct  = 1.0
)

func (o Options) withDefaults(span int) Options {
	if o.MaxUniqueNoBinning <= 0 {
		o.MaxUniqueNoBinning = DefaultMaxUniqueNoBinning
	}
	if o.InitialBins <= 0 {
		o.InitialBins = DefaultInitialBins
	}
	if o.ErrorThresholdPct <= 0 {
		o.ErrorThresholdPct = DefaultErrorThresholdPct
	}
	if o.MaxBins <= 0 || o.MaxBins > span {
		o.MaxBins = span
	}
	return o
}

// Selection is the outcome of SeqPoint selection.
type Selection struct {
	// Points are the selected SeqPoints, ordered by sequence length.
	Points []SeqPoint
	// Bins is the final bin count k (0 when binning was skipped).
	Bins int
	// Binned reports whether binning was needed (unique SLs > n).
	Binned bool
	// ProjectedStat is the Equation-1 weighted sum on the calibration
	// config; ActualStat the true epoch total; ErrorPct their error.
	ProjectedStat float64
	ActualStat    float64
	ErrorPct      float64
}

// ErrNoRecords is returned when the epoch log is empty.
var ErrNoRecords = errors.New("core: no sequence-length records")

// Select runs the SeqPoint mechanism over the epoch log.
func Select(records []SLRecord, opts Options) (Selection, error) {
	if len(records) == 0 {
		return Selection{}, ErrNoRecords
	}
	recs, err := normalizeRecords(records)
	if err != nil {
		return Selection{}, err
	}
	span := recs[len(recs)-1].SeqLen - recs[0].SeqLen + 1
	opts = opts.withDefaults(span)

	actual := epochTotal(recs)

	// Step: few unique SLs — take them all, weighted by frequency.
	if len(recs) <= opts.MaxUniqueNoBinning {
		points := make([]SeqPoint, len(recs))
		for i, r := range recs {
			points[i] = SeqPoint{SeqLen: r.SeqLen, Weight: float64(r.Freq), Stat: r.Stat, Bin: i}
		}
		proj := projectTotal(points)
		return Selection{
			Points:        points,
			Binned:        false,
			ProjectedStat: proj,
			ActualStat:    actual,
			ErrorPct:      pctErr(proj, actual),
		}, nil
	}

	// Steps 2-6: bin, pick, weight, project; grow k until under e.
	var best Selection
	for k := opts.InitialBins; k <= opts.MaxBins; k++ {
		points := selectWithBins(recs, k)
		proj := projectTotal(points)
		sel := Selection{
			Points:        points,
			Bins:          k,
			Binned:        true,
			ProjectedStat: proj,
			ActualStat:    actual,
			ErrorPct:      pctErr(proj, actual),
		}
		if best.Points == nil || sel.ErrorPct < best.ErrorPct {
			best = sel
		}
		if sel.ErrorPct <= opts.ErrorThresholdPct {
			return sel, nil
		}
	}
	// The threshold was never met within MaxBins; return the best
	// selection found. (With the default MaxBins — the full SL span —
	// the final iteration isolates every SL and projects exactly, so
	// this only happens with a user-constrained MaxBins.)
	return best, nil
}

// normalizeRecords validates, merges duplicate SLs, and sorts.
func normalizeRecords(records []SLRecord) ([]SLRecord, error) {
	bySL := make(map[int]SLRecord, len(records))
	for _, r := range records {
		if r.SeqLen <= 0 {
			return nil, fmt.Errorf("core: invalid sequence length %d", r.SeqLen)
		}
		if r.Freq <= 0 {
			return nil, fmt.Errorf("core: SL %d has non-positive frequency %d", r.SeqLen, r.Freq)
		}
		if r.Stat < 0 || math.IsNaN(r.Stat) || math.IsInf(r.Stat, 0) {
			return nil, fmt.Errorf("core: SL %d has invalid stat %v", r.SeqLen, r.Stat)
		}
		if prev, ok := bySL[r.SeqLen]; ok {
			if prev.Stat != r.Stat {
				return nil, fmt.Errorf("core: SL %d logged with conflicting stats %v and %v",
					r.SeqLen, prev.Stat, r.Stat)
			}
			prev.Freq += r.Freq
			bySL[r.SeqLen] = prev
			continue
		}
		bySL[r.SeqLen] = r
	}
	out := make([]SLRecord, 0, len(bySL))
	for _, r := range bySL {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].SeqLen < out[j].SeqLen })
	return out, nil
}

// selectWithBins bins the sorted records into k contiguous SL ranges and
// picks one representative per non-empty bin (steps 2-4).
func selectWithBins(recs []SLRecord, k int) []SeqPoint {
	lo := recs[0].SeqLen
	hi := recs[len(recs)-1].SeqLen
	span := hi - lo + 1

	// binOf maps an SL onto one of k equal-width contiguous ranges.
	binOf := func(sl int) int {
		b := (sl - lo) * k / span
		if b >= k {
			b = k - 1
		}
		return b
	}

	type binAcc struct {
		members   []SLRecord
		weightSum float64
		statSum   float64 // frequency-weighted
	}
	bins := make([]binAcc, k)
	for _, r := range recs {
		b := binOf(r.SeqLen)
		bins[b].members = append(bins[b].members, r)
		bins[b].weightSum += float64(r.Freq)
		bins[b].statSum += float64(r.Freq) * r.Stat
	}

	var points []SeqPoint
	for b, acc := range bins {
		if len(acc.members) == 0 {
			continue
		}
		avg := acc.statSum / acc.weightSum
		// Representative: member whose stat is closest to the bin
		// average (step 3). Ties break toward the smaller SL.
		rep := acc.members[0]
		bestD := math.Abs(rep.Stat - avg)
		for _, m := range acc.members[1:] {
			if d := math.Abs(m.Stat - avg); d < bestD {
				rep, bestD = m, d
			}
		}
		points = append(points, SeqPoint{
			SeqLen: rep.SeqLen,
			Weight: acc.weightSum,
			Stat:   rep.Stat,
			Bin:    b,
		})
	}
	return points
}

// epochTotal is the true epoch statistic: sum over all iterations.
func epochTotal(recs []SLRecord) float64 {
	var t float64
	for _, r := range recs {
		t += float64(r.Freq) * r.Stat
	}
	return t
}

// projectTotal is Equation 1: the weighted sum over SeqPoints.
func projectTotal(points []SeqPoint) float64 {
	var t float64
	for _, p := range points {
		t += p.Weight * p.Stat
	}
	return t
}

func pctErr(predicted, actual float64) float64 {
	if actual == 0 {
		return 0
	}
	return math.Abs(predicted-actual) / math.Abs(actual) * 100
}
