package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func pointsWithCosts(costs ...float64) []SeqPoint {
	pts := make([]SeqPoint, len(costs))
	for i, c := range costs {
		pts[i] = SeqPoint{SeqLen: 10 * (i + 1), Weight: 1, Stat: c}
	}
	return pts
}

func TestScheduleProfilingSingleMachine(t *testing.T) {
	s, err := ScheduleProfiling(pointsWithCosts(3, 1, 2), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Machines) != 1 {
		t.Fatalf("machines = %d", len(s.Machines))
	}
	if s.MakespanUS != 6 || s.SerialUS != 6 {
		t.Errorf("makespan %v serial %v, want 6/6", s.MakespanUS, s.SerialUS)
	}
	if sp := s.Speedup(); sp != 1 {
		t.Errorf("single-machine speedup = %v", sp)
	}
}

func TestScheduleProfilingBalances(t *testing.T) {
	// LPT on {5,4,3,3,3} over 2 machines: 5+3 vs 4+3+3 -> makespan 10.
	s, err := ScheduleProfiling(pointsWithCosts(5, 4, 3, 3, 3), 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.SerialUS != 18 {
		t.Errorf("serial = %v", s.SerialUS)
	}
	if s.MakespanUS != 10 {
		t.Errorf("makespan = %v, want 10 (LPT)", s.MakespanUS)
	}
	if sp := s.Speedup(); math.Abs(sp-1.8) > 1e-9 {
		t.Errorf("speedup = %v, want 1.8", sp)
	}
}

func TestScheduleProfilingClampsMachines(t *testing.T) {
	s, err := ScheduleProfiling(pointsWithCosts(1, 2), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Machines) != 2 {
		t.Errorf("machines = %d, want clamp to point count", len(s.Machines))
	}
	// Fully parallel: makespan is the longest single iteration.
	if s.MakespanUS != 2 {
		t.Errorf("makespan = %v", s.MakespanUS)
	}
}

func TestScheduleProfilingErrors(t *testing.T) {
	if _, err := ScheduleProfiling(nil, 2); !errors.Is(err, ErrNoRecords) {
		t.Error("empty points should report ErrNoRecords")
	}
	if _, err := ScheduleProfiling(pointsWithCosts(1), 0); err == nil {
		t.Error("zero machines should error")
	}
	if _, err := ScheduleProfiling([]SeqPoint{{SeqLen: 1, Stat: -1}}, 1); err == nil {
		t.Error("negative cost should error")
	}
}

func TestQuickScheduleInvariants(t *testing.T) {
	// Conservation: every point is assigned exactly once; makespan is
	// the max machine load; makespan >= serial/machines (lower bound)
	// and >= the longest single point.
	f := func(seed int64, n8, m8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(n8)%30 + 1
		m := int(m8)%8 + 1
		pts := make([]SeqPoint, n)
		var serial, longest float64
		for i := range pts {
			c := rng.Float64()*100 + 1
			pts[i] = SeqPoint{SeqLen: i + 1, Stat: c}
			serial += c
			if c > longest {
				longest = c
			}
		}
		s, err := ScheduleProfiling(pts, m)
		if err != nil {
			return false
		}
		var assigned int
		var maxLoad float64
		for _, mp := range s.Machines {
			assigned += len(mp.Points)
			var load float64
			for _, p := range mp.Points {
				load += p.Stat
			}
			if math.Abs(load-mp.TimeUS) > 1e-9 {
				return false
			}
			if load > maxLoad {
				maxLoad = load
			}
		}
		if assigned != n {
			return false
		}
		if math.Abs(maxLoad-s.MakespanUS) > 1e-9 {
			return false
		}
		eff := m
		if eff > n {
			eff = n
		}
		lower := math.Max(serial/float64(eff), longest)
		// LPT guarantee: within 4/3 of optimal >= lower bound.
		return s.MakespanUS >= lower-1e-9 && s.MakespanUS <= lower*4/3+1e-9+longest
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestScheduleDeterministic(t *testing.T) {
	pts := pointsWithCosts(7, 3, 3, 5, 2, 8)
	a, err := ScheduleProfiling(pts, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ScheduleProfiling(pts, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.MakespanUS != b.MakespanUS || len(a.Machines) != len(b.Machines) {
		t.Error("schedule must be deterministic")
	}
}
