package core

import (
	"math"
	"testing"
)

func TestSelectKMeansBasic(t *testing.T) {
	recs := linearRecords(rangeSLs(1, 100, 1), func(int) int { return 2 }, 3, 10)
	sel, err := SelectKMeans(recs, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Points) == 0 || len(sel.Points) > 8 {
		t.Fatalf("points = %d, want 1..8", len(sel.Points))
	}
	if got := TotalWeight(sel.Points); math.Abs(got-200) > 1e-9 {
		t.Errorf("total weight = %v, want 200", got)
	}
	// On a linear stat, a few clusters should already project well.
	if sel.ErrorPct > 5 {
		t.Errorf("self error = %v%%, want small on linear stats", sel.ErrorPct)
	}
}

func TestSelectKMeansKClamped(t *testing.T) {
	recs := linearRecords([]int{10, 20, 30}, func(int) int { return 1 }, 1, 0)
	sel, err := SelectKMeans(recs, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Points) > 3 {
		t.Errorf("points = %d, want <= unique SLs", len(sel.Points))
	}
	// k = unique count means each SL its own cluster: exact projection.
	if sel.ErrorPct > 1e-9 {
		t.Errorf("exhaustive clustering should be exact, err = %v", sel.ErrorPct)
	}
}

func TestSelectKMeansErrors(t *testing.T) {
	if _, err := SelectKMeans(nil, 3, 1); err == nil {
		t.Error("empty records should error")
	}
	recs := linearRecords([]int{1, 2}, func(int) int { return 1 }, 1, 0)
	if _, err := SelectKMeans(recs, 0, 1); err == nil {
		t.Error("k=0 should error")
	}
}

func TestSelectKMeansComparableToBinning(t *testing.T) {
	// Section VII-C: on realistic near-linear stats, binning performs
	// as well as k-means — neither should be drastically worse.
	recs := linearRecords(rangeSLs(1, 300, 1), func(sl int) int { return 300 - sl + 1 }, 2, 50)
	binned, err := Select(recs, Options{ErrorThresholdPct: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	k := binned.Bins
	km, err := SelectKMeans(recs, k, 1)
	if err != nil {
		t.Fatal(err)
	}
	if km.ErrorPct > 10*binned.ErrorPct+1 {
		t.Errorf("k-means err %v%% drastically worse than binning %v%%", km.ErrorPct, binned.ErrorPct)
	}
	if binned.ErrorPct > 10*km.ErrorPct+1 {
		t.Errorf("binning err %v%% drastically worse than k-means %v%%", binned.ErrorPct, km.ErrorPct)
	}
}

func TestSelectKMeansDeterministicPerSeed(t *testing.T) {
	recs := linearRecords(rangeSLs(1, 100, 1), func(sl int) int { return sl%5 + 1 }, 1, 0)
	a, err := SelectKMeans(recs, 6, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SelectKMeans(recs, 6, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Points) != len(b.Points) {
		t.Fatal("same seed, different point counts")
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Errorf("point %d differs across identical runs", i)
		}
	}
}
