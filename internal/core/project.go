package core

import (
	"errors"
	"fmt"
)

// Projection helpers: once SeqPoints are identified (on the calibration
// configuration), only the SeqPoint iterations are executed on any other
// system configuration; these functions turn those few measurements into
// whole-run projections (Section V-C, Equation 1, and the normalized
// form for ratio statistics).

// ErrStatMissing is returned when a projection lacks a measurement for
// one of the SeqPoints.
var ErrStatMissing = errors.New("core: missing per-SeqPoint statistic")

// ProjectTotal projects an additive whole-epoch statistic (e.g. total
// training time) on a target configuration, given the statistic measured
// for each SeqPoint's iteration on that configuration, keyed by SL.
func ProjectTotal(points []SeqPoint, statBySL map[int]float64) (float64, error) {
	var total float64
	for _, p := range points {
		s, ok := statBySL[p.SeqLen]
		if !ok {
			return 0, fmt.Errorf("%w: SL %d", ErrStatMissing, p.SeqLen)
		}
		total += p.Weight * s
	}
	return total, nil
}

// ProjectMean projects a ratio statistic (throughput, IPC): the weighted
// sum normalized by the total weight, as the paper specifies for
// Equation 1.
func ProjectMean(points []SeqPoint, statBySL map[int]float64) (float64, error) {
	var num, den float64
	for _, p := range points {
		s, ok := statBySL[p.SeqLen]
		if !ok {
			return 0, fmt.Errorf("%w: SL %d", ErrStatMissing, p.SeqLen)
		}
		num += p.Weight * s
		den += p.Weight
	}
	if den == 0 {
		return 0, errors.New("core: zero total weight")
	}
	return num / den, nil
}

// TotalWeight returns the summed weight of the selection (the epoch's
// iteration count the SeqPoints stand for).
func TotalWeight(points []SeqPoint) float64 {
	var w float64
	for _, p := range points {
		w += p.Weight
	}
	return w
}

// SeqLens returns the sequence lengths to profile, in ascending order.
func SeqLens(points []SeqPoint) []int {
	out := make([]int, len(points))
	for i, p := range points {
		out[i] = p.SeqLen
	}
	return out
}

// ProjectThroughput projects training throughput (samples/s) on a target
// configuration from per-SeqPoint iteration runtimes (microseconds) on
// that configuration: total samples divided by projected total time.
func ProjectThroughput(points []SeqPoint, iterTimeUSBySL map[int]float64, batch int) (float64, error) {
	if batch <= 0 {
		return 0, fmt.Errorf("core: batch must be positive, got %d", batch)
	}
	totalUS, err := ProjectTotal(points, iterTimeUSBySL)
	if err != nil {
		return 0, err
	}
	if totalUS <= 0 {
		return 0, errors.New("core: projected non-positive total time")
	}
	samples := TotalWeight(points) * float64(batch)
	return samples / (totalUS / 1e6), nil
}

// UpliftPct returns the percent throughput uplift going from base to
// target (the paper's speedup metric for Figs 13-16).
func UpliftPct(targetThroughput, baseThroughput float64) (float64, error) {
	if baseThroughput <= 0 {
		return 0, errors.New("core: base throughput must be positive")
	}
	return (targetThroughput/baseThroughput - 1) * 100, nil
}
