package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func twoPoints() []SeqPoint {
	return []SeqPoint{
		{SeqLen: 10, Weight: 3, Stat: 100},
		{SeqLen: 20, Weight: 1, Stat: 200},
	}
}

func TestProjectTotal(t *testing.T) {
	got, err := ProjectTotal(twoPoints(), map[int]float64{10: 50, 20: 100})
	if err != nil {
		t.Fatal(err)
	}
	if got != 3*50+1*100 {
		t.Errorf("ProjectTotal = %v, want 250", got)
	}
}

func TestProjectTotalMissingStat(t *testing.T) {
	_, err := ProjectTotal(twoPoints(), map[int]float64{10: 50})
	if !errors.Is(err, ErrStatMissing) {
		t.Errorf("error = %v, want ErrStatMissing", err)
	}
}

func TestProjectMeanNormalizes(t *testing.T) {
	// Ratio statistics are normalized by total weight (paper: "to
	// predict statistics that are ratios ... normalized by the sum of
	// all weights").
	got, err := ProjectMean(twoPoints(), map[int]float64{10: 40, 20: 80})
	if err != nil {
		t.Fatal(err)
	}
	want := (3.0*40 + 1.0*80) / 4.0
	if got != want {
		t.Errorf("ProjectMean = %v, want %v", got, want)
	}
	if _, err := ProjectMean(nil, nil); err == nil {
		t.Error("zero weight should error")
	}
}

func TestTotalWeightAndSeqLens(t *testing.T) {
	pts := twoPoints()
	if TotalWeight(pts) != 4 {
		t.Errorf("TotalWeight = %v", TotalWeight(pts))
	}
	sls := SeqLens(pts)
	if len(sls) != 2 || sls[0] != 10 || sls[1] != 20 {
		t.Errorf("SeqLens = %v", sls)
	}
}

func TestProjectThroughput(t *testing.T) {
	// 4 iterations x batch 64 = 256 samples over 250 us.
	got, err := ProjectThroughput(twoPoints(), map[int]float64{10: 50, 20: 100}, 64)
	if err != nil {
		t.Fatal(err)
	}
	want := 256.0 / (250.0 / 1e6)
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("ProjectThroughput = %v, want %v", got, want)
	}
}

func TestProjectThroughputErrors(t *testing.T) {
	if _, err := ProjectThroughput(twoPoints(), map[int]float64{10: 1, 20: 1}, 0); err == nil {
		t.Error("non-positive batch should error")
	}
	if _, err := ProjectThroughput(twoPoints(), map[int]float64{10: 0, 20: 0}, 64); err == nil {
		t.Error("zero projected time should error")
	}
	if _, err := ProjectThroughput(twoPoints(), map[int]float64{10: 1}, 64); !errors.Is(err, ErrStatMissing) {
		t.Error("missing stat should report ErrStatMissing")
	}
}

func TestUpliftPct(t *testing.T) {
	got, err := UpliftPct(150, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got != 50 {
		t.Errorf("UpliftPct = %v, want 50", got)
	}
	if _, err := UpliftPct(1, 0); err == nil {
		t.Error("zero base should error")
	}
}

func TestQuickProjectionExactWhenAllSLsSelected(t *testing.T) {
	// If every unique SL is its own SeqPoint, projection on any config
	// reproduces that config's epoch total exactly — the architecture-
	// independence property the paper leans on.
	f := func(seed int64) bool {
		recs := []SLRecord{}
		statCal := map[int]float64{}
		statTgt := map[int]float64{}
		s := seed
		next := func() float64 {
			s = s*6364136223846793005 + 1442695040888963407
			return float64(uint64(s)>>11%100000)/100 + 1
		}
		for sl := 1; sl <= 12; sl++ {
			freq := int(uint64(seed+int64(sl))%5) + 1
			cal := next()
			recs = append(recs, SLRecord{SeqLen: sl, Freq: freq, Stat: cal})
			statCal[sl] = cal
			statTgt[sl] = next()
		}
		sel, err := Select(recs, Options{MaxUniqueNoBinning: 12})
		if err != nil {
			return false
		}
		proj, err := ProjectTotal(sel.Points, statTgt)
		if err != nil {
			return false
		}
		var want float64
		for _, r := range recs {
			want += float64(r.Freq) * statTgt[r.SeqLen]
		}
		return math.Abs(proj-want) <= 1e-9*math.Abs(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestQuickThroughputUpliftConsistency(t *testing.T) {
	// Scaling every iteration time by a constant c scales projected
	// throughput by 1/c, so the projected uplift equals the true one.
	f := func(c8 uint8) bool {
		c := float64(c8%50+150) / 100 // speed factor in [1.5, 2)
		base := map[int]float64{10: 100, 20: 220}
		slow := map[int]float64{10: 100 * c, 20: 220 * c}
		pts := twoPoints()
		thrBase, err1 := ProjectThroughput(pts, base, 64)
		thrSlow, err2 := ProjectThroughput(pts, slow, 64)
		if err1 != nil || err2 != nil {
			return false
		}
		up, err := UpliftPct(thrBase, thrSlow)
		if err != nil {
			return false
		}
		want := (c - 1) * 100
		return math.Abs(up-want) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
