package core

import (
	"fmt"

	"seqpoint/internal/cluster"
)

// SelectKMeansProfiles is the multi-dimensional variant of the Section
// VII-C ablation: instead of clustering scalar runtimes, it clusters
// full execution-profile vectors (e.g. [runtime, VALU instructions,
// DRAM reads, write stalls] per SL), normalizing each dimension to its
// maximum so no single counter dominates the distance. profiles maps
// each record's SL to its vector; all vectors must share one dimension.
//
// The paper reports that runtime alone is "a good enough proxy" for the
// full profile; this function is what that claim is verified against.
func SelectKMeansProfiles(records []SLRecord, profiles map[int][]float64, k int, seed int64) (Selection, error) {
	recs, err := normalizeRecords(records)
	if err != nil {
		return Selection{}, err
	}
	if len(recs) == 0 {
		return Selection{}, ErrNoRecords
	}
	if k > len(recs) {
		k = len(recs)
	}
	if k < 1 {
		return Selection{}, fmt.Errorf("core: k-means needs k >= 1, got %d", k)
	}

	// Assemble and validate the vectors in record order.
	var dim int
	vecs := make([][]float64, len(recs))
	for i, r := range recs {
		v, ok := profiles[r.SeqLen]
		if !ok {
			return Selection{}, fmt.Errorf("core: no profile vector for SL %d", r.SeqLen)
		}
		if i == 0 {
			dim = len(v)
			if dim == 0 {
				return Selection{}, fmt.Errorf("core: empty profile vector for SL %d", r.SeqLen)
			}
		} else if len(v) != dim {
			return Selection{}, fmt.Errorf("core: profile vector for SL %d has dim %d, want %d",
				r.SeqLen, len(v), dim)
		}
		vecs[i] = append([]float64(nil), v...)
	}

	// Per-dimension max normalization.
	for d := 0; d < dim; d++ {
		var max float64
		for _, v := range vecs {
			if v[d] > max {
				max = v[d]
			}
		}
		if max == 0 {
			continue
		}
		for _, v := range vecs {
			v[d] /= max
		}
	}

	res, err := cluster.KMeans(vecs, k, seed)
	if err != nil {
		return Selection{}, err
	}
	reps := res.NearestToCentroid(vecs)

	weights := make([]float64, k)
	for i, r := range recs {
		weights[res.Assign[i]] += float64(r.Freq)
	}

	var points []SeqPoint
	for c, repIdx := range reps {
		if repIdx < 0 {
			continue
		}
		r := recs[repIdx]
		points = append(points, SeqPoint{
			SeqLen: r.SeqLen,
			Weight: weights[c],
			Stat:   r.Stat,
			Bin:    c,
		})
	}

	actual := epochTotal(recs)
	proj := projectTotal(points)
	return Selection{
		Points:        points,
		Bins:          k,
		Binned:        true,
		ProjectedStat: proj,
		ActualStat:    actual,
		ErrorPct:      pctErr(proj, actual),
	}, nil
}

// SelectKMeans is the Section VII-C ablation: instead of binning
// contiguous SL ranges, cluster the per-SL statistics with k-means and
// take the member nearest each centroid as the representative, weighted
// by the cluster's iteration population. The paper reports the simple
// binning performs as well as this; the ablation benchmark verifies the
// same holds here.
func SelectKMeans(records []SLRecord, k int, seed int64) (Selection, error) {
	recs, err := normalizeRecords(records)
	if err != nil {
		return Selection{}, err
	}
	if len(recs) == 0 {
		return Selection{}, ErrNoRecords
	}
	if k > len(recs) {
		k = len(recs)
	}
	if k < 1 {
		return Selection{}, fmt.Errorf("core: k-means needs k >= 1, got %d", k)
	}

	values := make([]float64, len(recs))
	for i, r := range recs {
		values[i] = r.Stat
	}
	res, err := cluster.KMeans1D(values, k, seed)
	if err != nil {
		return Selection{}, err
	}

	points1d := make([][]float64, len(values))
	for i, v := range values {
		points1d[i] = []float64{v}
	}
	reps := res.NearestToCentroid(points1d)

	// Weight per cluster: total iteration frequency of its members.
	weights := make([]float64, k)
	for i, r := range recs {
		weights[res.Assign[i]] += float64(r.Freq)
	}

	var points []SeqPoint
	for c, repIdx := range reps {
		if repIdx < 0 {
			continue
		}
		r := recs[repIdx]
		points = append(points, SeqPoint{
			SeqLen: r.SeqLen,
			Weight: weights[c],
			Stat:   r.Stat,
			Bin:    c,
		})
	}

	actual := epochTotal(recs)
	proj := projectTotal(points)
	return Selection{
		Points:        points,
		Bins:          k,
		Binned:        true,
		ProjectedStat: proj,
		ActualStat:    actual,
		ErrorPct:      pctErr(proj, actual),
	}, nil
}
