package core

import (
	"math"
	"testing"
)

// profileVectors derives a 3-dim profile per record: runtime plus two
// correlated counters, the realistic case (counters track runtime).
func profileVectors(recs []SLRecord) map[int][]float64 {
	out := make(map[int][]float64, len(recs))
	for _, r := range recs {
		out[r.SeqLen] = []float64{r.Stat, r.Stat * 80, r.Stat * 0.3}
	}
	return out
}

func TestSelectKMeansProfilesBasic(t *testing.T) {
	recs := linearRecords(rangeSLs(1, 120, 1), func(int) int { return 2 }, 2, 10)
	sel, err := SelectKMeansProfiles(recs, profileVectors(recs), 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Points) == 0 || len(sel.Points) > 8 {
		t.Fatalf("points = %d", len(sel.Points))
	}
	if got := TotalWeight(sel.Points); math.Abs(got-240) > 1e-9 {
		t.Errorf("total weight = %v, want 240", got)
	}
	if sel.ErrorPct > 5 {
		t.Errorf("self error = %v%% on linear profiles", sel.ErrorPct)
	}
}

func TestSelectKMeansProfilesMatchesScalarOnCorrelated(t *testing.T) {
	// When every counter is proportional to runtime, profile-vector
	// clustering carries no extra information: accuracy should match
	// scalar k-means closely — the paper's justification for using
	// runtime alone.
	recs := linearRecords(rangeSLs(1, 200, 1), func(sl int) int { return 200 - sl + 1 }, 3, 40)
	scalar, err := SelectKMeans(recs, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	vector, err := SelectKMeansProfiles(recs, profileVectors(recs), 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	if vector.ErrorPct > 10*scalar.ErrorPct+1 {
		t.Errorf("vector k-means err %v%% vs scalar %v%%: correlated counters should not hurt",
			vector.ErrorPct, scalar.ErrorPct)
	}
}

func TestSelectKMeansProfilesValidation(t *testing.T) {
	recs := linearRecords([]int{10, 20, 30}, func(int) int { return 1 }, 1, 0)

	if _, err := SelectKMeansProfiles(nil, nil, 2, 1); err == nil {
		t.Error("empty records should error")
	}
	if _, err := SelectKMeansProfiles(recs, profileVectors(recs), 0, 1); err == nil {
		t.Error("k=0 should error")
	}
	// Missing vector.
	vecs := profileVectors(recs)
	delete(vecs, 20)
	if _, err := SelectKMeansProfiles(recs, vecs, 2, 1); err == nil {
		t.Error("missing vector should error")
	}
	// Dimension mismatch.
	vecs = profileVectors(recs)
	vecs[20] = []float64{1}
	if _, err := SelectKMeansProfiles(recs, vecs, 2, 1); err == nil {
		t.Error("dimension mismatch should error")
	}
	// Empty vector.
	vecs = profileVectors(recs)
	vecs[10] = nil
	if _, err := SelectKMeansProfiles(recs, vecs, 2, 1); err == nil {
		t.Error("empty vector should error")
	}
}

func TestSelectKMeansProfilesNormalizationMatters(t *testing.T) {
	// One huge-magnitude dimension must not drown the others: with
	// per-dimension max normalization, clustering on [runtime, bytes]
	// where bytes is 1e9x larger still groups by shape, so accuracy
	// stays in the same regime as scalar clustering.
	recs := linearRecords(rangeSLs(1, 100, 1), func(int) int { return 1 }, 5, 20)
	vecs := make(map[int][]float64, len(recs))
	for _, r := range recs {
		vecs[r.SeqLen] = []float64{r.Stat, r.Stat * 1e9}
	}
	sel, err := SelectKMeansProfiles(recs, vecs, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sel.ErrorPct > 5 {
		t.Errorf("error %v%%: normalization should keep mixed-scale vectors usable", sel.ErrorPct)
	}
}

func TestSelectKMeansProfilesZeroDimension(t *testing.T) {
	// An all-zero counter dimension (e.g. no stalls anywhere) must not
	// divide by zero.
	recs := linearRecords(rangeSLs(1, 50, 1), func(int) int { return 1 }, 1, 0)
	vecs := make(map[int][]float64, len(recs))
	for _, r := range recs {
		vecs[r.SeqLen] = []float64{r.Stat, 0}
	}
	if _, err := SelectKMeansProfiles(recs, vecs, 5, 1); err != nil {
		t.Fatalf("all-zero dimension should be tolerated: %v", err)
	}
}
