package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// linearRecords builds records whose stat is a*SL + b — the near-linear
// regime the paper observes (Fig. 9).
func linearRecords(sls []int, freq func(sl int) int, a, b float64) []SLRecord {
	recs := make([]SLRecord, len(sls))
	for i, sl := range sls {
		recs[i] = SLRecord{SeqLen: sl, Freq: freq(sl), Stat: a*float64(sl) + b}
	}
	return recs
}

func rangeSLs(lo, hi, step int) []int {
	var out []int
	for sl := lo; sl <= hi; sl += step {
		out = append(out, sl)
	}
	return out
}

func TestSelectEmpty(t *testing.T) {
	if _, err := Select(nil, Options{}); !errors.Is(err, ErrNoRecords) {
		t.Errorf("error = %v, want ErrNoRecords", err)
	}
}

func TestSelectFewUniqueTakesAll(t *testing.T) {
	// n-threshold path (Fig. 10 step: unique <= n => all SLs).
	recs := linearRecords([]int{10, 20, 30}, func(int) int { return 5 }, 2, 1)
	sel, err := Select(recs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Binned {
		t.Error("3 unique SLs should skip binning")
	}
	if len(sel.Points) != 3 {
		t.Fatalf("points = %d, want 3", len(sel.Points))
	}
	for i, p := range sel.Points {
		if p.Weight != 5 {
			t.Errorf("point %d weight = %v, want 5", i, p.Weight)
		}
	}
	if sel.ErrorPct != 0 {
		t.Errorf("taking all SLs projects exactly; error = %v", sel.ErrorPct)
	}
}

func TestSelectRespectsCustomN(t *testing.T) {
	recs := linearRecords(rangeSLs(10, 100, 10), func(int) int { return 1 }, 1, 0)
	sel, err := Select(recs, Options{MaxUniqueNoBinning: 10})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Binned {
		t.Error("10 unique SLs with n=10 should take all")
	}
	sel2, err := Select(recs, Options{MaxUniqueNoBinning: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !sel2.Binned {
		t.Error("10 unique SLs with n=5 should bin")
	}
}

func TestSelectBinnedLinearIsAccurate(t *testing.T) {
	// With stat linear in SL and uniform frequencies, binning with the
	// nearest-to-average representative is near-exact.
	recs := linearRecords(rangeSLs(1, 200, 1), func(int) int { return 3 }, 5, 100)
	sel, err := Select(recs, Options{ErrorThresholdPct: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if !sel.Binned {
		t.Error("200 unique SLs should bin")
	}
	if sel.ErrorPct > 1.0 {
		t.Errorf("self error = %v%%, want <= threshold 1%%", sel.ErrorPct)
	}
	if len(sel.Points) > 20 {
		t.Errorf("selected %d points; near-linear stats should need few bins", len(sel.Points))
	}
}

func TestSelectWeightsCoverEpoch(t *testing.T) {
	recs := linearRecords(rangeSLs(1, 150, 1), func(sl int) int { return sl%7 + 1 }, 2, 10)
	var totalIters float64
	for _, r := range recs {
		totalIters += float64(r.Freq)
	}
	sel, err := Select(recs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := TotalWeight(sel.Points); math.Abs(got-totalIters) > 1e-9 {
		t.Errorf("total weight = %v, want epoch iteration count %v", got, totalIters)
	}
}

func TestSelectAutoKGrowsUntilThreshold(t *testing.T) {
	// A staircase stat breaks linearity, forcing k past the initial 5.
	sls := rangeSLs(1, 100, 1)
	recs := make([]SLRecord, len(sls))
	for i, sl := range sls {
		stat := float64(sl)
		if sl%10 == 0 {
			stat *= 4 // spikes
		}
		recs[i] = SLRecord{SeqLen: sl, Freq: 1, Stat: stat}
	}
	loose, err := Select(recs, Options{ErrorThresholdPct: 20})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := Select(recs, Options{ErrorThresholdPct: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if tight.Bins <= loose.Bins {
		t.Errorf("tighter threshold should need more bins: %d vs %d", tight.Bins, loose.Bins)
	}
	if tight.ErrorPct > 0.01 && tight.Bins < len(recs) {
		t.Errorf("auto-k stopped early: err=%v bins=%d", tight.ErrorPct, tight.Bins)
	}
}

func TestSelectMaxBinsExactProjection(t *testing.T) {
	// With MaxBins = unique SLs, each SL can be its own bin: exact.
	recs := linearRecords(rangeSLs(1, 50, 1), func(int) int { return 2 }, 3, 7)
	sel, err := Select(recs, Options{ErrorThresholdPct: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if sel.ErrorPct > 1e-9 {
		t.Errorf("exhaustive binning should be exact, err = %v", sel.ErrorPct)
	}
}

func TestSelectMaxBinsCapReturnsBest(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sls := rangeSLs(1, 100, 1)
	recs := make([]SLRecord, len(sls))
	for i, sl := range sls {
		recs[i] = SLRecord{SeqLen: sl, Freq: 1, Stat: rng.Float64() * 1000}
	}
	sel, err := Select(recs, Options{ErrorThresholdPct: 1e-9, MaxBins: 8})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Bins > 8 {
		t.Errorf("bins = %d exceeds MaxBins 8", sel.Bins)
	}
}

func TestSelectMergesDuplicateRecords(t *testing.T) {
	recs := []SLRecord{
		{SeqLen: 10, Freq: 2, Stat: 5},
		{SeqLen: 10, Freq: 3, Stat: 5},
		{SeqLen: 20, Freq: 1, Stat: 9},
	}
	sel, err := Select(recs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Points) != 2 {
		t.Fatalf("points = %d, want 2 (duplicates merged)", len(sel.Points))
	}
	if sel.Points[0].Weight != 5 {
		t.Errorf("merged weight = %v, want 5", sel.Points[0].Weight)
	}
}

func TestSelectRejectsBadRecords(t *testing.T) {
	bad := [][]SLRecord{
		{{SeqLen: 0, Freq: 1, Stat: 1}},
		{{SeqLen: -5, Freq: 1, Stat: 1}},
		{{SeqLen: 1, Freq: 0, Stat: 1}},
		{{SeqLen: 1, Freq: 1, Stat: -1}},
		{{SeqLen: 1, Freq: 1, Stat: math.NaN()}},
		{{SeqLen: 1, Freq: 1, Stat: math.Inf(1)}},
		{{SeqLen: 1, Freq: 1, Stat: 2}, {SeqLen: 1, Freq: 1, Stat: 3}}, // conflicting
	}
	for i, recs := range bad {
		if _, err := Select(recs, Options{}); err == nil {
			t.Errorf("case %d should be rejected", i)
		}
	}
}

func TestSelectPointsSortedAndInRange(t *testing.T) {
	recs := linearRecords(rangeSLs(5, 500, 5), func(sl int) int { return sl%3*10%7*2%5*3%11 + 1 }, 1.5, 20)
	sel, err := Select(recs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(sel.Points); i++ {
		if sel.Points[i].SeqLen <= sel.Points[i-1].SeqLen {
			t.Error("points should be ordered by SL")
		}
	}
	for _, p := range sel.Points {
		if p.SeqLen < 5 || p.SeqLen > 500 {
			t.Errorf("point SL %d outside record range", p.SeqLen)
		}
	}
}

func TestSelectRepresentativeIsBinMember(t *testing.T) {
	// Every SeqPoint's stat must equal the logged stat of its SL: the
	// representative is a real iteration, not an average.
	recs := linearRecords(rangeSLs(1, 300, 2), func(int) int { return 1 }, 2, 5)
	statBySL := make(map[int]float64)
	for _, r := range recs {
		statBySL[r.SeqLen] = r.Stat
	}
	sel, err := Select(recs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range sel.Points {
		want, ok := statBySL[p.SeqLen]
		if !ok {
			t.Errorf("SeqPoint SL %d not in the log", p.SeqLen)
			continue
		}
		if p.Stat != want {
			t.Errorf("SeqPoint SL %d stat %v != logged %v", p.SeqLen, p.Stat, want)
		}
	}
}

func TestQuickSelectInvariants(t *testing.T) {
	// For arbitrary valid logs: selection succeeds, weights cover the
	// epoch, points come from the log, and error is finite.
	f := func(seed int64, n8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(n8)%150 + 1
		seen := make(map[int]bool)
		var recs []SLRecord
		for len(recs) < n {
			sl := rng.Intn(500) + 1
			if seen[sl] {
				continue
			}
			seen[sl] = true
			recs = append(recs, SLRecord{
				SeqLen: sl,
				Freq:   rng.Intn(20) + 1,
				Stat:   rng.Float64()*1e6 + 1,
			})
		}
		var iters float64
		for _, r := range recs {
			iters += float64(r.Freq)
		}
		sel, err := Select(recs, Options{})
		if err != nil {
			return false
		}
		if math.Abs(TotalWeight(sel.Points)-iters) > 1e-6*iters {
			return false
		}
		statBySL := make(map[int]float64)
		for _, r := range recs {
			statBySL[r.SeqLen] = r.Stat
		}
		for _, p := range sel.Points {
			if statBySL[p.SeqLen] != p.Stat {
				return false
			}
		}
		return !math.IsNaN(sel.ErrorPct) && !math.IsInf(sel.ErrorPct, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestQuickSelectErrorUnderThresholdOrExhaustive(t *testing.T) {
	// The auto-k loop guarantee: either the error threshold is met or
	// binning has gone exhaustive (every SL its own bin => exact).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(80) + 20
		recs := make([]SLRecord, 0, n)
		seen := map[int]bool{}
		for len(recs) < n {
			sl := rng.Intn(400) + 1
			if seen[sl] {
				continue
			}
			seen[sl] = true
			recs = append(recs, SLRecord{SeqLen: sl, Freq: rng.Intn(9) + 1, Stat: rng.Float64()*100 + 1})
		}
		sel, err := Select(recs, Options{ErrorThresholdPct: 2})
		if err != nil {
			return false
		}
		span := 400 // SLs drawn from [1,400]
		return sel.ErrorPct <= 2 || sel.Bins >= span
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults(100)
	if o.MaxUniqueNoBinning != DefaultMaxUniqueNoBinning {
		t.Errorf("n = %d", o.MaxUniqueNoBinning)
	}
	if o.InitialBins != DefaultInitialBins {
		t.Errorf("k = %d", o.InitialBins)
	}
	if o.ErrorThresholdPct != DefaultErrorThresholdPct {
		t.Errorf("e = %v", o.ErrorThresholdPct)
	}
	if o.MaxBins != 100 {
		t.Errorf("MaxBins = %d, want the SL span", o.MaxBins)
	}
	// MaxBins larger than the unique count clamps.
	o2 := Options{MaxBins: 1000}.withDefaults(10)
	if o2.MaxBins != 10 {
		t.Errorf("MaxBins = %d, want clamp to 10", o2.MaxBins)
	}
}
