package core

import (
	"fmt"
	"sort"
)

// Baselines the paper evaluates SeqPoint against (Section VI-C).
//
// The single-iteration strategies (frequent, median, worst) follow prior
// work's use of one iteration as a proxy for the whole run, upgraded
// with the SL insight: each picks one sequence length and projects the
// epoch as that iteration's statistic times the epoch's iteration count.
// They are expressed as a one-point Selection so the projection helpers
// apply uniformly.
//
// The `prior` strategy reproduces the sampling approach of Zhu et al.
// (IISWC'18): profile a fixed number of contiguous iterations after a
// warm-up period, in epoch execution order, and scale up the average.

// singlePoint wraps one SL as a selection covering all epoch iterations.
func singlePoint(recs []SLRecord, sl int) Selection {
	var totalIters float64
	var stat float64
	for _, r := range recs {
		totalIters += float64(r.Freq)
		if r.SeqLen == sl {
			stat = r.Stat
		}
	}
	points := []SeqPoint{{SeqLen: sl, Weight: totalIters, Stat: stat}}
	actual := epochTotal(recs)
	proj := projectTotal(points)
	return Selection{
		Points:        points,
		ProjectedStat: proj,
		ActualStat:    actual,
		ErrorPct:      pctErr(proj, actual),
	}
}

// Frequent selects the most frequently occurring sequence length — the
// iteration most likely picked by random selection.
func Frequent(records []SLRecord) (Selection, error) {
	recs, err := normalizeRecords(records)
	if err != nil {
		return Selection{}, err
	}
	if len(recs) == 0 {
		return Selection{}, ErrNoRecords
	}
	best := recs[0]
	for _, r := range recs[1:] {
		if r.Freq > best.Freq {
			best = r
		}
	}
	return singlePoint(recs, best.SeqLen), nil
}

// Median selects the iteration with the (frequency-weighted) median
// sequence length.
func Median(records []SLRecord) (Selection, error) {
	recs, err := normalizeRecords(records)
	if err != nil {
		return Selection{}, err
	}
	if len(recs) == 0 {
		return Selection{}, ErrNoRecords
	}
	var total int
	for _, r := range recs {
		total += r.Freq
	}
	mid := total / 2
	cum := 0
	for _, r := range recs {
		cum += r.Freq
		if cum > mid {
			return singlePoint(recs, r.SeqLen), nil
		}
	}
	return singlePoint(recs, recs[len(recs)-1].SeqLen), nil
}

// Worst selects the sequence length whose single-iteration projection
// has the largest error — the paper's bound on how badly an arbitrary
// single-iteration choice can go.
func Worst(records []SLRecord) (Selection, error) {
	recs, err := normalizeRecords(records)
	if err != nil {
		return Selection{}, err
	}
	if len(recs) == 0 {
		return Selection{}, ErrNoRecords
	}
	worstSL := recs[0].SeqLen
	worstErr := -1.0
	for _, r := range recs {
		if e := singlePoint(recs, r.SeqLen).ErrorPct; e > worstErr {
			worstErr = e
			worstSL = r.SeqLen
		}
	}
	return singlePoint(recs, worstSL), nil
}

// DefaultPriorSampleCount and DefaultPriorWarmup parameterize the
// `prior` baseline as in the paper: 50 iterations after a fixed warm-up.
const (
	DefaultPriorSampleCount = 50
	DefaultPriorWarmup      = 10
)

// Prior samples `count` contiguous iterations starting after `warmup`
// iterations of the epoch, in execution order, and represents the epoch
// by scaling their SL mix up to the full iteration count. epochSLs is
// the epoch's iteration SL sequence in execution order; statBySL gives
// the per-iteration statistic on the calibration config.
//
// Because the sample is a contiguous chunk of the execution order, its
// representativeness depends on how the data pipeline ordered the epoch
// — the effect the paper demonstrates with DS2's sorted first epoch.
func Prior(epochSLs []int, statBySL map[int]float64, warmup, count int) (Selection, error) {
	if warmup < 0 || count <= 0 {
		return Selection{}, fmt.Errorf("core: invalid prior sampling warmup=%d count=%d", warmup, count)
	}
	if warmup+count > len(epochSLs) {
		return Selection{}, fmt.Errorf("core: prior sample [%d,%d) exceeds epoch length %d",
			warmup, warmup+count, len(epochSLs))
	}
	sample := epochSLs[warmup : warmup+count]

	// Scale the sampled SL mix up to the whole epoch: each sampled
	// iteration stands for totalIters/count iterations.
	scale := float64(len(epochSLs)) / float64(count)
	freq := make(map[int]int)
	for _, sl := range sample {
		freq[sl]++
	}
	sls := make([]int, 0, len(freq))
	for sl := range freq {
		sls = append(sls, sl)
	}
	sort.Ints(sls)

	points := make([]SeqPoint, 0, len(sls))
	for _, sl := range sls {
		stat, ok := statBySL[sl]
		if !ok {
			return Selection{}, fmt.Errorf("%w: SL %d", ErrStatMissing, sl)
		}
		points = append(points, SeqPoint{
			SeqLen: sl,
			Weight: float64(freq[sl]) * scale,
			Stat:   stat,
		})
	}

	var actual float64
	for _, sl := range epochSLs {
		stat, ok := statBySL[sl]
		if !ok {
			return Selection{}, fmt.Errorf("%w: SL %d", ErrStatMissing, sl)
		}
		actual += stat
	}
	proj := projectTotal(points)
	return Selection{
		Points:        points,
		ProjectedStat: proj,
		ActualStat:    actual,
		ErrorPct:      pctErr(proj, actual),
	}, nil
}

// MethodName identifies a selection strategy in experiment reports.
type MethodName string

// The five strategies of Figs 11-16.
const (
	MethodWorst    MethodName = "worst"
	MethodFrequent MethodName = "frequent"
	MethodMedian   MethodName = "median"
	MethodPrior    MethodName = "prior"
	MethodSeqPoint MethodName = "seqpoint"
)

// AllMethods lists the strategies in the paper's plotting order.
func AllMethods() []MethodName {
	return []MethodName{MethodWorst, MethodFrequent, MethodMedian, MethodPrior, MethodSeqPoint}
}
