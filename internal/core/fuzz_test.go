package core

import (
	"math"
	"testing"
)

// FuzzSelect drives the SeqPoint selection with fuzzer-generated epoch
// logs: for any log the parser accepts, the selection must uphold its
// invariants — weights cover the epoch, representatives come from the
// log, and the projected statistic is finite.
func FuzzSelect(f *testing.F) {
	f.Add(int64(1), uint8(30), uint8(10), 1.0)
	f.Add(int64(2), uint8(200), uint8(3), 0.1)
	f.Add(int64(3), uint8(5), uint8(50), 5.0)

	f.Fuzz(func(t *testing.T, seed int64, n8, spread uint8, threshold float64) {
		n := int(n8)%256 + 1
		if threshold <= 0 || math.IsNaN(threshold) || math.IsInf(threshold, 0) {
			threshold = 1
		}

		// Deterministic pseudo-random log from the fuzz inputs.
		state := uint64(seed)*2862933555777941757 + 3037000493
		next := func() uint64 {
			state = state*2862933555777941757 + 3037000493
			return state
		}
		seen := make(map[int]bool)
		var recs []SLRecord
		for len(recs) < n {
			sl := int(next()%1000) + 1
			if seen[sl] {
				continue
			}
			seen[sl] = true
			stat := float64(next()%1_000_000)/100 + float64(sl)*float64(spread)
			recs = append(recs, SLRecord{
				SeqLen: sl,
				Freq:   int(next()%50) + 1,
				Stat:   stat,
			})
		}

		sel, err := Select(recs, Options{ErrorThresholdPct: threshold})
		if err != nil {
			t.Fatalf("valid log rejected: %v", err)
		}

		var iters float64
		statBySL := make(map[int]float64, len(recs))
		for _, r := range recs {
			iters += float64(r.Freq)
			statBySL[r.SeqLen] = r.Stat
		}
		if got := TotalWeight(sel.Points); math.Abs(got-iters) > 1e-6*iters {
			t.Fatalf("weights %v != epoch iterations %v", got, iters)
		}
		for _, p := range sel.Points {
			want, ok := statBySL[p.SeqLen]
			if !ok {
				t.Fatalf("representative SL %d not in the log", p.SeqLen)
			}
			if p.Stat != want {
				t.Fatalf("representative stat %v != logged %v", p.Stat, want)
			}
			if p.Weight <= 0 {
				t.Fatalf("non-positive weight %v", p.Weight)
			}
		}
		if math.IsNaN(sel.ProjectedStat) || math.IsInf(sel.ProjectedStat, 0) {
			t.Fatalf("projected stat %v", sel.ProjectedStat)
		}
		// The auto-k guarantee: threshold met or binning exhausted the
		// SL span (at which point every SL is isolated and projection
		// is exact).
		lo, hi := recs[0].SeqLen, recs[0].SeqLen
		for _, r := range recs {
			if r.SeqLen < lo {
				lo = r.SeqLen
			}
			if r.SeqLen > hi {
				hi = r.SeqLen
			}
		}
		if sel.Binned && sel.ErrorPct > threshold && sel.Bins < hi-lo+1 {
			t.Fatalf("auto-k stopped early: err %v%% > %v%% with %d bins over span %d",
				sel.ErrorPct, threshold, sel.Bins, hi-lo+1)
		}
	})
}
