package experiments

import (
	"strings"
	"testing"

	"seqpoint/internal/core"
	"seqpoint/internal/dataset"
	"seqpoint/internal/gpusim"
)

func TestBatchSizeSweep(t *testing.T) {
	lab := NewLab()
	w := testGNMTWorkload(t)
	res, err := BatchSize(lab, w, gpusim.VegaFE(), []int{8, 16, 32}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Paper Section V-A: smaller batches -> more iterations and at
	// least as many unique SLs.
	for i := 1; i < len(res.Rows); i++ {
		prev, cur := res.Rows[i-1], res.Rows[i]
		if cur.Iterations >= prev.Iterations {
			t.Errorf("batch %d has %d iterations, batch %d has %d — bigger batches mean fewer iterations",
				prev.Batch, prev.Iterations, cur.Batch, cur.Iterations)
		}
		if cur.UniqueSLs > prev.UniqueSLs {
			t.Errorf("batch %d has %d unique SLs, batch %d has %d — unique SLs should not grow with batch",
				prev.Batch, prev.UniqueSLs, cur.Batch, cur.UniqueSLs)
		}
	}
	for _, row := range res.Rows {
		if row.SelfErrPct > 1 {
			t.Errorf("batch %d self error %v%%", row.Batch, row.SelfErrPct)
		}
	}
	if !strings.Contains(res.Render(), "batch size") {
		t.Error("render header")
	}
}

func TestThresholdSweepMonotone(t *testing.T) {
	lab := NewLab()
	res, err := ThresholdSweep(lab, testGNMTWorkload(t), gpusim.VegaFE(), []float64{10, 1, 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for i := 1; i < len(res.Rows); i++ {
		prev, cur := res.Rows[i-1], res.Rows[i]
		if cur.SeqPoints < prev.SeqPoints {
			t.Errorf("tightening e from %v to %v shrank the selection (%d -> %d)",
				prev.ThresholdPct, cur.ThresholdPct, prev.SeqPoints, cur.SeqPoints)
		}
		// Each row must meet its own threshold (or be exhaustive).
		if cur.SelfErrPct > cur.ThresholdPct && cur.Bins < cur.SeqPoints {
			t.Errorf("threshold %v not met: err %v", cur.ThresholdPct, cur.SelfErrPct)
		}
	}
	if !strings.Contains(res.Render(), "threshold") {
		t.Error("render header")
	}
}

func TestDatasetScaleSpeedupGrows(t *testing.T) {
	lab := NewLab()
	w := testDS2Workload(t)
	// A 4x larger corpus with the same length distribution.
	big := dataset.Subsample(w.Train, w.Train.Size(), 1)
	lengths := append([]int(nil), big.Lengths...)
	for i := 0; i < 3; i++ {
		lengths = append(lengths, big.Lengths...)
	}
	larger, err := dataset.Synthetic("ds2-mini-4x", lengths, w.Train.Vocab)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DatasetScale(lab, w, larger, gpusim.VegaFE(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	small, bigRow := res.Rows[0], res.Rows[1]
	if bigRow.Iterations <= small.Iterations {
		t.Error("larger corpus should have more iterations")
	}
	// The paper's Section VI-F claim: same SL range, so speedups grow
	// with dataset size.
	if bigRow.SerialSpeedup <= small.SerialSpeedup {
		t.Errorf("serial speedup should grow: %vx -> %vx", small.SerialSpeedup, bigRow.SerialSpeedup)
	}
	if !strings.Contains(res.Render(), "larger dataset") {
		t.Error("render header")
	}
}

func TestLargerCorporaShapes(t *testing.T) {
	l500 := dataset.LibriSpeech500h(1)
	if l500.Size() != dataset.Libri500Size {
		t.Errorf("libri-500 size = %d", l500.Size())
	}
	// Same SL range as the 100h set (the paper's observation).
	lo100, hi100 := dataset.LibriSpeech100h(1).MinMaxLen()
	lo500, hi500 := l500.MinMaxLen()
	if lo500 < lo100-20 || hi500 > hi100+20 {
		t.Errorf("500h range [%d,%d] should match 100h [%d,%d]", lo500, hi500, lo100, hi100)
	}

	wmt := dataset.WMT16(1)
	if wmt.Size() != dataset.WMT16Size {
		t.Errorf("wmt16 size = %d", wmt.Size())
	}
	if wmt.Vocab != 32000 {
		t.Errorf("wmt16 vocab = %d", wmt.Vocab)
	}
}
