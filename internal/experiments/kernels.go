package experiments

import (
	"fmt"
	"sort"
	"strings"

	"seqpoint/internal/gpusim"
	"seqpoint/internal/profiler"
	"seqpoint/internal/report"
)

// Fig5Pair is the unique-kernel overlap between two iterations of one
// workload (one bar group of the paper's Fig. 5).
type Fig5Pair struct {
	Network  string
	SL1, SL2 int
	// Common is the number of unique kernel symbols invoked in both
	// iterations; Only1/Only2 count kernels exclusive to one iteration.
	Common, Only1, Only2 int
}

// Total returns the union size of the two kernel sets.
func (p Fig5Pair) Total() int { return p.Common + p.Only1 + p.Only2 }

// ExclusivePct is the fraction of unique kernels present in only one of
// the two iterations, in percent (the paper reports up to ~20%).
func (p Fig5Pair) ExclusivePct() float64 {
	if p.Total() == 0 {
		return 0
	}
	return float64(p.Only1+p.Only2) / float64(p.Total()) * 100
}

// Fig5Result holds the kernel-set overlaps of several SL pairs.
type Fig5Result struct {
	Pairs []Fig5Pair
}

// Fig5 compares the unique-kernel sets of iterations at the given SL
// pairs. SLs are snapped to the nearest SL occurring in the workload's
// first epoch.
func Fig5(lab *Lab, w Workload, cfg gpusim.Config, slPairs [][2]int) (Fig5Result, error) {
	run, err := lab.Run(w, cfg)
	if err != nil {
		return Fig5Result{}, err
	}
	avail := run.UniqueSLs()
	var res Fig5Result
	for _, pair := range slPairs {
		snapped := nearestSLs(avail, []int{pair[0], pair[1]})
		p1 := run.BySL[snapped[0]]
		p2 := run.BySL[snapped[1]]
		common, only1, only2 := profiler.Overlap(p1, p2)
		res.Pairs = append(res.Pairs, Fig5Pair{
			Network: w.Name, SL1: snapped[0], SL2: snapped[1],
			Common: common, Only1: only1, Only2: only2,
		})
	}
	return res, nil
}

// Render formats the overlap table.
func (r Fig5Result) Render() string {
	t := report.NewTable("Fig 5 — unique-kernel overlap between iteration pairs",
		"network", "sl pair", "common", "only-in-1", "only-in-2", "exclusive").AlignNumeric()
	for _, p := range r.Pairs {
		t.AddStringRow(p.Network, fmt.Sprintf("%d vs %d", p.SL1, p.SL2),
			fmt.Sprintf("%d", p.Common), fmt.Sprintf("%d", p.Only1),
			fmt.Sprintf("%d", p.Only2), report.Pct(p.ExclusivePct()))
	}
	return t.String()
}

// KernelGroup is a named predicate over layer-level op labels, used to
// group kernels the way the paper's Figs 6 and 8 group "GEMM-1",
// "GEMM-2", "reduce", "scalar-op".
type KernelGroup struct {
	// Name labels the group in output.
	Name string
	// Match reports whether an op label belongs to the group. Groups are
	// tested in order; the first match wins.
	Match func(label string) bool
}

// DefaultKernelGroups groups the paper's way for our two SQNNs:
// GEMM-group-1 is the SL-proportional work (recurrent projections,
// attention), GEMM-group-2 the fixed-count large GEMMs (classifier),
// plus reductions and pointwise scalar ops.
func DefaultKernelGroups() []KernelGroup {
	return []KernelGroup{
		{Name: "GEMM-classifier", Match: func(l string) bool {
			return strings.HasPrefix(l, "classifier")
		}},
		{Name: "GEMM-recurrent", Match: func(l string) bool {
			return strings.Contains(l, "proj") || strings.Contains(l, "_keys") ||
				strings.Contains(l, "_query") || strings.Contains(l, "_context")
		}},
		{Name: "conv", Match: func(l string) bool {
			return strings.HasPrefix(l, "conv")
		}},
		{Name: "reduce", Match: func(l string) bool {
			return strings.Contains(l, "_max") || strings.Contains(l, "_sum") ||
				strings.Contains(l, "_stats") || strings.Contains(l, "_vdot") ||
				strings.Contains(l, "_norm")
		}},
		{Name: "scalar-op", Match: func(string) bool { return true }},
	}
}

// GroupShares buckets an iteration's per-label runtime into groups and
// returns each group's share of total runtime in percent.
func GroupShares(p profiler.IterationProfile, groups []KernelGroup) map[string]float64 {
	shares := make(map[string]float64, len(groups))
	if p.TimeUS == 0 {
		return shares
	}
	var labeled float64
	for label, us := range p.LabelTimeUS {
		for _, g := range groups {
			if g.Match(label) {
				shares[g.Name] += us / p.TimeUS * 100
				break
			}
		}
		labeled += us
	}
	// Unlabeled time (none in practice: every op carries a label).
	if rest := p.TimeUS - labeled; rest > 1e-9 {
		shares["other"] += rest / p.TimeUS * 100
	}
	return shares
}

// Fig6Column is one iteration's runtime distribution over kernel groups.
type Fig6Column struct {
	Network string
	SeqLen  int
	// SharePct maps group name to percent of iteration runtime.
	SharePct map[string]float64
}

// Fig6Result holds runtime distributions for iterations at several SLs.
type Fig6Result struct {
	Groups  []string
	Columns []Fig6Column
}

// Fig6 computes each iteration's runtime distribution over kernel groups
// at the given SLs (snapped to occurring SLs): the paper's Fig. 6 shows
// these distributions shifting with SL; Fig. 8 shows them nearly
// identical for nearby SLs. Both reuse this experiment with different SL
// choices.
func Fig6(lab *Lab, w Workload, cfg gpusim.Config, sls []int) (Fig6Result, error) {
	run, err := lab.Run(w, cfg)
	if err != nil {
		return Fig6Result{}, err
	}
	snapped := nearestSLs(run.UniqueSLs(), sls)
	groups := DefaultKernelGroups()
	res := Fig6Result{}
	for _, g := range groups {
		res.Groups = append(res.Groups, g.Name)
	}
	seen := map[int]bool{}
	for _, sl := range snapped {
		if seen[sl] {
			continue
		}
		seen[sl] = true
		res.Columns = append(res.Columns, Fig6Column{
			Network:  w.Name,
			SeqLen:   sl,
			SharePct: GroupShares(run.BySL[sl], groups),
		})
	}
	sort.Slice(res.Columns, func(i, j int) bool { return res.Columns[i].SeqLen < res.Columns[j].SeqLen })
	return res, nil
}

// MaxGroupShiftPct returns the largest per-group share difference
// between any two columns — the quantity that is large across distant
// SLs (Fig. 6) and small across nearby SLs (Fig. 8).
func (r Fig6Result) MaxGroupShiftPct() float64 {
	var max float64
	for _, g := range r.Groups {
		for i := range r.Columns {
			for j := i + 1; j < len(r.Columns); j++ {
				d := r.Columns[i].SharePct[g] - r.Columns[j].SharePct[g]
				if d < 0 {
					d = -d
				}
				if d > max {
					max = d
				}
			}
		}
	}
	return max
}

// PairShiftPct returns the largest per-group share difference between
// columns i and j.
func (r Fig6Result) PairShiftPct(i, j int) float64 {
	var max float64
	for _, g := range r.Groups {
		d := r.Columns[i].SharePct[g] - r.Columns[j].SharePct[g]
		if d < 0 {
			d = -d
		}
		if d > max {
			max = d
		}
	}
	return max
}

// Render formats the distribution columns.
func (r Fig6Result) Render() string {
	headers := append([]string{"group"}, func() []string {
		var hs []string
		for _, c := range r.Columns {
			hs = append(hs, fmt.Sprintf("SL %d", c.SeqLen))
		}
		return hs
	}()...)
	network := ""
	if len(r.Columns) > 0 {
		network = r.Columns[0].Network
	}
	t := report.NewTable(
		fmt.Sprintf("Fig 6/8 — %s: runtime share by kernel group", network),
		headers...).AlignNumeric()
	for _, g := range r.Groups {
		row := []string{g}
		for _, c := range r.Columns {
			row = append(row, report.Pct(c.SharePct[g]))
		}
		t.AddStringRow(row...)
	}
	return t.String() + fmt.Sprintf("max group shift: %.2f pp\n", r.MaxGroupShiftPct())
}
