package experiments

import (
	"fmt"
	"math"
	"sort"

	"seqpoint/internal/core"
	"seqpoint/internal/gpusim"
	"seqpoint/internal/report"
	"seqpoint/internal/trainer"
)

// ScaleOutRow is one GPU count's data-parallel scaling outcome.
type ScaleOutRow struct {
	// GPUs is the cluster size.
	GPUs int
	// ShardBatch is the per-GPU share of the global minibatch.
	ShardBatch int
	// ThroughputSPS is full-simulation training throughput in samples/s.
	ThroughputSPS float64
	// SpeedupX is the throughput ratio against the 1-GPU run.
	SpeedupX float64
	// EfficiencyPct is SpeedupX / GPUs — the parallel efficiency.
	EfficiencyPct float64
	// CommSharePct is the exposed-communication share of training time.
	CommSharePct float64
	// ProjTrainUS is the SeqPoint projection of one epoch's training
	// time on this cluster, from SeqPoints selected on the 1-GPU run.
	ProjTrainUS float64
	// ActualTrainUS is the full simulation's epoch-0 training time.
	ActualTrainUS float64
	// ProjErrPct is the absolute projection error.
	ProjErrPct float64
}

// ScaleOutResult is the data-parallel scaling curve of one workload:
// the scale-out axis the paper's single-GPU evaluation stops short of.
// SeqPoint composes with it unchanged — SeqPoints are selected once on
// the 1-GPU calibration run and Equation 1 projects each cluster size
// from per-SL step times alone.
type ScaleOutResult struct {
	Network   string
	Topology  gpusim.Topology
	LinkGBps  float64
	SeqPoints int
	Rows      []ScaleOutRow
}

// ScaleOut sweeps the workload over data-parallel cluster sizes on cfg,
// with the interconnect described by base (its GPUs field is overridden
// per sweep point). For each size it runs the full simulation and a
// SeqPoint projection seeded from the single-GPU run, reporting
// throughput, parallel efficiency, exposed-communication share, and
// projection error.
func ScaleOut(lab *Lab, w Workload, cfg gpusim.Config, base gpusim.ClusterConfig, gpuCounts []int, opts core.Options) (ScaleOutResult, error) {
	if len(gpuCounts) == 0 {
		return ScaleOutResult{}, fmt.Errorf("experiments: scale-out needs at least one GPU count")
	}
	counts := append([]int(nil), gpuCounts...)
	sort.Ints(counts)
	if counts[0] < 1 {
		return ScaleOutResult{}, fmt.Errorf("experiments: GPU counts must be positive, got %d", counts[0])
	}

	cluster := func(n int) gpusim.ClusterConfig {
		c := base
		c.GPUs = n
		return c.Normalized()
	}

	// The 1-GPU calibration run: SeqPoints are selected here and reused
	// for every cluster size, mirroring the paper's flow (select once on
	// the calibration config, project everywhere).
	w1 := w
	w1.Cluster = cluster(1)
	calib, err := lab.Run(w1, cfg)
	if err != nil {
		return ScaleOutResult{}, err
	}
	recs, err := SLRecords(calib, 0)
	if err != nil {
		return ScaleOutResult{}, err
	}
	sel, err := core.Select(recs, opts)
	if err != nil {
		return ScaleOutResult{}, err
	}

	res := ScaleOutResult{
		Network:   w.Name,
		Topology:  cluster(2).Topology,
		LinkGBps:  cluster(2).LinkGBps,
		SeqPoints: len(sel.Points),
	}
	// Speedup and efficiency are always relative to the 1-GPU
	// calibration run, whether or not 1 is among the swept counts.
	baseTput := calib.Throughput()
	for _, n := range counts {
		wn := w
		wn.Cluster = cluster(n)
		run, err := lab.Run(wn, cfg)
		if err != nil {
			return ScaleOutResult{}, err
		}

		// Equation 1 on the cluster: per-SL step times (shard compute +
		// exposed all-reduce) weighted by the calibration selection.
		stepBySL := make(map[int]float64, len(run.BySL))
		for sl, p := range run.BySL {
			stepBySL[sl] = p.TimeUS
		}
		proj, err := core.ProjectTotal(sel.Points, stepBySL)
		if err != nil {
			return ScaleOutResult{}, err
		}
		actual, err := run.EpochTrainUS(0)
		if err != nil {
			return ScaleOutResult{}, err
		}

		row := ScaleOutRow{
			GPUs:          n,
			ShardBatch:    wn.Cluster.ShardBatch(w.Batch),
			ThroughputSPS: run.Throughput(),
			ProjTrainUS:   proj,
			ActualTrainUS: actual,
		}
		if actual > 0 {
			row.ProjErrPct = math.Abs(proj-actual) / actual * 100
		}
		if run.TrainUS > 0 {
			row.CommSharePct = run.CommUS / run.TrainUS * 100
		}
		if baseTput > 0 {
			row.SpeedupX = row.ThroughputSPS / baseTput
			row.EfficiencyPct = row.SpeedupX / float64(n) * 100
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render formats the scaling curve.
func (r ScaleOutResult) Render() string {
	t := report.NewTable(
		fmt.Sprintf("Scale-out — %s: data-parallel scaling over %s @ %g GB/s (%d SeqPoints)",
			r.Network, r.Topology, r.LinkGBps, r.SeqPoints),
		"gpus", "shard", "samples/s", "speedup", "efficiency", "comm share", "proj err").AlignNumeric()
	for _, row := range r.Rows {
		t.AddStringRow(
			fmt.Sprintf("%d", row.GPUs),
			fmt.Sprintf("%d", row.ShardBatch),
			fmt.Sprintf("%.1f", row.ThroughputSPS),
			fmt.Sprintf("%.2fx", row.SpeedupX),
			report.Pct(row.EfficiencyPct),
			report.Pct(row.CommSharePct),
			report.Pct(row.ProjErrPct))
	}
	return t.String()
}

// CSV renders the scaling curve for external plotting.
func (r ScaleOutResult) CSV() string {
	t := report.NewTable("", "gpus", "shard_batch", "throughput_sps", "speedup_x",
		"efficiency_pct", "comm_share_pct", "proj_train_us", "actual_train_us", "proj_err_pct")
	for _, row := range r.Rows {
		t.AddStringRow(
			fmt.Sprintf("%d", row.GPUs),
			fmt.Sprintf("%d", row.ShardBatch),
			fmt.Sprintf("%.6f", row.ThroughputSPS),
			fmt.Sprintf("%.6f", row.SpeedupX),
			fmt.Sprintf("%.6f", row.EfficiencyPct),
			fmt.Sprintf("%.6f", row.CommSharePct),
			fmt.Sprintf("%.6f", row.ProjTrainUS),
			fmt.Sprintf("%.6f", row.ActualTrainUS),
			fmt.Sprintf("%.6f", row.ProjErrPct))
	}
	return t.CSV()
}

// ScaleOutGPUCounts is the default sweep: the cluster sizes of the
// acceptance evaluation.
func ScaleOutGPUCounts() []int { return []int{1, 2, 4, 8} }

// ScaleOutSpec builds the trainer spec of one sweep point — exposed so
// callers (and tests) can reproduce exactly what the sweep simulates.
func ScaleOutSpec(w Workload, base gpusim.ClusterConfig, gpus int) trainer.Spec {
	c := base
	c.GPUs = gpus
	w.Cluster = c.Normalized()
	return w.Spec()
}
