package experiments

import (
	"fmt"

	"seqpoint/internal/core"
	"seqpoint/internal/gpusim"
	"seqpoint/internal/report"
	"seqpoint/internal/stats"
	"seqpoint/internal/trainer"
)

// AblationResult compares SeqPoint's simple contiguous-range binning
// against k-means clustering over per-SL runtimes (Section VII-C): the
// paper finds the simple scheme performs as well, because iteration
// runtime is a good proxy for the execution profile.
type AblationResult struct {
	Network string
	// K is the cluster/bin count both schemes use (the SeqPoint auto-k
	// outcome).
	K int
	// BinningErrPct and KMeansErrPct are the geomean cross-config
	// errors in total-training-time projection.
	BinningErrPct, KMeansErrPct float64
	// BinningSelfErr and KMeansSelfErr are the calibration-config
	// self-projection errors.
	BinningSelfErr, KMeansSelfErr float64
}

// Ablation selects representatives with both schemes at the same k and
// compares their cross-config projection accuracy.
func Ablation(lab *Lab, w Workload, cfgs []gpusim.Config, opts core.Options, seed int64) (AblationResult, error) {
	runs, err := lab.RunAll(w, cfgs)
	if err != nil {
		return AblationResult{}, err
	}
	calib := runs[cfgs[0].Name]
	recs, err := SLRecords(calib, 0)
	if err != nil {
		return AblationResult{}, err
	}

	binned, err := core.Select(recs, opts)
	if err != nil {
		return AblationResult{}, err
	}
	k := binned.Bins
	if k == 0 {
		k = len(binned.Points)
	}
	kmeans, err := core.SelectKMeans(recs, k, seed)
	if err != nil {
		return AblationResult{}, err
	}

	res := AblationResult{
		Network:        w.Name,
		K:              k,
		BinningSelfErr: binned.ErrorPct,
		KMeansSelfErr:  kmeans.ErrorPct,
	}
	if res.BinningErrPct, err = crossConfigGeomeanErr(binned, runs, cfgs); err != nil {
		return AblationResult{}, err
	}
	if res.KMeansErrPct, err = crossConfigGeomeanErr(kmeans, runs, cfgs); err != nil {
		return AblationResult{}, err
	}
	return res, nil
}

// crossConfigGeomeanErr is the geomean total-time projection error of a
// selection across all configs.
func crossConfigGeomeanErr(sel core.Selection, runs map[string]*trainer.Run, cfgs []gpusim.Config) (float64, error) {
	var errs []float64
	for _, cfg := range cfgs {
		run := runs[cfg.Name]
		proj, err := projectRunTrainUS(sel.Points, run)
		if err != nil {
			return 0, err
		}
		e, err := stats.PercentError(proj, run.TrainUS)
		if err != nil {
			return 0, err
		}
		errs = append(errs, nonZeroErr(e))
	}
	return stats.Geomean(errs)
}

// Render formats the comparison.
func (r AblationResult) Render() string {
	t := report.NewTable(
		fmt.Sprintf("Section VII-C — %s: binning vs k-means (k=%d)", r.Network, r.K),
		"scheme", "self error", "cross-config geomean").AlignNumeric()
	t.AddStringRow("contiguous binning", report.Pct(r.BinningSelfErr), report.Pct(r.BinningErrPct))
	t.AddStringRow("k-means", report.Pct(r.KMeansSelfErr), report.Pct(r.KMeansErrPct))
	return t.String()
}
