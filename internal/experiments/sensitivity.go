package experiments

import (
	"fmt"

	"seqpoint/internal/gpusim"
	"seqpoint/internal/report"
)

// SensitivityCurve is the throughput uplift of iterations at each
// sequence length when moving from one hardware config to the
// calibration config: one line of the paper's Fig. 13 (GNMT) or Fig. 14
// (DS2).
type SensitivityCurve struct {
	// Pair names the transition, e.g. "#2 -> #1".
	Pair string
	// SeqLens and UpliftPct are the curve's samples.
	SeqLens   []int
	UpliftPct []float64
}

// Range returns the minimum and maximum uplift along the curve.
func (c SensitivityCurve) Range() (lo, hi float64) {
	if len(c.UpliftPct) == 0 {
		return 0, 0
	}
	lo, hi = c.UpliftPct[0], c.UpliftPct[0]
	for _, u := range c.UpliftPct[1:] {
		if u < lo {
			lo = u
		}
		if u > hi {
			hi = u
		}
	}
	return lo, hi
}

// SpreadPP is the uplift variation along the curve in percentage points
// (the paper observes up to ~45 pp for DS2, ~30 pp for GNMT).
func (c SensitivityCurve) SpreadPP() float64 {
	lo, hi := c.Range()
	return hi - lo
}

// SensitivityResult holds the per-SL sensitivity curves of one workload
// for every non-calibration config.
type SensitivityResult struct {
	Network string
	Curves  []SensitivityCurve
	// PriorBand is the SL range the `prior` baseline's contiguous
	// sampling window covers on this workload's first epoch — the
	// region marked O1 in the paper's Fig. 14. Prior's speedup
	// projections fail exactly for configs whose curve is not flat over
	// this band.
	PriorBandLo, PriorBandHi int
}

// Sensitivity computes uplift-vs-SL curves from config cfgs[1:] to
// cfgs[0], sampling at most maxPoints sequence lengths.
func Sensitivity(lab *Lab, w Workload, cfgs []gpusim.Config, maxPoints int) (SensitivityResult, error) {
	if len(cfgs) < 2 {
		return SensitivityResult{}, fmt.Errorf("experiments: sensitivity needs >= 2 configs")
	}
	runs, err := lab.RunAll(w, cfgs)
	if err != nil {
		return SensitivityResult{}, err
	}
	base := runs[cfgs[0].Name]
	sls := spreadSLs(base.UniqueSLs(), maxPoints)

	res := SensitivityResult{Network: w.Name}
	for _, cfg := range cfgs[1:] {
		run := runs[cfg.Name]
		curve := SensitivityCurve{Pair: fmt.Sprintf("%s -> %s", cfg.Name, cfgs[0].Name)}
		for _, sl := range sls {
			tgt := run.BySL[sl].TimeUS
			ref := base.BySL[sl].TimeUS
			if ref <= 0 {
				return SensitivityResult{}, fmt.Errorf("experiments: zero iteration time at SL %d", sl)
			}
			// Throughput uplift of #1 over cfg at this SL equals the
			// runtime ratio minus one.
			curve.SeqLens = append(curve.SeqLens, sl)
			curve.UpliftPct = append(curve.UpliftPct, (tgt/ref-1)*100)
		}
		res.Curves = append(res.Curves, curve)
	}

	// Locate prior's sampling band on the first epoch.
	epochSLs, err := base.EpochSLs(0)
	if err != nil {
		return SensitivityResult{}, err
	}
	warmup := PriorWarmupIters
	if warmup+50 > len(epochSLs) {
		warmup = 0
	}
	window := epochSLs[warmup:min(warmup+50, len(epochSLs))]
	res.PriorBandLo, res.PriorBandHi = window[0], window[0]
	for _, sl := range window {
		if sl < res.PriorBandLo {
			res.PriorBandLo = sl
		}
		if sl > res.PriorBandHi {
			res.PriorBandHi = sl
		}
	}
	return res, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Render formats the curves as a seqlen x pair matrix plus per-curve
// spreads.
func (r SensitivityResult) Render() string {
	if len(r.Curves) == 0 {
		return ""
	}
	headers := []string{"seqlen"}
	for _, c := range r.Curves {
		headers = append(headers, c.Pair)
	}
	t := report.NewTable(
		fmt.Sprintf("Figs 13/14 — %s: throughput uplift vs sequence length", r.Network),
		headers...).AlignNumeric()
	for i := range r.Curves[0].SeqLens {
		row := []string{fmt.Sprintf("%d", r.Curves[0].SeqLens[i])}
		for _, c := range r.Curves {
			row = append(row, report.Pct(c.UpliftPct[i]))
		}
		t.AddStringRow(row...)
	}
	out := t.String()
	for _, c := range r.Curves {
		out += fmt.Sprintf("spread %s: %.1f pp\n", c.Pair, c.SpreadPP())
	}
	out += fmt.Sprintf("prior sampling band (O1): SL %d-%d\n", r.PriorBandLo, r.PriorBandHi)
	return out
}
