package experiments

import (
	"fmt"
	"math"
	"sort"

	"seqpoint/internal/gpusim"
	"seqpoint/internal/serving"
	"seqpoint/internal/stats"
	"seqpoint/internal/trainer"
)

// This file holds the arrival-rate-grid construction the serving
// sweeps share: rates are never absolute but expressed as factors of a
// measured capacity, so "factor 1.0" is the saturation knee by
// construction for every workload, policy and fleet size.

// ValidateLoadFactors checks a rate grid's load factors: at least
// one, all positive and finite. Sweeps call it before their expensive
// capacity probes so invalid input fails free.
func ValidateLoadFactors(factors []float64) error {
	if len(factors) == 0 {
		return fmt.Errorf("experiments: rate grid needs at least one load factor")
	}
	for _, f := range factors {
		// !(f > 0) also catches NaN, which sort.Float64s may place
		// anywhere.
		if !(f > 0) || math.IsInf(f, 0) {
			return fmt.Errorf("experiments: load factors must be positive and finite, got %v", factors)
		}
	}
	return nil
}

// ScaledRates validates the load factors (at least one; all positive
// and finite), sorts a copy ascending, and scales each by capacityRPS.
// It returns the sorted factors alongside the rates so sweep rows can
// report both.
func ScaledRates(capacityRPS float64, factors []float64) (sortedFactors, rates []float64, err error) {
	if capacityRPS <= 0 || math.IsNaN(capacityRPS) || math.IsInf(capacityRPS, 0) {
		return nil, nil, fmt.Errorf("experiments: capacity must be a positive finite rate, got %v", capacityRPS)
	}
	if err := ValidateLoadFactors(factors); err != nil {
		return nil, nil, err
	}
	fs := append([]float64(nil), factors...)
	sort.Float64s(fs)
	rates = make([]float64, len(fs))
	for i, f := range fs {
		rates[i] = f * capacityRPS
	}
	return fs, rates, nil
}

// fullBatchServiceUS prices one full batch at the corpus's median SL:
// the sweeps' shared unit of service time, used both as the dynamic
// batching window and to scale SLO budgets.
func fullBatchServiceUS(eng trainer.ProfileSource, w Workload, cfg gpusim.Config) (float64, error) {
	medSL, err := stats.MedianInt(w.Train.Lengths)
	if err != nil {
		return 0, err
	}
	profiles, err := eng.EvalProfiles(cfg, gpusim.SingleGPU(), w.Model, w.Batch, []int{medSL})
	if err != nil {
		return 0, err
	}
	serviceUS := profiles[medSL].TimeUS
	if serviceUS <= 0 {
		return 0, fmt.Errorf("experiments: zero service time for %s at SL %d", w.Name, medSL)
	}
	return serviceUS, nil
}

// servingPolicy builds the sweeps' shared batching policy for w served
// on cfg: timeout-bounded dynamic batching with max batch w.Batch and
// a timeout of one full-batch service time at the corpus's median SL,
// so low-load queueing delay stays on the order of a single batch.
func servingPolicy(eng trainer.ProfileSource, w Workload, cfg gpusim.Config) (serving.Policy, error) {
	serviceUS, err := fullBatchServiceUS(eng, w, cfg)
	if err != nil {
		return nil, err
	}
	return serving.NewDynamicBatch(w.Batch, serviceUS)
}

// measureCapacity runs a fully backlogged burst of the given length
// through one single-GPU replica under policy: every batch launches
// full, so the achieved throughput is the per-replica saturation rate
// on this request mix.
func measureCapacity(eng trainer.ProfileSource, w Workload, cfg gpusim.Config, policy serving.Policy, requests int) (float64, error) {
	burst, err := serving.BurstTrace(w.Train, requests, w.Seed)
	if err != nil {
		return 0, err
	}
	run, err := serving.Simulate(serving.Spec{
		Model:    w.Model,
		Trace:    burst,
		Policy:   policy,
		Profiles: eng,
	}, cfg)
	if err != nil {
		return 0, fmt.Errorf("experiments: %s capacity probe: %w", w.Name, err)
	}
	capacity := run.Throughput()
	if capacity <= 0 {
		return 0, fmt.Errorf("experiments: zero measured capacity for %s", w.Name)
	}
	return capacity, nil
}
