package experiments

import (
	"fmt"

	"seqpoint/internal/core"
	"seqpoint/internal/gpusim"
	"seqpoint/internal/report"
)

// CostResult quantifies the profiling-cost reduction of SeqPoint
// (Section VI-F of the paper): how much less time is spent profiling
// SeqPoint iterations than a full epoch, serially and in parallel, and
// how SeqPoint's iteration budget compares to the `prior` baseline's.
type CostResult struct {
	Network string
	// EpochIterations and EpochUS describe the full first epoch.
	EpochIterations int
	EpochUS         float64
	// NumSeqPoints is the selected SeqPoint count; SerialUS the summed
	// runtime of profiling them one after another; ParallelUS the
	// longest single SeqPoint iteration (each SeqPoint is independent
	// and can run on its own machine — Section VI-F).
	NumSeqPoints int
	SerialUS     float64
	ParallelUS   float64
	// SerialSpeedup and ParallelSpeedup are EpochUS over the two
	// profiling costs (the paper reports 72x/40x serial and 345x/214x
	// parallel for DS2/GNMT).
	SerialSpeedup   float64
	ParallelSpeedup float64
	// PriorIterations is the prior baseline's fixed sample count; the
	// paper highlights SeqPoint needs one-third (GNMT) to one-sixth
	// (DS2) as many iterations.
	PriorIterations  int
	IterRatioVsPrior float64
	// ClusterSpeedups maps a machine count to the profiling speedup of
	// the LPT-scheduled parallel plan over the full epoch (Section
	// VI-F: SeqPoints are independent and can run on different
	// machines).
	ClusterSpeedups map[int]float64
}

// Cost measures the profiling-cost reduction on the calibration config.
func Cost(lab *Lab, w Workload, cfg gpusim.Config, opts core.Options) (CostResult, error) {
	run, err := lab.Run(w, cfg)
	if err != nil {
		return CostResult{}, err
	}
	recs, err := SLRecords(run, 0)
	if err != nil {
		return CostResult{}, err
	}
	sel, err := core.Select(recs, opts)
	if err != nil {
		return CostResult{}, err
	}
	epochUS, err := run.EpochTrainUS(0)
	if err != nil {
		return CostResult{}, err
	}

	res := CostResult{
		Network:         w.Name,
		EpochIterations: run.EpochPlans[0].Iterations(),
		EpochUS:         epochUS,
		NumSeqPoints:    len(sel.Points),
		PriorIterations: core.DefaultPriorSampleCount,
	}
	for _, p := range sel.Points {
		t := run.BySL[p.SeqLen].TimeUS
		res.SerialUS += t
		if t > res.ParallelUS {
			res.ParallelUS = t
		}
	}
	if res.SerialUS > 0 {
		res.SerialSpeedup = epochUS / res.SerialUS
	}
	if res.ParallelUS > 0 {
		res.ParallelSpeedup = epochUS / res.ParallelUS
	}
	if res.NumSeqPoints > 0 {
		res.IterRatioVsPrior = float64(res.PriorIterations) / float64(res.NumSeqPoints)
	}

	// Cluster-size sweep: profiling speedup with an LPT schedule over
	// 2, 4 and 8 machines.
	res.ClusterSpeedups = make(map[int]float64)
	costed := make([]core.SeqPoint, len(sel.Points))
	for i, p := range sel.Points {
		costed[i] = p
		costed[i].Stat = run.BySL[p.SeqLen].TimeUS
	}
	for _, machines := range []int{2, 4, 8} {
		sched, err := core.ScheduleProfiling(costed, machines)
		if err != nil {
			return CostResult{}, err
		}
		if sched.MakespanUS > 0 {
			res.ClusterSpeedups[machines] = epochUS / sched.MakespanUS
		}
	}
	return res, nil
}

// Render formats the cost summary.
func (r CostResult) Render() string {
	t := report.NewTable(
		fmt.Sprintf("Section VI-F — %s: profiling-cost reduction", r.Network),
		"quantity", "value").Align(1, report.AlignRight)
	t.AddStringRow("epoch iterations", report.Count(r.EpochIterations))
	t.AddStringRow("epoch time", report.US(r.EpochUS))
	t.AddStringRow("seqpoints", report.Count(r.NumSeqPoints))
	t.AddStringRow("profiling time (serial)", report.US(r.SerialUS))
	t.AddStringRow("profiling time (parallel)", report.US(r.ParallelUS))
	t.AddStringRow("serial speedup", fmt.Sprintf("%.0fx", r.SerialSpeedup))
	t.AddStringRow("parallel speedup", fmt.Sprintf("%.0fx", r.ParallelSpeedup))
	t.AddStringRow("iterations vs prior", fmt.Sprintf("%d vs %d (%.1fx fewer)",
		r.NumSeqPoints, r.PriorIterations, r.IterRatioVsPrior))
	for _, m := range []int{2, 4, 8} {
		if sp, ok := r.ClusterSpeedups[m]; ok {
			t.AddStringRow(fmt.Sprintf("speedup on %d machines", m), fmt.Sprintf("%.0fx", sp))
		}
	}
	return t.String()
}
