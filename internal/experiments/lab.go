// Package experiments regenerates every table and figure of the paper's
// evaluation from the simulated substrate: the characterization data
// (Figs 3-9, Table I), the projection accuracy of SeqPoint and its
// baselines (Figs 11, 12, 15, 16), the per-SL sensitivity curves
// (Figs 13, 14), the profiling-cost reduction (Section VI-F), and the
// k-means ablation (Section VII-C). Each experiment returns a structured
// result with a text rendering; cmd/experiments and the repository-root
// benchmarks drive them.
package experiments

import (
	"fmt"
	"sync"

	"seqpoint/internal/core"
	"seqpoint/internal/dataset"
	"seqpoint/internal/gpusim"
	"seqpoint/internal/models"
	"seqpoint/internal/trainer"
)

// Workload bundles a model with its dataset and training configuration,
// mirroring the paper's two evaluation set-ups (Section VI-B).
type Workload struct {
	// Name labels the workload ("ds2", "gnmt", "cnn").
	Name string
	// Model is the network.
	Model models.Model
	// Train and Eval are the corpora.
	Train, Eval *dataset.Corpus
	// Schedule is the per-epoch batching policy.
	Schedule dataset.Schedule
	// Batch is the minibatch size.
	Batch int
	// Epochs is the simulated training length.
	Epochs int
	// Seed drives data generation and shuffling.
	Seed int64
}

// Default workload parameters. Two epochs keep experiment runtime low
// while still exercising the multi-epoch structure; all per-epoch
// quantities (SL multiset, therefore projections) are epoch-invariant
// under the sorted/bucketed/pooled policies.
const (
	DefaultBatch  = 64
	DefaultEpochs = 2
	DefaultSeed   = 1
)

// DS2Workload is DeepSpeech2 on LibriSpeech-100h with SortaGrad.
func DS2Workload(seed int64) Workload {
	return Workload{
		Name:     "ds2",
		Model:    models.NewDS2(),
		Train:    dataset.LibriSpeech100h(seed),
		Eval:     dataset.LibriSpeechDev(seed),
		Schedule: dataset.DS2Schedule(),
		Batch:    DefaultBatch,
		Epochs:   DefaultEpochs,
		Seed:     seed,
	}
}

// GNMTWorkload is GNMT on IWSLT'15 with bucket-pool batching.
func GNMTWorkload(seed int64) Workload {
	return Workload{
		Name:     "gnmt",
		Model:    models.NewGNMT(),
		Train:    dataset.IWSLT15(seed),
		Eval:     dataset.IWSLTTest(seed),
		Schedule: dataset.GNMTSchedule(),
		Batch:    DefaultBatch,
		Epochs:   DefaultEpochs,
		Seed:     seed,
	}
}

// TransformerWorkload is the base Transformer on IWSLT'15-shaped data,
// used by the Section VII-B extension experiments: attention makes its
// per-iteration cost super-linear in SL.
func TransformerWorkload(seed int64) Workload {
	return Workload{
		Name:     "transformer",
		Model:    models.NewTransformer(),
		Train:    dataset.IWSLT15(seed),
		Eval:     dataset.IWSLTTest(seed),
		Schedule: dataset.GNMTSchedule(),
		Batch:    DefaultBatch,
		Epochs:   DefaultEpochs,
		Seed:     seed,
	}
}

// Seq2SeqWorkload is the attention-free LSTM encoder-decoder on
// IWSLT'15-shaped data: per-iteration cost strictly linear in SL.
func Seq2SeqWorkload(seed int64) Workload {
	return Workload{
		Name:     "seq2seq",
		Model:    models.NewSeq2Seq(),
		Train:    dataset.IWSLT15(seed),
		Eval:     dataset.IWSLTTest(seed),
		Schedule: dataset.GNMTSchedule(),
		Batch:    DefaultBatch,
		Epochs:   DefaultEpochs,
		Seed:     seed,
	}
}

// CNNWorkload is the fixed-input CNN used for the homogeneous-iteration
// side of the Fig. 3 contrast. The corpus lengths are immaterial (the
// model ignores sequence length); a small corpus keeps the run cheap.
func CNNWorkload(seed int64) Workload {
	lengths := make([]int, 2048)
	for i := range lengths {
		lengths[i] = 1
	}
	corpus, err := dataset.Synthetic("imagenet-like", lengths, 1000)
	if err != nil {
		panic(err) // unreachable: lengths are valid by construction
	}
	return Workload{
		Name:     "cnn",
		Model:    models.NewCNN(),
		Train:    corpus,
		Schedule: dataset.Schedule{FirstEpoch: dataset.OrderShuffled, LaterEpochs: dataset.OrderShuffled},
		Batch:    DefaultBatch,
		Epochs:   1,
		Seed:     seed,
	}
}

// spec converts the workload to a trainer spec.
func (w Workload) spec() trainer.Spec {
	return trainer.Spec{
		Model:    w.Model,
		Train:    w.Train,
		Eval:     w.Eval,
		Batch:    w.Batch,
		Epochs:   w.Epochs,
		Schedule: w.Schedule,
		Seed:     w.Seed,
	}
}

// Lab memoizes simulated training runs per (workload, hardware config):
// the expensive inputs every experiment shares. It is safe for
// concurrent use.
type Lab struct {
	mu   sync.Mutex
	runs map[string]*trainer.Run
}

// NewLab returns an empty lab.
func NewLab() *Lab {
	return &Lab{runs: make(map[string]*trainer.Run)}
}

// Run simulates (or returns the cached) training run of w on cfg.
func (l *Lab) Run(w Workload, cfg gpusim.Config) (*trainer.Run, error) {
	key := fmt.Sprintf("%s|%+v|%s|%d|%d|%d|%d",
		w.Name, cfg, w.Train.Name, w.Train.Size(), w.Batch, w.Epochs, w.Seed)
	l.mu.Lock()
	if r, ok := l.runs[key]; ok {
		l.mu.Unlock()
		return r, nil
	}
	l.mu.Unlock()

	r, err := trainer.Simulate(w.spec(), cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: simulating %s on %s: %w", w.Name, cfg.Name, err)
	}

	l.mu.Lock()
	l.runs[key] = r
	l.mu.Unlock()
	return r, nil
}

// RunAll simulates w on every config — concurrently, since each run is
// independent and the simulator is the suite's dominant cost — and
// returns the runs keyed by config name.
func (l *Lab) RunAll(w Workload, cfgs []gpusim.Config) (map[string]*trainer.Run, error) {
	runs := make([]*trainer.Run, len(cfgs))
	errs := make([]error, len(cfgs))
	var wg sync.WaitGroup
	for i, cfg := range cfgs {
		wg.Add(1)
		go func(i int, cfg gpusim.Config) {
			defer wg.Done()
			runs[i], errs[i] = l.Run(w, cfg)
		}(i, cfg)
	}
	wg.Wait()

	out := make(map[string]*trainer.Run, len(cfgs))
	for i, cfg := range cfgs {
		if errs[i] != nil {
			return nil, errs[i]
		}
		out[cfg.Name] = runs[i]
	}
	return out, nil
}

// SLRecords extracts the SeqPoint input (per-unique-SL frequency and
// iteration runtime) from epoch `epoch` of a run.
func SLRecords(run *trainer.Run, epoch int) ([]core.SLRecord, error) {
	sum, err := run.EpochSummary(epoch)
	if err != nil {
		return nil, err
	}
	recs := make([]core.SLRecord, len(sum))
	for i, s := range sum {
		recs[i] = core.SLRecord{SeqLen: s.SeqLen, Freq: s.Count, Stat: s.IterTimeUS}
	}
	return recs, nil
}

// SelectOptions are the selection parameters used throughout the
// evaluation: the paper's defaults with the error threshold tightened to
// 0.1%, which lands the auto-k loop at SeqPoint counts comparable to the
// paper's (8 for DS2, 15 for GNMT).
func SelectOptions() core.Options {
	return core.Options{ErrorThresholdPct: 0.1}
}
