// Package experiments regenerates every table and figure of the paper's
// evaluation from the simulated substrate: the characterization data
// (Figs 3-9, Table I), the projection accuracy of SeqPoint and its
// baselines (Figs 11, 12, 15, 16), the per-SL sensitivity curves
// (Figs 13, 14), the profiling-cost reduction (Section VI-F), and the
// k-means ablation (Section VII-C). Each experiment returns a structured
// result with a text rendering; cmd/experiments and the repository-root
// benchmarks drive them.
package experiments

import (
	"context"
	"fmt"
	"sync"

	"seqpoint/internal/core"
	"seqpoint/internal/dataset"
	"seqpoint/internal/engine"
	"seqpoint/internal/gpusim"
	"seqpoint/internal/models"
	"seqpoint/internal/trainer"
)

// Workload bundles a model with its dataset and training configuration,
// mirroring the paper's two evaluation set-ups (Section VI-B).
type Workload struct {
	// Name labels the workload ("ds2", "gnmt", "cnn").
	Name string
	// Model is the network.
	Model models.Model
	// Train and Eval are the corpora.
	Train, Eval *dataset.Corpus
	// Schedule is the per-epoch batching policy.
	Schedule dataset.Schedule
	// Batch is the minibatch size.
	Batch int
	// Epochs is the simulated training length.
	Epochs int
	// Seed drives data generation and shuffling.
	Seed int64
	// Cluster is the data-parallel multi-GPU configuration; the zero
	// value trains on a single GPU.
	Cluster gpusim.ClusterConfig
}

// Default workload parameters. Two epochs keep experiment runtime low
// while still exercising the multi-epoch structure; all per-epoch
// quantities (SL multiset, therefore projections) are epoch-invariant
// under the sorted/bucketed/pooled policies.
const (
	DefaultBatch  = 64
	DefaultEpochs = 2
	DefaultSeed   = 1
)

// DS2Workload is DeepSpeech2 on LibriSpeech-100h with SortaGrad.
func DS2Workload(seed int64) Workload {
	return Workload{
		Name:     "ds2",
		Model:    models.NewDS2(),
		Train:    dataset.LibriSpeech100h(seed),
		Eval:     dataset.LibriSpeechDev(seed),
		Schedule: dataset.DS2Schedule(),
		Batch:    DefaultBatch,
		Epochs:   DefaultEpochs,
		Seed:     seed,
	}
}

// GNMTWorkload is GNMT on IWSLT'15 with bucket-pool batching.
func GNMTWorkload(seed int64) Workload {
	return Workload{
		Name:     "gnmt",
		Model:    models.NewGNMT(),
		Train:    dataset.IWSLT15(seed),
		Eval:     dataset.IWSLTTest(seed),
		Schedule: dataset.GNMTSchedule(),
		Batch:    DefaultBatch,
		Epochs:   DefaultEpochs,
		Seed:     seed,
	}
}

// TransformerWorkload is the base Transformer on IWSLT'15-shaped data,
// used by the Section VII-B extension experiments: attention makes its
// per-iteration cost super-linear in SL.
func TransformerWorkload(seed int64) Workload {
	return Workload{
		Name:     "transformer",
		Model:    models.NewTransformer(),
		Train:    dataset.IWSLT15(seed),
		Eval:     dataset.IWSLTTest(seed),
		Schedule: dataset.GNMTSchedule(),
		Batch:    DefaultBatch,
		Epochs:   DefaultEpochs,
		Seed:     seed,
	}
}

// Seq2SeqWorkload is the attention-free LSTM encoder-decoder on
// IWSLT'15-shaped data: per-iteration cost strictly linear in SL.
func Seq2SeqWorkload(seed int64) Workload {
	return Workload{
		Name:     "seq2seq",
		Model:    models.NewSeq2Seq(),
		Train:    dataset.IWSLT15(seed),
		Eval:     dataset.IWSLTTest(seed),
		Schedule: dataset.GNMTSchedule(),
		Batch:    DefaultBatch,
		Epochs:   DefaultEpochs,
		Seed:     seed,
	}
}

// CNNWorkload is the fixed-input CNN used for the homogeneous-iteration
// side of the Fig. 3 contrast. The corpus lengths are immaterial (the
// model ignores sequence length); a small corpus keeps the run cheap.
func CNNWorkload(seed int64) Workload {
	lengths := make([]int, 2048)
	for i := range lengths {
		lengths[i] = 1
	}
	corpus, err := dataset.Synthetic("imagenet-like", lengths, 1000)
	if err != nil {
		panic(err) // unreachable: lengths are valid by construction
	}
	return Workload{
		Name:     "cnn",
		Model:    models.NewCNN(),
		Train:    corpus,
		Schedule: dataset.Schedule{FirstEpoch: dataset.OrderShuffled, LaterEpochs: dataset.OrderShuffled},
		Batch:    DefaultBatch,
		Epochs:   1,
		Seed:     seed,
	}
}

// WorkloadByName resolves a workload by its CLI/HTTP name: "ds2",
// "gnmt", "transformer", "seq2seq" or "cnn". The single registry both
// cmd/trainsim and the HTTP service resolve models through.
func WorkloadByName(name string, seed int64) (Workload, error) {
	switch name {
	case "ds2":
		return DS2Workload(seed), nil
	case "gnmt":
		return GNMTWorkload(seed), nil
	case "transformer":
		return TransformerWorkload(seed), nil
	case "seq2seq":
		return Seq2SeqWorkload(seed), nil
	case "cnn":
		return CNNWorkload(seed), nil
	default:
		return Workload{}, fmt.Errorf("experiments: unknown model %q (want ds2, gnmt, transformer, seq2seq or cnn)", name)
	}
}

// ServedWorkloadByName resolves a model served online (trainsim
// -serve and POST /v1/serve): WorkloadByName minus the fixed-input
// CNN, which exists for the Fig. 3 homogeneity contrast only and has
// no sequence-length variation to serve.
func ServedWorkloadByName(name string, seed int64) (Workload, error) {
	if name == "cnn" {
		return Workload{}, fmt.Errorf("experiments: model cnn is training/characterization only (serving wants ds2, gnmt, transformer or seq2seq)")
	}
	return WorkloadByName(name, seed)
}

// Spec converts the workload to a trainer spec.
func (w Workload) Spec() trainer.Spec {
	return trainer.Spec{
		Model:    w.Model,
		Train:    w.Train,
		Eval:     w.Eval,
		Batch:    w.Batch,
		Epochs:   w.Epochs,
		Schedule: w.Schedule,
		Seed:     w.Seed,
		Cluster:  w.Cluster,
	}
}

// Task converts the workload into one sweep-grid cell on cfg.
func (w Workload) Task(cfg gpusim.Config) engine.SweepTask {
	return engine.SweepTask{
		Name:   fmt.Sprintf("%s on %s", w.Name, cfg.Name),
		Spec:   w.Spec(),
		Config: cfg,
	}
}

// Lab memoizes simulated training runs per (workload, hardware config):
// the expensive inputs every experiment shares. It is a thin wrapper
// over the engine's Sweep — the engine dedupes and parallelizes the
// underlying profiling, the lab additionally memoizes whole *Run
// aggregates with singleflight semantics, so concurrent callers asking
// for the same run wait for one simulation instead of duplicating it.
// It is safe for concurrent use.
type Lab struct {
	eng     *engine.Engine
	mu      sync.Mutex
	flights map[string]*labFlight
}

// labFlight is one memoized (possibly in-flight) simulation.
type labFlight struct {
	done chan struct{}
	run  *trainer.Run
	err  error
}

// NewLab returns a lab backed by the process-wide shared engine, so
// separate labs (and direct trainer users) reuse one profile cache.
func NewLab() *Lab {
	return NewLabWith(engine.Shared())
}

// NewLabWith returns a lab backed by the given engine.
func NewLabWith(eng *engine.Engine) *Lab {
	return &Lab{eng: eng, flights: make(map[string]*labFlight)}
}

// Engine returns the engine backing this lab.
func (l *Lab) Engine() *engine.Engine { return l.eng }

func runKey(w Workload, cfg gpusim.Config) string {
	return fmt.Sprintf("%s|%+v|%+v|%s|%d|%d|%d|%d",
		w.Name, cfg, w.Cluster.Normalized(), w.Train.Name, w.Train.Size(), w.Batch, w.Epochs, w.Seed)
}

// Run simulates (or returns the cached) training run of w on cfg.
func (l *Lab) Run(w Workload, cfg gpusim.Config) (*trainer.Run, error) {
	runs, err := l.RunAll(w, []gpusim.Config{cfg})
	if err != nil {
		return nil, err
	}
	return runs[cfg.Name], nil
}

// RunAll simulates w on every config and returns the runs keyed by
// config name. Uncached configs are claimed under one lock and swept
// through the engine with its configured parallelism; configs another
// goroutine is already simulating are waited on, never recomputed.
func (l *Lab) RunAll(w Workload, cfgs []gpusim.Config) (map[string]*trainer.Run, error) {
	flights := make([]*labFlight, len(cfgs))
	var tasks []engine.SweepTask
	var claimed []*labFlight

	l.mu.Lock()
	for i, cfg := range cfgs {
		key := runKey(w, cfg)
		f, ok := l.flights[key]
		if !ok {
			f = &labFlight{done: make(chan struct{})}
			l.flights[key] = f
			claimed = append(claimed, f)
			tasks = append(tasks, w.Task(cfg))
		}
		flights[i] = f
	}
	l.mu.Unlock()

	if len(tasks) > 0 {
		for i, res := range l.eng.Sweep(context.Background(), tasks, 0) {
			f := claimed[i]
			f.run = res.Run
			if res.Err != nil {
				f.err = fmt.Errorf("experiments: simulating %s on %s: %w",
					w.Name, res.Task.Config.Name, res.Err)
				// Failed flights are not cached: waiters get the error,
				// but later callers retry instead of being pinned to it.
				l.mu.Lock()
				delete(l.flights, runKey(w, res.Task.Config))
				l.mu.Unlock()
			}
			close(f.done)
		}
	}

	out := make(map[string]*trainer.Run, len(cfgs))
	for i, cfg := range cfgs {
		<-flights[i].done
		if flights[i].err != nil {
			return nil, flights[i].err
		}
		out[cfg.Name] = flights[i].run
	}
	return out, nil
}

// SLRecords extracts the SeqPoint input (per-unique-SL frequency and
// iteration runtime) from epoch `epoch` of a run.
func SLRecords(run *trainer.Run, epoch int) ([]core.SLRecord, error) {
	sum, err := run.EpochSummary(epoch)
	if err != nil {
		return nil, err
	}
	recs := make([]core.SLRecord, len(sum))
	for i, s := range sum {
		recs[i] = core.SLRecord{SeqLen: s.SeqLen, Freq: s.Count, Stat: s.IterTimeUS}
	}
	return recs, nil
}

// SelectOptions are the selection parameters used throughout the
// evaluation: the paper's defaults with the error threshold tightened to
// 0.1%, which lands the auto-k loop at SeqPoint counts comparable to the
// paper's (8 for DS2, 15 for GNMT).
func SelectOptions() core.Options {
	return core.Options{ErrorThresholdPct: 0.1}
}
