package experiments

import (
	"strings"
	"testing"

	"seqpoint/internal/engine"
	"seqpoint/internal/gpusim"
)

// TestTenantSweepStarvationStory is the acceptance check for the
// multi-tenant experiment's headline: under FIFO full-batch gating the
// bulk tenant's clumps starve the interactive cohort (interactive p99
// above batch p99), and weighted-fair batching recovers the
// interactive tail at a small aggregate-throughput cost.
func TestTenantSweepStarvationStory(t *testing.T) {
	lab := NewLabWith(engine.New())
	w := sweepWorkload()
	res, err := TenantSweep(lab, w, gpusim.VegaFE(), 2048, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (fifo, wfq)", len(res.Rows))
	}
	fifo, wfq := res.Rows[0], res.Rows[1]
	if !strings.HasPrefix(fifo.Policy, "fixed") {
		t.Fatalf("row 0 policy = %q, want the FIFO fixed-batch baseline", fifo.Policy)
	}
	if !strings.HasPrefix(wfq.Policy, "wfq") {
		t.Fatalf("row 1 policy = %q, want wfq", wfq.Policy)
	}
	// 3 chat tenants + 1 batch tenant.
	if len(res.Tenants) != tenantSweepChatTenants+1 {
		t.Fatalf("tenants = %v, want %d labels", res.Tenants, tenantSweepChatTenants+1)
	}

	// The starvation inversion: FIFO makes the cheap interactive
	// requests wait behind the bulk clumps, so the interactive p99
	// lands above the bulk tenant's own p99.
	if fifo.InteractiveP99US <= fifo.BatchP99US {
		t.Errorf("FIFO interactive p99 %.0fus not above batch p99 %.0fus; no starvation to fix",
			fifo.InteractiveP99US, fifo.BatchP99US)
	}

	// The recovery: tenant-aware batching must strictly improve the
	// interactive tail.
	if wfq.InteractiveP99US >= fifo.InteractiveP99US {
		t.Errorf("wfq interactive p99 %.0fus did not improve on FIFO's %.0fus",
			wfq.InteractiveP99US, fifo.InteractiveP99US)
	}

	// The cost: fairness trades at most 10%% of aggregate throughput.
	if wfq.ThroughputRPS < 0.9*fifo.ThroughputRPS {
		t.Errorf("wfq throughput %.0f rps lost more than 10%% vs FIFO's %.0f rps",
			wfq.ThroughputRPS, fifo.ThroughputRPS)
	}

	for _, frag := range []string{"Multi-tenant serving", "fixed", "wfq", "interactive p99"} {
		if !strings.Contains(res.Render(), frag) {
			t.Errorf("Render() missing %q", frag)
		}
	}
	csv := res.CSV()
	if !strings.HasPrefix(csv, "policy,throughput_rps") {
		t.Errorf("CSV header = %q", strings.SplitN(csv, "\n", 2)[0])
	}
	if got := strings.Count(csv, "\n"); got != 3 {
		t.Errorf("CSV has %d lines, want 3 (header + 2 policies)", got)
	}
}

// TestTenantSweepErrors covers the input edges.
func TestTenantSweepErrors(t *testing.T) {
	lab := NewLabWith(engine.New())
	w := sweepWorkload()
	if _, err := TenantSweep(lab, w, gpusim.VegaFE(), 64, -1); err == nil {
		t.Error("negative load factor accepted")
	}
}
