package experiments

import (
	"fmt"
	"sort"
	"strings"

	"seqpoint/internal/gpusim"
	"seqpoint/internal/report"
	"seqpoint/internal/serving"
	"seqpoint/internal/stats"
	"seqpoint/internal/workload"
)

// This file is the multi-tenant scheduling experiment: the same
// diurnal, Zipf-skewed two-cohort trace served under FIFO full-batch
// gating and under tenant-aware weighted-fair batching. The mechanism
// under test: a bulk tenant submits work in clumps that self-fill
// whole FIFO batches, so its own requests see short waits while the
// sparse interactive tenants wait for the *next* clump to fill their
// batch — interactive p99 lands above batch p99 even though
// interactive requests are cheaper. The fair pick gives every queued
// tenant a slot per dispatch, collapsing the interactive tail at a
// small aggregate-throughput cost (timeout-gated partial batches).

// Tenant-sweep workload shape.
const (
	// DefaultTenantLoadFactor is the *mean* offered load; the diurnal
	// peak runs at mean × (1 + amplitude) = 0.9 of capacity, so the
	// sweep touches the saturation knee at peak without accumulating a
	// runaway backlog across the peak half-cycle.
	DefaultTenantLoadFactor = 0.6
	// tenantSweepChatTenants interactive tenants share the chat cohort,
	// Zipf-skewed so one dominates (the realistic shape).
	tenantSweepChatTenants = 3
	// tenantSweepChatWeight weights interactive arrival *events* so
	// that, with each bulk event contributing a whole clump, the chat
	// cohort lands near a quarter of request volume:
	// 48/(48+2·batch) ≈ 0.27 at batch 64.
	tenantSweepChatWeight = 48
	// tenantSweepChatZipfS skews popularity within the chat cohort.
	tenantSweepChatZipfS = 1.1
	// tenantSweepBurstBatches is the bulk clump size in units of the
	// policy's max batch: each bulk submission fills this many whole
	// batches at one instant.
	tenantSweepBurstBatches = 2
	// tenantSweepDiurnalAmplitude shapes the arrival rate ±50% around
	// the mean over two cycles per trace.
	tenantSweepDiurnalAmplitude = 0.5
	// tenantClassChat and tenantClassBatch label the two cohorts.
	tenantClassChat  = "chat"
	tenantClassBatch = "batch"
)

// TenantSweepRow is one batching policy's outcome on the shared
// multi-tenant trace.
type TenantSweepRow struct {
	// Policy is the batching policy's resolved name.
	Policy string
	// ThroughputRPS is aggregate served requests per second.
	ThroughputRPS float64
	// InteractiveP50US/P99US digest the chat cohort's latency;
	// BatchP99US the bulk cohort's.
	InteractiveP50US float64
	InteractiveP99US float64
	BatchP99US       float64
	// StarvationRatio is interactive p99 over batch p99: above 1 the
	// cheap interactive requests fare worse than the bulk work load
	// they are queued behind.
	StarvationRatio float64
}

// TenantSweepResult contrasts FIFO and tenant-aware batching at equal
// load on one workload.
type TenantSweepResult struct {
	// Network is the workload name.
	Network string
	// Batch is the max batch size both policies share.
	Batch int
	// RatePerSec is the offered rate (LoadFactor × measured capacity);
	// Requests the trace length.
	RatePerSec float64
	LoadFactor float64
	Requests   int
	// Trace names the generated multi-tenant trace.
	Trace string
	// Tenants lists the distinct tenant labels in first-arrival order.
	Tenants []string
	// Rows are the per-policy outcomes: FIFO first, weighted-fair
	// second.
	Rows []TenantSweepRow
}

// tenantSweepTrace generates the shared two-cohort diurnal Zipf trace:
// interactive tenants draw from the short quartile of the corpus,
// the bulk tenant from the long quartile in full-batch clumps. rate is
// the mean *request* rate; the generator paces arrival events, so it
// is converted through the expected clump size per event.
func tenantSweepTrace(w Workload, requests int, rate float64) (serving.Trace, error) {
	sorted := append([]int(nil), w.Train.Lengths...)
	sort.Ints(sorted)
	n := len(sorted)
	shortPool := sorted[:max(1, n/4)]
	longPool := sorted[n-max(1, n/4):]
	burst := tenantSweepBurstBatches * w.Batch
	reqsPerEvent := (tenantSweepChatWeight + float64(burst)) / (tenantSweepChatWeight + 1)
	horizonUS := float64(requests) / rate * 1e6
	tr, err := workload.Generate(workload.GenSpec{
		Requests:   requests,
		RatePerSec: rate / reqsPerEvent,
		Seed:       w.Seed,
		Pattern: workload.Pattern{
			Kind:      workload.PatternDiurnal,
			PeriodUS:  horizonUS / 2,
			Amplitude: tenantSweepDiurnalAmplitude,
		},
		Cohorts: []workload.Cohort{
			{
				Class:   tenantClassChat,
				Tenants: tenantSweepChatTenants,
				Weight:  tenantSweepChatWeight,
				ZipfS:   tenantSweepChatZipfS,
				SeqLens: shortPool,
			},
			{
				Class:   tenantClassBatch,
				Tenants: 1,
				Weight:  1,
				SeqLens: longPool,
				Burst:   burst,
			},
		},
	})
	if err != nil {
		return serving.Trace{}, err
	}
	// The event-rate conversion is only right in expectation — a few
	// heavy clumps of draw variance swing the realized volume by tens
	// of percent, and at-the-knee calibration cannot absorb that.
	// Rescaling the arrivals pins the realized mean request rate
	// exactly while preserving the diurnal shape and the clumps.
	return tr.ScaleToRate(rate)
}

// classP50P99 digests the latency tail of one tenant class (by label
// prefix) from raw request metrics.
func classP50P99(metrics []serving.RequestMetric, class string) (p50, p99 float64, err error) {
	var lats []float64
	prefix := class + "-"
	for _, m := range metrics {
		if strings.HasPrefix(m.Tenant, prefix) {
			lats = append(lats, m.LatencyUS())
		}
	}
	if len(lats) == 0 {
		return 0, 0, fmt.Errorf("experiments: tenant sweep served no %q requests", class)
	}
	ps, err := stats.PercentilesInPlace(lats, 50, 99)
	if err != nil {
		return 0, 0, err
	}
	return ps[0], ps[1], nil
}

// TenantSweep serves one generated multi-tenant trace — diurnal
// arrivals, Zipf-skewed interactive tenants, a clumping bulk tenant —
// under FIFO full-batch gating (fixed) and under tenant-aware
// weighted-fair batching (wfq) at the same offered load, and reports
// each cohort's latency tail. The FIFO row exhibits the starvation
// inversion (interactive p99 above batch p99); the wfq row shows its
// mitigation and what it costs in aggregate throughput.
func TenantSweep(lab *Lab, w Workload, cfg gpusim.Config, requests int, loadFactor float64) (TenantSweepResult, error) {
	if requests <= 0 {
		requests = DefaultServeRequests
	}
	if loadFactor == 0 {
		loadFactor = DefaultTenantLoadFactor
	}
	eng := lab.Engine()
	basePolicy, err := servingPolicy(eng, w, cfg)
	if err != nil {
		return TenantSweepResult{}, err
	}
	// Calibrate the knee on the tenant mix itself, not the corpus mix:
	// the bulk cohort draws from the long quartile, so corpus-mix
	// capacity would overshoot and push the sweep into deep overload.
	// The probe trace shares the generator seed with the real one, so
	// its request mix is identical; only arrival times differ.
	probeTrace, err := tenantSweepTrace(w, requests, 1)
	if err != nil {
		return TenantSweepResult{}, err
	}
	burst := serving.Trace{Name: probeTrace.Name + " burst", Requests: append([]serving.Request(nil), probeTrace.Requests...)}
	for i := range burst.Requests {
		burst.Requests[i].ArrivalUS = 0
	}
	capRun, err := serving.Simulate(serving.Spec{
		Model:    w.Model,
		Trace:    burst,
		Policy:   basePolicy,
		Profiles: eng,
	}, cfg)
	if err != nil {
		return TenantSweepResult{}, fmt.Errorf("experiments: tenant sweep %s capacity probe: %w", w.Name, err)
	}
	capacity := capRun.Throughput()
	_, rates, err := ScaledRates(capacity, []float64{loadFactor})
	if err != nil {
		return TenantSweepResult{}, err
	}
	rate := rates[0]
	trace, err := tenantSweepTrace(w, requests, rate)
	if err != nil {
		return TenantSweepResult{}, err
	}
	serviceUS, err := fullBatchServiceUS(eng, w, cfg)
	if err != nil {
		return TenantSweepResult{}, err
	}
	fifo, err := serving.NewFixedBatch(w.Batch)
	if err != nil {
		return TenantSweepResult{}, err
	}
	wfq, err := serving.NewWFQBatch(w.Batch, serviceUS)
	if err != nil {
		return TenantSweepResult{}, err
	}

	res := TenantSweepResult{
		Network:    w.Name,
		Batch:      w.Batch,
		RatePerSec: rate,
		LoadFactor: loadFactor,
		Requests:   requests,
		Trace:      trace.Name,
		Tenants:    trace.Tenants(),
	}
	for _, policy := range []serving.Policy{fifo, wfq} {
		run, err := serving.Simulate(serving.Spec{
			Model:    w.Model,
			Trace:    trace,
			Policy:   policy,
			Profiles: eng,
		}, cfg)
		if err != nil {
			return TenantSweepResult{}, fmt.Errorf("experiments: tenant sweep %s under %s: %w", w.Name, policy.Name(), err)
		}
		chatP50, chatP99, err := classP50P99(run.Requests, tenantClassChat)
		if err != nil {
			return TenantSweepResult{}, err
		}
		_, batchP99, err := classP50P99(run.Requests, tenantClassBatch)
		if err != nil {
			return TenantSweepResult{}, err
		}
		row := TenantSweepRow{
			Policy:           policy.Name(),
			ThroughputRPS:    run.Throughput(),
			InteractiveP50US: chatP50,
			InteractiveP99US: chatP99,
			BatchP99US:       batchP99,
		}
		if batchP99 > 0 {
			row.StarvationRatio = chatP99 / batchP99
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render formats the FIFO-vs-fair contrast.
func (r TenantSweepResult) Render() string {
	t := report.NewTable(
		fmt.Sprintf("Multi-tenant serving — %s: %d tenants, diurnal Zipf trace at %.0f req/s (%.2fx load), batch %d",
			r.Network, len(r.Tenants), r.RatePerSec, r.LoadFactor, r.Batch),
		"policy", "served/s", "interactive p50", "interactive p99", "batch p99", "p99 ratio").AlignNumeric()
	for _, row := range r.Rows {
		t.AddStringRow(
			row.Policy,
			fmt.Sprintf("%.0f", row.ThroughputRPS),
			report.US(row.InteractiveP50US),
			report.US(row.InteractiveP99US),
			report.US(row.BatchP99US),
			fmt.Sprintf("%.2f", row.StarvationRatio))
	}
	return t.String()
}

// CSV renders the contrast for external plotting.
func (r TenantSweepResult) CSV() string {
	t := report.NewTable("", "policy", "throughput_rps", "interactive_p50_us",
		"interactive_p99_us", "batch_p99_us", "starvation_ratio")
	for _, row := range r.Rows {
		t.AddStringRow(
			row.Policy,
			fmt.Sprintf("%.6f", row.ThroughputRPS),
			fmt.Sprintf("%.6f", row.InteractiveP50US),
			fmt.Sprintf("%.6f", row.InteractiveP99US),
			fmt.Sprintf("%.6f", row.BatchP99US),
			fmt.Sprintf("%.6f", row.StarvationRatio))
	}
	return t.CSV()
}
