package experiments

import (
	"reflect"
	"strings"
	"testing"

	"seqpoint/internal/engine"
	"seqpoint/internal/gpusim"
	"seqpoint/internal/planner"
)

// TestPlanProbeDeterminism pins the probe seam's caching contract:
// repeated calls for the same candidate and rate return identical
// summaries, and candidate overrides (routing, policy, KV capacity)
// actually reach the simulation.
func TestPlanProbeDeterminism(t *testing.T) {
	lab := NewLabWith(engine.New())
	w := sweepWorkload()
	probe, err := PlanProbe(lab.Engine(), w, gpusim.VegaFE(), PlanProbeConfig{Requests: 96, QueueCap: 32})
	if err != nil {
		t.Fatal(err)
	}
	c := planner.Candidate{Replicas: 2, Routing: "rr"}
	first, err := probe(c, 300)
	if err != nil {
		t.Fatal(err)
	}
	second, err := probe(c, 300)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Errorf("probe is not deterministic for a repeated candidate:\n%+v\nvs\n%+v", first, second)
	}
	if first.Requests != 96 || first.Replicas != 2 {
		t.Errorf("probe config did not reach the simulation: %+v", first)
	}

	// A KV-capacity override enables the cache model.
	kvSum, err := probe(planner.Candidate{Replicas: 2, Routing: "rr", KVCapacityGB: 1}, 300)
	if err != nil {
		t.Fatal(err)
	}
	if kvSum.KVCapacityBytes != 1e9 {
		t.Errorf("KV override did not reach the simulation: capacity %v, want 1e9", kvSum.KVCapacityBytes)
	}

	// Unknown overrides surface as errors, not silent fallbacks.
	if _, err := probe(planner.Candidate{Replicas: 1, Routing: "torus"}, 300); err == nil {
		t.Error("unknown routing should error")
	}
	if _, err := probe(planner.Candidate{Replicas: 1, Routing: "rr", Policy: "magic"}, 300); err == nil {
		t.Error("unknown policy should error")
	}
}

// TestPlanSweepMonotonicity runs the suite's planner sweep end to end
// and checks the economics: a tighter p99 budget can never be served
// by a smaller fleet than a looser one.
func TestPlanSweepMonotonicity(t *testing.T) {
	if testing.Short() {
		t.Skip("full planner sweeps skipped in -short mode")
	}
	lab := NewLabWith(engine.New())
	w := sweepWorkload()
	res, err := PlanSweep(lab, w, gpusim.VegaFE(), 128, []float64{8, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	if res.CapacityRPS <= 0 || res.RatePerSec <= 0 {
		t.Fatalf("capacity %v / rate %v, want > 0", res.CapacityRPS, res.RatePerSec)
	}
	loose, tight := res.Rows[0], res.Rows[1]
	if loose.P99BudgetUS <= tight.P99BudgetUS {
		t.Fatalf("budget axis not loose-to-tight: %v then %v", loose.P99BudgetUS, tight.P99BudgetUS)
	}
	if !loose.Feasible {
		t.Fatalf("the loose budget must be plannable: %+v", loose)
	}
	if tight.Feasible && tight.Replicas < loose.Replicas {
		t.Errorf("tighter budget planned fewer replicas (%d) than the looser one (%d)",
			tight.Replicas, loose.Replicas)
	}
	for _, row := range res.Rows {
		if !row.Feasible {
			continue
		}
		if row.Evaluations <= 0 || row.KneeRPS <= 0 || row.Bottleneck == "" {
			t.Errorf("feasible row missing analysis fields: %+v", row)
		}
	}

	out := res.Render()
	for _, want := range []string{"Capacity planner", "p99 budget", "bottleneck", "knee req/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render() missing %q:\n%s", want, out)
		}
	}
	csv := res.CSV()
	if !strings.Contains(csv, "p99_budget_us,feasible,replicas,routing") {
		t.Errorf("CSV missing header:\n%s", csv)
	}
	if got := strings.Count(csv, "\n"); got != len(res.Rows)+1 {
		t.Errorf("CSV has %d lines, want %d", got, len(res.Rows)+1)
	}
}
