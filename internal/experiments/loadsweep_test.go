package experiments

import (
	"strings"
	"testing"

	"seqpoint/internal/dataset"
	"seqpoint/internal/engine"
	"seqpoint/internal/gpusim"
)

// sweepWorkload is a GNMT workload on a subsampled corpus: small
// enough to simulate quickly, varied enough to have a real SL tail.
func sweepWorkload() Workload {
	w := GNMTWorkload(DefaultSeed)
	w.Train = dataset.Subsample(w.Train, 2048, DefaultSeed)
	return w
}

// TestLoadSweepSaturationKnee is the acceptance check for the serving
// saturation curve: past the knee, throughput plateaus at capacity
// while p99 latency rises superlinearly in the offered load.
func TestLoadSweepSaturationKnee(t *testing.T) {
	lab := NewLabWith(engine.New())
	w := sweepWorkload()
	factors := []float64{0.2, 0.6, 1.2, 2.5}
	res, err := LoadSweep(lab, w, gpusim.VegaFE(), 256, factors)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(factors) {
		t.Fatalf("rows = %d, want %d", len(res.Rows), len(factors))
	}
	if res.CapacityRPS <= 0 {
		t.Fatalf("capacity = %v, want > 0", res.CapacityRPS)
	}
	low, mid, over, deep := res.Rows[0], res.Rows[1], res.Rows[2], res.Rows[3]

	// Below the knee the server keeps up: throughput tracks the
	// offered rate (every request is eventually served, so achieved
	// throughput over the makespan stays close to the arrival rate).
	for _, row := range []LoadSweepRow{low, mid} {
		if row.ThroughputRPS < 0.85*row.RatePerSec {
			t.Errorf("underloaded %.2fx: throughput %.0f rps far below offered %.0f",
				row.Factor, row.ThroughputRPS, row.RatePerSec)
		}
	}

	// Past the knee throughput plateaus: offered load more than
	// doubles from 1.2x to 2.5x, achieved throughput must not follow.
	gain := (deep.ThroughputRPS - over.ThroughputRPS) / over.ThroughputRPS
	if gain > 0.10 {
		t.Errorf("throughput grew %.1f%% from 1.2x to 2.5x load; want a plateau", gain*100)
	}

	// The p99 tail rises superlinearly across the knee: the per-rps
	// slope between 0.6x and 1.2x must exceed the below-knee slope
	// between 0.2x and 0.6x — while the throughput gained over the
	// same crossing collapses.
	slopeBelow := (mid.P99US - low.P99US) / (mid.RatePerSec - low.RatePerSec)
	slopeAcross := (over.P99US - mid.P99US) / (over.RatePerSec - mid.RatePerSec)
	if slopeAcross <= 1.2*slopeBelow {
		t.Errorf("p99 slope across knee %.3g <= 1.2 x below-knee slope %.3g; want superlinear growth",
			slopeAcross, slopeBelow)
	}
	if over.P99US < 1.5*mid.P99US {
		t.Errorf("p99 rose only %.2fx across the knee (%.0f -> %.0f µs)",
			over.P99US/mid.P99US, mid.P99US, over.P99US)
	}

	// Overloaded rows saturate the server.
	if deep.UtilizationPct < 90 {
		t.Errorf("2.5x load utilization %.1f%%, want >= 90%%", deep.UtilizationPct)
	}
}

func TestLoadSweepRenderAndCSV(t *testing.T) {
	lab := NewLabWith(engine.New())
	w := sweepWorkload()
	res, err := LoadSweep(lab, w, gpusim.VegaFE(), 128, []float64{0.5, 1.2})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Render()
	if !strings.Contains(out, "Load sweep") || !strings.Contains(out, "p99") {
		t.Errorf("Render missing headings:\n%s", out)
	}
	csv := res.CSV()
	if !strings.Contains(csv, "p99_us") {
		t.Errorf("CSV missing header:\n%s", csv)
	}
	if lines := strings.Count(csv, "\n"); lines != 3 {
		t.Errorf("CSV has %d lines, want 3 (header + 2 rows)", lines)
	}
	if got := res.Knee(); got != 0 {
		t.Errorf("Knee() = %d, want 0", got)
	}
}

func TestLoadSweepErrors(t *testing.T) {
	lab := NewLabWith(engine.New())
	w := sweepWorkload()
	if _, err := LoadSweep(lab, w, gpusim.VegaFE(), 16, nil); err == nil {
		t.Error("no factors should error")
	}
	if _, err := LoadSweep(lab, w, gpusim.VegaFE(), 16, []float64{-1}); err == nil {
		t.Error("negative factor should error")
	}
}
