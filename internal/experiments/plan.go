package experiments

import (
	"errors"
	"fmt"

	"seqpoint/internal/gpusim"
	"seqpoint/internal/planner"
	"seqpoint/internal/report"
	"seqpoint/internal/serving"
	"seqpoint/internal/trainer"
)

// This file is the planner's probe seam over the profile-backed fleet
// simulator: PlanProbe turns a workload + hardware configuration into
// a planner.Probe, and PlanSweep runs the planner across a grid of SLO
// tightnesses for the suite.

// PlanProbeConfig shapes the fleet every candidate is priced on.
type PlanProbeConfig struct {
	// Requests is the arrival-trace length priced per probe; <= 0 uses
	// DefaultServeRequests.
	Requests int
	// QueueCap bounds each replica's admission queue; 0 is unbounded.
	QueueCap int
	// KV is the base KV-cache configuration; candidates with a
	// KVCapacityGB override its capacity (enabling the model with
	// DefaultKVDecodeSteps when KV is nil).
	KV *serving.KVConfig
	// Policy is the base batching policy; nil derives the sweeps'
	// shared dynamic policy from the workload (one full-batch service
	// time at the median SL).
	Policy serving.Policy
	// PolicyTimeoutUS is the batching window used when a candidate
	// names a policy override; 0 uses the serve default.
	PolicyTimeoutUS float64
	// Trace, when set, replaces the per-rate Poisson traces with this
	// recorded trace rescaled to each probed rate (ScaleToRate): the
	// planner searches the load axis by compressing or dilating the
	// trace's own arrival shape — diurnal peaks, clumps and tenant mix
	// included — instead of substituting a memoryless process.
	Trace *serving.Trace
}

// PlanProbe builds a planner probe for w served on cfg: one call
// simulates one candidate fleet against a Poisson trace at the asked
// rate (regenerated — and cached — per distinct rate, all from
// w.Seed), under the candidate's routing, batching-policy and
// KV-capacity overrides. The returned probe is deterministic but keeps
// unsynchronized caches, matching planner.Probe's sequential contract.
func PlanProbe(eng trainer.ProfileSource, w Workload, cfg gpusim.Config, pc PlanProbeConfig) (planner.Probe, error) {
	if pc.Requests <= 0 {
		pc.Requests = DefaultServeRequests
	}
	base := pc.Policy
	if base == nil {
		var err error
		if base, err = servingPolicy(eng, w, cfg); err != nil {
			return nil, err
		}
	}
	timeoutUS := pc.PolicyTimeoutUS
	if timeoutUS == 0 {
		timeoutUS = 50_000
	}
	traces := make(map[float64]serving.Trace)
	policies := map[string]serving.Policy{"": base}
	routers := make(map[string]serving.Router)
	return func(c planner.Candidate, ratePerSec float64) (serving.FleetSummary, error) {
		var zero serving.FleetSummary
		trace, ok := traces[ratePerSec]
		if !ok {
			var err error
			if pc.Trace != nil {
				trace, err = pc.Trace.ScaleToRate(ratePerSec)
			} else {
				trace, err = serving.PoissonTrace(w.Train, pc.Requests, ratePerSec, w.Seed)
			}
			if err != nil {
				return zero, err
			}
			if err := trace.Validate(); err != nil {
				return zero, err
			}
			traces[ratePerSec] = trace
		}
		policy, ok := policies[c.Policy]
		if !ok {
			var err error
			policy, err = serving.ParsePolicy(c.Policy, w.Batch, timeoutUS)
			if err != nil {
				return zero, err
			}
			policies[c.Policy] = policy
		}
		router, ok := routers[c.Routing]
		if !ok {
			var err error
			router, err = serving.ParseRouting(c.Routing, w.Seed)
			if err != nil {
				return zero, err
			}
			routers[c.Routing] = router
		}
		kv := pc.KV
		if c.KVCapacityGB > 0 {
			k := serving.KVConfig{DecodeSteps: DefaultKVDecodeSteps}
			if kv != nil {
				k = *kv
			}
			k.CapacityBytes = c.KVCapacityGB * 1e9
			kv = &k
		}
		run, err := serving.SimulateFleet(serving.FleetSpec{
			Model:    w.Model,
			Trace:    trace,
			Policy:   policy,
			Router:   router,
			Replicas: c.Replicas,
			QueueCap: pc.QueueCap,
			Profiles: eng,
			KV:       kv,
		}, cfg)
		if err != nil {
			return zero, fmt.Errorf("experiments: plan probe %s ×%d %s: %w", w.Name, c.Replicas, c.Routing, err)
		}
		return run.Summary(), nil
	}, nil
}

// PlanSweep defaults.
const (
	// DefaultPlanLoadReplicas offers 2.5× one replica's capacity, so a
	// single replica is hopelessly overloaded and the latency budget
	// decides how far past the load floor the plan must go.
	DefaultPlanLoadReplicas = 2.5
	// planSweepMaxReplicas bounds the suite's replica search.
	planSweepMaxReplicas = 8
	// planSweepKneeIters keeps the suite's knee bisection cheap; the
	// planner default is finer.
	planSweepKneeIters = 6
)

// PlanSweepBudgets is the default SLO-tightness axis: p99 latency
// budgets in units of one full-batch service time, loose to tight.
// Sub-service-time budgets are meetable — dynamic batching closes
// most batches well short of full — they just take more replicas.
func PlanSweepBudgets() []float64 { return []float64{4, 1.5, 0.75} }

// PlanSweepRoutings is the routing axis the suite's planner searches.
func PlanSweepRoutings() []string {
	return []string{serving.RoutingRoundRobin, serving.RoutingJSQ}
}

// PlanRow is one SLO point's planning outcome.
type PlanRow struct {
	// P99BudgetUS is the latency target; Feasible whether any
	// in-bounds fleet met it (the remaining fields are zero when not).
	P99BudgetUS float64
	Feasible    bool
	// Replicas and Routing identify the minimal plan.
	Replicas int
	Routing  string
	// ThroughputRPS and P99US locate the plan's operating point.
	ThroughputRPS float64
	P99US         float64
	// HeadroomPct is the tightest target's margin; Bottleneck the
	// saturating resource; KneeRPS where the plan leaves the SLO box.
	HeadroomPct float64
	Bottleneck  string
	KneeRPS     float64
	// Evaluations counts simulator probes the search spent.
	Evaluations int
}

// PlanSweepResult is the planner run across a grid of latency budgets
// at a fixed offered rate: the inverse of FleetSweep — instead of
// reading the knee off a grid, each row is the minimal fleet the
// planner found for one SLO tightness.
type PlanSweepResult struct {
	// Network is the workload name; Policy the per-replica batching
	// policy.
	Network string
	Policy  string
	// Batch, Requests, QueueCap and MaxReplicas shape each probe.
	Batch       int
	Requests    int
	QueueCap    int
	MaxReplicas int
	// CapacityRPS is one replica's measured saturation throughput;
	// RatePerSec the offered rate every plan must carry.
	CapacityRPS float64
	RatePerSec  float64
	// Rows are the per-budget plans, loosest budget first.
	Rows []PlanRow
}

// PlanSweep plans the workload's fleet for each p99 budget (in units
// of one full-batch service time) at DefaultPlanLoadReplicas× one
// replica's capacity, requiring zero drops. A throughput floor would
// be the wrong second dimension on a finite trace — measured
// throughput divides by a horizon that includes the final batch
// drain, so it undershoots the offered rate even when every request
// is served; zero drops is the trace-length-independent way to say
// "carry the whole load". Budgets default to PlanSweepBudgets.
func PlanSweep(lab *Lab, w Workload, cfg gpusim.Config, requests int, budgets []float64) (PlanSweepResult, error) {
	if requests <= 0 {
		requests = DefaultServeRequests
	}
	if len(budgets) == 0 {
		budgets = PlanSweepBudgets()
	}
	if err := ValidateLoadFactors(budgets); err != nil {
		return PlanSweepResult{}, err
	}
	eng := lab.Engine()
	policy, err := servingPolicy(eng, w, cfg)
	if err != nil {
		return PlanSweepResult{}, err
	}
	capacity, err := measureCapacity(eng, w, cfg, policy, requests)
	if err != nil {
		return PlanSweepResult{}, err
	}
	res := PlanSweepResult{
		Network:     w.Name,
		Policy:      policy.Name(),
		Batch:       w.Batch,
		Requests:    requests,
		QueueCap:    fleetQueueCapBatches * w.Batch,
		MaxReplicas: planSweepMaxReplicas,
		CapacityRPS: capacity,
		RatePerSec:  DefaultPlanLoadReplicas * capacity,
	}
	probe, err := PlanProbe(eng, w, cfg, PlanProbeConfig{
		Requests: requests,
		QueueCap: res.QueueCap,
		Policy:   policy,
	})
	if err != nil {
		return PlanSweepResult{}, err
	}
	// One full-batch service time at the median SL, recovered from the
	// capacity probe: budgets scale off it so the same factors mean the
	// same tightness for every workload.
	serviceUS := float64(w.Batch) / capacity * 1e6
	noDrops := 0.0
	for _, b := range budgets {
		row := PlanRow{P99BudgetUS: b * serviceUS}
		plan, err := planner.Solve(planner.Spec{
			SLO: planner.SLO{
				LatencyP99US:   row.P99BudgetUS,
				MaxDropRatePct: &noDrops,
			},
			RatePerSec:  res.RatePerSec,
			MaxReplicas: planSweepMaxReplicas,
			Routings:    PlanSweepRoutings(),
			KneeIters:   planSweepKneeIters,
			Probe:       probe,
		})
		switch {
		case errors.Is(err, planner.ErrInfeasible):
			// Leave the row marked infeasible; the budget is simply
			// tighter than this workload can serve within bounds.
		case err != nil:
			return PlanSweepResult{}, fmt.Errorf("experiments: plan sweep %s budget %.1f: %w", w.Name, b, err)
		default:
			row.Feasible = true
			row.Replicas = plan.Replicas
			row.Routing = plan.Routing
			row.ThroughputRPS = plan.Summary.ThroughputRPS
			row.P99US = plan.Summary.P99LatencyUS
			row.HeadroomPct = plan.Saturation.SLOHeadroomPct
			row.Bottleneck = plan.Saturation.Bottleneck
			row.KneeRPS = plan.Saturation.KneeRPS
			row.Evaluations = plan.Evaluations
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render formats the per-budget plans.
func (r PlanSweepResult) Render() string {
	t := report.NewTable(
		fmt.Sprintf("Capacity planner — %s: %s per replica, %.0f req/s offered (%.1fx one replica), ≤%d replicas",
			r.Network, r.Policy, r.RatePerSec, r.RatePerSec/r.CapacityRPS, r.MaxReplicas),
		"p99 budget", "replicas", "routing", "served/s", "p99", "headroom", "bottleneck", "knee req/s", "probes").AlignNumeric()
	for _, row := range r.Rows {
		if !row.Feasible {
			t.AddStringRow(report.US(row.P99BudgetUS), "—", "infeasible", "—", "—", "—", "—", "—", "—")
			continue
		}
		t.AddStringRow(
			report.US(row.P99BudgetUS),
			fmt.Sprintf("%d", row.Replicas),
			row.Routing,
			fmt.Sprintf("%.0f", row.ThroughputRPS),
			report.US(row.P99US),
			report.Pct(row.HeadroomPct),
			row.Bottleneck,
			fmt.Sprintf("%.0f", row.KneeRPS),
			fmt.Sprintf("%d", row.Evaluations))
	}
	return t.String()
}

// CSV renders the per-budget plans for external plotting.
func (r PlanSweepResult) CSV() string {
	t := report.NewTable("", "p99_budget_us", "feasible", "replicas", "routing", "throughput_rps",
		"p99_us", "headroom_pct", "bottleneck", "knee_rps", "evaluations")
	for _, row := range r.Rows {
		t.AddStringRow(
			fmt.Sprintf("%.6f", row.P99BudgetUS),
			fmt.Sprintf("%t", row.Feasible),
			fmt.Sprintf("%d", row.Replicas),
			row.Routing,
			fmt.Sprintf("%.6f", row.ThroughputRPS),
			fmt.Sprintf("%.6f", row.P99US),
			fmt.Sprintf("%.6f", row.HeadroomPct),
			row.Bottleneck,
			fmt.Sprintf("%.6f", row.KneeRPS),
			fmt.Sprintf("%d", row.Evaluations))
	}
	return t.CSV()
}
