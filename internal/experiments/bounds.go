package experiments

import (
	"fmt"

	"seqpoint/internal/gpusim"
	"seqpoint/internal/report"
)

// BoundSharesRow is one iteration's roofline decomposition: the share
// of runtime in compute-, memory- and launch-bound kernels.
type BoundSharesRow struct {
	SeqLen int
	// Share maps each bound class to its fraction of iteration time.
	Share map[gpusim.Bound]float64
}

// BoundSharesResult explains the mechanism behind the paper's
// sensitivity curves (Figs 13/14): the mix of compute-, memory- and
// launch-bound kernels shifts with sequence length, so hardware changes
// that target one leg (clock -> compute, caches/bandwidth -> memory)
// speed different iterations up by different amounts. It holds per-SL
// roofline decompositions for one workload on one configuration.
type BoundSharesResult struct {
	Network string
	Config  string
	Rows    []BoundSharesRow
}

// BoundShares decomposes iterations at n spread-out SLs of the
// workload's epoch under cfg.
func BoundShares(lab *Lab, w Workload, cfg gpusim.Config, n int) (BoundSharesResult, error) {
	run, err := lab.Run(w, cfg)
	if err != nil {
		return BoundSharesResult{}, err
	}
	sim, err := gpusim.New(cfg)
	if err != nil {
		return BoundSharesResult{}, err
	}
	res := BoundSharesResult{Network: w.Name, Config: cfg.Name}
	for _, sl := range spreadSLs(run.UniqueSLs(), n) {
		ops := w.Model.IterationOps(w.Batch, sl)
		res.Rows = append(res.Rows, BoundSharesRow{
			SeqLen: sl,
			Share:  sim.BoundShares(ops),
		})
	}
	return res, nil
}

// LaunchShareShiftPP is the launch-bound share difference between the
// shortest and longest sampled iterations, in percentage points — the
// quantity that collapses as SL grows and drags the small-SL end of the
// sensitivity curves down.
func (r BoundSharesResult) LaunchShareShiftPP() float64 {
	if len(r.Rows) < 2 {
		return 0
	}
	first := r.Rows[0].Share[gpusim.BoundLaunch]
	last := r.Rows[len(r.Rows)-1].Share[gpusim.BoundLaunch]
	return (first - last) * 100
}

// Render formats the decomposition table.
func (r BoundSharesResult) Render() string {
	t := report.NewTable(
		fmt.Sprintf("Roofline decomposition — %s on %s: runtime share by bound", r.Network, r.Config),
		"seqlen", "compute", "memory", "launch").AlignNumeric()
	for _, row := range r.Rows {
		t.AddStringRow(
			fmt.Sprintf("%d", row.SeqLen),
			report.Pct(row.Share[gpusim.BoundCompute]*100),
			report.Pct(row.Share[gpusim.BoundMemory]*100),
			report.Pct(row.Share[gpusim.BoundLaunch]*100))
	}
	return t.String()
}
