package experiments

import (
	"fmt"

	"seqpoint/internal/gpusim"
	"seqpoint/internal/report"
	"seqpoint/internal/serving"
)

// LoadSweepRow is one arrival rate's serving outcome.
type LoadSweepRow struct {
	// Factor is the offered load as a fraction of the estimated
	// capacity (1.0 = the saturation knee).
	Factor float64
	// RatePerSec is the Poisson arrival rate.
	RatePerSec float64
	// ThroughputRPS is achieved requests per second over the makespan.
	ThroughputRPS float64
	// UtilizationPct is the server's busy share of the makespan.
	UtilizationPct float64
	// MeanBatch is the mean launched batch size.
	MeanBatch float64
	// MeanWaitUS is the mean queueing delay.
	MeanWaitUS float64
	// P50US, P95US and P99US are end-to-end latency percentiles.
	P50US, P95US, P99US float64
	// Batches is the number of launched batches.
	Batches int
}

// LoadSweepResult is the arrival-rate sweep of one workload: the
// online-serving saturation curve. Below the knee, throughput tracks
// the offered rate and latency stays near one service time; past it,
// throughput plateaus at capacity while the queue — and with it the
// p99 tail — grows without bound.
type LoadSweepResult struct {
	// Network is the workload name.
	Network string
	// Policy is the batching policy's name.
	Policy string
	// Batch is the policy's max batch size.
	Batch int
	// Requests is the per-rate trace length.
	Requests int
	// CapacityRPS is the measured saturation throughput the sweep is
	// scaled against: the achieved rate of a fully backlogged server
	// (a burst trace) under the same policy.
	CapacityRPS float64
	// Rows are the sweep points in ascending rate order.
	Rows []LoadSweepRow
}

// LoadSweepFactors is the default sweep: well under, around, and well
// past the saturation knee.
func LoadSweepFactors() []float64 { return []float64{0.25, 0.5, 0.75, 0.9, 1.1, 1.5} }

// DefaultServeRequests is the default per-rate trace length.
const DefaultServeRequests = 512

// LoadSweep sweeps Poisson arrival rates over the workload served on
// cfg with timeout-bounded dynamic batching (max batch w.Batch,
// timeout one median-SL full-batch service time). Rates are expressed
// as factors of the measured capacity: the throughput of a fully
// backlogged server under the same policy, so factor 1.0 is the
// saturation knee by construction. All per-batch pricing flows
// through the lab's engine, so the sweep shares profiles with every
// other experiment in the process; the same trace seed is reused
// across rates, so each row serves the same request mix at a
// different pace.
func LoadSweep(lab *Lab, w Workload, cfg gpusim.Config, requests int, factors []float64) (LoadSweepResult, error) {
	if requests <= 0 {
		requests = DefaultServeRequests
	}
	// Validate the grid before the capacity probe: bad factors must
	// fail before any simulation work.
	if err := ValidateLoadFactors(factors); err != nil {
		return LoadSweepResult{}, err
	}
	eng := lab.Engine()
	policy, err := servingPolicy(eng, w, cfg)
	if err != nil {
		return LoadSweepResult{}, err
	}

	// Measure capacity: a backlogged burst through the same policy
	// always launches full batches, so its throughput is the server's
	// saturation rate on this request mix.
	capacity, err := measureCapacity(eng, w, cfg, policy, requests)
	if err != nil {
		return LoadSweepResult{}, err
	}
	fs, rates, err := ScaledRates(capacity, factors)
	if err != nil {
		return LoadSweepResult{}, err
	}
	res := LoadSweepResult{
		Network:     w.Name,
		Policy:      policy.Name(),
		Batch:       w.Batch,
		Requests:    requests,
		CapacityRPS: capacity,
	}
	for i, f := range fs {
		rate := rates[i]
		trace, err := serving.PoissonTrace(w.Train, requests, rate, w.Seed)
		if err != nil {
			return LoadSweepResult{}, err
		}
		run, err := serving.Simulate(serving.Spec{
			Model:    w.Model,
			Trace:    trace,
			Policy:   policy,
			Profiles: eng,
		}, cfg)
		if err != nil {
			return LoadSweepResult{}, fmt.Errorf("experiments: load sweep %s at %.4g rps: %w", w.Name, rate, err)
		}
		sum := run.Summary()
		res.Rows = append(res.Rows, LoadSweepRow{
			Factor:         f,
			RatePerSec:     rate,
			ThroughputRPS:  sum.ThroughputRPS,
			UtilizationPct: sum.UtilizationPct,
			MeanBatch:      sum.MeanBatch,
			MeanWaitUS:     sum.MeanWaitUS,
			P50US:          sum.P50LatencyUS,
			P95US:          sum.P95LatencyUS,
			P99US:          sum.P99LatencyUS,
			Batches:        sum.Batches,
		})
	}
	return res, nil
}

// Knee returns the index of the last row whose offered load is at or
// below capacity (factor <= 1), or -1 when the whole sweep is
// overloaded.
func (r LoadSweepResult) Knee() int {
	knee := -1
	for i, row := range r.Rows {
		if row.Factor <= 1 {
			knee = i
		}
	}
	return knee
}

// Render formats the saturation curve.
func (r LoadSweepResult) Render() string {
	t := report.NewTable(
		fmt.Sprintf("Load sweep — %s: %s serving, capacity ≈ %.0f req/s (%d requests/rate)",
			r.Network, r.Policy, r.CapacityRPS, r.Requests),
		"load", "req/s", "served/s", "util", "mean batch", "mean wait", "p50", "p95", "p99").AlignNumeric()
	for _, row := range r.Rows {
		t.AddStringRow(
			fmt.Sprintf("%.2fx", row.Factor),
			fmt.Sprintf("%.0f", row.RatePerSec),
			fmt.Sprintf("%.0f", row.ThroughputRPS),
			report.Pct(row.UtilizationPct),
			fmt.Sprintf("%.1f", row.MeanBatch),
			report.US(row.MeanWaitUS),
			report.US(row.P50US),
			report.US(row.P95US),
			report.US(row.P99US))
	}
	return t.String()
}

// CSV renders the saturation curve for external plotting.
func (r LoadSweepResult) CSV() string {
	t := report.NewTable("", "load_factor", "rate_rps", "throughput_rps", "utilization_pct",
		"mean_batch", "mean_wait_us", "p50_us", "p95_us", "p99_us", "batches")
	for _, row := range r.Rows {
		t.AddStringRow(
			fmt.Sprintf("%.6f", row.Factor),
			fmt.Sprintf("%.6f", row.RatePerSec),
			fmt.Sprintf("%.6f", row.ThroughputRPS),
			fmt.Sprintf("%.6f", row.UtilizationPct),
			fmt.Sprintf("%.6f", row.MeanBatch),
			fmt.Sprintf("%.6f", row.MeanWaitUS),
			fmt.Sprintf("%.6f", row.P50US),
			fmt.Sprintf("%.6f", row.P95US),
			fmt.Sprintf("%.6f", row.P99US),
			fmt.Sprintf("%d", row.Batches))
	}
	return t.CSV()
}
