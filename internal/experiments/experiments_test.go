package experiments

import (
	"math/rand"
	"strings"
	"testing"

	"seqpoint/internal/core"
	"seqpoint/internal/dataset"
	"seqpoint/internal/gpusim"
	"seqpoint/internal/models"
)

// testDS2Workload is a scaled-down DS2 set-up: the real model over a
// small synthetic corpus, so full five-config simulations stay fast.
func testDS2Workload(t *testing.T) Workload {
	t.Helper()
	rng := rand.New(rand.NewSource(9))
	lengths := make([]int, 640)
	for i := range lengths {
		lengths[i] = 60 + rng.Intn(140)
	}
	c, err := dataset.Synthetic("ds2-mini", lengths, 29)
	if err != nil {
		t.Fatal(err)
	}
	return Workload{
		Name:     "ds2",
		Model:    models.NewDS2(),
		Train:    c,
		Schedule: dataset.DS2Schedule(),
		Batch:    32,
		Epochs:   2,
		Seed:     9,
	}
}

// testGNMTWorkload mirrors testDS2Workload for GNMT with a long-tail
// length distribution.
func testGNMTWorkload(t *testing.T) Workload {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	lengths := make([]int, 640)
	for i := range lengths {
		l := 1 + int(rng.ExpFloat64()*20)
		if l > 90 {
			l = 90
		}
		lengths[i] = l
	}
	c, err := dataset.Synthetic("gnmt-mini", lengths, 1000)
	if err != nil {
		t.Fatal(err)
	}
	return Workload{
		Name:     "gnmt",
		Model:    models.NewGNMT(),
		Train:    c,
		Schedule: dataset.GNMTSchedule(),
		Batch:    32,
		Epochs:   2,
		Seed:     11,
	}
}

func twoConfigs() []gpusim.Config {
	cfgs := gpusim.TableII()
	return []gpusim.Config{cfgs[0], cfgs[1]}
}

func TestLabMemoizes(t *testing.T) {
	lab := NewLab()
	w := testDS2Workload(t)
	cfg := gpusim.VegaFE()
	a, err := lab.Run(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := lab.Run(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("lab should return the cached run pointer")
	}
	// A different config is a different run.
	c, err := lab.Run(w, gpusim.TableII()[1])
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Error("different config must not share the cache entry")
	}
}

func TestLabDistinguishesCorpora(t *testing.T) {
	lab := NewLab()
	w1 := testDS2Workload(t)
	w2 := testDS2Workload(t)
	c, err := dataset.Synthetic("other", []int{50, 60, 70, 80, 90, 100, 110, 120,
		130, 140, 150, 160, 170, 180, 190, 200, 210, 220, 230, 240,
		50, 60, 70, 80, 90, 100, 110, 120, 130, 140, 150, 160}, 29)
	if err != nil {
		t.Fatal(err)
	}
	w2.Train = c
	w2.Batch = 16
	a, err := lab.Run(w1, gpusim.VegaFE())
	if err != nil {
		t.Fatal(err)
	}
	b, err := lab.Run(w2, gpusim.VegaFE())
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("different corpora must not collide in the cache")
	}
}

func TestSLRecordsMatchEpoch(t *testing.T) {
	lab := NewLab()
	w := testDS2Workload(t)
	run, err := lab.Run(w, gpusim.VegaFE())
	if err != nil {
		t.Fatal(err)
	}
	recs, err := SLRecords(run, 0)
	if err != nil {
		t.Fatal(err)
	}
	var total int
	for _, r := range recs {
		total += r.Freq
		if r.Stat <= 0 {
			t.Errorf("SL %d stat %v", r.SeqLen, r.Stat)
		}
	}
	if total != run.EpochPlans[0].Iterations() {
		t.Errorf("record frequencies sum to %d, epoch has %d iterations",
			total, run.EpochPlans[0].Iterations())
	}
}

func TestFig3CNNFlatRNNVaries(t *testing.T) {
	lab := NewLab()
	res, err := Fig3(lab, testGNMTWorkload(t), 8, gpusim.VegaFE())
	if err != nil {
		t.Fatal(err)
	}
	if res.CNNSpreadPct > 1e-9 {
		t.Errorf("CNN spread = %v%%, want 0 (homogeneous iterations)", res.CNNSpreadPct)
	}
	if res.RNNSpreadPct < 10 {
		t.Errorf("SQNN spread = %v%%, want clearly heterogeneous", res.RNNSpreadPct)
	}
	if len(res.CNN) != 8 || len(res.RNN) != 8 {
		t.Error("sample counts")
	}
	if !strings.Contains(res.Render(), "Fig 3") {
		t.Error("render header")
	}
}

func TestFig4SpreadsPositive(t *testing.T) {
	lab := NewLab()
	res, err := Fig4(lab, []Workload{testDS2Workload(t)}, 4, gpusim.VegaFE())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatal("rows")
	}
	row := res.Rows[0]
	for _, c := range []Fig4Counter{CounterMemWriteStalls, CounterVALUInsts, CounterLoadData} {
		if len(row.Normalized[c]) != 4 {
			t.Errorf("%s has %d samples", c, len(row.Normalized[c]))
		}
		if row.SpreadPct[c] <= 0 {
			t.Errorf("%s spread = %v, SQNN iterations must differ", c, row.SpreadPct[c])
		}
	}
	if !strings.Contains(res.Render(), "Fig 4") {
		t.Error("render header")
	}
}

func TestTableIFixedAndVaryingDims(t *testing.T) {
	res, err := TableI(models.NewGNMT(), 64, 94, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	a := res.Rows[0]
	if a.M != 36549 || a.K != 1024 {
		t.Errorf("GEMM-a fixed dims %dx%d, want 36549x1024 (paper Table I)", a.M, a.K)
	}
	if a.N1 != 6016 || a.N2 != 576 {
		t.Errorf("GEMM-a N = %d/%d, want 6016/576 (paper Table I)", a.N1, a.N2)
	}
	if !strings.Contains(res.Render(), "Table I") {
		t.Error("render header")
	}
}

func TestTableIMissingLabel(t *testing.T) {
	if _, err := TableI(models.NewCNN(), 8, 10, 20); err == nil {
		// CNN has a classifier but no classifier_dgrad at differing N;
		// actually it has both labels — ensure no fixed-dim violation.
		res, err2 := TableI(models.NewCNN(), 8, 10, 20)
		if err2 != nil {
			t.Fatal(err2)
		}
		// CNN: N must be identical across "SLs".
		if res.Rows[0].N1 != res.Rows[0].N2 {
			t.Error("CNN classifier N should not vary with seqLen")
		}
	}
}

func TestFig5OverlapCounts(t *testing.T) {
	lab := NewLab()
	res, err := Fig5(lab, testDS2Workload(t), gpusim.VegaFE(), [][2]int{{60, 190}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 1 {
		t.Fatal("pairs")
	}
	p := res.Pairs[0]
	if p.Total() <= 0 {
		t.Fatal("no kernels")
	}
	if p.ExclusivePct() < 0 || p.ExclusivePct() > 100 {
		t.Errorf("exclusive = %v%%", p.ExclusivePct())
	}
	if !strings.Contains(res.Render(), "Fig 5") {
		t.Error("render header")
	}
}

func TestFig6SharesSumTo100(t *testing.T) {
	lab := NewLab()
	res, err := Fig6(lab, testGNMTWorkload(t), gpusim.VegaFE(), []int{5, 60})
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range res.Columns {
		var sum float64
		for _, v := range col.SharePct {
			sum += v
		}
		if sum < 99.9 || sum > 100.1 {
			t.Errorf("SL %d shares sum to %v", col.SeqLen, sum)
		}
	}
	if res.MaxGroupShiftPct() <= 0 {
		t.Error("distant SLs should shift the distribution")
	}
}

func TestFig8NearbySLsSimilar(t *testing.T) {
	lab := NewLab()
	w := testDS2Workload(t)
	// Two nearby and one distant SL: the nearby pair's shift must be
	// far smaller than the distant pair's (paper Figs 6 vs 8).
	res, err := Fig6(lab, w, gpusim.VegaFE(), []int{100, 104, 190})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 3 {
		t.Skipf("corpus snapped SLs to %d columns", len(res.Columns))
	}
	near := res.PairShiftPct(0, 1)
	far := res.PairShiftPct(0, 2)
	if near > far {
		t.Errorf("nearby shift %v pp exceeds distant shift %v pp", near, far)
	}
}

func TestFig7Histogram(t *testing.T) {
	lab := NewLab()
	res, err := Fig7(lab, testGNMTWorkload(t), gpusim.VegaFE(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Histogram.Total() != res.Iterations {
		t.Error("histogram should cover every iteration")
	}
	if res.UniqueSLs <= 0 || res.UniqueSLs > res.Iterations {
		t.Errorf("uniqueSLs = %d", res.UniqueSLs)
	}
	if res.MeanSL <= res.MedianSL {
		t.Error("long-tail corpus: mean should exceed median")
	}
}

func TestFig9NearLinear(t *testing.T) {
	lab := NewLab()
	for _, w := range []Workload{testDS2Workload(t), testGNMTWorkload(t)} {
		res, err := Fig9(lab, w, gpusim.VegaFE())
		if err != nil {
			t.Fatal(err)
		}
		if res.Fit.R2 < 0.98 {
			t.Errorf("%s: R2 = %v, want near-linear runtime vs SL (paper Fig 9)", w.Name, res.Fit.R2)
		}
		if res.Fit.Slope <= 0 {
			t.Errorf("%s: slope = %v, runtime must grow with SL", w.Name, res.Fit.Slope)
		}
	}
}

func TestSelectAllMethodsComplete(t *testing.T) {
	lab := NewLab()
	run, err := lab.Run(testDS2Workload(t), gpusim.VegaFE())
	if err != nil {
		t.Fatal(err)
	}
	sels, err := SelectAll(run, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sels) != 5 {
		t.Fatalf("methods = %d, want 5", len(sels))
	}
	for _, ms := range sels {
		if len(ms.Sel.Points) == 0 {
			t.Errorf("%s selected no points", ms.Method)
		}
		if ms.IterationsProfiled <= 0 {
			t.Errorf("%s profiles %d iterations", ms.Method, ms.IterationsProfiled)
		}
	}
	// Prior's budget is its fixed sample count (clamped to the epoch),
	// not its unique SLs.
	wantPrior := core.DefaultPriorSampleCount
	if n := run.EpochPlans[0].Iterations(); n < wantPrior {
		wantPrior = n
	}
	for _, ms := range sels {
		if ms.Method == core.MethodPrior && ms.IterationsProfiled != wantPrior {
			t.Errorf("prior profiles %d, want %d", ms.IterationsProfiled, wantPrior)
		}
	}
}

func TestTimeProjectionSeqPointWins(t *testing.T) {
	lab := NewLab()
	cfgs := gpusim.TableII()
	for _, w := range []Workload{testDS2Workload(t), testGNMTWorkload(t)} {
		res, err := TimeProjection(lab, w, cfgs, core.Options{ErrorThresholdPct: 0.1})
		if err != nil {
			t.Fatal(err)
		}
		sp := res.GeomeanPct[core.MethodSeqPoint]
		if sp > 1.0 {
			t.Errorf("%s: seqpoint geomean error %v%%, want <= 1%%", w.Name, sp)
		}
		for _, m := range []core.MethodName{core.MethodWorst, core.MethodFrequent} {
			if res.GeomeanPct[m] <= sp {
				t.Errorf("%s: %s (%v%%) should not beat seqpoint (%v%%)",
					w.Name, m, res.GeomeanPct[m], sp)
			}
		}
		if res.SeqPointCount <= 0 {
			t.Error("no seqpoints reported")
		}
		if !strings.Contains(res.Render(), "error in total training time") {
			t.Error("render header")
		}
	}
}

func TestSpeedupProjectionBounds(t *testing.T) {
	lab := NewLab()
	w := testDS2Workload(t)
	res, err := SpeedupProjection(lab, w, gpusim.TableII(), core.Options{ErrorThresholdPct: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 4 {
		t.Fatalf("pairs = %d", len(res.Pairs))
	}
	for _, p := range res.Pairs {
		if res.ActualUpliftPct[p] <= 0 {
			t.Errorf("%s actual uplift %v%%: #1 must be fastest", p, res.ActualUpliftPct[p])
		}
	}
	sp := res.GeomeanPP[core.MethodSeqPoint]
	if sp > 3 {
		t.Errorf("seqpoint speedup error %v pp, want small", sp)
	}
	if res.GeomeanPP[core.MethodWorst] <= sp {
		t.Error("worst should not beat seqpoint on speedups")
	}
}

func TestSensitivityCurves(t *testing.T) {
	lab := NewLab()
	res, err := Sensitivity(lab, testGNMTWorkload(t), twoConfigs(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curves) != 1 {
		t.Fatalf("curves = %d", len(res.Curves))
	}
	c := res.Curves[0]
	if len(c.SeqLens) == 0 {
		t.Fatal("empty curve")
	}
	for i, u := range c.UpliftPct {
		if u <= 0 {
			t.Errorf("uplift at SL %d = %v%%, #1 must win", c.SeqLens[i], u)
		}
	}
	if c.SpreadPP() <= 0 {
		t.Error("uplift should vary across SLs (paper Figs 13/14)")
	}
	if res.PriorBandLo > res.PriorBandHi {
		t.Errorf("prior band [%d,%d]", res.PriorBandLo, res.PriorBandHi)
	}
}

func TestCostReduction(t *testing.T) {
	lab := NewLab()
	res, err := Cost(lab, testDS2Workload(t), gpusim.VegaFE(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.SerialSpeedup <= 1 {
		t.Errorf("serial speedup = %v, profiling few iterations must beat the epoch", res.SerialSpeedup)
	}
	if res.ParallelSpeedup < res.SerialSpeedup {
		t.Error("parallel profiling cannot be slower than serial")
	}
	if res.NumSeqPoints >= res.EpochIterations {
		t.Error("seqpoints should be far fewer than epoch iterations")
	}
	if !strings.Contains(res.Render(), "profiling-cost") {
		t.Error("render header")
	}
}

func TestAblationBothSchemesAccurate(t *testing.T) {
	lab := NewLab()
	res, err := Ablation(lab, testDS2Workload(t), twoConfigs(), core.Options{ErrorThresholdPct: 0.5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.K <= 0 {
		t.Error("no clusters")
	}
	// Section VII-C: both schemes land in the same accuracy regime.
	if res.BinningErrPct > 5 || res.KMeansErrPct > 5 {
		t.Errorf("errors: binning %v%%, k-means %v%% — both should be small",
			res.BinningErrPct, res.KMeansErrPct)
	}
	if !strings.Contains(res.Render(), "binning vs k-means") {
		t.Error("render header")
	}
}

func TestSpreadSLs(t *testing.T) {
	sorted := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	got := spreadSLs(sorted, 3)
	if len(got) != 3 || got[0] != 1 || got[2] != 10 {
		t.Errorf("spreadSLs = %v, want extremes included", got)
	}
	if got := spreadSLs(sorted, 20); len(got) != 10 {
		t.Errorf("n > len should return all: %v", got)
	}
}

func TestNearestSLs(t *testing.T) {
	got := nearestSLs([]int{10, 20, 30}, []int{1, 19, 26, 100})
	want := []int{10, 20, 30, 30}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("nearestSLs[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestCNNWorkloadValid(t *testing.T) {
	w := CNNWorkload(1)
	if w.Model.SeqLenDependent() {
		t.Error("CNN workload should be SL-independent")
	}
	if w.Train.Size() < w.Batch {
		t.Error("corpus too small for one batch")
	}
}
