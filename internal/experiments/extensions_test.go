package experiments

import (
	"strings"
	"testing"

	"seqpoint/internal/core"
	"seqpoint/internal/gpusim"
)

func TestInferenceExperiment(t *testing.T) {
	w := testDS2Workload(t)
	cfgs := gpusim.TableII()
	res, err := Inference(w, cfgs[0], cfgs[1], 16, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Batches <= 0 || res.UniqueSLs <= 0 {
		t.Fatalf("serving run empty: %+v", res)
	}
	if !(res.P50 <= res.P90 && res.P90 <= res.P99) {
		t.Errorf("percentiles not monotone: %v %v %v", res.P50, res.P90, res.P99)
	}
	if res.Points <= 0 {
		t.Error("no representative request lengths selected")
	}
	if res.CrossErrPct > 2 {
		t.Errorf("cross-config serving projection error %v%%, want small", res.CrossErrPct)
	}
	if !strings.Contains(res.Render(), "inference characterization") {
		t.Error("render header")
	}
}

func TestStatChoiceAllStatsAccurate(t *testing.T) {
	lab := NewLab()
	res, err := StatChoice(lab, testGNMTWorkload(t), twoConfigs(), core.Options{ErrorThresholdPct: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ErrPctByStat) != 3 {
		t.Fatalf("stats = %d, want 3", len(res.ErrPctByStat))
	}
	for stat, e := range res.ErrPctByStat {
		if e > 5 {
			t.Errorf("%s-driven selection projects with %v%% error, want small "+
				"(Section V-C: any SL-varying statistic works)", stat, e)
		}
		if res.PointsByStat[stat] <= 0 {
			t.Errorf("%s selected no points", stat)
		}
	}
	if !strings.Contains(res.Render(), "statistic ablation") {
		t.Error("render header")
	}
}

func TestProfileAblationThreeWay(t *testing.T) {
	lab := NewLab()
	res, err := ProfileAblation(lab, testDS2Workload(t), twoConfigs(), core.Options{ErrorThresholdPct: 0.5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.K <= 0 {
		t.Fatal("no clusters")
	}
	// All three schemes must land in the same (small-error) regime —
	// the paper's justification for the simplest one.
	for name, e := range map[string]float64{
		"binning":         res.BinningErrPct,
		"runtime k-means": res.RuntimeKMeansErrPct,
		"profile k-means": res.ProfileKMeansErrPct,
	} {
		if e > 5 {
			t.Errorf("%s error %v%%, want small", name, e)
		}
	}
	if !strings.Contains(res.Render(), "clustering schemes") {
		t.Error("render header")
	}
}

func TestBoundSharesDecomposition(t *testing.T) {
	lab := NewLab()
	res, err := BoundShares(lab, testGNMTWorkload(t), gpusim.VegaFE(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range res.Rows {
		var total float64
		for _, v := range row.Share {
			if v < 0 {
				t.Errorf("SL %d negative share", row.SeqLen)
			}
			total += v
		}
		if total < 0.999 || total > 1.001 {
			t.Errorf("SL %d shares sum to %v", row.SeqLen, total)
		}
	}
	// The bound mix must shift with SL — the mechanism behind the
	// SL-dependent sensitivity of Figs 13/14. (Which class grows is a
	// model detail; that the mix moves is the invariant.)
	var maxShift float64
	first, last := res.Rows[0].Share, res.Rows[len(res.Rows)-1].Share
	for _, b := range []gpusim.Bound{gpusim.BoundCompute, gpusim.BoundMemory, gpusim.BoundLaunch} {
		d := first[b] - last[b]
		if d < 0 {
			d = -d
		}
		if d > maxShift {
			maxShift = d
		}
	}
	if maxShift*100 < 0.1 {
		t.Errorf("bound mix shift = %.3f pp between extreme SLs, want a visible shift", maxShift*100)
	}
	if !strings.Contains(res.Render(), "Roofline decomposition") {
		t.Error("render header")
	}
}

func TestTransformerAndSeq2SeqWorkloads(t *testing.T) {
	// The Section VII-B workloads must be well-formed; a scaled-down
	// run exercises them end to end through the SeqPoint pipeline.
	for _, mk := range []func(int64) Workload{TransformerWorkload, Seq2SeqWorkload} {
		w := mk(1)
		if !w.Model.SeqLenDependent() {
			t.Errorf("%s must be an SQNN", w.Name)
		}
		// Scale down for the test.
		small := testGNMTWorkload(t)
		w.Train = small.Train
		w.Eval = nil
		w.Batch = small.Batch
		w.Epochs = 1

		lab := NewLab()
		run, err := lab.Run(w, gpusim.VegaFE())
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		recs, err := SLRecords(run, 0)
		if err != nil {
			t.Fatal(err)
		}
		sel, err := core.Select(recs, core.Options{})
		if err != nil {
			t.Fatalf("%s selection: %v", w.Name, err)
		}
		if sel.ErrorPct > 1 {
			t.Errorf("%s: SeqPoint self error %v%% — binning should handle both the "+
				"linear and the quadratic SL regime", w.Name, sel.ErrorPct)
		}
	}
}
