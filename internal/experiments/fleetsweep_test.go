package experiments

import (
	"math"
	"strings"
	"testing"

	"seqpoint/internal/engine"
	"seqpoint/internal/gpusim"
	"seqpoint/internal/serving"
)

// TestScaledRatesGrid is the table test for the shared arrival-rate
// grid construction, covering the edges LoadSweep and FleetSweep both
// lean on.
func TestScaledRatesGrid(t *testing.T) {
	for _, tc := range []struct {
		name     string
		capacity float64
		factors  []float64
		want     []float64
		wantErr  bool
	}{
		{name: "single factor", capacity: 100, factors: []float64{1.1}, want: []float64{110.00000000000001}},
		{name: "sorts unsorted input", capacity: 10, factors: []float64{2, 0.5, 1}, want: []float64{5, 10, 20}},
		{name: "preserves duplicates", capacity: 10, factors: []float64{1, 1}, want: []float64{10, 10}},
		{name: "empty factors", capacity: 100, factors: nil, wantErr: true},
		{name: "zero factor", capacity: 100, factors: []float64{0, 1}, wantErr: true},
		{name: "negative factor", capacity: 100, factors: []float64{-0.5}, wantErr: true},
		{name: "NaN factor", capacity: 100, factors: []float64{math.NaN()}, wantErr: true},
		// Regression: NaN must be caught wherever sort places it, not
		// just when it lands last.
		{name: "NaN among factors", capacity: 100, factors: []float64{math.NaN(), 2}, wantErr: true},
		{name: "infinite factor", capacity: 100, factors: []float64{1, math.Inf(1)}, wantErr: true},
		{name: "zero capacity", capacity: 0, factors: []float64{1}, wantErr: true},
		{name: "negative capacity", capacity: -5, factors: []float64{1}, wantErr: true},
		{name: "NaN capacity", capacity: math.NaN(), factors: []float64{1}, wantErr: true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			fs, rates, err := ScaledRates(tc.capacity, tc.factors)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("ScaledRates(%v, %v) succeeded, want error", tc.capacity, tc.factors)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(fs) != len(rates) {
				t.Fatalf("%d factors vs %d rates", len(fs), len(rates))
			}
			for i := range rates {
				if rates[i] != tc.want[i] {
					t.Errorf("rate[%d] = %v, want %v", i, rates[i], tc.want[i])
				}
				if i > 0 && fs[i] < fs[i-1] {
					t.Errorf("factors not sorted: %v", fs)
				}
			}
			// The input slice must not be reordered in place.
			if tc.name == "sorts unsorted input" && (tc.factors[0] != 2 || tc.factors[1] != 0.5) {
				t.Errorf("ScaledRates mutated its input: %v", tc.factors)
			}
		})
	}
}

// TestFleetSweepGrid runs the full grid on a small workload and checks
// its shape plus the physics that make it worth running: more replicas
// serve more, and the same trace is offered to every routing policy in
// a row group.
func TestFleetSweepGrid(t *testing.T) {
	lab := NewLabWith(engine.New())
	w := sweepWorkload()
	replicaCounts := []int{1, 2}
	routings := []string{serving.RoutingRoundRobin, serving.RoutingJSQ}
	res, err := FleetSweep(lab, w, gpusim.VegaFE(), 192, replicaCounts, routings, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(replicaCounts)*len(routings) {
		t.Fatalf("rows = %d, want %d", len(res.Rows), len(replicaCounts)*len(routings))
	}
	if res.CapacityRPS <= 0 {
		t.Fatalf("capacity = %v, want > 0", res.CapacityRPS)
	}
	byKey := make(map[[2]string]FleetSweepRow)
	for _, row := range res.Rows {
		byKey[[2]string{string(rune('0' + row.Replicas)), row.Routing}] = row
		if row.ThroughputRPS <= 0 {
			t.Errorf("x%d %s: non-positive throughput %v", row.Replicas, row.Routing, row.ThroughputRPS)
		}
		if row.ReplicaSeconds <= 0 {
			t.Errorf("x%d %s: non-positive replica-seconds %v", row.Replicas, row.Routing, row.ReplicaSeconds)
		}
	}
	// Offered rate scales with the fleet: the 2-replica rows offer
	// twice the 1-replica rate.
	one := byKey[[2]string{"1", serving.RoutingRoundRobin}]
	two := byKey[[2]string{"2", serving.RoutingRoundRobin}]
	if got := two.RatePerSec / one.RatePerSec; math.Abs(got-2) > 1e-9 {
		t.Errorf("2-replica rate is %.3fx the 1-replica rate, want 2x", got)
	}
	// At 1.2x aggregate load, the overloaded single replica must not
	// out-serve the 2-replica fleet.
	if two.ThroughputRPS <= one.ThroughputRPS {
		t.Errorf("2 replicas served %.0f rps <= 1 replica's %.0f", two.ThroughputRPS, one.ThroughputRPS)
	}
	// Routing policies within a row group see the same trace, so the
	// offered rate is identical.
	jsq := byKey[[2]string{"2", serving.RoutingJSQ}]
	if jsq.RatePerSec != two.RatePerSec {
		t.Errorf("routing changed the offered rate: %v vs %v", jsq.RatePerSec, two.RatePerSec)
	}

	out := res.Render()
	for _, want := range []string{"Fleet sweep", "routing", serving.RoutingJSQ, "replica-s"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render() missing %q:\n%s", want, out)
		}
	}
	csv := res.CSV()
	if !strings.Contains(csv, "replicas,routing,rate_rps") {
		t.Errorf("CSV missing header:\n%s", csv)
	}
	if got := strings.Count(csv, "\n"); got != len(res.Rows)+1 {
		t.Errorf("CSV has %d lines, want %d", got, len(res.Rows)+1)
	}
}

func TestFleetSweepErrors(t *testing.T) {
	lab := NewLabWith(engine.New())
	w := sweepWorkload()
	if _, err := FleetSweep(lab, w, gpusim.VegaFE(), 64, nil, []string{"rr"}, 1); err == nil {
		t.Error("empty replica counts should error")
	}
	if _, err := FleetSweep(lab, w, gpusim.VegaFE(), 64, []int{1}, nil, 1); err == nil {
		t.Error("empty routings should error")
	}
	if _, err := FleetSweep(lab, w, gpusim.VegaFE(), 64, []int{0}, []string{"rr"}, 1); err == nil {
		t.Error("zero replica count should error")
	}
	if _, err := FleetSweep(lab, w, gpusim.VegaFE(), 64, []int{1}, []string{"nope"}, 1); err == nil {
		t.Error("unknown routing should error")
	}
	if _, err := FleetSweep(lab, w, gpusim.VegaFE(), 64, []int{1}, []string{"rr"}, -1); err == nil {
		t.Error("negative load factor should error")
	}
}
