package experiments

import (
	"fmt"

	"seqpoint/internal/gpusim"
	"seqpoint/internal/models"
	"seqpoint/internal/report"
	"seqpoint/internal/serving"
)

// KVSweepRow is one KV-cache capacity's serving outcome.
type KVSweepRow struct {
	// CapacityGB is the per-replica cache ceiling in decimal gigabytes.
	CapacityGB float64
	// ThroughputRPS is achieved requests per second over the makespan.
	ThroughputRPS float64
	// MeanTTFTUS and P99TTFTUS are time-to-first-token statistics
	// (arrival to prefill completion).
	MeanTTFTUS, P99TTFTUS float64
	// P99US is the end-to-end p99 latency.
	P99US float64
	// Preemptions counts requests displaced by the capacity ceiling.
	Preemptions int
	// PeakGB is the largest cache footprint actually held.
	PeakGB float64
}

// KVSweepResult is the cache-capacity sweep of one workload at a fixed
// arrival rate: the memory wall of online serving. With ample cache
// every batch the policy picks fits and the tail is the compute tail;
// as the ceiling drops, batches fragment into capacity-bounded waves,
// preemptions climb, and p99 TTFT inflates long before throughput
// moves — the paper's compute-only latency projections cannot see this
// regime, which is exactly why the capacity model exists.
type KVSweepResult struct {
	// Network is the workload name; Policy the batching policy.
	Network string
	Policy  string
	// DecodeSteps is the decode length applied to every request;
	// BytesPerToken the model-derived cache footprint.
	DecodeSteps   int
	BytesPerToken float64
	// RatePerSec is the offered Poisson rate (LoadFactor × the measured
	// compute capacity); Requests the trace length.
	RatePerSec float64
	LoadFactor float64
	Requests   int
	// Rows are the sweep points in descending capacity order (ample
	// first, starved last).
	Rows []KVSweepRow
}

// KVSweepCapacitiesGB is the default sweep, ample to starved.
func KVSweepCapacitiesGB() []float64 { return []float64{2, 1, 0.5, 0.25, 0.125} }

// Default KV-model knobs for the sweep.
const (
	// DefaultKVDecodeSteps is the per-request decode length.
	DefaultKVDecodeSteps = 32
	// DefaultKVLoadFactor keeps the sweep just under the compute
	// saturation knee, so every latency shift is the cache's doing.
	DefaultKVLoadFactor = 0.9
)

// KVSweep sweeps per-replica KV-cache capacities over the workload
// served on cfg at a fixed sub-saturation arrival rate, reporting the
// TTFT and end-to-end tails alongside preemption counts. The same
// trace seed is reused across capacities, so each row serves the same
// arrivals under a different memory ceiling.
func KVSweep(lab *Lab, w Workload, cfg gpusim.Config, requests int, capacitiesGB []float64, loadFactor float64) (KVSweepResult, error) {
	if requests <= 0 {
		requests = DefaultServeRequests
	}
	if len(capacitiesGB) == 0 {
		return KVSweepResult{}, fmt.Errorf("experiments: KV sweep needs at least one capacity")
	}
	eng := lab.Engine()
	policy, err := servingPolicy(eng, w, cfg)
	if err != nil {
		return KVSweepResult{}, err
	}
	capacity, err := measureCapacity(eng, w, cfg, policy, requests)
	if err != nil {
		return KVSweepResult{}, err
	}
	_, rates, err := ScaledRates(capacity, []float64{loadFactor})
	if err != nil {
		return KVSweepResult{}, err
	}
	rate := rates[0]
	trace, err := serving.PoissonTrace(w.Train, requests, rate, w.Seed)
	if err != nil {
		return KVSweepResult{}, err
	}
	res := KVSweepResult{
		Network:       w.Name,
		Policy:        policy.Name(),
		DecodeSteps:   DefaultKVDecodeSteps,
		BytesPerToken: models.KVBytesPerToken(w.Model),
		RatePerSec:    rate,
		LoadFactor:    loadFactor,
		Requests:      requests,
	}
	for _, capGB := range capacitiesGB {
		run, err := serving.Simulate(serving.Spec{
			Model:    w.Model,
			Trace:    trace,
			Policy:   policy,
			Profiles: eng,
			KV: &serving.KVConfig{
				CapacityBytes: capGB * 1e9,
				DecodeSteps:   DefaultKVDecodeSteps,
			},
		}, cfg)
		if err != nil {
			return KVSweepResult{}, fmt.Errorf("experiments: KV sweep %s at %gGB: %w", w.Name, capGB, err)
		}
		sum := run.Summary()
		res.Rows = append(res.Rows, KVSweepRow{
			CapacityGB:    capGB,
			ThroughputRPS: sum.ThroughputRPS,
			MeanTTFTUS:    sum.MeanTTFTUS,
			P99TTFTUS:     sum.P99TTFTUS,
			P99US:         sum.P99LatencyUS,
			Preemptions:   sum.Preemptions,
			PeakGB:        sum.KVPeakBytes / 1e9,
		})
	}
	return res, nil
}

// Render formats the capacity-vs-tail curve.
func (r KVSweepResult) Render() string {
	t := report.NewTable(
		fmt.Sprintf("KV capacity sweep — %s: %s serving at %.0f req/s (%.2fx load), %d decode steps, %.0f B/token",
			r.Network, r.Policy, r.RatePerSec, r.LoadFactor, r.DecodeSteps, r.BytesPerToken),
		"capacity", "served/s", "mean TTFT", "p99 TTFT", "p99 e2e", "preempts", "peak").AlignNumeric()
	for _, row := range r.Rows {
		t.AddStringRow(
			fmt.Sprintf("%.3g GB", row.CapacityGB),
			fmt.Sprintf("%.0f", row.ThroughputRPS),
			report.US(row.MeanTTFTUS),
			report.US(row.P99TTFTUS),
			report.US(row.P99US),
			report.Count(row.Preemptions),
			fmt.Sprintf("%.2f GB", row.PeakGB))
	}
	return t.String()
}

// CSV renders the capacity-vs-tail curve for external plotting.
func (r KVSweepResult) CSV() string {
	t := report.NewTable("", "capacity_gb", "throughput_rps", "mean_ttft_us", "p99_ttft_us",
		"p99_us", "preemptions", "peak_gb")
	for _, row := range r.Rows {
		t.AddStringRow(
			fmt.Sprintf("%.6f", row.CapacityGB),
			fmt.Sprintf("%.6f", row.ThroughputRPS),
			fmt.Sprintf("%.6f", row.MeanTTFTUS),
			fmt.Sprintf("%.6f", row.P99TTFTUS),
			fmt.Sprintf("%.6f", row.P99US),
			fmt.Sprintf("%d", row.Preemptions),
			fmt.Sprintf("%.6f", row.PeakGB))
	}
	return t.CSV()
}
