package experiments

import (
	"fmt"

	"seqpoint/internal/report"
)

// CSV exporters for the figure-backing data series, for external
// plotting tools. Each returns RFC-4180 CSV with a header row; the
// columns mirror the paper's plot axes.

// CSV renders Fig 3's normalized per-iteration runtimes.
func (r Fig3Result) CSV() string {
	t := report.NewTable("", "iteration", "cnn_normalized", "sqnn_normalized")
	for i := range r.CNN {
		t.AddStringRow(fmt.Sprintf("%d", i),
			fmt.Sprintf("%.6f", r.CNN[i]), fmt.Sprintf("%.6f", r.RNN[i]))
	}
	return t.CSV()
}

// CSV renders Fig 7's histogram bins.
func (r Fig7Result) CSV() string {
	t := report.NewTable("", "bin_lo", "bin_hi", "iterations")
	h := r.Histogram
	for i, c := range h.Counts {
		t.AddStringRow(
			fmt.Sprintf("%d", h.Edges[i]),
			fmt.Sprintf("%d", h.Edges[i+1]-1),
			fmt.Sprintf("%d", c))
	}
	return t.CSV()
}

// CSV renders Fig 9's runtime-vs-SL points.
func (r Fig9Result) CSV() string {
	t := report.NewTable("", "seqlen", "iter_time_us")
	for _, p := range r.Points {
		t.AddStringRow(fmt.Sprintf("%d", p.SeqLen), fmt.Sprintf("%.3f", p.TimeUS))
	}
	return t.CSV()
}

// CSV renders the Figs 11/12 method x config error matrix.
func (r TimeProjectionResult) CSV() string {
	headers := append([]string{"method"}, r.Configs...)
	headers = append(headers, "geomean")
	t := report.NewTable("", headers...)
	for _, m := range r.Methods {
		row := []string{string(m)}
		for _, cfg := range r.Configs {
			row = append(row, fmt.Sprintf("%.6f", r.ErrorPct[m][cfg]))
		}
		row = append(row, fmt.Sprintf("%.6f", r.GeomeanPct[m]))
		t.AddStringRow(row...)
	}
	return t.CSV()
}

// CSV renders the Figs 13/14 uplift-vs-SL curves, one column per
// config pair.
func (r SensitivityResult) CSV() string {
	if len(r.Curves) == 0 {
		return ""
	}
	headers := []string{"seqlen"}
	for _, c := range r.Curves {
		headers = append(headers, c.Pair)
	}
	t := report.NewTable("", headers...)
	for i := range r.Curves[0].SeqLens {
		row := []string{fmt.Sprintf("%d", r.Curves[0].SeqLens[i])}
		for _, c := range r.Curves {
			row = append(row, fmt.Sprintf("%.6f", c.UpliftPct[i]))
		}
		t.AddStringRow(row...)
	}
	return t.CSV()
}

// CSV renders the Figs 15/16 method x pair error matrix, with the
// actual uplift as the first data row.
func (r SpeedupProjectionResult) CSV() string {
	headers := append([]string{"method"}, r.Pairs...)
	headers = append(headers, "geomean")
	t := report.NewTable("", headers...)
	actual := []string{"actual_uplift_pct"}
	for _, p := range r.Pairs {
		actual = append(actual, fmt.Sprintf("%.6f", r.ActualUpliftPct[p]))
	}
	actual = append(actual, "")
	t.AddStringRow(actual...)
	for _, m := range r.Methods {
		row := []string{string(m)}
		for _, p := range r.Pairs {
			row = append(row, fmt.Sprintf("%.6f", r.ErrorPP[m][p]))
		}
		row = append(row, fmt.Sprintf("%.6f", r.GeomeanPP[m]))
		t.AddStringRow(row...)
	}
	return t.CSV()
}

// CSVBundle regenerates the figure-backing data series and returns them
// keyed by file name (e.g. "fig09_gnmt.csv"). cmd/experiments writes
// these when invoked with -csv.
func (s *Suite) CSVBundle() (map[string]string, error) {
	out := make(map[string]string)
	calib := s.Calib()

	fig3, err := Fig3(s.Lab, s.GNMT, 12, calib)
	if err != nil {
		return nil, err
	}
	out["fig03_cnn_vs_sqnn.csv"] = fig3.CSV()

	for _, w := range s.Workloads() {
		f7, err := Fig7(s.Lab, w, calib, 10)
		if err != nil {
			return nil, err
		}
		out[fmt.Sprintf("fig07_%s.csv", w.Name)] = f7.CSV()

		f9, err := Fig9(s.Lab, w, calib)
		if err != nil {
			return nil, err
		}
		out[fmt.Sprintf("fig09_%s.csv", w.Name)] = f9.CSV()

		tp, err := TimeProjection(s.Lab, w, s.Configs, s.Opts)
		if err != nil {
			return nil, err
		}
		out[fmt.Sprintf("fig11_12_%s.csv", w.Name)] = tp.CSV()

		sens, err := Sensitivity(s.Lab, w, s.Configs, 40)
		if err != nil {
			return nil, err
		}
		out[fmt.Sprintf("fig13_14_%s.csv", w.Name)] = sens.CSV()

		sp, err := SpeedupProjection(s.Lab, w, s.Configs, s.Opts)
		if err != nil {
			return nil, err
		}
		out[fmt.Sprintf("fig15_16_%s.csv", w.Name)] = sp.CSV()

		so, err := ScaleOut(s.Lab, w, calib, s.BaseCluster, s.ScaleGPUs, s.Opts)
		if err != nil {
			return nil, err
		}
		out[fmt.Sprintf("scaleout_%s.csv", w.Name)] = so.CSV()

		ls, err := LoadSweep(s.Lab, w, calib, DefaultServeRequests, LoadSweepFactors())
		if err != nil {
			return nil, err
		}
		out[fmt.Sprintf("loadsweep_%s.csv", w.Name)] = ls.CSV()

		fs, err := FleetSweep(s.Lab, w, calib, DefaultServeRequests,
			FleetSweepReplicaCounts(), FleetSweepRoutings(), DefaultFleetLoadFactor)
		if err != nil {
			return nil, err
		}
		out[fmt.Sprintf("fleetsweep_%s.csv", w.Name)] = fs.CSV()

		ks, err := KVSweep(s.Lab, w, calib, DefaultServeRequests,
			KVSweepCapacitiesGB(), DefaultKVLoadFactor)
		if err != nil {
			return nil, err
		}
		out[fmt.Sprintf("kvsweep_%s.csv", w.Name)] = ks.CSV()

		ps, err := PlanSweep(s.Lab, w, calib, DefaultServeRequests, PlanSweepBudgets())
		if err != nil {
			return nil, err
		}
		out[fmt.Sprintf("plansweep_%s.csv", w.Name)] = ps.CSV()

		ts, err := TenantSweep(s.Lab, w, calib, DefaultServeRequests, DefaultTenantLoadFactor)
		if err != nil {
			return nil, err
		}
		out[fmt.Sprintf("tenantsweep_%s.csv", w.Name)] = ts.CSV()
	}
	return out, nil
}
