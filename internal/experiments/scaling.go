package experiments

import (
	"fmt"

	"seqpoint/internal/core"
	"seqpoint/internal/dataset"
	"seqpoint/internal/gpusim"
	"seqpoint/internal/report"
)

// BatchSizeRow is one batch size's effect on the SL space (paper
// Section V-A: "smaller batch sizes have more unique SLs").
type BatchSizeRow struct {
	Batch int
	// Iterations and UniqueSLs describe one epoch at this batch size.
	Iterations, UniqueSLs int
	// SeqPoints is the auto-k outcome; SelfErrPct its error.
	SeqPoints  int
	SelfErrPct float64
}

// BatchSizeResult sweeps batch size for one workload.
type BatchSizeResult struct {
	Network string
	Rows    []BatchSizeRow
}

// BatchSize quantifies how the batch size shapes the unique-SL space
// and whether SeqPoint's selection stays compact across it.
func BatchSize(lab *Lab, w Workload, cfg gpusim.Config, batches []int, opts core.Options) (BatchSizeResult, error) {
	res := BatchSizeResult{Network: w.Name}
	for _, b := range batches {
		wb := w
		wb.Batch = b
		wb.Epochs = 1
		wb.Eval = nil
		run, err := lab.Run(wb, cfg)
		if err != nil {
			return BatchSizeResult{}, err
		}
		recs, err := SLRecords(run, 0)
		if err != nil {
			return BatchSizeResult{}, err
		}
		sel, err := core.Select(recs, opts)
		if err != nil {
			return BatchSizeResult{}, err
		}
		res.Rows = append(res.Rows, BatchSizeRow{
			Batch:      b,
			Iterations: run.EpochPlans[0].Iterations(),
			UniqueSLs:  len(recs),
			SeqPoints:  len(sel.Points),
			SelfErrPct: sel.ErrorPct,
		})
	}
	return res, nil
}

// Render formats the sweep.
func (r BatchSizeResult) Render() string {
	t := report.NewTable(
		fmt.Sprintf("Section V-A — %s: batch size vs unique-SL space", r.Network),
		"batch", "iterations", "unique SLs", "seqpoints", "self error").AlignNumeric()
	for _, row := range r.Rows {
		t.AddStringRow(
			fmt.Sprintf("%d", row.Batch),
			report.Count(row.Iterations),
			report.Count(row.UniqueSLs),
			fmt.Sprintf("%d", row.SeqPoints),
			report.Pct(row.SelfErrPct))
	}
	return t.String()
}

// ThresholdRow is one error-threshold setting's auto-k outcome.
type ThresholdRow struct {
	ThresholdPct float64
	Bins         int
	SeqPoints    int
	SelfErrPct   float64
}

// ThresholdResult sweeps the user error threshold e (paper Fig. 10,
// step 6): tighter thresholds grow k, trading profiling budget for
// accuracy.
type ThresholdResult struct {
	Network string
	Rows    []ThresholdRow
}

// ThresholdSweep runs the selection at several error thresholds.
func ThresholdSweep(lab *Lab, w Workload, cfg gpusim.Config, thresholds []float64) (ThresholdResult, error) {
	run, err := lab.Run(w, cfg)
	if err != nil {
		return ThresholdResult{}, err
	}
	recs, err := SLRecords(run, 0)
	if err != nil {
		return ThresholdResult{}, err
	}
	res := ThresholdResult{Network: w.Name}
	for _, e := range thresholds {
		sel, err := core.Select(recs, core.Options{ErrorThresholdPct: e})
		if err != nil {
			return ThresholdResult{}, err
		}
		res.Rows = append(res.Rows, ThresholdRow{
			ThresholdPct: e,
			Bins:         sel.Bins,
			SeqPoints:    len(sel.Points),
			SelfErrPct:   sel.ErrorPct,
		})
	}
	return res, nil
}

// Render formats the sweep.
func (r ThresholdResult) Render() string {
	t := report.NewTable(
		fmt.Sprintf("Section V-C — %s: error threshold e vs selection size", r.Network),
		"threshold e", "bins k", "seqpoints", "self error").AlignNumeric()
	for _, row := range r.Rows {
		t.AddStringRow(
			report.Pct(row.ThresholdPct),
			fmt.Sprintf("%d", row.Bins),
			fmt.Sprintf("%d", row.SeqPoints),
			report.Pct(row.SelfErrPct))
	}
	return t.String()
}

// DatasetScaleRow is one corpus's profiling-speedup figures.
type DatasetScaleRow struct {
	Corpus          string
	Iterations      int
	UniqueSLs       int
	SeqPoints       int
	SerialSpeedup   float64
	ParallelSpeedup float64
}

// DatasetScaleResult verifies the paper's Section VI-F closing claim:
// larger datasets with similar SL ranges need no more SeqPoints, so the
// profiling speedup grows with dataset size.
type DatasetScaleResult struct {
	Network string
	Rows    []DatasetScaleRow
}

// DatasetScale compares the profiling-cost reduction on a workload's
// standard corpus and a larger corpus with the same SL distribution.
func DatasetScale(lab *Lab, w Workload, larger *dataset.Corpus, cfg gpusim.Config, opts core.Options) (DatasetScaleResult, error) {
	res := DatasetScaleResult{Network: w.Name}
	for _, corpus := range []*dataset.Corpus{w.Train, larger} {
		wc := w
		wc.Train = corpus
		wc.Epochs = 1
		wc.Eval = nil
		cost, err := Cost(lab, wc, cfg, opts)
		if err != nil {
			return DatasetScaleResult{}, err
		}
		run, err := lab.Run(wc, cfg)
		if err != nil {
			return DatasetScaleResult{}, err
		}
		res.Rows = append(res.Rows, DatasetScaleRow{
			Corpus:          corpus.Name,
			Iterations:      cost.EpochIterations,
			UniqueSLs:       len(run.BySL),
			SeqPoints:       cost.NumSeqPoints,
			SerialSpeedup:   cost.SerialSpeedup,
			ParallelSpeedup: cost.ParallelSpeedup,
		})
	}
	return res, nil
}

// Render formats the comparison.
func (r DatasetScaleResult) Render() string {
	t := report.NewTable(
		fmt.Sprintf("Section VI-F (scaling) — %s: larger dataset, larger speedup", r.Network),
		"corpus", "iterations", "unique SLs", "seqpoints", "serial", "parallel").AlignNumeric()
	for _, row := range r.Rows {
		t.AddStringRow(row.Corpus,
			report.Count(row.Iterations),
			report.Count(row.UniqueSLs),
			fmt.Sprintf("%d", row.SeqPoints),
			fmt.Sprintf("%.0fx", row.SerialSpeedup),
			fmt.Sprintf("%.0fx", row.ParallelSpeedup))
	}
	return t.String()
}
