package experiments

import (
	"fmt"

	"seqpoint/internal/gpusim"
	"seqpoint/internal/report"
	"seqpoint/internal/stats"
)

// Fig7Result is the per-iteration sequence-length histogram of one
// workload's training epoch (paper Fig. 7): DS2's is unimodal and
// right-skewed, GNMT's is a decreasing long tail.
type Fig7Result struct {
	Network string
	// Histogram bins the padded SL of every iteration in one epoch.
	Histogram *stats.Histogram
	// UniqueSLs is the number of distinct padded SLs in the epoch.
	UniqueSLs int
	// Iterations is the epoch's iteration count; the paper notes unique
	// SLs can reach half of it (DS2).
	Iterations int
	// SkewRight reports whether the distribution's mean exceeds its
	// median (right skew) — true for DS2, true-but-extreme for GNMT.
	MeanSL, MedianSL float64
}

// Fig7 builds the SL histogram of the workload's first epoch with k bins.
func Fig7(lab *Lab, w Workload, cfg gpusim.Config, bins int) (Fig7Result, error) {
	run, err := lab.Run(w, cfg)
	if err != nil {
		return Fig7Result{}, err
	}
	sls := run.EpochPlans[0].SeqLens
	h, err := stats.NewHistogram(sls, bins)
	if err != nil {
		return Fig7Result{}, err
	}
	fs := make([]float64, len(sls))
	for i, s := range sls {
		fs[i] = float64(s)
	}
	mean, err := stats.Mean(fs)
	if err != nil {
		return Fig7Result{}, err
	}
	median, err := stats.Median(fs)
	if err != nil {
		return Fig7Result{}, err
	}
	return Fig7Result{
		Network:    w.Name,
		Histogram:  h,
		UniqueSLs:  len(stats.UniqueInts(sls)),
		Iterations: len(sls),
		MeanSL:     mean,
		MedianSL:   median,
	}, nil
}

// Render formats the histogram.
func (r Fig7Result) Render() string {
	return fmt.Sprintf("Fig 7 — %s: iteration sequence-length histogram\n%s"+
		"iterations=%d uniqueSLs=%d mean=%.1f median=%.1f\n",
		r.Network, r.Histogram.String(), r.Iterations, r.UniqueSLs, r.MeanSL, r.MedianSL)
}

// Fig9Point is one (sequence length, iteration runtime) sample.
type Fig9Point struct {
	SeqLen int
	TimeUS float64
}

// Fig9Result is the runtime-vs-SL relationship of one workload (paper
// Fig. 9): near-linear, which is what justifies both the contiguous
// binning and the pick-nearest-average representative rule.
type Fig9Result struct {
	Network string
	Points  []Fig9Point
	// Fit is the least-squares line through all (SL, runtime) samples;
	// R2 close to 1 confirms near-linearity.
	Fit stats.LinearFit
}

// Fig9 collects per-unique-SL iteration runtimes and fits a line.
func Fig9(lab *Lab, w Workload, cfg gpusim.Config) (Fig9Result, error) {
	run, err := lab.Run(w, cfg)
	if err != nil {
		return Fig9Result{}, err
	}
	res := Fig9Result{Network: w.Name}
	var xs, ys []float64
	for _, sl := range run.UniqueSLs() {
		t := run.BySL[sl].TimeUS
		res.Points = append(res.Points, Fig9Point{SeqLen: sl, TimeUS: t})
		xs = append(xs, float64(sl))
		ys = append(ys, t)
	}
	fit, err := stats.Fit(xs, ys)
	if err != nil {
		return Fig9Result{}, err
	}
	res.Fit = fit
	return res, nil
}

// Render formats a sampled view of the curve plus the fit quality.
func (r Fig9Result) Render() string {
	t := report.NewTable(
		fmt.Sprintf("Fig 9 — %s: iteration runtime vs sequence length", r.Network),
		"seqlen", "runtime", "bar").AlignNumeric()
	var maxT float64
	for _, p := range r.Points {
		if p.TimeUS > maxT {
			maxT = p.TimeUS
		}
	}
	step := len(r.Points)/12 + 1
	for i := 0; i < len(r.Points); i += step {
		p := r.Points[i]
		t.AddStringRow(fmt.Sprintf("%d", p.SeqLen), report.US(p.TimeUS),
			report.Bar(p.TimeUS, maxT, 30))
	}
	return t.String() + fmt.Sprintf("linear fit: slope=%.3gµs/step intercept=%.3gµs R²=%.4f n=%d\n",
		r.Fit.Slope, r.Fit.Intercept, r.Fit.R2, r.Fit.N)
}
