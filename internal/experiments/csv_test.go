package experiments

import (
	"strings"
	"testing"

	"seqpoint/internal/core"
	"seqpoint/internal/gpusim"
)

// csvLines splits CSV output and asserts a uniform column count.
func csvLines(t *testing.T, csv string) [][]string {
	t.Helper()
	raw := strings.Split(strings.TrimRight(csv, "\n"), "\n")
	rows := make([][]string, len(raw))
	for i, line := range raw {
		rows[i] = strings.Split(line, ",")
		if len(rows[i]) != len(rows[0]) {
			t.Fatalf("row %d has %d columns, header has %d", i, len(rows[i]), len(rows[0]))
		}
	}
	return rows
}

func TestFig3CSV(t *testing.T) {
	lab := NewLab()
	res, err := Fig3(lab, testGNMTWorkload(t), 6, gpusim.VegaFE())
	if err != nil {
		t.Fatal(err)
	}
	rows := csvLines(t, res.CSV())
	if len(rows) != 7 { // header + 6 iterations
		t.Errorf("rows = %d", len(rows))
	}
	if rows[0][1] != "cnn_normalized" {
		t.Errorf("header = %v", rows[0])
	}
}

func TestFig7CSV(t *testing.T) {
	lab := NewLab()
	res, err := Fig7(lab, testDS2Workload(t), gpusim.VegaFE(), 5)
	if err != nil {
		t.Fatal(err)
	}
	rows := csvLines(t, res.CSV())
	if len(rows) != 6 { // header + 5 bins
		t.Errorf("rows = %d", len(rows))
	}
}

func TestFig9CSV(t *testing.T) {
	lab := NewLab()
	res, err := Fig9(lab, testDS2Workload(t), gpusim.VegaFE())
	if err != nil {
		t.Fatal(err)
	}
	rows := csvLines(t, res.CSV())
	if len(rows) != len(res.Points)+1 {
		t.Errorf("rows = %d, points = %d", len(rows), len(res.Points))
	}
}

func TestProjectionCSVs(t *testing.T) {
	lab := NewLab()
	w := testDS2Workload(t)
	cfgs := twoConfigs()

	tp, err := TimeProjection(lab, w, cfgs, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rows := csvLines(t, tp.CSV())
	if len(rows) != 6 { // header + 5 methods
		t.Errorf("time projection rows = %d", len(rows))
	}

	sp, err := SpeedupProjection(lab, w, cfgs, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rows = csvLines(t, sp.CSV())
	if len(rows) != 7 { // header + actual + 5 methods
		t.Errorf("speedup projection rows = %d", len(rows))
	}

	sens, err := Sensitivity(lab, w, cfgs, 6)
	if err != nil {
		t.Fatal(err)
	}
	rows = csvLines(t, sens.CSV())
	if len(rows) < 3 {
		t.Errorf("sensitivity rows = %d", len(rows))
	}
	if (SensitivityResult{}).CSV() != "" {
		t.Error("empty result should render empty CSV")
	}
}
