package experiments

import (
	"fmt"

	"seqpoint/internal/core"
	"seqpoint/internal/gpusim"
	"seqpoint/internal/report"
	"seqpoint/internal/stats"
	"seqpoint/internal/trainer"
)

// PriorWarmupIters is the fixed warm-up the `prior` baseline skips
// before sampling its 50 contiguous iterations (Zhu et al. discard
// framework warm-up and the autotune-heavy start of the run). For DS2,
// whose first epoch is sorted by SL, this lands the sampled window in
// the mid-SL band — the artifact behind prior's selectively low errors
// in the paper's Figs 11 and 14/15 (Section VI-D/E).
const PriorWarmupIters = 150

// MethodSelection pairs a selection strategy with its outcome on the
// calibration configuration.
type MethodSelection struct {
	// Method names the strategy.
	Method core.MethodName
	// Sel is the selection (points, weights, self-projection error).
	Sel core.Selection
	// IterationsProfiled is how many distinct iterations must be
	// profiled per hardware configuration under this strategy.
	IterationsProfiled int
}

// SelectAll runs every strategy of the paper's evaluation over the
// calibration run's first epoch and returns their selections in the
// paper's plotting order (worst, frequent, median, prior, seqpoint).
func SelectAll(calib *trainer.Run, opts core.Options) ([]MethodSelection, error) {
	recs, err := SLRecords(calib, 0)
	if err != nil {
		return nil, err
	}
	epochSLs, err := calib.EpochSLs(0)
	if err != nil {
		return nil, err
	}
	statBySL := make(map[int]float64, len(calib.BySL))
	for sl, p := range calib.BySL {
		statBySL[sl] = p.TimeUS
	}

	// Prior's window is clamped to short epochs: the sample count
	// shrinks before the warm-up does, mirroring how a profiler would
	// still take what it can get from a tiny run.
	count := core.DefaultPriorSampleCount
	if count > len(epochSLs) {
		count = len(epochSLs)
	}
	warmup := PriorWarmupIters
	if warmup+count > len(epochSLs) {
		warmup = len(epochSLs) - count
	}

	var out []MethodSelection
	for _, m := range core.AllMethods() {
		var sel core.Selection
		var err error
		switch m {
		case core.MethodWorst:
			sel, err = core.Worst(recs)
		case core.MethodFrequent:
			sel, err = core.Frequent(recs)
		case core.MethodMedian:
			sel, err = core.Median(recs)
		case core.MethodPrior:
			sel, err = core.Prior(epochSLs, statBySL, warmup, count)
		case core.MethodSeqPoint:
			sel, err = core.Select(recs, opts)
		}
		if err != nil {
			return nil, fmt.Errorf("experiments: %s selection: %w", m, err)
		}
		profiled := len(sel.Points)
		if m == core.MethodPrior {
			profiled = count
		}
		out = append(out, MethodSelection{Method: m, Sel: sel, IterationsProfiled: profiled})
	}
	return out, nil
}

// TimeProjectionResult is the total-training-time projection accuracy of
// every method across hardware configurations: the paper's Fig. 11 (DS2)
// and Fig. 12 (GNMT).
type TimeProjectionResult struct {
	Network string
	Configs []string
	Methods []core.MethodName
	// ErrorPct[m][cfg] is the percent error of method m's projected
	// total training time on config cfg.
	ErrorPct map[core.MethodName]map[string]float64
	// GeomeanPct[m] is the geometric-mean error across configs (the
	// paper's headline: 0.11% DS2 / 0.53% GNMT for SeqPoint).
	GeomeanPct map[core.MethodName]float64
	// SeqPointCount is how many SeqPoints the auto-k loop selected.
	SeqPointCount int
}

// TimeProjection identifies every method's representative iterations on
// config #1 (cfgs[0]) and projects total training time on every config,
// comparing against the simulated full runs.
func TimeProjection(lab *Lab, w Workload, cfgs []gpusim.Config, opts core.Options) (TimeProjectionResult, error) {
	if len(cfgs) == 0 {
		return TimeProjectionResult{}, fmt.Errorf("experiments: no configs")
	}
	runs, err := lab.RunAll(w, cfgs)
	if err != nil {
		return TimeProjectionResult{}, err
	}
	calib := runs[cfgs[0].Name]
	sels, err := SelectAll(calib, opts)
	if err != nil {
		return TimeProjectionResult{}, err
	}

	res := TimeProjectionResult{
		Network:    w.Name,
		ErrorPct:   make(map[core.MethodName]map[string]float64),
		GeomeanPct: make(map[core.MethodName]float64),
	}
	for _, cfg := range cfgs {
		res.Configs = append(res.Configs, cfg.Name)
	}

	for _, ms := range sels {
		res.Methods = append(res.Methods, ms.Method)
		if ms.Method == core.MethodSeqPoint {
			res.SeqPointCount = len(ms.Sel.Points)
		}
		res.ErrorPct[ms.Method] = make(map[string]float64)
		var errs []float64
		for _, cfg := range cfgs {
			run := runs[cfg.Name]
			proj, err := projectRunTrainUS(ms.Sel.Points, run)
			if err != nil {
				return TimeProjectionResult{}, err
			}
			e, err := stats.PercentError(proj, run.TrainUS)
			if err != nil {
				return TimeProjectionResult{}, err
			}
			res.ErrorPct[ms.Method][cfg.Name] = e
			errs = append(errs, nonZeroErr(e))
		}
		gm, err := stats.Geomean(errs)
		if err != nil {
			return TimeProjectionResult{}, err
		}
		res.GeomeanPct[ms.Method] = gm
	}
	return res, nil
}

// projectRunTrainUS projects the run's total training time from the
// selection's points: Equation 1 projects one epoch (weights are
// per-epoch iteration counts), scaled by the epoch count. Epochs share
// one SL multiset (batches are formed over the same sorted corpus), so
// the per-epoch projection extends to the run.
func projectRunTrainUS(points []core.SeqPoint, run *trainer.Run) (float64, error) {
	statBySL := make(map[int]float64, len(run.BySL))
	for sl, p := range run.BySL {
		statBySL[sl] = p.TimeUS
	}
	epochUS, err := core.ProjectTotal(points, statBySL)
	if err != nil {
		return 0, err
	}
	return epochUS * float64(len(run.EpochPlans)), nil
}

// nonZeroErr floors an error at a tiny epsilon so geomeans over
// error sets containing an exact zero stay defined.
func nonZeroErr(e float64) float64 {
	const eps = 1e-6
	if e < eps {
		return eps
	}
	return e
}

// Render formats the method x config error matrix.
func (r TimeProjectionResult) Render() string {
	headers := append([]string{"method"}, r.Configs...)
	headers = append(headers, "geomean")
	t := report.NewTable(
		fmt.Sprintf("Figs 11/12 — %s: error in total training time projection", r.Network),
		headers...).AlignNumeric()
	for _, m := range r.Methods {
		row := []string{string(m)}
		for _, cfg := range r.Configs {
			row = append(row, report.Pct(r.ErrorPct[m][cfg]))
		}
		row = append(row, report.Pct(r.GeomeanPct[m]))
		t.AddStringRow(row...)
	}
	return t.String() + fmt.Sprintf("seqpoints selected: %d\n", r.SeqPointCount)
}

// SpeedupProjectionResult is the accuracy of projecting cross-config
// throughput uplift: the paper's Fig. 15 (DS2) and Fig. 16 (GNMT).
type SpeedupProjectionResult struct {
	Network string
	// Pairs are the config transitions, e.g. "#2 -> #1".
	Pairs []string
	// ActualUpliftPct[pair] is the measured throughput uplift.
	ActualUpliftPct map[string]float64
	Methods         []core.MethodName
	// ErrorPP[m][pair] is |projected - actual| uplift in percentage
	// points.
	ErrorPP map[core.MethodName]map[string]float64
	// GeomeanPP[m] is the geometric-mean error across pairs (paper:
	// 0.13% DS2 / 1.50% GNMT for SeqPoint).
	GeomeanPP map[core.MethodName]float64
}

// SpeedupProjection projects the throughput uplift from every non-
// calibration config to config #1 under each method and compares with
// the simulated truth.
func SpeedupProjection(lab *Lab, w Workload, cfgs []gpusim.Config, opts core.Options) (SpeedupProjectionResult, error) {
	if len(cfgs) < 2 {
		return SpeedupProjectionResult{}, fmt.Errorf("experiments: speedup projection needs >= 2 configs")
	}
	runs, err := lab.RunAll(w, cfgs)
	if err != nil {
		return SpeedupProjectionResult{}, err
	}
	base := runs[cfgs[0].Name]
	sels, err := SelectAll(base, opts)
	if err != nil {
		return SpeedupProjectionResult{}, err
	}

	res := SpeedupProjectionResult{
		Network:         w.Name,
		ActualUpliftPct: make(map[string]float64),
		ErrorPP:         make(map[core.MethodName]map[string]float64),
		GeomeanPP:       make(map[core.MethodName]float64),
	}
	for _, cfg := range cfgs[1:] {
		pair := fmt.Sprintf("%s -> %s", cfg.Name, cfgs[0].Name)
		res.Pairs = append(res.Pairs, pair)
		act, err := core.UpliftPct(base.Throughput(), runs[cfg.Name].Throughput())
		if err != nil {
			return SpeedupProjectionResult{}, err
		}
		res.ActualUpliftPct[pair] = act
	}

	for _, ms := range sels {
		res.Methods = append(res.Methods, ms.Method)
		res.ErrorPP[ms.Method] = make(map[string]float64)
		var errs []float64
		projBase, err := projectThroughput(ms.Sel.Points, base)
		if err != nil {
			return SpeedupProjectionResult{}, err
		}
		for i, cfg := range cfgs[1:] {
			pair := res.Pairs[i]
			projTgt, err := projectThroughput(ms.Sel.Points, runs[cfg.Name])
			if err != nil {
				return SpeedupProjectionResult{}, err
			}
			projUp, err := core.UpliftPct(projBase, projTgt)
			if err != nil {
				return SpeedupProjectionResult{}, err
			}
			d := projUp - res.ActualUpliftPct[pair]
			if d < 0 {
				d = -d
			}
			res.ErrorPP[ms.Method][pair] = d
			errs = append(errs, nonZeroErr(d))
		}
		gm, err := stats.Geomean(errs)
		if err != nil {
			return SpeedupProjectionResult{}, err
		}
		res.GeomeanPP[ms.Method] = gm
	}
	return res, nil
}

// projectThroughput projects training throughput (samples/s) on a run's
// configuration from the selection's points and the per-SL iteration
// times of that run.
func projectThroughput(points []core.SeqPoint, run *trainer.Run) (float64, error) {
	statBySL := make(map[int]float64, len(run.BySL))
	for sl, p := range run.BySL {
		statBySL[sl] = p.TimeUS
	}
	return core.ProjectThroughput(points, statBySL, run.Batch)
}

// Render formats the method x pair error matrix.
func (r SpeedupProjectionResult) Render() string {
	headers := append([]string{"method"}, r.Pairs...)
	headers = append(headers, "geomean")
	t := report.NewTable(
		fmt.Sprintf("Figs 15/16 — %s: error in throughput-uplift projection", r.Network),
		headers...).AlignNumeric()
	actual := []string{"(actual uplift)"}
	for _, p := range r.Pairs {
		actual = append(actual, report.Pct(r.ActualUpliftPct[p]))
	}
	actual = append(actual, "")
	t.AddStringRow(actual...)
	for _, m := range r.Methods {
		row := []string{string(m)}
		for _, p := range r.Pairs {
			row = append(row, report.PP(r.ErrorPP[m][p]))
		}
		row = append(row, report.PP(r.GeomeanPP[m]))
		t.AddStringRow(row...)
	}
	return t.String()
}
