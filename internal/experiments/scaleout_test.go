package experiments

import (
	"strings"
	"testing"

	"seqpoint/internal/gpusim"
)

func scaleOutCluster() gpusim.ClusterConfig {
	return gpusim.ClusterConfig{
		GPUs:          2, // overridden per sweep point
		Topology:      gpusim.TopologyRing,
		LinkGBps:      gpusim.DefaultLinkGBps,
		LinkLatencyUS: gpusim.DefaultLinkLatencyUS,
		Overlap:       gpusim.DefaultOverlap,
	}
}

// TestScaleOutAcceptance is the acceptance sweep of the cluster layer:
// over GNMT and DS2 at {1,2,4,8} GPUs, parallel efficiency must be
// monotonically non-increasing, and the SeqPoint projection on every
// cluster size — including 8 GPUs — must stay within the paper's
// single-GPU error envelope (~5%).
func TestScaleOutAcceptance(t *testing.T) {
	lab := NewLab()
	for _, w := range []Workload{testGNMTWorkload(t), testDS2Workload(t)} {
		res, err := ScaleOut(lab, w, gpusim.VegaFE(), scaleOutCluster(), ScaleOutGPUCounts(), SelectOptions())
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if len(res.Rows) != 4 {
			t.Fatalf("%s: got %d rows, want 4", w.Name, len(res.Rows))
		}
		if res.Rows[0].GPUs != 1 || res.Rows[0].SpeedupX != 1 || res.Rows[0].EfficiencyPct != 100 {
			t.Errorf("%s: 1-GPU row must be the 1x/100%% baseline, got %+v", w.Name, res.Rows[0])
		}
		if res.Rows[0].CommSharePct != 0 {
			t.Errorf("%s: single GPU has no communication, got %v%%", w.Name, res.Rows[0].CommSharePct)
		}
		for i := 1; i < len(res.Rows); i++ {
			prev, cur := res.Rows[i-1], res.Rows[i]
			if cur.EfficiencyPct > prev.EfficiencyPct {
				t.Errorf("%s: efficiency increased from %d GPUs (%.2f%%) to %d GPUs (%.2f%%)",
					w.Name, prev.GPUs, prev.EfficiencyPct, cur.GPUs, cur.EfficiencyPct)
			}
			if cur.ThroughputSPS <= prev.ThroughputSPS {
				t.Errorf("%s: throughput did not grow from %d to %d GPUs (%.1f -> %.1f samples/s)",
					w.Name, prev.GPUs, cur.GPUs, prev.ThroughputSPS, cur.ThroughputSPS)
			}
			if cur.CommSharePct < 0 {
				t.Errorf("%s: negative communication share at %d GPUs", w.Name, cur.GPUs)
			}
			// GNMT's 640 MB gradient cannot hide behind its short
			// iterations; DS2's compute is heavy enough to hide the
			// all-reduce at the default overlap, so no such check there.
			if w.Name == "gnmt" && cur.CommSharePct <= 0 {
				t.Errorf("%s: %d GPUs must expose some communication", w.Name, cur.GPUs)
			}
		}
		for _, row := range res.Rows {
			if row.ProjErrPct > 5 {
				t.Errorf("%s at %d GPUs: projection error %.2f%% exceeds the 5%% envelope",
					w.Name, row.GPUs, row.ProjErrPct)
			}
		}
	}
}

// TestScaleOutMeshBeatsRing asserts the topology model matters end to
// end: at the same link speed a fully-connected node exposes less
// communication than a ring, so its 8-GPU efficiency is at least as
// high.
func TestScaleOutMeshBeatsRing(t *testing.T) {
	lab := NewLab()
	w := testGNMTWorkload(t)

	ringCfg := scaleOutCluster()
	meshCfg := ringCfg
	meshCfg.Topology = gpusim.TopologyFullMesh

	ring, err := ScaleOut(lab, w, gpusim.VegaFE(), ringCfg, []int{1, 8}, SelectOptions())
	if err != nil {
		t.Fatal(err)
	}
	mesh, err := ScaleOut(lab, w, gpusim.VegaFE(), meshCfg, []int{1, 8}, SelectOptions())
	if err != nil {
		t.Fatal(err)
	}
	if mesh.Rows[1].EfficiencyPct < ring.Rows[1].EfficiencyPct {
		t.Errorf("mesh 8-GPU efficiency %.2f%% below ring %.2f%%",
			mesh.Rows[1].EfficiencyPct, ring.Rows[1].EfficiencyPct)
	}
}

// TestScaleOutBaselineIsAlwaysOneGPU: even when 1 is not among the
// swept counts, speedup and efficiency are relative to the 1-GPU
// calibration run, so a 2-GPU row never reports a 1.00x "baseline".
func TestScaleOutBaselineIsAlwaysOneGPU(t *testing.T) {
	lab := NewLab()
	res, err := ScaleOut(lab, testGNMTWorkload(t), gpusim.VegaFE(), scaleOutCluster(), []int{2, 4}, SelectOptions())
	if err != nil {
		t.Fatal(err)
	}
	two := res.Rows[0]
	if two.GPUs != 2 {
		t.Fatalf("first row is %d GPUs, want 2", two.GPUs)
	}
	if two.SpeedupX <= 1 || two.SpeedupX >= 2 {
		t.Errorf("2-GPU speedup vs the 1-GPU baseline = %.2fx, want within (1x, 2x)", two.SpeedupX)
	}
	if two.EfficiencyPct >= 100 {
		t.Errorf("2-GPU efficiency %.2f%% must be below 100%% of the 1-GPU baseline", two.EfficiencyPct)
	}
}

func TestScaleOutRejectsBadInput(t *testing.T) {
	lab := NewLab()
	w := testGNMTWorkload(t)
	if _, err := ScaleOut(lab, w, gpusim.VegaFE(), scaleOutCluster(), nil, SelectOptions()); err == nil {
		t.Error("empty GPU list must error")
	}
	if _, err := ScaleOut(lab, w, gpusim.VegaFE(), scaleOutCluster(), []int{0, 2}, SelectOptions()); err == nil {
		t.Error("non-positive GPU count must error")
	}
}

func TestScaleOutRenderAndCSV(t *testing.T) {
	lab := NewLab()
	res, err := ScaleOut(lab, testGNMTWorkload(t), gpusim.VegaFE(), scaleOutCluster(), []int{1, 2}, SelectOptions())
	if err != nil {
		t.Fatal(err)
	}
	text := res.Render()
	for _, want := range []string{"Scale-out", "gnmt", "efficiency", "1.00x"} {
		if !strings.Contains(text, want) {
			t.Errorf("rendering missing %q:\n%s", want, text)
		}
	}
	csv := res.CSV()
	if !strings.HasPrefix(csv, "gpus,shard_batch,throughput_sps") {
		t.Errorf("CSV header wrong: %q", strings.SplitN(csv, "\n", 2)[0])
	}
	if got := strings.Count(csv, "\n"); got != 3 {
		t.Errorf("CSV has %d lines, want header + 2 rows", got)
	}
}
