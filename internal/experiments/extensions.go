package experiments

import (
	"fmt"

	"seqpoint/internal/core"
	"seqpoint/internal/gpusim"
	"seqpoint/internal/report"
	"seqpoint/internal/stats"
	"seqpoint/internal/trainer"
)

// This file implements the paper's discussion-section extensions:
// Section VII-E (the methodology applies to inference) and the Section
// V-C remark that any statistic that varies with SL can drive the
// selection, plus the multi-dimensional variant of the Section VII-C
// clustering ablation.

// InferenceResult applies the SeqPoint methodology to inference
// characterization (Section VII-E): representative request lengths are
// selected from a serving run on the calibration config and used to
// project serving time on a different config.
type InferenceResult struct {
	Network string
	// Batches and UniqueSLs describe the serving run.
	Batches, UniqueSLs int
	// P50, P90, P99 are per-batch latency percentiles on the
	// calibration config (microseconds) — the spread SeqPoint's SL
	// insight explains.
	P50, P90, P99 float64
	// Points is the number of representative request lengths selected.
	Points int
	// SelfErrPct is the calibration-config self-projection error;
	// CrossErrPct the projection error of total serving time on the
	// target config.
	SelfErrPct, CrossErrPct float64
	// TargetConfig names the projected configuration.
	TargetConfig string
}

// Inference characterizes a serving run of w's model over its training
// corpus lengths (requests look like training inputs) and projects
// cross-config serving time from representative request lengths.
func Inference(w Workload, calib, target gpusim.Config, batch int, opts core.Options) (InferenceResult, error) {
	spec := trainer.InferenceSpec{
		Model:    w.Model,
		Requests: w.Train,
		Batch:    batch,
		Seed:     w.Seed,
	}
	calRun, err := trainer.SimulateInference(spec, calib)
	if err != nil {
		return InferenceResult{}, err
	}

	sums := calRun.SLSummaries()
	recs := make([]core.SLRecord, len(sums))
	for i, s := range sums {
		recs[i] = core.SLRecord{SeqLen: s.SeqLen, Freq: s.Count, Stat: s.IterTimeUS}
	}
	sel, err := core.Select(recs, opts)
	if err != nil {
		return InferenceResult{}, err
	}

	tgtRun, err := trainer.SimulateInference(spec, target)
	if err != nil {
		return InferenceResult{}, err
	}
	proj, err := core.ProjectTotal(sel.Points, tgtRun.LatencyBySL)
	if err != nil {
		return InferenceResult{}, err
	}
	crossErr, err := stats.PercentError(proj, tgtRun.TotalUS)
	if err != nil {
		return InferenceResult{}, err
	}

	p50, p90, p99 := calRun.LatencyPercentiles()
	return InferenceResult{
		Network:      w.Name,
		Batches:      len(calRun.BatchSLs),
		UniqueSLs:    len(calRun.LatencyBySL),
		P50:          p50,
		P90:          p90,
		P99:          p99,
		Points:       len(sel.Points),
		SelfErrPct:   sel.ErrorPct,
		CrossErrPct:  crossErr,
		TargetConfig: target.Name,
	}, nil
}

// Render formats the inference characterization.
func (r InferenceResult) Render() string {
	t := report.NewTable(
		fmt.Sprintf("Section VII-E — %s: inference characterization", r.Network),
		"quantity", "value").Align(1, report.AlignRight)
	t.AddStringRow("batches served", report.Count(r.Batches))
	t.AddStringRow("unique request SLs", report.Count(r.UniqueSLs))
	t.AddStringRow("latency p50/p90/p99",
		fmt.Sprintf("%s / %s / %s", report.US(r.P50), report.US(r.P90), report.US(r.P99)))
	t.AddStringRow("representative SLs", report.Count(r.Points))
	t.AddStringRow("self-projection error", report.Pct(r.SelfErrPct))
	t.AddStringRow(fmt.Sprintf("serving-time error on %s", r.TargetConfig), report.Pct(r.CrossErrPct))
	return t.String()
}

// StatChoiceResult verifies the Section V-C remark that the methodology
// "can use any other statistic that varies with SL": selections driven
// by different statistics all project total training time accurately.
type StatChoiceResult struct {
	Network string
	// ErrPctByStat maps each driving statistic to the cross-config
	// geomean error of its selection's time projection.
	ErrPctByStat map[string]float64
	// PointsByStat maps each statistic to its SeqPoint count.
	PointsByStat map[string]int
}

// statExtractors lists the alternative per-iteration statistics.
var statExtractors = []struct {
	name string
	get  func(run *trainer.Run, sl int) float64
}{
	{"runtime", func(r *trainer.Run, sl int) float64 { return r.BySL[sl].TimeUS }},
	{"valu-insts", func(r *trainer.Run, sl int) float64 { return r.BySL[sl].Counters.VALUInsts }},
	{"dram-reads", func(r *trainer.Run, sl int) float64 { return r.BySL[sl].Counters.LoadBytes }},
}

// StatChoice selects SeqPoints using each candidate statistic and
// measures the resulting runtime-projection accuracy across configs.
func StatChoice(lab *Lab, w Workload, cfgs []gpusim.Config, opts core.Options) (StatChoiceResult, error) {
	runs, err := lab.RunAll(w, cfgs)
	if err != nil {
		return StatChoiceResult{}, err
	}
	calib := runs[cfgs[0].Name]
	sums, err := calib.EpochSummary(0)
	if err != nil {
		return StatChoiceResult{}, err
	}

	res := StatChoiceResult{
		Network:      w.Name,
		ErrPctByStat: make(map[string]float64),
		PointsByStat: make(map[string]int),
	}
	for _, ext := range statExtractors {
		recs := make([]core.SLRecord, len(sums))
		for i, s := range sums {
			recs[i] = core.SLRecord{
				SeqLen: s.SeqLen,
				Freq:   s.Count,
				Stat:   ext.get(calib, s.SeqLen),
			}
		}
		sel, err := core.Select(recs, opts)
		if err != nil {
			return StatChoiceResult{}, fmt.Errorf("experiments: stat %s: %w", ext.name, err)
		}
		res.PointsByStat[ext.name] = len(sel.Points)

		// Regardless of the driving statistic, evaluate what matters:
		// projecting runtime across configurations from the chosen SLs
		// and weights.
		var errs []float64
		for _, cfg := range cfgs {
			run := runs[cfg.Name]
			proj, err := projectRunTrainUS(sel.Points, run)
			if err != nil {
				return StatChoiceResult{}, err
			}
			e, err := stats.PercentError(proj, run.TrainUS)
			if err != nil {
				return StatChoiceResult{}, err
			}
			errs = append(errs, nonZeroErr(e))
		}
		gm, err := stats.Geomean(errs)
		if err != nil {
			return StatChoiceResult{}, err
		}
		res.ErrPctByStat[ext.name] = gm
	}
	return res, nil
}

// Render formats the statistic-choice ablation.
func (r StatChoiceResult) Render() string {
	t := report.NewTable(
		fmt.Sprintf("Section V-C — %s: selection statistic ablation", r.Network),
		"statistic", "seqpoints", "time-projection geomean error").AlignNumeric()
	for _, ext := range statExtractors {
		t.AddStringRow(ext.name,
			fmt.Sprintf("%d", r.PointsByStat[ext.name]),
			report.Pct(r.ErrPctByStat[ext.name]))
	}
	return t.String()
}

// ProfileAblationResult extends the Section VII-C comparison with
// k-means over full multi-counter execution-profile vectors, the exact
// alternative the paper describes ("applied k-means clustering to
// execution profiles of all iterations").
type ProfileAblationResult struct {
	Network string
	K       int
	// Geomean cross-config time-projection errors per scheme.
	BinningErrPct, RuntimeKMeansErrPct, ProfileKMeansErrPct float64
}

// ProfileAblation compares contiguous binning, scalar-runtime k-means,
// and profile-vector k-means at the same k.
func ProfileAblation(lab *Lab, w Workload, cfgs []gpusim.Config, opts core.Options, seed int64) (ProfileAblationResult, error) {
	runs, err := lab.RunAll(w, cfgs)
	if err != nil {
		return ProfileAblationResult{}, err
	}
	calib := runs[cfgs[0].Name]
	recs, err := SLRecords(calib, 0)
	if err != nil {
		return ProfileAblationResult{}, err
	}

	binned, err := core.Select(recs, opts)
	if err != nil {
		return ProfileAblationResult{}, err
	}
	k := binned.Bins
	if k == 0 {
		k = len(binned.Points)
	}
	runtimeKM, err := core.SelectKMeans(recs, k, seed)
	if err != nil {
		return ProfileAblationResult{}, err
	}

	profiles := make(map[int][]float64, len(recs))
	for _, r := range recs {
		p := calib.BySL[r.SeqLen]
		profiles[r.SeqLen] = []float64{
			p.TimeUS,
			p.Counters.VALUInsts,
			p.Counters.LoadBytes,
			p.Counters.MemWriteStallCycles,
		}
	}
	profileKM, err := core.SelectKMeansProfiles(recs, profiles, k, seed)
	if err != nil {
		return ProfileAblationResult{}, err
	}

	res := ProfileAblationResult{Network: w.Name, K: k}
	if res.BinningErrPct, err = crossConfigGeomeanErr(binned, runs, cfgs); err != nil {
		return ProfileAblationResult{}, err
	}
	if res.RuntimeKMeansErrPct, err = crossConfigGeomeanErr(runtimeKM, runs, cfgs); err != nil {
		return ProfileAblationResult{}, err
	}
	if res.ProfileKMeansErrPct, err = crossConfigGeomeanErr(profileKM, runs, cfgs); err != nil {
		return ProfileAblationResult{}, err
	}
	return res, nil
}

// Render formats the three-way ablation.
func (r ProfileAblationResult) Render() string {
	t := report.NewTable(
		fmt.Sprintf("Section VII-C (extended) — %s: clustering schemes (k=%d)", r.Network, r.K),
		"scheme", "cross-config geomean error").AlignNumeric()
	t.AddStringRow("contiguous SL binning", report.Pct(r.BinningErrPct))
	t.AddStringRow("k-means on runtimes", report.Pct(r.RuntimeKMeansErrPct))
	t.AddStringRow("k-means on profile vectors", report.Pct(r.ProfileKMeansErrPct))
	return t.String()
}
