package experiments

import (
	"fmt"

	"seqpoint/internal/gpusim"
	"seqpoint/internal/report"
	"seqpoint/internal/serving"
)

// FleetSweepRow is one (replica count × routing policy) cell's
// serving outcome.
type FleetSweepRow struct {
	// Replicas is the fleet size; Routing the router's name.
	Replicas int
	Routing  string
	// RatePerSec is the offered Poisson rate (LoadFactor × Replicas ×
	// per-replica capacity).
	RatePerSec float64
	// ThroughputRPS is achieved requests per second over the makespan.
	ThroughputRPS float64
	// Rejected counts admission drops; DropPct is their share of the
	// offered trace.
	Rejected int
	DropPct  float64
	// MeanWaitUS is the mean queueing delay of served requests.
	MeanWaitUS float64
	// P50US, P95US and P99US are end-to-end latency percentiles.
	P50US, P95US, P99US float64
	// ReplicaSeconds is the fleet's cost proxy over the run.
	ReplicaSeconds float64
}

// FleetSweepResult is the (replicas × routing) grid of one workload at
// a fixed load factor: the capacity-planning question "how many
// replicas, and does smarter routing buy latency?" answered on one
// seeded trace per fleet size, so routing policies within a row group
// are compared on identical arrivals.
type FleetSweepResult struct {
	// Network is the workload name; Policy the per-replica batching
	// policy.
	Network string
	Policy  string
	// Batch is the policy's max batch; Requests the per-cell trace
	// length; QueueCap the per-replica admission bound.
	Batch    int
	Requests int
	QueueCap int
	// CapacityRPS is the measured per-replica saturation throughput the
	// offered rates scale from; LoadFactor the offered fraction of each
	// fleet's aggregate capacity.
	CapacityRPS float64
	LoadFactor  float64
	// Rows are the grid cells, replicas-major in input order.
	Rows []FleetSweepRow
}

// FleetSweepReplicaCounts is the default fleet-size axis.
func FleetSweepReplicaCounts() []int { return []int{1, 2, 4} }

// FleetSweepRoutings is the default routing axis: the oblivious
// baseline first, then the queue-aware policies.
func FleetSweepRoutings() []string {
	return []string{serving.RoutingRoundRobin, serving.RoutingLeastOutstanding, serving.RoutingJSQ, serving.RoutingPowerOfTwo}
}

// DefaultFleetLoadFactor offers 110% of aggregate capacity: just past
// the knee, where routing quality shows up in the latency tail and the
// bounded queues start dropping.
const DefaultFleetLoadFactor = 1.1

// fleetQueueCapBatches sizes each replica's admission queue in units
// of the batching policy's max batch.
const fleetQueueCapBatches = 8

// FleetSweep sweeps fleet size against routing policy for the workload
// served on cfg, at a fixed fraction of each fleet's aggregate
// capacity. The batching policy, the capacity probe and the
// capacity-scaled rate construction are shared with LoadSweep; every
// fleet size serves one seeded trace, reused across routing policies.
func FleetSweep(lab *Lab, w Workload, cfg gpusim.Config, requests int, replicaCounts []int, routings []string, loadFactor float64) (FleetSweepResult, error) {
	if requests <= 0 {
		requests = DefaultServeRequests
	}
	if len(replicaCounts) == 0 {
		return FleetSweepResult{}, fmt.Errorf("experiments: fleet sweep needs at least one replica count")
	}
	for _, n := range replicaCounts {
		if n < 1 {
			return FleetSweepResult{}, fmt.Errorf("experiments: fleet sweep replica count %d, want >= 1", n)
		}
	}
	if len(routings) == 0 {
		return FleetSweepResult{}, fmt.Errorf("experiments: fleet sweep needs at least one routing policy")
	}
	if err := ValidateLoadFactors([]float64{loadFactor}); err != nil {
		return FleetSweepResult{}, err
	}
	eng := lab.Engine()
	policy, err := servingPolicy(eng, w, cfg)
	if err != nil {
		return FleetSweepResult{}, err
	}
	capacity, err := measureCapacity(eng, w, cfg, policy, requests)
	if err != nil {
		return FleetSweepResult{}, err
	}
	res := FleetSweepResult{
		Network:     w.Name,
		Policy:      policy.Name(),
		Batch:       w.Batch,
		Requests:    requests,
		QueueCap:    fleetQueueCapBatches * w.Batch,
		CapacityRPS: capacity,
		LoadFactor:  loadFactor,
	}
	for _, n := range replicaCounts {
		// One rate per fleet size: loadFactor × the fleet's aggregate
		// capacity, through the same grid construction LoadSweep uses.
		_, rates, err := ScaledRates(capacity*float64(n), []float64{loadFactor})
		if err != nil {
			return FleetSweepResult{}, err
		}
		rate := rates[0]
		trace, err := serving.PoissonTrace(w.Train, requests, rate, w.Seed)
		if err != nil {
			return FleetSweepResult{}, err
		}
		for _, routing := range routings {
			router, err := serving.ParseRouting(routing, w.Seed)
			if err != nil {
				return FleetSweepResult{}, err
			}
			run, err := serving.SimulateFleet(serving.FleetSpec{
				Model:    w.Model,
				Trace:    trace,
				Policy:   policy,
				Router:   router,
				Replicas: n,
				QueueCap: res.QueueCap,
				Profiles: eng,
			}, cfg)
			if err != nil {
				return FleetSweepResult{}, fmt.Errorf("experiments: fleet sweep %s ×%d %s: %w", w.Name, n, routing, err)
			}
			sum := run.Summary()
			res.Rows = append(res.Rows, FleetSweepRow{
				Replicas:       n,
				Routing:        routing,
				RatePerSec:     rate,
				ThroughputRPS:  sum.ThroughputRPS,
				Rejected:       sum.Rejected,
				DropPct:        sum.DropRatePct,
				MeanWaitUS:     sum.MeanWaitUS,
				P50US:          sum.P50LatencyUS,
				P95US:          sum.P95LatencyUS,
				P99US:          sum.P99LatencyUS,
				ReplicaSeconds: sum.ReplicaSeconds,
			})
		}
	}
	return res, nil
}

// Render formats the replicas × routing grid.
func (r FleetSweepResult) Render() string {
	t := report.NewTable(
		fmt.Sprintf("Fleet sweep — %s: %s per replica, %.2fx aggregate capacity (≈ %.0f req/s each), queue cap %d",
			r.Network, r.Policy, r.LoadFactor, r.CapacityRPS, r.QueueCap),
		"replicas", "routing", "req/s", "served/s", "drop", "mean wait", "p50", "p95", "p99", "replica-s").AlignNumeric()
	for _, row := range r.Rows {
		t.AddStringRow(
			fmt.Sprintf("%d", row.Replicas),
			row.Routing,
			fmt.Sprintf("%.0f", row.RatePerSec),
			fmt.Sprintf("%.0f", row.ThroughputRPS),
			report.Pct(row.DropPct),
			report.US(row.MeanWaitUS),
			report.US(row.P50US),
			report.US(row.P95US),
			report.US(row.P99US),
			fmt.Sprintf("%.2f", row.ReplicaSeconds))
	}
	return t.String()
}

// CSV renders the grid for external plotting.
func (r FleetSweepResult) CSV() string {
	t := report.NewTable("", "replicas", "routing", "rate_rps", "throughput_rps", "rejected",
		"drop_pct", "mean_wait_us", "p50_us", "p95_us", "p99_us", "replica_seconds")
	for _, row := range r.Rows {
		t.AddStringRow(
			fmt.Sprintf("%d", row.Replicas),
			row.Routing,
			fmt.Sprintf("%.6f", row.RatePerSec),
			fmt.Sprintf("%.6f", row.ThroughputRPS),
			fmt.Sprintf("%d", row.Rejected),
			fmt.Sprintf("%.6f", row.DropPct),
			fmt.Sprintf("%.6f", row.MeanWaitUS),
			fmt.Sprintf("%.6f", row.P50US),
			fmt.Sprintf("%.6f", row.P95US),
			fmt.Sprintf("%.6f", row.P99US),
			fmt.Sprintf("%.6f", row.ReplicaSeconds))
	}
	return t.CSV()
}
