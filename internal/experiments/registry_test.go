package experiments

import (
	"strings"
	"testing"
)

// TestWorkloadRegistry pins the shared model registry the CLI and the
// HTTP service both resolve names through: every trainable model
// resolves, every servable model resolves, and cnn is trainable but
// explicitly not servable.
func TestWorkloadRegistry(t *testing.T) {
	trainable := []string{"ds2", "gnmt", "transformer", "seq2seq", "cnn"}
	for _, name := range trainable {
		w, err := WorkloadByName(name, DefaultSeed)
		if err != nil {
			t.Fatalf("WorkloadByName(%q): %v", name, err)
		}
		if w.Name != name || w.Model == nil || w.Train == nil {
			t.Errorf("WorkloadByName(%q) returned incomplete workload %+v", name, w)
		}
	}
	if _, err := WorkloadByName("bert", DefaultSeed); err == nil {
		t.Error("unknown model should error")
	}

	for _, name := range trainable[:4] {
		if _, err := ServedWorkloadByName(name, DefaultSeed); err != nil {
			t.Errorf("ServedWorkloadByName(%q): %v", name, err)
		}
	}
	_, err := ServedWorkloadByName("cnn", DefaultSeed)
	if err == nil || !strings.Contains(err.Error(), "training/characterization only") {
		t.Errorf("cnn must be rejected for serving with an explanation, got %v", err)
	}
	if _, err := ServedWorkloadByName("bert", DefaultSeed); err == nil {
		t.Error("unknown served model should error")
	}
}
