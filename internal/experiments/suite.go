package experiments

import (
	"fmt"
	"io"

	"seqpoint/internal/core"
	"seqpoint/internal/dataset"
	"seqpoint/internal/gpusim"
	"seqpoint/internal/report"
)

// Suite bundles everything needed to regenerate the paper's evaluation:
// the two SQNN workloads, the Table II hardware configurations, and the
// selection options.
type Suite struct {
	Lab     *Lab
	DS2     Workload
	GNMT    Workload
	Configs []gpusim.Config
	Opts    core.Options
	// BaseCluster is the interconnect used by the scale-out experiment
	// (its GPUs field is overridden per sweep point); ScaleGPUs the
	// cluster sizes swept.
	BaseCluster gpusim.ClusterConfig
	ScaleGPUs   []int
}

// NewSuite builds the default paper-evaluation suite.
func NewSuite(seed int64) *Suite {
	return &Suite{
		Lab:         NewLab(),
		DS2:         DS2Workload(seed),
		GNMT:        GNMTWorkload(seed),
		Configs:     gpusim.TableII(),
		Opts:        SelectOptions(),
		BaseCluster: gpusim.DefaultCluster(2),
		ScaleGPUs:   ScaleOutGPUCounts(),
	}
}

// Workloads returns the two SQNN workloads in paper order (DS2, GNMT).
func (s *Suite) Workloads() []Workload { return []Workload{s.DS2, s.GNMT} }

// Calib returns the calibration configuration (config #1).
func (s *Suite) Calib() gpusim.Config { return s.Configs[0] }

// Paper-specific sequence lengths used by the characterization figures.
// GNMT's Fig. 8 SLs are quoted in the paper (87, 89, 192, 197); the
// Fig. 5/6 pairs contrast a short and a long iteration.
var (
	fig5GNMTPairs = [][2]int{{40, 160}, {80, 200}}
	fig5DS2Pairs  = [][2]int{{150, 350}, {300, 450}}
	fig6GNMTSLs   = []int{3, 180}
	fig6DS2SLs    = []int{70, 450}
	fig8GNMTSLs   = []int{87, 89, 192, 197}
)

// RenderTableII formats the hardware configurations.
func RenderTableII(cfgs []gpusim.Config) string {
	t := report.NewTable("Table II — hardware configurations",
		"config", "GCLK", "#CU", "L1 $", "L2 $").AlignNumeric()
	for _, c := range cfgs {
		t.AddStringRow(c.Name,
			fmt.Sprintf("%.3g GHz", c.ClockGHz),
			fmt.Sprintf("%d", c.NumCUs),
			fmt.Sprintf("%d KB", c.L1KBPerCU),
			fmt.Sprintf("%d MB", c.L2MB))
	}
	return t.String()
}

// RunAll executes every experiment of the paper's evaluation in figure
// order, writing each rendering to w as it completes. It returns the
// first error encountered.
func (s *Suite) RunAll(w io.Writer) error {
	calib := s.Calib()

	emit := func(name string, render func() (string, error)) error {
		fmt.Fprint(w, report.Section(name))
		out, err := render()
		if err != nil {
			return fmt.Errorf("experiments: %s: %w", name, err)
		}
		fmt.Fprint(w, out)
		return nil
	}

	if err := emit("Table II", func() (string, error) {
		return RenderTableII(s.Configs), nil
	}); err != nil {
		return err
	}

	if err := emit("Fig 3", func() (string, error) {
		r, err := Fig3(s.Lab, s.GNMT, 12, calib)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	}); err != nil {
		return err
	}

	if err := emit("Fig 4", func() (string, error) {
		r, err := Fig4(s.Lab, s.Workloads(), 4, calib)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	}); err != nil {
		return err
	}

	if err := emit("Table I", func() (string, error) {
		var out string
		for _, tc := range []struct {
			w        Workload
			sl1, sl2 int
		}{
			{s.GNMT, 94, 9},
			{s.DS2, 400, 120},
		} {
			r, err := TableI(tc.w.Model, tc.w.Batch, tc.sl1, tc.sl2)
			if err != nil {
				return "", err
			}
			out += r.Render()
		}
		return out, nil
	}); err != nil {
		return err
	}

	if err := emit("Fig 5", func() (string, error) {
		var out string
		for _, tc := range []struct {
			w     Workload
			pairs [][2]int
		}{
			{s.GNMT, fig5GNMTPairs},
			{s.DS2, fig5DS2Pairs},
		} {
			r, err := Fig5(s.Lab, tc.w, calib, tc.pairs)
			if err != nil {
				return "", err
			}
			out += r.Render()
		}
		return out, nil
	}); err != nil {
		return err
	}

	if err := emit("Fig 6", func() (string, error) {
		var out string
		for _, tc := range []struct {
			w   Workload
			sls []int
		}{
			{s.GNMT, fig6GNMTSLs},
			{s.DS2, fig6DS2SLs},
		} {
			r, err := Fig6(s.Lab, tc.w, calib, tc.sls)
			if err != nil {
				return "", err
			}
			out += r.Render()
		}
		return out, nil
	}); err != nil {
		return err
	}

	if err := emit("Fig 7", func() (string, error) {
		var out string
		for _, w := range s.Workloads() {
			r, err := Fig7(s.Lab, w, calib, 10)
			if err != nil {
				return "", err
			}
			out += r.Render()
		}
		return out, nil
	}); err != nil {
		return err
	}

	if err := emit("Fig 8", func() (string, error) {
		r, err := Fig6(s.Lab, s.GNMT, calib, fig8GNMTSLs)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	}); err != nil {
		return err
	}

	if err := emit("Fig 9", func() (string, error) {
		var out string
		for _, w := range []Workload{s.GNMT, s.DS2} {
			r, err := Fig9(s.Lab, w, calib)
			if err != nil {
				return "", err
			}
			out += r.Render()
		}
		return out, nil
	}); err != nil {
		return err
	}

	for _, w := range s.Workloads() {
		w := w
		if err := emit(fmt.Sprintf("Figs 11/12 (%s)", w.Name), func() (string, error) {
			r, err := TimeProjection(s.Lab, w, s.Configs, s.Opts)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}); err != nil {
			return err
		}
	}

	for _, w := range []Workload{s.GNMT, s.DS2} {
		w := w
		if err := emit(fmt.Sprintf("Figs 13/14 (%s)", w.Name), func() (string, error) {
			r, err := Sensitivity(s.Lab, w, s.Configs, 12)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}); err != nil {
			return err
		}
	}

	for _, w := range s.Workloads() {
		w := w
		if err := emit(fmt.Sprintf("Figs 15/16 (%s)", w.Name), func() (string, error) {
			r, err := SpeedupProjection(s.Lab, w, s.Configs, s.Opts)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}); err != nil {
			return err
		}
	}

	if err := emit("Section VI-F", func() (string, error) {
		var out string
		for _, w := range s.Workloads() {
			r, err := Cost(s.Lab, w, calib, s.Opts)
			if err != nil {
				return "", err
			}
			out += r.Render()
		}
		return out, nil
	}); err != nil {
		return err
	}

	if err := emit("Section VII-C", func() (string, error) {
		var out string
		for _, w := range s.Workloads() {
			r, err := Ablation(s.Lab, w, s.Configs, s.Opts, w.Seed)
			if err != nil {
				return "", err
			}
			out += r.Render()
		}
		return out, nil
	}); err != nil {
		return err
	}

	if err := emit("Section VII-C (extended)", func() (string, error) {
		var out string
		for _, w := range s.Workloads() {
			r, err := ProfileAblation(s.Lab, w, s.Configs, s.Opts, w.Seed)
			if err != nil {
				return "", err
			}
			out += r.Render()
		}
		return out, nil
	}); err != nil {
		return err
	}

	if err := emit("Section V-C (statistic choice)", func() (string, error) {
		var out string
		for _, w := range s.Workloads() {
			r, err := StatChoice(s.Lab, w, s.Configs, s.Opts)
			if err != nil {
				return "", err
			}
			out += r.Render()
		}
		return out, nil
	}); err != nil {
		return err
	}

	if err := emit("Section VII-E (inference)", func() (string, error) {
		var out string
		for _, w := range s.Workloads() {
			r, err := Inference(w, s.Configs[0], s.Configs[1], w.Batch, s.Opts)
			if err != nil {
				return "", err
			}
			out += r.Render()
		}
		return out, nil
	}); err != nil {
		return err
	}

	if err := emit("Section V-A (batch size)", func() (string, error) {
		r, err := BatchSize(s.Lab, s.GNMT, calib, []int{16, 32, 64, 128}, s.Opts)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	}); err != nil {
		return err
	}

	if err := emit("Section V-C (threshold sweep)", func() (string, error) {
		var out string
		for _, w := range s.Workloads() {
			r, err := ThresholdSweep(s.Lab, w, calib, []float64{5, 1, 0.5, 0.1, 0.01})
			if err != nil {
				return "", err
			}
			out += r.Render()
		}
		return out, nil
	}); err != nil {
		return err
	}

	if err := emit("Roofline decomposition", func() (string, error) {
		var out string
		for _, w := range s.Workloads() {
			r, err := BoundShares(s.Lab, w, calib, 6)
			if err != nil {
				return "", err
			}
			out += r.Render()
		}
		return out, nil
	}); err != nil {
		return err
	}

	if err := emit("Scale-out (multi-GPU data parallelism)", func() (string, error) {
		var out string
		for _, w := range s.Workloads() {
			r, err := ScaleOut(s.Lab, w, calib, s.BaseCluster, s.ScaleGPUs, s.Opts)
			if err != nil {
				return "", err
			}
			out += r.Render()
		}
		return out, nil
	}); err != nil {
		return err
	}

	if err := emit("Online serving (load sweep)", func() (string, error) {
		var out string
		for _, w := range s.Workloads() {
			r, err := LoadSweep(s.Lab, w, calib, DefaultServeRequests, LoadSweepFactors())
			if err != nil {
				return "", err
			}
			out += r.Render()
		}
		return out, nil
	}); err != nil {
		return err
	}

	if err := emit("Fleet serving (replicas × routing)", func() (string, error) {
		var out string
		for _, w := range s.Workloads() {
			r, err := FleetSweep(s.Lab, w, calib, DefaultServeRequests,
				FleetSweepReplicaCounts(), FleetSweepRoutings(), DefaultFleetLoadFactor)
			if err != nil {
				return "", err
			}
			out += r.Render()
		}
		return out, nil
	}); err != nil {
		return err
	}

	if err := emit("Memory-aware serving (KV capacity sweep)", func() (string, error) {
		var out string
		for _, w := range s.Workloads() {
			r, err := KVSweep(s.Lab, w, calib, DefaultServeRequests,
				KVSweepCapacitiesGB(), DefaultKVLoadFactor)
			if err != nil {
				return "", err
			}
			out += r.Render()
		}
		return out, nil
	}); err != nil {
		return err
	}

	if err := emit("Capacity planner (SLO → minimal fleet)", func() (string, error) {
		var out string
		for _, w := range s.Workloads() {
			r, err := PlanSweep(s.Lab, w, calib, DefaultServeRequests, PlanSweepBudgets())
			if err != nil {
				return "", err
			}
			out += r.Render()
		}
		return out, nil
	}); err != nil {
		return err
	}

	if err := emit("Multi-tenant serving (FIFO starvation vs weighted-fair batching)", func() (string, error) {
		var out string
		for _, w := range s.Workloads() {
			r, err := TenantSweep(s.Lab, w, calib, DefaultServeRequests, DefaultTenantLoadFactor)
			if err != nil {
				return "", err
			}
			out += r.Render()
		}
		return out, nil
	}); err != nil {
		return err
	}

	if err := emit("Section VI-F (dataset scaling)", func() (string, error) {
		var out string
		for _, tc := range []struct {
			w      Workload
			larger func(int64) *dataset.Corpus
		}{
			{s.DS2, dataset.LibriSpeech500h},
			{s.GNMT, dataset.WMT16},
		} {
			r, err := DatasetScale(s.Lab, tc.w, tc.larger(tc.w.Seed), calib, s.Opts)
			if err != nil {
				return "", err
			}
			out += r.Render()
		}
		return out, nil
	}); err != nil {
		return err
	}

	return nil
}
