package experiments

import (
	"fmt"
	"sort"

	"seqpoint/internal/engine"
	"seqpoint/internal/gpusim"
	"seqpoint/internal/models"
	"seqpoint/internal/profiler"
	"seqpoint/internal/report"
	"seqpoint/internal/stats"
	"seqpoint/internal/tensor"
)

// Fig3Result is the CNN-vs-RNN iteration-homogeneity contrast (paper
// Fig. 3): per-iteration runtimes, normalized to each network's maximum,
// for a window of training iterations. CNN bars are flat; SQNN bars vary.
type Fig3Result struct {
	// Iterations is the number of sampled iterations per network.
	Iterations int
	// CNN and RNN hold the normalized per-iteration runtimes.
	CNN, RNN []float64
	// CNNSpreadPct and RNNSpreadPct are (max-min)/mean in percent.
	CNNSpreadPct, RNNSpreadPct float64
}

// Fig3 samples `n` evenly spaced iterations from one epoch of the CNN
// and the SQNN workload and compares their runtime variation.
func Fig3(lab *Lab, sqnn Workload, n int, cfg gpusim.Config) (Fig3Result, error) {
	if n <= 0 {
		return Fig3Result{}, fmt.Errorf("experiments: fig3 needs a positive sample count, got %d", n)
	}
	cnnRun, err := lab.Run(CNNWorkload(sqnn.Seed), cfg)
	if err != nil {
		return Fig3Result{}, err
	}
	rnnRun, err := lab.Run(sqnn, cfg)
	if err != nil {
		return Fig3Result{}, err
	}

	cnnTimes, err := sampleIterTimes(cnnRun.EpochPlans[0].SeqLens, cnnRun.BySL, n)
	if err != nil {
		return Fig3Result{}, err
	}
	rnnTimes, err := sampleIterTimes(rnnRun.EpochPlans[0].SeqLens, rnnRun.BySL, n)
	if err != nil {
		return Fig3Result{}, err
	}

	res := Fig3Result{Iterations: n}
	if res.CNN, err = stats.Normalize(cnnTimes); err != nil {
		return Fig3Result{}, err
	}
	if res.RNN, err = stats.Normalize(rnnTimes); err != nil {
		return Fig3Result{}, err
	}
	if res.CNNSpreadPct, err = stats.Spread(cnnTimes); err != nil {
		return Fig3Result{}, err
	}
	if res.RNNSpreadPct, err = stats.Spread(rnnTimes); err != nil {
		return Fig3Result{}, err
	}
	return res, nil
}

// sampleIterTimes picks n evenly spaced iterations from the epoch's
// execution order and returns their runtimes.
func sampleIterTimes(seqLens []int, bySL map[int]profiler.IterationProfile, n int) ([]float64, error) {
	if len(seqLens) < n {
		return nil, fmt.Errorf("experiments: epoch has %d iterations, need %d", len(seqLens), n)
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		sl := seqLens[i*len(seqLens)/n]
		p, ok := bySL[sl]
		if !ok {
			return nil, fmt.Errorf("experiments: no profile for SL %d", sl)
		}
		out[i] = p.TimeUS
	}
	return out, nil
}

// Render formats the result as two bar charts.
func (r Fig3Result) Render() string {
	t := report.NewTable("Fig 3 — normalized per-iteration runtime (CNN vs SQNN)",
		"iteration", "cnn", "cnn bar", "sqnn", "sqnn bar").AlignNumeric()
	for i := range r.CNN {
		t.AddStringRow(fmt.Sprintf("%d", i),
			fmt.Sprintf("%.3f", r.CNN[i]), report.Bar(r.CNN[i], 1, 20),
			fmt.Sprintf("%.3f", r.RNN[i]), report.Bar(r.RNN[i], 1, 20))
	}
	return t.String() + fmt.Sprintf("spread: cnn %.1f%%, sqnn %.1f%%\n", r.CNNSpreadPct, r.RNNSpreadPct)
}

// Fig4Counter names the hardware counters the experiment compares,
// matching the paper's Fig. 4 metrics.
type Fig4Counter string

// The three Fig. 4 counters.
const (
	CounterMemWriteStalls Fig4Counter = "mem-write-stalls"
	CounterVALUInsts      Fig4Counter = "valu-insts"
	CounterLoadData       Fig4Counter = "load-data-size"
)

// Fig4Row is one network's counter variation across sampled iterations.
type Fig4Row struct {
	// Network is the workload name.
	Network string
	// SeqLens are the sampled iterations' sequence lengths.
	SeqLens []int
	// Normalized maps each counter to per-iteration values scaled to the
	// iteration average (the paper normalizes to the mean across ops).
	Normalized map[Fig4Counter][]float64
	// SpreadPct maps each counter to its (max-min)/mean spread; the
	// paper quotes ~24-27% for these.
	SpreadPct map[Fig4Counter]float64
}

// Fig4Result holds the architectural-counter variation of both SQNNs.
type Fig4Result struct {
	Rows []Fig4Row
}

// Fig4 profiles `n` spread-out iterations of each workload on cfg and
// compares their aggregate hardware counters.
func Fig4(lab *Lab, workloads []Workload, n int, cfg gpusim.Config) (Fig4Result, error) {
	var res Fig4Result
	for _, w := range workloads {
		run, err := lab.Run(w, cfg)
		if err != nil {
			return Fig4Result{}, err
		}
		sls := spreadSLs(run.UniqueSLs(), n)
		row := Fig4Row{
			Network:    w.Name,
			SeqLens:    sls,
			Normalized: make(map[Fig4Counter][]float64),
			SpreadPct:  make(map[Fig4Counter]float64),
		}
		// The paper's Fig. 4 plots counters averaged across all of an
		// iteration's operations — per-kernel means, not iteration
		// totals — which is what the ~24-27% spreads refer to.
		raw := map[Fig4Counter][]float64{}
		for _, sl := range sls {
			p := run.BySL[sl]
			n := float64(p.NumKernels)
			raw[CounterMemWriteStalls] = append(raw[CounterMemWriteStalls], p.Counters.MemWriteStallCycles/n)
			raw[CounterVALUInsts] = append(raw[CounterVALUInsts], p.Counters.VALUInsts/n)
			raw[CounterLoadData] = append(raw[CounterLoadData], p.Counters.LoadBytes/n)
		}
		for c, vals := range raw {
			norm, err := stats.Normalize(vals)
			if err != nil {
				return Fig4Result{}, err
			}
			row.Normalized[c] = norm
			if row.SpreadPct[c], err = stats.Spread(vals); err != nil {
				return Fig4Result{}, err
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// spreadSLs picks n sequence lengths evenly spread over the sorted
// unique-SL list (including both extremes when possible).
func spreadSLs(sorted []int, n int) []int {
	if n >= len(sorted) {
		return append([]int(nil), sorted...)
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		idx := i * (len(sorted) - 1) / (n - 1)
		if n == 1 {
			idx = len(sorted) / 2
		}
		out[i] = sorted[idx]
	}
	return out
}

// Render formats per-network counter spreads.
func (r Fig4Result) Render() string {
	var out string
	for _, row := range r.Rows {
		t := report.NewTable(
			fmt.Sprintf("Fig 4 — %s: normalized counters across iterations", row.Network),
			"counter", "spread", "per-iteration (normalized)").AlignNumeric()
		for _, c := range []Fig4Counter{CounterMemWriteStalls, CounterVALUInsts, CounterLoadData} {
			vals := ""
			for i, v := range row.Normalized[c] {
				if i > 0 {
					vals += " "
				}
				vals += fmt.Sprintf("%.2f", v)
			}
			t.AddStringRow(string(c), report.Pct(row.SpreadPct[c]), vals)
		}
		out += t.String()
	}
	return out
}

// TableIRow is one GEMM operation's dimensions at two sequence lengths
// (paper Table I): the M and K dimensions are fixed by the network; N
// varies with the iteration's sequence length.
type TableIRow struct {
	Network string
	Op      string
	M, K    int
	// N1 and N2 are the N dimensions at the two sampled SLs.
	N1, N2 int
	// SL1 and SL2 are the sampled sequence lengths.
	SL1, SL2 int
}

// TableIResult holds the classifier-GEMM shape comparison.
type TableIResult struct {
	Rows []TableIRow
}

// TableI extracts the classifier GEMM (GEMM-a: forward; GEMM-b: weight
// gradient) of each model at two sequence lengths and reports how the
// input-dependent dimension differs — the paper's Table I.
func TableI(m models.Model, batch, sl1, sl2 int) (TableIResult, error) {
	var res TableIResult
	for _, spec := range []struct {
		op    string
		label string
	}{
		{"GEMM-a", "classifier"},
		{"GEMM-b", "classifier_dgrad"},
	} {
		g1, err := findGEMM(m, batch, sl1, spec.label)
		if err != nil {
			return TableIResult{}, err
		}
		g2, err := findGEMM(m, batch, sl2, spec.label)
		if err != nil {
			return TableIResult{}, err
		}
		if g1.M != g2.M || g1.K != g2.K {
			return TableIResult{}, fmt.Errorf(
				"experiments: %s %s changed fixed dims across SLs: %dx%d vs %dx%d",
				m.Name(), spec.label, g1.M, g1.K, g2.M, g2.K)
		}
		res.Rows = append(res.Rows, TableIRow{
			Network: m.Name(), Op: spec.op,
			M: g1.M, K: g1.K, N1: g1.N, N2: g2.N, SL1: sl1, SL2: sl2,
		})
	}
	return res, nil
}

// findGEMM locates the first GEMM with the given label in an iteration's
// op stream.
func findGEMM(m models.Model, batch, seqLen int, label string) (tensor.GEMM, error) {
	for _, op := range m.IterationOps(batch, seqLen) {
		if g, ok := op.(tensor.GEMM); ok && g.Label == label {
			return g, nil
		}
	}
	return tensor.GEMM{}, fmt.Errorf("experiments: model %s has no GEMM labeled %q", m.Name(), label)
}

// Render formats Table I.
func (r TableIResult) Render() string {
	t := report.NewTable("Table I — GEMM dimensions across two iterations",
		"network", "op", "M", "K", "N (sl-1)", "N (sl-2)").AlignNumeric()
	for _, row := range r.Rows {
		t.AddStringRow(row.Network, row.Op,
			report.Count(row.M), report.Count(row.K),
			report.Count(row.N1), report.Count(row.N2))
	}
	return t.String()
}

// profileAt profiles one training iteration of w's model at the given SL
// on cfg (used by experiments that need iterations outside a full run),
// served through the shared engine so repeats across experiments hit
// the process-wide cache.
func profileAt(w Workload, cfg gpusim.Config, sl int) (profiler.IterationProfile, error) {
	return engine.Shared().Profile(cfg, w.Model, w.Batch, sl, engine.PhaseTrain)
}

// nearestSLs returns, for each requested SL, the nearest SL that actually
// occurs in the run (experiments ask for paper-specific SLs like 87/89
// that a seeded corpus may not hit exactly).
func nearestSLs(available []int, wanted []int) []int {
	sorted := append([]int(nil), available...)
	sort.Ints(sorted)
	out := make([]int, len(wanted))
	for i, w := range wanted {
		best, bestD := sorted[0], absInt(sorted[0]-w)
		for _, s := range sorted[1:] {
			if d := absInt(s - w); d < bestD {
				best, bestD = s, d
			}
		}
		out[i] = best
	}
	return out
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
