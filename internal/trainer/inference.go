package trainer

import (
	"fmt"
	"sort"

	"seqpoint/internal/dataset"
	"seqpoint/internal/gpusim"
	"seqpoint/internal/models"
)

// InferenceSpec describes a simulated inference (serving) run: forward-
// only passes over a request corpus. The paper's Section VII-E observes
// that SeqPoint's insight — sequence length dictates per-request work —
// applies to inference too; this simulator provides the per-SL latency
// log that the same binning methodology consumes.
type InferenceSpec struct {
	// Model is the network to serve.
	Model models.Model
	// Requests is the request corpus (each sample one request).
	Requests *dataset.Corpus
	// Batch is the serving batch size; latency-sensitive deployments
	// often use 1, throughput-oriented ones larger batches.
	Batch int
	// Seed drives request-order shuffling.
	Seed int64
	// Profiles overrides the profile source for this run; nil uses the
	// process default (see Spec.Profiles).
	Profiles ProfileSource
}

// Validate reports whether the spec is complete.
func (s InferenceSpec) Validate() error {
	switch {
	case s.Model == nil:
		return fmt.Errorf("trainer: inference spec needs a model")
	case s.Requests == nil:
		return fmt.Errorf("trainer: inference spec needs a request corpus")
	case s.Batch <= 0:
		return fmt.Errorf("trainer: inference batch must be positive, got %d", s.Batch)
	}
	return nil
}

// InferenceRun is a simulated serving run over the request corpus.
type InferenceRun struct {
	// Config is the hardware configuration.
	Config gpusim.Config
	// LatencyBySL memoizes the per-batch forward latency per unique
	// padded SL.
	LatencyBySL map[int]float64
	// BatchSLs is the padded SL of each served batch, in order.
	BatchSLs []int
	// TotalUS is the summed serving time.
	TotalUS float64
	// Batch is the serving batch size.
	Batch int
}

// SimulateInference serves one pass over the request corpus on hw,
// batching requests as they arrive (shuffled order — serving traffic is
// not length-sorted) and padding each batch to its longest request.
func SimulateInference(spec InferenceSpec, hw gpusim.Config) (*InferenceRun, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if err := hw.Validate(); err != nil {
		return nil, err
	}
	src := spec.Profiles
	if src == nil {
		src = DefaultProfileSource()
	}
	plan, err := dataset.PlanEpoch(spec.Requests, spec.Batch, dataset.OrderShuffled, spec.Seed)
	if err != nil {
		return nil, err
	}
	profiles, err := src.EvalProfiles(hw, gpusim.SingleGPU(), spec.Model, spec.Batch, uniqueSLs([]dataset.EpochPlan{plan}))
	if err != nil {
		return nil, err
	}

	run := &InferenceRun{
		Config:      hw,
		LatencyBySL: make(map[int]float64),
		BatchSLs:    plan.SeqLens,
		Batch:       spec.Batch,
	}
	for _, sl := range plan.SeqLens {
		lat, ok := run.LatencyBySL[sl]
		if !ok {
			p, ok := profiles[sl]
			if !ok {
				return nil, fmt.Errorf("trainer: profile source returned no eval profile for SL %d", sl)
			}
			lat = p.TimeUS
			run.LatencyBySL[sl] = lat
		}
		run.TotalUS += lat
	}
	return run, nil
}

// Requests returns the number of requests served.
func (r *InferenceRun) Requests() int { return len(r.BatchSLs) * r.Batch }

// Throughput returns serving throughput in requests per second.
func (r *InferenceRun) Throughput() float64 {
	if r.TotalUS == 0 {
		return 0
	}
	return float64(r.Requests()) / (r.TotalUS / 1e6)
}

// LatencyPercentiles returns the p50, p90 and p99 per-batch latency in
// microseconds over the serving run — the tail metrics SL heterogeneity
// distorts when inference is characterized from arbitrary requests.
func (r *InferenceRun) LatencyPercentiles() (p50, p90, p99 float64) {
	if len(r.BatchSLs) == 0 {
		return 0, 0, 0
	}
	lats := make([]float64, len(r.BatchSLs))
	for i, sl := range r.BatchSLs {
		lats[i] = r.LatencyBySL[sl]
	}
	sort.Float64s(lats)
	at := func(q float64) float64 {
		i := int(q * float64(len(lats)-1))
		return lats[i]
	}
	return at(0.50), at(0.90), at(0.99)
}

// SLSummaries returns the per-unique-SL request log — frequency and
// latency — the SeqPoint mechanism consumes to pick representative
// request lengths for inference characterization (Section VII-E).
func (r *InferenceRun) SLSummaries() []SLSummary {
	counts := make(map[int]int)
	for _, sl := range r.BatchSLs {
		counts[sl]++
	}
	out := make([]SLSummary, 0, len(counts))
	for sl, c := range counts {
		out = append(out, SLSummary{SeqLen: sl, Count: c, IterTimeUS: r.LatencyBySL[sl]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].SeqLen < out[j].SeqLen })
	return out
}
