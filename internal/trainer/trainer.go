// Package trainer simulates complete SQNN training runs: multiple
// epochs of per-iteration execution (priced by the GPU model), the
// per-epoch evaluation phase, and the first-epoch autotune overhead.
// Its output — per-iteration runtimes keyed by sequence length, plus
// whole-run totals — is both the ground truth the evaluation compares
// against ("full training run" measurements) and the single-epoch log
// the SeqPoint mechanism starts from (Fig. 10, step 1).
//
// The simulation exploits the paper's key observation 4/5: with
// pad-to-max batching and no data-dependent optimizations, every
// iteration with the same padded sequence length performs identical
// work, so profiles are memoized per unique SL. This is a property of
// the modeled system, not an approximation.
package trainer

import (
	"fmt"
	"sync"

	"seqpoint/internal/dataset"
	"seqpoint/internal/gpusim"
	"seqpoint/internal/models"
	"seqpoint/internal/profiler"
)

// ProfileSource supplies per-unique-SL step profiles to the simulator.
// It is the seam through which a process-wide engine (see
// internal/engine) can dedupe and parallelize profiling across runs;
// the direct source computes each profile in place. Implementations
// must be deterministic: the profile returned for a (config, cluster,
// model, batch, SL) tuple may not depend on call order or concurrency.
// `batch` is always the global minibatch; sources derive the per-GPU
// shard from the cluster configuration.
type ProfileSource interface {
	// TrainProfiles returns one training-step profile per requested
	// sequence length (per-GPU forward + backward + optimizer, plus the
	// exposed gradient all-reduce on multi-GPU clusters).
	TrainProfiles(hw gpusim.Config, cl gpusim.ClusterConfig, m models.Model, batch int, seqLens []int) (map[int]profiler.IterationProfile, error)
	// EvalProfiles returns one forward-only evaluation profile per
	// requested sequence length, computed on the per-GPU shard batch.
	EvalProfiles(hw gpusim.Config, cl gpusim.ClusterConfig, m models.Model, batch int, seqLens []int) (map[int]profiler.IterationProfile, error)
}

// directSource prices every requested profile in place, sequentially —
// the engine-free fallback with no cross-run reuse.
type directSource struct{}

func (directSource) TrainProfiles(hw gpusim.Config, cl gpusim.ClusterConfig, m models.Model, batch int, seqLens []int) (map[int]profiler.IterationProfile, error) {
	return directProfiles(hw, cl, m, batch, seqLens, profiler.ProfileStep)
}

func (directSource) EvalProfiles(hw gpusim.Config, cl gpusim.ClusterConfig, m models.Model, batch int, seqLens []int) (map[int]profiler.IterationProfile, error) {
	return directProfiles(hw, cl, m, batch, seqLens, profiler.ProfileEvalStep)
}

func directProfiles(hw gpusim.Config, cl gpusim.ClusterConfig, m models.Model, batch int, seqLens []int,
	profile func(*gpusim.Simulator, gpusim.ClusterConfig, models.Model, int, int) (profiler.IterationProfile, error),
) (map[int]profiler.IterationProfile, error) {
	sim, err := gpusim.New(hw)
	if err != nil {
		return nil, err
	}
	out := make(map[int]profiler.IterationProfile, len(seqLens))
	for _, sl := range seqLens {
		if _, ok := out[sl]; ok {
			continue
		}
		p, err := profile(sim, cl, m, batch, sl)
		if err != nil {
			return nil, err
		}
		out[sl] = p
	}
	return out, nil
}

// DirectProfileSource returns the sequential, uncached profile source.
func DirectProfileSource() ProfileSource { return directSource{} }

var (
	defaultSourceMu sync.RWMutex
	defaultSource   ProfileSource = directSource{}
)

// SetDefaultProfileSource installs the source Simulate uses when
// Spec.Profiles is nil. internal/engine registers its shared engine
// here at init, so any binary linking the engine profiles through the
// process-wide cache by default.
func SetDefaultProfileSource(s ProfileSource) {
	defaultSourceMu.Lock()
	defer defaultSourceMu.Unlock()
	if s == nil {
		s = directSource{}
	}
	defaultSource = s
}

// DefaultProfileSource returns the source Simulate uses when
// Spec.Profiles is nil.
func DefaultProfileSource() ProfileSource {
	defaultSourceMu.RLock()
	defer defaultSourceMu.RUnlock()
	return defaultSource
}

// Spec describes a training run to simulate.
type Spec struct {
	// Model is the network to train.
	Model models.Model
	// Train is the training corpus; Eval the held-out evaluation corpus
	// run after every epoch (nil to skip evaluation).
	Train *dataset.Corpus
	Eval  *dataset.Corpus
	// Batch is the minibatch size (64 for both paper workloads).
	Batch int
	// Epochs is the number of training epochs to simulate.
	Epochs int
	// Schedule is the per-epoch sample-ordering policy.
	Schedule dataset.Schedule
	// Seed drives all shuffling.
	Seed int64
	// Cluster describes the data-parallel multi-GPU set-up. The zero
	// value (and any single-GPU spelling) trains on one GPU with no
	// communication term, exactly as before the cluster layer existed.
	Cluster gpusim.ClusterConfig
	// Profiles overrides the profile source for this run; nil uses the
	// process default (the shared engine when internal/engine is linked,
	// otherwise direct sequential profiling). Either way the simulated
	// results are identical; only profiling cost and reuse differ.
	Profiles ProfileSource
}

// Validate reports whether the spec is complete.
func (s Spec) Validate() error {
	switch {
	case s.Model == nil:
		return fmt.Errorf("trainer: spec needs a model")
	case s.Train == nil:
		return fmt.Errorf("trainer: spec needs a training corpus")
	case s.Batch <= 0:
		return fmt.Errorf("trainer: batch size must be positive, got %d", s.Batch)
	case s.Epochs <= 0:
		return fmt.Errorf("trainer: epoch count must be positive, got %d", s.Epochs)
	}
	return s.Cluster.Validate()
}

// Run is a simulated training run on one hardware configuration
// (optionally a data-parallel cluster of them).
type Run struct {
	// Config is the per-GPU hardware configuration the run executed on.
	Config gpusim.Config
	// Cluster is the normalized data-parallel configuration.
	Cluster gpusim.ClusterConfig
	// EpochPlans holds the realized iteration order of every epoch.
	EpochPlans []dataset.EpochPlan
	// BySL memoizes the training-step profile per unique padded SL. On
	// a multi-GPU cluster each profile prices the per-GPU shard compute
	// plus the exposed all-reduce (profile.CommUS).
	BySL map[int]profiler.IterationProfile
	// TrainUS is the summed wall-clock time of all training steps,
	// including exposed gradient communication.
	TrainUS float64
	// CommUS is the exposed gradient-communication share of TrainUS
	// (zero on a single GPU).
	CommUS float64
	// EvalUS is the summed runtime of all evaluation phases.
	EvalUS float64
	// AutotuneUS is the one-time kernel-selection overhead.
	AutotuneUS float64
	// Iterations is the total training-step count.
	Iterations int
	// Samples is the total number of training samples processed.
	Samples int
	// Batch is the global minibatch size.
	Batch int
}

// TotalUS is the end-to-end run time: training + evaluation + autotune.
func (r *Run) TotalUS() float64 { return r.TrainUS + r.EvalUS + r.AutotuneUS }

// Throughput is training throughput in samples/s over training
// iterations — the speedup metric of Section VI-C.
func (r *Run) Throughput() float64 {
	if r.TrainUS == 0 {
		return 0
	}
	return float64(r.Samples) / (r.TrainUS / 1e6)
}

// Simulate runs the full training described by spec on hw.
//
// Profiling goes through the spec's ProfileSource: the unique sequence
// lengths of the whole run are profiled up front (the source may fan
// them out or serve them from a cross-run cache), then the run is
// aggregated sequentially in plan order. The aggregation order never
// depends on the source or its concurrency, so results are
// byte-identical to the engine-free sequential path.
func Simulate(spec Spec, hw gpusim.Config) (*Run, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	// The simulator here prices only the autotune trials; iteration
	// profiles come from the source. Building it also validates hw
	// before any profiling work starts.
	sim, err := gpusim.New(hw)
	if err != nil {
		return nil, err
	}
	src := spec.Profiles
	if src == nil {
		src = DefaultProfileSource()
	}
	cl := spec.Cluster.Normalized()
	plans, err := dataset.PlanTraining(spec.Train, spec.Batch, spec.Epochs, spec.Schedule, spec.Seed)
	if err != nil {
		return nil, err
	}

	profiles, err := src.TrainProfiles(hw, cl, spec.Model, spec.Batch, uniqueSLs(plans))
	if err != nil {
		return nil, err
	}

	// The evaluation pass is identical every epoch — same corpus, batch
	// and seed yield the same plan, and profiles depend on nothing else —
	// so it is priced once and charged per epoch.
	var evalOnceUS float64
	if spec.Eval != nil {
		evalOnceUS, err = evalEpochUS(src, spec, hw, cl)
		if err != nil {
			return nil, err
		}
	}

	run := &Run{
		Config:     hw,
		Cluster:    cl,
		EpochPlans: plans,
		BySL:       make(map[int]profiler.IterationProfile, len(profiles)),
		Batch:      spec.Batch,
	}
	// Autotune runs once per replica, concurrently on every GPU against
	// the shard-batch shapes, so the cluster pays it once at shard size.
	shardBatch := cl.ShardBatch(spec.Batch)
	tunedShapes := make(map[string]bool)

	for _, plan := range plans {
		for _, sl := range plan.SeqLens {
			p, ok := run.BySL[sl]
			if !ok {
				p, ok = profiles[sl]
				if !ok {
					return nil, fmt.Errorf("trainer: profile source returned no profile for SL %d", sl)
				}
				run.BySL[sl] = p
				run.AutotuneUS += profiler.AutotuneUS(sim, spec.Model, shardBatch, sl, tunedShapes)
			}
			run.TrainUS += p.TimeUS
			run.CommUS += p.CommUS
			run.Iterations++
			run.Samples += spec.Batch
		}
		if spec.Eval != nil {
			run.EvalUS += evalOnceUS
		}
	}
	return run, nil
}

// SimulateCluster runs the full training described by spec on a
// data-parallel cluster of hw replicas: a convenience wrapper that pins
// the spec's cluster configuration before simulating.
func SimulateCluster(spec Spec, hw gpusim.Config, cl gpusim.ClusterConfig) (*Run, error) {
	spec.Cluster = cl
	return Simulate(spec, hw)
}

// uniqueSLs returns the distinct sequence lengths of the plans in
// first-encounter order.
func uniqueSLs(plans []dataset.EpochPlan) []int {
	seen := make(map[int]bool)
	var out []int
	for _, plan := range plans {
		for _, sl := range plan.SeqLens {
			if !seen[sl] {
				seen[sl] = true
				out = append(out, sl)
			}
		}
	}
	return out
}

// evalEpochUS prices one pass over the evaluation corpus (forward only,
// bucketed batching, deterministic order, sharded across the cluster).
func evalEpochUS(src ProfileSource, spec Spec, hw gpusim.Config, cl gpusim.ClusterConfig) (float64, error) {
	plan, err := dataset.PlanEpoch(spec.Eval, spec.Batch, dataset.OrderBucketed, spec.Seed)
	if err != nil {
		return 0, err
	}
	profiles, err := src.EvalProfiles(hw, cl, spec.Model, spec.Batch, uniqueSLs([]dataset.EpochPlan{plan}))
	if err != nil {
		return 0, err
	}
	var us float64
	for _, sl := range plan.SeqLens {
		p, ok := profiles[sl]
		if !ok {
			return 0, fmt.Errorf("trainer: profile source returned no eval profile for SL %d", sl)
		}
		us += p.TimeUS
	}
	return us, nil
}
