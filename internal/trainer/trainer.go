// Package trainer simulates complete SQNN training runs: multiple
// epochs of per-iteration execution (priced by the GPU model), the
// per-epoch evaluation phase, and the first-epoch autotune overhead.
// Its output — per-iteration runtimes keyed by sequence length, plus
// whole-run totals — is both the ground truth the evaluation compares
// against ("full training run" measurements) and the single-epoch log
// the SeqPoint mechanism starts from (Fig. 10, step 1).
//
// The simulation exploits the paper's key observation 4/5: with
// pad-to-max batching and no data-dependent optimizations, every
// iteration with the same padded sequence length performs identical
// work, so profiles are memoized per unique SL. This is a property of
// the modeled system, not an approximation.
package trainer

import (
	"fmt"

	"seqpoint/internal/dataset"
	"seqpoint/internal/gpusim"
	"seqpoint/internal/models"
	"seqpoint/internal/profiler"
)

// Spec describes a training run to simulate.
type Spec struct {
	// Model is the network to train.
	Model models.Model
	// Train is the training corpus; Eval the held-out evaluation corpus
	// run after every epoch (nil to skip evaluation).
	Train *dataset.Corpus
	Eval  *dataset.Corpus
	// Batch is the minibatch size (64 for both paper workloads).
	Batch int
	// Epochs is the number of training epochs to simulate.
	Epochs int
	// Schedule is the per-epoch sample-ordering policy.
	Schedule dataset.Schedule
	// Seed drives all shuffling.
	Seed int64
}

// Validate reports whether the spec is complete.
func (s Spec) Validate() error {
	switch {
	case s.Model == nil:
		return fmt.Errorf("trainer: spec needs a model")
	case s.Train == nil:
		return fmt.Errorf("trainer: spec needs a training corpus")
	case s.Batch <= 0:
		return fmt.Errorf("trainer: batch size must be positive, got %d", s.Batch)
	case s.Epochs <= 0:
		return fmt.Errorf("trainer: epoch count must be positive, got %d", s.Epochs)
	}
	return nil
}

// Run is a simulated training run on one hardware configuration.
type Run struct {
	// Config is the hardware configuration the run executed on.
	Config gpusim.Config
	// EpochPlans holds the realized iteration order of every epoch.
	EpochPlans []dataset.EpochPlan
	// BySL memoizes the training-iteration profile per unique padded SL.
	BySL map[int]profiler.IterationProfile
	// TrainUS is the summed runtime of all training iterations.
	TrainUS float64
	// EvalUS is the summed runtime of all evaluation phases.
	EvalUS float64
	// AutotuneUS is the one-time kernel-selection overhead.
	AutotuneUS float64
	// Iterations is the total training-iteration count.
	Iterations int
	// Samples is the total number of training samples processed.
	Samples int
	// Batch is the minibatch size.
	Batch int
}

// TotalUS is the end-to-end run time: training + evaluation + autotune.
func (r *Run) TotalUS() float64 { return r.TrainUS + r.EvalUS + r.AutotuneUS }

// Throughput is training throughput in samples/s over training
// iterations — the speedup metric of Section VI-C.
func (r *Run) Throughput() float64 {
	if r.TrainUS == 0 {
		return 0
	}
	return float64(r.Samples) / (r.TrainUS / 1e6)
}

// Simulate runs the full training described by spec on hw.
func Simulate(spec Spec, hw gpusim.Config) (*Run, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	sim, err := gpusim.New(hw)
	if err != nil {
		return nil, err
	}
	plans, err := dataset.PlanTraining(spec.Train, spec.Batch, spec.Epochs, spec.Schedule, spec.Seed)
	if err != nil {
		return nil, err
	}

	run := &Run{
		Config:     hw,
		EpochPlans: plans,
		BySL:       make(map[int]profiler.IterationProfile),
		Batch:      spec.Batch,
	}
	tunedShapes := make(map[string]bool)

	for _, plan := range plans {
		for _, sl := range plan.SeqLens {
			p, ok := run.BySL[sl]
			if !ok {
				p, err = profiler.ProfileIteration(sim, spec.Model, spec.Batch, sl)
				if err != nil {
					return nil, err
				}
				run.BySL[sl] = p
				run.AutotuneUS += profiler.AutotuneUS(sim, spec.Model, spec.Batch, sl, tunedShapes)
			}
			run.TrainUS += p.TimeUS
			run.Iterations++
			run.Samples += spec.Batch
		}
		if spec.Eval != nil {
			evalUS, err := evalEpochUS(sim, spec, run)
			if err != nil {
				return nil, err
			}
			run.EvalUS += evalUS
		}
	}
	return run, nil
}

// evalEpochUS prices one pass over the evaluation corpus (forward only,
// bucketed batching, deterministic order).
func evalEpochUS(sim *gpusim.Simulator, spec Spec, run *Run) (float64, error) {
	plan, err := dataset.PlanEpoch(spec.Eval, spec.Batch, dataset.OrderBucketed, spec.Seed)
	if err != nil {
		return 0, err
	}
	memo := make(map[int]float64)
	var us float64
	for _, sl := range plan.SeqLens {
		t, ok := memo[sl]
		if !ok {
			p, err := profiler.ProfileEval(sim, spec.Model, spec.Batch, sl)
			if err != nil {
				return 0, err
			}
			t = p.TimeUS
			memo[sl] = t
		}
		us += t
	}
	return us, nil
}
