package trainer

import (
	"math"
	"testing"

	"seqpoint/internal/dataset"
	"seqpoint/internal/gpusim"
	"seqpoint/internal/models"
)

func tinyInferenceSpec(t *testing.T) InferenceSpec {
	t.Helper()
	lengths := make([]int, 96)
	for i := range lengths {
		lengths[i] = 10 + (i*13)%70
	}
	c, err := dataset.Synthetic("requests", lengths, 100)
	if err != nil {
		t.Fatal(err)
	}
	return InferenceSpec{
		Model:    models.NewDS2(),
		Requests: c,
		Batch:    8,
		Seed:     1,
	}
}

func TestInferenceSpecValidate(t *testing.T) {
	good := tinyInferenceSpec(t)
	if err := good.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	bad := []func(*InferenceSpec){
		func(s *InferenceSpec) { s.Model = nil },
		func(s *InferenceSpec) { s.Requests = nil },
		func(s *InferenceSpec) { s.Batch = 0 },
	}
	for i, mut := range bad {
		s := tinyInferenceSpec(t)
		mut(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("mutation %d should invalidate", i)
		}
	}
}

func TestSimulateInferenceAccounting(t *testing.T) {
	spec := tinyInferenceSpec(t)
	run, err := SimulateInference(spec, gpusim.VegaFE())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(run.BatchSLs), 96/8; got != want {
		t.Errorf("batches = %d, want %d", got, want)
	}
	if run.Requests() != 96 {
		t.Errorf("requests = %d", run.Requests())
	}
	if run.TotalUS <= 0 || run.Throughput() <= 0 {
		t.Error("serving time and throughput must be positive")
	}
	var sum float64
	for _, sl := range run.BatchSLs {
		sum += run.LatencyBySL[sl]
	}
	if math.Abs(sum-run.TotalUS) > 1e-6*run.TotalUS {
		t.Errorf("TotalUS %v != per-batch sum %v", run.TotalUS, sum)
	}
}

func TestInferenceCheaperThanTraining(t *testing.T) {
	spec := tinyInferenceSpec(t)
	inf, err := SimulateInference(spec, gpusim.VegaFE())
	if err != nil {
		t.Fatal(err)
	}
	train, err := Simulate(Spec{
		Model:    spec.Model,
		Train:    spec.Requests,
		Batch:    spec.Batch,
		Epochs:   1,
		Schedule: dataset.DS2Schedule(),
		Seed:     1,
	}, gpusim.VegaFE())
	if err != nil {
		t.Fatal(err)
	}
	if inf.TotalUS >= train.TrainUS {
		t.Errorf("forward-only serving (%v) should be cheaper than training (%v)",
			inf.TotalUS, train.TrainUS)
	}
}

func TestInferenceLatencyPercentiles(t *testing.T) {
	spec := tinyInferenceSpec(t)
	run, err := SimulateInference(spec, gpusim.VegaFE())
	if err != nil {
		t.Fatal(err)
	}
	p50, p90, p99 := run.LatencyPercentiles()
	if !(p50 <= p90 && p90 <= p99) {
		t.Errorf("percentiles not monotone: %v %v %v", p50, p90, p99)
	}
	if p50 <= 0 {
		t.Error("p50 must be positive")
	}
	// Heterogeneous request lengths produce a latency tail.
	if p99 <= p50 {
		t.Error("SL heterogeneity should spread the latency distribution")
	}
	empty := &InferenceRun{}
	if a, b, c := empty.LatencyPercentiles(); a != 0 || b != 0 || c != 0 {
		t.Error("empty run percentiles")
	}
}

func TestInferenceSLSummaries(t *testing.T) {
	spec := tinyInferenceSpec(t)
	run, err := SimulateInference(spec, gpusim.VegaFE())
	if err != nil {
		t.Fatal(err)
	}
	sums := run.SLSummaries()
	if len(sums) != len(run.LatencyBySL) {
		t.Error("summary should cover every unique SL")
	}
	var total int
	for i, s := range sums {
		total += s.Count
		if s.IterTimeUS != run.LatencyBySL[s.SeqLen] {
			t.Errorf("SL %d latency mismatch", s.SeqLen)
		}
		if i > 0 && sums[i].SeqLen <= sums[i-1].SeqLen {
			t.Error("summaries not sorted")
		}
	}
	if total != len(run.BatchSLs) {
		t.Errorf("summary counts %d != batches %d", total, len(run.BatchSLs))
	}
}

func TestInferenceSlowerConfigSlower(t *testing.T) {
	spec := tinyInferenceSpec(t)
	cfgs := gpusim.TableII()
	fast, err := SimulateInference(spec, cfgs[0])
	if err != nil {
		t.Fatal(err)
	}
	slow, err := SimulateInference(spec, cfgs[1])
	if err != nil {
		t.Fatal(err)
	}
	if slow.TotalUS <= fast.TotalUS {
		t.Error("852 MHz should serve slower than 1.6 GHz")
	}
}

func TestSimulateInferenceRejectsInvalid(t *testing.T) {
	spec := tinyInferenceSpec(t)
	spec.Batch = -1
	if _, err := SimulateInference(spec, gpusim.VegaFE()); err == nil {
		t.Error("invalid spec should error")
	}
	if _, err := SimulateInference(tinyInferenceSpec(t), gpusim.Config{}); err == nil {
		t.Error("invalid config should error")
	}
}
