package trainer

import (
	"testing"

	"seqpoint/internal/dataset"
	"seqpoint/internal/gpusim"
	"seqpoint/internal/models"
	"seqpoint/internal/profiler"
)

// countingSource wraps the direct source and records every bulk call.
type countingSource struct {
	trainCalls, evalCalls int
	trainSLs, evalSLs     int
}

func (c *countingSource) TrainProfiles(hw gpusim.Config, cl gpusim.ClusterConfig, m models.Model, batch int, sls []int) (map[int]profiler.IterationProfile, error) {
	c.trainCalls++
	c.trainSLs += len(sls)
	return directSource{}.TrainProfiles(hw, cl, m, batch, sls)
}

func (c *countingSource) EvalProfiles(hw gpusim.Config, cl gpusim.ClusterConfig, m models.Model, batch int, sls []int) (map[int]profiler.IterationProfile, error) {
	c.evalCalls++
	c.evalSLs += len(sls)
	return directSource{}.EvalProfiles(hw, cl, m, batch, sls)
}

func sourceSpec(t *testing.T) Spec {
	t.Helper()
	lengths := make([]int, 64)
	for i := range lengths {
		lengths[i] = 10 + (i*7)%40
	}
	train, err := dataset.Synthetic("src-train", lengths, 100)
	if err != nil {
		t.Fatal(err)
	}
	eval, err := dataset.Synthetic("src-eval", lengths[:32], 100)
	if err != nil {
		t.Fatal(err)
	}
	return Spec{
		Model:    models.NewGNMT(),
		Train:    train,
		Eval:     eval,
		Batch:    8,
		Epochs:   3,
		Schedule: dataset.GNMTSchedule(),
		Seed:     2,
	}
}

// TestSimulateUsesSpecSource asserts the seam is honored and that the
// eval phase is profiled once per run, not once per epoch: same corpus,
// batch and seed yield an identical eval pass every epoch.
func TestSimulateUsesSpecSource(t *testing.T) {
	src := &countingSource{}
	spec := sourceSpec(t)
	spec.Profiles = src

	run, err := Simulate(spec, gpusim.VegaFE())
	if err != nil {
		t.Fatal(err)
	}
	if src.trainCalls != 1 {
		t.Errorf("train profiling fanned out in %d bulk calls, want 1", src.trainCalls)
	}
	if src.evalCalls != 1 {
		t.Errorf("eval phase profiled %d times for %d epochs, want exactly 1", src.evalCalls, spec.Epochs)
	}
	if src.trainSLs != len(run.BySL) {
		t.Errorf("requested %d train SLs, run holds %d unique SLs", src.trainSLs, len(run.BySL))
	}
	if run.EvalUS <= 0 {
		t.Error("eval time missing")
	}
}

// TestSimulateSourceMatchesDefault asserts the custom-source run is
// byte-identical to the default path.
func TestSimulateSourceMatchesDefault(t *testing.T) {
	spec := sourceSpec(t)
	base, err := Simulate(spec, gpusim.VegaFE())
	if err != nil {
		t.Fatal(err)
	}
	spec.Profiles = &countingSource{}
	wrapped, err := Simulate(spec, gpusim.VegaFE())
	if err != nil {
		t.Fatal(err)
	}
	if base.TotalUS() != wrapped.TotalUS() || base.TrainUS != wrapped.TrainUS ||
		base.EvalUS != wrapped.EvalUS || base.AutotuneUS != wrapped.AutotuneUS {
		t.Error("custom source changed simulated results")
	}
}

func TestSetDefaultProfileSourceNilResets(t *testing.T) {
	orig := DefaultProfileSource()
	defer SetDefaultProfileSource(orig)

	src := &countingSource{}
	SetDefaultProfileSource(src)
	if DefaultProfileSource() != ProfileSource(src) {
		t.Fatal("default source not installed")
	}
	SetDefaultProfileSource(nil)
	if _, ok := DefaultProfileSource().(directSource); !ok {
		t.Error("nil must reset the default to the direct source")
	}
}
