package trainer

import (
	"math"
	"testing"

	"seqpoint/internal/dataset"
	"seqpoint/internal/gpusim"
	"seqpoint/internal/models"
)

// tinyCorpus builds a small deterministic corpus so full simulations stay
// fast in tests.
func tinyCorpus(t *testing.T, n, maxLen int) *dataset.Corpus {
	t.Helper()
	lengths := make([]int, n)
	for i := range lengths {
		lengths[i] = i%maxLen + 10
	}
	c, err := dataset.Synthetic("tiny", lengths, 100)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func tinySpec(t *testing.T) Spec {
	return Spec{
		Model:    models.NewDS2(),
		Train:    tinyCorpus(t, 128, 80),
		Batch:    16,
		Epochs:   2,
		Schedule: dataset.DS2Schedule(),
		Seed:     1,
	}
}

func TestSpecValidate(t *testing.T) {
	good := tinySpec(t)
	if err := good.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	bad := []func(*Spec){
		func(s *Spec) { s.Model = nil },
		func(s *Spec) { s.Train = nil },
		func(s *Spec) { s.Batch = 0 },
		func(s *Spec) { s.Epochs = 0 },
	}
	for i, mut := range bad {
		s := tinySpec(t)
		mut(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("mutation %d should invalidate the spec", i)
		}
	}
}

func TestSimulateBasicAccounting(t *testing.T) {
	spec := tinySpec(t)
	run, err := Simulate(spec, gpusim.VegaFE())
	if err != nil {
		t.Fatal(err)
	}
	wantIters := (128 / 16) * 2
	if run.Iterations != wantIters {
		t.Errorf("iterations = %d, want %d", run.Iterations, wantIters)
	}
	if run.Samples != wantIters*16 {
		t.Errorf("samples = %d", run.Samples)
	}
	if run.TrainUS <= 0 {
		t.Error("training time must be positive")
	}
	if run.EvalUS != 0 {
		t.Error("no eval corpus, no eval time")
	}
	if run.AutotuneUS <= 0 {
		t.Error("first epoch must pay autotune")
	}
	if got := run.TotalUS(); math.Abs(got-(run.TrainUS+run.EvalUS+run.AutotuneUS)) > 1e-9 {
		t.Errorf("TotalUS = %v", got)
	}
	if run.Throughput() <= 0 {
		t.Error("throughput must be positive")
	}
}

func TestSimulateTrainTimeIsSumOfIterations(t *testing.T) {
	spec := tinySpec(t)
	run, err := Simulate(spec, gpusim.VegaFE())
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, plan := range run.EpochPlans {
		for _, sl := range plan.SeqLens {
			sum += run.BySL[sl].TimeUS
		}
	}
	if math.Abs(sum-run.TrainUS) > 1e-6*run.TrainUS {
		t.Errorf("TrainUS %v != per-iteration sum %v", run.TrainUS, sum)
	}
}

func TestSimulateWithEval(t *testing.T) {
	spec := tinySpec(t)
	spec.Eval = tinyCorpus(t, 64, 60)
	run, err := Simulate(spec, gpusim.VegaFE())
	if err != nil {
		t.Fatal(err)
	}
	if run.EvalUS <= 0 {
		t.Error("eval corpus should add eval time")
	}
	// The paper: evaluation is a small fraction of training (2-3% for
	// full corpora; generously bounded here).
	if run.EvalUS > run.TrainUS {
		t.Errorf("eval %v exceeds training %v", run.EvalUS, run.TrainUS)
	}
}

func TestSimulateMemoizesBySL(t *testing.T) {
	spec := tinySpec(t)
	run, err := Simulate(spec, gpusim.VegaFE())
	if err != nil {
		t.Fatal(err)
	}
	uniq := map[int]bool{}
	for _, plan := range run.EpochPlans {
		for _, sl := range plan.SeqLens {
			uniq[sl] = true
		}
	}
	if len(run.BySL) != len(uniq) {
		t.Errorf("BySL has %d entries, epoch plans have %d unique SLs", len(run.BySL), len(uniq))
	}
	for sl, p := range run.BySL {
		if p.SeqLen != sl {
			t.Errorf("BySL[%d] profiles SL %d", sl, p.SeqLen)
		}
	}
}

func TestSimulateDeterministic(t *testing.T) {
	spec := tinySpec(t)
	a, err := Simulate(spec, gpusim.VegaFE())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(spec, gpusim.VegaFE())
	if err != nil {
		t.Fatal(err)
	}
	if a.TrainUS != b.TrainUS || a.AutotuneUS != b.AutotuneUS {
		t.Error("simulation must be deterministic")
	}
}

func TestSimulateSlowerConfigSlower(t *testing.T) {
	spec := tinySpec(t)
	cfgs := gpusim.TableII()
	fast, err := Simulate(spec, cfgs[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range cfgs[1:] {
		slow, err := Simulate(spec, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if slow.TrainUS <= fast.TrainUS {
			t.Errorf("config %s should be slower than #1", cfg.Name)
		}
		if slow.Throughput() >= fast.Throughput() {
			t.Errorf("config %s throughput should be below #1", cfg.Name)
		}
	}
}

func TestSimulateRejectsInvalid(t *testing.T) {
	spec := tinySpec(t)
	spec.Batch = 0
	if _, err := Simulate(spec, gpusim.VegaFE()); err == nil {
		t.Error("invalid spec should error")
	}
	spec = tinySpec(t)
	if _, err := Simulate(spec, gpusim.Config{}); err == nil {
		t.Error("invalid config should error")
	}
}

func TestEpochSummary(t *testing.T) {
	spec := tinySpec(t)
	run, err := Simulate(spec, gpusim.VegaFE())
	if err != nil {
		t.Fatal(err)
	}
	sum, err := run.EpochSummary(0)
	if err != nil {
		t.Fatal(err)
	}
	var iters int
	for i, s := range sum {
		iters += s.Count
		if s.IterTimeUS <= 0 {
			t.Errorf("SL %d time %v", s.SeqLen, s.IterTimeUS)
		}
		if i > 0 && sum[i].SeqLen <= sum[i-1].SeqLen {
			t.Error("summary not sorted by SL")
		}
	}
	if iters != run.EpochPlans[0].Iterations() {
		t.Errorf("summary counts %d != epoch iterations %d", iters, run.EpochPlans[0].Iterations())
	}
	if _, err := run.EpochSummary(99); err == nil {
		t.Error("out-of-range epoch should error")
	}
}

func TestEpochTrainUSAndSLs(t *testing.T) {
	spec := tinySpec(t)
	run, err := Simulate(spec, gpusim.VegaFE())
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for e := range run.EpochPlans {
		us, err := run.EpochTrainUS(e)
		if err != nil {
			t.Fatal(err)
		}
		total += us
	}
	if math.Abs(total-run.TrainUS) > 1e-6*run.TrainUS {
		t.Errorf("epoch sums %v != TrainUS %v", total, run.TrainUS)
	}
	sls, err := run.EpochSLs(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sls) != run.EpochPlans[0].Iterations() {
		t.Error("EpochSLs length mismatch")
	}
	// Mutating the copy must not affect the run.
	sls[0] = -1
	if run.EpochPlans[0].SeqLens[0] == -1 {
		t.Error("EpochSLs should return a copy")
	}
	if _, err := run.EpochTrainUS(-1); err == nil {
		t.Error("negative epoch should error")
	}
	if _, err := run.EpochSLs(99); err == nil {
		t.Error("out-of-range epoch should error")
	}
}

func TestUniqueSLsSorted(t *testing.T) {
	spec := tinySpec(t)
	run, err := Simulate(spec, gpusim.VegaFE())
	if err != nil {
		t.Fatal(err)
	}
	sls := run.UniqueSLs()
	if len(sls) != len(run.BySL) {
		t.Error("UniqueSLs should cover BySL")
	}
	for i := 1; i < len(sls); i++ {
		if sls[i] <= sls[i-1] {
			t.Error("UniqueSLs not sorted")
		}
	}
}

func TestAutotuneConcentratesInFirstEpoch(t *testing.T) {
	// Simulating one epoch vs two: autotune cost must be identical
	// (all shapes are seen in epoch 0 because the SL multiset repeats).
	spec := tinySpec(t)
	spec.Epochs = 1
	one, err := Simulate(spec, gpusim.VegaFE())
	if err != nil {
		t.Fatal(err)
	}
	spec.Epochs = 2
	two, err := Simulate(spec, gpusim.VegaFE())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(one.AutotuneUS-two.AutotuneUS) > 1e-9 {
		t.Errorf("autotune: 1 epoch %v, 2 epochs %v — should match", one.AutotuneUS, two.AutotuneUS)
	}
}
