package trainer

import (
	"fmt"
	"sort"
)

// SLSummary aggregates one unique sequence length within an epoch: how
// many iterations ran at that padded SL and what one such iteration
// costs. This is the architecture-independent log the SeqPoint mechanism
// consumes (Fig. 10, step 1).
type SLSummary struct {
	// SeqLen is the padded sequence length.
	SeqLen int
	// Count is the number of iterations at this SL in the epoch.
	Count int
	// IterTimeUS is the runtime of one iteration at this SL.
	IterTimeUS float64
}

// EpochSummary returns the per-unique-SL summary of the given epoch,
// sorted by sequence length.
func (r *Run) EpochSummary(epoch int) ([]SLSummary, error) {
	if epoch < 0 || epoch >= len(r.EpochPlans) {
		return nil, fmt.Errorf("trainer: epoch %d out of range [0,%d)", epoch, len(r.EpochPlans))
	}
	counts := make(map[int]int)
	for _, sl := range r.EpochPlans[epoch].SeqLens {
		counts[sl]++
	}
	out := make([]SLSummary, 0, len(counts))
	for sl, c := range counts {
		out = append(out, SLSummary{SeqLen: sl, Count: c, IterTimeUS: r.BySL[sl].TimeUS})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].SeqLen < out[j].SeqLen })
	return out, nil
}

// EpochTrainUS returns the summed training-iteration time of one epoch.
func (r *Run) EpochTrainUS(epoch int) (float64, error) {
	if epoch < 0 || epoch >= len(r.EpochPlans) {
		return 0, fmt.Errorf("trainer: epoch %d out of range [0,%d)", epoch, len(r.EpochPlans))
	}
	var us float64
	for _, sl := range r.EpochPlans[epoch].SeqLens {
		us += r.BySL[sl].TimeUS
	}
	return us, nil
}

// EpochSLs returns the iteration SL sequence of one epoch in execution
// order (the input the `prior` baseline samples from).
func (r *Run) EpochSLs(epoch int) ([]int, error) {
	if epoch < 0 || epoch >= len(r.EpochPlans) {
		return nil, fmt.Errorf("trainer: epoch %d out of range [0,%d)", epoch, len(r.EpochPlans))
	}
	return append([]int(nil), r.EpochPlans[epoch].SeqLens...), nil
}

// UniqueSLs returns the sorted unique sequence lengths seen anywhere in
// the run.
func (r *Run) UniqueSLs() []int {
	out := make([]int, 0, len(r.BySL))
	for sl := range r.BySL {
		out = append(out, sl)
	}
	sort.Ints(out)
	return out
}
