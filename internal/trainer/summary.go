package trainer

import (
	"encoding/json"
	"fmt"
	"sort"
)

// SLSummary aggregates one unique sequence length within an epoch: how
// many iterations ran at that padded SL and what one such iteration
// costs. This is the architecture-independent log the SeqPoint mechanism
// consumes (Fig. 10, step 1).
type SLSummary struct {
	// SeqLen is the padded sequence length.
	SeqLen int
	// Count is the number of iterations at this SL in the epoch.
	Count int
	// IterTimeUS is the runtime of one iteration at this SL.
	IterTimeUS float64
}

// EpochSummary returns the per-unique-SL summary of the given epoch,
// sorted by sequence length.
func (r *Run) EpochSummary(epoch int) ([]SLSummary, error) {
	if epoch < 0 || epoch >= len(r.EpochPlans) {
		return nil, fmt.Errorf("trainer: epoch %d out of range [0,%d)", epoch, len(r.EpochPlans))
	}
	counts := make(map[int]int)
	for _, sl := range r.EpochPlans[epoch].SeqLens {
		counts[sl]++
	}
	out := make([]SLSummary, 0, len(counts))
	for sl, c := range counts {
		out = append(out, SLSummary{SeqLen: sl, Count: c, IterTimeUS: r.BySL[sl].TimeUS})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].SeqLen < out[j].SeqLen })
	return out, nil
}

// EpochTrainUS returns the summed training-iteration time of one epoch.
func (r *Run) EpochTrainUS(epoch int) (float64, error) {
	if epoch < 0 || epoch >= len(r.EpochPlans) {
		return 0, fmt.Errorf("trainer: epoch %d out of range [0,%d)", epoch, len(r.EpochPlans))
	}
	var us float64
	for _, sl := range r.EpochPlans[epoch].SeqLens {
		us += r.BySL[sl].TimeUS
	}
	return us, nil
}

// EpochSLs returns the iteration SL sequence of one epoch in execution
// order (the input the `prior` baseline samples from).
func (r *Run) EpochSLs(epoch int) ([]int, error) {
	if epoch < 0 || epoch >= len(r.EpochPlans) {
		return nil, fmt.Errorf("trainer: epoch %d out of range [0,%d)", epoch, len(r.EpochPlans))
	}
	return append([]int(nil), r.EpochPlans[epoch].SeqLens...), nil
}

// UniqueSLs returns the sorted unique sequence lengths seen anywhere in
// the run.
func (r *Run) UniqueSLs() []int {
	out := make([]int, 0, len(r.BySL))
	for sl := range r.BySL {
		out = append(out, sl)
	}
	sort.Ints(out)
	return out
}

// SLDigest is one unique sequence length's row in a RunSummary.
type SLDigest struct {
	// SeqLen is the padded sequence length.
	SeqLen int `json:"seqlen"`
	// StepUS is the wall-clock time of one training step at this SL
	// (per-GPU compute plus exposed communication).
	StepUS float64 `json:"step_us"`
	// CommUS is the exposed-communication share of StepUS.
	CommUS float64 `json:"comm_us"`
	// Kernels is the dynamic kernel-invocation count of one step.
	Kernels int `json:"kernels"`
}

// RunSummary is the deterministic, serialization-stable digest of a
// Run: everything the run's aggregate behaviour pins down, with all
// map-ordered state flattened into sorted slices. Two runs of the same
// Spec must produce byte-identical Serialize output at any profiling
// parallelism — the golden determinism tests hold the simulator to
// exactly that.
type RunSummary struct {
	Config        string     `json:"config"`
	Cluster       string     `json:"cluster"`
	GPUs          int        `json:"gpus"`
	Batch         int        `json:"batch"`
	ShardBatch    int        `json:"shard_batch"`
	Epochs        int        `json:"epochs"`
	Iterations    int        `json:"iterations"`
	Samples       int        `json:"samples"`
	TrainUS       float64    `json:"train_us"`
	CommUS        float64    `json:"comm_us"`
	EvalUS        float64    `json:"eval_us"`
	AutotuneUS    float64    `json:"autotune_us"`
	TotalUS       float64    `json:"total_us"`
	ThroughputSPS float64    `json:"throughput_sps"`
	BySL          []SLDigest `json:"by_sl"`
}

// Summary digests the run.
func (r *Run) Summary() RunSummary {
	s := RunSummary{
		Config:        r.Config.Name,
		Cluster:       r.Cluster.String(),
		GPUs:          r.Cluster.Normalized().GPUs,
		Batch:         r.Batch,
		ShardBatch:    r.Cluster.ShardBatch(r.Batch),
		Epochs:        len(r.EpochPlans),
		Iterations:    r.Iterations,
		Samples:       r.Samples,
		TrainUS:       r.TrainUS,
		CommUS:        r.CommUS,
		EvalUS:        r.EvalUS,
		AutotuneUS:    r.AutotuneUS,
		TotalUS:       r.TotalUS(),
		ThroughputSPS: r.Throughput(),
		BySL:          make([]SLDigest, 0, len(r.BySL)),
	}
	for _, sl := range r.UniqueSLs() {
		p := r.BySL[sl]
		s.BySL = append(s.BySL, SLDigest{
			SeqLen:  sl,
			StepUS:  p.TimeUS,
			CommUS:  p.CommUS,
			Kernels: p.NumKernels,
		})
	}
	return s
}

// Serialize renders the summary as indented JSON with a trailing
// newline. The output is deterministic: field order is fixed by the
// struct, slices are sorted, and Go's float64 JSON encoding is exact
// (shortest round-trip representation), so byte-level comparison is a
// sound equality test for simulated results.
func (s RunSummary) Serialize() ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
