package nn

import (
	"fmt"

	"seqpoint/internal/tensor"
)

// CellKind selects the recurrent cell type.
type CellKind int

const (
	// CellLSTM is a long short-term memory cell (4 gates).
	CellLSTM CellKind = iota
	// CellGRU is a gated recurrent unit (3 gates).
	CellGRU
)

// gates returns the gate multiplier of the cell: the fused weight matrix
// is (gates*hidden) x input.
func (k CellKind) gates() int {
	if k == CellGRU {
		return 3
	}
	return 4
}

// String names the cell kind.
func (k CellKind) String() string {
	if k == CellGRU {
		return "gru"
	}
	return "lstm"
}

// Recurrent is an RNN layer: an LSTM or GRU, optionally bidirectional.
// Following the structure of optimized implementations (cuDNN/MIOpen
// RNN paths, which the paper's stack calls into), the input projection
// for all timesteps is batched into one large GEMM whose N dimension is
// batch*seqLen — this is the GEMM whose shape varies with sequence
// length across iterations (the paper's Table I shows exactly such a
// kernel for DS2 with N = 25728 = 64*402) — while the recurrent
// projection is a per-timestep GEMM with N = batch, launched seqLen
// times. This split is what makes both the *number* of kernels and the
// *shapes* of kernels depend on SL (key observations 1-3).
type Recurrent struct {
	LayerName     string
	Kind          CellKind
	Hidden        int
	Bidirectional bool
}

// NewRecurrent builds a recurrent layer.
func NewRecurrent(name string, kind CellKind, hidden int, bidirectional bool) Recurrent {
	if hidden <= 0 {
		panic(fmt.Sprintf("nn: invalid hidden size %d", hidden))
	}
	return Recurrent{LayerName: name, Kind: kind, Hidden: hidden, Bidirectional: bidirectional}
}

// Name returns the layer name.
func (r Recurrent) Name() string { return r.LayerName }

// directions returns 1 or 2.
func (r Recurrent) directions() int {
	if r.Bidirectional {
		return 2
	}
	return 1
}

// OutFeat is the output feature width (doubled when bidirectional).
func (r Recurrent) OutFeat() int { return r.Hidden * r.directions() }

// Forward emits the forward-pass ops and the output shape.
func (r Recurrent) Forward(in Activation) ([]tensor.Op, Activation) {
	var ops seqOps
	g := r.Kind.gates()
	for d := 0; d < r.directions(); d++ {
		dir := ""
		if r.Bidirectional {
			dir = fmt.Sprintf("_d%d", d)
		}
		// Batched input projection across all timesteps:
		// [g*H, B*T] = W_x [g*H, F] x X [F, B*T].
		ops.add(tensor.NewGEMM(g*r.Hidden, in.Batch*in.Time, in.Feat,
			r.LayerName+dir+"_xproj"))
		// Per-timestep recurrent projection and gate math.
		for t := 0; t < in.Time; t++ {
			ops.add(tensor.NewGEMM(g*r.Hidden, in.Batch, r.Hidden,
				r.LayerName+dir+"_hproj"))
			ops.add(tensor.NewElementwise(g*r.Hidden*in.Batch, opsPerGateElem,
				r.LayerName+dir+"_gates"))
		}
	}
	if r.Bidirectional {
		// Concatenate the two directions' outputs.
		ops.add(tensor.NewElementwise(2*r.Hidden*in.Batch*in.Time, 1,
			r.LayerName+"_concat"))
	}
	out := in
	out.Feat = r.OutFeat()
	out.Freq, out.Channels = 0, 0
	return ops, out
}

// Backward emits the backward-pass ops: for each forward GEMM, a
// data-gradient GEMM and a weight-gradient GEMM (standard BPTT), plus
// the pointwise gate gradients.
func (r Recurrent) Backward(in Activation) []tensor.Op {
	var ops seqOps
	g := r.Kind.gates()
	for d := 0; d < r.directions(); d++ {
		dir := ""
		if r.Bidirectional {
			dir = fmt.Sprintf("_d%d", d)
		}
		// Input projection gradients, batched across timesteps:
		// dX [F, B*T] = W_x^T [F, g*H] x dGates [g*H, B*T]
		ops.add(tensor.NewGEMM(in.Feat, in.Batch*in.Time, g*r.Hidden,
			r.LayerName+dir+"_xproj_dgrad"))
		// dW_x [g*H, F] = dGates [g*H, B*T] x X^T [B*T, F]
		ops.add(tensor.NewGEMM(g*r.Hidden, in.Feat, in.Batch*in.Time,
			r.LayerName+dir+"_xproj_wgrad"))
		for t := 0; t < in.Time; t++ {
			ops.add(tensor.NewGEMM(r.Hidden, in.Batch, g*r.Hidden,
				r.LayerName+dir+"_hproj_dgrad"))
			ops.add(tensor.NewGEMM(g*r.Hidden, r.Hidden, in.Batch,
				r.LayerName+dir+"_hproj_wgrad"))
			ops.add(tensor.NewElementwise(g*r.Hidden*in.Batch, opsPerGateElem,
				r.LayerName+dir+"_gates_bwd"))
		}
	}
	return ops
}
