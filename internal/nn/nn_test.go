package nn

import (
	"testing"
	"testing/quick"

	"seqpoint/internal/tensor"
)

func denseIn(batch, time, feat int) Activation {
	return Activation{Batch: batch, Time: time, Feat: feat}
}

func totalFLOPs(ops []tensor.Op) float64 {
	var f float64
	for _, op := range ops {
		f += op.FLOPs()
	}
	return f
}

func countKind(ops []tensor.Op, k tensor.Kind) int {
	n := 0
	for _, op := range ops {
		if op.Kind() == k {
			n++
		}
	}
	return n
}

func TestActivationElems(t *testing.T) {
	if got := denseIn(2, 3, 4).Elems(); got != 24 {
		t.Errorf("dense Elems = %d, want 24", got)
	}
	conv := Activation{Batch: 2, Time: 3, Freq: 4, Channels: 5}
	if got := conv.Elems(); got != 120 {
		t.Errorf("conv Elems = %d, want 120", got)
	}
}

func TestActivationValidate(t *testing.T) {
	cases := []struct {
		name string
		a    Activation
		ok   bool
	}{
		{"dense ok", denseIn(1, 1, 1), true},
		{"conv ok", Activation{Batch: 1, Time: 1, Freq: 1, Channels: 1}, true},
		{"no batch", Activation{Time: 1, Feat: 1}, false},
		{"no time", Activation{Batch: 1, Feat: 1}, false},
		{"dense no feat", Activation{Batch: 1, Time: 1}, false},
		{"conv no freq", Activation{Batch: 1, Time: 1, Channels: 2}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.a.Validate()
			if tc.ok && err != nil {
				t.Errorf("Validate(%+v) = %v, want nil", tc.a, err)
			}
			if !tc.ok && err == nil {
				t.Errorf("Validate(%+v) = nil, want error", tc.a)
			}
		})
	}
}

func TestRecurrentUnrollsWithSeqLen(t *testing.T) {
	r := NewRecurrent("lstm", CellLSTM, 256, false)
	in10 := denseIn(8, 10, 256)
	in20 := denseIn(8, 20, 256)
	ops10, _ := r.Forward(in10)
	ops20, _ := r.Forward(in20)
	// Per-timestep recurrent GEMM + gates: op count grows linearly in T.
	if len(ops20) <= len(ops10) {
		t.Errorf("op count: T=20 %d <= T=10 %d", len(ops20), len(ops10))
	}
	// One batched xproj GEMM + T hproj GEMMs.
	if got, want := countKind(ops10, tensor.KindGEMM), 1+10; got != want {
		t.Errorf("GEMM count at T=10 = %d, want %d", got, want)
	}
}

func TestRecurrentGateMultipliers(t *testing.T) {
	lstm := NewRecurrent("l", CellLSTM, 128, false)
	gru := NewRecurrent("g", CellGRU, 128, false)
	in := denseIn(4, 5, 128)
	lstmOps, _ := lstm.Forward(in)
	gruOps, _ := gru.Forward(in)
	// LSTM has 4 gates vs GRU's 3: strictly more arithmetic.
	if totalFLOPs(lstmOps) <= totalFLOPs(gruOps) {
		t.Error("LSTM forward should cost more than GRU at equal size")
	}
	if CellLSTM.gates() != 4 || CellGRU.gates() != 3 {
		t.Errorf("gates: lstm=%d gru=%d", CellLSTM.gates(), CellGRU.gates())
	}
	if CellLSTM.String() != "lstm" || CellGRU.String() != "gru" {
		t.Error("cell kind names")
	}
}

func TestRecurrentBidirectionalDoubles(t *testing.T) {
	uni := NewRecurrent("u", CellGRU, 64, false)
	bi := NewRecurrent("b", CellGRU, 64, true)
	in := denseIn(4, 6, 64)
	uniOps, uniOut := uni.Forward(in)
	biOps, biOut := bi.Forward(in)
	if biOut.Feat != 2*uniOut.Feat {
		t.Errorf("bidirectional out feat = %d, want %d", biOut.Feat, 2*uniOut.Feat)
	}
	ratio := totalFLOPs(biOps) / totalFLOPs(uniOps)
	if ratio < 1.9 || ratio > 2.2 {
		t.Errorf("bidirectional FLOP ratio = %v, want ~2", ratio)
	}
}

func TestRecurrentBackwardMirrorsForward(t *testing.T) {
	r := NewRecurrent("l", CellLSTM, 128, true)
	in := denseIn(8, 12, 128)
	fwd, _ := r.Forward(in)
	bwd := r.Backward(in)
	// BPTT roughly doubles GEMM work: dgrad + wgrad per forward GEMM.
	ratio := totalFLOPs(bwd) / totalFLOPs(fwd)
	if ratio < 1.2 || ratio > 2.5 {
		t.Errorf("backward/forward FLOP ratio = %v, want in [1.2, 2.5]", ratio)
	}
}

func TestRecurrentInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero hidden should panic")
		}
	}()
	NewRecurrent("bad", CellLSTM, 0, false)
}

func TestDenseShapes(t *testing.T) {
	d := NewDense("fc", 100, true)
	in := denseIn(4, 7, 50)
	ops, out := d.Forward(in)
	if out.Feat != 100 {
		t.Errorf("out feat = %d, want 100", out.Feat)
	}
	if out.Time != in.Time || out.Batch != in.Batch {
		t.Errorf("dense must preserve batch/time: %+v", out)
	}
	g, ok := ops[0].(tensor.GEMM)
	if !ok {
		t.Fatal("first op should be the GEMM")
	}
	if g.M != 100 || g.N != 4*7 || g.K != 50 {
		t.Errorf("GEMM = %dx%dx%d, want 100x28x50", g.M, g.N, g.K)
	}
	// Activated adds the pointwise op.
	if len(ops) != 2 {
		t.Errorf("activated dense emits %d ops, want 2", len(ops))
	}
	if n := len(d.Backward(in)); n != 3 {
		t.Errorf("backward emits %d ops, want 3 (dgrad+wgrad+act)", n)
	}
}

func TestDenseNVariesWithSeqLen(t *testing.T) {
	// The paper's Table I: the classifier GEMM's N dimension tracks SL.
	d := NewDense("classifier", 29, false)
	ops1, _ := d.Forward(denseIn(64, 100, 1600))
	ops2, _ := d.Forward(denseIn(64, 200, 1600))
	g1 := ops1[0].(tensor.GEMM)
	g2 := ops2[0].(tensor.GEMM)
	if g1.M != g2.M || g1.K != g2.K {
		t.Error("M and K are fixed by the network")
	}
	if g2.N != 2*g1.N {
		t.Errorf("N should double with SL: %d vs %d", g1.N, g2.N)
	}
}

func TestEmbeddingLayer(t *testing.T) {
	e := NewEmbedding("vocab", 36549, 1024)
	in := denseIn(64, 20, 1)
	ops, out := e.Forward(in)
	if out.Feat != 1024 {
		t.Errorf("out feat = %d, want 1024", out.Feat)
	}
	emb, ok := ops[0].(tensor.Embedding)
	if !ok {
		t.Fatal("embedding layer should emit an Embedding op")
	}
	if emb.Lookups != 64*20 {
		t.Errorf("lookups = %d, want %d", emb.Lookups, 64*20)
	}
	if emb.Rows != 36549 {
		t.Errorf("rows = %d: key observation 6 requires the full vocabulary", emb.Rows)
	}
	if len(e.Backward(in)) == 0 {
		t.Error("backward should emit the gradient scatter")
	}
}

func TestSoftmaxOps(t *testing.T) {
	s := NewSoftmax("sm")
	in := denseIn(4, 5, 100)
	ops, out := s.Forward(in)
	if out != in {
		t.Error("softmax preserves the shape")
	}
	if got := countKind(ops, tensor.KindReduction); got != 2 {
		t.Errorf("softmax reductions = %d, want 2 (max + sum)", got)
	}
	if got := countKind(ops, tensor.KindElementwise); got != 1 {
		t.Errorf("softmax pointwise = %d, want 1 (exp)", got)
	}
}

func TestCTCLossScalesWithTime(t *testing.T) {
	c := NewCTCLoss("ctc")
	ops1, _ := c.Forward(denseIn(8, 50, 29))
	ops2, _ := c.Forward(denseIn(8, 100, 29))
	if totalFLOPs(ops2) <= totalFLOPs(ops1) {
		t.Error("CTC work should grow with sequence length")
	}
	if len(c.Backward(denseIn(8, 50, 29))) == 0 {
		t.Error("backward should emit the beta pass")
	}
}

func TestAttentionScalesWithBothLengths(t *testing.T) {
	// Attention is O(T_dec * T_enc): doubling either side grows work.
	base, _ := NewAttention("att", 256, 50).Forward(denseIn(4, 50, 256))
	encX2, _ := NewAttention("att", 256, 100).Forward(denseIn(4, 50, 256))
	decX2, _ := NewAttention("att", 256, 50).Forward(denseIn(4, 100, 256))
	if totalFLOPs(encX2) <= totalFLOPs(base) {
		t.Error("longer encoder should grow attention work")
	}
	if totalFLOPs(decX2) <= totalFLOPs(base) {
		t.Error("longer decoder should grow attention work")
	}
}

func TestAttentionOutputConcatsContext(t *testing.T) {
	a := NewAttention("att", 256, 30)
	_, out := a.Forward(denseIn(4, 10, 512))
	if out.Feat != 512+256 {
		t.Errorf("out feat = %d, want state+context = 768", out.Feat)
	}
}

func TestConvShapesAndStride(t *testing.T) {
	c := NewConv("conv1", 32, 41, 11, 2, 2, 20, 5, true)
	in := Activation{Batch: 64, Time: 400, Freq: 161, Channels: 1}
	ops, out := c.Forward(in)
	if out.Channels != 32 {
		t.Errorf("out channels = %d, want 32", out.Channels)
	}
	if out.Time != (400+10-11)/2+1 {
		t.Errorf("out time = %d", out.Time)
	}
	if len(ops) != 2 {
		t.Errorf("activated conv emits %d ops, want 2", len(ops))
	}
	if len(c.Backward(in)) != 3 {
		t.Errorf("backward should emit dgrad+wgrad+act")
	}
}

func TestConvRequiresConvActivation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("conv over a dense activation should panic")
		}
	}()
	NewConv("c", 8, 3, 3, 1, 1, 1, 1, false).Forward(denseIn(4, 10, 64))
}

func TestBatchNormGroups(t *testing.T) {
	b := NewBatchNorm("bn")
	convIn := Activation{Batch: 4, Time: 10, Freq: 8, Channels: 16}
	denseInA := denseIn(4, 10, 64)
	if got := b.groupCount(convIn); got != 16 {
		t.Errorf("conv groups = %d, want channels 16", got)
	}
	if got := b.groupCount(denseInA); got != 64 {
		t.Errorf("dense groups = %d, want feat 64", got)
	}
	ops, out := b.Forward(convIn)
	if out != convIn {
		t.Error("batch norm preserves shape")
	}
	if len(ops) != 2 {
		t.Errorf("ops = %d, want stats + apply", len(ops))
	}
}

func TestLayerNormRowGroups(t *testing.T) {
	l := NewLayerNorm("ln")
	in := denseIn(4, 10, 64)
	ops, out := l.Forward(in)
	if out != in {
		t.Error("layer norm preserves shape")
	}
	if len(ops) != 2 {
		t.Fatalf("ops = %d, want stats + apply", len(ops))
	}
	red, ok := ops[0].(tensor.Reduction)
	if !ok {
		t.Fatal("first op should be the statistics reduction")
	}
	// One group per batch x time row — scales with SL, unlike BatchNorm.
	if red.Groups != 4*10 {
		t.Errorf("groups = %d, want 40", red.Groups)
	}
	longer, _ := l.Forward(denseIn(4, 20, 64))
	if longer[0].(tensor.Reduction).Groups != 4*20 {
		t.Error("group count must scale with sequence length")
	}
	if len(l.Backward(in)) != 2 {
		t.Error("backward emits stats + apply gradients")
	}
}

func TestFlatten(t *testing.T) {
	f := NewFlatten("flat")
	in := Activation{Batch: 4, Time: 10, Freq: 8, Channels: 16}
	ops, out := f.Forward(in)
	if ops != nil {
		t.Error("flatten launches no kernels")
	}
	if out.Feat != 8*16 || out.Channels != 0 || out.Freq != 0 {
		t.Errorf("flatten out = %+v", out)
	}
	if out.Time != 10 {
		t.Error("flatten keeps the time axis")
	}

	fa := NewFlattenAll("flatall")
	_, out2 := fa.Forward(in)
	if out2.Time != 1 || out2.Feat != 8*16*10 {
		t.Errorf("flatten-all out = %+v", out2)
	}
}

func TestPoolShrinks(t *testing.T) {
	p := NewPool("pool", 2, 2)
	in := Activation{Batch: 4, Time: 16, Freq: 16, Channels: 8}
	_, out := p.Forward(in)
	if out.Freq != 8 || out.Time != 8 {
		t.Errorf("pool out = %+v, want 8x8", out)
	}
	if len(p.Backward(in)) == 0 {
		t.Error("pool backward emits the gradient scatter")
	}
}

func TestQuickRecurrentOpCountLinearInT(t *testing.T) {
	r := NewRecurrent("r", CellGRU, 32, false)
	f := func(t8 uint8) bool {
		T := int(t8)%64 + 1
		ops, _ := r.Forward(denseIn(2, T, 32))
		// 1 xproj + T*(hproj + gates) = 1 + 2T ops.
		return len(ops) == 1+2*T
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickForwardOutputsValid(t *testing.T) {
	// Every layer must map a valid activation to a valid activation.
	layers := []Layer{
		NewRecurrent("r", CellLSTM, 64, true),
		NewDense("d", 32, true),
		NewSoftmax("s"),
		NewEmbedding("e", 1000, 64),
		NewBatchNorm("b"),
	}
	f := func(b8, t8 uint8) bool {
		in := denseIn(int(b8)%16+1, int(t8)%32+1, 64)
		for _, l := range layers {
			_, out := l.Forward(in)
			if err := out.Validate(); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
