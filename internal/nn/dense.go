package nn

import (
	"fmt"

	"seqpoint/internal/tensor"
)

// Dense is a fully-connected layer applied per timestep: one GEMM whose
// N dimension is batch*seqLen. For classifier heads over large
// vocabularies (GNMT's 36k-word projection) this is the single largest
// kernel of the iteration, and its N dimension varies with SL across
// iterations — the paper's Table I documents exactly this kernel.
type Dense struct {
	LayerName string
	Out       int
	Activated bool
}

// NewDense builds a fully-connected layer with Out output features.
func NewDense(name string, out int, activated bool) Dense {
	if out <= 0 {
		panic(fmt.Sprintf("nn: invalid dense layer %s with %d outputs", name, out))
	}
	return Dense{LayerName: name, Out: out, Activated: activated}
}

// Name returns the layer name.
func (d Dense) Name() string { return d.LayerName }

// Forward emits the batched GEMM (and optional activation).
func (d Dense) Forward(in Activation) ([]tensor.Op, Activation) {
	var ops seqOps
	ops.add(tensor.NewGEMM(d.Out, in.Batch*in.Time, in.Feat, d.LayerName))
	if d.Activated {
		ops.add(tensor.NewElementwise(d.Out*in.Batch*in.Time, opsPerActElem, d.LayerName+"_act"))
	}
	out := in
	out.Feat = d.Out
	return ops, out
}

// Backward emits the data- and weight-gradient GEMMs.
func (d Dense) Backward(in Activation) []tensor.Op {
	var ops seqOps
	n := in.Batch * in.Time
	ops.add(tensor.NewGEMM(in.Feat, n, d.Out, d.LayerName+"_dgrad"))
	ops.add(tensor.NewGEMM(d.Out, in.Feat, n, d.LayerName+"_wgrad"))
	if d.Activated {
		ops.add(tensor.NewElementwise(d.Out*n, opsPerActElem, d.LayerName+"_act_bwd"))
	}
	return ops
}

// EmbeddingLayer gathers one row per token from a vocabulary table.
// Per the paper's key observation 6, the table must keep the full
// dataset vocabulary for sampled iterations to stay representative; the
// table size enters the cost model through the gather's working set.
type EmbeddingLayer struct {
	LayerName string
	Vocab     int
	Dim       int
}

// NewEmbedding builds an embedding layer over a Vocab x Dim table.
func NewEmbedding(name string, vocab, dim int) EmbeddingLayer {
	if vocab <= 0 || dim <= 0 {
		panic(fmt.Sprintf("nn: invalid embedding %s (%d x %d)", name, vocab, dim))
	}
	return EmbeddingLayer{LayerName: name, Vocab: vocab, Dim: dim}
}

// Name returns the layer name.
func (e EmbeddingLayer) Name() string { return e.LayerName }

// Forward emits the gather.
func (e EmbeddingLayer) Forward(in Activation) ([]tensor.Op, Activation) {
	var ops seqOps
	ops.add(tensor.NewEmbedding(e.Vocab, e.Dim, in.Batch*in.Time, e.LayerName))
	out := in
	out.Feat = e.Dim
	out.Freq, out.Channels = 0, 0
	return ops, out
}

// Backward emits the scatter-add of gradients into the table.
func (e EmbeddingLayer) Backward(in Activation) []tensor.Op {
	var ops seqOps
	ops.add(tensor.NewEmbedding(e.Vocab, e.Dim, in.Batch*in.Time, e.LayerName+"_bwd"))
	return ops
}

// Softmax is a per-step softmax plus loss evaluation: row-max and
// row-sum reductions with an exponentiation pointwise pass over
// batch*seqLen rows of Feat entries.
type Softmax struct {
	LayerName string
}

// NewSoftmax builds a softmax/loss head.
func NewSoftmax(name string) Softmax { return Softmax{LayerName: name} }

// Name returns the layer name.
func (s Softmax) Name() string { return s.LayerName }

// Forward emits the reductions and the exponentiation.
func (s Softmax) Forward(in Activation) ([]tensor.Op, Activation) {
	var ops seqOps
	rows := in.Batch * in.Time
	ops.add(tensor.NewReduction(rows*in.Feat, rows, s.LayerName+"_max"))
	ops.add(tensor.NewElementwise(rows*in.Feat, opsPerSoftmaxElem, s.LayerName+"_exp"))
	ops.add(tensor.NewReduction(rows*in.Feat, rows, s.LayerName+"_sum"))
	return ops, in
}

// Backward emits the gradient pointwise pass.
func (s Softmax) Backward(in Activation) []tensor.Op {
	var ops seqOps
	rows := in.Batch * in.Time
	ops.add(tensor.NewElementwise(rows*in.Feat, opsPerSoftmaxElem, s.LayerName+"_bwd"))
	return ops
}

// CTCLoss approximates the connectionist-temporal-classification loss
// DS2 trains with: an alpha-beta dynamic program over (time x labels)
// per utterance, dominated by pointwise work proportional to
// batch * time * feat with a per-batch reduction.
type CTCLoss struct {
	LayerName string
}

// NewCTCLoss builds a CTC loss head.
func NewCTCLoss(name string) CTCLoss { return CTCLoss{LayerName: name} }

// Name returns the layer name.
func (c CTCLoss) Name() string { return c.LayerName }

// Forward emits the forward dynamic program.
func (c CTCLoss) Forward(in Activation) ([]tensor.Op, Activation) {
	var ops seqOps
	ops.add(tensor.NewElementwise(in.Batch*in.Time*in.Feat, 6, c.LayerName+"_alpha"))
	ops.add(tensor.NewReduction(in.Batch*in.Time, in.Batch, c.LayerName+"_norm"))
	return ops, in
}

// Backward emits the beta pass and gradient assembly.
func (c CTCLoss) Backward(in Activation) []tensor.Op {
	var ops seqOps
	ops.add(tensor.NewElementwise(in.Batch*in.Time*in.Feat, 6, c.LayerName+"_beta"))
	ops.add(tensor.NewElementwise(in.Batch*in.Time*in.Feat, 2, c.LayerName+"_grad"))
	return ops
}
