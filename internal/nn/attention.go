package nn

import (
	"fmt"

	"seqpoint/internal/tensor"
)

// Attention is an additive (Bahdanau-style) attention network connecting
// a decoder to encoder outputs, as in GNMT. Unlike the recurrent cells,
// which process one symbol at a time with fixed-size inputs, attention
// touches the *entire* encoder sequence at every decoder step — it is
// one of the layers the paper singles out (Section IV-B1) as making
// iteration work scale with sequence length beyond simple unrolling:
// its pointwise score evaluation is O(T_dec * T_enc * hidden).
type Attention struct {
	LayerName string
	Hidden    int
	// EncTime is the encoder sequence length the decoder attends over;
	// set per iteration by the model assembly.
	EncTime int
}

// NewAttention builds an attention layer over EncTime encoder steps.
func NewAttention(name string, hidden, encTime int) Attention {
	if hidden <= 0 || encTime <= 0 {
		panic(fmt.Sprintf("nn: invalid attention %s (hidden %d, encTime %d)", name, hidden, encTime))
	}
	return Attention{LayerName: name, Hidden: hidden, EncTime: encTime}
}

// Name returns the layer name.
func (a Attention) Name() string { return a.LayerName }

// Forward emits, per decoder step: the query projection, the additive
// score evaluation over all encoder steps, the softmax over scores, and
// the context-vector GEMM. The encoder-side key projection is hoisted
// out of the step loop (computed once per iteration), as real
// implementations do.
func (a Attention) Forward(in Activation) ([]tensor.Op, Activation) {
	var ops seqOps
	h := a.Hidden
	b := in.Batch

	// Hoisted key projection: W1 x encoder outputs, all steps at once.
	ops.add(tensor.NewGEMM(h, b*a.EncTime, h, a.LayerName+"_keys"))

	for t := 0; t < in.Time; t++ {
		// Query projection for this decoder step.
		ops.add(tensor.NewGEMM(h, b, h, a.LayerName+"_query"))
		// Additive combine + tanh over every encoder position.
		ops.add(tensor.NewElementwise(b*a.EncTime*h, opsPerGateElem, a.LayerName+"_score"))
		// v^T reduction to scalar scores, then softmax over positions.
		ops.add(tensor.NewReduction(b*a.EncTime*h, b*a.EncTime, a.LayerName+"_vdot"))
		ops.add(tensor.NewElementwise(b*a.EncTime, opsPerSoftmaxElem, a.LayerName+"_softmax"))
		// Context vector: weighted sum of encoder outputs.
		ops.add(tensor.NewGEMM(h, b, a.EncTime, a.LayerName+"_context"))
	}

	out := in
	out.Feat = in.Feat + h // decoder consumes [state; context]
	return ops, out
}

// Backward emits gradients mirroring the forward structure.
func (a Attention) Backward(in Activation) []tensor.Op {
	var ops seqOps
	h := a.Hidden
	b := in.Batch
	ops.add(tensor.NewGEMM(h, b*a.EncTime, h, a.LayerName+"_keys_dgrad"))
	ops.add(tensor.NewGEMM(h, h, b*a.EncTime, a.LayerName+"_keys_wgrad"))
	for t := 0; t < in.Time; t++ {
		ops.add(tensor.NewGEMM(h, b, h, a.LayerName+"_query_dgrad"))
		ops.add(tensor.NewGEMM(h, h, b, a.LayerName+"_query_wgrad"))
		ops.add(tensor.NewElementwise(b*a.EncTime*h, opsPerGateElem, a.LayerName+"_score_bwd"))
		ops.add(tensor.NewGEMM(h, b, a.EncTime, a.LayerName+"_context_bwd"))
	}
	return ops
}
