package nn

import (
	"fmt"

	"seqpoint/internal/tensor"
)

// Conv is a 2-D convolution layer over a Freq x Time activation with
// Channels input planes (DS2's spectrogram front-end) or square images
// (the CNN used for the Fig. 3 CNN-vs-RNN contrast).
type Conv struct {
	LayerName      string
	OutC, KH, KW   int
	SH, SW, PH, PW int
	// Activated adds a clipped-ReLU after the convolution.
	Activated bool
}

// NewConv builds a convolution layer.
func NewConv(name string, outC, kh, kw, sh, sw, ph, pw int, activated bool) Conv {
	if outC <= 0 || kh <= 0 || kw <= 0 || sh <= 0 || sw <= 0 {
		panic(fmt.Sprintf("nn: invalid conv layer %s", name))
	}
	return Conv{LayerName: name, OutC: outC, KH: kh, KW: kw, SH: sh, SW: sw, PH: ph, PW: pw, Activated: activated}
}

// Name returns the layer name.
func (c Conv) Name() string { return c.LayerName }

func (c Conv) op(in Activation, label string) tensor.Conv2D {
	return tensor.NewConv2D(in.Batch, in.Channels, in.Freq, in.Time,
		c.OutC, c.KH, c.KW, c.SH, c.SW, c.PH, c.PW, label)
}

// Forward emits the convolution (and optional activation) and computes
// the strided output shape.
func (c Conv) Forward(in Activation) ([]tensor.Op, Activation) {
	if in.Channels <= 0 {
		panic(fmt.Sprintf("nn: conv layer %s needs a Freq/Channels activation, got %+v", c.LayerName, in))
	}
	var ops seqOps
	cv := c.op(in, c.LayerName)
	ops.add(cv)
	out := in
	out.Channels = c.OutC
	out.Freq = cv.OutH()
	out.Time = cv.OutW()
	if c.Activated {
		ops.add(tensor.NewElementwise(out.Elems(), opsPerActElem, c.LayerName+"_act"))
	}
	return ops, out
}

// Backward emits the data-gradient and weight-gradient convolutions,
// each costed as a convolution of the same geometry, matching how
// MIOpen's backward passes launch distinct kernels of comparable work.
func (c Conv) Backward(in Activation) []tensor.Op {
	var ops seqOps
	ops.add(c.op(in, c.LayerName+"_dgrad"))
	ops.add(c.op(in, c.LayerName+"_wgrad"))
	if c.Activated {
		cv := c.op(in, "")
		outElems := in.Batch * c.OutC * cv.OutH() * cv.OutW()
		ops.add(tensor.NewElementwise(outElems, opsPerActElem, c.LayerName+"_act_bwd"))
	}
	return ops
}

// BatchNorm normalizes the current activation: a statistics reduction
// plus a pointwise apply. DS2 places one after its convolutional
// front-end.
type BatchNorm struct {
	LayerName string
}

// NewBatchNorm builds a batch-normalization layer.
func NewBatchNorm(name string) BatchNorm { return BatchNorm{LayerName: name} }

// Name returns the layer name.
func (b BatchNorm) Name() string { return b.LayerName }

// groupCount returns the number of normalization groups (one per channel
// or per feature).
func (b BatchNorm) groupCount(in Activation) int {
	if in.Channels > 0 {
		return in.Channels
	}
	return in.Feat
}

// Forward emits the mean/variance reduction and the normalize-scale-shift
// pointwise op.
func (b BatchNorm) Forward(in Activation) ([]tensor.Op, Activation) {
	var ops seqOps
	ops.add(tensor.NewReduction(in.Elems(), b.groupCount(in), b.LayerName+"_stats"))
	ops.add(tensor.NewElementwise(in.Elems(), opsPerNormElem, b.LayerName+"_apply"))
	return ops, in
}

// Backward emits the gradient reduction and pointwise gradient.
func (b BatchNorm) Backward(in Activation) []tensor.Op {
	var ops seqOps
	ops.add(tensor.NewReduction(in.Elems(), b.groupCount(in), b.LayerName+"_stats_bwd"))
	ops.add(tensor.NewElementwise(in.Elems(), opsPerNormElem, b.LayerName+"_apply_bwd"))
	return ops
}

// LayerNorm normalizes each position's feature vector independently
// (one statistics reduction per batch x time row plus a pointwise
// apply). Transformers normalize around every sub-layer; unlike
// BatchNorm its group count — and therefore its reduction geometry —
// scales with the sequence length.
type LayerNorm struct {
	LayerName string
}

// NewLayerNorm builds a layer-normalization stage.
func NewLayerNorm(name string) LayerNorm { return LayerNorm{LayerName: name} }

// Name returns the layer name.
func (l LayerNorm) Name() string { return l.LayerName }

// Forward emits the per-row statistics reduction and the apply.
func (l LayerNorm) Forward(in Activation) ([]tensor.Op, Activation) {
	var ops seqOps
	rows := in.Batch * in.Time
	ops.add(tensor.NewReduction(in.Elems(), rows, l.LayerName+"_stats"))
	ops.add(tensor.NewElementwise(in.Elems(), opsPerNormElem, l.LayerName+"_apply"))
	return ops, in
}

// Backward emits the gradient reduction and pointwise gradient.
func (l LayerNorm) Backward(in Activation) []tensor.Op {
	var ops seqOps
	rows := in.Batch * in.Time
	ops.add(tensor.NewReduction(in.Elems(), rows, l.LayerName+"_stats_bwd"))
	ops.add(tensor.NewElementwise(in.Elems(), opsPerNormElem, l.LayerName+"_apply_bwd"))
	return ops
}

// Flatten folds a Freq x Channels conv activation into a per-timestep
// feature vector for the recurrent stack (DS2 does this between its
// convolutional front-end and the GRU layers). With CollapseTime set, it
// additionally folds the time/width axis into the feature vector, as a
// CNN does before its classifier head. It launches no kernels.
type Flatten struct {
	LayerName    string
	CollapseTime bool
}

// NewFlatten builds a flatten stage that keeps the time axis (DS2 style).
func NewFlatten(name string) Flatten { return Flatten{LayerName: name} }

// NewFlattenAll builds a flatten stage that folds time away too (CNN style).
func NewFlattenAll(name string) Flatten {
	return Flatten{LayerName: name, CollapseTime: true}
}

// Name returns the layer name.
func (f Flatten) Name() string { return f.LayerName }

// Forward reshapes without launching work.
func (f Flatten) Forward(in Activation) ([]tensor.Op, Activation) {
	out := in
	if in.Channels > 0 {
		out.Feat = in.Channels * in.Freq
		out.Freq, out.Channels = 0, 0
	}
	if f.CollapseTime {
		out.Feat *= out.Time
		out.Time = 1
	}
	return nil, out
}

// Backward launches no work.
func (f Flatten) Backward(Activation) []tensor.Op { return nil }

// Pool is an average/max pooling stage for the CNN model: pointwise cost,
// strided shape change.
type Pool struct {
	LayerName string
	K, S      int
}

// NewPool builds a pooling layer with a KxK window and stride S.
func NewPool(name string, k, s int) Pool {
	if k <= 0 || s <= 0 {
		panic(fmt.Sprintf("nn: invalid pool layer %s", name))
	}
	return Pool{LayerName: name, K: k, S: s}
}

// Name returns the layer name.
func (p Pool) Name() string { return p.LayerName }

// Forward emits the window reduction and computes the pooled shape.
func (p Pool) Forward(in Activation) ([]tensor.Op, Activation) {
	var ops seqOps
	ops.add(tensor.NewElementwise(in.Elems(), p.K*p.K, p.LayerName))
	out := in
	out.Freq = (in.Freq-p.K)/p.S + 1
	out.Time = (in.Time-p.K)/p.S + 1
	if out.Freq < 1 {
		out.Freq = 1
	}
	if out.Time < 1 {
		out.Time = 1
	}
	return ops, out
}

// Backward emits the scatter of pooled gradients.
func (p Pool) Backward(in Activation) []tensor.Op {
	var ops seqOps
	ops.add(tensor.NewElementwise(in.Elems(), 2, p.LayerName+"_bwd"))
	return ops
}
