// Package nn is a layer library for describing sequence-based (and
// convolutional) neural networks at the granularity a profiler sees:
// each layer, given an activation shape, emits the logical operations
// (internal/tensor) its forward and backward passes launch. Assembling
// layers into models (internal/models) and pricing the emitted ops
// (internal/gpusim) yields per-iteration execution profiles without
// running any arithmetic — which is exactly the level SeqPoint operates
// at: the paper's key observations are about which kernels, with which
// shapes, an iteration of a given sequence length launches.
package nn

import (
	"fmt"

	"seqpoint/internal/tensor"
)

// Activation is the symbolic shape of the tensor flowing between layers.
// Recurrent and dense layers use Batch/Time/Feat; the convolutional
// front-end (DS2's first two layers, and the CNN used for the paper's
// Fig. 3 contrast) additionally tracks a 2-D spectral/spatial extent in
// Freq x Time with Channels planes.
type Activation struct {
	// Batch is the minibatch size (constant across a training run).
	Batch int
	// Time is the number of sequence steps at this point of the network;
	// strided convolutions shrink it.
	Time int
	// Feat is the per-step feature width for recurrent/dense layers.
	Feat int
	// Freq and Channels describe the 2-D activation used by conv layers;
	// zero once the activation is flattened for the recurrent stack.
	Freq, Channels int
}

// Elems returns the total element count of the activation.
func (a Activation) Elems() int {
	if a.Channels > 0 {
		return a.Batch * a.Channels * a.Freq * a.Time
	}
	return a.Batch * a.Time * a.Feat
}

// Validate reports whether the shape is usable.
func (a Activation) Validate() error {
	if a.Batch <= 0 || a.Time <= 0 {
		return fmt.Errorf("nn: invalid activation %+v", a)
	}
	if a.Channels > 0 {
		if a.Freq <= 0 {
			return fmt.Errorf("nn: conv activation needs Freq: %+v", a)
		}
		return nil
	}
	if a.Feat <= 0 {
		return fmt.Errorf("nn: dense activation needs Feat: %+v", a)
	}
	return nil
}

// Layer is one network stage. Forward returns the ops a forward pass
// launches and the output activation shape; Backward returns the ops of
// the corresponding backward pass (gradient with respect to inputs and
// weights). Layers are stateless descriptions: the same layer value can
// be queried for any activation shape.
type Layer interface {
	// Name identifies the layer in kernel labels ("enc_lstm_0", ...).
	Name() string
	Forward(in Activation) ([]tensor.Op, Activation)
	Backward(in Activation) []tensor.Op
}

// Ops per element for common pointwise stages. Gate math dominates
// recurrent cells: sigmoid/tanh evaluations cost several flops each.
const (
	opsPerGateElem    = 12 // sigmoid/tanh + gate arithmetic
	opsPerActElem     = 4  // plain activation (ReLU/clipped ReLU + bias)
	opsPerNormElem    = 6  // batch-norm apply: scale, shift, normalize
	opsPerSoftmaxElem = 8  // exp + divide
)

// seqOps is a small helper for accumulating op lists.
type seqOps []tensor.Op

func (s *seqOps) add(ops ...tensor.Op) { *s = append(*s, ops...) }
