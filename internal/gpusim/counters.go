package gpusim

// Counters are the per-kernel hardware performance counters the model
// exposes, matching the metrics the paper's Fig. 4 plots from the Radeon
// Compute Profiler: vector-ALU instruction count, data loaded from
// memory, and cycles stalled on memory writes.
type Counters struct {
	// VALUInsts is the number of vector-ALU instructions executed
	// (per-lane FMA count).
	VALUInsts float64
	// LoadBytes is the data volume actually fetched from DRAM, after
	// cache filtering ("load data size" in Fig. 4).
	LoadBytes float64
	// StoreBytes is the data volume written to DRAM.
	StoreBytes float64
	// MemWriteStallCycles is the number of core cycles the kernel spent
	// stalled behind the write path ("mem write stalls" in Fig. 4).
	MemWriteStallCycles float64
}

// Add accumulates other into c.
func (c *Counters) Add(other Counters) {
	c.VALUInsts += other.VALUInsts
	c.LoadBytes += other.LoadBytes
	c.StoreBytes += other.StoreBytes
	c.MemWriteStallCycles += other.MemWriteStallCycles
}

// Scale returns the counters multiplied by f (used when replaying a
// memoized iteration profile f times).
func (c Counters) Scale(f float64) Counters {
	return Counters{
		VALUInsts:           c.VALUInsts * f,
		LoadBytes:           c.LoadBytes * f,
		StoreBytes:          c.StoreBytes * f,
		MemWriteStallCycles: c.MemWriteStallCycles * f,
	}
}
