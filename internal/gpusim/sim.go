package gpusim

import (
	"fmt"

	"seqpoint/internal/tensor"
)

// Invocation is one priced kernel execution: what ran, for how long, and
// what the performance counters read. It is the unit the profiler
// aggregates, standing in for one row of a Radeon Compute Profiler trace.
type Invocation struct {
	// Kernel is the concrete kernel symbol (see KernelName).
	Kernel string
	// Signature is the op's shape signature (autotune/dispatch key).
	Signature string
	// Label is the layer-level role the op was emitted with (e.g.
	// "classifier", "lstm_input"); empty for unlabeled ops.
	Label string
	// Kind is the op class.
	Kind tensor.Kind
	// TimeUS is the modeled execution time in microseconds, including
	// launch overhead.
	TimeUS float64
	// Counters are the modeled hardware counters.
	Counters Counters
}

// Simulator prices ops under a fixed hardware configuration. It is
// stateless beyond the config and safe for concurrent use.
type Simulator struct {
	cfg Config
}

// New validates cfg and returns a simulator for it.
func New(cfg Config) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Simulator{cfg: cfg}, nil
}

// Config returns the hardware configuration the simulator prices for.
func (s *Simulator) Config() Config { return s.cfg }

// Bandwidth efficiency constants: streaming kernels achieve a high
// fraction of peak DRAM bandwidth, random gathers much less.
const (
	streamBWEff = 0.78
	gatherBWEff = 0.30
	// noL2BWPenalty scales achievable bandwidth when L2 is disabled:
	// without L2 the memory system loses request coalescing and
	// write-combining, so even pure streaming slows down.
	noL2BWPenalty = 0.70
	// noL1ComputePenalty scales arithmetic efficiency of blocked
	// kernels (GEMM/conv) when L1 is disabled: tile fragments that the
	// vector L1 would serve per-CU must round-trip to L2, starving the
	// FMA pipeline.
	noL1ComputePenalty = 0.70
	// maxReuseHit bounds how much repeat traffic caches can absorb.
	maxReuseHit = 0.95
	// l1Effectiveness discounts aggregate L1 capacity: private per-CU
	// caches cannot hold a shared working set as well as the unified L2.
	l1Effectiveness = 0.6
)

// reuseHit is the fraction of *repeat* touches to a working set of ws
// bytes that the cache hierarchy serves on-chip.
func (s *Simulator) reuseHit(ws float64) float64 {
	if ws <= 0 {
		return 0
	}
	covered := l1Effectiveness*s.cfg.AggregateL1Bytes() + s.cfg.L2Bytes()
	return maxReuseHit * minF(1, covered/ws)
}

// effectiveBWGBps is the DRAM bandwidth a kernel can actually draw.
// Few active CUs cannot keep enough requests in flight to saturate HBM,
// so bandwidth scales down below 32 CUs — this is why config #3 (16 CUs)
// slows memory-bound work too, not just compute. Disabling L2 (config
// #5) costs request coalescing, slowing even streaming traffic.
func (s *Simulator) effectiveBWGBps(eff float64) float64 {
	cuScale := minF(1, float64(s.cfg.NumCUs)/32)
	if s.cfg.L2MB == 0 {
		eff *= noL2BWPenalty
	}
	return s.cfg.HBMGBps * eff * cuScale
}

// blockedEff applies the no-L1 penalty to blocked-kernel efficiency.
func (s *Simulator) blockedEff(eff float64) float64 {
	if s.cfg.L1KBPerCU == 0 {
		return eff * noL1ComputePenalty
	}
	return eff
}

// Price models the execution of op and returns the invocation record.
func (s *Simulator) Price(op tensor.Op) Invocation {
	var computeUS, readTraffic float64
	bwEff := streamBWEff

	switch o := op.(type) {
	case tensor.GEMM:
		computeUS = flopsToUS(o.FLOPs(), s.cfg.PeakGFLOPs()*s.blockedEff(gemmEfficiency(o, s.cfg)))
		readTraffic = s.gemmReadTraffic(o)
	case tensor.Conv2D:
		computeUS = flopsToUS(o.FLOPs(), s.cfg.PeakGFLOPs()*s.blockedEff(convEfficiency(o, s.cfg)))
		readTraffic = s.convReadTraffic(o)
	case tensor.Elementwise:
		// Transcendental-heavy pointwise kernels (sigmoid/tanh) run the
		// VALU at a modest fraction of FMA peak.
		computeUS = flopsToUS(op.FLOPs(), s.cfg.PeakGFLOPs()*0.25)
		readTraffic = op.BytesRead()
	case tensor.Reduction:
		computeUS = flopsToUS(op.FLOPs(), s.cfg.PeakGFLOPs()*0.15)
		readTraffic = op.BytesRead()
	case tensor.Embedding:
		computeUS = flopsToUS(op.FLOPs(), s.cfg.PeakGFLOPs()*0.10)
		// Gathers hit the table randomly; cache coverage of the table
		// decides how much reaches DRAM.
		hit := s.reuseHit(o.WorkingSet())
		readTraffic = op.BytesRead() * (1 - hit)
		bwEff = gatherBWEff
	default:
		computeUS = flopsToUS(op.FLOPs(), s.cfg.PeakGFLOPs()*0.25)
		readTraffic = op.BytesRead()
	}

	writeTraffic := op.BytesWritten()
	memUS := bytesToUS(readTraffic+writeTraffic, s.effectiveBWGBps(bwEff))
	execUS := maxF(computeUS, memUS)
	timeUS := s.cfg.LaunchOverheadUS + execUS

	// Counters: stalls accrue when the write path cannot hide behind
	// compute; proportional to the write share of memory time.
	var stallCycles float64
	if memUS > computeUS && readTraffic+writeTraffic > 0 {
		writeShare := writeTraffic / (readTraffic + writeTraffic)
		stallCycles = (memUS - computeUS) * writeShare * s.cfg.ClockGHz * 1e3
	}

	label := opLabel(op)
	return Invocation{
		Kernel:    KernelName(op),
		Signature: op.Signature(),
		Label:     label,
		Kind:      op.Kind(),
		TimeUS:    timeUS,
		Counters: Counters{
			VALUInsts:           op.FLOPs() / vegaSIMDLanes,
			LoadBytes:           readTraffic,
			StoreBytes:          writeTraffic,
			MemWriteStallCycles: stallCycles,
		},
	}
}

// gemmReadTraffic models DRAM read bytes for a blocked GEMM: each
// operand is read cold once; tiling re-reads A once per column-tile pass
// and B once per row-tile pass, with repeats filtered by the caches.
func (s *Simulator) gemmReadTraffic(o tensor.GEMM) float64 {
	t := selectGEMMTile(o.M, o.N)
	aBytes := float64(o.M) * float64(o.K) * tensor.ElemSize
	bBytes := float64(o.K) * float64(o.N) * tensor.ElemSize
	cBytes := float64(o.M) * float64(o.N) * tensor.ElemSize

	passesA := float64(ceilDiv(o.N, t.tn))
	passesB := float64(ceilDiv(o.M, t.tm))

	traffic := aBytes + bBytes + cBytes
	traffic += (passesA - 1) * aBytes * (1 - s.reuseHit(aBytes))
	traffic += (passesB - 1) * bBytes * (1 - s.reuseHit(bBytes))
	return traffic
}

// convReadTraffic models DRAM read bytes for a convolution: the input is
// revisited once per overlapping filter tap (minus stride skips), with
// repeats filtered by cache coverage of the sliding band; the filter is
// tiny and reused from cache after the cold read.
func (s *Simulator) convReadTraffic(o tensor.Conv2D) float64 {
	inBytes := float64(o.N) * float64(o.C) * float64(o.H) * float64(o.W) * tensor.ElemSize
	filtBytes := float64(o.OutC) * float64(o.C) * float64(o.KH) * float64(o.KW) * tensor.ElemSize

	repeat := float64(o.KH*o.KW)/float64(o.SH*o.SW) - 1
	if repeat < 0 {
		repeat = 0
	}
	band := float64(o.C) * float64(o.KH) * float64(o.W) * tensor.ElemSize * float64(o.N)
	return inBytes + filtBytes + repeat*inBytes*(1-s.reuseHit(band))
}

func flopsToUS(flops, gflopsPerS float64) float64 {
	if flops == 0 {
		return 0
	}
	return flops / (gflopsPerS * 1e9) * usPerSecond
}

func bytesToUS(bytes, gbPerS float64) float64 {
	if bytes == 0 {
		return 0
	}
	return bytes / (gbPerS * 1e9) * usPerSecond
}

func opLabel(op tensor.Op) string {
	switch o := op.(type) {
	case tensor.GEMM:
		return o.Label
	case tensor.Conv2D:
		return o.Label
	case tensor.Elementwise:
		return o.Label
	case tensor.Reduction:
		return o.Label
	case tensor.Embedding:
		return o.Label
	default:
		return ""
	}
}

// PriceAll prices a batch of ops and returns the invocations along with
// their total time in microseconds.
func (s *Simulator) PriceAll(ops []tensor.Op) ([]Invocation, float64) {
	invs := make([]Invocation, len(ops))
	var total float64
	for i, op := range ops {
		invs[i] = s.Price(op)
		total += invs[i].TimeUS
	}
	return invs, total
}

// Speedup returns how much faster this simulator's config runs the given
// ops than other does (time_other / time_self).
func (s *Simulator) Speedup(other *Simulator, ops []tensor.Op) (float64, error) {
	_, self := s.PriceAll(ops)
	_, oth := other.PriceAll(ops)
	if self == 0 {
		return 0, fmt.Errorf("gpusim: zero-time workload under config %s", s.cfg.Name)
	}
	return oth / self, nil
}
