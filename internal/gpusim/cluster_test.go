package gpusim

import (
	"math"
	"testing"
)

func TestClusterValidate(t *testing.T) {
	cases := []struct {
		name    string
		cfg     ClusterConfig
		wantErr bool
	}{
		{"zero value (single GPU)", ClusterConfig{}, false},
		{"canonical single GPU", SingleGPU(), false},
		{"default 4-GPU ring", DefaultCluster(4), false},
		{"mesh", ClusterConfig{GPUs: 8, Topology: TopologyFullMesh, LinkGBps: 50}, false},
		{"single GPU ignores interconnect", ClusterConfig{GPUs: 1, LinkGBps: -3}, false},
		{"negative GPUs", ClusterConfig{GPUs: -2, LinkGBps: 25}, true},
		{"zero GPUs with interconnect", ClusterConfig{GPUs: 0, LinkGBps: 25}, true},
		{"missing topology", ClusterConfig{GPUs: 4, LinkGBps: 25}, true},
		{"unknown topology", ClusterConfig{GPUs: 4, Topology: "torus", LinkGBps: 25}, true},
		{"zero bandwidth", ClusterConfig{GPUs: 4, Topology: TopologyRing}, true},
		{"NaN bandwidth", ClusterConfig{GPUs: 4, Topology: TopologyRing, LinkGBps: math.NaN()}, true},
		{"infinite bandwidth", ClusterConfig{GPUs: 4, Topology: TopologyRing, LinkGBps: math.Inf(1)}, true},
		{"negative latency", ClusterConfig{GPUs: 4, Topology: TopologyRing, LinkGBps: 25, LinkLatencyUS: -1}, true},
		{"overlap above 1", ClusterConfig{GPUs: 4, Topology: TopologyRing, LinkGBps: 25, Overlap: 1.5}, true},
		{"negative overlap", ClusterConfig{GPUs: 4, Topology: TopologyRing, LinkGBps: 25, Overlap: -0.1}, true},
	}
	for _, tc := range cases {
		if err := tc.cfg.Validate(); (err != nil) != tc.wantErr {
			t.Errorf("%s: Validate() = %v, wantErr %v", tc.name, err, tc.wantErr)
		}
	}
}

func TestClusterNormalized(t *testing.T) {
	for _, c := range []ClusterConfig{
		{},
		{GPUs: 1, Topology: TopologyRing, LinkGBps: 25, LinkLatencyUS: 2, Overlap: 0.5},
		{GPUs: 0, LinkGBps: 99},
		{GPUs: -4},
	} {
		if got := c.Normalized(); got != SingleGPU() {
			t.Errorf("Normalized(%+v) = %+v, want canonical single GPU", c, got)
		}
	}
	multi := DefaultCluster(4)
	if multi.Normalized() != multi {
		t.Errorf("multi-GPU config must normalize to itself")
	}
}

func TestParseTopology(t *testing.T) {
	if tp, err := ParseTopology("ring"); err != nil || tp != TopologyRing {
		t.Errorf("ParseTopology(ring) = %v, %v", tp, err)
	}
	if tp, err := ParseTopology("mesh"); err != nil || tp != TopologyFullMesh {
		t.Errorf("ParseTopology(mesh) = %v, %v", tp, err)
	}
	if _, err := ParseTopology("hypercube"); err == nil {
		t.Error("ParseTopology must reject unknown topologies")
	}
}

func TestRingAllReduceCost(t *testing.T) {
	const bytes = 152e6 // DS2-sized gradient: 38M params * 4 B
	const bw = 25.0     // GB/s
	// Ring: 2(N-1) steps of bytes/N at bw, zero latency.
	for _, n := range []int{2, 4, 8} {
		got := RingAllReduceUS(n, bytes, bw, 0)
		want := 2 * float64(n-1) / float64(n) * bytes / (bw * 1e9) * 1e6
		if math.Abs(got-want) > 1e-9*want {
			t.Errorf("ring N=%d: %v us, want %v us", n, got, want)
		}
	}
	// Latency adds 2(N-1) hops.
	if got, want := RingAllReduceUS(4, bytes, bw, 1.5), RingAllReduceUS(4, bytes, bw, 0)+6*1.5; math.Abs(got-want) > 1e-9 {
		t.Errorf("ring latency term: %v, want %v", got, want)
	}
	// Degenerate inputs cost nothing.
	if RingAllReduceUS(1, bytes, bw, 0) != 0 || RingAllReduceUS(4, 0, bw, 0) != 0 {
		t.Error("single GPU or empty gradient must cost 0")
	}
}

func TestMeshFasterThanRing(t *testing.T) {
	const bytes = 640e6
	for _, n := range []int{4, 8, 16} {
		ring := RingAllReduceUS(n, bytes, 25, 1.5)
		mesh := MeshAllReduceUS(n, bytes, 25, 1.5)
		if mesh >= ring {
			t.Errorf("N=%d: mesh (%v us) must beat ring (%v us): fewer serialized steps", n, mesh, ring)
		}
	}
}

func TestAllReduceUSMatchesTopology(t *testing.T) {
	ring := ClusterConfig{GPUs: 4, Topology: TopologyRing, LinkGBps: 25, LinkLatencyUS: 1}
	mesh := ClusterConfig{GPUs: 4, Topology: TopologyFullMesh, LinkGBps: 25, LinkLatencyUS: 1}
	const bytes = 1e8
	if got, want := ring.AllReduceUS(bytes), RingAllReduceUS(4, bytes, 25, 1); got != want {
		t.Errorf("ring AllReduceUS = %v, want %v", got, want)
	}
	if got, want := mesh.AllReduceUS(bytes), MeshAllReduceUS(4, bytes, 25, 1); got != want {
		t.Errorf("mesh AllReduceUS = %v, want %v", got, want)
	}
	if SingleGPU().AllReduceUS(bytes) != 0 {
		t.Error("single GPU all-reduce must cost 0")
	}
}

func TestExposedCommUS(t *testing.T) {
	c := ClusterConfig{GPUs: 2, Topology: TopologyRing, LinkGBps: 25, Overlap: 0.5}
	if got := c.ExposedCommUS(100, 100); got != 50 {
		t.Errorf("half-overlapped comm: %v, want 50", got)
	}
	if got := c.ExposedCommUS(40, 100); got != 0 {
		t.Errorf("fully hidden comm: %v, want 0", got)
	}
	noOverlap := ClusterConfig{GPUs: 2, Topology: TopologyRing, LinkGBps: 25}
	if got := noOverlap.ExposedCommUS(100, 1e9); got != 100 {
		t.Errorf("zero overlap exposes everything: %v, want 100", got)
	}
}

func TestShardBatch(t *testing.T) {
	cases := []struct {
		gpus, batch, want int
	}{
		{1, 64, 64}, {0, 64, 64}, {2, 64, 32}, {4, 64, 16}, {8, 64, 8},
		{3, 64, 22}, // ceiling: 3*22 >= 64
		{8, 4, 1},
	}
	for _, tc := range cases {
		c := ClusterConfig{GPUs: tc.gpus}
		if got := c.ShardBatch(tc.batch); got != tc.want {
			t.Errorf("ShardBatch(gpus=%d, batch=%d) = %d, want %d", tc.gpus, tc.batch, got, tc.want)
		}
	}
}

func TestClusterString(t *testing.T) {
	if got := SingleGPU().String(); got != "1xGPU" {
		t.Errorf("SingleGPU.String() = %q", got)
	}
	c := ClusterConfig{GPUs: 4, Topology: TopologyRing, LinkGBps: 25}
	if got := c.String(); got != "4xGPU ring 25 GB/s" {
		t.Errorf("String() = %q", got)
	}
}
