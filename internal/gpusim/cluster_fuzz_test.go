package gpusim

import (
	"math"
	"testing"
)

// FuzzClusterValidate drives ClusterConfig.Validate with arbitrary
// field combinations: any configuration Validate accepts must produce a
// finite, non-negative all-reduce cost for any finite positive gradient
// size, and the cost model must never panic. Configurations Validate
// rejects must carry a non-empty error.
func FuzzClusterValidate(f *testing.F) {
	f.Add(1, "ring", 25.0, 1.5, 0.5, 152e6)
	f.Add(4, "ring", 25.0, 0.0, 0.0, 640e6)
	f.Add(8, "mesh", 50.0, 2.0, 1.0, 1e3)
	f.Add(0, "", 0.0, 0.0, 0.0, 1e9)
	f.Add(-3, "torus", -1.0, -1.0, 2.0, 0.5)
	f.Add(1024, "mesh", 1e-3, 1e6, 0.25, 1e12)

	f.Fuzz(func(t *testing.T, gpus int, topology string, linkGBps, latencyUS, overlap, bytes float64) {
		cfg := ClusterConfig{
			GPUs:          gpus,
			Topology:      Topology(topology),
			LinkGBps:      linkGBps,
			LinkLatencyUS: latencyUS,
			Overlap:       overlap,
		}
		err := cfg.Validate()
		if err != nil {
			if err.Error() == "" {
				t.Fatal("invalid config produced an empty error")
			}
			return
		}

		// Valid configs must survive normalization and stay valid.
		norm := cfg.Normalized()
		if nerr := norm.Validate(); nerr != nil {
			t.Fatalf("normalized form of valid config %+v became invalid: %v", cfg, nerr)
		}

		// Pin the gradient size to a finite positive value (capped well
		// above any real model); the cost model's contract covers that
		// domain.
		if math.IsNaN(bytes) || math.IsInf(bytes, 0) || bytes < 0 || bytes > 1e30 {
			bytes = 1
		}
		for _, b := range []float64{0, 1, bytes, 152e6} {
			cost := cfg.AllReduceUS(b)
			if math.IsNaN(cost) || math.IsInf(cost, 0) || cost < 0 {
				t.Fatalf("AllReduceUS(%v) = %v for valid config %+v", b, cost, cfg)
			}
			if b == 0 && cost != 0 {
				t.Fatalf("empty gradient must cost 0, got %v", cost)
			}
			// The exposed share never exceeds the full cost and never
			// goes negative, for any compute time.
			for _, compute := range []float64{0, 1, 1e6} {
				exposed := cfg.ExposedCommUS(cost, compute)
				if exposed < 0 || exposed > cost {
					t.Fatalf("ExposedCommUS(%v, %v) = %v outside [0, %v]", cost, compute, exposed, cost)
				}
			}
		}

		// Sharding must cover the global batch: GPUs * shard >= batch.
		for _, batch := range []int{1, 7, 64} {
			shard := cfg.ShardBatch(batch)
			n := cfg.Normalized().GPUs
			if shard <= 0 || shard*n < batch {
				t.Fatalf("ShardBatch(%d) = %d on %d GPUs does not cover the batch", batch, shard, n)
			}
		}
	})
}

// FuzzAllReduceCost fuzzes the topology cost functions directly: for
// any positive finite inputs the cost is finite, non-negative, and
// monotone in the gradient size.
func FuzzAllReduceCost(f *testing.F) {
	f.Add(2, 152e6, 25.0, 1.5)
	f.Add(8, 640e6, 50.0, 0.0)
	f.Add(3, 1.0, 1e-3, 1e3)

	f.Fuzz(func(t *testing.T, gpus int, bytes, linkGBps, latencyUS float64) {
		if gpus < 0 {
			gpus = -gpus
		}
		gpus = gpus%1024 + 1
		clamp := func(v, lo, hi, fallback float64) float64 {
			if math.IsNaN(v) || v < lo || v > hi {
				return fallback
			}
			return v
		}
		bytes = clamp(bytes, 1, 1e30, 1e6)
		linkGBps = clamp(linkGBps, MinLinkGBps, MaxLinkGBps, 25)
		latencyUS = clamp(latencyUS, 0, MaxLinkLatencyUS, 0.5)

		for name, cost := range map[string]func(int, float64, float64, float64) float64{
			"ring": RingAllReduceUS,
			"mesh": MeshAllReduceUS,
		} {
			c := cost(gpus, bytes, linkGBps, latencyUS)
			if math.IsNaN(c) || math.IsInf(c, 0) || c < 0 {
				t.Fatalf("%s(%d, %v, %v, %v) = %v", name, gpus, bytes, linkGBps, latencyUS, c)
			}
			if gpus > 1 && c == 0 {
				t.Fatalf("%s must charge a positive cost for a real exchange", name)
			}
			if bigger := cost(gpus, bytes*2, linkGBps, latencyUS); bigger < c {
				t.Fatalf("%s not monotone in bytes: %v for 2x bytes < %v", name, bigger, c)
			}
		}
	})
}
