package gpusim

import (
	"fmt"
	"math"
)

// Topology names the interconnect wiring of a multi-GPU node.
type Topology string

const (
	// TopologyRing wires the GPUs in a ring (each GPU has one inbound
	// and one outbound link), the layout of the bandwidth-optimal ring
	// all-reduce.
	TopologyRing Topology = "ring"
	// TopologyFullMesh wires every GPU pair directly (N-1 links per
	// GPU), so a reduce-scatter/all-gather pair completes in two steps.
	TopologyFullMesh Topology = "mesh"
)

// ParseTopology maps a CLI spelling to a Topology.
func ParseTopology(s string) (Topology, error) {
	switch Topology(s) {
	case TopologyRing:
		return TopologyRing, nil
	case TopologyFullMesh:
		return TopologyFullMesh, nil
	default:
		return "", fmt.Errorf("gpusim: unknown topology %q (want %q or %q)", s, TopologyRing, TopologyFullMesh)
	}
}

// ClusterConfig describes a data-parallel multi-GPU node: how many
// replicas of the (per-GPU) hardware configuration train together and
// what interconnect carries the gradient all-reduce between them. The
// zero value means "one GPU, no interconnect" (see Normalized), so
// existing single-GPU specs work unchanged. ClusterConfig is a flat
// comparable struct and participates as a value in the engine's
// profile-cache key.
type ClusterConfig struct {
	// GPUs is the number of data-parallel replicas; <= 1 means a single
	// GPU and disables the communication model entirely.
	GPUs int
	// Topology selects the interconnect wiring (ring or full mesh).
	Topology Topology
	// LinkGBps is the bandwidth of one unidirectional link in GB/s.
	LinkGBps float64
	// LinkLatencyUS is the per-hop message latency in microseconds.
	LinkLatencyUS float64
	// Overlap is the fraction of the per-step compute time the
	// all-reduce can hide behind (gradients become available
	// progressively during the backward pass); in [0,1].
	Overlap float64
}

// SingleGPU is the canonical one-GPU cluster: no interconnect, no
// communication term.
func SingleGPU() ClusterConfig { return ClusterConfig{GPUs: 1} }

// Default interconnect parameters for DefaultCluster, loosely modeled
// on a PCIe/xGMI-class link between workstation GPUs.
const (
	DefaultLinkGBps      = 25.0
	DefaultLinkLatencyUS = 1.5
	DefaultOverlap       = 0.5
)

// DefaultCluster returns a ring-connected n-GPU cluster with the
// default link parameters — the configuration the CLI flags start from.
func DefaultCluster(n int) ClusterConfig {
	if n <= 1 {
		return SingleGPU()
	}
	return ClusterConfig{
		GPUs:          n,
		Topology:      TopologyRing,
		LinkGBps:      DefaultLinkGBps,
		LinkLatencyUS: DefaultLinkLatencyUS,
		Overlap:       DefaultOverlap,
	}
}

// Normalized maps every single-GPU spelling (zero value, GPUs 0 or 1
// with stray interconnect fields) to the canonical SingleGPU value, so
// all of them share one profile-cache key. Multi-GPU configs are
// returned unchanged.
func (c ClusterConfig) Normalized() ClusterConfig {
	if c.GPUs <= 1 {
		return SingleGPU()
	}
	return c
}

// Physical bounds on the interconnect model. Outside these the
// analytical formulas stop meaning anything (and at float extremes stop
// being finite), so Validate rejects them.
const (
	// MaxClusterGPUs bounds the modeled node size.
	MaxClusterGPUs = 4096
	// MinLinkGBps / MaxLinkGBps bound the per-link bandwidth (1 MB/s to
	// 1 PB/s).
	MinLinkGBps = 1e-3
	MaxLinkGBps = 1e6
	// MaxLinkLatencyUS bounds the per-hop latency at one second.
	MaxLinkLatencyUS = 1e6
)

// Validate reports whether the cluster configuration is physically
// meaningful. Single-GPU configurations are always valid (the
// interconnect fields are unused); multi-GPU configurations need a
// known topology, a link bandwidth and latency within the model's
// physical bounds, and an overlap fraction in [0,1].
func (c ClusterConfig) Validate() error {
	if c.GPUs <= 0 && c != (ClusterConfig{}) {
		return fmt.Errorf("gpusim: cluster: GPU count must be positive, got %d", c.GPUs)
	}
	if c.GPUs <= 1 {
		return nil
	}
	switch {
	case c.GPUs > MaxClusterGPUs:
		return fmt.Errorf("gpusim: cluster: GPU count %d exceeds the modeled maximum %d", c.GPUs, MaxClusterGPUs)
	case c.Topology != TopologyRing && c.Topology != TopologyFullMesh:
		return fmt.Errorf("gpusim: cluster: unknown topology %q (want %q or %q)", c.Topology, TopologyRing, TopologyFullMesh)
	case math.IsNaN(c.LinkGBps) || c.LinkGBps < MinLinkGBps || c.LinkGBps > MaxLinkGBps:
		return fmt.Errorf("gpusim: cluster: link bandwidth must be in [%g, %g] GB/s, got %v", MinLinkGBps, MaxLinkGBps, c.LinkGBps)
	case math.IsNaN(c.LinkLatencyUS) || c.LinkLatencyUS < 0 || c.LinkLatencyUS > MaxLinkLatencyUS:
		return fmt.Errorf("gpusim: cluster: link latency must be in [0, %g] us, got %v", MaxLinkLatencyUS, c.LinkLatencyUS)
	case math.IsNaN(c.Overlap) || c.Overlap < 0 || c.Overlap > 1:
		return fmt.Errorf("gpusim: cluster: overlap fraction must be in [0,1], got %v", c.Overlap)
	}
	return nil
}

// ShardBatch is the per-GPU share of a global minibatch under data
// parallelism (ceiling division: the last shard may run underfilled,
// but every GPU steps in lockstep at the padded size).
func (c ClusterConfig) ShardBatch(globalBatch int) int {
	n := c.GPUs
	if n <= 1 {
		return globalBatch
	}
	return (globalBatch + n - 1) / n
}

// RingAllReduceUS is the analytical cost of a bandwidth-optimal ring
// all-reduce of `bytes` gradient bytes over `gpus` GPUs: 2(N-1) steps,
// each moving bytes/N per GPU over one link and paying one hop latency.
func RingAllReduceUS(gpus int, bytes, linkGBps, latencyUS float64) float64 {
	if gpus <= 1 || !(bytes > 0) {
		return 0
	}
	steps := 2 * float64(gpus-1)
	chunk := bytes / float64(gpus)
	return steps * (bytesToUS(chunk, linkGBps) + latencyUS)
}

// MeshAllReduceUS is the analytical cost of a direct reduce-scatter /
// all-gather pair on a fully-connected topology: two steps, each
// sending bytes/N to every peer in parallel over the N-1 dedicated
// links.
func MeshAllReduceUS(gpus int, bytes, linkGBps, latencyUS float64) float64 {
	if gpus <= 1 || !(bytes > 0) {
		return 0
	}
	chunk := bytes / float64(gpus)
	return 2 * (bytesToUS(chunk, linkGBps) + latencyUS)
}

// AllReduceUS is the modeled wall-clock cost of all-reducing `bytes`
// gradient bytes across the cluster, before any compute overlap. It is
// zero for a single GPU or an empty gradient.
func (c ClusterConfig) AllReduceUS(bytes float64) float64 {
	c = c.Normalized()
	if c.GPUs <= 1 || !(bytes > 0) {
		return 0
	}
	if c.Topology == TopologyFullMesh {
		return MeshAllReduceUS(c.GPUs, bytes, c.LinkGBps, c.LinkLatencyUS)
	}
	return RingAllReduceUS(c.GPUs, bytes, c.LinkGBps, c.LinkLatencyUS)
}

// ExposedCommUS is the part of an all-reduce that lengthens the step
// after hiding behind the configured fraction of the step's compute.
// The result is always in [0, allReduceUS].
func (c ClusterConfig) ExposedCommUS(allReduceUS, computeUS float64) float64 {
	ov := c.Normalized().Overlap
	if !(ov > 0) {
		return allReduceUS
	}
	if ov > 1 {
		ov = 1
	}
	exposed := allReduceUS - ov*computeUS
	if exposed < 0 {
		return 0
	}
	return exposed
}

// String renders the cluster for reports ("4xGPU ring 25 GB/s").
func (c ClusterConfig) String() string {
	c = c.Normalized()
	if c.GPUs <= 1 {
		return "1xGPU"
	}
	return fmt.Sprintf("%dxGPU %s %g GB/s", c.GPUs, c.Topology, c.LinkGBps)
}
