package gpusim

import (
	"fmt"

	"seqpoint/internal/tensor"
)

// Bound classifies what limits a kernel's execution time under a given
// configuration — the first question any profiling study asks of a
// trace, and the quantity whose SL-dependence explains why different
// hardware changes speed different iterations up by different amounts
// (the paper's Figs 13/14).
type Bound int

const (
	// BoundCompute: the arithmetic pipeline is the bottleneck.
	BoundCompute Bound = iota
	// BoundMemory: DRAM bandwidth is the bottleneck.
	BoundMemory
	// BoundLaunch: fixed launch overhead exceeds the execution time —
	// typical of the per-timestep kernels of short-SL iterations.
	BoundLaunch
)

// String names the bound.
func (b Bound) String() string {
	switch b {
	case BoundCompute:
		return "compute"
	case BoundMemory:
		return "memory"
	case BoundLaunch:
		return "launch"
	default:
		return fmt.Sprintf("bound(%d)", int(b))
	}
}

// Explanation is the cost breakdown of one priced op.
type Explanation struct {
	// Kernel is the dispatched symbol.
	Kernel string
	// ComputeUS and MemoryUS are the two roofline legs; LaunchUS the
	// fixed overhead. TimeUS = LaunchUS + max(ComputeUS, MemoryUS).
	ComputeUS, MemoryUS, LaunchUS, TimeUS float64
	// Bound is the classified limiter.
	Bound Bound
	// ArithmeticIntensity is FLOPs per DRAM byte moved — the roofline
	// x-axis.
	ArithmeticIntensity float64
}

// Explain prices op and returns the full breakdown rather than just the
// invocation record.
func (s *Simulator) Explain(op tensor.Op) Explanation {
	inv := s.Price(op)
	// Recompute the legs the same way Price does.
	computeUS, memUS := s.rooflineLegs(op)

	ex := Explanation{
		Kernel:    inv.Kernel,
		ComputeUS: computeUS,
		MemoryUS:  memUS,
		LaunchUS:  s.cfg.LaunchOverheadUS,
		TimeUS:    inv.TimeUS,
	}
	exec := maxF(computeUS, memUS)
	switch {
	case s.cfg.LaunchOverheadUS > exec:
		ex.Bound = BoundLaunch
	case computeUS >= memUS:
		ex.Bound = BoundCompute
	default:
		ex.Bound = BoundMemory
	}
	if bytes := inv.Counters.LoadBytes + inv.Counters.StoreBytes; bytes > 0 {
		ex.ArithmeticIntensity = op.FLOPs() / bytes
	}
	return ex
}

// rooflineLegs returns the compute and memory times for op, mirroring
// the switch in Price.
func (s *Simulator) rooflineLegs(op tensor.Op) (computeUS, memUS float64) {
	var readTraffic float64
	bwEff := streamBWEff
	switch o := op.(type) {
	case tensor.GEMM:
		computeUS = flopsToUS(o.FLOPs(), s.cfg.PeakGFLOPs()*s.blockedEff(gemmEfficiency(o, s.cfg)))
		readTraffic = s.gemmReadTraffic(o)
	case tensor.Conv2D:
		computeUS = flopsToUS(o.FLOPs(), s.cfg.PeakGFLOPs()*s.blockedEff(convEfficiency(o, s.cfg)))
		readTraffic = s.convReadTraffic(o)
	case tensor.Elementwise:
		computeUS = flopsToUS(op.FLOPs(), s.cfg.PeakGFLOPs()*0.25)
		readTraffic = op.BytesRead()
	case tensor.Reduction:
		computeUS = flopsToUS(op.FLOPs(), s.cfg.PeakGFLOPs()*0.15)
		readTraffic = op.BytesRead()
	case tensor.Embedding:
		computeUS = flopsToUS(op.FLOPs(), s.cfg.PeakGFLOPs()*0.10)
		hit := s.reuseHit(o.WorkingSet())
		readTraffic = op.BytesRead() * (1 - hit)
		bwEff = gatherBWEff
	default:
		computeUS = flopsToUS(op.FLOPs(), s.cfg.PeakGFLOPs()*0.25)
		readTraffic = op.BytesRead()
	}
	memUS = bytesToUS(readTraffic+op.BytesWritten(), s.effectiveBWGBps(bwEff))
	return computeUS, memUS
}

// BoundShares classifies every op and returns the fraction of total
// time attributed to kernels of each bound class — the iteration-level
// roofline summary.
func (s *Simulator) BoundShares(ops []tensor.Op) map[Bound]float64 {
	shares := make(map[Bound]float64, 3)
	var total float64
	for _, op := range ops {
		ex := s.Explain(op)
		shares[ex.Bound] += ex.TimeUS
		total += ex.TimeUS
	}
	if total > 0 {
		for b := range shares {
			shares[b] /= total
		}
	}
	return shares
}
