package gpusim

import (
	"math"
	"testing"

	"seqpoint/internal/tensor"
)

func TestExplainConsistentWithPrice(t *testing.T) {
	sim := mustSim(t, VegaFE())
	ops := []tensor.Op{
		tensor.NewGEMM(2048, 2048, 1024, "g"),
		tensor.NewElementwise(1<<20, 4, "e"),
		tensor.NewEmbedding(30000, 512, 4096, "m"),
	}
	for _, op := range ops {
		ex := sim.Explain(op)
		inv := sim.Price(op)
		if ex.TimeUS != inv.TimeUS {
			t.Errorf("%s: Explain time %v != Price time %v", op.Signature(), ex.TimeUS, inv.TimeUS)
		}
		want := ex.LaunchUS + math.Max(ex.ComputeUS, ex.MemoryUS)
		if math.Abs(ex.TimeUS-want) > 1e-9*want {
			t.Errorf("%s: TimeUS %v != launch+max(legs) %v", op.Signature(), ex.TimeUS, want)
		}
		if ex.Kernel != inv.Kernel {
			t.Errorf("%s: kernel mismatch", op.Signature())
		}
	}
}

func TestExplainBoundClassification(t *testing.T) {
	sim := mustSim(t, VegaFE())

	// Deep, large GEMM: high arithmetic intensity, compute-bound.
	g := sim.Explain(tensor.NewGEMM(4096, 4096, 4096, "g"))
	if g.Bound != BoundCompute {
		t.Errorf("large GEMM bound = %v, want compute", g.Bound)
	}
	if g.ArithmeticIntensity < 10 {
		t.Errorf("large GEMM intensity = %v", g.ArithmeticIntensity)
	}

	// Huge streaming pointwise op: memory-bound.
	e := sim.Explain(tensor.NewElementwise(1<<26, 1, "e"))
	if e.Bound != BoundMemory {
		t.Errorf("streaming op bound = %v, want memory", e.Bound)
	}

	// Tiny op: launch-bound.
	tiny := sim.Explain(tensor.NewElementwise(64, 1, "t"))
	if tiny.Bound != BoundLaunch {
		t.Errorf("tiny op bound = %v, want launch", tiny.Bound)
	}
}

func TestBoundString(t *testing.T) {
	for b, want := range map[Bound]string{
		BoundCompute: "compute",
		BoundMemory:  "memory",
		BoundLaunch:  "launch",
		Bound(7):     "bound(7)",
	} {
		if got := b.String(); got != want {
			t.Errorf("Bound(%d).String() = %q, want %q", int(b), got, want)
		}
	}
}

func TestBoundSharesSumToOne(t *testing.T) {
	sim := mustSim(t, VegaFE())
	ops := []tensor.Op{
		tensor.NewGEMM(4096, 4096, 4096, "g"),
		tensor.NewElementwise(1<<26, 1, "e"),
		tensor.NewElementwise(64, 1, "t"),
	}
	shares := sim.BoundShares(ops)
	var total float64
	for _, v := range shares {
		total += v
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("shares sum to %v", total)
	}
	// Each of the three classes is represented by construction.
	for _, b := range []Bound{BoundCompute, BoundMemory, BoundLaunch} {
		if shares[b] <= 0 {
			t.Errorf("bound %v has zero share", b)
		}
	}
	if len(sim.BoundShares(nil)) != 0 {
		t.Error("empty op list should give empty shares")
	}
}

func TestBoundSharesShiftWithConfig(t *testing.T) {
	// Disabling L1 (config #4) slows compute legs of blocked kernels:
	// a GEMM near the roofline ridge can flip from compute- to
	// memory-bound territory differently across configs. At minimum,
	// classifications must stay valid on every config.
	ops := []tensor.Op{
		tensor.NewGEMM(512, 512, 256, "g"),
		tensor.NewGEMM(64, 64, 2048, "s"),
		tensor.NewElementwise(1<<22, 2, "e"),
	}
	for _, cfg := range TableII() {
		sim := mustSim(t, cfg)
		for _, op := range ops {
			ex := sim.Explain(op)
			if ex.Bound != BoundCompute && ex.Bound != BoundMemory && ex.Bound != BoundLaunch {
				t.Errorf("config %s: invalid bound %v", cfg.Name, ex.Bound)
			}
			if ex.TimeUS <= 0 {
				t.Errorf("config %s: non-positive time", cfg.Name)
			}
		}
	}
}
