// Package gpusim is an analytical GPU performance model standing in for
// the paper's AMD Radeon Vega Frontier Edition and its profiling stack
// (Radeon Compute Profiler). It prices the logical ops emitted by
// network layers (internal/tensor) as concrete kernel invocations with
// runtimes and performance counters, under a configurable hardware
// description (clock, compute units, L1/L2 caches, memory bandwidth).
//
// The model is a per-kernel roofline:
//
//	time = launch + max(flops / (peak * efficiency), dramBytes / bandwidth)
//
// where efficiency captures how well the kernel's shape fills the GPU
// (small GEMMs from short sequence lengths underutilize compute units)
// and dramBytes discounts cache-served reuse using a working-set model.
// This reproduces, to first order, every behaviour the SeqPoint paper
// depends on: iteration runtime growing near-linearly with sequence
// length, shape-dependent kernel selection, and configuration-dependent
// sensitivity that varies across sequence lengths (Figs 13 and 14).
package gpusim

import "fmt"

// Config describes one hardware configuration, mirroring Table II of the
// paper. The zero value is not usable; start from VegaFE or the
// TableII helpers.
type Config struct {
	// Name labels the configuration in reports ("#1".."#5").
	Name string
	// ClockGHz is the GPU core clock (GCLK in the paper).
	ClockGHz float64
	// NumCUs is the number of active compute units.
	NumCUs int
	// L1KBPerCU is the vector L1 cache per CU in KiB; 0 disables L1.
	L1KBPerCU int
	// L2MB is the shared L2 cache in MiB; 0 disables L2.
	L2MB int
	// HBMGBps is the DRAM bandwidth in GB/s; fixed across Table II.
	HBMGBps float64
	// LaunchOverheadUS is the fixed host-side cost per kernel launch in
	// microseconds.
	LaunchOverheadUS float64
}

// Vega FE machine constants shared by every Table II configuration.
const (
	vegaSIMDLanes   = 64  // lanes per CU
	vegaFLOPsPerLn  = 2   // FMA = 2 flops per lane per cycle
	vegaHBMGBps     = 484 // HBM2 peak bandwidth
	vegaLaunchUS    = 6.0 // typical ROCm kernel-launch latency
	referenceCUs    = 64  // CU count used for config-independent kernel selection
	bytesPerKB      = 1024
	bytesPerMB      = 1024 * 1024
	usPerSecond     = 1e6
	gflopsPerTflops = 1000
)

// VegaFE returns config #1: the full-speed Radeon Vega Frontier Edition.
func VegaFE() Config {
	return Config{
		Name:             "#1",
		ClockGHz:         1.6,
		NumCUs:           64,
		L1KBPerCU:        16,
		L2MB:             4,
		HBMGBps:          vegaHBMGBps,
		LaunchOverheadUS: vegaLaunchUS,
	}
}

// TableII returns the five hardware configurations of the paper's
// Table II, in order. Config #1 is the calibration config on which
// SeqPoints are identified.
func TableII() []Config {
	c1 := VegaFE()

	c2 := c1
	c2.Name = "#2"
	c2.ClockGHz = 0.852

	c3 := c1
	c3.Name = "#3"
	c3.NumCUs = 16

	c4 := c1
	c4.Name = "#4"
	c4.L1KBPerCU = 0

	c5 := c1
	c5.Name = "#5"
	c5.L2MB = 0

	return []Config{c1, c2, c3, c4, c5}
}

// Validate reports whether the configuration is physically meaningful.
func (c Config) Validate() error {
	switch {
	case c.ClockGHz <= 0:
		return fmt.Errorf("gpusim: config %q: clock must be positive, got %v", c.Name, c.ClockGHz)
	case c.NumCUs <= 0:
		return fmt.Errorf("gpusim: config %q: CU count must be positive, got %d", c.Name, c.NumCUs)
	case c.L1KBPerCU < 0:
		return fmt.Errorf("gpusim: config %q: L1 size must be non-negative, got %d", c.Name, c.L1KBPerCU)
	case c.L2MB < 0:
		return fmt.Errorf("gpusim: config %q: L2 size must be non-negative, got %d", c.Name, c.L2MB)
	case c.HBMGBps <= 0:
		return fmt.Errorf("gpusim: config %q: bandwidth must be positive, got %v", c.Name, c.HBMGBps)
	case c.LaunchOverheadUS < 0:
		return fmt.Errorf("gpusim: config %q: launch overhead must be non-negative, got %v", c.Name, c.LaunchOverheadUS)
	}
	return nil
}

// PeakGFLOPs is the peak single-precision throughput in GFLOP/s.
func (c Config) PeakGFLOPs() float64 {
	return float64(c.NumCUs) * vegaSIMDLanes * vegaFLOPsPerLn * c.ClockGHz
}

// AggregateL1Bytes is the summed L1 capacity across active CUs.
func (c Config) AggregateL1Bytes() float64 {
	return float64(c.L1KBPerCU) * bytesPerKB * float64(c.NumCUs)
}

// L2Bytes is the L2 capacity in bytes.
func (c Config) L2Bytes() float64 {
	return float64(c.L2MB) * bytesPerMB
}

// String renders the config as a Table II row.
func (c Config) String() string {
	return fmt.Sprintf("%s: %.3f GHz, %d CUs, L1 %d KB, L2 %d MB",
		c.Name, c.ClockGHz, c.NumCUs, c.L1KBPerCU, c.L2MB)
}
