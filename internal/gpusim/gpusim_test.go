package gpusim

import (
	"strings"
	"testing"
	"testing/quick"

	"seqpoint/internal/tensor"
)

func TestTableII(t *testing.T) {
	cfgs := TableII()
	if len(cfgs) != 5 {
		t.Fatalf("TableII has %d configs, want 5", len(cfgs))
	}
	for i, c := range cfgs {
		if err := c.Validate(); err != nil {
			t.Errorf("config %d invalid: %v", i, err)
		}
	}
	if cfgs[0] != VegaFE() {
		t.Error("config #1 should be the full-speed Vega FE")
	}
	if cfgs[1].ClockGHz != 0.852 {
		t.Errorf("config #2 clock = %v, want 0.852", cfgs[1].ClockGHz)
	}
	if cfgs[2].NumCUs != 16 {
		t.Errorf("config #3 CUs = %d, want 16", cfgs[2].NumCUs)
	}
	if cfgs[3].L1KBPerCU != 0 {
		t.Errorf("config #4 L1 = %d, want 0", cfgs[3].L1KBPerCU)
	}
	if cfgs[4].L2MB != 0 {
		t.Errorf("config #5 L2 = %d, want 0", cfgs[4].L2MB)
	}
}

func TestConfigValidate(t *testing.T) {
	base := VegaFE()
	mutations := []func(*Config){
		func(c *Config) { c.ClockGHz = 0 },
		func(c *Config) { c.NumCUs = 0 },
		func(c *Config) { c.L1KBPerCU = -1 },
		func(c *Config) { c.L2MB = -1 },
		func(c *Config) { c.HBMGBps = 0 },
		func(c *Config) { c.LaunchOverheadUS = -1 },
	}
	for i, mut := range mutations {
		c := base
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d should invalidate the config", i)
		}
	}
	if err := base.Validate(); err != nil {
		t.Errorf("VegaFE should validate: %v", err)
	}
}

func TestConfigPeakGFLOPs(t *testing.T) {
	// 64 CUs x 64 lanes x 2 flops x 1.6 GHz = 13107 GFLOP/s (the Vega
	// FE's advertised ~13.1 TFLOP/s single-precision peak).
	got := VegaFE().PeakGFLOPs()
	if got < 13000 || got > 13200 {
		t.Errorf("PeakGFLOPs = %v, want ~13107", got)
	}
}

func TestNewRejectsInvalid(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("zero config should be rejected")
	}
	sim, err := New(VegaFE())
	if err != nil {
		t.Fatal(err)
	}
	if sim.Config().Name != "#1" {
		t.Errorf("Config().Name = %q", sim.Config().Name)
	}
}

func mustSim(t *testing.T, cfg Config) *Simulator {
	t.Helper()
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

func TestPricePositiveTimes(t *testing.T) {
	sim := mustSim(t, VegaFE())
	ops := []tensor.Op{
		tensor.NewGEMM(1024, 1024, 1024, "g"),
		tensor.NewConv2D(8, 3, 64, 64, 16, 3, 3, 1, 1, 1, 1, "c"),
		tensor.NewElementwise(1<<20, 4, "e"),
		tensor.NewReduction(1<<20, 64, "r"),
		tensor.NewEmbedding(30000, 512, 4096, "m"),
	}
	for _, op := range ops {
		inv := sim.Price(op)
		if inv.TimeUS <= 0 {
			t.Errorf("%s priced at %v us", op.Signature(), inv.TimeUS)
		}
		if inv.TimeUS < sim.Config().LaunchOverheadUS {
			t.Errorf("%s time %v below launch overhead", op.Signature(), inv.TimeUS)
		}
		if inv.Kernel == "" || inv.Signature == "" {
			t.Errorf("%s missing identity: %+v", op.Signature(), inv)
		}
		if inv.Counters.VALUInsts < 0 || inv.Counters.LoadBytes < 0 {
			t.Errorf("%s negative counters: %+v", op.Signature(), inv.Counters)
		}
	}
}

func TestPriceLowerClockIsSlower(t *testing.T) {
	cfgs := TableII()
	fast := mustSim(t, cfgs[0])
	slow := mustSim(t, cfgs[1]) // 852 MHz
	// A compute-bound op must slow with the clock.
	g := tensor.NewGEMM(4096, 4096, 1024, "g")
	tf, ts := fast.Price(g).TimeUS, slow.Price(g).TimeUS
	if ts <= tf {
		t.Errorf("852 MHz (%v us) should be slower than 1.6 GHz (%v us)", ts, tf)
	}
}

func TestPriceFewerCUsSlower(t *testing.T) {
	cfgs := TableII()
	full := mustSim(t, cfgs[0])
	quarter := mustSim(t, cfgs[2]) // 16 CUs
	g := tensor.NewGEMM(4096, 4096, 1024, "g")
	if quarter.Price(g).TimeUS <= full.Price(g).TimeUS {
		t.Error("16 CUs should be slower than 64 CUs on a large GEMM")
	}
	// Memory-bound streaming also slows: fewer CUs cannot saturate HBM.
	e := tensor.NewElementwise(1<<24, 1, "e")
	if quarter.Price(e).TimeUS <= full.Price(e).TimeUS {
		t.Error("16 CUs should not saturate HBM like 64 CUs")
	}
}

func TestPriceCacheDisablingHurts(t *testing.T) {
	cfgs := TableII()
	full := mustSim(t, cfgs[0])
	noL1 := mustSim(t, cfgs[3])
	noL2 := mustSim(t, cfgs[4])
	g := tensor.NewGEMM(2048, 2048, 2048, "g")
	base := full.Price(g).TimeUS
	if noL1.Price(g).TimeUS <= base {
		t.Error("disabling L1 should slow blocked GEMMs")
	}
	if noL2.Price(g).TimeUS <= base {
		t.Error("disabling L2 should slow reuse-heavy GEMMs")
	}
}

func TestPriceAllSumsTimes(t *testing.T) {
	sim := mustSim(t, VegaFE())
	ops := []tensor.Op{
		tensor.NewGEMM(64, 64, 64, "a"),
		tensor.NewElementwise(4096, 2, "b"),
	}
	invs, total := sim.PriceAll(ops)
	if len(invs) != 2 {
		t.Fatalf("got %d invocations", len(invs))
	}
	var sum float64
	for _, inv := range invs {
		sum += inv.TimeUS
	}
	if sum != total {
		t.Errorf("total %v != sum %v", total, sum)
	}
}

func TestSpeedup(t *testing.T) {
	cfgs := TableII()
	fast := mustSim(t, cfgs[0])
	slow := mustSim(t, cfgs[1])
	ops := []tensor.Op{tensor.NewGEMM(4096, 4096, 512, "g")}
	sp, err := fast.Speedup(slow, ops)
	if err != nil {
		t.Fatal(err)
	}
	if sp <= 1 {
		t.Errorf("speedup of #1 over #2 = %v, want > 1", sp)
	}
	// Clock-bound speedup cannot exceed the clock ratio.
	if limit := 1.6 / 0.852; sp > limit+1e-9 {
		t.Errorf("speedup %v exceeds clock ratio %v", sp, limit)
	}
}

func TestKernelNameStableAcrossConfigs(t *testing.T) {
	// All Table II configs are the same chip: kernel dispatch must not
	// change, or SeqPoints identified on #1 would run different code on
	// #2-#5 (the paper identifies SeqPoints once, on config #1).
	ops := []tensor.Op{
		tensor.NewGEMM(29, 25728, 1600, "classifier"),
		tensor.NewGEMM(4096, 64, 1024, "hproj"),
		tensor.NewElementwise(204800, 12, "gates"),
		tensor.NewReduction(65536, 64, "softmax_sum"),
	}
	for _, op := range ops {
		name := KernelName(op)
		if name == "" {
			t.Fatalf("empty kernel name for %s", op.Signature())
		}
	}
}

func TestKernelNameShapeSpecialization(t *testing.T) {
	// Different GEMM shapes can dispatch different tile variants.
	big := KernelName(tensor.NewGEMM(4096, 4096, 1024, "g"))
	tiny := KernelName(tensor.NewGEMM(16, 16, 1024, "g"))
	if big == tiny {
		t.Errorf("large and tiny GEMMs share kernel %q", big)
	}
	if !strings.Contains(tiny, "skinny") {
		t.Errorf("tiny GEMM should use the skinny variant: %q", tiny)
	}
}

func TestKernelNameIgnoresLayerIndices(t *testing.T) {
	a := KernelName(tensor.NewElementwise(8192, 12, "gru_0_d0_gates"))
	b := KernelName(tensor.NewElementwise(8192, 12, "gru_4_d1_gates"))
	if a != b {
		t.Errorf("same-flavor kernels differ: %q vs %q", a, b)
	}
}

func TestKernelNameSizeClasses(t *testing.T) {
	// Far-apart sizes of a size-specialized family use different
	// symbols; nearby sizes share one (Fig. 8 vs Fig. 5 behaviour).
	flavor := "" // find a specialized flavor deterministically
	for _, cand := range []string{"alpha", "beta", "gamma", "delta", "score", "gates"} {
		if _, ok := launchSizeClass(cand, 1024); ok {
			flavor = cand
			break
		}
	}
	if flavor == "" {
		t.Skip("no specialized flavor among candidates (hash-dependent)")
	}
	near1 := KernelName(tensor.NewElementwise(100000, 2, flavor))
	near2 := KernelName(tensor.NewElementwise(101000, 2, flavor))
	far := KernelName(tensor.NewElementwise(100000*300, 2, flavor))
	if near1 != near2 {
		t.Errorf("nearby sizes should share a kernel: %q vs %q", near1, near2)
	}
	if near1 == far {
		t.Errorf("300x size gap should change the kernel %q but did not (far %q)", near1, far)
	}
}

func TestWaveQuantizedOccupancy(t *testing.T) {
	cases := []struct {
		tiles, capacity int
		want            float64
	}{
		{128, 128, 1.0},
		{129, 128, 129.0 / 256},
		{64, 128, 0.5},
		{0, 128, 0},
		{128, 0, 0},
	}
	for _, tc := range cases {
		if got := waveQuantizedOccupancy(tc.tiles, tc.capacity); got != tc.want {
			t.Errorf("occupancy(%d,%d) = %v, want %v", tc.tiles, tc.capacity, got, tc.want)
		}
	}
}

func TestGEMMEfficiencyBounds(t *testing.T) {
	cfg := VegaFE()
	f := func(m, n, k uint16) bool {
		g := tensor.NewGEMM(int(m)+1, int(n)+1, int(k)+1, "g")
		eff := gemmEfficiency(g, cfg)
		return eff > 0 && eff <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickPriceTimesPositiveFinite(t *testing.T) {
	sim := mustSim(t, VegaFE())
	f := func(m, n, k uint16) bool {
		g := tensor.NewGEMM(int(m)+1, int(n)+1, int(k)+1, "g")
		inv := sim.Price(g)
		return inv.TimeUS > 0 && inv.TimeUS < 1e12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickPriceMonotonicInFLOPs(t *testing.T) {
	// For compute-bound GEMMs of the same shape class, more K means
	// more time under any config.
	for _, cfg := range TableII() {
		sim := mustSim(t, cfg)
		g1 := tensor.NewGEMM(2048, 2048, 512, "g")
		g2 := tensor.NewGEMM(2048, 2048, 2048, "g")
		if sim.Price(g2).TimeUS <= sim.Price(g1).TimeUS {
			t.Errorf("config %s: deeper GEMM should take longer", cfg.Name)
		}
	}
}

func TestCountersAddScale(t *testing.T) {
	a := Counters{VALUInsts: 1, LoadBytes: 2, StoreBytes: 3, MemWriteStallCycles: 4}
	b := a
	a.Add(b)
	if a.VALUInsts != 2 || a.LoadBytes != 4 || a.StoreBytes != 6 || a.MemWriteStallCycles != 8 {
		t.Errorf("Add: %+v", a)
	}
	s := b.Scale(3)
	if s.VALUInsts != 3 || s.LoadBytes != 6 || s.StoreBytes != 9 || s.MemWriteStallCycles != 12 {
		t.Errorf("Scale: %+v", s)
	}
}

func TestConfigString(t *testing.T) {
	s := VegaFE().String()
	for _, want := range []string{"#1", "1.600 GHz", "64 CUs", "16 KB", "4 MB"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}
