package gpusim

import (
	"fmt"

	"seqpoint/internal/tensor"
)

// gemmTile is one size-specialized GEMM kernel variant, mirroring how
// rocBLAS ships a family of macro-tile kernels and dispatches on shape.
// Because the dispatched variant depends on (M, N, K), iterations with
// different sequence lengths invoke different concrete kernels — the
// effect the paper's Fig. 5 measures.
type gemmTile struct {
	tm, tn int
	// eff is the intrinsic arithmetic efficiency of the variant when the
	// GPU is fully occupied: larger tiles amortize more and run closer
	// to peak.
	eff float64
}

// gemmTiles is ordered from largest to smallest macro-tile.
var gemmTiles = []gemmTile{
	{128, 128, 0.88},
	{128, 64, 0.84},
	{64, 64, 0.80},
	{64, 32, 0.72},
	{32, 32, 0.62},
	{16, 16, 0.45},
}

// wavesPerCUForFullOccupancy is how many concurrent tiles a CU wants in
// flight to hide latency; fewer tiles than NumCUs*this leaves the GPU
// partially idle.
const wavesPerCUForFullOccupancy = 2

// selectGEMMTile picks the kernel variant a BLAS library would dispatch
// for an MxNxK GEMM. Selection is configuration-independent (it uses the
// reference 64-CU occupancy), matching the paper's setup where all five
// Table II configs are the same chip and therefore dispatch identically:
// the SeqPoints identified on config #1 execute the same kernels on #2-#5.
func selectGEMMTile(m, n int) gemmTile {
	best := gemmTiles[len(gemmTiles)-1]
	bestScore := -1.0
	for _, t := range gemmTiles {
		tiles := ceilDiv(m, t.tm) * ceilDiv(n, t.tn)
		occ := minF(1, float64(tiles)/float64(referenceCUs*wavesPerCUForFullOccupancy))
		// Padding waste: fraction of the tile grid doing real work.
		cover := (float64(m) / float64(ceilDiv(m, t.tm)*t.tm)) *
			(float64(n) / float64(ceilDiv(n, t.tn)*t.tn))
		score := occ * cover * t.eff
		if score > bestScore {
			bestScore = score
			best = t
		}
	}
	return best
}

// depthU is the K-dimension unroll depth a Tensile-style GEMM kernel is
// compiled with: deep, 16-aligned K dimensions take the DU16 variant.
// Because attention's context GEMM has K equal to the encoder sequence
// length, the dispatched variant flips with SL — one of the mechanisms
// behind the paper's Fig. 5 only-in-one-iteration kernels.
func depthU(k int) int {
	if k >= 256 && k%16 == 0 {
		return 16
	}
	return 8
}

// globalSplitK returns the split-K factor a BLAS library applies when a
// GEMM's output grid is too small to fill the GPU but its K dimension is
// deep: the K loop is split across extra workgroups and reduced at the
// end. Returns 1 when no split is used.
func globalSplitK(o tensor.GEMM, t gemmTile) int {
	tiles := ceilDiv(o.M, t.tm) * ceilDiv(o.N, t.tn)
	if tiles < referenceCUs && o.K >= 1024 {
		return 4
	}
	return 1
}

// launchSizeClass buckets a kernel's element count into power-of-four
// launch-geometry classes. Some pointwise and reduction kernels in
// vendor libraries are compiled for a ladder of grid sizes (different
// unroll factors and workgroup counts) — for those, the class, not the
// exact size, picks the symbol; others are grid-stride loops with a
// single size-agnostic symbol. Which family a kernel falls in, and
// where its ladder boundaries sit, varies per kernel family — modeled
// here with a hash of the family name. The net effect matches what a
// real profiler sees (Figs 5 and 8): nearby sequence lengths share
// almost all kernels, distant ones differ in a minority of them.
func launchSizeClass(flavor string, elems int) (class int, specialized bool) {
	h := fnv32(flavor)
	if h&1 == 1 {
		return 0, false // size-agnostic grid-stride kernel
	}
	// log2 in half-steps so the per-family phase can shift boundaries
	// by fractions of an octave; buckets span eight half-steps (log16):
	// grid-size ladders are coarse, one template per ~16x size range.
	halfSteps := 0
	for e := elems; e > 1; e >>= 1 {
		halfSteps += 2
	}
	phase := int((h >> 1) % 8)
	return (halfSteps + phase) / 8, true
}

// fnv32 is the 32-bit FNV-1a hash (inlined to keep the package
// dependency-free and the hashing obviously deterministic).
func fnv32(s string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime32
	}
	return h
}

// kernelFlavor canonicalizes a layer-level op label into the kernel
// flavor a vendor library actually ships: layer indices and direction
// suffixes are template-irrelevant, so "gru_3_d1_gates" and
// "gru_0_d0_gates" run the same symbol. Digits are stripped; the
// remaining role string identifies the kernel family.
func kernelFlavor(label string) string {
	out := make([]byte, 0, len(label))
	for i := 0; i < len(label); i++ {
		if label[i] >= '0' && label[i] <= '9' {
			continue
		}
		out = append(out, label[i])
	}
	return string(out)
}

// KernelName returns the concrete kernel a vendor library would run for
// the op. Names are stable across configurations (all Table II configs
// are the same chip, so dispatch is identical) and shaped like real
// library symbols, so profile comparisons (unique-kernel overlap,
// Fig. 5) behave as they do under a real profiler.
func KernelName(op tensor.Op) string {
	switch o := op.(type) {
	case tensor.GEMM:
		t := selectGEMMTile(o.M, o.N)
		name := fmt.Sprintf("Cijk_gemm_MT%dx%d_DU%d", t.tm, t.tn, depthU(o.K))
		if o.M < 32 || o.N < 32 {
			name += "_skinny"
		}
		if gsu := globalSplitK(o, t); gsu > 1 {
			name += fmt.Sprintf("_GSU%d", gsu)
		}
		return name
	case tensor.Conv2D:
		// MIOpen picks winograd for small 3x3-ish filters, implicit GEMM
		// otherwise; stride >1 rules winograd out.
		if o.KH <= 3 && o.KW <= 3 && o.SH == 1 && o.SW == 1 {
			return fmt.Sprintf("miopen_winograd_k%dx%d", o.KH, o.KW)
		}
		return fmt.Sprintf("miopen_igemm_k%dx%d_s%dx%d", o.KH, o.KW, o.SH, o.SW)
	case tensor.Elementwise:
		// Pointwise kernels specialize on vector width (whether the
		// element count allows float4 accesses) and launch-size class.
		vec := 1
		if o.Elems%4 == 0 {
			vec = 4
		}
		flavor := kernelFlavor(o.Label)
		name := fmt.Sprintf("ew_%s_v%d", flavor, vec)
		if class, ok := launchSizeClass(flavor, o.Elems); ok {
			name += fmt.Sprintf("_g%d", class)
		}
		return name
	case tensor.Reduction:
		// Reductions pick a tree fan-in from the group size and a grid
		// geometry from the input size.
		fan := 256
		if o.Elems/o.Groups < 256 {
			fan = 64
		}
		flavor := kernelFlavor(o.Label)
		name := fmt.Sprintf("reduce_%s_f%d", flavor, fan)
		if class, ok := launchSizeClass(flavor, o.Elems); ok {
			name += fmt.Sprintf("_g%d", class)
		}
		return name
	case tensor.Embedding:
		return fmt.Sprintf("gather_%s", kernelFlavor(o.Label))
	default:
		return fmt.Sprintf("kernel_%s", op.Kind())
	}
}

// waveQuantizedOccupancy is the utilization of a GPU with `capacity`
// concurrent tile slots executing `tiles` tiles: the grid runs in
// ceil(tiles/capacity) full waves, and the trailing partial wave idles
// the remainder of the machine. This classic wave-quantization effect is
// what makes kernel efficiency — and therefore the speedup from changing
// clock, CU count, or caches — vary with the kernel's exact shape, i.e.
// with the iteration's sequence length (the behaviour of the paper's
// Figs 13 and 14).
func waveQuantizedOccupancy(tiles, capacity int) float64 {
	if tiles <= 0 || capacity <= 0 {
		return 0
	}
	waves := ceilDiv(tiles, capacity)
	return float64(tiles) / float64(waves*capacity)
}

// gemmEfficiency is the fraction of peak FLOP/s an MxNxK GEMM achieves
// on cfg: intrinsic tile efficiency, scaled by wave-quantized occupancy
// and grid coverage. Occupancy uses the actual CU count, which is how
// config #3 (16 CUs) hurts differently-shaped GEMMs by different
// factors, while the K-dimension depth is irrelevant to fill.
func gemmEfficiency(o tensor.GEMM, cfg Config) float64 {
	t := selectGEMMTile(o.M, o.N)
	tiles := ceilDiv(o.M, t.tm) * ceilDiv(o.N, t.tn)
	occ := waveQuantizedOccupancy(tiles, cfg.NumCUs*wavesPerCUForFullOccupancy)
	cover := (float64(o.M) / float64(ceilDiv(o.M, t.tm)*t.tm)) *
		(float64(o.N) / float64(ceilDiv(o.N, t.tn)*t.tn))
	// Very shallow K cannot keep the FMA pipeline busy within a tile.
	depth := minF(1, float64(o.K)/64)
	return t.eff * occ * cover * (0.5 + 0.5*depth)
}

// convEfficiency mirrors gemmEfficiency for convolutions: winograd is
// efficient, strided implicit GEMM less so, and the output grid fills
// the machine in quantized waves.
func convEfficiency(o tensor.Conv2D, cfg Config) float64 {
	intrinsic := 0.55
	if o.KH <= 3 && o.KW <= 3 && o.SH == 1 && o.SW == 1 {
		intrinsic = 0.75
	}
	// One conv work-group covers a tile of the output grid.
	const outputsPerWorkgroup = 64 * 8
	tiles := ceilDiv(o.N*o.OutC*o.OutH()*o.OutW(), outputsPerWorkgroup)
	occ := waveQuantizedOccupancy(tiles, cfg.NumCUs*wavesPerCUForFullOccupancy)
	return intrinsic * occ
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
