package planner_test

import (
	"errors"
	"math"
	"strings"
	"testing"

	"seqpoint/internal/planner"
	"seqpoint/internal/serving"
)

// fakeCapacityRPS is the analytic probe's per-replica capacity.
const fakeCapacityRPS = 100.0

// fakeProbe models an M/M/n-flavored fleet analytically: utilization
// rho = rate / (n × capacity), p99 grows as 1/(1-rho), overload drops
// the excess. Deterministic, instant, and monotone in replicas — the
// properties the planner's search relies on.
func fakeProbe(c planner.Candidate, rate float64) (serving.FleetSummary, error) {
	agg := fakeCapacityRPS * float64(c.Replicas)
	rho := rate / agg
	sum := serving.FleetSummary{
		Replicas: c.Replicas,
		Routing:  c.Routing,
		Policy:   "policy:" + c.Policy,
		Requests: 1000,
		Served:   1000,
	}
	if rho > 1 {
		sum.ThroughputRPS = agg
		sum.Served = int(1000 / rho)
		sum.Rejected = 1000 - sum.Served
		sum.DropRatePct = float64(sum.Rejected) / 10
	} else {
		sum.ThroughputRPS = rate
	}
	headway := math.Max(0.05, 1-rho)
	sum.P99LatencyUS = 1000 / headway
	if c.Policy == "fixed" {
		sum.P99LatencyUS *= 10
	}
	sum.MeanLatencyUS = sum.P99LatencyUS / 2
	sum.MeanWaitUS = sum.MeanLatencyUS * math.Min(rho, 1)
	sum.UtilizationPct = math.Min(rho, 1) * 100
	sum.ReplicaSeconds = 10 * float64(c.Replicas)
	if c.KVCapacityGB > 0 {
		sum.KVCapacityBytes = c.KVCapacityGB * 1e9
		sum.KVPeakBytes = 0.5e9
		sum.P99TTFTUS = sum.P99LatencyUS / 2
	}
	return sum, nil
}

// bruteMinimal finds the smallest feasible replica count by linear
// scan — the ground truth the binary search must match.
func bruteMinimal(t *testing.T, slo planner.SLO, routing string, rate float64, maxReplicas int) int {
	t.Helper()
	for n := 1; n <= maxReplicas; n++ {
		sum, err := fakeProbe(planner.Candidate{Replicas: n, Routing: routing}, rate)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := slo.Check(sum); ok {
			return n
		}
	}
	return 0
}

func TestSolveMinimality(t *testing.T) {
	// rho must reach 0.6 for p99 = 1000/0.4 = 2500: five replicas at
	// 300 rps. Four gives rho 0.75 → p99 4000, a violation.
	slo := planner.SLO{LatencyP99US: 2500, MinThroughputRPS: 290}
	plan, err := planner.Solve(planner.Spec{
		SLO:        slo,
		RatePerSec: 300,
		Routings:   []string{serving.RoutingRoundRobin},
		Probe:      fakeProbe,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := bruteMinimal(t, slo, serving.RoutingRoundRobin, 300, planner.DefaultMaxReplicas)
	if want == 0 {
		t.Fatal("brute force found no feasible replica count; test SLO is broken")
	}
	if plan.Replicas != want {
		t.Errorf("planned %d replicas, brute-force minimum is %d", plan.Replicas, want)
	}
	if plan.Replicas != 5 {
		t.Errorf("planned %d replicas, analytic expectation is 5", plan.Replicas)
	}
	// One below must violate the SLO.
	below, err := fakeProbe(planner.Candidate{Replicas: plan.Replicas - 1, Routing: plan.Routing}, 300)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := slo.Check(below); ok {
		t.Errorf("%d replicas also meet the SLO; plan is not minimal", plan.Replicas-1)
	}
	if plan.CostReplicaSeconds != 10*float64(plan.Replicas) {
		t.Errorf("cost = %v, want %v", plan.CostReplicaSeconds, 10*float64(plan.Replicas))
	}
	if plan.Evaluations <= 0 {
		t.Error("plan reports no probe evaluations")
	}
	if len(plan.SLO) != 2 {
		t.Fatalf("plan reports %d SLO dimensions, want 2", len(plan.SLO))
	}
	for _, d := range plan.SLO {
		if !d.OK || d.HeadroomPct < 0 {
			t.Errorf("dimension %s not met at the chosen point: %+v", d.Name, d)
		}
	}
}

func TestSolveConvergence(t *testing.T) {
	// The binary search must not degrade to a linear scan: one routing
	// over 64 replicas is 1 ceiling probe + ≤6 bisection probes, plus
	// ≤1+KneeIters knee probes.
	plan, err := planner.Solve(planner.Spec{
		SLO:         planner.SLO{LatencyP99US: 2500},
		RatePerSec:  300,
		MaxReplicas: 64,
		Routings:    []string{serving.RoutingRoundRobin},
		Probe:       fakeProbe,
	})
	if err != nil {
		t.Fatal(err)
	}
	if maxEvals := 7 + 1 + planner.DefaultKneeIters; plan.Evaluations > maxEvals {
		t.Errorf("search spent %d evaluations over 64 replicas, want <= %d", plan.Evaluations, maxEvals)
	}
}

func TestSolveInfeasible(t *testing.T) {
	// p99 is at least 1000µs at any replica count, so 900 is hopeless.
	_, err := planner.Solve(planner.Spec{
		SLO:        planner.SLO{LatencyP99US: 900},
		RatePerSec: 300,
		Probe:      fakeProbe,
	})
	if !errors.Is(err, planner.ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
	if !strings.Contains(err.Error(), "latency_p99_us") {
		t.Errorf("infeasibility message should name the violated target: %v", err)
	}
}

func TestSolveTieBreaks(t *testing.T) {
	// The fake probe is routing-oblivious, so every routing needs the
	// same replica count and the first axis entry must win.
	plan, err := planner.Solve(planner.Spec{
		SLO:        planner.SLO{LatencyP99US: 2500},
		RatePerSec: 300,
		Routings:   []string{serving.RoutingJSQ, serving.RoutingRoundRobin},
		Probe:      fakeProbe,
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Routing != serving.RoutingJSQ {
		t.Errorf("routing = %q, want the first axis entry %q", plan.Routing, serving.RoutingJSQ)
	}

	// KV capacities tie-break ascending: both sizes feasible, the
	// smaller (cheaper) one wins even when listed second.
	plan, err = planner.Solve(planner.Spec{
		SLO:            planner.SLO{LatencyP99US: 2500},
		RatePerSec:     300,
		Routings:       []string{serving.RoutingRoundRobin},
		KVCapacitiesGB: []float64{4, 2},
		Probe:          fakeProbe,
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.KVCapacityGB != 2 {
		t.Errorf("kv capacity = %v GB, want the smaller feasible size 2", plan.KVCapacityGB)
	}
}

func TestSolvePolicyAxis(t *testing.T) {
	// "fixed" inflates p99 10×, so only "dynamic" meets the target;
	// the plan must carry the resolved policy name from the summary.
	plan, err := planner.Solve(planner.Spec{
		SLO:        planner.SLO{LatencyP99US: 2500},
		RatePerSec: 300,
		Routings:   []string{serving.RoutingRoundRobin},
		Policies:   []string{"fixed", "dynamic"},
		Probe:      fakeProbe,
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Policy != "policy:dynamic" {
		t.Errorf("policy = %q, want the feasible override's resolved name", plan.Policy)
	}
}

func TestSaturationKnee(t *testing.T) {
	// Drop-rate-only SLO: drops start past rho = 1, and stay under 10%
	// until rho = 1/0.9 ≈ 1.11. The minimal fleet runs at rho ≈ 1, so
	// the knee sits near 1.11× the planned rate.
	maxDrop := 10.0
	plan, err := planner.Solve(planner.Spec{
		SLO:        planner.SLO{MaxDropRatePct: &maxDrop},
		RatePerSec: 300,
		Routings:   []string{serving.RoutingRoundRobin},
		Probe:      fakeProbe,
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Replicas != 3 {
		t.Fatalf("planned %d replicas, analytic expectation is 3", plan.Replicas)
	}
	knee := plan.Saturation.KneeFactor
	if knee < 1.05 || knee > 1.2 {
		t.Errorf("knee factor = %v, want ≈ 1.11", knee)
	}
	if plan.Saturation.KneeCapped {
		t.Error("knee should not be capped: overload breaks the SLO well before 4×")
	}
	if plan.Saturation.KneeRPS != 300*knee {
		t.Errorf("knee rps %v != rate × factor %v", plan.Saturation.KneeRPS, 300*knee)
	}

	// A throughput-only floor stays met at any overload (throughput
	// saturates, never drops below capacity): the knee caps out.
	plan, err = planner.Solve(planner.Spec{
		SLO:        planner.SLO{MinThroughputRPS: 100},
		RatePerSec: 300,
		Routings:   []string{serving.RoutingRoundRobin},
		Probe:      fakeProbe,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Saturation.KneeCapped || plan.Saturation.KneeFactor != planner.DefaultKneeFactorMax {
		t.Errorf("want capped knee at %v×, got %+v", planner.DefaultKneeFactorMax, plan.Saturation)
	}
}

func TestSaturationBottleneck(t *testing.T) {
	// A constant-summary probe isolates the bottleneck classification
	// from the search: every candidate is feasible, and the summary's
	// utilization/wait/KV mix decides the label.
	base := serving.FleetSummary{
		Requests:       100,
		Served:         100,
		ThroughputRPS:  500,
		UtilizationPct: 50,
		MeanWaitUS:     100,
		MeanLatencyUS:  1000,
		P99LatencyUS:   2000,
		ReplicaSeconds: 1,
	}
	cases := []struct {
		name   string
		mutate func(*serving.FleetSummary)
		want   string
	}{
		{"compute dominates", func(*serving.FleetSummary) {}, planner.BottleneckCompute},
		{"wait share dominates", func(s *serving.FleetSummary) { s.MeanWaitUS = 800 }, planner.BottleneckQueue},
		{"drops force queue", func(s *serving.FleetSummary) { s.Served, s.Rejected = 95, 5 }, planner.BottleneckQueue},
		{"kv occupancy dominates", func(s *serving.FleetSummary) {
			s.KVCapacityBytes = 1e9
			s.KVPeakBytes = 0.9e9
		}, planner.BottleneckKVBytes},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sum := base
			tc.mutate(&sum)
			plan, err := planner.Solve(planner.Spec{
				SLO:        planner.SLO{MinThroughputRPS: 100},
				RatePerSec: 300,
				Routings:   []string{serving.RoutingRoundRobin},
				Probe: func(c planner.Candidate, rate float64) (serving.FleetSummary, error) {
					s := sum
					s.Replicas = c.Replicas
					return s, nil
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			if plan.Saturation.Bottleneck != tc.want {
				t.Errorf("bottleneck = %q, want %q (saturation %+v)", plan.Saturation.Bottleneck, tc.want, plan.Saturation)
			}
		})
	}
}

func TestTTFTNeedsKV(t *testing.T) {
	// A TTFT target against a KV-less probe is a configuration error,
	// not an infeasibility.
	_, err := planner.Solve(planner.Spec{
		SLO:        planner.SLO{TTFTP99US: 5000},
		RatePerSec: 300,
		Routings:   []string{serving.RoutingRoundRobin},
		Probe:      fakeProbe,
	})
	if err == nil || errors.Is(err, planner.ErrInfeasible) {
		t.Fatalf("want a KV-model error, got %v", err)
	}
	if !strings.Contains(err.Error(), "KV") {
		t.Errorf("error should mention the KV model: %v", err)
	}

	// With a KV axis the probe reports TTFT and the target is solvable.
	plan, err := planner.Solve(planner.Spec{
		SLO:            planner.SLO{TTFTP99US: 5000},
		RatePerSec:     300,
		Routings:       []string{serving.RoutingRoundRobin},
		KVCapacitiesGB: []float64{1},
		Probe:          fakeProbe,
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Saturation.KVPct != 50 {
		t.Errorf("kv pct = %v, want 50 (0.5GB peak of 1GB)", plan.Saturation.KVPct)
	}
}

func TestSpecValidation(t *testing.T) {
	base := planner.Spec{
		SLO:        planner.SLO{LatencyP99US: 2500},
		RatePerSec: 300,
		Probe:      fakeProbe,
	}
	cases := []struct {
		name   string
		mutate func(*planner.Spec)
		want   string
	}{
		{"nil probe", func(s *planner.Spec) { s.Probe = nil }, "needs a probe"},
		{"zero rate", func(s *planner.Spec) { s.RatePerSec = 0 }, "rate"},
		{"nan rate", func(s *planner.Spec) { s.RatePerSec = math.NaN() }, "rate"},
		{"empty slo", func(s *planner.Spec) { s.SLO = planner.SLO{} }, "at least one target"},
		{"negative target", func(s *planner.Spec) { s.SLO.LatencyP99US = -1 }, "latency_p99_us"},
		{"negative max replicas", func(s *planner.Spec) { s.MaxReplicas = -2 }, "max replicas"},
		{"negative kv", func(s *planner.Spec) { s.KVCapacitiesGB = []float64{-1} }, "kv capacity"},
		{"knee factor", func(s *planner.Spec) { s.KneeFactorMax = 0.5 }, "knee factor"},
		{"knee iters", func(s *planner.Spec) { s.KneeIters = -1 }, "knee iters"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := base
			tc.mutate(&spec)
			_, err := planner.Solve(spec)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %v, want mention of %q", err, tc.want)
			}
		})
	}

	bad := 150.0
	spec := base
	spec.SLO = planner.SLO{MaxDropRatePct: &bad}
	if _, err := planner.Solve(spec); err == nil || !strings.Contains(err.Error(), "max_drop_rate_pct") {
		t.Errorf("drop rate over 100%% should fail validation, got %v", err)
	}
}

func TestCheckZeroServed(t *testing.T) {
	// Vacuous zero percentiles must not pass latency targets.
	slo := planner.SLO{LatencyP99US: 1000}
	dims, ok := slo.Check(serving.FleetSummary{Requests: 10, Served: 0})
	if ok {
		t.Error("a summary that served nothing cannot meet a latency target")
	}
	if len(dims) != 1 || dims[0].OK {
		t.Errorf("dims = %+v", dims)
	}
}

func TestProbeErrorPropagates(t *testing.T) {
	boom := errors.New("probe exploded")
	_, err := planner.Solve(planner.Spec{
		SLO:        planner.SLO{LatencyP99US: 2500},
		RatePerSec: 300,
		Routings:   []string{serving.RoutingRoundRobin},
		Probe: func(planner.Candidate, float64) (serving.FleetSummary, error) {
			return serving.FleetSummary{}, boom
		},
	})
	if !errors.Is(err, boom) {
		t.Fatalf("probe error should propagate, got %v", err)
	}
	if errors.Is(err, planner.ErrInfeasible) {
		t.Error("a probe failure is not an infeasibility")
	}
}
