// Package planner answers the inverse capacity question: given a
// workload and an SLO, what is the cheapest fleet that meets it? Where
// the experiments package sweeps grids forward (configuration →
// metrics) and leaves the knee to the reader, the planner searches
// backward (targets → configuration) over the deterministic fleet
// simulator and returns one minimal-cost plan with a saturation
// analysis attached.
//
// The planner never runs simulations itself. It searches through an
// injected Probe — one call evaluates one candidate fleet at one
// offered rate — so the same search drives the real profile-backed
// simulator (see experiments.PlanProbe), a facade-built closure, or an
// analytic model in tests. Feasibility is monotone in replica count
// for every queueing system the probe models (more replicas never hurt
// a fixed offered load), which is what licenses the binary search: the
// planner finds the minimal feasible replica count per (routing,
// policy, KV capacity) combination in O(log MaxReplicas) probes
// instead of MaxReplicas.
//
// Determinism: Solve is a pure function of its Spec. Given a
// deterministic probe (the fleet simulator is, at any profiling
// parallelism), the same spec yields a byte-identical Plan — pinned by
// the committed golden in testdata/golden_plan.json.
package planner

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"

	"seqpoint/internal/serving"
)

// ErrInfeasible reports that no candidate within the spec's bounds
// meets the SLO. Test with errors.Is; the wrapping error names the
// closest-to-feasible candidate and its first violated target.
var ErrInfeasible = errors.New("no candidate meets the SLO")

// Defaults for Spec fields left zero, applied by Solve.
const (
	// DefaultMaxReplicas bounds the replica search when the spec does
	// not; it matches the server's per-request fleet ceiling.
	DefaultMaxReplicas = 16
	// DefaultKneeFactorMax is the highest load multiple the knee
	// analysis probes: beyond 4× the planned rate, "where does it
	// break" stops being a capacity question.
	DefaultKneeFactorMax = 4.0
	// DefaultKneeIters is the bisection depth of the knee analysis;
	// ten iterations locate the knee to (FactorMax-1)/2^10 ≈ 0.3% of
	// the planned rate.
	DefaultKneeIters = 10
)

// SLO dimension names, as they appear in Plan.SLO and in wire specs.
const (
	DimTTFTP99       = "ttft_p99_us"
	DimLatencyP99    = "latency_p99_us"
	DimMinThroughput = "min_throughput_rps"
	DimMaxDropRate   = "max_drop_rate_pct"
)

// Saturation bottleneck names.
const (
	BottleneckCompute = "compute"
	BottleneckQueue   = "queue"
	BottleneckKVBytes = "kv_bytes"
)

// SLO is the target envelope a plan must meet. Zero-valued targets are
// untargeted; at least one must be set. All latencies are simulated
// microseconds.
type SLO struct {
	// TTFTP99US caps the p99 time-to-first-token. Only meaningful
	// under the KV capacity model (TTFT does not exist without the
	// prefill/decode split); probing a TTFT target against a KV-less
	// fleet is an error, not an infeasibility.
	TTFTP99US float64 `json:"ttft_p99_us,omitempty"`
	// LatencyP99US caps the p99 end-to-end request latency.
	LatencyP99US float64 `json:"latency_p99_us,omitempty"`
	// MinThroughputRPS floors the served throughput.
	MinThroughputRPS float64 `json:"min_throughput_rps,omitempty"`
	// MaxDropRatePct caps the admission drop rate in percent. A
	// pointer so an explicit 0 ("drop nothing") is distinct from
	// untargeted.
	MaxDropRatePct *float64 `json:"max_drop_rate_pct,omitempty"`
	// TenantTTFTP99US caps p99 time-to-first-token per tenant label —
	// the multi-tenant sharpening of TTFTP99US, checked against the
	// summary's per-tenant roll-ups. Like the aggregate target it needs
	// the KV model; a targeted tenant absent from the summary (or with
	// nothing served) fails its dimension. Dimensions are named
	// "ttft_p99_us[<tenant>]" in sorted tenant order.
	TenantTTFTP99US map[string]float64 `json:"tenant_ttft_p99_us,omitempty"`
}

// Validate rejects an empty or malformed SLO.
func (s SLO) Validate() error {
	for _, t := range []struct {
		name string
		v    float64
	}{
		{DimTTFTP99, s.TTFTP99US},
		{DimLatencyP99, s.LatencyP99US},
		{DimMinThroughput, s.MinThroughputRPS},
	} {
		if t.v < 0 || math.IsNaN(t.v) || math.IsInf(t.v, 0) {
			return fmt.Errorf("%s must be a finite non-negative target, got %v", t.name, t.v)
		}
	}
	if s.MaxDropRatePct != nil {
		if d := *s.MaxDropRatePct; d < 0 || d > 100 || math.IsNaN(d) {
			return fmt.Errorf("%s must be in [0, 100], got %v", DimMaxDropRate, d)
		}
	}
	for tenant, v := range s.TenantTTFTP99US {
		if tenant == "" {
			return fmt.Errorf("tenant_%s targets need a non-empty tenant label", DimTTFTP99)
		}
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("tenant_%s[%s] must be a finite positive target, got %v", DimTTFTP99, tenant, v)
		}
	}
	if s.TTFTP99US == 0 && s.LatencyP99US == 0 && s.MinThroughputRPS == 0 &&
		s.MaxDropRatePct == nil && len(s.TenantTTFTP99US) == 0 {
		return errors.New("SLO needs at least one target")
	}
	return nil
}

// Dimension is one SLO target checked against one simulated summary.
type Dimension struct {
	// Name is the target's wire name (one of the Dim* constants).
	Name string `json:"name"`
	// Target and Achieved are in the dimension's own unit (µs, rps or
	// percent).
	Target   float64 `json:"target"`
	Achieved float64 `json:"achieved"`
	// HeadroomPct is the relative margin to the target: positive means
	// the target is met with room, negative quantifies the violation.
	// For a zero-valued target (only max_drop_rate_pct can have one)
	// the margin is absolute percentage points instead.
	HeadroomPct float64 `json:"headroom_pct"`
	// OK reports whether the target is met.
	OK bool `json:"ok"`
}

// Check evaluates every targeted dimension against a fleet summary and
// reports whether all of them are met. A summary that served nothing
// fails every latency target: its percentiles are vacuous zeros, not
// evidence of speed.
func (s SLO) Check(sum serving.FleetSummary) ([]Dimension, bool) {
	var dims []Dimension
	ok := true
	add := func(d Dimension) {
		dims = append(dims, d)
		ok = ok && d.OK
	}
	if s.TTFTP99US > 0 {
		add(capDim(DimTTFTP99, s.TTFTP99US, sum.P99TTFTUS, sum.Served > 0))
	}
	if len(s.TenantTTFTP99US) > 0 {
		tenants := make([]string, 0, len(s.TenantTTFTP99US))
		for t := range s.TenantTTFTP99US {
			tenants = append(tenants, t)
		}
		sort.Strings(tenants)
		byTenant := make(map[string]serving.TenantStats, len(sum.PerTenant))
		for _, ts := range sum.PerTenant {
			byTenant[ts.Tenant] = ts
		}
		for _, t := range tenants {
			ts, present := byTenant[t]
			add(capDim(fmt.Sprintf("%s[%s]", DimTTFTP99, t),
				s.TenantTTFTP99US[t], ts.P99TTFTUS, present && ts.Served > 0))
		}
	}
	if s.LatencyP99US > 0 {
		add(capDim(DimLatencyP99, s.LatencyP99US, sum.P99LatencyUS, sum.Served > 0))
	}
	if s.MinThroughputRPS > 0 {
		got := sum.ThroughputRPS
		add(Dimension{
			Name:        DimMinThroughput,
			Target:      s.MinThroughputRPS,
			Achieved:    got,
			HeadroomPct: (got - s.MinThroughputRPS) / s.MinThroughputRPS * 100,
			OK:          got >= s.MinThroughputRPS,
		})
	}
	if s.MaxDropRatePct != nil {
		target, got := *s.MaxDropRatePct, sum.DropRatePct
		d := Dimension{Name: DimMaxDropRate, Target: target, Achieved: got, OK: got <= target}
		if target > 0 {
			d.HeadroomPct = (target - got) / target * 100
		} else {
			d.HeadroomPct = -got
		}
		add(d)
	}
	return dims, ok
}

// capDim builds a "stay under the target" dimension.
func capDim(name string, target, got float64, served bool) Dimension {
	return Dimension{
		Name:        name,
		Target:      target,
		Achieved:    got,
		HeadroomPct: (target - got) / target * 100,
		OK:          served && got <= target,
	}
}

// Candidate is one point of the search space: a fleet shape the probe
// can price. Zero-valued axes mean "the probe's base configuration" —
// its default batching policy and KV setup.
type Candidate struct {
	// Replicas is the fleet size.
	Replicas int `json:"replicas"`
	// Routing names the routing policy ("rr", "least", "jsq", "po2",
	// "kv").
	Routing string `json:"routing"`
	// Policy optionally overrides the probe's base batching policy
	// ("fixed", "dynamic", "length"); empty keeps the base.
	Policy string `json:"policy,omitempty"`
	// KVCapacityGB optionally overrides the probe's per-replica KV
	// capacity (decimal gigabytes); zero keeps the base.
	KVCapacityGB float64 `json:"kv_capacity_gb,omitempty"`
}

// Probe prices one candidate fleet at one offered Poisson rate. It
// must be deterministic — the planner's output is only as reproducible
// as its probe — and is called sequentially, so it may keep
// unsynchronized caches.
type Probe func(c Candidate, ratePerSec float64) (serving.FleetSummary, error)

// Spec is one planning problem.
type Spec struct {
	// SLO is the target envelope; at least one target must be set.
	SLO SLO
	// RatePerSec is the offered load the plan must carry.
	RatePerSec float64
	// MaxReplicas bounds the replica search; 0 uses
	// DefaultMaxReplicas.
	MaxReplicas int
	// Routings is the routing axis, searched in order; empty uses
	// DefaultRoutings.
	Routings []string
	// Policies is the optional batching-policy axis; empty searches
	// only the probe's base policy.
	Policies []string
	// KVCapacitiesGB is the optional per-replica KV capacity axis
	// (sorted ascending by Solve, so ties break toward less memory);
	// empty searches only the probe's base KV configuration.
	KVCapacitiesGB []float64
	// KneeFactorMax and KneeIters shape the saturation analysis; 0
	// uses the defaults.
	KneeFactorMax float64
	KneeIters     int
	// Probe prices candidates; required.
	Probe Probe
}

// DefaultRoutings is the routing axis searched when the spec leaves it
// empty: the oblivious baseline plus the queue-aware policies, in
// increasing coordination cost.
func DefaultRoutings() []string {
	return []string{
		serving.RoutingRoundRobin,
		serving.RoutingLeastOutstanding,
		serving.RoutingJSQ,
		serving.RoutingPowerOfTwo,
	}
}

// Saturation locates the chosen plan relative to its breaking point.
type Saturation struct {
	// Bottleneck names the resource closest to its ceiling at the
	// planned operating point: "compute" (replica busy fraction),
	// "queue" (waiting dominates latency, or requests are already
	// dropping) or "kv_bytes" (cache occupancy near capacity).
	Bottleneck string `json:"bottleneck"`
	// ComputePct is the mean replica utilization.
	ComputePct float64 `json:"compute_pct"`
	// QueuePct is queueing pressure: the share of mean latency spent
	// waiting, or 100 if the fleet is already dropping requests.
	QueuePct float64 `json:"queue_pct"`
	// KVPct is peak KV-cache occupancy against capacity; omitted
	// without the KV model.
	KVPct float64 `json:"kv_pct,omitempty"`
	// SLOHeadroomPct is the tightest target's headroom at the planned
	// rate — how much margin the plan actually has.
	SLOHeadroomPct float64 `json:"slo_headroom_pct"`
	// KneeRPS is the highest offered rate (within KneeFactorMax× the
	// planned rate) at which the chosen fleet still meets the SLO;
	// KneeFactor is the same as a multiple of the planned rate. The
	// knee is where the latency/throughput curve leaves the SLO box.
	KneeRPS    float64 `json:"knee_rps"`
	KneeFactor float64 `json:"knee_factor"`
	// KneeCapped reports that the fleet still met the SLO at
	// KneeFactorMax — the true knee lies beyond the probed range.
	KneeCapped bool `json:"knee_capped,omitempty"`
}

// Plan is the planner's answer: the minimal-cost candidate meeting the
// SLO, the evidence, and where it breaks.
type Plan struct {
	// Replicas, Routing, Policy and KVCapacityGB identify the chosen
	// candidate. Policy is the resolved policy name from the
	// simulation (e.g. "dynamic(64,50000us)"); KVCapacityGB is zero
	// when the probe's base KV configuration was kept.
	Replicas     int     `json:"replicas"`
	Routing      string  `json:"routing"`
	Policy       string  `json:"policy"`
	KVCapacityGB float64 `json:"kv_capacity_gb,omitempty"`
	// RatePerSec echoes the planned offered load.
	RatePerSec float64 `json:"rate_rps"`
	// CostReplicaSeconds is the plan's cost metric: replica-seconds of
	// capacity provisioned over the simulated horizon.
	CostReplicaSeconds float64 `json:"cost_replica_seconds"`
	// Evaluations counts probe calls the search spent, knee analysis
	// included — the planner's convergence measure.
	Evaluations int `json:"evaluations"`
	// SLO reports every targeted dimension at the chosen point.
	SLO []Dimension `json:"slo"`
	// Saturation is the headroom/bottleneck/knee analysis.
	Saturation Saturation `json:"saturation"`
	// Summary is the full fleet roll-up at the chosen point.
	Summary serving.FleetSummary `json:"summary"`
}

// Serialize renders the plan as deterministic, diff-friendly JSON.
func (p Plan) Serialize() ([]byte, error) {
	b, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("serializing plan: %w", err)
	}
	return append(b, '\n'), nil
}

// normalize fills spec defaults.
func (s Spec) normalize() Spec {
	if s.MaxReplicas == 0 {
		s.MaxReplicas = DefaultMaxReplicas
	}
	if len(s.Routings) == 0 {
		s.Routings = DefaultRoutings()
	}
	if len(s.Policies) == 0 {
		s.Policies = []string{""}
	}
	if len(s.KVCapacitiesGB) == 0 {
		s.KVCapacitiesGB = []float64{0}
	} else {
		kv := append([]float64(nil), s.KVCapacitiesGB...)
		sort.Float64s(kv)
		s.KVCapacitiesGB = kv
	}
	if s.KneeFactorMax == 0 {
		s.KneeFactorMax = DefaultKneeFactorMax
	}
	if s.KneeIters == 0 {
		s.KneeIters = DefaultKneeIters
	}
	return s
}

func (s Spec) validate() error {
	if s.Probe == nil {
		return errors.New("spec needs a probe")
	}
	if s.RatePerSec <= 0 || math.IsNaN(s.RatePerSec) || math.IsInf(s.RatePerSec, 0) {
		return fmt.Errorf("rate must be a positive finite rate, got %v", s.RatePerSec)
	}
	if err := s.SLO.Validate(); err != nil {
		return err
	}
	if s.MaxReplicas < 1 {
		return fmt.Errorf("max replicas must be positive, got %d", s.MaxReplicas)
	}
	for _, gb := range s.KVCapacitiesGB {
		if gb < 0 || math.IsNaN(gb) || math.IsInf(gb, 0) {
			return fmt.Errorf("kv capacity must be a finite non-negative size, got %vGB", gb)
		}
	}
	if s.KneeFactorMax < 1 || math.IsNaN(s.KneeFactorMax) || math.IsInf(s.KneeFactorMax, 0) {
		return fmt.Errorf("knee factor max must be at least 1, got %v", s.KneeFactorMax)
	}
	if s.KneeIters < 1 {
		return fmt.Errorf("knee iters must be positive, got %d", s.KneeIters)
	}
	return nil
}

// evaluation is one probed point: the summary and its SLO verdict.
type evaluation struct {
	sum  serving.FleetSummary
	dims []Dimension
	ok   bool
}

// solver carries the search state across combinations.
type solver struct {
	spec  Spec
	evals int
}

// probe prices one candidate and checks it against the SLO.
func (sv *solver) probe(c Candidate, rate float64) (evaluation, error) {
	sum, err := sv.spec.Probe(c, rate)
	if err != nil {
		return evaluation{}, fmt.Errorf("probing %d×%s at %.6g rps: %w", c.Replicas, c.Routing, rate, err)
	}
	sv.evals++
	if (sv.spec.SLO.TTFTP99US > 0 || len(sv.spec.SLO.TenantTTFTP99US) > 0) && sum.KVCapacityBytes == 0 {
		return evaluation{}, fmt.Errorf("%s target needs the KV capacity model, but the probe simulates without one", DimTTFTP99)
	}
	dims, ok := sv.spec.SLO.Check(sum)
	return evaluation{sum: sum, dims: dims, ok: ok}, nil
}

// Solve searches the candidate space for the minimal-cost plan meeting
// the SLO. Cost order: replica count first (compute dominates), then
// KV capacity ascending, then axis order — so with equal replica
// counts the earliest routing/policy entry wins. Returns an error
// wrapping ErrInfeasible when no in-bounds candidate meets every
// target.
func Solve(spec Spec) (Plan, error) {
	spec = spec.normalize()
	if err := spec.validate(); err != nil {
		return Plan{}, fmt.Errorf("planner: %w", err)
	}
	sv := &solver{spec: spec}

	type winner struct {
		cand Candidate
		eval evaluation
	}
	var best *winner
	// closest tracks the least-violating at-max-replicas evaluation for
	// the infeasibility message.
	var closest *winner

	for _, kvGB := range spec.KVCapacitiesGB {
		for _, policy := range spec.Policies {
			for _, routing := range spec.Routings {
				cand := Candidate{Routing: routing, Policy: policy, KVCapacityGB: kvGB}
				// A later combination can only improve on the incumbent by
				// strictly fewer replicas (ties keep the earlier, cheaper
				// axis entry), so cap its search below the incumbent.
				hi := spec.MaxReplicas
				if best != nil {
					hi = best.cand.Replicas - 1
				}
				if hi < 1 {
					continue
				}
				// Feasibility is monotone in replicas: check the ceiling
				// once, then binary-search the boundary.
				cand.Replicas = hi
				top, err := sv.probe(cand, spec.RatePerSec)
				if err != nil {
					return Plan{}, fmt.Errorf("planner: %w", err)
				}
				if !top.ok {
					if best == nil && (closest == nil || worstHeadroom(top.dims) > worstHeadroom(closest.eval.dims)) {
						closest = &winner{cand: cand, eval: top}
					}
					continue
				}
				lo, hiR := 1, hi
				found := map[int]evaluation{hi: top}
				for lo < hiR {
					mid := (lo + hiR) / 2
					cand.Replicas = mid
					ev, err := sv.probe(cand, spec.RatePerSec)
					if err != nil {
						return Plan{}, fmt.Errorf("planner: %w", err)
					}
					if ev.ok {
						found[mid] = ev
						hiR = mid
					} else {
						lo = mid + 1
					}
				}
				cand.Replicas = lo
				best = &winner{cand: cand, eval: found[lo]}
			}
		}
	}

	if best == nil {
		if closest != nil {
			if d := firstViolated(closest.eval.dims); d != nil {
				return Plan{}, fmt.Errorf("planner: %w within %d replicas (closest: %d×%s, %s %.6g vs target %.6g)",
					ErrInfeasible, spec.MaxReplicas, closest.cand.Replicas, closest.cand.Routing,
					d.Name, d.Achieved, d.Target)
			}
		}
		return Plan{}, fmt.Errorf("planner: %w within %d replicas", ErrInfeasible, spec.MaxReplicas)
	}

	sat, err := sv.saturation(best.cand, best.eval)
	if err != nil {
		return Plan{}, fmt.Errorf("planner: %w", err)
	}
	return Plan{
		Replicas:           best.cand.Replicas,
		Routing:            best.cand.Routing,
		Policy:             best.eval.sum.Policy,
		KVCapacityGB:       best.cand.KVCapacityGB,
		RatePerSec:         spec.RatePerSec,
		CostReplicaSeconds: best.eval.sum.ReplicaSeconds,
		Evaluations:        sv.evals,
		SLO:                best.eval.dims,
		Saturation:         sat,
		Summary:            best.eval.sum,
	}, nil
}

// saturation runs the headroom/bottleneck/knee analysis at the chosen
// point.
func (sv *solver) saturation(cand Candidate, chosen evaluation) (Saturation, error) {
	sum := chosen.sum
	sat := Saturation{
		ComputePct:     sum.UtilizationPct,
		SLOHeadroomPct: worstHeadroom(chosen.dims),
	}
	if sum.MeanLatencyUS > 0 {
		sat.QueuePct = sum.MeanWaitUS / sum.MeanLatencyUS * 100
	}
	if sum.Rejected > 0 {
		// Dropping requests means the admission queue is at its ceiling
		// regardless of how latency decomposes.
		sat.QueuePct = 100
	}
	if sum.KVCapacityBytes > 0 {
		sat.KVPct = sum.KVPeakBytes / sum.KVCapacityBytes * 100
	}
	sat.Bottleneck = BottleneckCompute
	if sat.QueuePct > sat.ComputePct {
		sat.Bottleneck = BottleneckQueue
	}
	if sat.KVPct > sat.ComputePct && sat.KVPct > sat.QueuePct {
		sat.Bottleneck = BottleneckKVBytes
	}

	// Knee: bisect the load factor in [1, KneeFactorMax] for the
	// highest rate the chosen fleet still meets the SLO at. The factor
	// range is fixed and the iteration count is, too, so the probed
	// rates — and therefore the result — are deterministic.
	spec := sv.spec
	top, err := sv.probe(cand, spec.RatePerSec*spec.KneeFactorMax)
	if err != nil {
		return Saturation{}, err
	}
	if top.ok {
		sat.KneeFactor = spec.KneeFactorMax
		sat.KneeRPS = spec.RatePerSec * spec.KneeFactorMax
		sat.KneeCapped = true
		return sat, nil
	}
	lo, hi := 1.0, spec.KneeFactorMax
	for i := 0; i < spec.KneeIters; i++ {
		mid := (lo + hi) / 2
		ev, err := sv.probe(cand, spec.RatePerSec*mid)
		if err != nil {
			return Saturation{}, err
		}
		if ev.ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	sat.KneeFactor = lo
	sat.KneeRPS = spec.RatePerSec * lo
	return sat, nil
}

// worstHeadroom is the minimum headroom across dimensions: the
// tightest target's margin.
func worstHeadroom(dims []Dimension) float64 {
	worst := math.Inf(1)
	for _, d := range dims {
		if d.HeadroomPct < worst {
			worst = d.HeadroomPct
		}
	}
	if math.IsInf(worst, 1) {
		return 0
	}
	return worst
}

// firstViolated returns the first unmet dimension, if any.
func firstViolated(dims []Dimension) *Dimension {
	for i := range dims {
		if !dims[i].OK {
			return &dims[i]
		}
	}
	return nil
}
