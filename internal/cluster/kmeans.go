// Package cluster implements k-means clustering. The paper's Section
// VII-C compares SeqPoint's simple contiguous-range binning against
// k-means over iteration execution profiles and finds the simple scheme
// performs as well; this package provides the k-means side of that
// ablation (and the general vector form, usable on multi-counter
// profiles).
package cluster

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Result is a k-means clustering outcome.
type Result struct {
	// Assign maps each input point index to its cluster index.
	Assign []int
	// Centroids holds the final cluster centers.
	Centroids [][]float64
	// Sizes holds the member count of each cluster.
	Sizes []int
	// Iterations is how many Lloyd iterations ran before convergence.
	Iterations int
}

// maxLloydIterations bounds the refinement loop.
const maxLloydIterations = 200

// KMeans clusters the points into k clusters using Lloyd's algorithm
// with k-means++ seeding. Points must be non-empty, share one dimension,
// and k must satisfy 1 <= k <= len(points). The seed makes runs
// reproducible.
func KMeans(points [][]float64, k int, seed int64) (Result, error) {
	if len(points) == 0 {
		return Result{}, errors.New("cluster: no points")
	}
	if k < 1 || k > len(points) {
		return Result{}, fmt.Errorf("cluster: k=%d outside [1,%d]", k, len(points))
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return Result{}, fmt.Errorf("cluster: point %d has dim %d, want %d", i, len(p), dim)
		}
	}

	rng := rand.New(rand.NewSource(seed))
	centroids := seedPlusPlus(points, k, rng)
	assign := make([]int, len(points))
	sizes := make([]int, k)

	var iter int
	for iter = 0; iter < maxLloydIterations; iter++ {
		changed := false
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c, cen := range centroids {
				if d := sqDist(p, cen); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		// Recompute centroids.
		for c := range centroids {
			for d := range centroids[c] {
				centroids[c][d] = 0
			}
			sizes[c] = 0
		}
		for i, p := range points {
			c := assign[i]
			sizes[c]++
			for d, v := range p {
				centroids[c][d] += v
			}
		}
		for c := range centroids {
			if sizes[c] == 0 {
				// Re-seed an empty cluster at a random point.
				copy(centroids[c], points[rng.Intn(len(points))])
				continue
			}
			for d := range centroids[c] {
				centroids[c][d] /= float64(sizes[c])
			}
		}
	}

	// Final size count (assignments may have changed on the last pass).
	for c := range sizes {
		sizes[c] = 0
	}
	for _, c := range assign {
		sizes[c]++
	}
	return Result{Assign: assign, Centroids: centroids, Sizes: sizes, Iterations: iter}, nil
}

// KMeans1D clusters scalar values; a convenience wrapper for the
// runtime-only ablation.
func KMeans1D(values []float64, k int, seed int64) (Result, error) {
	points := make([][]float64, len(values))
	for i, v := range values {
		points[i] = []float64{v}
	}
	return KMeans(points, k, seed)
}

// seedPlusPlus picks initial centroids with k-means++ weighting.
func seedPlusPlus(points [][]float64, k int, rng *rand.Rand) [][]float64 {
	centroids := make([][]float64, 0, k)
	first := points[rng.Intn(len(points))]
	centroids = append(centroids, append([]float64(nil), first...))

	d2 := make([]float64, len(points))
	for len(centroids) < k {
		var total float64
		for i, p := range points {
			best := math.Inf(1)
			for _, c := range centroids {
				if d := sqDist(p, c); d < best {
					best = d
				}
			}
			d2[i] = best
			total += best
		}
		var next int
		if total == 0 {
			next = rng.Intn(len(points))
		} else {
			r := rng.Float64() * total
			for i, d := range d2 {
				r -= d
				if r <= 0 {
					next = i
					break
				}
			}
		}
		centroids = append(centroids, append([]float64(nil), points[next]...))
	}
	return centroids
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// NearestToCentroid returns, for each cluster, the index of the member
// point closest to the centroid — the k-means analogue of picking a
// SimPoint/SeqPoint representative. Clusters with no members map to -1.
func (r Result) NearestToCentroid(points [][]float64) []int {
	reps := make([]int, len(r.Centroids))
	best := make([]float64, len(r.Centroids))
	for c := range reps {
		reps[c] = -1
		best[c] = math.Inf(1)
	}
	for i, p := range points {
		c := r.Assign[i]
		if d := sqDist(p, r.Centroids[c]); d < best[c] {
			best[c] = d
			reps[c] = i
		}
	}
	return reps
}
