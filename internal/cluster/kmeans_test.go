package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKMeansSeparatedClusters(t *testing.T) {
	// Two well-separated blobs must be split cleanly.
	var points [][]float64
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		points = append(points, []float64{rng.NormFloat64() * 0.1})
	}
	for i := 0; i < 50; i++ {
		points = append(points, []float64{100 + rng.NormFloat64()*0.1})
	}
	res, err := KMeans(points, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	// All low points share a cluster; all high points the other.
	lowCluster := res.Assign[0]
	for i := 0; i < 50; i++ {
		if res.Assign[i] != lowCluster {
			t.Fatalf("low point %d in cluster %d, want %d", i, res.Assign[i], lowCluster)
		}
	}
	highCluster := res.Assign[50]
	if highCluster == lowCluster {
		t.Fatal("blobs not separated")
	}
	for i := 50; i < 100; i++ {
		if res.Assign[i] != highCluster {
			t.Fatalf("high point %d in cluster %d, want %d", i, res.Assign[i], highCluster)
		}
	}
	if res.Sizes[lowCluster] != 50 || res.Sizes[highCluster] != 50 {
		t.Errorf("sizes = %v, want 50/50", res.Sizes)
	}
}

func TestKMeansErrors(t *testing.T) {
	if _, err := KMeans(nil, 1, 1); err == nil {
		t.Error("no points should error")
	}
	pts := [][]float64{{1}, {2}}
	if _, err := KMeans(pts, 0, 1); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := KMeans(pts, 3, 1); err == nil {
		t.Error("k > n should error")
	}
	if _, err := KMeans([][]float64{{1}, {1, 2}}, 1, 1); err == nil {
		t.Error("dimension mismatch should error")
	}
}

func TestKMeansKEqualsN(t *testing.T) {
	pts := [][]float64{{1}, {5}, {9}}
	res, err := KMeans(pts, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, c := range res.Assign {
		seen[c] = true
	}
	if len(seen) != 3 {
		t.Errorf("k=n should give each point its own cluster: %v", res.Assign)
	}
}

func TestKMeans1D(t *testing.T) {
	res, err := KMeans1D([]float64{1, 2, 100, 101}, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Assign[0] != res.Assign[1] || res.Assign[2] != res.Assign[3] {
		t.Errorf("pairs should cluster together: %v", res.Assign)
	}
	if res.Assign[0] == res.Assign[2] {
		t.Error("far pairs should separate")
	}
}

func TestNearestToCentroid(t *testing.T) {
	pts := [][]float64{{0}, {1}, {10}, {11}}
	res, err := KMeans(pts, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	reps := res.NearestToCentroid(pts)
	if len(reps) != 2 {
		t.Fatalf("reps = %v", reps)
	}
	for c, rep := range reps {
		if rep < 0 {
			t.Errorf("cluster %d has no representative", c)
			continue
		}
		if res.Assign[rep] != c {
			t.Errorf("representative %d not a member of cluster %d", rep, c)
		}
		// No member is closer to the centroid than the representative.
		for i, p := range pts {
			if res.Assign[i] != c {
				continue
			}
			if sqDist(p, res.Centroids[c]) < sqDist(pts[rep], res.Centroids[c])-1e-12 {
				t.Errorf("point %d closer to centroid %d than representative %d", i, c, rep)
			}
		}
	}
}

func TestKMeansDeterministic(t *testing.T) {
	pts := make([][]float64, 60)
	rng := rand.New(rand.NewSource(4))
	for i := range pts {
		pts[i] = []float64{rng.Float64() * 100, rng.Float64() * 100}
	}
	a, err := KMeans(pts, 5, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMeans(pts, 5, 11)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("same seed, different clustering")
		}
	}
}

func TestQuickKMeansInvariants(t *testing.T) {
	// Every point is assigned a valid cluster; sizes sum to n;
	// clustering terminates within the iteration bound.
	f := func(seed int64, n8, k8 uint8) bool {
		n := int(n8)%50 + 1
		k := int(k8)%n + 1
		rng := rand.New(rand.NewSource(seed))
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = []float64{rng.Float64() * 1000}
		}
		res, err := KMeans(pts, k, seed)
		if err != nil {
			return false
		}
		total := 0
		for _, s := range res.Sizes {
			total += s
		}
		if total != n {
			return false
		}
		for _, c := range res.Assign {
			if c < 0 || c >= k {
				return false
			}
		}
		return res.Iterations <= maxLloydIterations
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestQuickKMeansAssignsToNearestCentroid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pts := make([][]float64, 30)
		for i := range pts {
			pts[i] = []float64{rng.Float64() * 100}
		}
		res, err := KMeans(pts, 4, seed)
		if err != nil {
			return false
		}
		for i, p := range pts {
			d := sqDist(p, res.Centroids[res.Assign[i]])
			for _, c := range res.Centroids {
				if sqDist(p, c) < d-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSqDist(t *testing.T) {
	if got := sqDist([]float64{0, 0}, []float64{3, 4}); math.Abs(got-25) > 1e-12 {
		t.Errorf("sqDist = %v, want 25", got)
	}
}
