package tensor

import "fmt"

// GEMM is a dense matrix multiply C[M,N] = A[M,K] x B[K,N] (+ C).
// Label carries the layer-level role (e.g. "lstm_input", "attention_score",
// "classifier") so experiment code can group kernels the way the paper's
// Fig. 6 groups "GEMM-1"/"GEMM-2".
type GEMM struct {
	M, N, K int
	Label   string
}

// NewGEMM constructs a GEMM op. Dimensions must be positive.
func NewGEMM(m, n, k int, label string) GEMM {
	if m <= 0 || n <= 0 || k <= 0 {
		panic(fmt.Sprintf("tensor: invalid GEMM dims %dx%dx%d", m, n, k))
	}
	return GEMM{M: m, N: n, K: k, Label: label}
}

// Kind reports KindGEMM.
func (g GEMM) Kind() Kind { return KindGEMM }

// FLOPs is 2*M*N*K (one multiply and one add per inner-product term).
func (g GEMM) FLOPs() float64 {
	return 2 * float64(g.M) * float64(g.N) * float64(g.K)
}

// BytesRead covers one pass over A, B, and the C accumulator.
func (g GEMM) BytesRead() float64 {
	a := float64(g.M) * float64(g.K)
	b := float64(g.K) * float64(g.N)
	c := float64(g.M) * float64(g.N)
	return (a + b + c) * ElemSize
}

// BytesWritten covers the C output.
func (g GEMM) BytesWritten() float64 {
	return float64(g.M) * float64(g.N) * ElemSize
}

// WorkingSet is the full operand footprint: A + B + C. Blocked GEMMs
// revisit all three while streaming tiles, so the whole footprint is the
// quantity that must fit in cache for reuse to be captured.
func (g GEMM) WorkingSet() float64 {
	return g.BytesRead()
}

// Signature encodes the exact shape, which is what a BLAS library keys
// its dispatch (and autotuning) on.
func (g GEMM) Signature() string {
	return fmt.Sprintf("gemm:%dx%dx%d", g.M, g.N, g.K)
}

// Transposed returns the GEMM computing the gradient with respect to one
// operand: the same total work with M/K swapped (dA = dC x B^T) or N/K
// swapped (dB = A^T x dC). Backward passes emit these.
func (g GEMM) Transposed(swapMK bool, label string) GEMM {
	if swapMK {
		return NewGEMM(g.K, g.N, g.M, label)
	}
	return NewGEMM(g.M, g.K, g.N, label)
}

// Conv2D is a 2-D convolution over an N x C x H x W input with OutC
// filters of size KH x KW, stride (SH, SW) and padding (PH, PW).
// DS2's two front-end layers are the only users, but the op supports the
// CNN model used for the Fig. 3 contrast as well.
type Conv2D struct {
	N, C, H, W     int
	OutC, KH, KW   int
	SH, SW, PH, PW int
	Label          string
}

// NewConv2D constructs a convolution op and validates its geometry.
func NewConv2D(n, c, h, w, outC, kh, kw, sh, sw, ph, pw int, label string) Conv2D {
	cv := Conv2D{N: n, C: c, H: h, W: w, OutC: outC, KH: kh, KW: kw, SH: sh, SW: sw, PH: ph, PW: pw, Label: label}
	if n <= 0 || c <= 0 || h <= 0 || w <= 0 || outC <= 0 || kh <= 0 || kw <= 0 || sh <= 0 || sw <= 0 {
		panic(fmt.Sprintf("tensor: invalid conv %+v", cv))
	}
	if cv.OutH() <= 0 || cv.OutW() <= 0 {
		panic(fmt.Sprintf("tensor: conv output collapses to zero: %+v", cv))
	}
	return cv
}

// OutH is the output height.
func (c Conv2D) OutH() int { return (c.H+2*c.PH-c.KH)/c.SH + 1 }

// OutW is the output width.
func (c Conv2D) OutW() int { return (c.W+2*c.PW-c.KW)/c.SW + 1 }

// Kind reports KindConv2D.
func (c Conv2D) Kind() Kind { return KindConv2D }

// FLOPs is 2 * N * OutC * OutH * OutW * C * KH * KW.
func (c Conv2D) FLOPs() float64 {
	return 2 * float64(c.N) * float64(c.OutC) * float64(c.OutH()) * float64(c.OutW()) *
		float64(c.C) * float64(c.KH) * float64(c.KW)
}

// BytesRead covers the input activation and the filter tensor.
func (c Conv2D) BytesRead() float64 {
	in := float64(c.N) * float64(c.C) * float64(c.H) * float64(c.W)
	filt := float64(c.OutC) * float64(c.C) * float64(c.KH) * float64(c.KW)
	return (in + filt) * ElemSize
}

// BytesWritten covers the output activation.
func (c Conv2D) BytesWritten() float64 {
	return float64(c.N) * float64(c.OutC) * float64(c.OutH()) * float64(c.OutW()) * ElemSize
}

// WorkingSet is the filter tensor plus one input tile band; filters are
// the heavily reused operand in convolution.
func (c Conv2D) WorkingSet() float64 {
	filt := float64(c.OutC) * float64(c.C) * float64(c.KH) * float64(c.KW)
	band := float64(c.C) * float64(c.KH) * float64(c.W)
	return (filt + band) * ElemSize
}

// Signature encodes the full convolution geometry, which is what MIOpen
// autotunes per shape.
func (c Conv2D) Signature() string {
	return fmt.Sprintf("conv:n%d_c%d_h%d_w%d_k%d_r%d_s%d_u%d_v%d",
		c.N, c.C, c.H, c.W, c.OutC, c.KH, c.KW, c.SH, c.SW)
}
