package tensor

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestGEMMFLOPs(t *testing.T) {
	g := NewGEMM(10, 20, 30, "x")
	if got, want := g.FLOPs(), 2.0*10*20*30; got != want {
		t.Errorf("FLOPs = %v, want %v", got, want)
	}
}

func TestGEMMBytes(t *testing.T) {
	g := NewGEMM(2, 3, 4, "x")
	wantRead := float64(2*4+4*3+2*3) * ElemSize
	if got := g.BytesRead(); got != wantRead {
		t.Errorf("BytesRead = %v, want %v", got, wantRead)
	}
	if got, want := g.BytesWritten(), float64(2*3)*ElemSize; got != want {
		t.Errorf("BytesWritten = %v, want %v", got, want)
	}
	if g.WorkingSet() != g.BytesRead() {
		t.Errorf("WorkingSet = %v, want full operand footprint %v", g.WorkingSet(), g.BytesRead())
	}
}

func TestGEMMSignatureAndKind(t *testing.T) {
	g := NewGEMM(1, 2, 3, "label-ignored")
	if got := g.Signature(); got != "gemm:1x2x3" {
		t.Errorf("Signature = %q", got)
	}
	if g.Kind() != KindGEMM {
		t.Errorf("Kind = %v, want KindGEMM", g.Kind())
	}
	// Signatures ignore the label: same shape, same dispatch.
	g2 := NewGEMM(1, 2, 3, "other")
	if g.Signature() != g2.Signature() {
		t.Error("signatures should not depend on labels")
	}
}

func TestGEMMInvalidPanics(t *testing.T) {
	for _, dims := range [][3]int{{0, 1, 1}, {1, 0, 1}, {1, 1, 0}, {-1, 1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewGEMM(%v) should panic", dims)
				}
			}()
			NewGEMM(dims[0], dims[1], dims[2], "bad")
		}()
	}
}

func TestGEMMTransposed(t *testing.T) {
	g := NewGEMM(10, 20, 30, "fwd")
	dgrad := g.Transposed(true, "dgrad")
	if dgrad.M != 30 || dgrad.N != 20 || dgrad.K != 10 {
		t.Errorf("Transposed(swapMK) = %dx%dx%d, want 30x20x10", dgrad.M, dgrad.N, dgrad.K)
	}
	wgrad := g.Transposed(false, "wgrad")
	if wgrad.M != 10 || wgrad.N != 30 || wgrad.K != 20 {
		t.Errorf("Transposed(swapNK) = %dx%dx%d, want 10x30x20", wgrad.M, wgrad.N, wgrad.K)
	}
}

func TestQuickGEMMTransposedPreservesWork(t *testing.T) {
	// Gradient GEMMs permute dimensions, so total arithmetic is equal.
	f := func(m, n, k uint8, swap bool) bool {
		g := NewGEMM(int(m)+1, int(n)+1, int(k)+1, "x")
		return g.Transposed(swap, "t").FLOPs() == g.FLOPs()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConv2DGeometry(t *testing.T) {
	// DS2's first conv: 41x11 kernel, stride 2x2, pad 20x5 over 161xT.
	c := NewConv2D(64, 1, 161, 500, 32, 41, 11, 2, 2, 20, 5, "conv1")
	if got, want := c.OutH(), (161+40-41)/2+1; got != want {
		t.Errorf("OutH = %d, want %d", got, want)
	}
	if got, want := c.OutW(), (500+10-11)/2+1; got != want {
		t.Errorf("OutW = %d, want %d", got, want)
	}
	if c.Kind() != KindConv2D {
		t.Errorf("Kind = %v", c.Kind())
	}
}

func TestConv2DFLOPsScaleWithWidth(t *testing.T) {
	mk := func(w int) Conv2D {
		return NewConv2D(1, 3, 32, w, 8, 3, 3, 1, 1, 1, 1, "c")
	}
	f100, f200 := mk(100).FLOPs(), mk(200).FLOPs()
	ratio := f200 / f100
	if ratio < 1.9 || ratio > 2.1 {
		t.Errorf("doubling width should ~double FLOPs, ratio = %v", ratio)
	}
}

func TestConv2DInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("collapsing output should panic")
		}
	}()
	NewConv2D(1, 1, 2, 2, 1, 5, 5, 1, 1, 0, 0, "tiny") // 2x2 input, 5x5 filter, no pad
}

func TestElementwise(t *testing.T) {
	e := NewElementwise(100, 4, "act")
	if got := e.FLOPs(); got != 400 {
		t.Errorf("FLOPs = %v, want 400", got)
	}
	if got := e.BytesRead(); got != 100*ElemSize {
		t.Errorf("BytesRead = %v", got)
	}
	if e.WorkingSet() != 0 {
		t.Error("streaming kernels have no working set")
	}
	if !strings.Contains(e.Signature(), "act") {
		t.Errorf("Signature should carry the label: %q", e.Signature())
	}
}

func TestReduction(t *testing.T) {
	r := NewReduction(1000, 10, "sum")
	if r.FLOPs() != 1000 {
		t.Errorf("FLOPs = %v", r.FLOPs())
	}
	if got := r.BytesWritten(); got != 10*ElemSize {
		t.Errorf("BytesWritten = %v, want one value per group", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("groups > elems should panic")
			}
		}()
		NewReduction(5, 10, "bad")
	}()
}

func TestEmbedding(t *testing.T) {
	e := NewEmbedding(36549, 1024, 64, "vocab")
	if got, want := e.WorkingSet(), float64(36549*1024)*ElemSize; got != want {
		t.Errorf("WorkingSet = %v, want full table %v", got, want)
	}
	if got, want := e.BytesWritten(), float64(64*1024)*ElemSize; got != want {
		t.Errorf("BytesWritten = %v, want %v", got, want)
	}
	if e.Kind() != KindEmbedding {
		t.Errorf("Kind = %v", e.Kind())
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindGEMM:        "gemm",
		KindConv2D:      "conv2d",
		KindElementwise: "elementwise",
		KindReduction:   "reduce",
		KindEmbedding:   "embedding",
		Kind(99):        "kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestQuickOpCostsNonNegativeFinite(t *testing.T) {
	// Every op's cost quantities must be non-negative and finite for
	// the cost model to stay well-defined.
	check := func(op Op) bool {
		for _, v := range []float64{op.FLOPs(), op.BytesRead(), op.BytesWritten(), op.WorkingSet()} {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return op.Signature() != ""
	}
	f := func(m, n, k uint16, elems uint16, ops uint8, rows uint16, dim uint8) bool {
		gm := NewGEMM(int(m)+1, int(n)+1, int(k)+1, "g")
		ew := NewElementwise(int(elems)+1, int(ops)+1, "e")
		red := NewReduction(int(elems)+1, 1, "r")
		emb := NewEmbedding(int(rows)+1, int(dim)+1, int(elems)+1, "m")
		return check(gm) && check(ew) && check(red) && check(emb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickGEMMFLOPsMonotonic(t *testing.T) {
	// Growing any dimension grows the arithmetic.
	f := func(m, n, k uint8, d uint8) bool {
		g := NewGEMM(int(m)+1, int(n)+1, int(k)+1, "g")
		bigger := NewGEMM(g.M+int(d)+1, g.N, g.K, "g")
		return bigger.FLOPs() > g.FLOPs()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
