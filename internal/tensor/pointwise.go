package tensor

import "fmt"

// Elementwise is a pointwise map over Elems elements performing
// OpsPerElem floating-point operations each (sigmoid/tanh gate math,
// bias adds, ReLU, batch-norm application, dropout masks, ...).
type Elementwise struct {
	Elems      int
	OpsPerElem int
	Label      string
}

// NewElementwise constructs a pointwise op.
func NewElementwise(elems, opsPerElem int, label string) Elementwise {
	if elems <= 0 || opsPerElem <= 0 {
		panic(fmt.Sprintf("tensor: invalid elementwise %d elems x %d ops", elems, opsPerElem))
	}
	return Elementwise{Elems: elems, OpsPerElem: opsPerElem, Label: label}
}

// Kind reports KindElementwise.
func (e Elementwise) Kind() Kind { return KindElementwise }

// FLOPs is Elems * OpsPerElem.
func (e Elementwise) FLOPs() float64 { return float64(e.Elems) * float64(e.OpsPerElem) }

// BytesRead assumes one streaming read of the operand.
func (e Elementwise) BytesRead() float64 { return float64(e.Elems) * ElemSize }

// BytesWritten assumes one streaming write of the result.
func (e Elementwise) BytesWritten() float64 { return float64(e.Elems) * ElemSize }

// WorkingSet is zero: streaming kernels have no reuse to capture.
func (e Elementwise) WorkingSet() float64 { return 0 }

// Signature buckets by label and element count; pointwise kernels are
// shape-agnostic beyond their launch geometry.
func (e Elementwise) Signature() string {
	return fmt.Sprintf("ew:%s:%d", e.Label, e.Elems)
}

// Reduction folds Elems elements down to Groups results (softmax row
// maxima/sums, batch-norm statistics, loss sums).
type Reduction struct {
	Elems  int
	Groups int
	Label  string
}

// NewReduction constructs a reduction op.
func NewReduction(elems, groups int, label string) Reduction {
	if elems <= 0 || groups <= 0 || groups > elems {
		panic(fmt.Sprintf("tensor: invalid reduction %d elems -> %d groups", elems, groups))
	}
	return Reduction{Elems: elems, Groups: groups, Label: label}
}

// Kind reports KindReduction.
func (r Reduction) Kind() Kind { return KindReduction }

// FLOPs is one op per element folded.
func (r Reduction) FLOPs() float64 { return float64(r.Elems) }

// BytesRead streams the input once.
func (r Reduction) BytesRead() float64 { return float64(r.Elems) * ElemSize }

// BytesWritten stores one value per group.
func (r Reduction) BytesWritten() float64 { return float64(r.Groups) * ElemSize }

// WorkingSet is zero: reductions stream.
func (r Reduction) WorkingSet() float64 { return 0 }

// Signature buckets by label and size.
func (r Reduction) Signature() string {
	return fmt.Sprintf("red:%s:%d", r.Label, r.Elems)
}

// Embedding is a gather of Lookups rows of width Dim from a table of
// Rows rows. Per the paper's key observation 6, the vocabulary size
// (Rows) materially affects iteration time, so the table size must be
// kept at the full dataset vocabulary when sampling iterations.
type Embedding struct {
	Rows, Dim, Lookups int
	Label              string
}

// NewEmbedding constructs an embedding-lookup op.
func NewEmbedding(rows, dim, lookups int, label string) Embedding {
	if rows <= 0 || dim <= 0 || lookups <= 0 {
		panic(fmt.Sprintf("tensor: invalid embedding %dx%d with %d lookups", rows, dim, lookups))
	}
	return Embedding{Rows: rows, Dim: dim, Lookups: lookups, Label: label}
}

// Kind reports KindEmbedding.
func (e Embedding) Kind() Kind { return KindEmbedding }

// FLOPs is nominal: one op per gathered element (index arithmetic).
func (e Embedding) FLOPs() float64 { return float64(e.Lookups) * float64(e.Dim) }

// BytesRead covers the gathered rows plus index traffic; gathers into a
// large table are scatter reads, so no row coalescing is assumed.
func (e Embedding) BytesRead() float64 {
	return float64(e.Lookups)*float64(e.Dim)*ElemSize + float64(e.Lookups)*ElemSize
}

// BytesWritten covers the packed output rows.
func (e Embedding) BytesWritten() float64 {
	return float64(e.Lookups) * float64(e.Dim) * ElemSize
}

// WorkingSet is the table size: bigger vocabularies thrash caches, which
// is how the vocabulary-size effect (key observation 6) enters the model.
func (e Embedding) WorkingSet() float64 {
	return float64(e.Rows) * float64(e.Dim) * ElemSize
}

// Signature buckets by table geometry and lookup count.
func (e Embedding) Signature() string {
	return fmt.Sprintf("emb:%s:%dx%d:%d", e.Label, e.Rows, e.Dim, e.Lookups)
}
