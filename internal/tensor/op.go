// Package tensor describes the logical operations a network layer
// executes — GEMMs, convolutions, elementwise maps, reductions, and
// embedding lookups — together with their first-order cost quantities
// (floating-point operations, bytes read and written, working-set size).
//
// Layers in internal/nn emit these ops; the GPU model in internal/gpusim
// maps each op onto a concrete, size-specialized kernel and prices it
// under a hardware configuration. Keeping the op description separate
// from the kernel/cost layer mirrors how real stacks split framework
// graphs from vendor libraries (rocBLAS/MIOpen in the paper's setup),
// and is what lets the simulator reproduce the paper's kernel-selection
// effects (Fig. 5) without any profiling.
package tensor

import "fmt"

// ElemSize is the element size in bytes. The paper's workloads train in
// fp32 on a Vega FE, so every tensor here is 4-byte floats.
const ElemSize = 4

// Kind classifies a logical op. gpusim selects kernel families by Kind.
type Kind int

const (
	// KindGEMM is a dense matrix multiply C[M,N] += A[M,K] * B[K,N].
	KindGEMM Kind = iota
	// KindConv2D is a 2-D convolution (DS2's front-end layers).
	KindConv2D
	// KindElementwise covers pointwise maps: activations, bias adds,
	// gate arithmetic inside recurrent cells, batch-norm apply.
	KindElementwise
	// KindReduction covers sum/max-style reductions: softmax partials,
	// batch-norm statistics, loss reductions.
	KindReduction
	// KindEmbedding is a vocabulary-table gather.
	KindEmbedding
)

// String returns the human-readable kind name.
func (k Kind) String() string {
	switch k {
	case KindGEMM:
		return "gemm"
	case KindConv2D:
		return "conv2d"
	case KindElementwise:
		return "elementwise"
	case KindReduction:
		return "reduce"
	case KindEmbedding:
		return "embedding"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Op is a logical operation with enough information for a cost model:
// how much arithmetic it performs, how much data it touches, and a
// shape signature that determines which specialized kernel a vendor
// library would dispatch to.
type Op interface {
	// Kind reports the operation class.
	Kind() Kind
	// FLOPs is the number of floating-point operations.
	FLOPs() float64
	// BytesRead is the number of bytes fetched from memory, before any
	// cache filtering.
	BytesRead() float64
	// BytesWritten is the number of bytes stored to memory.
	BytesWritten() float64
	// WorkingSet is the reuse footprint in bytes: the data a kernel
	// revisits while executing. The cache model uses it to decide how
	// much of BytesRead is served by L1/L2.
	WorkingSet() float64
	// Signature is a stable shape identity, e.g. "gemm:1024x576x1024".
	// Two ops with the same signature dispatch to the same kernel and
	// share one autotune decision.
	Signature() string
}
