package engine

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"seqpoint/internal/gpusim"
	"seqpoint/internal/models"
)

// warmEngine returns an engine whose cache holds a handful of real
// profiles across phases, batches and cluster sizes.
func warmEngine(t *testing.T) *Engine {
	t.Helper()
	e := New()
	m := models.NewGNMT()
	hw := gpusim.VegaFE()
	for _, sl := range []int{4, 9, 17} {
		if _, err := e.Profile(hw, m, 16, sl, PhaseTrain); err != nil {
			t.Fatalf("profiling SL %d: %v", sl, err)
		}
	}
	if _, err := e.Profile(hw, m, 16, 9, PhaseEval); err != nil {
		t.Fatalf("profiling eval: %v", err)
	}
	if _, err := e.ProfileCluster(hw, gpusim.DefaultCluster(4), m, 16, 9, PhaseTrain); err != nil {
		t.Fatalf("profiling cluster: %v", err)
	}
	// A key differing from the ring entry only in topology: the
	// snapshot's sort order must still be total.
	mesh := gpusim.DefaultCluster(4)
	mesh.Topology = gpusim.TopologyFullMesh
	if _, err := e.ProfileCluster(hw, mesh, m, 16, 9, PhaseTrain); err != nil {
		t.Fatalf("profiling mesh cluster: %v", err)
	}
	return e
}

// dumpCache flattens an engine's completed cache entries for equality
// comparison.
func dumpCache(e *Engine) map[Key]string {
	out := make(map[Key]string)
	for i := range e.shards {
		s := &e.shards[i]
		s.mu.Lock()
		for k, en := range s.m {
			select {
			case <-en.done:
				if en.err == nil {
					b, _ := json.Marshal(en.p)
					out[k] = string(b)
				}
			default:
			}
		}
		s.mu.Unlock()
	}
	return out
}

func TestSnapshotRoundTrip(t *testing.T) {
	src := warmEngine(t)
	path := filepath.Join(t.TempDir(), "cache.json")
	wrote, err := src.SaveSnapshot(path)
	if err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}

	dst := New()
	n, err := dst.LoadSnapshot(path)
	if err != nil {
		t.Fatalf("LoadSnapshot: %v", err)
	}
	want := dumpCache(src)
	if wrote != len(want) {
		t.Fatalf("SaveSnapshot reported %d entries written, want %d", wrote, len(want))
	}
	if n != len(want) {
		t.Fatalf("LoadSnapshot restored %d entries, want %d", n, len(want))
	}
	if got := dumpCache(dst); !reflect.DeepEqual(got, want) {
		t.Fatalf("restored cache differs from source:\ngot  %v\nwant %v", got, want)
	}

	// A restored entry must be served as a hit, not recomputed.
	before := dst.Stats()
	if _, err := dst.Profile(gpusim.VegaFE(), models.NewGNMT(), 16, 9, PhaseTrain); err != nil {
		t.Fatalf("Profile on restored cache: %v", err)
	}
	after := dst.Stats()
	if after.Hits != before.Hits+1 || after.Misses != before.Misses {
		t.Fatalf("restored entry not served warm: hits %d->%d misses %d->%d",
			before.Hits, after.Hits, before.Misses, after.Misses)
	}
}

func TestSnapshotDeterministicBytes(t *testing.T) {
	e := warmEngine(t)
	var a, b bytes.Buffer
	na, err := e.WriteSnapshot(&a)
	if err != nil {
		t.Fatal(err)
	}
	nb, err := e.WriteSnapshot(&b)
	if err != nil {
		t.Fatal(err)
	}
	if na != nb {
		t.Fatalf("two snapshots of the same cache reported %d and %d entries", na, nb)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two snapshots of the same cache produced different bytes")
	}
}

func TestLoadSnapshotMissingFileIsColdStart(t *testing.T) {
	e := New()
	n, err := e.LoadSnapshot(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil || n != 0 {
		t.Fatalf("missing file: got (%d, %v), want (0, nil)", n, err)
	}
}

func TestLoadSnapshotCorruptFallsBackCold(t *testing.T) {
	src := warmEngine(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "cache.json")
	if _, err := src.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string][]byte{
		"truncated":   good[:len(good)/2],
		"garbage":     []byte("{not json at all"),
		"empty":       nil,
		"wrong-magic": []byte(`{"magic":"something-else","version":1,"entries":[]}`),
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			p := filepath.Join(dir, name)
			if err := os.WriteFile(p, data, 0o644); err != nil {
				t.Fatal(err)
			}
			e := New()
			n, err := e.LoadSnapshot(p)
			if err == nil {
				t.Fatalf("corrupt snapshot loaded without error (%d entries)", n)
			}
			if got := e.Stats().Entries; got != 0 {
				t.Fatalf("corrupt snapshot left %d entries in the cache, want 0", got)
			}
		})
	}
}

func TestLoadSnapshotRejectsTamperedEntries(t *testing.T) {
	src := warmEngine(t)
	path := filepath.Join(t.TempDir(), "cache.json")
	if _, err := src.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Corrupt one entry's profile time into a negative number: right
	// magic, right version, garbage payload.
	tampered := bytes.Replace(data, []byte(`"TimeUS": `), []byte(`"TimeUS": -`), 1)
	if bytes.Equal(tampered, data) {
		t.Fatal("test could not find a TimeUS field to tamper with")
	}
	if err := os.WriteFile(path, tampered, 0o644); err != nil {
		t.Fatal(err)
	}

	e := New()
	n, err := e.LoadSnapshot(path)
	if err == nil || !strings.Contains(err.Error(), "invalid") {
		t.Fatalf("tampered snapshot: got (%d, %v), want entry-validation error", n, err)
	}
	if got := e.Stats().Entries; got != 0 {
		t.Fatalf("tampered snapshot installed %d entries, want 0", got)
	}
}

func TestLoadSnapshotVersionMismatchInvalidates(t *testing.T) {
	src := warmEngine(t)
	path := filepath.Join(t.TempDir(), "cache.json")
	if _, err := src.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	stale := bytes.Replace(data,
		[]byte(`"version": 1`), []byte(`"version": 9999`), 1)
	if bytes.Equal(stale, data) {
		t.Fatal("test could not rewrite the snapshot version field")
	}
	if err := os.WriteFile(path, stale, 0o644); err != nil {
		t.Fatal(err)
	}

	e := New()
	n, err := e.LoadSnapshot(path)
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("version-mismatched snapshot: got (%d, %v), want version error", n, err)
	}
	if got := e.Stats().Entries; got != 0 {
		t.Fatalf("version-mismatched snapshot installed %d entries, want 0", got)
	}
}

func TestSaveSnapshotAtomicNoTempLeftover(t *testing.T) {
	e := warmEngine(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "sub", "cache.json")
	n, err := e.SaveSnapshot(path)
	if err != nil {
		t.Fatalf("SaveSnapshot into fresh subdirectory: %v", err)
	}
	if n == 0 {
		t.Fatal("SaveSnapshot of a warm engine reported 0 entries written")
	}
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "cache.json" {
		names := make([]string, 0, len(entries))
		for _, en := range entries {
			names = append(names, en.Name())
		}
		t.Fatalf("cache dir holds %v, want exactly [cache.json]", names)
	}
}

func TestReadSnapshotKeepsExistingEntries(t *testing.T) {
	src := warmEngine(t)
	var buf bytes.Buffer
	if _, err := src.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	// Warm the destination for one of the snapshot's keys first: the
	// restore must not clobber it, and must report one fewer install.
	dst := New()
	if _, err := dst.Profile(gpusim.VegaFE(), models.NewGNMT(), 16, 4, PhaseTrain); err != nil {
		t.Fatal(err)
	}
	total := len(dumpCache(src))
	n, err := dst.ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != total-1 {
		t.Fatalf("restore over warm cache installed %d entries, want %d", n, total-1)
	}
	if got := dst.Stats().Entries; got != int64(total) {
		t.Fatalf("cache holds %d entries after merge, want %d", got, total)
	}
}
