package engine

import (
	"context"
	"fmt"
	"math"
	"reflect"
	"sync"
	"testing"

	"seqpoint/internal/dataset"
	"seqpoint/internal/gpusim"
	"seqpoint/internal/models"
	"seqpoint/internal/nn"
	"seqpoint/internal/profiler"
	"seqpoint/internal/trainer"
)

// testCorpus returns a small corpus with a handful of distinct lengths
// so specs stay fast while exercising multiple cache keys.
func testCorpus(t testing.TB, name string, seed int64) *dataset.Corpus {
	t.Helper()
	lengths := make([]int, 96)
	for i := range lengths {
		lengths[i] = 20 + 5*(i%8) + int(seed)
	}
	c, err := dataset.Synthetic(name, lengths, 1000)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// testSpec is a small GNMT training spec with an eval phase.
func testSpec(t testing.TB, seed int64) trainer.Spec {
	t.Helper()
	return trainer.Spec{
		Model:    models.NewGNMT(),
		Train:    testCorpus(t, "train", seed),
		Eval:     testCorpus(t, "eval", seed+1),
		Batch:    16,
		Epochs:   2,
		Schedule: dataset.GNMTSchedule(),
		Seed:     seed,
	}
}

func TestProfileMatchesDirect(t *testing.T) {
	e := New()
	m := models.NewGNMT()
	cfg := gpusim.VegaFE()
	sim, err := gpusim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	got, err := e.Profile(cfg, m, 16, 40, PhaseTrain)
	if err != nil {
		t.Fatal(err)
	}
	want, err := profiler.ProfileIteration(sim, m, 16, 40)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("cached train profile differs from direct computation: got %.6f us, want %.6f us",
			got.TimeUS, want.TimeUS)
	}

	gotEval, err := e.Profile(cfg, m, 16, 40, PhaseEval)
	if err != nil {
		t.Fatal(err)
	}
	wantEval, err := profiler.ProfileEval(sim, m, 16, 40)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotEval, wantEval) {
		t.Error("cached eval profile differs from direct computation")
	}
	if gotEval.TimeUS >= got.TimeUS {
		t.Error("eval (forward-only) profile should be cheaper than a training iteration")
	}
}

func TestConcurrentSameKeyComputesOnce(t *testing.T) {
	e := New()
	m := models.NewGNMT()
	cfg := gpusim.VegaFE()

	const goroutines = 24
	profiles := make([]profiler.IterationProfile, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			profiles[g], errs[g] = e.Profile(cfg, m, 16, 55, PhaseTrain)
		}(g)
	}
	wg.Wait()

	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatal(errs[g])
		}
		if !reflect.DeepEqual(profiles[g], profiles[0]) {
			t.Fatalf("goroutine %d observed a different profile", g)
		}
	}

	st := e.Stats()
	if st.Misses != 1 {
		t.Errorf("same-key requests computed %d profiles, want exactly 1", st.Misses)
	}
	if st.Hits+st.Dedups != goroutines-1 {
		t.Errorf("hits(%d) + dedups(%d) = %d, want %d",
			st.Hits, st.Dedups, st.Hits+st.Dedups, goroutines-1)
	}
	if st.Entries != 1 {
		t.Errorf("cache holds %d entries, want 1", st.Entries)
	}
}

func TestDistinctKeysNeverCollide(t *testing.T) {
	e := New()
	cfgs := gpusim.TableII()
	gnmt, ds2 := models.NewGNMT(), models.NewDS2()

	// Every tuple differs from the first in exactly one component.
	type req struct {
		m     models.Model
		cfg   gpusim.Config
		batch int
		sl    int
		phase Phase
	}
	reqs := []req{
		{gnmt, cfgs[0], 16, 40, PhaseTrain},
		{ds2, cfgs[0], 16, 40, PhaseTrain},  // model differs
		{gnmt, cfgs[1], 16, 40, PhaseTrain}, // config differs
		{gnmt, cfgs[0], 32, 40, PhaseTrain}, // batch differs
		{gnmt, cfgs[0], 16, 41, PhaseTrain}, // SL differs
		{gnmt, cfgs[0], 16, 40, PhaseEval},  // phase differs
	}
	for _, r := range reqs {
		if _, err := e.Profile(r.cfg, r.m, r.batch, r.sl, r.phase); err != nil {
			t.Fatal(err)
		}
	}

	st := e.Stats()
	if st.Misses != int64(len(reqs)) || st.Entries != int64(len(reqs)) {
		t.Errorf("distinct keys collided: %d misses, %d entries, want %d of each",
			st.Misses, st.Entries, len(reqs))
	}
	if st.Hits != 0 {
		t.Errorf("unexpected cache hits: %d", st.Hits)
	}

	// Each cached entry must still match its own direct computation.
	for i, r := range reqs {
		p, err := e.Profile(r.cfg, r.m, r.batch, r.sl, r.phase)
		if err != nil {
			t.Fatal(err)
		}
		want, err := trainer.DirectProfileSource().TrainProfiles(r.cfg, gpusim.SingleGPU(), r.m, r.batch, []int{r.sl})
		if r.phase == PhaseEval {
			want, err = trainer.DirectProfileSource().EvalProfiles(r.cfg, gpusim.SingleGPU(), r.m, r.batch, []int{r.sl})
		}
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(p, want[r.sl]) {
			t.Errorf("request %d: cached profile differs from direct computation", i)
		}
	}
}

func TestFingerprintDistinguishesSameNamedModels(t *testing.T) {
	build := func(width int) models.Model {
		m, err := models.NewCustom("same-name", 1_000_000, true,
			func(batch, seqLen int) nn.Activation {
				return nn.Activation{Batch: batch, Time: seqLen, Feat: 64}
			},
			func(seqLen int) []nn.Layer {
				return []nn.Layer{nn.NewDense("d", width, true)}
			})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := build(128), build(256)
	if Fingerprint(a) == Fingerprint(b) {
		t.Error("structurally different models with the same name share a fingerprint")
	}
	if Fingerprint(a) != Fingerprint(build(128)) {
		t.Error("structurally identical models have different fingerprints")
	}
}

func TestSimulateByteIdenticalAcrossParallelism(t *testing.T) {
	spec := testSpec(t, 7)
	cfg := gpusim.VegaFE()

	// The engine-free sequential path is the reference.
	seqSpec := spec
	seqSpec.Profiles = trainer.DirectProfileSource()
	want, err := trainer.Simulate(seqSpec, cfg)
	if err != nil {
		t.Fatal(err)
	}

	for _, par := range []int{1, 8} {
		e := New()
		e.SetParallelism(par)
		got, err := e.Simulate(spec, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got.TotalUS() != want.TotalUS() {
			t.Errorf("parallelism %d: TotalUS %.9f != sequential %.9f", par, got.TotalUS(), want.TotalUS())
		}
		if got.TrainUS != want.TrainUS || got.EvalUS != want.EvalUS || got.AutotuneUS != want.AutotuneUS {
			t.Errorf("parallelism %d: component times differ from sequential path", par)
		}
		if !reflect.DeepEqual(got.BySL, want.BySL) {
			t.Errorf("parallelism %d: BySL differs from sequential path", par)
		}
		if got.Iterations != want.Iterations || got.Samples != want.Samples {
			t.Errorf("parallelism %d: iteration accounting differs", par)
		}
	}
}

func TestSweepDeterministicAndOrdered(t *testing.T) {
	specA := testSpec(t, 3)
	specB := testSpec(t, 4)
	specB.Model = models.NewSeq2Seq()
	var tasks []SweepTask
	for _, cfg := range gpusim.TableII()[:3] {
		tasks = append(tasks,
			SweepTask{Name: "gnmt on " + cfg.Name, Spec: specA, Config: cfg},
			SweepTask{Name: "seq2seq on " + cfg.Name, Spec: specB, Config: cfg})
	}

	e1 := New()
	res1 := e1.Sweep(context.Background(), tasks, 1)
	e8 := New()
	res8 := e8.Sweep(context.Background(), tasks, 8)

	if len(res1) != len(tasks) || len(res8) != len(tasks) {
		t.Fatalf("sweep returned %d/%d results, want %d", len(res1), len(res8), len(tasks))
	}
	for i := range tasks {
		if res1[i].Task.Name != tasks[i].Name || res8[i].Task.Name != tasks[i].Name {
			t.Fatalf("result %d out of task order", i)
		}
		if res1[i].Err != nil || res8[i].Err != nil {
			t.Fatal(res1[i].Err, res8[i].Err)
		}
		if res1[i].Run.TotalUS() != res8[i].Run.TotalUS() {
			t.Errorf("task %q: parallel sweep TotalUS %.9f != sequential %.9f",
				tasks[i].Name, res8[i].Run.TotalUS(), res1[i].Run.TotalUS())
		}
		if !reflect.DeepEqual(res1[i].Run.BySL, res8[i].Run.BySL) {
			t.Errorf("task %q: parallel sweep BySL differs from sequential", tasks[i].Name)
		}
	}
}

func TestSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tasks := []SweepTask{
		{Name: "never-runs", Spec: testSpec(t, 1), Config: gpusim.VegaFE()},
	}
	res := New().Sweep(ctx, tasks, 2)
	if res[0].Err != context.Canceled {
		t.Errorf("cancelled sweep task error = %v, want context.Canceled", res[0].Err)
	}
	if res[0].Run != nil {
		t.Error("cancelled task still produced a run")
	}
}

// TestReuseAcrossRunsAndConfigs is the PR's reuse acceptance criterion:
// after simulating a workload on two configs, re-running either config
// performs zero new profile computations.
func TestReuseAcrossRunsAndConfigs(t *testing.T) {
	e := New()
	spec := testSpec(t, 5)
	cfgs := gpusim.TableII()

	first, err := e.Simulate(spec, cfgs[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Simulate(spec, cfgs[1]); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Misses == 0 {
		t.Fatal("expected profile computations on first runs")
	}

	again, err := e.Simulate(spec, cfgs[0])
	if err != nil {
		t.Fatal(err)
	}
	st2 := e.Stats()
	if st2.Misses != st.Misses {
		t.Errorf("re-run computed %d new profiles, want 0", st2.Misses-st.Misses)
	}
	if st2.Hits <= st.Hits {
		t.Error("re-run should be served from the cache")
	}
	if again.TotalUS() != first.TotalUS() || !reflect.DeepEqual(again.BySL, first.BySL) {
		t.Error("re-run results differ from the first run")
	}

	// A different batch size is new work, not a cache hit.
	spec2 := spec
	spec2.Batch = spec.Batch * 2
	if _, err := e.Simulate(spec2, cfgs[0]); err != nil {
		t.Fatal(err)
	}
	if e.Stats().Misses == st2.Misses {
		t.Error("different batch size must not be served from the old entries")
	}
}

func TestSharedEngineIsTrainerDefault(t *testing.T) {
	if trainer.DefaultProfileSource() != trainer.ProfileSource(Shared()) {
		t.Error("importing engine should register the shared engine as the trainer default")
	}
}

func TestSetParallelismBounds(t *testing.T) {
	e := New()
	if e.Parallelism() <= 0 {
		t.Error("default parallelism must be positive")
	}
	e.SetParallelism(3)
	if e.Parallelism() != 3 {
		t.Errorf("Parallelism() = %d, want 3", e.Parallelism())
	}
	e.SetParallelism(0)
	if e.Parallelism() <= 0 {
		t.Error("reset parallelism must fall back to a positive default")
	}
}

func TestProfileSLsDedupesInput(t *testing.T) {
	e := New()
	m := models.NewGNMT()
	cfg := gpusim.VegaFE()
	sls := []int{30, 31, 30, 32, 31, 30}
	out, err := e.ProfileSLs(cfg, gpusim.SingleGPU(), m, 16, sls, PhaseTrain)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Errorf("got %d profiles, want 3", len(out))
	}
	if st := e.Stats(); st.Misses != 3 {
		t.Errorf("duplicate SLs recomputed: %d misses, want 3", st.Misses)
	}
	for _, sl := range []int{30, 31, 32} {
		if out[sl].SeqLen != sl {
			t.Errorf("profile for SL %d carries SeqLen %d", sl, out[sl].SeqLen)
		}
	}
}

func TestPhaseString(t *testing.T) {
	for phase, want := range map[Phase]string{PhaseTrain: "train", PhaseEval: "eval", Phase(9): "phase(9)"} {
		if got := phase.String(); got != want {
			t.Errorf("Phase(%d).String() = %q, want %q", phase, got, want)
		}
	}
}

func ExampleEngine_Stats() {
	e := New()
	cfg := gpusim.VegaFE()
	m := models.NewGNMT()
	e.Profile(cfg, m, 16, 40, PhaseTrain)
	e.Profile(cfg, m, 16, 40, PhaseTrain)
	st := e.Stats()
	fmt.Printf("misses=%d hits=%d entries=%d\n", st.Misses, st.Hits, st.Entries)
	// Output: misses=1 hits=1 entries=1
}

// TestProfileClusterRejectsInvalidBeforeKeying: an invalid cluster
// (here a NaN bandwidth) must error out before a cache Key is built —
// a NaN field in a map key never compares equal to itself, so it would
// leak one dead singleflight entry per request.
func TestProfileClusterRejectsInvalidBeforeKeying(t *testing.T) {
	e := New()
	bad := gpusim.ClusterConfig{GPUs: 4, Topology: gpusim.TopologyRing, LinkGBps: math.NaN()}
	for i := 0; i < 3; i++ {
		if _, err := e.ProfileCluster(gpusim.VegaFE(), bad, models.NewGNMT(), 16, 20, PhaseTrain); err == nil {
			t.Fatal("invalid cluster accepted")
		}
		if _, err := e.ProfileSLs(gpusim.VegaFE(), bad, models.NewGNMT(), 16, []int{20, 21}, PhaseTrain); err == nil {
			t.Fatal("invalid cluster accepted by ProfileSLs")
		}
	}
	if st := e.Stats(); st.Entries != 0 || st.Misses != 0 {
		t.Errorf("invalid cluster leaked cache state: %+v", st)
	}
}
