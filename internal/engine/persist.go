package engine

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"

	"seqpoint/internal/profiler"
)

// SnapshotVersion is the on-disk cache format version. Bump it whenever
// anything that feeds a cached profile changes — the Key layout, the
// IterationProfile layout, or the cost model itself — and every older
// snapshot is invalidated wholesale on load instead of silently serving
// stale prices.
const SnapshotVersion = 1

// snapshotMagic distinguishes a seqpoint cache file from arbitrary JSON.
const snapshotMagic = "seqpoint-profile-cache"

// snapshotFile is the serialized form of the engine's profile cache.
type snapshotFile struct {
	Magic   string          `json:"magic"`
	Version int             `json:"version"`
	Entries []snapshotEntry `json:"entries"`
}

// snapshotEntry is one completed cache slot: the full profile-identity
// key and the profile it priced.
type snapshotEntry struct {
	Key     Key                       `json:"key"`
	Profile profiler.IterationProfile `json:"profile"`
}

// WriteSnapshot serializes every completed, non-error cache entry to w
// as versioned JSON and returns how many entries it wrote. Entries are
// emitted in a deterministic order (sorted by key), so identical cache
// contents always produce identical bytes. In-flight computations are
// skipped, not waited for — which is why the returned count, not a
// stats reading taken around the call, is the truth about what landed
// on disk.
func (e *Engine) WriteSnapshot(w io.Writer) (int, error) {
	snap := snapshotFile{Magic: snapshotMagic, Version: SnapshotVersion}
	for i := range e.shards {
		s := &e.shards[i]
		s.mu.Lock()
		for k, en := range s.m {
			select {
			case <-en.done:
				if en.err == nil {
					snap.Entries = append(snap.Entries, snapshotEntry{Key: k, Profile: en.p})
				}
			default:
				// Still computing; a snapshot never blocks on it.
			}
		}
		s.mu.Unlock()
	}
	sort.Slice(snap.Entries, func(i, j int) bool { return keyLess(snap.Entries[i].Key, snap.Entries[j].Key) })

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(snap); err != nil {
		return 0, err
	}
	return len(snap.Entries), nil
}

// keyLess is a total order over cache keys (every Key field
// participates), so equal cache contents always snapshot to equal
// bytes regardless of sort.Slice's instability.
func keyLess(a, b Key) bool {
	switch {
	case a.Model != b.Model:
		return a.Model < b.Model
	case a.Config.Name != b.Config.Name:
		return a.Config.Name < b.Config.Name
	case a.Config.ClockGHz != b.Config.ClockGHz:
		return a.Config.ClockGHz < b.Config.ClockGHz
	case a.Config.NumCUs != b.Config.NumCUs:
		return a.Config.NumCUs < b.Config.NumCUs
	case a.Config.L1KBPerCU != b.Config.L1KBPerCU:
		return a.Config.L1KBPerCU < b.Config.L1KBPerCU
	case a.Config.L2MB != b.Config.L2MB:
		return a.Config.L2MB < b.Config.L2MB
	case a.Config.HBMGBps != b.Config.HBMGBps:
		return a.Config.HBMGBps < b.Config.HBMGBps
	case a.Config.LaunchOverheadUS != b.Config.LaunchOverheadUS:
		return a.Config.LaunchOverheadUS < b.Config.LaunchOverheadUS
	case a.Cluster.GPUs != b.Cluster.GPUs:
		return a.Cluster.GPUs < b.Cluster.GPUs
	case a.Cluster.Topology != b.Cluster.Topology:
		return a.Cluster.Topology < b.Cluster.Topology
	case a.Cluster.LinkGBps != b.Cluster.LinkGBps:
		return a.Cluster.LinkGBps < b.Cluster.LinkGBps
	case a.Cluster.LinkLatencyUS != b.Cluster.LinkLatencyUS:
		return a.Cluster.LinkLatencyUS < b.Cluster.LinkLatencyUS
	case a.Cluster.Overlap != b.Cluster.Overlap:
		return a.Cluster.Overlap < b.Cluster.Overlap
	case a.Batch != b.Batch:
		return a.Batch < b.Batch
	case a.Phase != b.Phase:
		return a.Phase < b.Phase
	default:
		return a.SeqLen < b.SeqLen
	}
}

// ReadSnapshot restores cache entries from a snapshot previously
// produced by WriteSnapshot and returns how many entries were
// installed. The whole snapshot is decoded and validated before any
// entry is installed, so a corrupt or truncated file leaves the cache
// exactly as it was (cold start). A snapshot written at a different
// SnapshotVersion is rejected entirely — profiles priced under an older
// model must never be served. Entries already present in the cache are
// kept; the snapshot never overwrites live state.
func (e *Engine) ReadSnapshot(r io.Reader) (int, error) {
	var snap snapshotFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&snap); err != nil {
		return 0, fmt.Errorf("engine: decoding cache snapshot: %w", err)
	}
	if snap.Magic != snapshotMagic {
		return 0, fmt.Errorf("engine: not a profile-cache snapshot (magic %q)", snap.Magic)
	}
	if snap.Version != SnapshotVersion {
		return 0, fmt.Errorf("engine: cache snapshot version %d does not match supported version %d; ignoring stale cache",
			snap.Version, SnapshotVersion)
	}
	for i, se := range snap.Entries {
		if err := validateEntry(se); err != nil {
			return 0, fmt.Errorf("engine: cache snapshot entry %d invalid: %w", i, err)
		}
	}

	installed := 0
	for _, se := range snap.Entries {
		done := make(chan struct{})
		close(done)
		s := e.shardFor(se.Key)
		s.mu.Lock()
		if _, ok := s.m[se.Key]; !ok {
			s.m[se.Key] = &entry{done: done, p: se.Profile}
			installed++
		}
		s.mu.Unlock()
	}
	return installed, nil
}

// validateEntry rejects snapshot entries a live engine could never have
// produced — a tampered or hand-edited file must not poison the cache
// with garbage served as hits for the daemon's lifetime.
func validateEntry(se snapshotEntry) error {
	if err := se.Key.Config.Validate(); err != nil {
		return err
	}
	if err := se.Key.Cluster.Validate(); err != nil {
		return err
	}
	if se.Key.Cluster != se.Key.Cluster.Normalized() {
		return fmt.Errorf("cluster %v is not in normalized form", se.Key.Cluster)
	}
	switch {
	case se.Key.Batch <= 0:
		return fmt.Errorf("batch %d must be positive", se.Key.Batch)
	case se.Key.SeqLen <= 0:
		return fmt.Errorf("sequence length %d must be positive", se.Key.SeqLen)
	case se.Key.Phase != PhaseTrain && se.Key.Phase != PhaseEval:
		return fmt.Errorf("unknown phase %d", se.Key.Phase)
	case !(se.Profile.TimeUS >= 0) || math.IsInf(se.Profile.TimeUS, 0):
		return fmt.Errorf("profile time %v must be finite and non-negative", se.Profile.TimeUS)
	case !(se.Profile.CommUS >= 0) || math.IsInf(se.Profile.CommUS, 0):
		return fmt.Errorf("profile comm time %v must be finite and non-negative", se.Profile.CommUS)
	case se.Profile.NumKernels < 0:
		return fmt.Errorf("kernel count %d must be non-negative", se.Profile.NumKernels)
	}
	return nil
}

// SaveSnapshot atomically writes the cache snapshot to path and
// returns how many entries it wrote: the bytes land in a temporary
// file in the same directory, which is renamed over path only after a
// successful write, so a crash mid-save can never leave a truncated
// snapshot behind.
func (e *Engine) SaveSnapshot(path string) (n int, err error) {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, fmt.Errorf("engine: creating cache directory: %w", err)
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return 0, fmt.Errorf("engine: creating temporary cache file: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if n, err = e.WriteSnapshot(tmp); err != nil {
		return 0, err
	}
	if err = tmp.Close(); err != nil {
		return 0, fmt.Errorf("engine: closing temporary cache file: %w", err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return 0, fmt.Errorf("engine: installing cache file: %w", err)
	}
	return n, nil
}

// LoadSnapshot restores the cache from path, returning how many entries
// were installed. A missing file is a normal cold start (0, nil); a
// corrupt, truncated or version-mismatched file returns an error and
// leaves the cache untouched, so callers can log the reason and serve
// cold.
func (e *Engine) LoadSnapshot(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, fmt.Errorf("engine: opening cache file: %w", err)
	}
	defer f.Close()
	return e.ReadSnapshot(f)
}
