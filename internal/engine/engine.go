// Package engine is the concurrent simulation engine underneath the
// trainer and the experiment suite. It owns two things:
//
//   - a sharded, concurrency-safe profile cache keyed by (model
//     fingerprint, hardware config, batch, phase, sequence length) with
//     singleflight deduplication, so each unique iteration profile is
//     priced exactly once per process — across runs, workloads and
//     goroutines. A profile depends on nothing but its key (the paper's
//     observation 4/5: same padded SL ⇒ identical work), which is what
//     makes cross-run sharing sound.
//   - a bounded worker pool that fans out the unique-SL profiling of an
//     epoch plan, and above it a Sweep API that runs a (workload ×
//     config) grid with configurable parallelism and context
//     cancellation.
//
// Determinism is a hard constraint: per-profile op pricing stays in op
// order (each profile is computed whole by one goroutine) and run
// aggregation stays in plan order (in the trainer), so results at any
// parallelism are byte-identical to the sequential path.
//
// Importing this package registers the shared engine as the trainer's
// default ProfileSource, so trainer.Simulate reuses profiles
// process-wide unless a spec overrides the source.
package engine

import (
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"

	"seqpoint/internal/gpusim"
	"seqpoint/internal/models"
	"seqpoint/internal/profiler"
	"seqpoint/internal/trainer"
)

// Phase distinguishes the two profile kinds a training run needs.
type Phase uint8

const (
	// PhaseTrain is a full training iteration (forward + backward +
	// optimizer).
	PhaseTrain Phase = iota
	// PhaseEval is a forward-only evaluation pass.
	PhaseEval
)

// String names the phase.
func (p Phase) String() string {
	switch p {
	case PhaseTrain:
		return "train"
	case PhaseEval:
		return "eval"
	default:
		return fmt.Sprintf("phase(%d)", int(p))
	}
}

// Key identifies one cached profile. Config and Cluster participate as
// values (flat comparable structs), so two configurations differing in
// any field — including the display name — occupy distinct entries.
// Cluster is always stored normalized (see ClusterConfig.Normalized),
// so every single-GPU spelling shares one entry.
type Key struct {
	// Model is the structural fingerprint of the network (see
	// Fingerprint).
	Model uint64
	// Config is the per-GPU hardware configuration.
	Config gpusim.Config
	// Cluster is the normalized data-parallel cluster configuration.
	Cluster gpusim.ClusterConfig
	// Batch is the global minibatch size.
	Batch int
	// Phase is the profile kind.
	Phase Phase
	// SeqLen is the padded sequence length.
	SeqLen int
}

// Fingerprint returns a structural identity for a model: a hash over
// the op streams it emits at two probe shapes, train and eval. Models
// that build identical op sequences (kind, shape signature, cost
// quantities) are interchangeable for profiling and may share cache
// entries; models differing anywhere — including two custom models
// that share a Name() — never collide.
func Fingerprint(m models.Model) uint64 {
	h := fnv.New64a()
	io.WriteString(h, m.Name())
	var buf [8]byte
	hashF := func(f float64) {
		v := math.Float64bits(f)
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	for _, probe := range [][2]int{{2, 3}, {2, 7}} {
		for _, op := range m.IterationOps(probe[0], probe[1]) {
			io.WriteString(h, op.Signature())
			hashF(op.FLOPs())
			hashF(op.BytesRead())
			hashF(op.BytesWritten())
		}
		io.WriteString(h, "|eval|")
		for _, op := range m.EvalOps(probe[0], probe[1]) {
			io.WriteString(h, op.Signature())
			hashF(op.FLOPs())
			hashF(op.BytesRead())
			hashF(op.BytesWritten())
		}
		io.WriteString(h, "|probe|")
	}
	return h.Sum64()
}

// Stats is a snapshot of the engine's cache counters.
type Stats struct {
	// Hits counts requests served from a completed cache entry.
	Hits int64 `json:"hits"`
	// Misses counts profiles actually computed (one per unique key).
	Misses int64 `json:"misses"`
	// Dedups counts requests that arrived while the same key was being
	// computed and waited for it instead of recomputing.
	Dedups int64 `json:"dedups"`
	// Entries is the number of profiles currently cached.
	Entries int64 `json:"entries"`
}

const numShards = 32

type shard struct {
	mu sync.Mutex
	m  map[Key]*entry
}

// entry is one singleflight cache slot: the first requester computes,
// everyone else waits on done.
type entry struct {
	done chan struct{}
	p    profiler.IterationProfile
	err  error
}

// Engine is a concurrent profiling engine with a process-lifetime
// cache. The zero value is not usable; call New or Shared. An Engine
// is safe for concurrent use.
type Engine struct {
	shards      [numShards]shard
	fps         sync.Map // models.Model -> uint64, comparable models only
	fpCount     atomic.Int64
	parallelism atomic.Int64
	hits        atomic.Int64
	misses      atomic.Int64
	dedups      atomic.Int64

	// busy counts in-flight profile computations; acquire/release gate
	// them so nested fan-out (Sweep workers each fanning out ProfileSLs)
	// still respects Parallelism() engine-wide.
	busyMu   sync.Mutex
	busyCond *sync.Cond
	busy     int
}

// maxFingerprintMemo bounds the per-instance fingerprint memo so a
// process that keeps constructing fresh model values cannot grow (and
// pin) the map without bound; past the cap, fingerprints are simply
// recomputed.
const maxFingerprintMemo = 1024

// New returns an empty engine whose worker pools default to
// GOMAXPROCS-wide.
func New() *Engine {
	e := &Engine{}
	e.busyCond = sync.NewCond(&e.busyMu)
	for i := range e.shards {
		e.shards[i].m = make(map[Key]*entry)
	}
	return e
}

var shared = New()

// Shared returns the process-wide engine: the one the trainer defaults
// to and the one NewLab-built experiment suites share, so profiles are
// reused across every run in the process.
func Shared() *Engine { return shared }

func init() {
	trainer.SetDefaultProfileSource(shared)
}

// SetParallelism bounds the engine's worker pools to n concurrent
// profiling goroutines; n <= 0 restores the GOMAXPROCS default.
// Parallelism never affects results, only wall-clock time.
func (e *Engine) SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	e.parallelism.Store(int64(n))
	e.busyCond.Broadcast() // a raised limit may unblock waiters
}

// acquire blocks until a profiling slot is free. Slots are held only
// for the duration of one profile computation (a leaf that never
// re-enters the engine), so there is no hold-and-wait cycle.
func (e *Engine) acquire() {
	e.busyMu.Lock()
	for e.busy >= e.Parallelism() {
		e.busyCond.Wait()
	}
	e.busy++
	e.busyMu.Unlock()
}

func (e *Engine) release() {
	e.busyMu.Lock()
	e.busy--
	e.busyMu.Unlock()
	e.busyCond.Signal()
}

// Parallelism returns the effective worker-pool width.
func (e *Engine) Parallelism() int {
	if n := e.parallelism.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// Stats returns a snapshot of the cache counters.
func (e *Engine) Stats() Stats {
	s := Stats{
		Hits:   e.hits.Load(),
		Misses: e.misses.Load(),
		Dedups: e.dedups.Load(),
	}
	for i := range e.shards {
		e.shards[i].mu.Lock()
		s.Entries += int64(len(e.shards[i].m))
		e.shards[i].mu.Unlock()
	}
	return s
}

// fingerprint memoizes Fingerprint per model instance when the model's
// dynamic type is comparable (all the package's models are pointers);
// non-comparable user types are re-fingerprinted per call.
func (e *Engine) fingerprint(m models.Model) uint64 {
	memoizable := reflect.TypeOf(m).Comparable()
	if memoizable {
		if v, ok := e.fps.Load(m); ok {
			return v.(uint64)
		}
	}
	fp := Fingerprint(m)
	if memoizable && e.fpCount.Load() < maxFingerprintMemo {
		if _, loaded := e.fps.LoadOrStore(m, fp); !loaded {
			e.fpCount.Add(1)
		}
	}
	return fp
}

func (e *Engine) shardFor(k Key) *shard {
	h := k.Model
	h = h*31 + uint64(k.SeqLen)
	h = h*31 + uint64(k.Batch)
	h = h*31 + uint64(k.Phase)
	for _, c := range k.Config.Name {
		h = h*31 + uint64(c)
	}
	h = h*31 + uint64(k.Config.NumCUs)
	h = h*31 + uint64(k.Cluster.GPUs)
	return &e.shards[h%numShards]
}

// Profile returns the single-GPU iteration profile for (hw, m, batch,
// seqLen, phase), computing it at most once per unique key across the
// whole process. Concurrent requests for an in-flight key wait for the
// single computation instead of duplicating it.
func (e *Engine) Profile(hw gpusim.Config, m models.Model, batch, seqLen int, phase Phase) (profiler.IterationProfile, error) {
	return e.ProfileCluster(hw, gpusim.SingleGPU(), m, batch, seqLen, phase)
}

// ProfileCluster is Profile on a data-parallel cluster of hw replicas:
// the cached unit becomes the whole training step (shard compute plus
// exposed all-reduce), keyed additionally by the normalized cluster
// configuration. The cluster is validated before it enters the cache
// key: a key holding a NaN field would never compare equal to itself,
// silently leaking one dead singleflight entry per request.
func (e *Engine) ProfileCluster(hw gpusim.Config, cl gpusim.ClusterConfig, m models.Model, batch, seqLen int, phase Phase) (profiler.IterationProfile, error) {
	cl = cl.Normalized()
	if err := cl.Validate(); err != nil {
		return profiler.IterationProfile{}, err
	}
	k := Key{Model: e.fingerprint(m), Config: hw, Cluster: cl, Batch: batch, Phase: phase, SeqLen: seqLen}
	return e.profileKeyed(k, m)
}

// profileKeyed is Profile with the key already built, letting bulk
// callers fingerprint the model once instead of once per SL.
func (e *Engine) profileKeyed(k Key, m models.Model) (profiler.IterationProfile, error) {
	s := e.shardFor(k)

	s.mu.Lock()
	if en, ok := s.m[k]; ok {
		s.mu.Unlock()
		select {
		case <-en.done:
			e.hits.Add(1)
		default:
			e.dedups.Add(1)
			<-en.done
		}
		return en.p, en.err
	}
	en := &entry{done: make(chan struct{})}
	s.m[k] = en
	s.mu.Unlock()

	e.misses.Add(1)
	e.acquire()
	en.p, en.err = computeProfile(k.Config, k.Cluster, m, k.Batch, k.SeqLen, k.Phase)
	e.release()
	close(en.done)
	if en.err != nil {
		// Errors are not cached: a failed entry would pin e.g. a
		// transient invalid-config mistake forever. Deterministic
		// failures simply recompute cheaply.
		s.mu.Lock()
		delete(s.m, k)
		s.mu.Unlock()
	}
	return en.p, en.err
}

func computeProfile(hw gpusim.Config, cl gpusim.ClusterConfig, m models.Model, batch, seqLen int, phase Phase) (profiler.IterationProfile, error) {
	sim, err := gpusim.New(hw)
	if err != nil {
		return profiler.IterationProfile{}, err
	}
	if phase == PhaseEval {
		return profiler.ProfileEvalStep(sim, cl, m, batch, seqLen)
	}
	return profiler.ProfileStep(sim, cl, m, batch, seqLen)
}

// ProfileSLs profiles every requested sequence length through the
// cache, fanning cache misses out over the engine's bounded worker
// pool. The returned map is independent of pool width and request
// order.
func (e *Engine) ProfileSLs(hw gpusim.Config, cl gpusim.ClusterConfig, m models.Model, batch int, seqLens []int, phase Phase) (map[int]profiler.IterationProfile, error) {
	cl = cl.Normalized()
	// Reject invalid clusters before any Key is built: NaN fields in a
	// map key never match themselves and would leak cache entries.
	if err := cl.Validate(); err != nil {
		return nil, err
	}
	uniq := make([]int, 0, len(seqLens))
	seen := make(map[int]bool, len(seqLens))
	for _, sl := range seqLens {
		if !seen[sl] {
			seen[sl] = true
			uniq = append(uniq, sl)
		}
	}

	out := make(map[int]profiler.IterationProfile, len(uniq))
	profiles := make([]profiler.IterationProfile, len(uniq))
	errs := make([]error, len(uniq))

	fp := e.fingerprint(m)
	key := func(sl int) Key {
		return Key{Model: fp, Config: hw, Cluster: cl, Batch: batch, Phase: phase, SeqLen: sl}
	}

	workers := e.Parallelism()
	if workers > len(uniq) {
		workers = len(uniq)
	}
	if workers <= 1 {
		for _, sl := range uniq {
			p, err := e.profileKeyed(key(sl), m)
			if err != nil {
				return nil, err
			}
			out[sl] = p
		}
		return out, nil
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				profiles[i], errs[i] = e.profileKeyed(key(uniq[i]), m)
			}
		}()
	}
	for i := range uniq {
		idx <- i
	}
	close(idx)
	wg.Wait()

	for i, sl := range uniq {
		if errs[i] != nil {
			return nil, errs[i]
		}
		out[sl] = profiles[i]
	}
	return out, nil
}

// TrainProfiles implements trainer.ProfileSource.
func (e *Engine) TrainProfiles(hw gpusim.Config, cl gpusim.ClusterConfig, m models.Model, batch int, seqLens []int) (map[int]profiler.IterationProfile, error) {
	return e.ProfileSLs(hw, cl, m, batch, seqLens, PhaseTrain)
}

// EvalProfiles implements trainer.ProfileSource.
func (e *Engine) EvalProfiles(hw gpusim.Config, cl gpusim.ClusterConfig, m models.Model, batch int, seqLens []int) (map[int]profiler.IterationProfile, error) {
	return e.ProfileSLs(hw, cl, m, batch, seqLens, PhaseEval)
}

// Simulate runs a full training simulation whose profiling goes
// through this engine (unless the spec pins its own source).
func (e *Engine) Simulate(spec trainer.Spec, hw gpusim.Config) (*trainer.Run, error) {
	if spec.Profiles == nil {
		spec.Profiles = e
	}
	return trainer.Simulate(spec, hw)
}
