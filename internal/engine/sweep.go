package engine

import (
	"context"
	"sync"

	"seqpoint/internal/gpusim"
	"seqpoint/internal/trainer"
)

// SweepTask is one cell of a (workload × config) grid: a training spec
// to simulate on a hardware configuration.
type SweepTask struct {
	// Name labels the task in results ("gnmt on #3").
	Name string
	// Spec is the training run to simulate.
	Spec trainer.Spec
	// Config is the hardware configuration to run it on.
	Config gpusim.Config
}

// SweepResult is the outcome of one sweep task.
type SweepResult struct {
	// Task is the task this result belongs to.
	Task SweepTask
	// Run is the simulated run; nil when Err is set.
	Run *trainer.Run
	// Err is the task's failure, or ctx.Err() for tasks not started
	// before cancellation.
	Err error
}

// Sweep simulates every task with at most `parallelism` concurrent
// runs (<= 0 uses the engine default) and returns the results in task
// order. Concurrent profile *computations* are additionally bounded
// engine-wide by Parallelism(), so nested fan-out (each run fanning
// its unique SLs out in turn) cannot oversubscribe the machine. All tasks share this engine's profile cache, so grid cells
// that revisit a (model, config, batch, SL) tuple — every cell of a
// multi-config sweep over one workload, for instance — profile it only
// once. Cancelling ctx stops unstarted tasks, which report ctx.Err();
// already-running simulations complete. Because each result is
// computed independently and slotted by task index, the output is
// identical at any parallelism.
func (e *Engine) Sweep(ctx context.Context, tasks []SweepTask, parallelism int) []SweepResult {
	results := make([]SweepResult, len(tasks))
	for i := range tasks {
		results[i].Task = tasks[i]
	}

	workers := parallelism
	if workers <= 0 {
		workers = e.Parallelism()
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}

	run := func(i int) {
		if err := ctx.Err(); err != nil {
			results[i].Err = err
			return
		}
		results[i].Run, results[i].Err = e.Simulate(tasks[i].Spec, tasks[i].Config)
	}

	if workers <= 1 {
		for i := range tasks {
			run(i)
		}
		return results
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				run(i)
			}
		}()
	}
	for i := range tasks {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}
