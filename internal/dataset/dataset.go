// Package dataset provides synthetic stand-ins for the corpora the paper
// trains on: LibriSpeech-100h (DeepSpeech2) and IWSLT'15 (GNMT). Real
// audio and text are unavailable and unnecessary — SeqPoint consumes
// only each iteration's padded sequence length — so the substitution
// preserves what matters: the *distribution* of sequence lengths
// (Fig. 7: unimodal and skewed for speech, long-tailed and decreasing
// for translation), the corpus sizes, and the batching policies that
// determine per-iteration SLs (max-of-batch padding, DS2's sorted first
// epoch, NMT-style length bucketing).
//
// Everything is seeded and deterministic.
package dataset

import (
	"fmt"
	"math"
	"math/rand"
)

// Corpus is a training (or evaluation) set reduced to its sequence
// lengths: one entry per sample.
type Corpus struct {
	// Name labels the corpus in reports.
	Name string
	// Lengths holds one sequence length per sample.
	Lengths []int
	// Vocab is the symbol vocabulary size of the corpus (key
	// observation 6: it must be preserved when sampling iterations).
	Vocab int
}

// Size returns the number of samples.
func (c *Corpus) Size() int { return len(c.Lengths) }

// MinMaxLen returns the shortest and longest sample lengths.
func (c *Corpus) MinMaxLen() (int, int) {
	if len(c.Lengths) == 0 {
		return 0, 0
	}
	lo, hi := c.Lengths[0], c.Lengths[0]
	for _, l := range c.Lengths[1:] {
		if l < lo {
			lo = l
		}
		if l > hi {
			hi = l
		}
	}
	return lo, hi
}

// Corpus-size and distribution constants. Sizes match the datasets the
// paper evaluates: LibriSpeech train-clean-100 has 28 539 utterances;
// IWSLT'15 En-Vi has 133 317 training sentence pairs. Length ranges
// match the x-axes of the paper's Figs 9, 13, 14 (DS2 sequence lengths
// ~50-500 spectrogram-derived steps, GNMT sentence lengths ~1-220).
const (
	LibriSpeechSize  = 28539
	LibriSpeechEval  = 2703 // dev-clean
	IWSLTSize        = 133317
	IWSLTEval        = 1553    // tst2013
	Libri500Size     = 148688  // train-other-500
	WMT16Size        = 4500966 // En-De sentence pairs
	ds2MinLen        = 50
	ds2MaxLen        = 500
	ds2MeanLen       = 260
	ds2StdLen        = 80
	gnmtMinLen       = 1
	gnmtMaxLen       = 220
	gnmtGammaShape   = 1.6
	gnmtGammaScale   = 22.0
	ds2Vocab         = 29    // English characters + blank
	gnmtVocab        = 36549 // IWSLT'15 vocabulary (paper Table I)
	wmtVocab         = 32000 // WMT16 BPE vocabulary
	evalSeedOffset   = 0x5eed
	defaultBatchSize = 64
)

// LibriSpeech100h generates the DS2 training corpus: sequence lengths
// drawn from a clipped Gaussian, giving the unimodal, mildly skewed
// histogram of the paper's Fig. 7(a).
func LibriSpeech100h(seed int64) *Corpus {
	return libriSpeech("librispeech-100h", LibriSpeechSize, seed)
}

// LibriSpeechDev generates the DS2 evaluation corpus.
func LibriSpeechDev(seed int64) *Corpus {
	return libriSpeech("librispeech-dev", LibriSpeechEval, seed+evalSeedOffset)
}

func libriSpeech(name string, n int, seed int64) *Corpus {
	rng := rand.New(rand.NewSource(seed))
	lengths := make([]int, n)
	for i := range lengths {
		// Resample out-of-range draws rather than clamping: speech
		// pipelines filter utterances by duration, so the distribution
		// has no artificial spikes at the cut-offs.
		l := ds2MaxLen + 1
		for l > ds2MaxLen || l < ds2MinLen {
			l = int(math.Round(ds2MeanLen + rng.NormFloat64()*ds2StdLen))
			// Right skew: long audiobook utterances stretch the tail,
			// separating the distribution's mean from its median (this
			// skew is why the `median` single-iteration baseline
			// mispredicts).
			if rng.Float64() < 0.22 {
				l += int(rng.ExpFloat64() * 70)
			}
		}
		lengths[i] = l
	}
	return &Corpus{Name: name, Lengths: lengths, Vocab: ds2Vocab}
}

// LibriSpeech500h generates the larger DS2 corpus the paper's
// Section VI-F mentions: LibriSpeech train-other-500, observed by the
// authors to have a similar sequence-length range to the 100-hour set —
// so SeqPoint counts stay flat while the epoch grows, multiplying the
// profiling speedup.
func LibriSpeech500h(seed int64) *Corpus {
	return libriSpeech("librispeech-500h", Libri500Size, seed)
}

// WMT16 generates the larger NMT corpus of Section VI-F: 4.5M sentence
// pairs with the same length range as IWSLT'15.
func WMT16(seed int64) *Corpus {
	c := iwslt("wmt16", WMT16Size, seed)
	c.Vocab = wmtVocab
	return c
}

// IWSLT15 generates the GNMT training corpus: sentence lengths drawn
// from a gamma distribution, giving the decreasing long-tail histogram
// of the paper's Fig. 7(b).
func IWSLT15(seed int64) *Corpus {
	return iwslt("iwslt15", IWSLTSize, seed)
}

// IWSLTTest generates the GNMT evaluation corpus.
func IWSLTTest(seed int64) *Corpus {
	return iwslt("iwslt15-tst2013", IWSLTEval, seed+evalSeedOffset)
}

func iwslt(name string, n int, seed int64) *Corpus {
	rng := rand.New(rand.NewSource(seed))
	lengths := make([]int, n)
	for i := range lengths {
		// Resample over-long sentences rather than clamping: NMT
		// pipelines filter sentences above a maximum length, so the
		// distribution has no artificial spike at the cap.
		l := gnmtMaxLen + 1
		for l > gnmtMaxLen {
			l = int(math.Round(gammaSample(rng, gnmtGammaShape, gnmtGammaScale)))
		}
		if l < gnmtMinLen {
			l = gnmtMinLen
		}
		lengths[i] = l
	}
	return &Corpus{Name: name, Lengths: lengths, Vocab: gnmtVocab}
}

// gammaSample draws from Gamma(shape k, scale theta) using the
// Marsaglia-Tsang method (with the standard boost for k < 1).
func gammaSample(rng *rand.Rand, k, theta float64) float64 {
	if k < 1 {
		u := rng.Float64()
		return gammaSample(rng, k+1, theta) * math.Pow(u, 1/k)
	}
	d := k - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v * theta
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * theta
		}
	}
}

// Subsample returns a corpus of n samples drawn without replacement from
// c (or a copy of c when n >= its size). The vocabulary is preserved, per
// the paper's key observation 6: sampled runs must keep the full
// vocabulary to stay representative. Useful for fast demos over the
// full-size corpora.
func Subsample(c *Corpus, n int, seed int64) *Corpus {
	if n >= c.Size() {
		cp := append([]int(nil), c.Lengths...)
		return &Corpus{Name: c.Name, Lengths: cp, Vocab: c.Vocab}
	}
	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(c.Size())[:n]
	lengths := make([]int, n)
	for i, j := range idx {
		lengths[i] = c.Lengths[j]
	}
	return &Corpus{
		Name:    fmt.Sprintf("%s-sub%d", c.Name, n),
		Lengths: lengths,
		Vocab:   c.Vocab,
	}
}

// Synthetic builds an arbitrary corpus from explicit lengths; tests and
// the custom-model example use it.
func Synthetic(name string, lengths []int, vocab int) (*Corpus, error) {
	if len(lengths) == 0 {
		return nil, fmt.Errorf("dataset: corpus %q needs at least one sample", name)
	}
	for i, l := range lengths {
		if l <= 0 {
			return nil, fmt.Errorf("dataset: corpus %q sample %d has non-positive length %d", name, i, l)
		}
	}
	if vocab <= 0 {
		return nil, fmt.Errorf("dataset: corpus %q needs a positive vocabulary", name)
	}
	cp := append([]int(nil), lengths...)
	return &Corpus{Name: name, Lengths: cp, Vocab: vocab}, nil
}
