package dataset

import (
	"fmt"
	"math/rand"
	"sort"
)

// Order is the sample-ordering policy used to form an epoch's batches.
type Order int

const (
	// OrderShuffled batches a uniformly shuffled corpus. Under a
	// long-tailed length distribution this concentrates the per-batch
	// maximum near the tail (lots of padding waste), which is why real
	// systems rarely use it for SQNNs; it is provided for contrast and
	// testing.
	OrderShuffled Order = iota
	// OrderSorted batches the corpus in ascending length order. DS2's
	// reference implementation sorts its *first* epoch this way
	// ("SortaGrad"); the paper leans on this artifact to explain why the
	// `prior` baseline looks artificially good on DS2 (Section VI-D).
	OrderSorted
	// OrderBucketed groups samples of similar length into batches and
	// fully shuffles the batch order: padding stays low while the epoch
	// interleaves all sequence lengths. DS2 uses this after its sorted
	// first epoch.
	OrderBucketed
	// OrderPooled also batches by length but shuffles only at the
	// granularity of pools of adjacent batches, the way bucket-iterator
	// NMT pipelines (GNMT's included) drain one length-bucket queue at a
	// time. A contiguous window of iterations therefore covers only a
	// few narrow SL bands — the property that makes contiguous-sampling
	// profilers unrepresentative on GNMT (Section VI-E: "the sequence
	// lengths present in this contiguous chunk are not diverse").
	OrderPooled
)

// pooledBatchesPerPool is the bucket-queue granularity of OrderPooled.
const pooledBatchesPerPool = 16

// String names the order.
func (o Order) String() string {
	switch o {
	case OrderShuffled:
		return "shuffled"
	case OrderSorted:
		return "sorted"
	case OrderBucketed:
		return "bucketed"
	case OrderPooled:
		return "pooled"
	default:
		return fmt.Sprintf("order(%d)", int(o))
	}
}

// EpochPlan is the realized iteration sequence of one epoch: the padded
// sequence length of each iteration's batch, in execution order. This is
// the only thing the trainer needs from the data pipeline: with
// pad-to-max batching, every sample in the batch is processed at the
// batch's maximum length (Section IV-B1 of the paper).
type EpochPlan struct {
	// BatchSize is the number of samples per iteration.
	BatchSize int
	// SeqLens holds the padded SL of each iteration.
	SeqLens []int
}

// Iterations returns the number of iterations in the epoch.
func (p EpochPlan) Iterations() int { return len(p.SeqLens) }

// PlanEpoch forms an epoch's batches from the corpus under the given
// ordering policy. Incomplete trailing batches are dropped, as the
// reference implementations do. The seed controls shuffling; the same
// (corpus, batch, order, seed) always yields the same plan.
func PlanEpoch(c *Corpus, batch int, order Order, seed int64) (EpochPlan, error) {
	if batch <= 0 {
		return EpochPlan{}, fmt.Errorf("dataset: batch size must be positive, got %d", batch)
	}
	if c.Size() < batch {
		return EpochPlan{}, fmt.Errorf("dataset: corpus %q (%d samples) smaller than one batch (%d)",
			c.Name, c.Size(), batch)
	}

	lengths := append([]int(nil), c.Lengths...)
	rng := rand.New(rand.NewSource(seed))

	switch order {
	case OrderShuffled:
		rng.Shuffle(len(lengths), func(i, j int) {
			lengths[i], lengths[j] = lengths[j], lengths[i]
		})
	case OrderSorted, OrderBucketed, OrderPooled:
		sort.Ints(lengths)
	default:
		return EpochPlan{}, fmt.Errorf("dataset: unknown order %v", order)
	}

	nBatches := len(lengths) / batch
	seqLens := make([]int, nBatches)
	for i := 0; i < nBatches; i++ {
		max := 0
		for _, l := range lengths[i*batch : (i+1)*batch] {
			if l > max {
				max = l
			}
		}
		seqLens[i] = max
	}

	switch order {
	case OrderBucketed:
		// Batches were formed over sorted samples (tight padding);
		// now randomize their execution order batch by batch.
		rng.Shuffle(len(seqLens), func(i, j int) {
			seqLens[i], seqLens[j] = seqLens[j], seqLens[i]
		})
	case OrderPooled:
		// Shuffle pools of adjacent batches, keeping each pool's
		// narrow SL band contiguous.
		nPools := (len(seqLens) + pooledBatchesPerPool - 1) / pooledBatchesPerPool
		poolIdx := rng.Perm(nPools)
		shuffled := make([]int, 0, len(seqLens))
		for _, p := range poolIdx {
			lo := p * pooledBatchesPerPool
			hi := lo + pooledBatchesPerPool
			if hi > len(seqLens) {
				hi = len(seqLens)
			}
			shuffled = append(shuffled, seqLens[lo:hi]...)
		}
		seqLens = shuffled
	}

	return EpochPlan{BatchSize: batch, SeqLens: seqLens}, nil
}

// Schedule describes how a model's data pipeline orders each epoch.
type Schedule struct {
	// FirstEpoch is the ordering of epoch 0.
	FirstEpoch Order
	// LaterEpochs is the ordering of every subsequent epoch.
	LaterEpochs Order
}

// DS2Schedule is DeepSpeech2's SortaGrad policy: sorted first epoch,
// bucketed afterwards.
func DS2Schedule() Schedule {
	return Schedule{FirstEpoch: OrderSorted, LaterEpochs: OrderBucketed}
}

// GNMTSchedule is the NMT bucket-iterator policy for all epochs: batches
// of similar length drain pool by pool.
func GNMTSchedule() Schedule {
	return Schedule{FirstEpoch: OrderPooled, LaterEpochs: OrderPooled}
}

// PlanTraining builds per-epoch plans for a full training run of
// `epochs` epochs. Each epoch derives its own shuffle seed from the base
// seed, so epochs differ in order but the run is reproducible.
func PlanTraining(c *Corpus, batch, epochs int, sched Schedule, seed int64) ([]EpochPlan, error) {
	if epochs <= 0 {
		return nil, fmt.Errorf("dataset: epoch count must be positive, got %d", epochs)
	}
	plans := make([]EpochPlan, epochs)
	for e := 0; e < epochs; e++ {
		order := sched.LaterEpochs
		if e == 0 {
			order = sched.FirstEpoch
		}
		p, err := PlanEpoch(c, batch, order, seed+int64(e)*7919)
		if err != nil {
			return nil, err
		}
		plans[e] = p
	}
	return plans, nil
}
