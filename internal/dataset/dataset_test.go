package dataset

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestLibriSpeechShape(t *testing.T) {
	c := LibriSpeech100h(1)
	if c.Size() != LibriSpeechSize {
		t.Errorf("size = %d, want %d", c.Size(), LibriSpeechSize)
	}
	if c.Vocab != 29 {
		t.Errorf("vocab = %d, want 29", c.Vocab)
	}
	lo, hi := c.MinMaxLen()
	if lo < ds2MinLen || hi > ds2MaxLen {
		t.Errorf("length range [%d,%d] outside [%d,%d]", lo, hi, ds2MinLen, ds2MaxLen)
	}
	// Right skew (mean > median): the property that separates the
	// `frequent`/`median` baselines from the truth.
	mean, median := meanMedian(c.Lengths)
	if mean <= median {
		t.Errorf("DS2 lengths should be right-skewed: mean %.1f <= median %.1f", mean, median)
	}
}

func TestIWSLTShape(t *testing.T) {
	c := IWSLT15(1)
	if c.Size() != IWSLTSize {
		t.Errorf("size = %d, want %d", c.Size(), IWSLTSize)
	}
	if c.Vocab != 36549 {
		t.Errorf("vocab = %d, want 36549", c.Vocab)
	}
	lo, hi := c.MinMaxLen()
	if lo < gnmtMinLen || hi > gnmtMaxLen {
		t.Errorf("length range [%d,%d] outside [%d,%d]", lo, hi, gnmtMinLen, gnmtMaxLen)
	}
	// Long tail: most sentences are short.
	mean, median := meanMedian(c.Lengths)
	if mean <= median {
		t.Errorf("GNMT lengths should be long-tailed: mean %.1f <= median %.1f", mean, median)
	}
	short := 0
	for _, l := range c.Lengths {
		if l <= 40 {
			short++
		}
	}
	if frac := float64(short) / float64(c.Size()); frac < 0.5 {
		t.Errorf("only %.0f%% of sentences <= 40 words; want a short-dominated tail", frac*100)
	}
}

func meanMedian(lengths []int) (float64, float64) {
	cp := append([]int(nil), lengths...)
	sort.Ints(cp)
	var sum int
	for _, l := range cp {
		sum += l
	}
	return float64(sum) / float64(len(cp)), float64(cp[len(cp)/2])
}

func TestCorporaDeterministic(t *testing.T) {
	a := LibriSpeech100h(7)
	b := LibriSpeech100h(7)
	for i := range a.Lengths {
		if a.Lengths[i] != b.Lengths[i] {
			t.Fatalf("same seed produced different corpora at %d", i)
		}
	}
	c := LibriSpeech100h(8)
	same := true
	for i := range a.Lengths {
		if a.Lengths[i] != c.Lengths[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical corpora")
	}
}

func TestEvalCorporaSmaller(t *testing.T) {
	if LibriSpeechDev(1).Size() != LibriSpeechEval {
		t.Error("dev size")
	}
	if IWSLTTest(1).Size() != IWSLTEval {
		t.Error("test size")
	}
}

func TestSynthetic(t *testing.T) {
	c, err := Synthetic("tiny", []int{5, 10, 15}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if c.Size() != 3 || c.Vocab != 100 {
		t.Errorf("corpus = %+v", c)
	}
	// The constructor copies: mutating the input must not leak in.
	in := []int{1, 2}
	c2, err := Synthetic("copy", in, 10)
	if err != nil {
		t.Fatal(err)
	}
	in[0] = 99
	if c2.Lengths[0] != 1 {
		t.Error("Synthetic should copy its input")
	}
}

func TestSubsample(t *testing.T) {
	c := IWSLT15(1)
	sub := Subsample(c, 1000, 7)
	if sub.Size() != 1000 {
		t.Fatalf("size = %d, want 1000", sub.Size())
	}
	if sub.Vocab != c.Vocab {
		t.Error("subsample must preserve the vocabulary (key observation 6)")
	}
	// Every drawn length exists in the source range.
	lo, hi := c.MinMaxLen()
	slo, shi := sub.MinMaxLen()
	if slo < lo || shi > hi {
		t.Errorf("subsample range [%d,%d] outside source [%d,%d]", slo, shi, lo, hi)
	}
	// Deterministic per seed.
	sub2 := Subsample(c, 1000, 7)
	for i := range sub.Lengths {
		if sub.Lengths[i] != sub2.Lengths[i] {
			t.Fatal("same seed, different subsample")
		}
	}
	// n >= size returns a copy, not an alias.
	full := Subsample(c, c.Size()+10, 1)
	if full.Size() != c.Size() {
		t.Errorf("oversized n should return the full corpus")
	}
	full.Lengths[0] = -1
	if c.Lengths[0] == -1 {
		t.Error("Subsample must copy, not alias")
	}
	// The subsample's distribution shape survives: long tail keeps
	// mean > median.
	mean, median := meanMedian(sub.Lengths)
	if mean <= median {
		t.Errorf("subsample lost the long tail: mean %.1f <= median %.1f", mean, median)
	}
}

func TestSyntheticErrors(t *testing.T) {
	if _, err := Synthetic("x", nil, 10); err == nil {
		t.Error("empty corpus should error")
	}
	if _, err := Synthetic("x", []int{0}, 10); err == nil {
		t.Error("non-positive length should error")
	}
	if _, err := Synthetic("x", []int{1}, 0); err == nil {
		t.Error("non-positive vocab should error")
	}
}

func TestPlanEpochPadToMax(t *testing.T) {
	c, err := Synthetic("t", []int{1, 2, 3, 4, 5, 6, 7, 8}, 10)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanEpoch(c, 4, OrderSorted, 1)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Iterations() != 2 {
		t.Fatalf("iterations = %d, want 2", plan.Iterations())
	}
	// Sorted: batches {1,2,3,4} and {5,6,7,8}, padded to 4 and 8.
	if plan.SeqLens[0] != 4 || plan.SeqLens[1] != 8 {
		t.Errorf("seqlens = %v, want [4 8]", plan.SeqLens)
	}
}

func TestPlanEpochDropsIncompleteTail(t *testing.T) {
	c, err := Synthetic("t", []int{1, 2, 3, 4, 5}, 10)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanEpoch(c, 2, OrderSorted, 1)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Iterations() != 2 {
		t.Errorf("iterations = %d, want 2 (drop last)", plan.Iterations())
	}
}

func TestPlanEpochErrors(t *testing.T) {
	c, _ := Synthetic("t", []int{1, 2}, 10)
	if _, err := PlanEpoch(c, 0, OrderSorted, 1); err == nil {
		t.Error("zero batch should error")
	}
	if _, err := PlanEpoch(c, 3, OrderSorted, 1); err == nil {
		t.Error("corpus smaller than one batch should error")
	}
	if _, err := PlanEpoch(c, 1, Order(42), 1); err == nil {
		t.Error("unknown order should error")
	}
}

func TestOrderingsPreserveSLMultisetOverSortedBatches(t *testing.T) {
	// Sorted, bucketed and pooled all form batches over the sorted
	// corpus, so an epoch's SL multiset is order-invariant — the
	// property that lets per-epoch projections extend to full runs.
	c := LibriSpeech100h(3)
	ref, err := PlanEpoch(c, 64, OrderSorted, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, order := range []Order{OrderBucketed, OrderPooled} {
		p, err := PlanEpoch(c, 64, order, 5)
		if err != nil {
			t.Fatal(err)
		}
		if !sameMultiset(ref.SeqLens, p.SeqLens) {
			t.Errorf("%v changes the SL multiset", order)
		}
	}
}

func sameMultiset(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	ca := append([]int(nil), a...)
	cb := append([]int(nil), b...)
	sort.Ints(ca)
	sort.Ints(cb)
	for i := range ca {
		if ca[i] != cb[i] {
			return false
		}
	}
	return true
}

func TestOrderSortedIsAscending(t *testing.T) {
	c := LibriSpeech100h(3)
	p, err := PlanEpoch(c, 64, OrderSorted, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !sort.IntsAreSorted(p.SeqLens) {
		t.Error("SortaGrad first epoch should be ascending")
	}
}

func TestOrderBucketedShuffles(t *testing.T) {
	c := LibriSpeech100h(3)
	p, err := PlanEpoch(c, 64, OrderBucketed, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sort.IntsAreSorted(p.SeqLens) {
		t.Error("bucketed epoch should not execute in sorted order")
	}
}

func TestOrderPooledKeepsNarrowWindows(t *testing.T) {
	// A contiguous window of pooled iterations covers a narrow SL band
	// relative to the whole range — the property that breaks the
	// `prior` baseline on GNMT (Section VI-E of the paper).
	c := IWSLT15(3)
	p, err := PlanEpoch(c, 64, OrderPooled, 1)
	if err != nil {
		t.Fatal(err)
	}
	loAll, hiAll := minMax(p.SeqLens)
	fullSpan := hiAll - loAll

	window := p.SeqLens[100:116] // one pool
	lo, hi := minMax(window)
	if span := hi - lo; span*4 > fullSpan {
		t.Errorf("one pool spans %d of %d total; pooled windows should be narrow", span, fullSpan)
	}
}

func minMax(xs []int) (int, int) {
	lo, hi := xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

func TestSchedules(t *testing.T) {
	ds2 := DS2Schedule()
	if ds2.FirstEpoch != OrderSorted || ds2.LaterEpochs != OrderBucketed {
		t.Errorf("DS2Schedule = %+v (SortaGrad: sorted then bucketed)", ds2)
	}
	gnmt := GNMTSchedule()
	if gnmt.FirstEpoch != OrderPooled || gnmt.LaterEpochs != OrderPooled {
		t.Errorf("GNMTSchedule = %+v", gnmt)
	}
}

func TestPlanTraining(t *testing.T) {
	c := LibriSpeech100h(3)
	plans, err := PlanTraining(c, 64, 3, DS2Schedule(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 3 {
		t.Fatalf("plans = %d, want 3", len(plans))
	}
	if !sort.IntsAreSorted(plans[0].SeqLens) {
		t.Error("epoch 0 should be sorted")
	}
	if sort.IntsAreSorted(plans[1].SeqLens) {
		t.Error("epoch 1 should be shuffled (bucketed)")
	}
	if _, err := PlanTraining(c, 64, 0, DS2Schedule(), 1); err == nil {
		t.Error("zero epochs should error")
	}
}

func TestOrderString(t *testing.T) {
	for o, want := range map[Order]string{
		OrderShuffled: "shuffled",
		OrderSorted:   "sorted",
		OrderBucketed: "bucketed",
		OrderPooled:   "pooled",
		Order(9):      "order(9)",
	} {
		if got := o.String(); got != want {
			t.Errorf("Order(%d).String() = %q, want %q", int(o), got, want)
		}
	}
}

func TestQuickPlanEpochSeqLenIsBatchMax(t *testing.T) {
	// Property: every iteration's padded SL is at least the corpus
	// minimum and at most the corpus maximum, and iteration count is
	// size/batch.
	f := func(raw []uint8, b8 uint8) bool {
		if len(raw) < 2 {
			return true
		}
		lengths := make([]int, len(raw))
		for i, v := range raw {
			lengths[i] = int(v) + 1
		}
		c, err := Synthetic("q", lengths, 10)
		if err != nil {
			return false
		}
		batch := int(b8)%len(lengths) + 1
		for _, order := range []Order{OrderShuffled, OrderSorted, OrderBucketed, OrderPooled} {
			p, err := PlanEpoch(c, batch, order, 1)
			if err != nil {
				return false
			}
			if p.Iterations() != len(lengths)/batch {
				return false
			}
			lo, hi := c.MinMaxLen()
			for _, sl := range p.SeqLens {
				if sl < lo || sl > hi {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestQuickPlanDeterministicPerSeed(t *testing.T) {
	c := IWSLT15(2)
	f := func(seed int64) bool {
		p1, err1 := PlanEpoch(c, 64, OrderBucketed, seed)
		p2, err2 := PlanEpoch(c, 64, OrderBucketed, seed)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range p1.SeqLens {
			if p1.SeqLens[i] != p2.SeqLens[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Error(err)
	}
}
