package report

import (
	"fmt"
	"strings"
	"time"
)

// Pct formats a percentage with two decimals and a % sign.
func Pct(v float64) string { return fmt.Sprintf("%.2f%%", v) }

// PP formats a percentage-point delta.
func PP(v float64) string { return fmt.Sprintf("%.2fpp", v) }

// US formats a microsecond duration human-readably, scaling to the
// natural unit (µs, ms, s, min, h).
func US(us float64) string {
	d := time.Duration(us * float64(time.Microsecond))
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", us)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", us/1e3)
	case d < time.Minute:
		return fmt.Sprintf("%.2fs", us/1e6)
	case d < time.Hour:
		return fmt.Sprintf("%.1fmin", us/6e7)
	default:
		return fmt.Sprintf("%.2fh", us/3.6e9)
	}
}

// Count formats an integer with thousands separators.
func Count(n int) string {
	s := fmt.Sprintf("%d", n)
	neg := strings.HasPrefix(s, "-")
	if neg {
		s = s[1:]
	}
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	parts = append([]string{s}, parts...)
	out := strings.Join(parts, ",")
	if neg {
		out = "-" + out
	}
	return out
}

// Section renders a named section heading used between experiment blocks.
func Section(name string) string {
	return fmt.Sprintf("\n== %s ==\n", name)
}

// Bar renders a proportional ASCII bar of at most width chars.
func Bar(value, max float64, width int) string {
	if max <= 0 || value <= 0 || width <= 0 {
		return ""
	}
	n := int(value / max * float64(width))
	if n > width {
		n = width
	}
	return strings.Repeat("#", n)
}
