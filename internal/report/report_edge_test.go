package report

import (
	"strings"
	"testing"
)

// TestFmtFloatBranches drives every branch of the float formatter,
// including the negative mirrors the happy-path tests skip.
func TestFmtFloatBranches(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{0.5, "0.50"},              // < 100: two decimals
		{-0.5, "-0.50"},            // negative small
		{99.994, "99.99"},          // just under the 100 cut
		{100, "100.0"},             // >= 100: one decimal
		{-123.456, "-123.5"},       // negative mid-range
		{9999999.4, "9999999.4"},   // just under 1e7 stays fixed-point
		{1e7, "1e+07"},             // >= 1e7 switches to scientific
		{-1e7, "-1e+07"},           // negative scientific
		{0.00099, "0.00099"},       // < 1e-3 switches to scientific
		{-0.00012345, "-0.000123"}, // negative tiny
		{0.001, "0.00"},            // exactly 1e-3 stays fixed-point
	}
	for _, tc := range cases {
		if got := fmtFloat(tc.in); got != tc.want {
			t.Errorf("fmtFloat(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestAddRowMixedTypes covers AddRow's three formatting arms: string
// pass-through, float formatting, and the %v default.
func TestAddRowMixedTypes(t *testing.T) {
	tbl := NewTable("", "a", "b", "c", "d")
	tbl.AddRow("s", 1.25, 42, true)
	csv := tbl.CSV()
	want := "a,b,c,d\ns,1.25,42,true\n"
	if csv != want {
		t.Errorf("CSV = %q, want %q", csv, want)
	}
}

// TestAlignBounds: out-of-range column indexes must be ignored, not
// panic, and Align must affect exactly the requested column.
func TestAlignBounds(t *testing.T) {
	tbl := NewTable("", "left", "right").Align(-1, AlignRight).Align(5, AlignRight).Align(1, AlignRight)
	tbl.AddStringRow("x", "1")
	lines := strings.Split(strings.TrimRight(tbl.String(), "\n"), "\n")
	row := lines[len(lines)-1]
	if !strings.HasSuffix(row, " 1") {
		t.Errorf("column 1 not right-aligned: %q", row)
	}
	if !strings.HasPrefix(row, "x") {
		t.Errorf("column 0 must stay left-aligned: %q", row)
	}
}

// TestRowsShorterAndLongerThanHeader: the renderer pads missing cells
// and drops extras instead of panicking.
func TestRowsShorterAndLongerThanHeader(t *testing.T) {
	tbl := NewTable("", "a", "b", "c")
	tbl.AddStringRow("only")
	tbl.AddStringRow("1", "2", "3", "surplus")
	out := tbl.String()
	if strings.Contains(out, "surplus") {
		t.Errorf("extra cells must be dropped: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want header+rule+2 rows", len(lines))
	}
}

// TestLastLeftColumnHasNoTrailingPadding: left-aligned final columns
// must not pad the line end (diff noise in goldens otherwise).
func TestLastLeftColumnHasNoTrailingPadding(t *testing.T) {
	tbl := NewTable("", "name", "comment")
	tbl.AddStringRow("a", "short")
	tbl.AddStringRow("b", "a much longer comment")
	for i, line := range strings.Split(strings.TrimRight(tbl.String(), "\n"), "\n") {
		if line != strings.TrimRight(line, " ") {
			t.Errorf("line %d has trailing spaces: %q", i, line)
		}
	}
}

// TestCSVNewlineQuoting: cells with embedded newlines are quoted per
// RFC 4180.
func TestCSVNewlineQuoting(t *testing.T) {
	tbl := NewTable("", "a")
	tbl.AddStringRow("line1\nline2")
	if got, want := tbl.CSV(), "a\n\"line1\nline2\"\n"; got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

// TestUSBoundaries pins the unit switch points of the duration
// formatter.
func TestUSBoundaries(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0.0µs"},
		{999.9, "999.9µs"},
		{1000, "1.00ms"},      // first ms value
		{999999, "1000.00ms"}, // just under a second
		{1e6, "1.00s"},
		{59.99e6, "59.99s"},
		{6e7, "1.0min"},
		{3599e6, "60.0min"}, // just under an hour
		{3.6e9, "1.00h"},
	}
	for _, tc := range cases {
		if got := US(tc.in); got != tc.want {
			t.Errorf("US(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestCountEdges pins small negatives and exact group boundaries.
func TestCountEdges(t *testing.T) {
	cases := map[int]string{
		-1:       "-1",
		-999:     "-999",
		-1000:    "-1,000",
		100000:   "100,000",
		1000000:  "1,000,000",
		-1000000: "-1,000,000",
	}
	for in, want := range cases {
		if got := Count(in); got != want {
			t.Errorf("Count(%d) = %q, want %q", in, got, want)
		}
	}
}

// TestBarDegenerateWidths: non-positive width or max never emits.
func TestBarDegenerateWidths(t *testing.T) {
	if Bar(5, 10, 0) != "" || Bar(5, 10, -3) != "" || Bar(5, -1, 10) != "" || Bar(-5, 10, 10) != "" {
		t.Error("degenerate Bar inputs must render empty")
	}
	// Rounding truncates: 1/3 of width 10 is 3 full cells.
	if got := Bar(1, 3, 10); got != "###" {
		t.Errorf("Bar(1,3,10) = %q, want ###", got)
	}
}
