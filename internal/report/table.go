// Package report renders experiment results as aligned text tables and
// CSV, the two formats cmd/experiments emits: tables for terminal
// reading and EXPERIMENTS.md, CSV for external plotting of the figures.
package report

import (
	"fmt"
	"strings"
)

// Align controls column alignment in a text table.
type Align int

const (
	// AlignLeft pads on the right.
	AlignLeft Align = iota
	// AlignRight pads on the left (numbers).
	AlignRight
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	title   string
	headers []string
	aligns  []Align
	rows    [][]string
}

// NewTable starts a table with the given column headers. Columns default
// to left alignment; use Align to change specific columns.
func NewTable(title string, headers ...string) *Table {
	t := &Table{title: title, headers: headers, aligns: make([]Align, len(headers))}
	return t
}

// Align sets the alignment of column i (0-based) and returns the table
// for chaining.
func (t *Table) Align(i int, a Align) *Table {
	if i >= 0 && i < len(t.aligns) {
		t.aligns[i] = a
	}
	return t
}

// AlignNumeric right-aligns every column except the first, the common
// layout for a label column followed by measurements.
func (t *Table) AlignNumeric() *Table {
	for i := 1; i < len(t.aligns); i++ {
		t.aligns[i] = AlignRight
	}
	return t
}

// AddRow appends a row. Cells are stringified with %v; float64 cells are
// formatted with 4 significant digits — use Cell for custom formats.
func (t *Table) AddRow(cells ...interface{}) *Table {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmtFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
	return t
}

// AddStringRow appends a pre-formatted row.
func (t *Table) AddStringRow(cells ...string) *Table {
	t.rows = append(t.rows, cells)
	return t
}

// fmtFloat renders a float compactly: fixed-point with enough precision
// for percent errors (two decimals) but switching to scientific form for
// very large or tiny magnitudes.
func fmtFloat(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case av == 0:
		return "0"
	case av >= 1e7 || av < 1e-3:
		return fmt.Sprintf("%.3g", v)
	case av >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// Rows returns the number of data rows added so far.
func (t *Table) Rows() int { return len(t.rows) }

// String renders the table with a title line, a header row, a rule, and
// aligned data rows.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}

	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "%s\n", t.title)
	}
	writeRow := func(cells []string) {
		for i := range t.headers {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			pad := widths[i] - len(c)
			if t.aligns[i] == AlignRight {
				b.WriteString(strings.Repeat(" ", pad))
				b.WriteString(c)
			} else {
				b.WriteString(c)
				if i != len(t.headers)-1 {
					b.WriteString(strings.Repeat(" ", pad))
				}
			}
		}
		b.WriteString("\n")
	}
	writeRow(t.headers)
	total := 0
	for i, w := range widths {
		if i > 0 {
			total += 2
		}
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteString("\n")
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as RFC-4180 CSV (header row first, no title).
func (t *Table) CSV() string {
	var b strings.Builder
	writeCSVRow(&b, t.headers)
	for _, row := range t.rows {
		writeCSVRow(&b, row)
	}
	return b.String()
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			b.WriteString(",")
		}
		if strings.ContainsAny(c, ",\"\n") {
			b.WriteString(`"` + strings.ReplaceAll(c, `"`, `""`) + `"`)
		} else {
			b.WriteString(c)
		}
	}
	b.WriteString("\n")
}
