package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tbl := NewTable("Title", "name", "value").AlignNumeric()
	tbl.AddRow("alpha", 1.5)
	tbl.AddRow("b", 100)
	s := tbl.String()
	if !strings.HasPrefix(s, "Title\n") {
		t.Errorf("missing title: %q", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d, want title+header+rule+2 rows, got %q", len(lines), s)
	}
	// Header then rule then rows.
	if !strings.Contains(lines[1], "name") || !strings.Contains(lines[1], "value") {
		t.Errorf("header line: %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "---") {
		t.Errorf("rule line: %q", lines[2])
	}
	// Right-aligned numeric column: the value appears at line end.
	if !strings.HasSuffix(lines[3], "1.50") {
		t.Errorf("numeric column should right-align: %q", lines[3])
	}
}

func TestTableRowsCount(t *testing.T) {
	tbl := NewTable("", "a")
	if tbl.Rows() != 0 {
		t.Error("fresh table has rows")
	}
	tbl.AddStringRow("x")
	tbl.AddStringRow("y")
	if tbl.Rows() != 2 {
		t.Errorf("Rows = %d", tbl.Rows())
	}
}

func TestTableNoTitle(t *testing.T) {
	s := NewTable("", "h").AddStringRow("v").String()
	if strings.HasPrefix(s, "\n") {
		t.Errorf("empty title should not emit a blank line: %q", s)
	}
}

func TestTableCSV(t *testing.T) {
	tbl := NewTable("ignored", "a", "b")
	tbl.AddStringRow("1", "2")
	tbl.AddStringRow(`has,comma`, `has"quote`)
	csv := tbl.CSV()
	want := "a,b\n1,2\n\"has,comma\",\"has\"\"quote\"\n"
	if csv != want {
		t.Errorf("CSV = %q, want %q", csv, want)
	}
}

func TestFmtFloat(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		1.5:     "1.50",
		123.456: "123.5",
		1e9:     "1e+09",
		1e-5:    "1e-05",
	}
	for in, want := range cases {
		if got := fmtFloat(in); got != want {
			t.Errorf("fmtFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestPctPP(t *testing.T) {
	if got := Pct(12.345); got != "12.35%" {
		t.Errorf("Pct = %q", got)
	}
	if got := PP(0.5); got != "0.50pp" {
		t.Errorf("PP = %q", got)
	}
}

func TestUS(t *testing.T) {
	cases := map[float64]string{
		500:   "500.0µs",
		5e3:   "5.00ms",
		5e6:   "5.00s",
		9e7:   "1.5min",
		7.2e9: "2.00h",
	}
	for in, want := range cases {
		if got := US(in); got != want {
			t.Errorf("US(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestCount(t *testing.T) {
	cases := map[int]string{
		0:       "0",
		999:     "999",
		1000:    "1,000",
		1234567: "1,234,567",
		-1234:   "-1,234",
	}
	for in, want := range cases {
		if got := Count(in); got != want {
			t.Errorf("Count(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestBar(t *testing.T) {
	if got := Bar(5, 10, 10); got != "#####" {
		t.Errorf("Bar = %q", got)
	}
	if got := Bar(20, 10, 10); got != "##########" {
		t.Errorf("Bar should clamp: %q", got)
	}
	if Bar(0, 10, 10) != "" || Bar(5, 0, 10) != "" {
		t.Error("degenerate bars should be empty")
	}
}

func TestSection(t *testing.T) {
	if got := Section("X"); !strings.Contains(got, "== X ==") {
		t.Errorf("Section = %q", got)
	}
}
