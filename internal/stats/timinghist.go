package stats

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// TimingHistogram is the concurrency-safe, float-domain sibling of
// Histogram: a fixed set of upper-bound edges plus an implicit
// overflow bucket, with lock-free observation. Histogram bins a
// finished sample set once (the paper's Fig. 7 path); TimingHistogram
// accumulates observations while they happen — request latencies on
// the serving daemon's hot path — and is snapshotted by the /metrics
// endpoint in Prometheus histogram form (cumulative "le" buckets).
//
// Observe is safe for concurrent use and never allocates. Snapshot is
// safe to call concurrently with Observe; it reads each counter
// atomically but not the set of counters as one atomic unit, so a
// snapshot taken mid-burst may be off by the observations that landed
// while it was reading — the standard (and harmless) metrics-scrape
// semantics.
type TimingHistogram struct {
	edges   []float64
	counts  []atomic.Int64 // len(edges)+1; the last is the overflow bucket
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running sum
}

// NewTimingHistogram builds a histogram over the given bucket upper
// bounds, which must be finite and strictly increasing. Bucket i
// counts observations v with edges[i-1] < v <= edges[i]; everything
// above the last edge lands in the overflow bucket (Prometheus's
// +Inf).
func NewTimingHistogram(edges []float64) (*TimingHistogram, error) {
	if len(edges) == 0 {
		return nil, fmt.Errorf("stats: timing histogram needs at least one bucket edge")
	}
	for i, e := range edges {
		if math.IsNaN(e) || math.IsInf(e, 0) {
			return nil, fmt.Errorf("stats: timing histogram edge %d is not finite: %v", i, e)
		}
		if i > 0 && e <= edges[i-1] {
			return nil, fmt.Errorf("stats: timing histogram edges must be strictly increasing, got %v after %v", e, edges[i-1])
		}
	}
	return &TimingHistogram{
		edges:  append([]float64(nil), edges...),
		counts: make([]atomic.Int64, len(edges)+1),
	}, nil
}

// Observe records one sample. NaN clamps to the overflow bucket (a
// non-finite duration is an upstream bug, but a metrics primitive must
// never panic on the hot path); values at or below the first edge land
// in the first bucket.
func (h *TimingHistogram) Observe(v float64) {
	i := len(h.edges)
	if !math.IsNaN(v) {
		// First edge >= v: the Prometheus "le" bucket.
		i = sort.SearchFloat64s(h.edges, v)
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// TimingSnapshot is one point-in-time read of a TimingHistogram.
type TimingSnapshot struct {
	// Edges are the bucket upper bounds, as configured.
	Edges []float64
	// Counts holds per-bucket (non-cumulative) observation counts;
	// len(Edges)+1 entries, the last being the overflow bucket.
	Counts []int64
	// Count is the total number of observations.
	Count int64
	// Sum is the running sum of all observed values.
	Sum float64
}

// Cumulative returns the running totals Prometheus buckets carry: the
// i-th entry counts observations <= Edges[i], and the final entry (the
// +Inf bucket) equals Count.
func (s TimingSnapshot) Cumulative() []int64 {
	out := make([]int64, len(s.Counts))
	var run int64
	for i, c := range s.Counts {
		run += c
		out[i] = run
	}
	return out
}

// Snapshot reads the histogram's current state.
func (h *TimingHistogram) Snapshot() TimingSnapshot {
	s := TimingSnapshot{
		Edges:  append([]float64(nil), h.edges...),
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}
