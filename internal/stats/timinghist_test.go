package stats

import (
	"math"
	"sync"
	"testing"
)

func TestTimingHistogramEdgesValidated(t *testing.T) {
	cases := []struct {
		name  string
		edges []float64
	}{
		{"empty", nil},
		{"non-increasing", []float64{1, 1}},
		{"decreasing", []float64{2, 1}},
		{"nan", []float64{1, math.NaN()}},
		{"inf", []float64{1, math.Inf(1)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewTimingHistogram(tc.edges); err == nil {
				t.Fatalf("NewTimingHistogram(%v) accepted invalid edges", tc.edges)
			}
		})
	}
}

func TestTimingHistogramBucketAssignment(t *testing.T) {
	h, err := NewTimingHistogram([]float64{0.01, 0.1, 1})
	if err != nil {
		t.Fatal(err)
	}
	// One observation per region: below first edge, exactly on an edge
	// (le-semantics: belongs to that edge's bucket), interior, above the
	// last edge, and NaN (clamped to overflow).
	for _, v := range []float64{0.001, 0.01, 0.5, 7, math.NaN()} {
		h.Observe(v)
	}
	s := h.Snapshot()
	wantCounts := []int64{2, 0, 1, 2}
	for i, w := range wantCounts {
		if s.Counts[i] != w {
			t.Errorf("Counts[%d] = %d, want %d (full: %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 5 {
		t.Errorf("Count = %d, want 5", s.Count)
	}
	cum := s.Cumulative()
	if got, want := cum[len(cum)-1], s.Count; got != want {
		t.Errorf("+Inf cumulative bucket = %d, want Count %d", got, want)
	}
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			t.Errorf("cumulative counts not monotone at %d: %v", i, cum)
		}
	}
}

func TestTimingHistogramSum(t *testing.T) {
	h, err := NewTimingHistogram([]float64{1})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{0.25, 0.5, 2} {
		h.Observe(v)
	}
	if s := h.Snapshot(); s.Sum != 2.75 {
		t.Errorf("Sum = %v, want 2.75", s.Sum)
	}
}

// TestTimingHistogramConcurrent hammers Observe from many goroutines
// and checks conservation: every observation is counted exactly once,
// in exactly one bucket, and the sum matches. Run under -race this
// also proves the lock-free paths are clean.
func TestTimingHistogramConcurrent(t *testing.T) {
	h, err := NewTimingHistogram([]float64{0.001, 0.01, 0.1, 1, 10})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, perG = 8, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(float64(g*perG+i) * 1e-4)
			}
		}(g)
	}
	wg.Wait()

	s := h.Snapshot()
	if want := int64(goroutines * perG); s.Count != want {
		t.Fatalf("Count = %d, want %d", s.Count, want)
	}
	var bucketTotal int64
	for _, c := range s.Counts {
		bucketTotal += c
	}
	if bucketTotal != s.Count {
		t.Fatalf("bucket total %d != Count %d", bucketTotal, s.Count)
	}
	n := goroutines * perG
	wantSum := float64(n) * float64(n-1) / 2 * 1e-4
	if math.Abs(s.Sum-wantSum) > wantSum*1e-9 {
		t.Fatalf("Sum = %v, want ~%v", s.Sum, wantSum)
	}
}
