package stats

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewHistogramBasic(t *testing.T) {
	h, err := NewHistogram([]int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if h.Lo != 1 || h.Hi != 10 {
		t.Errorf("bounds = [%d,%d], want [1,10]", h.Lo, h.Hi)
	}
	if got := h.Total(); got != 10 {
		t.Errorf("Total = %d, want 10", got)
	}
	for i, c := range h.Counts {
		if c != 2 {
			t.Errorf("bin %d count = %d, want 2", i, c)
		}
	}
}

func TestNewHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(nil, 5); err != ErrEmpty {
		t.Errorf("empty error = %v, want ErrEmpty", err)
	}
	if _, err := NewHistogram([]int{1}, 0); err == nil {
		t.Error("zero bins should error")
	}
}

func TestHistogramSingleValue(t *testing.T) {
	h, err := NewHistogram([]int{7, 7, 7}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if h.Total() != 3 {
		t.Errorf("Total = %d, want 3", h.Total())
	}
	if h.Counts[0] != 3 {
		t.Errorf("all samples should land in bin 0, got %v", h.Counts)
	}
}

func TestHistogramBinOfClamps(t *testing.T) {
	h, err := NewHistogram([]int{10, 20, 30}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.BinOf(-100); got != 0 {
		t.Errorf("BinOf(-100) = %d, want 0", got)
	}
	if got := h.BinOf(1000); got != len(h.Counts)-1 {
		t.Errorf("BinOf(1000) = %d, want last bin", got)
	}
}

func TestHistogramString(t *testing.T) {
	h, err := NewHistogram([]int{1, 1, 2, 9}, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := h.String()
	if !strings.Contains(s, "#") {
		t.Errorf("String() should contain bars: %q", s)
	}
	if lines := strings.Count(s, "\n"); lines != 2 {
		t.Errorf("String() has %d lines, want 2", lines)
	}
}

func TestQuickHistogramConservesSamples(t *testing.T) {
	f := func(raw []int16, kRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]int, len(raw))
		for i, v := range raw {
			samples[i] = int(v)
		}
		k := int(kRaw)%20 + 1
		h, err := NewHistogram(samples, k)
		if err != nil {
			return false
		}
		return h.Total() == len(samples)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickHistogramBinOfInRange(t *testing.T) {
	f := func(raw []int16, probe int16, kRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]int, len(raw))
		for i, v := range raw {
			samples[i] = int(v)
		}
		k := int(kRaw)%20 + 1
		h, err := NewHistogram(samples, k)
		if err != nil {
			return false
		}
		b := h.BinOf(int(probe))
		return b >= 0 && b < len(h.Counts)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestHistogramDegenerateSpan is the regression test for the bin/edge
// inconsistency: with samples {1,2} and k=4 the old construction
// produced duplicate edges ([1,1,2,2,3]) whose binary search placed 1
// in bin 1 while BinOf's Lo fast path returned bin 0. The bin count is
// now clamped to the integer span, so edges stay strictly increasing
// and both lookup paths agree.
func TestHistogramDegenerateSpan(t *testing.T) {
	h, err := NewHistogram([]int{1, 2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Counts) != 2 {
		t.Fatalf("span 2 with k=4 should clamp to 2 bins, got %d", len(h.Counts))
	}
	if got := h.BinOf(1); got != 0 {
		t.Errorf("BinOf(1) = %d, want 0", got)
	}
	if got := h.BinOf(2); got != 1 {
		t.Errorf("BinOf(2) = %d, want 1", got)
	}
	if h.Counts[0] != 1 || h.Counts[1] != 1 {
		t.Errorf("Counts = %v, want [1 1]", h.Counts)
	}
	for i := 1; i < len(h.Edges); i++ {
		if h.Edges[i] <= h.Edges[i-1] {
			t.Errorf("Edges not strictly increasing: %v", h.Edges)
		}
	}
}

func TestHistogramSingleValueSpan(t *testing.T) {
	h, err := NewHistogram([]int{7, 7, 7}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Counts) != 1 {
		t.Fatalf("span 1 should clamp to 1 bin, got %d", len(h.Counts))
	}
	if h.Counts[0] != 3 {
		t.Errorf("Counts = %v, want [3]", h.Counts)
	}
	if h.Edges[0] != 7 || h.Edges[1] != 8 {
		t.Errorf("Edges = %v, want [7 8]", h.Edges)
	}
}

// edgeBinOf assigns v to a bin purely from the edge list: the bin i
// with Edges[i] <= v < Edges[i+1], clamped to the ends. It is the
// reference BinOf must agree with.
func edgeBinOf(h *Histogram, v int) int {
	for i := 0; i < len(h.Counts); i++ {
		if v < h.Edges[i+1] {
			return i
		}
	}
	return len(h.Counts) - 1
}

// TestQuickBinOfAgreesWithEdges property-checks that BinOf and the
// edge list define the same binning for every sample of random inputs,
// including degenerate spans (narrow int16 ranges with k up to 20).
func TestQuickBinOfAgreesWithEdges(t *testing.T) {
	f := func(raw []int16, kRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]int, len(raw))
		for i, v := range raw {
			samples[i] = int(v)
		}
		k := int(kRaw)%20 + 1
		h, err := NewHistogram(samples, k)
		if err != nil {
			return false
		}
		if len(h.Counts) > k {
			return false
		}
		for i := 1; i < len(h.Edges); i++ {
			if h.Edges[i] <= h.Edges[i-1] {
				return false
			}
		}
		for _, s := range samples {
			if h.BinOf(s) != edgeBinOf(h, s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestBinOfAgreesWithEdgesNarrow drives the same agreement over every
// value of small dense domains, where the old construction failed.
func TestBinOfAgreesWithEdgesNarrow(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		lo := rng.Intn(50)
		span := 1 + rng.Intn(6)
		k := 1 + rng.Intn(12)
		var samples []int
		for v := lo; v < lo+span; v++ {
			samples = append(samples, v)
		}
		h, err := NewHistogram(samples, k)
		if err != nil {
			t.Fatal(err)
		}
		for v := lo; v < lo+span; v++ {
			if got, want := h.BinOf(v), edgeBinOf(h, v); got != want {
				t.Fatalf("lo=%d span=%d k=%d: BinOf(%d)=%d, edges say %d (edges %v)",
					lo, span, k, v, got, want, h.Edges)
			}
		}
	}
}

func TestMode(t *testing.T) {
	v, c, err := Mode([]int{3, 1, 3, 2, 1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if v != 3 || c != 3 {
		t.Errorf("Mode = (%d,%d), want (3,3)", v, c)
	}
	// Ties break toward the smaller value.
	v, c, err = Mode([]int{5, 2, 5, 2})
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 || c != 2 {
		t.Errorf("Mode tie = (%d,%d), want (2,2)", v, c)
	}
	if _, _, err := Mode(nil); err != ErrEmpty {
		t.Errorf("empty error = %v, want ErrEmpty", err)
	}
}

func TestMedianInt(t *testing.T) {
	got, err := MedianInt([]int{9, 1, 5})
	if err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Errorf("MedianInt = %d, want 5", got)
	}
	if _, err := MedianInt(nil); err != ErrEmpty {
		t.Errorf("empty error = %v, want ErrEmpty", err)
	}
}

func TestUniqueInts(t *testing.T) {
	got := UniqueInts([]int{3, 1, 3, 2, 1})
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("UniqueInts = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("UniqueInts[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestCountsByValue(t *testing.T) {
	got := CountsByValue([]int{1, 1, 2})
	if got[1] != 2 || got[2] != 1 {
		t.Errorf("CountsByValue = %v", got)
	}
}

func TestFitExactLine(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3*x + 7
	}
	fit, err := Fit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Slope, 3, 1e-9) || !almostEqual(fit.Intercept, 7, 1e-9) {
		t.Errorf("fit = %+v, want slope 3 intercept 7", fit)
	}
	if !almostEqual(fit.R2, 1, 1e-12) {
		t.Errorf("R2 = %v, want 1", fit.R2)
	}
	if got := fit.Predict(10); !almostEqual(got, 37, 1e-9) {
		t.Errorf("Predict(10) = %v, want 37", got)
	}
}

func TestFitNoisyLineR2(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var xs, ys []float64
	for i := 0; i < 200; i++ {
		x := float64(i)
		xs = append(xs, x)
		ys = append(ys, 2*x+5+rng.NormFloat64()*0.5)
	}
	fit, err := Fit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if fit.R2 < 0.999 {
		t.Errorf("R2 = %v, want > 0.999 for low-noise line", fit.R2)
	}
	if !almostEqual(fit.Slope, 2, 0.01) {
		t.Errorf("slope = %v, want ~2", fit.Slope)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit([]float64{1}, []float64{1, 2}); err != ErrMismatch {
		t.Errorf("mismatch error = %v, want ErrMismatch", err)
	}
	if _, err := Fit([]float64{1}, []float64{1}); err == nil {
		t.Error("single point should error")
	}
	if _, err := Fit([]float64{2, 2}, []float64{1, 3}); err == nil {
		t.Error("constant x should error")
	}
}

func TestFitConstantY(t *testing.T) {
	fit, err := Fit([]float64{1, 2, 3}, []float64{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Slope, 0, 1e-12) || !almostEqual(fit.Intercept, 5, 1e-12) {
		t.Errorf("fit = %+v, want flat line at 5", fit)
	}
	if fit.R2 != 1 {
		t.Errorf("R2 = %v, want 1 for perfectly explained constant", fit.R2)
	}
}
