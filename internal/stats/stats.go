// Package stats provides the small set of descriptive statistics the
// SeqPoint methodology and its evaluation need: means (plain, weighted,
// geometric), medians, percent errors, histograms, and least-squares
// linear fits (used to verify the near-linear runtime-vs-sequence-length
// relationship the paper's Fig. 9 shows).
//
// All functions are pure and operate on float64 slices; callers own any
// copying. Functions that cannot produce a meaningful result for empty
// input return an error rather than a silent zero so that experiment
// harnesses fail loudly.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that need at least one sample.
var ErrEmpty = errors.New("stats: empty input")

// ErrMismatch is returned when paired inputs have different lengths.
var ErrMismatch = errors.New("stats: input length mismatch")

// ErrNonFinite is returned by the percentile functions when a sample is
// NaN or infinite. Go's sort is not a total order over NaN, so ranking
// such inputs would be order-unstable — a silent determinism hazard —
// and a non-finite latency is always an upstream bug worth surfacing.
var ErrNonFinite = errors.New("stats: non-finite sample")

// Sum returns the sum of xs. An empty slice sums to zero.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	return Sum(xs) / float64(len(xs)), nil
}

// WeightedMean returns sum(w_i * x_i) / sum(w_i). This is Equation 1 of
// the paper normalized by total weight, used for projecting ratio
// statistics (throughput, IPC).
func WeightedMean(xs, ws []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if len(xs) != len(ws) {
		return 0, ErrMismatch
	}
	var num, den float64
	for i, x := range xs {
		num += ws[i] * x
		den += ws[i]
	}
	if den == 0 {
		return 0, errors.New("stats: zero total weight")
	}
	return num / den, nil
}

// WeightedSum returns sum(w_i * x_i): Equation 1 of the paper, used for
// projecting additive statistics such as total training time.
func WeightedSum(xs, ws []float64) (float64, error) {
	if len(xs) != len(ws) {
		return 0, ErrMismatch
	}
	var s float64
	for i, x := range xs {
		s += ws[i] * x
	}
	return s, nil
}

// Geomean returns the geometric mean of xs. All samples must be
// positive; the paper reports projection errors as geomeans across
// hardware configurations.
func Geomean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return 0, errors.New("stats: geomean requires positive samples")
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs))), nil
}

// Median returns the median of xs without modifying the input.
func Median(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2], nil
	}
	return (cp[n/2-1] + cp[n/2]) / 2, nil
}

// Percentile returns the p-th percentile of xs (0 <= p <= 100) by the
// nearest-rank method: the smallest sample such that at least p percent
// of the samples are less than or equal to it. p = 0 returns the
// minimum, p = 100 the maximum, and a single sample is every
// percentile of itself. The input is not modified. Serving-latency
// tails (p50/p95/p99) are reported through this.
func Percentile(xs []float64, p float64) (float64, error) {
	out, err := Percentiles(xs, p)
	if err != nil {
		return 0, err
	}
	return out[0], nil
}

// Percentiles returns the nearest-rank percentile for each p, sorting
// one copy of the input once — the bulk form tail roll-ups (p50, p95,
// p99 over the same samples) should use.
func Percentiles(xs []float64, ps ...float64) ([]float64, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	cp := append([]float64(nil), xs...)
	return PercentilesInPlace(cp, ps...)
}

// PercentilesInPlace is Percentiles without the defensive copy: it
// sorts xs in place and reads every rank from that one scratch slice.
// Callers that already own a throwaway sample buffer (the serving
// summaries build per-request latency slices only to rank them) use
// this to avoid duplicating million-element slices on the hot path.
// Non-finite samples are rejected with ErrNonFinite before sorting:
// sort.Float64s over NaN is not a total order, so its output — and
// every rank read from it — would vary run to run.
func PercentilesInPlace(xs []float64, ps ...float64) ([]float64, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	for i, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return nil, fmt.Errorf("%w: xs[%d] = %v", ErrNonFinite, i, x)
		}
	}
	sort.Float64s(xs)
	out := make([]float64, len(ps))
	for i, p := range ps {
		if p < 0 || p > 100 || math.IsNaN(p) {
			return nil, fmt.Errorf("stats: percentile %v outside [0, 100]", p)
		}
		out[i] = xs[nearestRank(len(xs), p)-1]
	}
	return out, nil
}

// nearestRank maps a percentile onto a 1-based rank in a sorted
// n-sample list. p*n is computed before dividing (p*n/100 is exact
// whenever p*n is, unlike p/100 which already rounds — e.g. 55/100),
// and representation noise is shaved before the ceil so a rank that is
// an integer up to float error stays that integer.
func nearestRank(n int, p float64) int {
	rank := int(math.Ceil(p*float64(n)/100 - 1e-9))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return rank
}

// Variance returns the population variance of xs.
func Variance(xs []float64) (float64, error) {
	m, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)), nil
}

// Stddev returns the population standard deviation of xs.
func Stddev(xs []float64) (float64, error) {
	v, err := Variance(xs)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// PercentError returns |predicted-actual| / actual * 100. The actual
// value must be nonzero.
func PercentError(predicted, actual float64) (float64, error) {
	if actual == 0 {
		return 0, errors.New("stats: percent error undefined for zero actual")
	}
	return math.Abs(predicted-actual) / math.Abs(actual) * 100, nil
}

// MinMax returns the smallest and largest values in xs.
func MinMax(xs []float64) (min, max float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max, nil
}

// Normalize returns xs scaled so its maximum is 1. Used when plotting
// normalized per-iteration statistics (Fig. 3, Fig. 4 style).
func Normalize(xs []float64) ([]float64, error) {
	_, max, err := MinMax(xs)
	if err != nil {
		return nil, err
	}
	if max == 0 {
		return nil, errors.New("stats: cannot normalize all-zero input")
	}
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x / max
	}
	return out, nil
}

// Spread returns (max-min)/mean * 100: the percent spread across a set
// of samples. The paper quotes ~24-27% spreads across iterations for the
// counters in Fig. 4.
func Spread(xs []float64) (float64, error) {
	min, max, err := MinMax(xs)
	if err != nil {
		return 0, err
	}
	m, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	if m == 0 {
		return 0, errors.New("stats: spread undefined for zero mean")
	}
	return (max - min) / m * 100, nil
}
