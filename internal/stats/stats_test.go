package stats

import (
	"errors"
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestSum(t *testing.T) {
	cases := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{3.5}, 3.5},
		{"mixed signs", []float64{1, -2, 3}, 2},
		{"zeros", []float64{0, 0, 0}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Sum(tc.in); got != tc.want {
				t.Errorf("Sum(%v) = %v, want %v", tc.in, got, tc.want)
			}
		})
	}
}

func TestPercentile(t *testing.T) {
	cases := []struct {
		name string
		in   []float64
		p    float64
		want float64
	}{
		{"single p0", []float64{42}, 0, 42},
		{"single p50", []float64{42}, 50, 42},
		{"single p100", []float64{42}, 100, 42},
		{"p0 is min", []float64{5, 1, 3}, 0, 1},
		{"p100 is max", []float64{5, 1, 3}, 100, 5},
		{"p50 odd", []float64{3, 1, 2}, 50, 2},
		{"p50 even nearest-rank", []float64{4, 1, 3, 2}, 50, 2},
		{"p99 of 100", func() []float64 {
			xs := make([]float64, 100)
			for i := range xs {
				xs[i] = float64(i + 1)
			}
			return xs
		}(), 99, 99},
		// Regression: 55/100 is not exactly representable; a naive
		// ceil(p/100*n) lands on rank 56.
		{"p55 of 100 float-exact rank", func() []float64 {
			xs := make([]float64, 100)
			for i := range xs {
				xs[i] = float64(i + 1)
			}
			return xs
		}(), 55, 55},
		{"p30 of 10", []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 30, 3},
		{"duplicates", []float64{7, 7, 7, 7}, 95, 7},
		{"duplicate tail", []float64{1, 1, 1, 9}, 75, 1},
		{"unsorted input left intact", []float64{9, 2, 5}, 100, 9},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := Percentile(tc.in, tc.p)
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Errorf("Percentile(%v, %v) = %v, want %v", tc.in, tc.p, got, tc.want)
			}
		})
	}
}

func TestPercentilesAgreesWithPercentile(t *testing.T) {
	xs := []float64{9, 1, 7, 3, 5, 5, 2}
	ps := []float64{0, 25, 50, 55, 95, 100}
	bulk, err := Percentiles(xs, ps...)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range ps {
		one, err := Percentile(xs, p)
		if err != nil {
			t.Fatal(err)
		}
		if bulk[i] != one {
			t.Errorf("Percentiles[%v] = %v, Percentile = %v", p, bulk[i], one)
		}
	}
	if _, err := Percentiles(xs, 50, 101); err == nil {
		t.Error("out-of-range p in bulk form should error")
	}
	if _, err := Percentiles(nil, 50); err != ErrEmpty {
		t.Errorf("empty error = %v, want ErrEmpty", err)
	}
}

// TestPercentilesInPlace pins the allocation-free variant's contract:
// same answers as the copying form, input left sorted (the documented
// side effect), and the same error surface.
func TestPercentilesInPlace(t *testing.T) {
	xs := []float64{9, 1, 7, 3, 5, 5, 2}
	ps := []float64{0, 25, 50, 55, 95, 100}
	want, err := Percentiles(xs, ps...)
	if err != nil {
		t.Fatal(err)
	}
	got, err := PercentilesInPlace(xs, ps...)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ps {
		if got[i] != want[i] {
			t.Errorf("PercentilesInPlace[%v] = %v, Percentiles = %v", ps[i], got[i], want[i])
		}
	}
	if !sort.Float64sAreSorted(xs) {
		t.Errorf("input not left sorted: %v", xs)
	}
	if _, err := PercentilesInPlace(xs, 50, -1); err == nil {
		t.Error("out-of-range p should error")
	}
	if _, err := PercentilesInPlace(nil, 50); err != ErrEmpty {
		t.Errorf("empty error = %v, want ErrEmpty", err)
	}
}

// Non-finite samples used to silently poison the ranked result: NaN
// sorts to an arbitrary position, so every percentile after it was
// garbage. All three entry points must refuse such input with the
// typed sentinel and name the offending index.
func TestPercentileRejectsNonFinite(t *testing.T) {
	for name, xs := range map[string][]float64{
		"NaN":  {1, math.NaN(), 3},
		"+Inf": {1, 2, math.Inf(1)},
		"-Inf": {math.Inf(-1), 2, 3},
	} {
		t.Run(name, func(t *testing.T) {
			if _, err := Percentile(append([]float64(nil), xs...), 50); !errors.Is(err, ErrNonFinite) {
				t.Errorf("Percentile error = %v, want ErrNonFinite", err)
			}
			if _, err := Percentiles(append([]float64(nil), xs...), 50, 99); !errors.Is(err, ErrNonFinite) {
				t.Errorf("Percentiles error = %v, want ErrNonFinite", err)
			}
			err := func() error {
				_, err := PercentilesInPlace(append([]float64(nil), xs...), 50)
				return err
			}()
			if !errors.Is(err, ErrNonFinite) {
				t.Errorf("PercentilesInPlace error = %v, want ErrNonFinite", err)
			}
			if !strings.Contains(err.Error(), "xs[") {
				t.Errorf("error %q should name the offending index", err)
			}
		})
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	in := []float64{3, 1, 2}
	if _, err := Percentile(in, 50); err != nil {
		t.Fatal(err)
	}
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("input mutated: %v", in)
	}
}

func TestPercentileErrors(t *testing.T) {
	if _, err := Percentile(nil, 50); err != ErrEmpty {
		t.Errorf("empty error = %v, want ErrEmpty", err)
	}
	for _, p := range []float64{-1, 101, math.NaN()} {
		if _, err := Percentile([]float64{1}, p); err == nil {
			t.Errorf("Percentile(p=%v) should error", p)
		}
	}
}

func TestMean(t *testing.T) {
	if _, err := Mean(nil); err != ErrEmpty {
		t.Errorf("Mean(nil) error = %v, want ErrEmpty", err)
	}
	got, err := Mean([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
}

func TestWeightedMean(t *testing.T) {
	t.Run("equal weights match mean", func(t *testing.T) {
		xs := []float64{2, 4, 6}
		got, err := WeightedMean(xs, []float64{1, 1, 1})
		if err != nil {
			t.Fatal(err)
		}
		if got != 4 {
			t.Errorf("WeightedMean = %v, want 4", got)
		}
	})
	t.Run("weights shift the mean", func(t *testing.T) {
		got, err := WeightedMean([]float64{0, 10}, []float64{3, 1})
		if err != nil {
			t.Fatal(err)
		}
		if got != 2.5 {
			t.Errorf("WeightedMean = %v, want 2.5", got)
		}
	})
	t.Run("errors", func(t *testing.T) {
		if _, err := WeightedMean(nil, nil); err != ErrEmpty {
			t.Errorf("empty error = %v, want ErrEmpty", err)
		}
		if _, err := WeightedMean([]float64{1}, []float64{1, 2}); err != ErrMismatch {
			t.Errorf("mismatch error = %v, want ErrMismatch", err)
		}
		if _, err := WeightedMean([]float64{1}, []float64{0}); err == nil {
			t.Error("zero total weight should error")
		}
	})
}

func TestWeightedSum(t *testing.T) {
	got, err := WeightedSum([]float64{1, 2}, []float64{10, 100})
	if err != nil {
		t.Fatal(err)
	}
	if got != 210 {
		t.Errorf("WeightedSum = %v, want 210", got)
	}
	if _, err := WeightedSum([]float64{1}, nil); err != ErrMismatch {
		t.Errorf("mismatch error = %v, want ErrMismatch", err)
	}
}

func TestGeomean(t *testing.T) {
	got, err := Geomean([]float64{1, 100})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 10, 1e-9) {
		t.Errorf("Geomean(1,100) = %v, want 10", got)
	}
	if _, err := Geomean(nil); err != ErrEmpty {
		t.Errorf("empty error = %v, want ErrEmpty", err)
	}
	if _, err := Geomean([]float64{1, 0}); err == nil {
		t.Error("zero sample should error")
	}
	if _, err := Geomean([]float64{-1}); err == nil {
		t.Error("negative sample should error")
	}
}

func TestMedian(t *testing.T) {
	cases := []struct {
		name string
		in   []float64
		want float64
	}{
		{"odd", []float64{3, 1, 2}, 2},
		{"even", []float64{4, 1, 3, 2}, 2.5},
		{"single", []float64{7}, 7},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := Median(tc.in)
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Errorf("Median(%v) = %v, want %v", tc.in, got, tc.want)
			}
		})
	}
	t.Run("does not mutate input", func(t *testing.T) {
		in := []float64{3, 1, 2}
		if _, err := Median(in); err != nil {
			t.Fatal(err)
		}
		if in[0] != 3 || in[1] != 1 || in[2] != 2 {
			t.Errorf("input mutated: %v", in)
		}
	})
}

func TestVarianceStddev(t *testing.T) {
	v, err := Variance([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(v, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", v)
	}
	s, err := Stddev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(s, 2, 1e-12) {
		t.Errorf("Stddev = %v, want 2", s)
	}
}

func TestPercentError(t *testing.T) {
	got, err := PercentError(110, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got != 10 {
		t.Errorf("PercentError(110,100) = %v, want 10", got)
	}
	got, err = PercentError(90, -100)
	if err != nil {
		t.Fatal(err)
	}
	if got != 190 {
		t.Errorf("PercentError(90,-100) = %v, want 190", got)
	}
	if _, err := PercentError(1, 0); err == nil {
		t.Error("zero actual should error")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi, err := MinMax([]float64{3, -1, 4, 1, 5})
	if err != nil {
		t.Fatal(err)
	}
	if lo != -1 || hi != 5 {
		t.Errorf("MinMax = (%v,%v), want (-1,5)", lo, hi)
	}
	if _, _, err := MinMax(nil); err != ErrEmpty {
		t.Errorf("empty error = %v, want ErrEmpty", err)
	}
}

func TestNormalize(t *testing.T) {
	got, err := Normalize([]float64{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.25, 0.5, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Normalize[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if _, err := Normalize([]float64{0, 0}); err == nil {
		t.Error("all-zero input should error")
	}
}

func TestSpread(t *testing.T) {
	got, err := Spread([]float64{80, 100, 120})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 40, 1e-9) {
		t.Errorf("Spread = %v, want 40", got)
	}
	if _, err := Spread([]float64{0}); err == nil {
		t.Error("zero-mean spread should error")
	}
}

// positiveSamples maps arbitrary quick-generated floats into a bounded
// positive range so statistics stay finite and well-conditioned.
func positiveSamples(raw []float64) []float64 {
	out := make([]float64, 0, len(raw))
	for _, v := range raw {
		a := math.Abs(v)
		if math.IsNaN(a) || math.IsInf(a, 0) {
			continue
		}
		out = append(out, 1+math.Mod(a, 1000))
	}
	return out
}

func TestQuickMeanBetweenMinMax(t *testing.T) {
	f := func(raw []float64) bool {
		xs := positiveSamples(raw)
		if len(xs) == 0 {
			return true
		}
		m, err := Mean(xs)
		if err != nil {
			return false
		}
		lo, hi, err := MinMax(xs)
		if err != nil {
			return false
		}
		return lo-1e-9 <= m && m <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickGeomeanAtMostMean(t *testing.T) {
	// AM-GM inequality: geometric mean never exceeds arithmetic mean.
	f := func(raw []float64) bool {
		xs := positiveSamples(raw)
		if len(xs) == 0 {
			return true
		}
		gm, err := Geomean(xs)
		if err != nil {
			return false
		}
		am, err := Mean(xs)
		if err != nil {
			return false
		}
		return gm <= am+1e-9*am
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickNormalizeMaxIsOne(t *testing.T) {
	f := func(raw []float64) bool {
		xs := positiveSamples(raw)
		if len(xs) == 0 {
			return true
		}
		norm, err := Normalize(xs)
		if err != nil {
			return false
		}
		_, hi, err := MinMax(norm)
		if err != nil {
			return false
		}
		return almostEqual(hi, 1, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickWeightedMeanBounds(t *testing.T) {
	// A weighted mean with positive weights lies within [min, max].
	f := func(raw []float64, wraw []float64) bool {
		xs := positiveSamples(raw)
		if len(xs) == 0 {
			return true
		}
		ws := make([]float64, len(xs))
		for i := range ws {
			ws[i] = 1
			if i < len(wraw) {
				ws[i] = 1 + math.Mod(math.Abs(wraw[i]), 10)
				if math.IsNaN(ws[i]) || math.IsInf(ws[i], 0) {
					ws[i] = 1
				}
			}
		}
		wm, err := WeightedMean(xs, ws)
		if err != nil {
			return false
		}
		lo, hi, err := MinMax(xs)
		if err != nil {
			return false
		}
		return lo-1e-9 <= wm && wm <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
