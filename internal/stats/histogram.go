package stats

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Histogram is a fixed-width binning of integer-valued samples (sequence
// lengths, in this codebase). It backs the paper's Fig. 7 and is also the
// primitive the SeqPoint binning step (Fig. 10, step 2) builds on.
type Histogram struct {
	// Lo and Hi are the inclusive bounds of the binned domain.
	Lo, Hi int
	// Counts holds one entry per bin.
	Counts []int
	// Edges holds len(Counts)+1 bin boundaries; bin i covers
	// [Edges[i], Edges[i+1]) except the last bin, which is inclusive.
	Edges []int
}

// NewHistogram bins the samples into k equal-width bins spanning
// [min(samples), max(samples)]. k must be positive and samples
// non-empty. When the integer span of the samples is narrower than k,
// the bin count is clamped to the span: more bins than distinct
// representable values would force duplicate edges, and with them bin
// assignments that disagree between the edge list and BinOf. Callers
// therefore always get len(Counts) <= k strictly increasing edges.
func NewHistogram(samples []int, k int) (*Histogram, error) {
	if len(samples) == 0 {
		return nil, ErrEmpty
	}
	if k <= 0 {
		return nil, fmt.Errorf("stats: bin count must be positive, got %d", k)
	}
	lo, hi := samples[0], samples[0]
	for _, s := range samples[1:] {
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	span := hi - lo + 1
	if k > span {
		k = span
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, k), Edges: make([]int, k+1)}
	for i := 0; i <= k; i++ {
		h.Edges[i] = lo + i*span/k
	}
	h.Edges[k] = hi + 1 // half-open top edge
	for _, s := range samples {
		h.Counts[h.BinOf(s)]++
	}
	return h, nil
}

// BinOf returns the bin index that value v falls into. Values outside
// [Lo, Hi] clamp to the first or last bin.
func (h *Histogram) BinOf(v int) int {
	if v <= h.Lo {
		return 0
	}
	if v >= h.Hi {
		return len(h.Counts) - 1
	}
	// Binary search over edges: the largest i with Edges[i] <= v.
	i := sort.Search(len(h.Edges), func(i int) bool { return h.Edges[i] > v }) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	return i
}

// Total returns the number of binned samples.
func (h *Histogram) Total() int {
	var t int
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// String renders a compact ASCII view: one line per bin with a bar chart,
// handy for cmd/experiments output.
func (h *Histogram) String() string {
	var b strings.Builder
	maxCount := 0
	for _, c := range h.Counts {
		if c > maxCount {
			maxCount = c
		}
	}
	for i, c := range h.Counts {
		hiEdge := h.Edges[i+1] - 1
		bar := 0
		if maxCount > 0 {
			bar = c * 40 / maxCount
		}
		fmt.Fprintf(&b, "[%4d-%4d] %6d %s\n", h.Edges[i], hiEdge, c, strings.Repeat("#", bar))
	}
	return b.String()
}

// Mode returns the most frequent value among the samples and its count.
// Ties break toward the smaller value, which keeps the "frequent"
// baseline deterministic.
func Mode(samples []int) (value, count int, err error) {
	if len(samples) == 0 {
		return 0, 0, ErrEmpty
	}
	freq := make(map[int]int, len(samples))
	for _, s := range samples {
		freq[s]++
	}
	first := true
	for v, c := range freq {
		if first || c > count || (c == count && v < value) {
			value, count = v, c
			first = false
		}
	}
	return value, count, nil
}

// MedianInt returns the frequency-weighted median of the samples: the
// value at the midpoint of the sorted sample list. This is the "median"
// baseline's selection rule.
func MedianInt(samples []int) (int, error) {
	if len(samples) == 0 {
		return 0, ErrEmpty
	}
	cp := append([]int(nil), samples...)
	sort.Ints(cp)
	return cp[len(cp)/2], nil
}

// UniqueInts returns the sorted distinct values in samples.
func UniqueInts(samples []int) []int {
	seen := make(map[int]struct{}, len(samples))
	var out []int
	for _, s := range samples {
		if _, ok := seen[s]; !ok {
			seen[s] = struct{}{}
			out = append(out, s)
		}
	}
	sort.Ints(out)
	return out
}

// CountsByValue returns a map from distinct value to occurrence count.
func CountsByValue(samples []int) map[int]int {
	freq := make(map[int]int, len(samples))
	for _, s := range samples {
		freq[s]++
	}
	return freq
}

// ErrBadBins reports invalid bin specifications.
var ErrBadBins = errors.New("stats: invalid bin specification")
