package stats

import "errors"

// LinearFit is an ordinary-least-squares line y = Slope*x + Intercept,
// with R2 reporting the goodness of fit. The paper (Fig. 9 and the
// SeqPoint representative-selection rule in Section V-C) leans on
// iteration runtime being near-linear in sequence length within a bin;
// Fit lets tests assert that property of the simulator.
type LinearFit struct {
	Slope     float64
	Intercept float64
	R2        float64
	N         int
}

// Fit computes the least-squares line through (xs[i], ys[i]).
// It needs at least two points with non-constant x.
func Fit(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, ErrMismatch
	}
	if len(xs) < 2 {
		return LinearFit{}, errors.New("stats: fit needs at least two points")
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy, syy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
		syy += ys[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return LinearFit{}, errors.New("stats: fit undefined for constant x")
	}
	slope := (n*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / n

	// R^2 = 1 - SS_res/SS_tot.
	meanY := sy / n
	var ssRes, ssTot float64
	for i := range xs {
		pred := slope*xs[i] + intercept
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - meanY) * (ys[i] - meanY)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return LinearFit{Slope: slope, Intercept: intercept, R2: r2, N: len(xs)}, nil
}

// Predict evaluates the fitted line at x.
func (f LinearFit) Predict(x float64) float64 {
	return f.Slope*x + f.Intercept
}
