package models

import (
	"fmt"

	"seqpoint/internal/nn"
	"seqpoint/internal/tensor"
)

// Seq2Seq hyperparameters: a plain LSTM encoder-decoder without
// attention (Sutskever-style, cited by the paper's Section VII-B via
// Luong et al.). Its per-iteration work is strictly linear in SL —
// the opposite extreme from the Transformer's quadratic attention —
// so together they bracket the SL-sensitivity space SeqPoint must
// handle.
const (
	Seq2SeqHidden = 1000
	Seq2SeqLayers = 4
	Seq2SeqVocab  = 50000
	seq2seqParams = 120_000_000
)

// Seq2Seq is the attention-free LSTM encoder-decoder.
type Seq2Seq struct{}

// NewSeq2Seq builds the model.
func NewSeq2Seq() *Seq2Seq { return &Seq2Seq{} }

// Name returns "seq2seq".
func (m *Seq2Seq) Name() string { return "seq2seq" }

// SeqLenDependent reports true.
func (m *Seq2Seq) SeqLenDependent() bool { return true }

// ParamCount returns the trainable-parameter count.
func (m *Seq2Seq) ParamCount() int { return seq2seqParams }

// layers builds the full stack: embedding, encoder LSTMs, decoder
// LSTMs, vocabulary projection. Without attention the encoder-decoder
// boundary carries only the final hidden state, so a single stack
// models the iteration's kernel stream faithfully.
func (m *Seq2Seq) layers() []nn.Layer {
	layers := []nn.Layer{nn.NewEmbedding("embed", Seq2SeqVocab, Seq2SeqHidden)}
	for i := 0; i < Seq2SeqLayers; i++ {
		layers = append(layers, nn.NewRecurrent(
			fmt.Sprintf("enc_lstm_%d", i), nn.CellLSTM, Seq2SeqHidden, false))
	}
	for i := 0; i < Seq2SeqLayers; i++ {
		layers = append(layers, nn.NewRecurrent(
			fmt.Sprintf("dec_lstm_%d", i), nn.CellLSTM, Seq2SeqHidden, false))
	}
	return append(layers,
		nn.NewDense("classifier", Seq2SeqVocab, false),
		nn.NewSoftmax("softmax"),
	)
}

// input is the embedded-token activation.
func (m *Seq2Seq) input(batch, seqLen int) nn.Activation {
	return nn.Activation{Batch: batch, Time: seqLen, Feat: Seq2SeqHidden}
}

// IterationOps returns one training iteration's ops.
func (m *Seq2Seq) IterationOps(batch, seqLen int) []tensor.Op {
	ops := stackIteration(m.layers(), m.input(batch, seqLen))
	return append(ops, optimizerOps(seq2seqParams, m.Name())...)
}

// EvalOps returns one forward-only pass.
func (m *Seq2Seq) EvalOps(batch, seqLen int) []tensor.Op {
	ops, _, _ := runForward(m.layers(), m.input(batch, seqLen))
	return ops
}
