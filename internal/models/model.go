// Package models assembles the networks the paper studies from the
// layer library: DeepSpeech2 and GNMT (the two MLPerf-reference SQNNs of
// the evaluation) plus a fixed-input CNN used for the homogeneous-vs-
// heterogeneous iteration contrast of Fig. 3. A model, given a batch
// size and the padded sequence length of an iteration's input batch,
// returns the complete list of logical operations one training
// iteration launches — forward and backward — ready for pricing by the
// GPU model.
package models

import (
	"seqpoint/internal/nn"
	"seqpoint/internal/tensor"
)

// Model describes a trainable network at profiling granularity.
type Model interface {
	// Name identifies the model ("ds2", "gnmt", "cnn").
	Name() string
	// IterationOps returns the ops of one training iteration (forward +
	// loss + backward) for a batch padded to seqLen.
	IterationOps(batch, seqLen int) []tensor.Op
	// EvalOps returns the ops of one evaluation (forward-only) pass.
	EvalOps(batch, seqLen int) []tensor.Op
	// SeqLenDependent reports whether iteration work varies with the
	// input sequence length (true for SQNNs, false for CNNs).
	SeqLenDependent() bool
	// ParamCount is the number of trainable parameters — the quantity
	// the optimizer pass streams over and the gradient all-reduce of a
	// data-parallel cluster moves every step.
	ParamCount() int
}

// GradientBytes is the size of one full gradient exchange for m: one
// element per trainable parameter. This is the byte count a
// data-parallel all-reduce moves per training step.
func GradientBytes(m Model) float64 {
	return float64(m.ParamCount()) * tensor.ElemSize
}

// runForward applies the layer stack to in, returning all forward ops
// and the per-layer input shapes (needed to replay the backward pass).
func runForward(layers []nn.Layer, in nn.Activation) ([]tensor.Op, []nn.Activation, nn.Activation) {
	var ops []tensor.Op
	inputs := make([]nn.Activation, len(layers))
	cur := in
	for i, l := range layers {
		inputs[i] = cur
		var o []tensor.Op
		o, cur = l.Forward(cur)
		ops = append(ops, o...)
	}
	return ops, inputs, cur
}

// runBackward replays the stack in reverse, emitting each layer's
// backward ops against the input shape it saw in the forward pass.
func runBackward(layers []nn.Layer, inputs []nn.Activation) []tensor.Op {
	var ops []tensor.Op
	for i := len(layers) - 1; i >= 0; i-- {
		ops = append(ops, layers[i].Backward(inputs[i])...)
	}
	return ops
}

// stackIteration is the common forward+backward assembly for models that
// are a single layer stack.
func stackIteration(layers []nn.Layer, in nn.Activation) []tensor.Op {
	fwd, inputs, _ := runForward(layers, in)
	bwd := runBackward(layers, inputs)
	return append(fwd, bwd...)
}

// optimizerOps models the weight-update pass (SGD with momentum): one
// streaming pointwise op over every parameter.
func optimizerOps(paramCount int, label string) []tensor.Op {
	return []tensor.Op{tensor.NewElementwise(paramCount, 4, label+"_sgd")}
}
