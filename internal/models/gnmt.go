package models

import (
	"fmt"

	"seqpoint/internal/nn"
	"seqpoint/internal/tensor"
)

// GNMT hyperparameters, following the MLPerf reference the paper
// profiles: an encoder of eight LSTM layers (the first bidirectional),
// a decoder of eight LSTM layers, an additive attention network
// connecting them, and a fully-connected projection onto the
// vocabulary. The 36 549-word vocabulary matches the paper's Table I
// classifier GEMM dimension for GNMT on IWSLT'15.
const (
	GNMTHidden     = 1024
	GNMTEncLayers  = 8
	GNMTDecLayers  = 8
	GNMTVocab      = 36549
	gnmtParamCount = 160_000_000
)

// GNMT is Google's neural machine translation SQNN. The iteration
// sequence length is the padded source-sentence length; the target side
// is padded to the same length (sentence pairs have strongly correlated
// lengths, and GNMT-style batching pads both sides of a bucket
// together).
type GNMT struct{}

// NewGNMT builds the GNMT model.
func NewGNMT() *GNMT { return &GNMT{} }

// Name returns "gnmt".
func (m *GNMT) Name() string { return "gnmt" }

// SeqLenDependent reports true: GNMT is an SQNN.
func (m *GNMT) SeqLenDependent() bool { return true }

// ParamCount returns the trainable-parameter count.
func (m *GNMT) ParamCount() int { return gnmtParamCount }

// encoderLayers builds the encoder stack for one iteration.
func (m *GNMT) encoderLayers() []nn.Layer {
	layers := []nn.Layer{
		nn.NewEmbedding("src_embed", GNMTVocab, GNMTHidden),
		nn.NewRecurrent("enc_lstm_0", nn.CellLSTM, GNMTHidden, true),
		// The bidirectional layer outputs 2*hidden; GNMT's next layer
		// consumes it directly.
	}
	for i := 1; i < GNMTEncLayers; i++ {
		layers = append(layers, nn.NewRecurrent(
			fmt.Sprintf("enc_lstm_%d", i), nn.CellLSTM, GNMTHidden, false))
	}
	return layers
}

// decoderLayers builds the decoder stack, with attention following the
// first decoder LSTM, for an iteration whose encoder ran encTime steps.
func (m *GNMT) decoderLayers(encTime int) []nn.Layer {
	layers := []nn.Layer{
		nn.NewEmbedding("tgt_embed", GNMTVocab, GNMTHidden),
		nn.NewRecurrent("dec_lstm_0", nn.CellLSTM, GNMTHidden, false),
		nn.NewAttention("attention", GNMTHidden, encTime),
	}
	for i := 1; i < GNMTDecLayers; i++ {
		layers = append(layers, nn.NewRecurrent(
			fmt.Sprintf("dec_lstm_%d", i), nn.CellLSTM, GNMTHidden, false))
	}
	layers = append(layers,
		nn.NewDense("classifier", GNMTVocab, false),
		nn.NewSoftmax("softmax"),
	)
	return layers
}

// IterationOps returns one training iteration's ops.
func (m *GNMT) IterationOps(batch, seqLen int) []tensor.Op {
	encIn := nn.Activation{Batch: batch, Time: seqLen, Feat: GNMTHidden}
	decIn := nn.Activation{Batch: batch, Time: seqLen, Feat: GNMTHidden}

	enc := m.encoderLayers()
	dec := m.decoderLayers(seqLen)

	encFwd, encInputs, _ := runForward(enc, encIn)
	decFwd, decInputs, _ := runForward(dec, decIn)
	bwd := append(runBackward(dec, decInputs), runBackward(enc, encInputs)...)

	ops := append(encFwd, decFwd...)
	ops = append(ops, bwd...)
	return append(ops, optimizerOps(gnmtParamCount, "gnmt")...)
}

// EvalOps returns one forward-only pass.
func (m *GNMT) EvalOps(batch, seqLen int) []tensor.Op {
	encIn := nn.Activation{Batch: batch, Time: seqLen, Feat: GNMTHidden}
	decIn := nn.Activation{Batch: batch, Time: seqLen, Feat: GNMTHidden}
	encFwd, _, _ := runForward(m.encoderLayers(), encIn)
	decFwd, _, _ := runForward(m.decoderLayers(seqLen), decIn)
	return append(encFwd, decFwd...)
}
