package models

import (
	"testing"
	"testing/quick"

	"seqpoint/internal/tensor"
)

func totalFLOPs(ops []tensor.Op) float64 {
	var f float64
	for _, op := range ops {
		f += op.FLOPs()
	}
	return f
}

func findGEMMByLabel(ops []tensor.Op, label string) (tensor.GEMM, bool) {
	for _, op := range ops {
		if g, ok := op.(tensor.GEMM); ok && g.Label == label {
			return g, true
		}
	}
	return tensor.GEMM{}, false
}

func TestModelNames(t *testing.T) {
	if NewDS2().Name() != "ds2" || NewGNMT().Name() != "gnmt" || NewCNN().Name() != "cnn" {
		t.Error("model names")
	}
}

func TestSeqLenDependence(t *testing.T) {
	if !NewDS2().SeqLenDependent() || !NewGNMT().SeqLenDependent() {
		t.Error("SQNNs are SL-dependent")
	}
	if NewCNN().SeqLenDependent() {
		t.Error("CNN iterations are input-independent")
	}
}

func TestCNNIterationsHomogeneous(t *testing.T) {
	// The Fig. 3 premise: CNN work is identical regardless of "SL".
	m := NewCNN()
	f1 := totalFLOPs(m.IterationOps(32, 10))
	f2 := totalFLOPs(m.IterationOps(32, 500))
	if f1 != f2 {
		t.Errorf("CNN FLOPs vary with seqLen: %v vs %v", f1, f2)
	}
}

func TestSQNNIterationsHeterogeneous(t *testing.T) {
	for _, m := range []Model{NewDS2(), NewGNMT()} {
		f1 := totalFLOPs(m.IterationOps(64, 60))
		f2 := totalFLOPs(m.IterationOps(64, 120))
		if f2 <= f1 {
			t.Errorf("%s: FLOPs should grow with SL (%v vs %v)", m.Name(), f1, f2)
		}
		// Near-linear: doubling SL roughly doubles work (within 2.5x).
		if ratio := f2 / f1; ratio < 1.5 || ratio > 2.5 {
			t.Errorf("%s: FLOP ratio at 2x SL = %v, want near 2", m.Name(), ratio)
		}
	}
}

func TestDS2ClassifierGEMMTableI(t *testing.T) {
	// The classifier GEMM must have the paper's Table I fixed
	// dimensions: M=29 (alphabet), K=1600 (2x800 bidirectional GRU).
	m := NewDS2()
	ops := m.IterationOps(64, 200)
	g, ok := findGEMMByLabel(ops, "classifier")
	if !ok {
		t.Fatal("no classifier GEMM")
	}
	if g.M != DS2Alphabet || g.K != 2*DS2GRUHidden {
		t.Errorf("classifier GEMM %dx%dx%d, want M=29 K=1600", g.M, g.N, g.K)
	}
	// N = batch x post-conv sequence length.
	if g.N%64 != 0 {
		t.Errorf("classifier N = %d, want a multiple of the batch", g.N)
	}
}

func TestGNMTClassifierGEMMTableI(t *testing.T) {
	// GNMT's vocabulary projection: M=36549, K=1024 (paper Table I);
	// N = batch*T, so SL 94 at batch 64 gives the paper's N=6016.
	m := NewGNMT()
	g, ok := findGEMMByLabel(m.IterationOps(64, 94), "classifier")
	if !ok {
		t.Fatal("no classifier GEMM")
	}
	if g.M != GNMTVocab || g.K != GNMTHidden {
		t.Errorf("classifier GEMM M=%d K=%d, want M=36549 K=1024", g.M, g.K)
	}
	if g.N != 6016 {
		t.Errorf("classifier N = %d, want 6016 (= 64 x 94)", g.N)
	}
}

func TestDS2ConvFrontEndShrinksTime(t *testing.T) {
	// DS2's strided conv halves the time axis before the GRU stack, so
	// the recurrent GEMMs see T/2.
	m := NewDS2()
	g, ok := findGEMMByLabel(m.IterationOps(64, 200), "classifier")
	if !ok {
		t.Fatal("no classifier GEMM")
	}
	postConvT := g.N / 64
	if postConvT >= 200 || postConvT < 90 {
		t.Errorf("post-conv T = %d for input 200, want ~100", postConvT)
	}
}

func TestEvalOpsAreForwardOnly(t *testing.T) {
	for _, m := range []Model{NewDS2(), NewGNMT(), NewCNN()} {
		iter := totalFLOPs(m.IterationOps(32, 80))
		eval := totalFLOPs(m.EvalOps(32, 80))
		if eval >= iter {
			t.Errorf("%s: eval FLOPs %v should be well below iteration FLOPs %v", m.Name(), eval, iter)
		}
		// Forward pass is roughly a third of fwd+bwd+update.
		if eval < iter/10 {
			t.Errorf("%s: eval FLOPs %v implausibly small vs %v", m.Name(), eval, iter)
		}
	}
}

func TestIterationOpsDeterministic(t *testing.T) {
	// The same (model, batch, SL) must produce the identical op stream:
	// the trainer memoizes profiles per SL on this property (key
	// observation 4/5).
	for _, m := range []Model{NewDS2(), NewGNMT()} {
		a := m.IterationOps(64, 77)
		b := m.IterationOps(64, 77)
		if len(a) != len(b) {
			t.Fatalf("%s: op counts differ: %d vs %d", m.Name(), len(a), len(b))
		}
		for i := range a {
			if a[i].Signature() != b[i].Signature() {
				t.Errorf("%s: op %d differs: %s vs %s", m.Name(), i, a[i].Signature(), b[i].Signature())
			}
		}
	}
}

func TestGNMTAttentionPresent(t *testing.T) {
	ops := NewGNMT().IterationOps(64, 30)
	if _, ok := findGEMMByLabel(ops, "attention_context"); !ok {
		t.Error("GNMT iteration should include attention context GEMMs")
	}
	if _, ok := findGEMMByLabel(ops, "attention_keys"); !ok {
		t.Error("GNMT iteration should include the hoisted key projection")
	}
}

func TestGNMTEmbeddingKeepsFullVocab(t *testing.T) {
	// Key observation 6: sampling iterations must preserve vocabulary
	// size; the model must always emit full-vocabulary gathers.
	for _, op := range NewGNMT().IterationOps(64, 10) {
		if e, ok := op.(tensor.Embedding); ok {
			if e.Rows != GNMTVocab {
				t.Errorf("embedding rows = %d, want %d", e.Rows, GNMTVocab)
			}
		}
	}
}

func TestOptimizerOpsIncluded(t *testing.T) {
	// Training iterations end with the weight-update pass.
	for _, m := range []Model{NewDS2(), NewGNMT(), NewCNN()} {
		ops := m.IterationOps(8, 60)
		last := ops[len(ops)-1]
		ew, ok := last.(tensor.Elementwise)
		if !ok {
			t.Errorf("%s: last op is %T, want the optimizer elementwise", m.Name(), last)
			continue
		}
		if ew.Label != m.Name()+"_sgd" {
			t.Errorf("%s: last op label %q", m.Name(), ew.Label)
		}
	}
}

func TestQuickDS2FLOPsMonotonicInSL(t *testing.T) {
	m := NewDS2()
	f := func(a, b uint8) bool {
		sl1 := int(a)%400 + 50
		sl2 := sl1 + int(b)%100 + 20
		return totalFLOPs(m.IterationOps(16, sl2)) > totalFLOPs(m.IterationOps(16, sl1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestQuickGNMTFLOPsMonotonicInSL(t *testing.T) {
	m := NewGNMT()
	f := func(a, b uint8) bool {
		sl1 := int(a)%100 + 1
		sl2 := sl1 + int(b)%50 + 1
		return totalFLOPs(m.IterationOps(16, sl2)) > totalFLOPs(m.IterationOps(16, sl1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestQuickBatchScalesWork(t *testing.T) {
	// At fixed SL, iteration work grows with batch size for every model.
	f := func(b8 uint8) bool {
		b := int(b8)%32 + 1
		for _, m := range []Model{NewDS2(), NewGNMT(), NewCNN()} {
			if totalFLOPs(m.IterationOps(b+8, 64)) <= totalFLOPs(m.IterationOps(b, 64)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
