package models

import (
	"math"

	"seqpoint/internal/tensor"
)

// kvEstimatedLayers is the layer depth the KV-footprint estimate
// assumes when backing a model's hidden width out of its parameter
// count. The serving simulator only needs the footprint's scale and
// its model-to-model ordering, not a layer-exact census; a fixed
// depth keeps the estimate a pure function of ParamCount.
const kvEstimatedLayers = 8

// KVBytesPerToken estimates the per-token inference-cache footprint of
// m: the bytes a serving replica must hold resident per token of
// context (the key/value cache of attention models, the recurrent
// state window of SQNNs) while a request decodes. Assuming the usual
// params ≈ 12·L·H² relationship, the hidden width is backed out of
// ParamCount at a fixed depth L and the per-token state is the classic
// 2·L·H elements (keys and values per layer):
//
//	H = sqrt(ParamCount / (12·L)),  bytes/token = 2·L·H·ElemSize
//
// For the bundled models this lands at ~40 KB/token (ds2, 38M params)
// to ~83 KB/token (gnmt, 160M) — the scale at which a 16 GB device
// holds a few thousand tokens of context per batch, which is exactly
// the capacity-pressure regime the memory-aware serving model studies.
// Rounded to whole bytes so derived capacities stay tidy in reports.
func KVBytesPerToken(m Model) float64 {
	hidden := math.Sqrt(float64(m.ParamCount()) / (12 * kvEstimatedLayers))
	return math.Round(2 * kvEstimatedLayers * hidden * tensor.ElemSize)
}
