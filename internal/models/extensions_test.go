package models

import (
	"testing"

	"seqpoint/internal/nn"
	"seqpoint/internal/tensor"
)

func TestTransformerSuperLinearInSL(t *testing.T) {
	// Self-attention is O(T^2): doubling SL should much more than
	// double the attention work, pushing total FLOPs ratio above the
	// linear regime as SL grows.
	m := NewTransformer()
	if !m.SeqLenDependent() {
		t.Fatal("transformer is an SQNN")
	}
	f50 := totalFLOPs(m.IterationOps(16, 50))
	f100 := totalFLOPs(m.IterationOps(16, 100))
	f200 := totalFLOPs(m.IterationOps(16, 200))
	r1 := f100 / f50
	r2 := f200 / f100
	if r2 <= r1 {
		t.Errorf("doubling ratio should grow with SL (quadratic attention): %v then %v", r1, r2)
	}
	if r1 < 2 {
		t.Errorf("first doubling ratio %v, want > 2 (super-linear)", r1)
	}
}

func TestTransformerClassifierVocab(t *testing.T) {
	ops := NewTransformer().IterationOps(8, 20)
	found := false
	for _, op := range ops {
		if g, ok := op.(tensor.GEMM); ok && g.Label == "classifier" {
			found = true
			if g.M != TransformerVocab {
				t.Errorf("classifier M = %d, want vocab %d", g.M, TransformerVocab)
			}
		}
	}
	if !found {
		t.Error("no classifier GEMM")
	}
}

func TestTransformerEvalForwardOnly(t *testing.T) {
	m := NewTransformer()
	if totalFLOPs(m.EvalOps(8, 40)) >= totalFLOPs(m.IterationOps(8, 40)) {
		t.Error("eval must be cheaper than a training iteration")
	}
}

func TestSeq2SeqLinearInSL(t *testing.T) {
	m := NewSeq2Seq()
	if !m.SeqLenDependent() {
		t.Fatal("seq2seq is an SQNN")
	}
	f50 := totalFLOPs(m.IterationOps(16, 50))
	f100 := totalFLOPs(m.IterationOps(16, 100))
	ratio := f100 / f50
	// No attention: strictly linear growth.
	if ratio < 1.8 || ratio > 2.2 {
		t.Errorf("doubling SL gives FLOP ratio %v, want ~2 (linear)", ratio)
	}
}

func TestSeq2SeqNoAttention(t *testing.T) {
	for _, op := range NewSeq2Seq().IterationOps(8, 20) {
		if g, ok := op.(tensor.GEMM); ok {
			if g.Label == "attention_context" || g.Label == "attention_keys" {
				t.Fatalf("seq2seq should have no attention kernels, found %s", g.Label)
			}
		}
	}
}

func TestExtensionModelNames(t *testing.T) {
	if NewTransformer().Name() != "transformer" {
		t.Error("transformer name")
	}
	if NewSeq2Seq().Name() != "seq2seq" {
		t.Error("seq2seq name")
	}
}

func TestCustomModelLifecycle(t *testing.T) {
	m, err := NewCustom("toy", 1000, true,
		func(batch, seqLen int) nn.Activation {
			return nn.Activation{Batch: batch, Time: seqLen, Feat: 32}
		},
		func(seqLen int) []nn.Layer {
			return []nn.Layer{
				nn.NewRecurrent("r", nn.CellGRU, 32, false),
				nn.NewDense("classifier", 4, false),
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "toy" || !m.SeqLenDependent() {
		t.Error("identity")
	}
	ops := m.IterationOps(4, 10)
	if len(ops) == 0 {
		t.Fatal("no ops")
	}
	// Optimizer pass appended.
	if ew, ok := ops[len(ops)-1].(tensor.Elementwise); !ok || ew.Label != "toy_sgd" {
		t.Error("missing optimizer pass")
	}
	if totalFLOPs(m.IterationOps(4, 20)) <= totalFLOPs(ops) {
		t.Error("custom SQNN work should grow with SL")
	}
	if len(m.EvalOps(4, 10)) >= len(ops) {
		t.Error("eval should be forward-only")
	}
}

func TestCustomModelValidation(t *testing.T) {
	input := func(b, s int) nn.Activation { return nn.Activation{Batch: b, Time: s, Feat: 1} }
	build := func(int) []nn.Layer { return nil }
	cases := []struct {
		name string
		fn   func() (*Custom, error)
	}{
		{"empty name", func() (*Custom, error) { return NewCustom("", 1, true, input, build) }},
		{"zero params", func() (*Custom, error) { return NewCustom("x", 0, true, input, build) }},
		{"nil input", func() (*Custom, error) { return NewCustom("x", 1, true, nil, build) }},
		{"nil build", func() (*Custom, error) { return NewCustom("x", 1, true, input, nil) }},
	}
	for _, tc := range cases {
		if _, err := tc.fn(); err == nil {
			t.Errorf("%s should be rejected", tc.name)
		}
	}
}

func TestSLSensitivityBracket(t *testing.T) {
	// Section VII-B bracket: at equal SL doubling, the Transformer's
	// growth factor exceeds Seq2Seq's (quadratic vs linear attention
	// regimes) — SeqPoint must handle both.
	tr := NewTransformer()
	s2s := NewSeq2Seq()
	trRatio := totalFLOPs(tr.IterationOps(8, 160)) / totalFLOPs(tr.IterationOps(8, 80))
	s2sRatio := totalFLOPs(s2s.IterationOps(8, 160)) / totalFLOPs(s2s.IterationOps(8, 80))
	if trRatio <= s2sRatio {
		t.Errorf("transformer ratio %v should exceed seq2seq ratio %v", trRatio, s2sRatio)
	}
}
