package models

import (
	"fmt"

	"seqpoint/internal/nn"
	"seqpoint/internal/tensor"
)

// DS2 hyperparameters, following the MLPerf reference implementation the
// paper profiles: two 2-D convolutions over the spectrogram, a
// batch-norm, five bidirectional GRU layers of 800 units, and a
// fully-connected classifier over the 29-character English alphabet
// trained with CTC. The classifier GEMM's M=29, K=1600 (=2x800
// bidirectional output) shape matches the paper's Table I row for DS2.
const (
	DS2Freq       = 161 // spectrogram frequency bins
	DS2ConvChan   = 32
	DS2GRUHidden  = 800
	DS2GRULayers  = 5
	DS2Alphabet   = 29
	ds2ParamCount = 38_000_000
)

// DeepSpeech2 is Baidu's speech-recognition SQNN. The iteration sequence
// length is the padded spectrogram frame count of the input batch.
type DeepSpeech2 struct {
	layers []nn.Layer
}

// NewDS2 builds the DeepSpeech2 model.
func NewDS2() *DeepSpeech2 {
	layers := []nn.Layer{
		nn.NewConv("conv1", DS2ConvChan, 41, 11, 2, 2, 20, 5, true),
		nn.NewConv("conv2", DS2ConvChan, 21, 11, 2, 1, 10, 5, true),
		nn.NewBatchNorm("bn"),
		nn.NewFlatten("flatten"),
	}
	for i := 0; i < DS2GRULayers; i++ {
		layers = append(layers, nn.NewRecurrent(
			fmt.Sprintf("gru_%d", i), nn.CellGRU, DS2GRUHidden, true))
	}
	layers = append(layers,
		nn.NewDense("classifier", DS2Alphabet, false),
		nn.NewCTCLoss("ctc"),
	)
	return &DeepSpeech2{layers: layers}
}

// Name returns "ds2".
func (m *DeepSpeech2) Name() string { return "ds2" }

// SeqLenDependent reports true: DS2 is an SQNN.
func (m *DeepSpeech2) SeqLenDependent() bool { return true }

// ParamCount returns the trainable-parameter count.
func (m *DeepSpeech2) ParamCount() int { return ds2ParamCount }

// input returns the spectrogram activation for an iteration.
func (m *DeepSpeech2) input(batch, seqLen int) nn.Activation {
	return nn.Activation{Batch: batch, Time: seqLen, Freq: DS2Freq, Channels: 1}
}

// IterationOps returns one training iteration's ops.
func (m *DeepSpeech2) IterationOps(batch, seqLen int) []tensor.Op {
	ops := stackIteration(m.layers, m.input(batch, seqLen))
	return append(ops, optimizerOps(ds2ParamCount, "ds2")...)
}

// EvalOps returns one forward-only pass.
func (m *DeepSpeech2) EvalOps(batch, seqLen int) []tensor.Op {
	ops, _, _ := runForward(m.layers, m.input(batch, seqLen))
	return ops
}
