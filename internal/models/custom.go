package models

import (
	"fmt"

	"seqpoint/internal/nn"
	"seqpoint/internal/tensor"
)

// Custom is a user-defined model assembled from the layer library. The
// builder runs per iteration with the padded sequence length, so layers
// whose construction depends on SL (e.g. attention over the full input,
// Section VII-B of the paper) can be sized correctly.
type Custom struct {
	name       string
	paramCount int
	seqDep     bool
	input      func(batch, seqLen int) nn.Activation
	build      func(seqLen int) []nn.Layer
}

// NewCustom defines a model. name labels it in reports; paramCount sizes
// the optimizer pass; seqLenDependent declares whether iteration work
// varies with SL (true for any SQNN); input maps (batch, seqLen) to the
// network's input activation; build returns the layer stack for an
// iteration at the given SL.
func NewCustom(
	name string,
	paramCount int,
	seqLenDependent bool,
	input func(batch, seqLen int) nn.Activation,
	build func(seqLen int) []nn.Layer,
) (*Custom, error) {
	switch {
	case name == "":
		return nil, fmt.Errorf("models: custom model needs a name")
	case paramCount <= 0:
		return nil, fmt.Errorf("models: custom model %q needs a positive parameter count", name)
	case input == nil:
		return nil, fmt.Errorf("models: custom model %q needs an input function", name)
	case build == nil:
		return nil, fmt.Errorf("models: custom model %q needs a layer builder", name)
	}
	return &Custom{
		name:       name,
		paramCount: paramCount,
		seqDep:     seqLenDependent,
		input:      input,
		build:      build,
	}, nil
}

// Name returns the model name.
func (m *Custom) Name() string { return m.name }

// SeqLenDependent reports the declared SL dependence.
func (m *Custom) SeqLenDependent() bool { return m.seqDep }

// ParamCount returns the declared trainable-parameter count.
func (m *Custom) ParamCount() int { return m.paramCount }

// IterationOps returns one training iteration's ops.
func (m *Custom) IterationOps(batch, seqLen int) []tensor.Op {
	layers := m.build(seqLen)
	ops := stackIteration(layers, m.input(batch, seqLen))
	return append(ops, optimizerOps(m.paramCount, m.name)...)
}

// EvalOps returns one forward-only pass.
func (m *Custom) EvalOps(batch, seqLen int) []tensor.Op {
	ops, _, _ := runForward(m.build(seqLen), m.input(batch, seqLen))
	return ops
}
