package models

import (
	"fmt"

	"seqpoint/internal/nn"
	"seqpoint/internal/tensor"
)

// CNN hyperparameters: a VGG-style image classifier over fixed-size
// inputs. Because every input is scaled to the same resolution, every
// iteration launches identical work — the homogeneous-iterations case
// the paper contrasts SQNNs against in Fig. 3.
const (
	CNNImageSize  = 64
	CNNClasses    = 100
	cnnParamCount = 15_000_000
)

// CNN is the fixed-input convolutional model.
type CNN struct {
	layers []nn.Layer
}

// NewCNN builds the CNN model.
func NewCNN() *CNN {
	widths := []int{64, 128, 256}
	var layers []nn.Layer
	for i, w := range widths {
		layers = append(layers,
			nn.NewConv(fmt.Sprintf("conv%d", i+1), w, 3, 3, 1, 1, 1, 1, true),
			nn.NewPool(fmt.Sprintf("pool%d", i+1), 2, 2),
		)
	}
	layers = append(layers,
		nn.NewFlattenAll("flatten"),
		nn.NewDense("fc1", 512, true),
		nn.NewDense("classifier", CNNClasses, false),
		nn.NewSoftmax("softmax"),
	)
	return &CNN{layers: layers}
}

// Name returns "cnn".
func (m *CNN) Name() string { return "cnn" }

// SeqLenDependent reports false: every CNN iteration does the same work.
func (m *CNN) SeqLenDependent() bool { return false }

// ParamCount returns the trainable-parameter count.
func (m *CNN) ParamCount() int { return cnnParamCount }

// input returns the image-batch activation; seqLen is ignored because
// images are scaled to a fixed resolution before training.
func (m *CNN) input(batch int) nn.Activation {
	return nn.Activation{Batch: batch, Time: CNNImageSize, Freq: CNNImageSize, Channels: 3}
}

// IterationOps returns one training iteration's ops. The sequence length
// argument is accepted for interface uniformity and ignored.
func (m *CNN) IterationOps(batch, _ int) []tensor.Op {
	ops := stackIteration(m.layers, m.input(batch))
	return append(ops, optimizerOps(cnnParamCount, "cnn")...)
}

// EvalOps returns one forward-only pass.
func (m *CNN) EvalOps(batch, _ int) []tensor.Op {
	ops, _, _ := runForward(m.layers, m.input(batch))
	return ops
}
