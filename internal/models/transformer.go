package models

import (
	"fmt"

	"seqpoint/internal/nn"
	"seqpoint/internal/tensor"
)

// Transformer hyperparameters: a base-sized encoder-decoder Transformer
// (Vaswani et al.), one of the attention-based networks the paper's
// Section VII-B names as benefiting from SeqPoint. Attention work is
// O(T^2), so Transformer iterations are even more sequence-length-
// sensitive than RNN ones — a stress case for the binning.
const (
	TransformerHidden    = 512
	TransformerFFN       = 2048
	TransformerEncBlocks = 6
	TransformerDecBlocks = 6
	TransformerVocab     = 32000
	transformerParams    = 65_000_000
)

// Transformer is an encoder-decoder attention model. As with GNMT, the
// iteration sequence length is the padded source length, with the
// target side padded to match.
type Transformer struct{}

// NewTransformer builds the base Transformer model.
func NewTransformer() *Transformer { return &Transformer{} }

// Name returns "transformer".
func (m *Transformer) Name() string { return "transformer" }

// SeqLenDependent reports true: attention work scales with SL squared.
func (m *Transformer) SeqLenDependent() bool { return true }

// ParamCount returns the trainable-parameter count.
func (m *Transformer) ParamCount() int { return transformerParams }

// block returns one Transformer block: self-attention over seqLen
// positions, then the position-wise feed-forward pair, each followed by
// layer normalization (post-norm, as in the original architecture).
func block(prefix string, seqLen int) []nn.Layer {
	return []nn.Layer{
		nn.NewAttention(prefix+"_selfattn", TransformerHidden, seqLen),
		nn.NewLayerNorm(prefix + "_ln1"),
		nn.NewDense(prefix+"_ffn_up", TransformerFFN, true),
		nn.NewDense(prefix+"_ffn_down", TransformerHidden, false),
		nn.NewLayerNorm(prefix + "_ln2"),
	}
}

// encoder builds the encoder stack for an iteration at seqLen.
func (m *Transformer) encoder(seqLen int) []nn.Layer {
	layers := []nn.Layer{nn.NewEmbedding("src_embed", TransformerVocab, TransformerHidden)}
	for i := 0; i < TransformerEncBlocks; i++ {
		layers = append(layers, block(fmt.Sprintf("enc_%d", i), seqLen)...)
	}
	return layers
}

// decoder builds the decoder stack: each block self-attends over the
// target and cross-attends over the encoder output.
func (m *Transformer) decoder(seqLen int) []nn.Layer {
	layers := []nn.Layer{nn.NewEmbedding("tgt_embed", TransformerVocab, TransformerHidden)}
	for i := 0; i < TransformerDecBlocks; i++ {
		prefix := fmt.Sprintf("dec_%d", i)
		layers = append(layers,
			nn.NewAttention(prefix+"_selfattn", TransformerHidden, seqLen),
			nn.NewAttention(prefix+"_crossattn", TransformerHidden, seqLen),
			nn.NewDense(prefix+"_ffn_up", TransformerFFN, true),
			nn.NewDense(prefix+"_ffn_down", TransformerHidden, false),
		)
	}
	return append(layers,
		nn.NewDense("classifier", TransformerVocab, false),
		nn.NewSoftmax("softmax"),
	)
}

// input is the embedded-token activation.
func (m *Transformer) input(batch, seqLen int) nn.Activation {
	return nn.Activation{Batch: batch, Time: seqLen, Feat: TransformerHidden}
}

// IterationOps returns one training iteration's ops.
func (m *Transformer) IterationOps(batch, seqLen int) []tensor.Op {
	in := m.input(batch, seqLen)
	enc := m.encoder(seqLen)
	dec := m.decoder(seqLen)

	encFwd, encInputs, _ := runForward(enc, in)
	decFwd, decInputs, _ := runForward(dec, in)
	bwd := append(runBackward(dec, decInputs), runBackward(enc, encInputs)...)

	ops := append(encFwd, decFwd...)
	ops = append(ops, bwd...)
	return append(ops, optimizerOps(transformerParams, m.Name())...)
}

// EvalOps returns one forward-only pass.
func (m *Transformer) EvalOps(batch, seqLen int) []tensor.Op {
	in := m.input(batch, seqLen)
	encFwd, _, _ := runForward(m.encoder(seqLen), in)
	decFwd, _, _ := runForward(m.decoder(seqLen), in)
	return append(encFwd, decFwd...)
}
