package workload

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Versioned JSON-lines trace file format, following the engine
// snapshot's discipline (internal/engine/persist.go): a magic+version
// header, deterministic output, and whole-file validation with typed
// errors before anything is returned — a torn, truncated or
// wrong-version file is rejected wholesale, never partially replayed.
//
// Layout: line 1 is the header object, then one request object per
// line in arrival order. encoding/json's shortest-round-trip float
// formatting makes the write→read→replay loop byte-exact: a replayed
// trace reproduces the in-memory run's summary bytes.

// TraceVersion is the trace file format version. Decoders reject any
// other version outright: silently reinterpreting an old file risks
// exactly the corrupted-arrival replays ErrBadTrace exists to stop.
const TraceVersion = 1

// traceMagic guards against feeding arbitrary JSON-lines files in.
const traceMagic = "seqpoint-workload-trace"

// traceHeader is the first line of a trace file.
type traceHeader struct {
	Magic    string `json:"magic"`
	Version  int    `json:"version"`
	Name     string `json:"name,omitempty"`
	Requests int    `json:"requests"`
}

// traceLine is one request line. Arrival is always emitted (zero is a
// meaningful burst arrival); the optional fields elide their zero
// values so single-tenant compute-only traces stay compact.
type traceLine struct {
	ID          int     `json:"id"`
	ArrivalUS   float64 `json:"arrival_us"`
	SeqLen      int     `json:"seqlen"`
	DecodeSteps int     `json:"decode_steps,omitempty"`
	Tenant      string  `json:"tenant,omitempty"`
}

// WriteTrace serializes the trace to w in the versioned JSON-lines
// format. The trace is validated first — a malformed trace must not
// be recordable — and the output is deterministic byte-for-byte.
func WriteTrace(w io.Writer, t Trace) error {
	if err := t.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(traceHeader{
		Magic:    traceMagic,
		Version:  TraceVersion,
		Name:     t.Name,
		Requests: len(t.Requests),
	}); err != nil {
		return fmt.Errorf("workload: writing trace header: %w", err)
	}
	for _, r := range t.Requests {
		if err := enc.Encode(traceLine{
			ID:          r.ID,
			ArrivalUS:   r.ArrivalUS,
			SeqLen:      r.SeqLen,
			DecodeSteps: r.DecodeSteps,
			Tenant:      r.Tenant,
		}); err != nil {
			return fmt.Errorf("workload: writing trace request %d: %w", r.ID, err)
		}
	}
	return bw.Flush()
}

// ReadTrace decodes a trace from r, validating the whole file before
// returning: header magic and version, per-line shape, the declared
// request count, and full Trace.Validate (so non-monotone or negative
// arrivals fail as ErrBadTrace, never replay). Every failure wraps
// ErrBadTrace.
func ReadTrace(r io.Reader) (Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return Trace{}, fmt.Errorf("%w: reading header: %v", ErrBadTrace, err)
		}
		return Trace{}, fmt.Errorf("%w: empty trace file", ErrBadTrace)
	}
	var hdr traceHeader
	if err := strictUnmarshal(sc.Bytes(), &hdr); err != nil {
		return Trace{}, fmt.Errorf("%w: malformed header: %v", ErrBadTrace, err)
	}
	if hdr.Magic != traceMagic {
		return Trace{}, fmt.Errorf("%w: not a trace file (magic %q)", ErrBadTrace, hdr.Magic)
	}
	if hdr.Version != TraceVersion {
		return Trace{}, fmt.Errorf("%w: version %d, this build reads version %d", ErrBadTrace, hdr.Version, TraceVersion)
	}
	if hdr.Requests < 0 {
		return Trace{}, fmt.Errorf("%w: header declares %d requests", ErrBadTrace, hdr.Requests)
	}
	reqs := make([]Request, 0, hdr.Requests)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var tl traceLine
		if err := strictUnmarshal(line, &tl); err != nil {
			return Trace{}, fmt.Errorf("%w: malformed request line %d: %v", ErrBadTrace, len(reqs), err)
		}
		reqs = append(reqs, Request{
			ID:          tl.ID,
			ArrivalUS:   tl.ArrivalUS,
			SeqLen:      tl.SeqLen,
			DecodeSteps: tl.DecodeSteps,
			Tenant:      tl.Tenant,
		})
	}
	if err := sc.Err(); err != nil {
		return Trace{}, fmt.Errorf("%w: reading requests: %v", ErrBadTrace, err)
	}
	if len(reqs) != hdr.Requests {
		return Trace{}, fmt.Errorf("%w: header declares %d requests but file holds %d (truncated?)",
			ErrBadTrace, hdr.Requests, len(reqs))
	}
	t := Trace{Name: hdr.Name, Requests: reqs}
	if err := t.Validate(); err != nil {
		return Trace{}, err
	}
	return t, nil
}

// strictUnmarshal decodes one JSON object rejecting unknown fields, so
// typos in hand-edited trace files fail loudly instead of silently
// zeroing a column.
func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	return nil
}

// SaveTrace writes the trace to path atomically: serialize to a
// sibling temp file, then rename into place, so a crash mid-write
// never leaves a torn trace where a valid one was expected.
func SaveTrace(path string, t Trace) error {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, t); err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("workload: saving trace: %w", err)
	}
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("workload: saving trace: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("workload: saving trace: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("workload: saving trace: %w", err)
	}
	return nil
}

// LoadTrace reads and fully validates the trace at path.
func LoadTrace(path string) (Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return Trace{}, fmt.Errorf("workload: loading trace: %w", err)
	}
	defer f.Close()
	t, err := ReadTrace(f)
	if err != nil {
		return Trace{}, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}
