package workload

import "testing"

// BenchmarkWorkloadGen generates a one-million-request diurnal
// two-cohort Zipf trace — the workload-subsystem hot path the perf
// trajectory tracks alongside the serving event loops. One iteration
// is one full generation: pattern thinning, cohort/tenant draws, and
// final whole-trace validation.
func BenchmarkWorkloadGen(b *testing.B) {
	spec := GenSpec{
		Requests:   1_000_000,
		RatePerSec: 400_000,
		Seed:       42,
		Pattern:    Pattern{Kind: PatternDiurnal, PeriodUS: 1e6, Amplitude: 0.5},
		Cohorts: []Cohort{
			{Class: "chat", Tenants: 16, Weight: 3, ZipfS: 1.1, SeqLens: []int{4, 8, 12, 16}},
			{Class: "bulk", Tenants: 4, Weight: 1, ZipfS: 0.8, SeqLens: []int{32, 40, 48}, DecodeSteps: 8, Burst: 32},
		},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := Generate(spec)
		if err != nil {
			b.Fatal(err)
		}
		if len(tr.Requests) != spec.Requests {
			b.Fatalf("generated %d requests, want %d", len(tr.Requests), spec.Requests)
		}
	}
}
