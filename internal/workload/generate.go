package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"seqpoint/internal/dataset"
)

// This file holds the trace generators. PoissonTrace, BurstTrace and
// ReplayTrace are the original single-tenant arrival processes (moved
// here from internal/serving, byte-identical for a given seed);
// Generate is the multi-tenant production-shaped generator: diurnal
// rate modulation, cohort mixes, Zipf-skewed tenant popularity and
// bulk-submission clumping, all driven by one seeded RNG.

// PoissonTrace generates n requests with exponentially distributed
// inter-arrival times at ratePerSec requests per second, each request's
// sequence length drawn uniformly from the corpus. Everything is
// seeded: the same (corpus, n, rate, seed) yields the same trace.
func PoissonTrace(c *dataset.Corpus, n int, ratePerSec float64, seed int64) (Trace, error) {
	if c == nil || c.Size() == 0 {
		return Trace{}, fmt.Errorf("workload: Poisson trace needs a non-empty corpus")
	}
	if n <= 0 {
		return Trace{}, fmt.Errorf("workload: request count must be positive, got %d", n)
	}
	if ratePerSec <= 0 || math.IsNaN(ratePerSec) || math.IsInf(ratePerSec, 0) {
		return Trace{}, fmt.Errorf("workload: arrival rate must be a positive finite rate, got %v", ratePerSec)
	}
	rng := rand.New(rand.NewSource(seed))
	reqs := make([]Request, n)
	t := 0.0
	for i := range reqs {
		t += rng.ExpFloat64() / ratePerSec * 1e6
		reqs[i] = Request{ID: i, ArrivalUS: t, SeqLen: c.Lengths[rng.Intn(c.Size())]}
	}
	return Trace{
		Name:     fmt.Sprintf("poisson(%s, %.4g rps, n=%d)", c.Name, ratePerSec, n),
		Requests: reqs,
	}, nil
}

// BurstTrace generates n requests that all arrive at time zero, with
// sequence lengths drawn uniformly from the corpus — a fully
// backlogged server. Its achieved throughput is the serving capacity
// of a (model, config, policy) triple, the normalizer load sweeps
// express arrival rates against.
func BurstTrace(c *dataset.Corpus, n int, seed int64) (Trace, error) {
	if c == nil || c.Size() == 0 {
		return Trace{}, fmt.Errorf("workload: burst trace needs a non-empty corpus")
	}
	if n <= 0 {
		return Trace{}, fmt.Errorf("workload: request count must be positive, got %d", n)
	}
	rng := rand.New(rand.NewSource(seed))
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = Request{ID: i, SeqLen: c.Lengths[rng.Intn(c.Size())]}
	}
	return Trace{Name: fmt.Sprintf("burst(%s, n=%d)", c.Name, n), Requests: reqs}, nil
}

// ReplayTrace builds a trace from explicit arrival offsets (in
// microseconds) and sequence lengths — the replayed-production-log
// arrival process. The two slices pair up element-wise.
func ReplayTrace(name string, arrivalsUS []float64, seqLens []int) (Trace, error) {
	if len(arrivalsUS) != len(seqLens) {
		return Trace{}, fmt.Errorf("workload: replay trace %q has %d arrivals but %d sequence lengths",
			name, len(arrivalsUS), len(seqLens))
	}
	reqs := make([]Request, len(arrivalsUS))
	for i := range reqs {
		reqs[i] = Request{ID: i, ArrivalUS: arrivalsUS[i], SeqLen: seqLens[i]}
	}
	tr := Trace{Name: name, Requests: reqs}
	if err := tr.Validate(); err != nil {
		return Trace{}, err
	}
	return tr, nil
}

// Arrival-pattern kinds accepted by Pattern.Kind.
const (
	// PatternUniform is a homogeneous Poisson process at the base rate.
	PatternUniform = "uniform"
	// PatternDiurnal modulates the rate sinusoidally:
	// r(t) = base · (1 + Amplitude · sin(2πt/PeriodUS + Phase)),
	// sampled by Lewis-Shedler thinning against the peak rate.
	PatternDiurnal = "diurnal"
)

// Pattern shapes the arrival process's rate over time.
type Pattern struct {
	// Kind selects the shape: PatternUniform (default when empty) or
	// PatternDiurnal.
	Kind string
	// PeriodUS is one diurnal cycle in microseconds (diurnal only).
	PeriodUS float64
	// Amplitude is the peak-to-mean rate swing in [0, 1) (diurnal
	// only): 0.5 means the rate oscillates between 0.5× and 1.5× base.
	Amplitude float64
	// Phase offsets the cycle in radians (diurnal only); 0 starts at
	// the mean rate heading into the peak.
	Phase float64
}

// Validate reports whether the pattern is usable.
func (p Pattern) Validate() error {
	switch p.Kind {
	case "", PatternUniform:
		if p.PeriodUS != 0 || p.Amplitude != 0 || p.Phase != 0 {
			return fmt.Errorf("workload: uniform pattern takes no period/amplitude/phase")
		}
		return nil
	case PatternDiurnal:
		switch {
		case p.PeriodUS <= 0 || math.IsNaN(p.PeriodUS) || math.IsInf(p.PeriodUS, 0):
			return fmt.Errorf("workload: diurnal period must be a positive finite duration, got %v", p.PeriodUS)
		case p.Amplitude < 0 || p.Amplitude >= 1 || math.IsNaN(p.Amplitude):
			return fmt.Errorf("workload: diurnal amplitude must be in [0, 1), got %v", p.Amplitude)
		case math.IsNaN(p.Phase) || math.IsInf(p.Phase, 0):
			return fmt.Errorf("workload: diurnal phase must be finite, got %v", p.Phase)
		}
		return nil
	default:
		return fmt.Errorf("workload: unknown pattern %q (want %s or %s)", p.Kind, PatternUniform, PatternDiurnal)
	}
}

// Cohort is one tenant class of a generated workload: a group of
// tenants sharing a traffic shape (interactive chat vs bulk batch
// inference, say).
type Cohort struct {
	// Class labels the cohort; tenant names are "<Class>-<i>". Empty
	// is allowed only for a single anonymous cohort with one tenant,
	// which emits untenanted requests (pattern shaping without
	// tenancy).
	Class string
	// Tenants is the number of tenants in the cohort.
	Tenants int
	// Weight is the cohort's relative share of arrival events.
	Weight float64
	// ZipfS skews tenant popularity within the cohort: tenant i is
	// drawn with weight 1/(i+1)^ZipfS. 0 means uniform.
	ZipfS float64
	// SeqLens is the pool sequence lengths are drawn uniformly from.
	SeqLens []int
	// DecodeSteps, when positive, stamps every request of the cohort
	// (meaningful under the KV model; inert otherwise).
	DecodeSteps int
	// Burst is the bulk-submission clump size: every arrival event of
	// the cohort emits Burst requests at the same instant from the
	// same tenant (0 and 1 mean no clumping). This is how batch
	// tenants starve interactive ones under FIFO batching — a clump
	// fills the queue in one tick.
	Burst int
}

// Validate reports whether the cohort is usable.
func (c Cohort) Validate() error {
	switch {
	case c.Tenants < 1:
		return fmt.Errorf("workload: cohort %q needs at least one tenant, got %d", c.Class, c.Tenants)
	case c.Class == "" && c.Tenants != 1:
		return fmt.Errorf("workload: anonymous cohort must have exactly one tenant, got %d", c.Tenants)
	case c.Weight <= 0 || math.IsNaN(c.Weight) || math.IsInf(c.Weight, 0):
		return fmt.Errorf("workload: cohort %q weight must be positive and finite, got %v", c.Class, c.Weight)
	case c.ZipfS < 0 || math.IsNaN(c.ZipfS) || math.IsInf(c.ZipfS, 0):
		return fmt.Errorf("workload: cohort %q Zipf exponent must be non-negative and finite, got %v", c.Class, c.ZipfS)
	case len(c.SeqLens) == 0:
		return fmt.Errorf("workload: cohort %q needs a sequence-length pool", c.Class)
	case c.DecodeSteps < 0:
		return fmt.Errorf("workload: cohort %q has negative decode steps %d", c.Class, c.DecodeSteps)
	case c.Burst < 0:
		return fmt.Errorf("workload: cohort %q burst must be non-negative, got %d", c.Class, c.Burst)
	}
	for _, sl := range c.SeqLens {
		if sl <= 0 {
			return fmt.Errorf("workload: cohort %q has non-positive sequence length %d", c.Class, sl)
		}
	}
	return nil
}

// GenSpec describes one generated multi-tenant workload.
type GenSpec struct {
	// Name labels the trace; empty derives one from the spec.
	Name string
	// Requests is the total request count (clumps included).
	Requests int
	// RatePerSec is the mean arrival-event rate.
	RatePerSec float64
	// Seed fixes every draw; equal specs yield equal traces.
	Seed int64
	// Pattern shapes the rate over time (zero value = uniform Poisson).
	Pattern Pattern
	// Cohorts is the tenant-class mix; at least one.
	Cohorts []Cohort
}

// Validate reports whether the spec is generable.
func (g GenSpec) Validate() error {
	if g.Requests <= 0 {
		return fmt.Errorf("workload: request count must be positive, got %d", g.Requests)
	}
	if g.RatePerSec <= 0 || math.IsNaN(g.RatePerSec) || math.IsInf(g.RatePerSec, 0) {
		return fmt.Errorf("workload: arrival rate must be a positive finite rate, got %v", g.RatePerSec)
	}
	if err := g.Pattern.Validate(); err != nil {
		return err
	}
	if len(g.Cohorts) == 0 {
		return fmt.Errorf("workload: generator needs at least one cohort")
	}
	seen := make(map[string]bool, len(g.Cohorts))
	for _, c := range g.Cohorts {
		if err := c.Validate(); err != nil {
			return err
		}
		if seen[c.Class] {
			return fmt.Errorf("workload: duplicate cohort class %q", c.Class)
		}
		seen[c.Class] = true
	}
	return nil
}

// zipfPicker draws tenant indices by inverse CDF over the cumulative
// 1/(i+1)^s weights — the seeded, allocation-free-at-draw-time Zipf
// sampler. s = 0 degenerates to uniform.
type zipfPicker struct{ cum []float64 }

func newZipfPicker(n int, s float64) zipfPicker {
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return zipfPicker{cum: cum}
}

func (z zipfPicker) pick(u float64) int {
	i := sort.SearchFloat64s(z.cum, u)
	if i >= len(z.cum) {
		i = len(z.cum) - 1
	}
	return i
}

// Generate produces a multi-tenant trace from the spec: arrival events
// follow the pattern-shaped Poisson process (diurnal via Lewis-Shedler
// thinning against the peak rate), each event picks a cohort by
// weight, a tenant within the cohort by Zipf rank, and emits the
// cohort's clump of requests with uniformly drawn sequence lengths.
// One seeded RNG drives every draw in a fixed order, so the trace is
// deterministic at any parallelism.
func Generate(spec GenSpec) (Trace, error) {
	if err := spec.Validate(); err != nil {
		return Trace{}, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))

	// Cohort CDF over weights, in spec order.
	cohortCum := make([]float64, len(spec.Cohorts))
	total := 0.0
	for i, c := range spec.Cohorts {
		total += c.Weight
		cohortCum[i] = total
	}
	for i := range cohortCum {
		cohortCum[i] /= total
	}
	tenantPickers := make([]zipfPicker, len(spec.Cohorts))
	for i, c := range spec.Cohorts {
		tenantPickers[i] = newZipfPicker(c.Tenants, c.ZipfS)
	}

	kind := spec.Pattern.Kind
	if kind == "" {
		kind = PatternUniform
	}
	// Thinning samples candidate events at the peak rate and accepts
	// each with probability r(t)/peak, yielding the non-homogeneous
	// process exactly.
	peakRate := spec.RatePerSec
	if kind == PatternDiurnal {
		peakRate = spec.RatePerSec * (1 + spec.Pattern.Amplitude)
	}

	reqs := make([]Request, 0, spec.Requests)
	t := 0.0
	for len(reqs) < spec.Requests {
		t += rng.ExpFloat64() / peakRate * 1e6
		if kind == PatternDiurnal {
			r := spec.RatePerSec * (1 + spec.Pattern.Amplitude*math.Sin(2*math.Pi*t/spec.Pattern.PeriodUS+spec.Pattern.Phase))
			if rng.Float64()*peakRate > r {
				continue
			}
		}
		ci := sort.SearchFloat64s(cohortCum, rng.Float64())
		if ci >= len(spec.Cohorts) {
			ci = len(spec.Cohorts) - 1
		}
		c := spec.Cohorts[ci]
		tenant := ""
		if c.Class != "" {
			tenant = fmt.Sprintf("%s-%d", c.Class, tenantPickers[ci].pick(rng.Float64()))
		}
		clump := c.Burst
		if clump < 1 {
			clump = 1
		}
		for k := 0; k < clump && len(reqs) < spec.Requests; k++ {
			reqs = append(reqs, Request{
				ID:          len(reqs),
				ArrivalUS:   t,
				SeqLen:      c.SeqLens[rng.Intn(len(c.SeqLens))],
				DecodeSteps: c.DecodeSteps,
				Tenant:      tenant,
			})
		}
	}

	name := spec.Name
	if name == "" {
		name = fmt.Sprintf("gen(%s, %.4g rps, n=%d, cohorts=%d)", kind, spec.RatePerSec, spec.Requests, len(spec.Cohorts))
	}
	tr := Trace{Name: name, Requests: reqs}
	if err := tr.Validate(); err != nil {
		return Trace{}, err
	}
	return tr, nil
}
