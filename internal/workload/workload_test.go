package workload

import (
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"

	"seqpoint/internal/dataset"
)

func testCorpus(t *testing.T) *dataset.Corpus {
	t.Helper()
	lengths := make([]int, 64)
	for i := range lengths {
		lengths[i] = 4 + (i*13)%48
	}
	c, err := dataset.Synthetic("test", lengths, 1000)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestValidateBadTraces is the satellite-1 regression: every malformed
// trace — non-monotone arrivals, negative arrivals, NaN, bad IDs, bad
// SLs — must fail Validate with an error wrapping ErrBadTrace.
func TestValidateBadTraces(t *testing.T) {
	cases := []struct {
		name string
		tr   Trace
		want string
	}{
		{"empty", Trace{Name: "e"}, "no requests"},
		{"bad ID", Trace{Name: "t", Requests: []Request{{ID: 3, ArrivalUS: 0, SeqLen: 8}}}, "has ID 3"},
		{"bad SL", Trace{Name: "t", Requests: []Request{{ID: 0, ArrivalUS: 0, SeqLen: 0}}}, "sequence length 0"},
		{"negative decode", Trace{Name: "t", Requests: []Request{{ID: 0, SeqLen: 8, DecodeSteps: -1}}}, "negative decode steps"},
		{"negative arrival", Trace{Name: "t", Requests: []Request{{ID: 0, ArrivalUS: -5, SeqLen: 8}}}, "invalid arrival"},
		{"NaN arrival", Trace{Name: "t", Requests: []Request{{ID: 0, ArrivalUS: math.NaN(), SeqLen: 8}}}, "invalid arrival"},
		{"Inf arrival", Trace{Name: "t", Requests: []Request{{ID: 0, ArrivalUS: math.Inf(1), SeqLen: 8}}}, "invalid arrival"},
		{"non-monotone", Trace{Name: "t", Requests: []Request{
			{ID: 0, ArrivalUS: 100, SeqLen: 8},
			{ID: 1, ArrivalUS: 50, SeqLen: 8},
		}}, "before request 0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.tr.Validate()
			if err == nil {
				t.Fatalf("Validate accepted malformed trace %+v", tc.tr)
			}
			if !errors.Is(err, ErrBadTrace) {
				t.Errorf("error %v does not wrap ErrBadTrace", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}

	good := Trace{Name: "ok", Requests: []Request{
		{ID: 0, ArrivalUS: 0, SeqLen: 8},
		{ID: 1, ArrivalUS: 0, SeqLen: 4, Tenant: "a"},
		{ID: 2, ArrivalUS: 10, SeqLen: 8, DecodeSteps: 3},
	}}
	if err := good.Validate(); err != nil {
		t.Fatalf("Validate rejected well-formed trace: %v", err)
	}
}

func TestPoissonAndBurstDeterminism(t *testing.T) {
	c := testCorpus(t)
	a, err := PoissonTrace(c, 500, 1000, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PoissonTrace(c, 500, 1000, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical Poisson specs produced different traces")
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("Poisson trace invalid: %v", err)
	}
	other, err := PoissonTrace(c, 500, 1000, 43)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, other) {
		t.Fatal("different seeds produced identical traces")
	}
	burst, err := BurstTrace(c, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range burst.Requests {
		if r.ArrivalUS != 0 {
			t.Fatalf("burst request %d arrives at %v, want 0", r.ID, r.ArrivalUS)
		}
	}
}

func TestReplayTraceRejectsBadArrivals(t *testing.T) {
	_, err := ReplayTrace("bad", []float64{0, 200, 100}, []int{8, 8, 8})
	if err == nil {
		t.Fatal("ReplayTrace accepted non-monotone arrivals")
	}
	if !errors.Is(err, ErrBadTrace) {
		t.Fatalf("error %v does not wrap ErrBadTrace", err)
	}
	_, err = ReplayTrace("bad", []float64{-1}, []int{8})
	if !errors.Is(err, ErrBadTrace) {
		t.Fatalf("negative arrival error %v does not wrap ErrBadTrace", err)
	}
}

func TestGenerateDeterministicAndShaped(t *testing.T) {
	spec := GenSpec{
		Requests:   5000,
		RatePerSec: 2000,
		Seed:       7,
		Pattern:    Pattern{Kind: PatternDiurnal, PeriodUS: 1e6, Amplitude: 0.6},
		Cohorts: []Cohort{
			{Class: "chat", Tenants: 4, Weight: 3, ZipfS: 1.1, SeqLens: []int{4, 8, 12}},
			{Class: "bulk", Tenants: 2, Weight: 1, ZipfS: 0, SeqLens: []int{40, 48}, DecodeSteps: 4, Burst: 8},
		},
	}
	a, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical specs produced different traces")
	}
	if len(a.Requests) != spec.Requests {
		t.Fatalf("generated %d requests, want %d", len(a.Requests), spec.Requests)
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("generated trace invalid: %v", err)
	}

	// Every request is tenanted with its cohort's naming scheme, SL
	// pool, and decode steps.
	counts := make(map[string]int)
	for _, r := range a.Requests {
		counts[r.Tenant]++
		switch {
		case strings.HasPrefix(r.Tenant, "chat-"):
			if r.SeqLen > 12 || r.DecodeSteps != 0 {
				t.Fatalf("chat request %d has SL %d decode %d", r.ID, r.SeqLen, r.DecodeSteps)
			}
		case strings.HasPrefix(r.Tenant, "bulk-"):
			if r.SeqLen < 40 || r.DecodeSteps != 4 {
				t.Fatalf("bulk request %d has SL %d decode %d", r.ID, r.SeqLen, r.DecodeSteps)
			}
		default:
			t.Fatalf("request %d has unexpected tenant %q", r.ID, r.Tenant)
		}
	}
	// Zipf skew: chat-0 must dominate chat-3 (weights 1 vs 1/4^1.1).
	if counts["chat-0"] <= counts["chat-3"] {
		t.Errorf("Zipf skew missing: chat-0=%d chat-3=%d", counts["chat-0"], counts["chat-3"])
	}

	// Bulk clumping: bulk requests arrive in runs sharing an instant.
	clumped := 0
	for i := 1; i < len(a.Requests); i++ {
		cur, prev := a.Requests[i], a.Requests[i-1]
		if strings.HasPrefix(cur.Tenant, "bulk-") && cur.Tenant == prev.Tenant && cur.ArrivalUS == prev.ArrivalUS {
			clumped++
		}
	}
	if clumped == 0 {
		t.Error("bulk cohort with Burst=8 produced no same-instant clumps")
	}
}

// TestGenerateDiurnalShape checks the thinning actually modulates the
// rate: with amplitude 0.9 and phase 0 the first half-period (rate up
// to 1.9×base) must hold clearly more arrivals than the second (down
// to 0.1×base).
func TestGenerateDiurnalShape(t *testing.T) {
	const period = 2e6
	tr, err := Generate(GenSpec{
		Requests:   20000,
		RatePerSec: 10000,
		Seed:       3,
		Pattern:    Pattern{Kind: PatternDiurnal, PeriodUS: period, Amplitude: 0.9},
		Cohorts:    []Cohort{{Class: "c", Tenants: 1, Weight: 1, SeqLens: []int{8}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var peak, trough int
	for _, r := range tr.Requests {
		if math.Mod(r.ArrivalUS, period) < period/2 {
			peak++
		} else {
			trough++
		}
	}
	if peak < 2*trough {
		t.Fatalf("diurnal shaping too weak: %d peak-half vs %d trough-half arrivals", peak, trough)
	}
}

func TestGenerateAnonymousCohort(t *testing.T) {
	tr, err := Generate(GenSpec{
		Requests:   100,
		RatePerSec: 1000,
		Seed:       1,
		Cohorts:    []Cohort{{Tenants: 1, Weight: 1, SeqLens: []int{8, 16}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tr.Requests {
		if r.Tenant != "" {
			t.Fatalf("anonymous cohort produced tenant %q", r.Tenant)
		}
	}
	if got := tr.Tenants(); got != nil {
		t.Fatalf("Tenants() = %v, want nil", got)
	}
}

func TestGenSpecValidation(t *testing.T) {
	base := GenSpec{
		Requests:   10,
		RatePerSec: 100,
		Cohorts:    []Cohort{{Class: "a", Tenants: 1, Weight: 1, SeqLens: []int{8}}},
	}
	bad := []func(*GenSpec){
		func(g *GenSpec) { g.Requests = 0 },
		func(g *GenSpec) { g.RatePerSec = 0 },
		func(g *GenSpec) { g.RatePerSec = math.Inf(1) },
		func(g *GenSpec) { g.Pattern = Pattern{Kind: "weekly"} },
		func(g *GenSpec) { g.Pattern = Pattern{Kind: PatternDiurnal} },
		func(g *GenSpec) { g.Pattern = Pattern{Kind: PatternDiurnal, PeriodUS: 1e6, Amplitude: 1} },
		func(g *GenSpec) { g.Pattern = Pattern{Amplitude: 0.5} },
		func(g *GenSpec) { g.Cohorts = nil },
		func(g *GenSpec) { g.Cohorts[0].Tenants = 0 },
		func(g *GenSpec) { g.Cohorts[0].Weight = -1 },
		func(g *GenSpec) { g.Cohorts[0].ZipfS = -0.5 },
		func(g *GenSpec) { g.Cohorts[0].SeqLens = nil },
		func(g *GenSpec) { g.Cohorts[0].SeqLens = []int{0} },
		func(g *GenSpec) { g.Cohorts[0].DecodeSteps = -1 },
		func(g *GenSpec) { g.Cohorts[0].Burst = -1 },
		func(g *GenSpec) { g.Cohorts[0].Class = ""; g.Cohorts[0].Tenants = 2 },
		func(g *GenSpec) {
			g.Cohorts = append(g.Cohorts, Cohort{Class: "a", Tenants: 1, Weight: 1, SeqLens: []int{4}})
		},
	}
	for i, mutate := range bad {
		g := base
		g.Cohorts = append([]Cohort(nil), base.Cohorts...)
		mutate(&g)
		if _, err := Generate(g); err == nil {
			t.Errorf("mutation %d: Generate accepted invalid spec %+v", i, g)
		}
	}
	if _, err := Generate(base); err != nil {
		t.Fatalf("Generate rejected valid base spec: %v", err)
	}
}

func TestTraceHelpers(t *testing.T) {
	tr := Trace{Name: "h", Requests: []Request{
		{ID: 0, ArrivalUS: 0, SeqLen: 8, Tenant: "b-1"},
		{ID: 1, ArrivalUS: 100, SeqLen: 4, Tenant: "a-0"},
		{ID: 2, ArrivalUS: 200, SeqLen: 8, Tenant: "b-1"},
		{ID: 3, ArrivalUS: 1e6, SeqLen: 16},
	}}
	if got, want := tr.UniqueSLs(), []int{8, 4, 16}; !reflect.DeepEqual(got, want) {
		t.Errorf("UniqueSLs() = %v, want %v", got, want)
	}
	if got, want := tr.Tenants(), []string{"b-1", "a-0"}; !reflect.DeepEqual(got, want) {
		t.Errorf("Tenants() = %v, want %v", got, want)
	}
	un := tr.Untenanted()
	for _, r := range un.Requests {
		if r.Tenant != "" {
			t.Fatalf("Untenanted left tenant %q on request %d", r.Tenant, r.ID)
		}
	}
	if tr.Requests[0].Tenant != "b-1" {
		t.Fatal("Untenanted mutated the original trace")
	}
	// 4 requests over 1 second.
	if got := tr.ImpliedRatePerSec(); math.Abs(got-4) > 1e-9 {
		t.Errorf("ImpliedRatePerSec() = %v, want 4", got)
	}
}

func TestScaleToRate(t *testing.T) {
	tr := Trace{Name: "s", Requests: []Request{
		{ID: 0, ArrivalUS: 0, SeqLen: 8},
		{ID: 1, ArrivalUS: 5e5, SeqLen: 8},
		{ID: 2, ArrivalUS: 1e6, SeqLen: 8},
	}}
	scaled, err := tr.ScaleToRate(30)
	if err != nil {
		t.Fatal(err)
	}
	if got := scaled.ImpliedRatePerSec(); math.Abs(got-30) > 1e-6 {
		t.Errorf("scaled implied rate = %v, want 30", got)
	}
	// Shape preserved: midpoint stays at half the span.
	if got, want := scaled.Requests[1].ArrivalUS, scaled.Requests[2].ArrivalUS/2; math.Abs(got-want) > 1e-6 {
		t.Errorf("midpoint arrival %v, want %v", got, want)
	}
	if tr.Requests[2].ArrivalUS != 1e6 {
		t.Fatal("ScaleToRate mutated the original trace")
	}
	if _, err := tr.ScaleToRate(0); err == nil {
		t.Error("ScaleToRate accepted rate 0")
	}
	// Zero-span (burst) traces pass through unchanged.
	burst := Trace{Name: "b", Requests: []Request{{ID: 0, SeqLen: 8}}}
	out, err := burst.ScaleToRate(10)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, burst) {
		t.Errorf("zero-span scale changed the trace: %+v", out)
	}
}
