package workload

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func genTestTrace(t *testing.T) Trace {
	t.Helper()
	tr, err := Generate(GenSpec{
		Requests:   400,
		RatePerSec: 1000,
		Seed:       11,
		Pattern:    Pattern{Kind: PatternDiurnal, PeriodUS: 2e5, Amplitude: 0.5},
		Cohorts: []Cohort{
			{Class: "chat", Tenants: 3, Weight: 2, ZipfS: 1, SeqLens: []int{4, 8}},
			{Class: "bulk", Tenants: 1, Weight: 1, SeqLens: []int{32}, DecodeSteps: 2, Burst: 4},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestTraceFileRoundTrip(t *testing.T) {
	tr := genTestTrace(t)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	// Deterministic bytes: writing twice yields identical output.
	var buf2 bytes.Buffer
	if err := WriteTrace(&buf2, tr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("WriteTrace output is not deterministic")
	}
	got, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Fatal("write→read round trip changed the trace")
	}
	// And the re-serialization of the read trace is byte-identical.
	var buf3 bytes.Buffer
	if err := WriteTrace(&buf3, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf3.Bytes()) {
		t.Fatal("read→write round trip changed the bytes")
	}
}

func TestWriteTraceRejectsMalformed(t *testing.T) {
	bad := Trace{Name: "bad", Requests: []Request{
		{ID: 0, ArrivalUS: 100, SeqLen: 8},
		{ID: 1, ArrivalUS: 50, SeqLen: 8},
	}}
	var buf bytes.Buffer
	err := WriteTrace(&buf, bad)
	if err == nil {
		t.Fatal("WriteTrace recorded a non-monotone trace")
	}
	if !errors.Is(err, ErrBadTrace) {
		t.Fatalf("error %v does not wrap ErrBadTrace", err)
	}
}

// TestReadTraceRejectsBadFiles is the trace-file half of the satellite-1
// regression: corrupt files — wrong magic, wrong version, unknown
// fields, truncation, and above all non-monotone or negative arrivals —
// must fail with ErrBadTrace, never replay.
func TestReadTraceRejectsBadFiles(t *testing.T) {
	const hdr = `{"magic":"seqpoint-workload-trace","version":1,"requests":2}`
	cases := []struct {
		name string
		file string
		want string
	}{
		{"empty", "", "empty trace file"},
		{"not JSON", "hello\n", "malformed header"},
		{"wrong magic", `{"magic":"other","version":1,"requests":0}` + "\n", "not a trace file"},
		{"wrong version", `{"magic":"seqpoint-workload-trace","version":2,"requests":0}` + "\n", "version 2"},
		{"negative count", `{"magic":"seqpoint-workload-trace","version":1,"requests":-1}` + "\n", "declares -1"},
		{"unknown header field", `{"magic":"seqpoint-workload-trace","version":1,"requests":0,"extra":1}` + "\n", "malformed header"},
		{"unknown request field", hdr + "\n" + `{"id":0,"arrival_us":0,"seqlen":8,"oops":1}` + "\n", "malformed request line"},
		{"truncated", hdr + "\n" + `{"id":0,"arrival_us":0,"seqlen":8}` + "\n", "truncated"},
		{"non-monotone", hdr + "\n" +
			`{"id":0,"arrival_us":100,"seqlen":8}` + "\n" +
			`{"id":1,"arrival_us":50,"seqlen":8}` + "\n", "before request 0"},
		{"negative arrival", hdr + "\n" +
			`{"id":0,"arrival_us":-5,"seqlen":8}` + "\n" +
			`{"id":1,"arrival_us":0,"seqlen":8}` + "\n", "invalid arrival"},
		{"bad seqlen", hdr + "\n" +
			`{"id":0,"arrival_us":0,"seqlen":0}` + "\n" +
			`{"id":1,"arrival_us":0,"seqlen":8}` + "\n", "sequence length 0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadTrace(strings.NewReader(tc.file))
			if err == nil {
				t.Fatal("ReadTrace accepted a corrupt file")
			}
			if !errors.Is(err, ErrBadTrace) {
				t.Errorf("error %v does not wrap ErrBadTrace", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestReadTraceSkipsBlankLines(t *testing.T) {
	file := `{"magic":"seqpoint-workload-trace","version":1,"name":"x","requests":1}` + "\n\n" +
		`{"id":0,"arrival_us":0,"seqlen":8,"tenant":"a"}` + "\n\n"
	tr, err := ReadTrace(strings.NewReader(file))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != "x" || len(tr.Requests) != 1 || tr.Requests[0].Tenant != "a" {
		t.Fatalf("unexpected trace %+v", tr)
	}
}

func TestSaveLoadTrace(t *testing.T) {
	tr := genTestTrace(t)
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := SaveTrace(path, tr); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Fatal("save→load round trip changed the trace")
	}
	// No temp-file litter after a successful save.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("expected 1 file in temp dir, found %d", len(entries))
	}
	if _, err := LoadTrace(filepath.Join(t.TempDir(), "missing.jsonl")); err == nil {
		t.Fatal("LoadTrace succeeded on a missing file")
	}
}
