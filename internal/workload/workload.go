// Package workload owns the arrival side of the serving simulators:
// the Request/Trace types every serving layer consumes, the seeded
// generators that produce them (Poisson, burst, replay, and the
// diurnal/cohort/Zipf multi-tenant generator), and a versioned trace
// file format so a trace recorded once replays identically through the
// CLI, /v1/serve, /v1/fleet and /v1/plan.
//
// The package exists so that "who sent this request, and when" is a
// first-class dimension rather than a raw SL list baked into the
// simulator: every Request carries an optional Tenant, and the serving
// summaries roll latency tails up per tenant. Everything here is
// deterministic — the same spec and seed yield the same trace at any
// parallelism — because the serving goldens byte-compare entire runs.
package workload

import (
	"errors"
	"fmt"
	"math"
)

// ErrBadTrace is the typed cause every trace-validation failure wraps:
// a replayed or loaded trace with non-monotone or negative arrivals
// (or any other malformation) must fail loudly instead of silently
// producing causality-violating schedules. Servers map it to the
// "bad_trace" wire code.
var ErrBadTrace = errors.New("workload: bad trace")

// Request is one inference request of an arrival trace.
type Request struct {
	// ID is the request's index in the trace (arrival order).
	ID int
	// ArrivalUS is the arrival time in microseconds from trace start.
	ArrivalUS float64
	// SeqLen is the request's input sequence length.
	SeqLen int
	// DecodeSteps is the request's decode length under the KV-cache
	// model; 0 falls back to the configured default, and the field is
	// inert with KV disabled.
	DecodeSteps int
	// Tenant identifies the request's sender for multi-tenant traces;
	// empty on single-tenant traces, where every per-tenant roll-up is
	// suppressed and runs stay byte-identical to the pre-tenant format.
	Tenant string
}

// Trace is an arrival-ordered request sequence.
type Trace struct {
	// Name labels the trace in reports.
	Name string
	// Requests are the requests in non-decreasing arrival order.
	Requests []Request
}

// Validate reports whether the trace is well-formed: non-empty, IDs in
// trace order, arrivals non-negative and non-decreasing, SLs positive.
// Every failure wraps ErrBadTrace.
func (t Trace) Validate() error {
	if len(t.Requests) == 0 {
		return fmt.Errorf("%w: trace %q has no requests", ErrBadTrace, t.Name)
	}
	prev := 0.0
	for i, r := range t.Requests {
		if r.ID != i {
			return fmt.Errorf("%w: trace %q request %d has ID %d", ErrBadTrace, t.Name, i, r.ID)
		}
		if r.SeqLen <= 0 {
			return fmt.Errorf("%w: trace %q request %d has sequence length %d", ErrBadTrace, t.Name, i, r.SeqLen)
		}
		if r.DecodeSteps < 0 {
			return fmt.Errorf("%w: trace %q request %d has negative decode steps %d", ErrBadTrace, t.Name, i, r.DecodeSteps)
		}
		if math.IsNaN(r.ArrivalUS) || math.IsInf(r.ArrivalUS, 0) || r.ArrivalUS < 0 {
			return fmt.Errorf("%w: trace %q request %d has invalid arrival %v", ErrBadTrace, t.Name, i, r.ArrivalUS)
		}
		if r.ArrivalUS < prev {
			return fmt.Errorf("%w: trace %q request %d arrives at %v, before request %d at %v",
				ErrBadTrace, t.Name, i, r.ArrivalUS, i-1, prev)
		}
		prev = r.ArrivalUS
	}
	return nil
}

// UniqueSLs returns the distinct sequence lengths of the trace in
// first-arrival order.
func (t Trace) UniqueSLs() []int {
	seen := make(map[int]bool)
	var out []int
	for _, r := range t.Requests {
		if !seen[r.SeqLen] {
			seen[r.SeqLen] = true
			out = append(out, r.SeqLen)
		}
	}
	return out
}

// Tenants returns the distinct non-empty tenant labels of the trace in
// first-arrival order; nil for single-tenant traces.
func (t Trace) Tenants() []string {
	var (
		seen map[string]bool
		out  []string
	)
	for _, r := range t.Requests {
		if r.Tenant == "" {
			continue
		}
		if seen == nil {
			seen = make(map[string]bool)
		}
		if !seen[r.Tenant] {
			seen[r.Tenant] = true
			out = append(out, r.Tenant)
		}
	}
	return out
}

// Untenanted returns a copy of the trace with every tenant label
// cleared — the single-tenant shadow of a multi-tenant trace, used by
// the strict-generalization property tests (a tenanted run must equal
// its untenanted shadow everywhere outside the per-tenant roll-ups).
func (t Trace) Untenanted() Trace {
	reqs := append([]Request(nil), t.Requests...)
	for i := range reqs {
		reqs[i].Tenant = ""
	}
	return Trace{Name: t.Name, Requests: reqs}
}

// ImpliedRatePerSec is the trace's mean offered rate over its arrival
// span: n requests over [0, last arrival]. Zero-span traces (bursts)
// report 0 — there is no meaningful rate to scale.
func (t Trace) ImpliedRatePerSec() float64 {
	n := len(t.Requests)
	if n == 0 {
		return 0
	}
	span := t.Requests[n-1].ArrivalUS
	if span <= 0 {
		return 0
	}
	return float64(n) / (span / 1e6)
}

// ScaleToRate rescales every arrival timestamp so the trace offers
// ratePerSec on average, preserving the arrival process's shape
// (diurnal peaks, clumps, tenant mix). It is how a recorded trace
// drives the capacity planner's load axis: the planner probes at many
// rates, and each probe replays the same trace compressed or dilated.
// Zero-span traces are returned unchanged.
func (t Trace) ScaleToRate(ratePerSec float64) (Trace, error) {
	if ratePerSec <= 0 || math.IsNaN(ratePerSec) || math.IsInf(ratePerSec, 0) {
		return Trace{}, fmt.Errorf("workload: scale rate must be a positive finite rate, got %v", ratePerSec)
	}
	implied := t.ImpliedRatePerSec()
	if implied == 0 {
		return t, nil
	}
	factor := implied / ratePerSec
	reqs := append([]Request(nil), t.Requests...)
	for i := range reqs {
		reqs[i].ArrivalUS *= factor
	}
	return Trace{
		Name:     fmt.Sprintf("%s @ %.4g rps", t.Name, ratePerSec),
		Requests: reqs,
	}, nil
}
