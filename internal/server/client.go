package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"seqpoint/internal/trainer"
)

// Client is a typed HTTP client for a seqpointd server. The zero value
// is not usable; build with NewClient. Methods are safe for concurrent
// use.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the server at baseURL (e.g.
// "http://127.0.0.1:8080"). httpClient may be nil for
// http.DefaultClient; pass a custom one to control transport-level
// timeouts.
func NewClient(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), hc: httpClient}
}

// Simulate runs one training-run simulation and returns its summary.
func (c *Client) Simulate(ctx context.Context, req SimulateRequest) (trainer.RunSummary, error) {
	var out trainer.RunSummary
	err := c.post(ctx, "/v1/simulate", req, &out)
	return out, err
}

// Sweep runs a (workload × config) grid and returns per-task results.
func (c *Client) Sweep(ctx context.Context, req SweepRequest) (SweepResponse, error) {
	var out SweepResponse
	err := c.post(ctx, "/v1/sweep", req, &out)
	return out, err
}

// SeqPoint simulates one run and selects representative iterations.
func (c *Client) SeqPoint(ctx context.Context, req SeqPointRequest) (SeqPointResponse, error) {
	var out SeqPointResponse
	err := c.post(ctx, "/v1/seqpoint", req, &out)
	return out, err
}

// Serve runs an online-serving simulation and returns its latency and
// throughput roll-up.
func (c *Client) Serve(ctx context.Context, req ServeRequest) (ServeResponse, error) {
	var out ServeResponse
	err := c.post(ctx, "/v1/serve", req, &out)
	return out, err
}

// Fleet runs a multi-replica serving simulation and returns its
// routing, admission and autoscaling roll-up.
func (c *Client) Fleet(ctx context.Context, req FleetRequest) (FleetResponse, error) {
	var out FleetResponse
	err := c.post(ctx, "/v1/fleet", req, &out)
	return out, err
}

// Plan solves for the minimal fleet meeting the request's SLO and
// returns the chosen plan with its saturation analysis. An SLO no
// in-bounds fleet can meet surfaces as an APIError with Status 422 and
// Code "infeasible".
func (c *Client) Plan(ctx context.Context, req PlanRequest) (PlanResponse, error) {
	var out PlanResponse
	err := c.post(ctx, "/v1/plan", req, &out)
	return out, err
}

// Stats fetches the engine cache and service counters.
func (c *Client) Stats(ctx context.Context) (StatsResponse, error) {
	var out StatsResponse
	err := c.get(ctx, "/v1/stats", &out)
	return out, err
}

// Metrics fetches the Prometheus text exposition from /metrics, raw.
// Callers feed it to a parser or scrape pipeline; the client does not
// interpret it.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", fmt.Errorf("server client: building /metrics request: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", fmt.Errorf("server client: GET /metrics: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return "", fmt.Errorf("server client: reading /metrics response: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("server client: /metrics: %w", &APIError{Status: resp.StatusCode, Message: string(bytes.TrimSpace(body))})
	}
	return string(body), nil
}

// Health reports whether the server answers its liveness probe.
func (c *Client) Health(ctx context.Context) error {
	return c.get(ctx, "/healthz", &struct {
		Status string `json:"status"`
	}{})
}

func (c *Client) post(ctx context.Context, path string, reqBody, out any) error {
	payload, err := json.Marshal(reqBody)
	if err != nil {
		return fmt.Errorf("server client: encoding %s request: %w", path, err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(payload))
	if err != nil {
		return fmt.Errorf("server client: building %s request: %w", path, err)
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req, out)
}

func (c *Client) get(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return fmt.Errorf("server client: building %s request: %w", path, err)
	}
	return c.do(req, out)
}

// APIError is a non-2xx server response: the HTTP status plus the
// server's own error body, so callers see *why* a request failed (the
// validation message behind a 400, the limiter message behind a 429,
// the timeout message behind a 504) rather than a bare status code.
// Retrieve it with errors.As to branch on Status.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Code is the server's machine-readable error code (one of the
	// Code* constants), empty when the server sent a non-JSON body.
	Code string
	// Message is the server's error body: the decoded {"error": ...}
	// payload, or the raw body when the server sent something else.
	Message string
}

// Error renders the status and the server's message.
func (e *APIError) Error() string {
	if e.Message == "" {
		return fmt.Sprintf("HTTP %d", e.Status)
	}
	return fmt.Sprintf("HTTP %d: %s", e.Status, e.Message)
}

func (c *Client) do(req *http.Request, out any) error {
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("server client: %s %s: %w", req.Method, req.URL.Path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return fmt.Errorf("server client: reading %s response: %w", req.URL.Path, err)
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		apiErr := &APIError{Status: resp.StatusCode}
		var er errorResponse
		if json.Unmarshal(body, &er) == nil && er.Error != "" {
			apiErr.Message = er.Error
			apiErr.Code = er.Code
		} else {
			apiErr.Message = string(bytes.TrimSpace(body))
		}
		return fmt.Errorf("server client: %s: %w", req.URL.Path, apiErr)
	}
	if err := json.Unmarshal(body, out); err != nil {
		return fmt.Errorf("server client: decoding %s response: %w", req.URL.Path, err)
	}
	return nil
}
