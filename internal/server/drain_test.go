package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"seqpoint/internal/engine"
)

// startBlockedCompute launches one detached computation through
// s.execute that signals once it is running, then waits for release
// before simulating req (warming the server engine's cache) and
// returning 200. It returns after the compute has provably started.
func startBlockedCompute(t *testing.T, s *Server, req SimulateRequest, release <-chan struct{}, done *sync.WaitGroup) {
	t.Helper()
	req = req.normalize()
	spec, hw, err := buildSpec(req)
	if err != nil {
		t.Fatalf("buildSpec: %v", err)
	}
	started := make(chan struct{})
	done.Add(1)
	go func() {
		defer done.Done()
		status, body := s.execute(context.Background(), coalesceKey("simulate", req), func() (int, []byte) {
			close(started)
			<-release
			if _, err := s.eng.Simulate(spec, hw); err != nil {
				return http.StatusInternalServerError, errorBody(http.StatusInternalServerError, err)
			}
			return http.StatusOK, []byte("{}\n")
		})
		if status != http.StatusOK {
			t.Errorf("in-flight compute finished with status %d: %s", status, body)
		}
	}()
	<-started
}

// TestDrainSnapshotContainsInflightWork is the drain acceptance test:
// requests are in flight when drain begins, new work is refused with
// the draining wire code, Drain joins every detached computation, and
// the cache snapshot taken afterwards contains every profile the
// in-flight requests priced — a fresh engine restored from it answers
// the same requests without a single recomputation. Finally, no
// simulation goroutine outlives the drain.
func TestDrainSnapshotContainsInflightWork(t *testing.T) {
	baseline := runtime.NumGoroutine()
	s := testServer(Options{})

	reqs := []SimulateRequest{
		{Model: "gnmt", Batch: 2, SeqLens: []int{4, 7}},
		{Model: "gnmt", Batch: 2, SeqLens: []int{5, 9, 9, 13}},
		{Model: "transformer", Batch: 2, SeqLens: []int{6, 11}},
	}
	release := make(chan struct{})
	var waiters sync.WaitGroup
	for _, req := range reqs {
		startBlockedCompute(t, s, req, release, &waiters)
	}

	// Mid-flight: begin draining. New simulations must be refused with
	// the typed draining code and counted as rejected.
	s.StartDrain()
	w := postJSON(t, s, "/v1/simulate", `{"model":"gnmt","batch":2,"seqlens":[4,7]}`)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining server accepted new work: status %d, body %s", w.Code, w.Body.String())
	}
	if er := decodeErrorBody(t, w.Body.String()); er.Code != CodeDraining {
		t.Fatalf("draining rejection code = %q, want %q", er.Code, CodeDraining)
	}
	if got := s.Stats(); !got.Draining || got.Rejected != 1 {
		t.Fatalf("draining stats = %+v, want Draining=true Rejected=1", got)
	}

	// Healthz keeps answering (liveness) but reports the drain.
	hw := httptest.NewRecorder()
	s.ServeHTTP(hw, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if !bytes.Contains(hw.Body.Bytes(), []byte("draining")) {
		t.Fatalf("healthz during drain = %s, want status draining", hw.Body.String())
	}

	// A bounded Drain with work still blocked reports the interruption.
	shortCtx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	err := s.Drain(shortCtx)
	cancel()
	if err == nil {
		t.Fatal("Drain returned nil while computations were still blocked")
	}

	close(release)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	waiters.Wait()

	st := s.Stats()
	if st.Inflight != 0 {
		t.Fatalf("inflight after drain = %d, want 0", st.Inflight)
	}
	if st.Requests != st.Completed || st.Requests != int64(len(reqs)) {
		t.Fatalf("requests=%d completed=%d after drain, want both %d", st.Requests, st.Completed, len(reqs))
	}

	// The post-drain snapshot must hold every profile the in-flight
	// requests priced: a restored engine re-answers them with zero new
	// misses.
	var snap bytes.Buffer
	if _, err := s.eng.WriteSnapshot(&snap); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	restored := engine.New()
	if _, err := restored.ReadSnapshot(&snap); err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	s2 := testServer(Options{Engine: restored})
	for i, req := range reqs {
		buf, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		if w := postJSON(t, s2, "/v1/simulate", string(buf)); w.Code != http.StatusOK {
			t.Fatalf("restored replay %d: status %d, body %s", i, w.Code, w.Body.String())
		}
	}
	if misses := restored.Stats().Misses; misses != 0 {
		t.Fatalf("restored engine recomputed %d profiles; the drain snapshot was incomplete", misses)
	}

	// No simulation goroutine outlives the drain: the goroutine count
	// settles back to (about) the pre-test baseline.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle after drain: baseline %d, now %d", baseline, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestComputePanicContained: a panic inside the detached compute
// goroutine must not kill the process, must answer waiters with a 500
// "internal" body, and must release the limiter token and inflight
// gauge so the server keeps serving.
func TestComputePanicContained(t *testing.T) {
	s := testServer(Options{MaxInflight: 1})

	status, body := s.execute(context.Background(), "panic-key", func() (int, []byte) {
		panic("seam: engine exploded")
	})
	if status != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500; body %s", status, body)
	}
	var er errorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatalf("panic body %q is not JSON: %v", body, err)
	}
	if er.Code != CodeInternal {
		t.Fatalf("panic code = %q, want %q", er.Code, CodeInternal)
	}

	// The limiter token and inflight gauge came back, so the next
	// request computes normally on the only slot.
	st := s.Stats()
	if st.Inflight != 0 || len(s.sem) != 0 {
		t.Fatalf("panic leaked state: inflight=%d sem=%d", st.Inflight, len(s.sem))
	}
	if st.Completed != 1 {
		t.Fatalf("completed = %d, want 1 (panicked computes still complete)", st.Completed)
	}
	if w := postJSON(t, s, "/v1/simulate", `{"model":"gnmt","batch":2,"seqlens":[4,7]}`); w.Code != http.StatusOK {
		t.Fatalf("server wedged after panic: status %d, body %s", w.Code, w.Body.String())
	}
}

// TestServiceCounterConsistency runs a mixed burst — ok, coalesced,
// limiter-rejected, timed-out-waiter and drain-rejected requests —
// then drains and checks the books: requests == completions, inflight
// back to zero, every rejection attributed.
func TestServiceCounterConsistency(t *testing.T) {
	s := testServer(Options{MaxInflight: 2})
	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Two ok requests, distinct keys.
	for i, body := range []string{
		`{"model":"gnmt","batch":2,"seqlens":[4,7]}`,
		`{"model":"gnmt","batch":2,"seqlens":[5,9]}`,
	} {
		if w := postJSON(t, s, "/v1/simulate", body); w.Code != http.StatusOK {
			t.Fatalf("ok request %d: status %d, body %s", i, w.Code, w.Body.String())
		}
	}

	// A coalesced pair: the leader blocks until the follower has
	// provably joined the same flight.
	release := make(chan struct{})
	started := make(chan struct{})
	var pair sync.WaitGroup
	pair.Add(2)
	go func() {
		defer pair.Done()
		if status, _ := s.execute(context.Background(), "shared-key", func() (int, []byte) {
			close(started)
			<-release
			return http.StatusOK, []byte("{}\n")
		}); status != http.StatusOK {
			t.Errorf("coalescing leader status = %d, want 200", status)
		}
	}()
	<-started
	go func() {
		defer pair.Done()
		if status, _ := s.execute(context.Background(), "shared-key", func() (int, []byte) {
			t.Error("follower computed instead of coalescing")
			return http.StatusInternalServerError, nil
		}); status != http.StatusOK {
			t.Errorf("coalesced follower status = %d, want 200", status)
		}
	}()
	waitForCounter(t, &s.coalesced, 1)

	// A limiter rejection: fill the remaining slot, then knock.
	s.sem <- struct{}{}
	if w := postJSON(t, s, "/v1/simulate", `{"model":"gnmt","batch":2,"seqlens":[6,11]}`); w.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated request: status %d, body %s", w.Code, w.Body.String())
	}
	<-s.sem
	close(release)
	pair.Wait()

	// A timed-out waiter: the handler answers 504 while the computation
	// finishes off-path and is still counted as completed.
	slow := make(chan struct{})
	slowStarted := make(chan struct{})
	ctx, cancelSlow := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancelSlow()
	status, _ := s.execute(ctx, "timeout-key", func() (int, []byte) {
		close(slowStarted)
		<-slow
		return http.StatusOK, []byte("{}\n")
	})
	if status != http.StatusGatewayTimeout {
		t.Fatalf("timed-out waiter status = %d, want 504", status)
	}
	<-slowStarted
	close(slow)

	// Drain-mode rejection, then settle.
	s.StartDrain()
	w := postJSON(t, s, "/v1/simulate", `{"model":"gnmt","batch":2,"seqlens":[4,7]}`)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("drain-mode request: status %d", w.Code)
	}
	if er := decodeErrorBody(t, w.Body.String()); er.Code != CodeDraining {
		t.Fatalf("drain-mode code = %q, want %q", er.Code, CodeDraining)
	}
	if err := s.Drain(drainCtx); err != nil {
		t.Fatalf("Drain: %v", err)
	}

	st := s.Stats()
	if st.Requests != st.Completed {
		t.Errorf("requests %d != completions %d at quiescence", st.Requests, st.Completed)
	}
	// Accepted computations: 2 ok + coalescing leader + timed-out
	// waiter's flight. The follower coalesced; two more were rejected
	// (limiter, drain).
	if st.Requests != 4 {
		t.Errorf("requests = %d, want 4 accepted computations", st.Requests)
	}
	if st.Inflight != 0 {
		t.Errorf("inflight = %d at quiescence, want 0", st.Inflight)
	}
	if st.Coalesced != 1 {
		t.Errorf("coalesced = %d, want 1", st.Coalesced)
	}
	if st.Rejected != 2 {
		t.Errorf("rejected = %d, want 2 (limiter + drain)", st.Rejected)
	}
}

// waitForCounter polls an atomic counter until it reaches want.
func waitForCounter(t *testing.T, c interface{ Load() int64 }, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for c.Load() < want {
		if time.Now().After(deadline) {
			t.Fatalf("counter stuck at %d, want %d", c.Load(), want)
		}
		time.Sleep(time.Millisecond)
	}
}
