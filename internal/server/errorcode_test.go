package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// decodeErrorBody parses a non-2xx response body into its typed form.
func decodeErrorBody(t *testing.T, body string) errorResponse {
	t.Helper()
	var er errorResponse
	if err := json.Unmarshal([]byte(body), &er); err != nil {
		t.Fatalf("error body %q is not valid JSON: %v", body, err)
	}
	if er.Error == "" {
		t.Fatalf("error body %q has an empty error message", body)
	}
	return er
}

// TestErrorCodes pins the machine-readable code on every handler
// path's failure modes: generic shape errors are bad_request, KV-model
// misconfigurations are kv_capacity, wrong methods are
// method_not_allowed, and the planner's no-solution outcome is
// infeasible.
func TestErrorCodes(t *testing.T) {
	s := testServer(Options{})
	oversized := `{"model":"` + strings.Repeat("x", maxRequestBytes) + `"}`
	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
		wantCode   string
		wantAllow  string
	}{
		{"simulate malformed body", http.MethodPost, "/v1/simulate", `not json`, http.StatusBadRequest, CodeBadRequest, ""},
		{"simulate bad model", http.MethodPost, "/v1/simulate", `{"model":"bert","batch":8,"epochs":1}`, http.StatusBadRequest, CodeBadRequest, ""},
		{"sweep empty", http.MethodPost, "/v1/sweep", `{"tasks":[]}`, http.StatusBadRequest, CodeBadRequest, ""},
		{"seqpoint bad method name", http.MethodPost, "/v1/seqpoint", `{"model":"gnmt","batch":8,"epochs":1,"method":"magic"}`, http.StatusBadRequest, CodeBadRequest, ""},
		{"serve bad rate", http.MethodPost, "/v1/serve", `{"model":"gnmt","rate":-1}`, http.StatusBadRequest, CodeBadRequest, ""},
		{"serve kv knobs without kv model", http.MethodPost, "/v1/serve", `{"model":"gnmt","rate":100,"decode_steps":8}`, http.StatusBadRequest, CodeKVCapacity, ""},
		{"serve invalid kv capacity", http.MethodPost, "/v1/serve", `{"model":"gnmt","rate":100,"kv_capacity_gb":-2}`, http.StatusBadRequest, CodeKVCapacity, ""},
		{"fleet unknown routing", http.MethodPost, "/v1/fleet", `{"model":"gnmt","rate":100,"routing":"random"}`, http.StatusBadRequest, CodeBadRequest, ""},
		{"fleet kv routing without kv model", http.MethodPost, "/v1/fleet", `{"model":"gnmt","rate":100,"routing":"kv"}`, http.StatusBadRequest, CodeKVCapacity, ""},
		{"fleet disagg without kv model", http.MethodPost, "/v1/fleet", `{"model":"gnmt","rate":100,"replicas":3,"disagg":{"prefill":1,"decode":2}}`, http.StatusBadRequest, CodeKVCapacity, ""},
		{"plan ttft without kv model", http.MethodPost, "/v1/plan", `{"model":"gnmt","rate":100,"slo":{"ttft_p99_us":5000}}`, http.StatusBadRequest, CodeKVCapacity, ""},
		{"plan infeasible", http.MethodPost, "/v1/plan", `{"model":"gnmt","rate":400,"batch":4,"requests":32,"seqlens":[4,7],"routings":["rr"],"max_replicas":2,"slo":{"latency_p99_us":1}}`, http.StatusUnprocessableEntity, CodeInfeasible, ""},
		{"simulate oversized body", http.MethodPost, "/v1/simulate", oversized, http.StatusRequestEntityTooLarge, CodeTooLarge, ""},
		{"serve oversized body", http.MethodPost, "/v1/serve", oversized, http.StatusRequestEntityTooLarge, CodeTooLarge, ""},
		{"healthz wrong method", http.MethodPost, "/healthz", ``, http.StatusMethodNotAllowed, CodeMethodNotAllowed, http.MethodGet},
		{"stats wrong method", http.MethodPost, "/v1/stats", ``, http.StatusMethodNotAllowed, CodeMethodNotAllowed, http.MethodGet},
		{"metrics wrong method", http.MethodPost, "/metrics", ``, http.StatusMethodNotAllowed, CodeMethodNotAllowed, http.MethodGet},
		{"simulate wrong method", http.MethodGet, "/v1/simulate", ``, http.StatusMethodNotAllowed, CodeMethodNotAllowed, http.MethodPost},
		{"serve wrong method", http.MethodGet, "/v1/serve", ``, http.StatusMethodNotAllowed, CodeMethodNotAllowed, http.MethodPost},
		{"fleet wrong method", http.MethodGet, "/v1/fleet", ``, http.StatusMethodNotAllowed, CodeMethodNotAllowed, http.MethodPost},
		{"plan wrong method", http.MethodGet, "/v1/plan", ``, http.StatusMethodNotAllowed, CodeMethodNotAllowed, http.MethodPost},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := httptest.NewRequest(tc.method, tc.path, strings.NewReader(tc.body))
			w := httptest.NewRecorder()
			s.ServeHTTP(w, req)
			if w.Code != tc.wantStatus {
				t.Fatalf("status = %d, want %d; body %s", w.Code, tc.wantStatus, w.Body.String())
			}
			if er := decodeErrorBody(t, w.Body.String()); er.Code != tc.wantCode {
				t.Errorf("code = %q, want %q (body %s)", er.Code, tc.wantCode, w.Body.String())
			}
			// RFC 9110: every 405 must say which method would work.
			if got := w.Header().Get("Allow"); got != tc.wantAllow {
				t.Errorf("Allow header = %q, want %q", got, tc.wantAllow)
			}
		})
	}
}

// TestErrorCodesThrottles pins the limiter and context codes, which
// need server state rather than a request shape: a saturated limiter is
// overloaded, an expired deadline is timeout, a client cancellation is
// cancelled.
func TestErrorCodesThrottles(t *testing.T) {
	body := `{"model":"gnmt","rate":300,"batch":8,"requests":16,"seqlens":[4,7]}`

	t.Run("overloaded", func(t *testing.T) {
		s := testServer(Options{MaxInflight: 1})
		s.sem <- struct{}{} // occupy the only slot
		w := postJSON(t, s, "/v1/serve", body)
		if w.Code != http.StatusTooManyRequests {
			t.Fatalf("status = %d, want 429; body %s", w.Code, w.Body.String())
		}
		if er := decodeErrorBody(t, w.Body.String()); er.Code != CodeOverloaded {
			t.Errorf("code = %q, want %q", er.Code, CodeOverloaded)
		}
	})

	t.Run("timeout", func(t *testing.T) {
		s := testServer(Options{})
		ctx, cancel := context.WithDeadline(context.Background(), time.Unix(0, 0))
		defer cancel()
		req := httptest.NewRequest(http.MethodPost, "/v1/serve", strings.NewReader(body)).WithContext(ctx)
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req)
		if w.Code != http.StatusGatewayTimeout {
			t.Fatalf("status = %d, want 504; body %s", w.Code, w.Body.String())
		}
		if er := decodeErrorBody(t, w.Body.String()); er.Code != CodeTimeout {
			t.Errorf("code = %q, want %q", er.Code, CodeTimeout)
		}
	})

	t.Run("draining", func(t *testing.T) {
		s := testServer(Options{})
		s.StartDrain()
		w := postJSON(t, s, "/v1/serve", body)
		if w.Code != http.StatusServiceUnavailable {
			t.Fatalf("status = %d, want 503; body %s", w.Code, w.Body.String())
		}
		if er := decodeErrorBody(t, w.Body.String()); er.Code != CodeDraining {
			t.Errorf("code = %q, want %q", er.Code, CodeDraining)
		}
	})

	t.Run("cancelled", func(t *testing.T) {
		s := testServer(Options{})
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		req := httptest.NewRequest(http.MethodPost, "/v1/serve", strings.NewReader(body)).WithContext(ctx)
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req)
		if w.Code != http.StatusServiceUnavailable {
			t.Fatalf("status = %d, want 503; body %s", w.Code, w.Body.String())
		}
		if er := decodeErrorBody(t, w.Body.String()); er.Code != CodeCancelled {
			t.Errorf("code = %q, want %q", er.Code, CodeCancelled)
		}
	})
}

// TestClientSurfacesCode: the typed client exposes the machine code on
// APIError for programmatic handling.
func TestClientSurfacesCode(t *testing.T) {
	ts := httptest.NewServer(testServer(Options{}))
	defer ts.Close()
	c := NewClient(ts.URL, nil)
	_, err := c.Serve(context.Background(), ServeRequest{WorkloadSpec: WorkloadSpec{Model: "gnmt", Rate: 100, DecodeSteps: 8}})
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("want *APIError, got %v", err)
	}
	if apiErr.Code != CodeKVCapacity {
		t.Errorf("code = %q, want %q", apiErr.Code, CodeKVCapacity)
	}
}

// TestClientSurfacesTooLarge: an oversized request comes back as a
// typed 413 the caller can branch on, not a mystery transport error.
func TestClientSurfacesTooLarge(t *testing.T) {
	ts := httptest.NewServer(testServer(Options{}))
	defer ts.Close()
	c := NewClient(ts.URL, nil)
	_, err := c.Simulate(context.Background(), SimulateRequest{
		Model: strings.Repeat("x", maxRequestBytes),
	})
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("want *APIError, got %v", err)
	}
	if apiErr.Status != http.StatusRequestEntityTooLarge {
		t.Errorf("status = %d, want 413", apiErr.Status)
	}
	if apiErr.Code != CodeTooLarge {
		t.Errorf("code = %q, want %q", apiErr.Code, CodeTooLarge)
	}
}
