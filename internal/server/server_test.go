package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"seqpoint/internal/engine"
)

// testSeqLens is a small fixed SL set shared by the handler tests:
// hermetic (no full corpus synthesis) and quick to profile.
var testSeqLens = []int{4, 7, 7, 9, 12, 12, 12, 15, 4, 9, 21, 21}

func testServer(opts Options) *Server {
	if opts.Engine == nil {
		opts.Engine = engine.New()
	}
	return New(opts)
}

func postJSON(t *testing.T, s *Server, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

func TestHandlerTable(t *testing.T) {
	s := testServer(Options{})
	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
		wantInBody string
		wantAllow  string
	}{
		{
			name:   "simulate ok",
			method: http.MethodPost, path: "/v1/simulate",
			body:       `{"model":"gnmt","batch":8,"seqlens":[4,7,7,9,12,12,12,15,4,9,21,21]}`,
			wantStatus: http.StatusOK,
			wantInBody: `"iterations"`,
		},
		{
			name:   "bad json",
			method: http.MethodPost, path: "/v1/simulate",
			body:       `{"model": "gnmt",`,
			wantStatus: http.StatusBadRequest,
			wantInBody: "decoding request body",
		},
		{
			name:   "unknown field",
			method: http.MethodPost, path: "/v1/simulate",
			body:       `{"model":"gnmt","bacth":8}`,
			wantStatus: http.StatusBadRequest,
			wantInBody: "decoding request body",
		},
		{
			name:   "unknown model",
			method: http.MethodPost, path: "/v1/simulate",
			body:       `{"model":"bert"}`,
			wantStatus: http.StatusBadRequest,
			wantInBody: "unknown model",
		},
		{
			name:   "missing model",
			method: http.MethodPost, path: "/v1/simulate",
			body:       `{"batch":8}`,
			wantStatus: http.StatusBadRequest,
			wantInBody: "unknown model",
		},
		{
			name:   "oversized batch",
			method: http.MethodPost, path: "/v1/simulate",
			body:       `{"model":"gnmt","batch":1000000}`,
			wantStatus: http.StatusBadRequest,
			wantInBody: "exceeds the server limit",
		},
		{
			name:   "negative batch",
			method: http.MethodPost, path: "/v1/simulate",
			body:       `{"model":"gnmt","batch":-3}`,
			wantStatus: http.StatusBadRequest,
			wantInBody: "batch must be positive",
		},
		{
			name:   "oversized epochs",
			method: http.MethodPost, path: "/v1/simulate",
			body:       `{"model":"gnmt","batch":2,"epochs":2000000000,"seqlens":[4,7]}`,
			wantStatus: http.StatusBadRequest,
			wantInBody: "exceeds the server limit",
		},
		{
			name:   "absurd seqlen",
			method: http.MethodPost, path: "/v1/simulate",
			body:       `{"model":"gnmt","batch":2,"seqlens":[4,1000000000]}`,
			wantStatus: http.StatusBadRequest,
			wantInBody: "outside",
		},
		{
			name:   "more gpus than batch",
			method: http.MethodPost, path: "/v1/simulate",
			body:       `{"model":"gnmt","batch":2,"gpus":8,"seqlens":[4,7]}`,
			wantStatus: http.StatusBadRequest,
			wantInBody: "every replica needs at least one sample",
		},
		{
			name:   "unknown config",
			method: http.MethodPost, path: "/v1/simulate",
			body:       `{"model":"gnmt","config":"#9","seqlens":[4,7]}`,
			wantStatus: http.StatusBadRequest,
			wantInBody: "unknown config",
		},
		{
			name:   "bad topology",
			method: http.MethodPost, path: "/v1/simulate",
			body:       `{"model":"gnmt","gpus":4,"topology":"torus","seqlens":[4,7]}`,
			wantStatus: http.StatusBadRequest,
			wantInBody: "unknown topology",
		},
		{
			name:   "invalid cluster overlap",
			method: http.MethodPost, path: "/v1/simulate",
			body:       `{"model":"gnmt","gpus":4,"overlap":1.5,"seqlens":[4,7]}`,
			wantStatus: http.StatusBadRequest,
			wantInBody: "overlap",
		},
		{
			name:   "method not allowed",
			method: http.MethodGet, path: "/v1/simulate",
			wantStatus: http.StatusMethodNotAllowed,
			wantInBody: "use POST",
			wantAllow:  http.MethodPost,
		},
		{
			name:   "stats wrong method",
			method: http.MethodPost, path: "/v1/stats",
			body:       `{}`,
			wantStatus: http.StatusMethodNotAllowed,
			wantInBody: "use GET",
			wantAllow:  http.MethodGet,
		},
		{
			name:   "healthz ok",
			method: http.MethodGet, path: "/healthz",
			wantStatus: http.StatusOK,
			wantInBody: `"ok"`,
		},
		{
			name:   "unknown path",
			method: http.MethodGet, path: "/v1/nope",
			wantStatus: http.StatusNotFound,
		},
		{
			name:   "seqpoint ok",
			method: http.MethodPost, path: "/v1/seqpoint",
			body:       `{"model":"gnmt","batch":4,"seqlens":[4,7,7,9,12,12,15,4,9,21],"n":3,"e":5}`,
			wantStatus: http.StatusOK,
			wantInBody: `"points"`,
		},
		{
			name:   "seqpoint unknown method",
			method: http.MethodPost, path: "/v1/seqpoint",
			body:       `{"model":"gnmt","batch":4,"seqlens":[4,7],"method":"psychic"}`,
			wantStatus: http.StatusBadRequest,
			wantInBody: "unknown method",
		},
		{
			name:   "sweep empty",
			method: http.MethodPost, path: "/v1/sweep",
			body:       `{"tasks":[]}`,
			wantStatus: http.StatusBadRequest,
			wantInBody: "at least one task",
		},
		{
			name:   "sweep bad task",
			method: http.MethodPost, path: "/v1/sweep",
			body:       `{"tasks":[{"model":"gnmt","batch":1,"seqlens":[4]},{"model":"nope"}]}`,
			wantStatus: http.StatusBadRequest,
			wantInBody: "task 1",
		},
		{
			name:   "sweep ok",
			method: http.MethodPost, path: "/v1/sweep",
			body:       `{"tasks":[{"model":"gnmt","batch":2,"seqlens":[4,7]},{"model":"gnmt","batch":2,"config":"#3","seqlens":[4,7]}]}`,
			wantStatus: http.StatusOK,
			wantInBody: `"gnmt on #3`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := httptest.NewRequest(tc.method, tc.path, strings.NewReader(tc.body))
			w := httptest.NewRecorder()
			s.ServeHTTP(w, req)
			if w.Code != tc.wantStatus {
				t.Fatalf("status %d, want %d; body: %s", w.Code, tc.wantStatus, w.Body.String())
			}
			if tc.wantInBody != "" && !strings.Contains(w.Body.String(), tc.wantInBody) {
				t.Fatalf("body %q does not contain %q", w.Body.String(), tc.wantInBody)
			}
			if ct := w.Header().Get("Content-Type"); tc.wantStatus != http.StatusNotFound && ct != "application/json" {
				t.Fatalf("Content-Type %q, want application/json", ct)
			}
			if got := w.Header().Get("Allow"); got != tc.wantAllow {
				t.Fatalf("Allow header %q, want %q", got, tc.wantAllow)
			}
		})
	}
}

func TestCancelledContext(t *testing.T) {
	s := testServer(Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodPost, "/v1/simulate",
		strings.NewReader(`{"model":"gnmt","batch":3,"seqlens":[4,7,9]}`)).WithContext(ctx)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("cancelled request: status %d, want %d; body: %s",
			w.Code, http.StatusServiceUnavailable, w.Body.String())
	}
}

func TestRequestTimeout(t *testing.T) {
	// A nanosecond budget expires before any simulation can finish, so
	// the handler must answer 504 while the flight completes off-path.
	s := testServer(Options{RequestTimeout: 1})
	w := postJSON(t, s, "/v1/simulate", `{"model":"gnmt","batch":3,"seqlens":[4,7,9]}`)
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("timed-out request: status %d, want %d; body: %s",
			w.Code, http.StatusGatewayTimeout, w.Body.String())
	}
}

func TestInflightLimiterRejects(t *testing.T) {
	s := testServer(Options{MaxInflight: 1})
	// Occupy the only slot directly: deterministic saturation without
	// timing games.
	s.sem <- struct{}{}
	defer func() { <-s.sem }()

	w := postJSON(t, s, "/v1/simulate", `{"model":"gnmt","batch":2,"seqlens":[4,7]}`)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated server: status %d, want %d; body: %s",
			w.Code, http.StatusTooManyRequests, w.Body.String())
	}
	if got := s.Stats().Rejected; got != 1 {
		t.Fatalf("rejected counter = %d, want 1", got)
	}
}

// TestRepeatServedFromCache is the acceptance check: a second identical
// request must be answered from the engine cache, observable through
// the /v1/stats hit counter, and byte-identical to the first response.
func TestRepeatServedFromCache(t *testing.T) {
	s := testServer(Options{})
	body := `{"model":"gnmt","batch":4,"seqlens":[4,7,9,12]}`

	first := postJSON(t, s, "/v1/simulate", body)
	if first.Code != http.StatusOK {
		t.Fatalf("first request failed: %s", first.Body.String())
	}
	statsAfterFirst := s.Stats()
	if statsAfterFirst.Engine.Misses == 0 {
		t.Fatal("first request computed no profiles")
	}

	second := postJSON(t, s, "/v1/simulate", body)
	if second.Code != http.StatusOK {
		t.Fatalf("second request failed: %s", second.Body.String())
	}
	statsAfterSecond := s.Stats()
	if statsAfterSecond.Engine.Hits <= statsAfterFirst.Engine.Hits {
		t.Fatalf("second identical request added no cache hits: %+v -> %+v",
			statsAfterFirst.Engine, statsAfterSecond.Engine)
	}
	if statsAfterSecond.Engine.Misses != statsAfterFirst.Engine.Misses {
		t.Fatalf("second identical request recomputed profiles: misses %d -> %d",
			statsAfterFirst.Engine.Misses, statsAfterSecond.Engine.Misses)
	}
	if first.Body.String() != second.Body.String() {
		t.Fatal("cached response differs from computed response")
	}
}

func TestStatsEndpointShape(t *testing.T) {
	s := testServer(Options{MaxInflight: 7})
	if w := postJSON(t, s, "/v1/simulate", `{"model":"gnmt","batch":2,"seqlens":[4,7]}`); w.Code != http.StatusOK {
		t.Fatalf("simulate: %s", w.Body.String())
	}
	req := httptest.NewRequest(http.MethodGet, "/v1/stats", nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	var resp StatsResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding stats: %v", err)
	}
	if resp.MaxInflight != 7 || resp.Requests != 1 || resp.Engine.Entries == 0 {
		t.Fatalf("unexpected stats: %+v", resp)
	}
}
