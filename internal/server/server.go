// Package server exposes the concurrent simulation engine over
// HTTP/JSON: the long-running form of SeqPoint's what-if queries. One
// seqpointd process amortizes the engine's profile cache across every
// request (and, with cache persistence, across restarts), so the
// expensive part of a query — pricing each unique (model, config,
// batch, SL) profile — happens once per key for the lifetime of the
// deployment.
//
// Endpoints:
//
//	POST /v1/simulate  — one training-run simulation → RunSummary JSON
//	POST /v1/sweep     — a (workload × config) grid → per-task results
//	POST /v1/seqpoint  — representative-iteration selection
//	POST /v1/serve     — online-serving simulation → latency percentiles
//	POST /v1/fleet     — multi-replica fleet simulation → routing/drop/scaling roll-up
//	POST /v1/plan      — SLO-driven capacity planning → minimal-cost fleet plan
//	GET  /healthz      — liveness probe
//	GET  /v1/stats     — engine cache + service counters
//	GET  /metrics      — Prometheus text-format metrics
//
// Three throttles protect the process: a bounded in-flight limiter
// (excess simulation requests get 429 instead of queueing unboundedly),
// a per-request timeout with context cancellation, and request
// coalescing — identical concurrent queries share one computation and
// one response, stacking on top of the engine's per-profile
// singleflight underneath.
//
// For operability the server also supports graceful drain: StartDrain
// flips it into a mode where new simulations are rejected with 503
// (code "draining") while in-flight ones run to completion, and
// Drain waits — bounded by its context — for every detached
// computation to finish, so a shutdown cache snapshot provably
// contains every profile priced by in-flight work.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"seqpoint/internal/core"
	"seqpoint/internal/engine"
)

// Defaults for Options fields left zero.
const (
	DefaultMaxInflight    = 32
	DefaultRequestTimeout = 2 * time.Minute
	DefaultMaxBatch       = 4096
	DefaultMaxSweepTasks  = 256
	DefaultMaxEpochs      = 1000
)

// Hard request-shape bounds. Simulations cannot be cancelled once
// started (they run to completion to warm the cache), so anything that
// scales a request's work or memory super-linearly must be capped
// before it reaches the engine.
const (
	// maxRequestBytes caps a request body before JSON decoding touches
	// it; large sweeps fit in a fraction of this.
	maxRequestBytes = 8 << 20
	// maxSeqLen caps one synthetic sequence length: op-stream size grows
	// with SL, and the paper's corpora top out around a few thousand.
	maxSeqLen = 100000
	// maxSeqLens caps the synthetic-corpus sample count.
	maxSeqLens = 65536
)

// Options configures a Server; the zero value is fully usable.
type Options struct {
	// Engine is the simulation engine to serve; nil uses the shared
	// process-wide engine.
	Engine *engine.Engine
	// MaxInflight bounds concurrently executing simulation requests;
	// beyond it new work is rejected with 429. <= 0 uses
	// DefaultMaxInflight.
	MaxInflight int
	// RequestTimeout bounds one request's wall-clock time; <= 0 uses
	// DefaultRequestTimeout.
	RequestTimeout time.Duration
	// MaxBatch rejects absurd minibatch sizes before they allocate; <= 0
	// uses DefaultMaxBatch.
	MaxBatch int
	// MaxSweepTasks bounds one sweep request's grid size; <= 0 uses
	// DefaultMaxSweepTasks.
	MaxSweepTasks int
	// MaxEpochs bounds one request's simulated epoch count; <= 0 uses
	// DefaultMaxEpochs.
	MaxEpochs int
}

func (o Options) withDefaults() Options {
	if o.Engine == nil {
		o.Engine = engine.Shared()
	}
	if o.MaxInflight <= 0 {
		o.MaxInflight = DefaultMaxInflight
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = DefaultRequestTimeout
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = DefaultMaxBatch
	}
	if o.MaxSweepTasks <= 0 {
		o.MaxSweepTasks = DefaultMaxSweepTasks
	}
	if o.MaxEpochs <= 0 {
		o.MaxEpochs = DefaultMaxEpochs
	}
	return o
}

// flight is one in-progress computation shared by coalesced requests.
type flight struct {
	done   chan struct{}
	status int
	body   []byte
}

// Server serves the engine over HTTP. Build with New; a Server is an
// http.Handler safe for concurrent use.
type Server struct {
	opts Options
	eng  *engine.Engine
	mux  *http.ServeMux

	// sem is the in-flight limiter: one token per executing simulation.
	sem chan struct{}

	flightMu sync.Mutex
	flights  map[string]*flight

	requests  atomic.Int64
	coalesced atomic.Int64
	rejected  atomic.Int64
	inflight  atomic.Int64
	completed atomic.Int64

	// draining rejects new simulations while computeWG tracks the
	// detached ones still running; together they implement Drain.
	draining  atomic.Bool
	computeWG sync.WaitGroup

	metrics *metricsState
	// now is the clock, swappable by tests (latency observation and
	// snapshot age both read it).
	now func() time.Time
}

// New builds a Server over opts.Engine.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts:    opts,
		eng:     opts.Engine,
		mux:     http.NewServeMux(),
		sem:     make(chan struct{}, opts.MaxInflight),
		flights: make(map[string]*flight),
		now:     time.Now,
	}
	routes := []struct {
		path string
		h    http.HandlerFunc
	}{
		{"/healthz", s.handleHealthz},
		{"/v1/stats", s.handleStats},
		{"/metrics", s.handleMetrics},
		{"/v1/simulate", s.handleSimulate},
		{"/v1/sweep", s.handleSweep},
		{"/v1/seqpoint", s.handleSeqPoint},
		{"/v1/serve", s.handleServe},
		{"/v1/fleet", s.handleFleet},
		{"/v1/plan", s.handlePlan},
	}
	paths := make([]string, len(routes))
	for i, rt := range routes {
		s.mux.HandleFunc(rt.path, rt.h)
		paths[i] = rt.path
	}
	s.metrics = newMetricsState(paths)
	return s
}

// Engine returns the engine the server simulates on.
func (s *Server) Engine() *engine.Engine { return s.eng }

// ServeHTTP implements http.Handler. Every registered route passes
// through the metrics middleware, so per-endpoint request counts and
// latency histograms cover each handler uniformly.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	em := s.metrics.endpoint(r.URL.Path)
	if em == nil {
		s.mux.ServeHTTP(w, r)
		return
	}
	start := s.now()
	sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
	s.mux.ServeHTTP(sw, r)
	em.observe(sw.status, s.now().Sub(start).Seconds())
}

// StartDrain flips the server into drain mode: every subsequent
// simulation request is rejected with 503 and wire code "draining"
// (counted as rejected), while already-running computations continue.
// Drain mode is one-way; a draining server is shutting down.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Draining reports whether the server is in drain mode.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain enters drain mode and waits for every detached computation to
// finish, bounded by ctx. After a nil return the server is quiescent:
// no simulation goroutine is running, so an engine cache snapshot
// taken now contains every profile priced by in-flight work.
func (s *Server) Drain(ctx context.Context) error {
	s.StartDrain()
	done := make(chan struct{})
	go func() {
		s.computeWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("drain interrupted with %d simulations still in flight: %w",
			s.inflight.Load(), ctx.Err())
	}
}

// Stats snapshots the service and engine counters.
func (s *Server) Stats() StatsResponse {
	return StatsResponse{
		Engine:      s.eng.Stats(),
		Requests:    s.requests.Load(),
		Completed:   s.completed.Load(),
		Coalesced:   s.coalesced.Load(),
		Rejected:    s.rejected.Load(),
		Inflight:    s.inflight.Load(),
		MaxInflight: s.opts.MaxInflight,
		Draining:    s.draining.Load(),
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeMethodNotAllowed(w, http.MethodGet, r.Method)
		return
	}
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": status})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeMethodNotAllowed(w, http.MethodGet, r.Method)
		return
	}
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req SimulateRequest
	if !s.decodePost(w, r, &req) {
		return
	}
	req = req.normalize()
	if err := s.validate(req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	spec, hw, err := buildSpec(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	status, body := s.execute(r.Context(), coalesceKey("simulate", req), func() (int, []byte) {
		run, err := s.eng.Simulate(spec, hw)
		if err != nil {
			return http.StatusInternalServerError, errorBody(http.StatusInternalServerError, err)
		}
		buf, err := run.Summary().Serialize()
		if err != nil {
			return http.StatusInternalServerError, errorBody(http.StatusInternalServerError, err)
		}
		return http.StatusOK, buf
	})
	writeRaw(w, status, body)
}

func (s *Server) handleSeqPoint(w http.ResponseWriter, r *http.Request) {
	var req SeqPointRequest
	if !s.decodePost(w, r, &req) {
		return
	}
	req.SimulateRequest = req.SimulateRequest.normalize()
	if err := s.validate(req.SimulateRequest); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	method := req.Method
	if method == "" {
		method = "seqpoint"
	}
	var selectFn func([]core.SLRecord) (core.Selection, error)
	switch method {
	case "seqpoint":
		opts := core.Options{
			MaxUniqueNoBinning: req.MaxUniqueNoBinning,
			InitialBins:        req.InitialBins,
			ErrorThresholdPct:  req.ErrorThresholdPct,
		}
		selectFn = func(recs []core.SLRecord) (core.Selection, error) { return core.Select(recs, opts) }
	case "frequent":
		selectFn = core.Frequent
	case "median":
		selectFn = core.Median
	case "worst":
		selectFn = core.Worst
	default:
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("unknown method %q (want seqpoint, frequent, median or worst)", req.Method))
		return
	}
	spec, hw, err := buildSpec(req.SimulateRequest)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	status, body := s.execute(r.Context(), coalesceKey("seqpoint", req), func() (int, []byte) {
		run, err := s.eng.Simulate(spec, hw)
		if err != nil {
			return http.StatusInternalServerError, errorBody(http.StatusInternalServerError, err)
		}
		sum, err := run.EpochSummary(0)
		if err != nil {
			return http.StatusInternalServerError, errorBody(http.StatusInternalServerError, err)
		}
		recs := make([]core.SLRecord, len(sum))
		for i, sl := range sum {
			recs[i] = core.SLRecord{SeqLen: sl.SeqLen, Freq: sl.Count, Stat: sl.IterTimeUS}
		}
		sel, err := selectFn(recs)
		if err != nil {
			return http.StatusInternalServerError, errorBody(http.StatusInternalServerError, err)
		}
		resp := SeqPointResponse{
			Model:     req.Model,
			Config:    req.Config,
			Method:    method,
			UniqueSLs: len(recs),
			Bins:      sel.Bins,
			Binned:    sel.Binned,
			ErrorPct:  sel.ErrorPct,
			Points:    make([]SeqPointResult, len(sel.Points)),
		}
		for i, p := range sel.Points {
			resp.Points[i] = SeqPointResult{SeqLen: p.SeqLen, Weight: p.Weight, IterTimeUS: p.Stat}
		}
		return http.StatusOK, marshalBody(resp)
	})
	writeRaw(w, status, body)
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if !s.decodePost(w, r, &req) {
		return
	}
	if len(req.Tasks) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("sweep needs at least one task"))
		return
	}
	if len(req.Tasks) > s.opts.MaxSweepTasks {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("sweep of %d tasks exceeds the %d-task limit", len(req.Tasks), s.opts.MaxSweepTasks))
		return
	}
	tasks := make([]engine.SweepTask, len(req.Tasks))
	for i, tr := range req.Tasks {
		tr = tr.normalize()
		req.Tasks[i] = tr
		if err := s.validate(tr); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("task %d: %w", i, err))
			return
		}
		spec, hw, err := buildSpec(tr)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("task %d: %w", i, err))
			return
		}
		tasks[i] = engine.SweepTask{Name: taskName(tr), Spec: spec, Config: hw}
	}

	// A sweep occupies one limiter slot regardless of its internal
	// parallelism; the engine's own pool bounds the real fan-out.
	status, body := s.execute(r.Context(), coalesceKey("sweep", req), func() (int, []byte) {
		results := s.eng.Sweep(context.Background(), tasks, req.Parallelism)
		resp := SweepResponse{Results: make([]SweepTaskResult, len(results))}
		for i, res := range results {
			out := SweepTaskResult{Name: res.Task.Name}
			if res.Err != nil {
				out.Error = res.Err.Error()
			} else {
				sum := res.Run.Summary()
				out.Summary = &sum
			}
			resp.Results[i] = out
		}
		return http.StatusOK, marshalBody(resp)
	})
	writeRaw(w, status, body)
}

// decodePost enforces the POST method and strict JSON decoding; it
// writes the error response itself and reports whether to continue.
// Bodies over the server's byte limit are a distinct failure mode —
// 413 with wire code "too_large" — so clients can tell "shrink the
// request" apart from "fix the request".
func (s *Server) decodePost(w http.ResponseWriter, r *http.Request, dst any) bool {
	if r.Method != http.MethodPost {
		writeMethodNotAllowed(w, http.MethodPost, r.Method)
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds the %d-byte limit", mbe.Limit))
			return false
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request body: %w", err))
		return false
	}
	return true
}

// batchBounds applies the minibatch limits shared by every endpoint.
func (s *Server) batchBounds(batch int) error {
	if batch <= 0 {
		return fmt.Errorf("batch must be positive, got %d", batch)
	}
	if batch > s.opts.MaxBatch {
		return fmt.Errorf("batch %d exceeds the server limit %d", batch, s.opts.MaxBatch)
	}
	return nil
}

// seqLenBounds applies the synthetic-SL-pool limits shared by every
// endpoint that accepts a seqlens list.
func seqLenBounds(seqLens []int) error {
	if len(seqLens) > maxSeqLens {
		return fmt.Errorf("seqlens provides %d samples, more than the %d-sample limit", len(seqLens), maxSeqLens)
	}
	for _, sl := range seqLens {
		if sl <= 0 || sl > maxSeqLen {
			return fmt.Errorf("sequence length %d outside (0, %d]", sl, maxSeqLen)
		}
	}
	return nil
}

// validate applies the server's request-shape limits.
func (s *Server) validate(r SimulateRequest) error {
	if err := s.batchBounds(r.Batch); err != nil {
		return err
	}
	switch {
	case r.Epochs <= 0:
		return fmt.Errorf("epochs must be positive, got %d", r.Epochs)
	case r.Epochs > s.opts.MaxEpochs:
		return fmt.Errorf("epochs %d exceeds the server limit %d", r.Epochs, s.opts.MaxEpochs)
	case r.GPUs > r.Batch:
		return fmt.Errorf("gpus %d exceeds batch %d: every replica needs at least one sample", r.GPUs, r.Batch)
	}
	return seqLenBounds(r.SeqLens)
}

// coalesceKey canonicalizes a normalized request as the coalescing
// identity: endpoint + deterministic JSON of every request field.
func coalesceKey(endpoint string, req any) string {
	b, err := json.Marshal(req)
	if err != nil {
		// Requests are plain data structs; marshal cannot fail. Fall
		// back to never-coalesce rather than panicking.
		return fmt.Sprintf("%s|unkeyed|%p", endpoint, req)
	}
	return endpoint + "|" + string(b)
}

// execute runs compute under the server's three throttles: coalescing
// (an identical in-flight request shares its response), the bounded
// in-flight limiter (429 when saturated) and the per-request timeout.
// The computation itself is not abandoned on timeout — it finishes and
// populates the flight so later identical requests still benefit — but
// the waiting handler returns as soon as its context is done.
func (s *Server) execute(ctx context.Context, key string, compute func() (int, []byte)) (int, []byte) {
	if s.draining.Load() {
		// Draining: the process is shutting down, so no new simulation
		// may start (it could outlive the final cache snapshot). Counted
		// as rejected, like the limiter's 429.
		s.rejected.Add(1)
		status := http.StatusServiceUnavailable
		return status, errorBody(status, withCode(CodeDraining,
			errors.New("server is draining for shutdown; retry against another instance")))
	}

	ctx, cancel := context.WithTimeout(ctx, s.opts.RequestTimeout)
	defer cancel()

	s.flightMu.Lock()
	if f, ok := s.flights[key]; ok {
		s.flightMu.Unlock()
		s.coalesced.Add(1)
		select {
		case <-f.done:
			return f.status, f.body
		case <-ctx.Done():
			status := statusForContext(ctx.Err())
			return status, errorBody(status, ctx.Err())
		}
	}
	f := &flight{done: make(chan struct{})}
	s.flights[key] = f
	s.flightMu.Unlock()

	finish := func(status int, body []byte) {
		f.status, f.body = status, body
		s.flightMu.Lock()
		delete(s.flights, key)
		s.flightMu.Unlock()
		close(f.done)
	}

	select {
	case s.sem <- struct{}{}:
	default:
		// Saturated: reject this flight; coalesced followers (if any
		// raced in) receive the same 429.
		s.rejected.Add(1)
		finish(http.StatusTooManyRequests, errorBody(http.StatusTooManyRequests,
			fmt.Errorf("server at max in-flight simulations (%d); retry later", s.opts.MaxInflight)))
		return f.status, f.body
	}
	if err := ctx.Err(); err != nil {
		// The request was already cancelled before any work started.
		<-s.sem
		status := statusForContext(err)
		finish(status, errorBody(status, err))
		return f.status, f.body
	}

	s.requests.Add(1)
	s.inflight.Add(1)
	s.computeWG.Add(1)
	go func() {
		// The goroutine is detached from the handler (a timed-out waiter
		// returns while the computation finishes and warms the cache), so
		// a panicking simulation must be contained here: waiters get a
		// 500, the limiter token and inflight gauge are released, and the
		// daemon lives on. Deferred LIFO: recover + finish first, then
		// the semaphore token, then the drain join.
		defer s.computeWG.Done()
		defer func() { <-s.sem }()
		defer func() {
			s.inflight.Add(-1)
			s.completed.Add(1)
			if p := recover(); p != nil {
				status := http.StatusInternalServerError
				finish(status, errorBody(status, fmt.Errorf("simulation panicked: %v", p)))
			}
		}()
		status, body := compute()
		finish(status, body)
	}()

	select {
	case <-f.done:
		return f.status, f.body
	case <-ctx.Done():
		status := statusForContext(ctx.Err())
		return status, errorBody(status, ctx.Err())
	}
}

// statusForContext maps a context error to a response status: timeouts
// are 504, client cancellations 503.
func statusForContext(err error) int {
	if errors.Is(err, context.DeadlineExceeded) {
		return http.StatusGatewayTimeout
	}
	return http.StatusServiceUnavailable
}

func marshalBody(v any) []byte {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return errorBody(http.StatusInternalServerError, err)
	}
	return append(b, '\n')
}

// codedError carries a machine-readable code that overrides the
// status-derived default; attach one with withCode where the status
// alone is too coarse (e.g. KV-model misconfigurations are 400s, but
// clients want to distinguish them from generic shape errors).
type codedError struct {
	code string
	err  error
}

func (e *codedError) Error() string { return e.err.Error() }
func (e *codedError) Unwrap() error { return e.err }

func withCode(code string, err error) error {
	return &codedError{code: code, err: err}
}

// errorCode resolves the machine-readable code for a non-2xx response:
// an explicit withCode wins, otherwise the status maps to its generic
// code.
func errorCode(status int, err error) string {
	var ce *codedError
	if errors.As(err, &ce) {
		return ce.code
	}
	switch status {
	case http.StatusBadRequest:
		return CodeBadRequest
	case http.StatusMethodNotAllowed:
		return CodeMethodNotAllowed
	case http.StatusRequestEntityTooLarge:
		return CodeTooLarge
	case http.StatusUnprocessableEntity:
		return CodeInfeasible
	case http.StatusTooManyRequests:
		return CodeOverloaded
	case http.StatusServiceUnavailable:
		return CodeCancelled
	case http.StatusGatewayTimeout:
		return CodeTimeout
	default:
		return CodeInternal
	}
}

func errorBody(status int, err error) []byte {
	return marshalErr(errorResponse{Error: err.Error(), Code: errorCode(status, err)})
}

func marshalErr(v errorResponse) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		return []byte(`{"error":"internal encoding failure","code":"internal"}` + "\n")
	}
	return append(b, '\n')
}

func writeRaw(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeRaw(w, status, errorBody(status, err))
}

// writeMethodNotAllowed writes the 405 response with the
// RFC-9110-required Allow header naming the one method the endpoint
// accepts.
func writeMethodNotAllowed(w http.ResponseWriter, allow, method string) {
	w.Header().Set("Allow", allow)
	writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed; use %s", method, allow))
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	writeRaw(w, status, marshalBody(v))
}
