package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestServeHandlerTable(t *testing.T) {
	s := testServer(Options{})
	cases := []struct {
		name       string
		body       string
		wantStatus int
		wantInBody string
	}{
		{
			name:       "serve ok",
			body:       `{"model":"gnmt","rate":200,"batch":8,"requests":64,"seqlens":[4,7,9,12,15,21]}`,
			wantStatus: http.StatusOK,
			wantInBody: `"p99_latency_us"`,
		},
		{
			name:       "fixed policy ok",
			body:       `{"model":"gnmt","rate":500,"batch":4,"policy":"fixed","requests":32,"seqlens":[4,7,9]}`,
			wantStatus: http.StatusOK,
			wantInBody: `"policy": "fixed(4)"`,
		},
		{
			name:       "length policy ok",
			body:       `{"model":"gnmt","rate":500,"batch":4,"policy":"length","requests":32,"seqlens":[4,7,9]}`,
			wantStatus: http.StatusOK,
			wantInBody: `"policy": "length(4)"`,
		},
		{
			name:       "missing rate",
			body:       `{"model":"gnmt"}`,
			wantStatus: http.StatusBadRequest,
			wantInBody: "rate must be in",
		},
		{
			name:       "unknown model",
			body:       `{"model":"bert","rate":100}`,
			wantStatus: http.StatusBadRequest,
			wantInBody: "unknown model",
		},
		{
			name:       "cnn not served, explanation surfaced",
			body:       `{"model":"cnn","rate":100}`,
			wantStatus: http.StatusBadRequest,
			wantInBody: "training/characterization only",
		},
		{
			// Regression: a denormal-small rate overflows arrival times
			// to +Inf; that is the client's fault (400), not a 500.
			name:       "degenerate rate rejected as client error",
			body:       `{"model":"gnmt","rate":5e-306,"requests":16,"seqlens":[4,7,9]}`,
			wantStatus: http.StatusBadRequest,
			wantInBody: "invalid arrival",
		},
		{
			name:       "unknown policy",
			body:       `{"model":"gnmt","rate":100,"policy":"magic"}`,
			wantStatus: http.StatusBadRequest,
			wantInBody: "unknown policy",
		},
		{
			name:       "oversized trace",
			body:       `{"model":"gnmt","rate":100,"requests":1000000}`,
			wantStatus: http.StatusBadRequest,
			wantInBody: "request limit",
		},
		{
			name: "oversized seqlens pool",
			body: func() string {
				var sb strings.Builder
				sb.WriteString(`{"model":"gnmt","rate":100,"seqlens":[`)
				for i := 0; i < 65537; i++ {
					if i > 0 {
						sb.WriteString(",")
					}
					sb.WriteString("7")
				}
				sb.WriteString("]}")
				return sb.String()
			}(),
			wantStatus: http.StatusBadRequest,
			wantInBody: "sample limit",
		},
		{
			name:       "negative timeout",
			body:       `{"model":"gnmt","rate":100,"timeout_us":-5}`,
			wantStatus: http.StatusBadRequest,
			wantInBody: "timeout_us",
		},
		{
			// Regression: an explicit zero timeout must reach the policy
			// (serve-immediately), not be swallowed by the default.
			name:       "explicit zero timeout honored",
			body:       `{"model":"gnmt","rate":500,"batch":4,"timeout_us":0,"requests":16,"seqlens":[4,7,9]}`,
			wantStatus: http.StatusOK,
			wantInBody: `"policy": "dynamic(4,0us)"`,
		},
		{
			name:       "bad seqlen",
			body:       `{"model":"gnmt","rate":100,"seqlens":[4,0]}`,
			wantStatus: http.StatusBadRequest,
			wantInBody: "sequence length",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := postJSON(t, s, "/v1/serve", tc.body)
			if w.Code != tc.wantStatus {
				t.Fatalf("status = %d, want %d; body %s", w.Code, tc.wantStatus, w.Body.String())
			}
			if !strings.Contains(w.Body.String(), tc.wantInBody) {
				t.Errorf("body %s missing %q", w.Body.String(), tc.wantInBody)
			}
		})
	}
}

func TestServeGetMethodNotAllowed(t *testing.T) {
	s := testServer(Options{})
	req := httptest.NewRequest(http.MethodGet, "/v1/serve", nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/serve = %d, want 405", w.Code)
	}
}

// TestServeDeterministicAcrossRequests: the same serve request must
// produce byte-identical bodies on repeat — the wire-level face of the
// simulator's determinism promise.
func TestServeDeterministicAcrossRequests(t *testing.T) {
	s := testServer(Options{})
	body := `{"model":"gnmt","rate":300,"batch":8,"requests":48,"seqlens":[4,7,9,12,15,21]}`
	first := postJSON(t, s, "/v1/serve", body)
	if first.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", first.Code, first.Body.String())
	}
	second := postJSON(t, s, "/v1/serve", body)
	if first.Body.String() != second.Body.String() {
		t.Errorf("repeat serve differs:\n%s\nvs\n%s", first.Body.String(), second.Body.String())
	}
}

// TestServeClientRoundTrip drives /v1/serve through the typed client
// and sanity-checks the roll-up.
func TestServeClientRoundTrip(t *testing.T) {
	ts := httptest.NewServer(testServer(Options{}))
	defer ts.Close()
	c := NewClient(ts.URL, nil)

	resp, err := c.Serve(context.Background(), ServeRequest{WorkloadSpec: WorkloadSpec{
		Model:    "gnmt",
		Rate:     400,
		Batch:    8,
		Requests: 64,
		SeqLens:  []int{4, 7, 9, 12, 15, 21},
	}})
	if err != nil {
		t.Fatal(err)
	}
	sum := resp.Summary
	if sum.Requests != 64 {
		t.Errorf("requests = %d, want 64", sum.Requests)
	}
	if sum.ThroughputRPS <= 0 || sum.P99LatencyUS <= 0 {
		t.Errorf("degenerate summary: %+v", sum)
	}
	if sum.P50LatencyUS > sum.P99LatencyUS {
		t.Errorf("p50 %v > p99 %v", sum.P50LatencyUS, sum.P99LatencyUS)
	}
	// The response must round-trip as the documented shape.
	var echo ServeResponse
	raw, _ := json.Marshal(resp)
	if err := json.Unmarshal(raw, &echo); err != nil {
		t.Fatal(err)
	}
	if echo.Model != "gnmt" || echo.RatePerSec != 400 {
		t.Errorf("round-trip lost fields: %+v", echo)
	}
}
