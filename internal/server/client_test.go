package server

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestClientSurfacesErrorBodies is the regression table for non-2xx
// handling: whatever status the server answers with, the client's
// error must carry the server's error body — the validation message,
// the limiter message, the timeout message — not just the code.
func TestClientSurfacesErrorBodies(t *testing.T) {
	cases := []struct {
		name     string
		status   int
		body     string
		wantMsg  string
		wantCode int
	}{
		{
			name:     "400 validation",
			status:   http.StatusBadRequest,
			body:     `{"error":"batch must be positive, got -3"}`,
			wantMsg:  "batch must be positive, got -3",
			wantCode: http.StatusBadRequest,
		},
		{
			name:     "429 limiter",
			status:   http.StatusTooManyRequests,
			body:     `{"error":"server at max in-flight simulations (32); retry later"}`,
			wantMsg:  "server at max in-flight simulations (32); retry later",
			wantCode: http.StatusTooManyRequests,
		},
		{
			name:     "504 timeout",
			status:   http.StatusGatewayTimeout,
			body:     `{"error":"context deadline exceeded"}`,
			wantMsg:  "context deadline exceeded",
			wantCode: http.StatusGatewayTimeout,
		},
		{
			name:     "non-JSON body still surfaces",
			status:   http.StatusBadGateway,
			body:     "upstream proxy fell over",
			wantMsg:  "upstream proxy fell over",
			wantCode: http.StatusBadGateway,
		},
		{
			name:     "empty error field falls back to raw body",
			status:   http.StatusInternalServerError,
			body:     `{"error":""}`,
			wantMsg:  `{"error":""}`,
			wantCode: http.StatusInternalServerError,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(tc.status)
				w.Write([]byte(tc.body))
			}))
			defer ts.Close()

			c := NewClient(ts.URL, nil)
			_, err := c.Simulate(context.Background(), SimulateRequest{Model: "gnmt"})
			if err == nil {
				t.Fatalf("status %d returned nil error", tc.status)
			}
			if !strings.Contains(err.Error(), tc.wantMsg) {
				t.Errorf("error %q does not surface server body %q", err, tc.wantMsg)
			}
			var apiErr *APIError
			if !errors.As(err, &apiErr) {
				t.Fatalf("error %q is not an *APIError", err)
			}
			if apiErr.Status != tc.wantCode {
				t.Errorf("APIError.Status = %d, want %d", apiErr.Status, tc.wantCode)
			}
			if apiErr.Message != tc.wantMsg {
				t.Errorf("APIError.Message = %q, want %q", apiErr.Message, tc.wantMsg)
			}
		})
	}
}

// TestClientAcceptsAny2xx: a 204-style success with a valid JSON body
// must not be treated as an error.
func TestClientAcceptsAny2xx(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
		w.Write([]byte(`{"status":"ok"}`))
	}))
	defer ts.Close()
	if err := NewClient(ts.URL, nil).Health(context.Background()); err != nil {
		t.Errorf("202 treated as error: %v", err)
	}
}
