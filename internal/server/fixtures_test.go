package server

import (
	"bytes"
	"encoding/json"
	"flag"
	"net/http"
	"os"
	"path/filepath"
	"testing"
)

var updateFixtures = flag.Bool("update-fixtures", false, "rewrite the committed request/response wire fixtures")

// The committed fixtures pin the wire protocol of the serving-family
// endpoints: the request files are what clients send, the response
// files are what this server version answers. Both must round-trip
// through the typed structs unchanged — a field the structs don't
// cover, a renamed tag, or a drifted simulation all fail here.
//
// Regenerate after an intentional wire or model change with:
//
//	go test ./internal/server -run TestWireFixtures -update-fixtures

// fixtureRequests builds the typed request for each endpoint; the
// shapes deliberately exercise the shared envelope plus each request's
// own fields.
func fixtureRequests() map[string]struct {
	path string
	req  any
} {
	workload := WorkloadSpec{
		Model:    "gnmt",
		Rate:     300,
		Batch:    8,
		Requests: 32,
		Seed:     7,
		SeqLens:  []int{4, 7, 9, 12},
	}
	return map[string]struct {
		path string
		req  any
	}{
		"serve": {"/v1/serve", ServeRequest{WorkloadSpec: workload}},
		"fleet": {"/v1/fleet", FleetRequest{
			WorkloadSpec: workload,
			Replicas:     2,
			Routing:      "jsq",
			QueueCap:     16,
		}},
		"plan": {"/v1/plan", PlanRequest{
			WorkloadSpec: workload,
			SLO:          PlanSLO{LatencyP99US: 400_000, MinThroughputRPS: 50},
			MaxReplicas:  4,
			Routings:     []string{"rr", "jsq"},
		}},
	}
}

func fixturePath(name, kind string) string {
	return filepath.Join("testdata", name+"_"+kind+".json")
}

// marshalFixture renders a fixture the way the server renders bodies:
// indented JSON plus a trailing newline.
func marshalFixture(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(b, '\n')
}

func TestWireFixtures(t *testing.T) {
	s := testServer(Options{})
	for name, fx := range fixtureRequests() {
		t.Run(name, func(t *testing.T) {
			reqBytes := marshalFixture(t, fx.req)
			w := postJSON(t, s, fx.path, string(reqBytes))
			if w.Code != http.StatusOK {
				t.Fatalf("POST %s = %d: %s", fx.path, w.Code, w.Body.String())
			}

			if *updateFixtures {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(fixturePath(name, "request"), reqBytes, 0o644); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(fixturePath(name, "response"), w.Body.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("rewrote %s fixtures (%d + %d bytes)", name, len(reqBytes), w.Body.Len())
				return
			}

			// The committed request must equal the typed form — no field
			// was added, renamed or re-ordered without regenerating.
			wantReq, err := os.ReadFile(fixturePath(name, "request"))
			if err != nil {
				t.Fatalf("reading request fixture (regenerate with -update-fixtures): %v", err)
			}
			if !bytes.Equal(reqBytes, wantReq) {
				t.Errorf("typed %s request no longer matches its fixture:\n%s\nvs\n%s", name, reqBytes, wantReq)
			}

			// The live response must match the committed one byte for
			// byte — the simulation is deterministic and the wire shape
			// is pinned.
			wantResp, err := os.ReadFile(fixturePath(name, "response"))
			if err != nil {
				t.Fatalf("reading response fixture (regenerate with -update-fixtures): %v", err)
			}
			if !bytes.Equal(w.Body.Bytes(), wantResp) {
				t.Errorf("live %s response drifted from its fixture:\n%s\nvs\n%s", name, w.Body.String(), wantResp)
			}

			// Both fixtures round-trip strictly through the typed structs:
			// decode with unknown fields disallowed, re-encode, compare.
			roundTrip := func(fixture []byte, dst any) []byte {
				dec := json.NewDecoder(bytes.NewReader(fixture))
				dec.DisallowUnknownFields()
				if err := dec.Decode(dst); err != nil {
					t.Fatalf("typed struct does not cover fixture: %v", err)
				}
				return marshalFixture(t, dst)
			}
			switch name {
			case "serve":
				var req ServeRequest
				var resp ServeResponse
				if got := roundTrip(wantReq, &req); !bytes.Equal(got, wantReq) {
					t.Errorf("serve request round-trip changed:\n%s\nvs\n%s", got, wantReq)
				}
				if got := roundTrip(wantResp, &resp); !bytes.Equal(got, wantResp) {
					t.Errorf("serve response round-trip changed:\n%s\nvs\n%s", got, wantResp)
				}
			case "fleet":
				var req FleetRequest
				var resp FleetResponse
				if got := roundTrip(wantReq, &req); !bytes.Equal(got, wantReq) {
					t.Errorf("fleet request round-trip changed:\n%s\nvs\n%s", got, wantReq)
				}
				if got := roundTrip(wantResp, &resp); !bytes.Equal(got, wantResp) {
					t.Errorf("fleet response round-trip changed:\n%s\nvs\n%s", got, wantResp)
				}
			case "plan":
				var req PlanRequest
				var resp PlanResponse
				if got := roundTrip(wantReq, &req); !bytes.Equal(got, wantReq) {
					t.Errorf("plan request round-trip changed:\n%s\nvs\n%s", got, wantReq)
				}
				if got := roundTrip(wantResp, &resp); !bytes.Equal(got, wantResp) {
					t.Errorf("plan response round-trip changed:\n%s\nvs\n%s", got, wantResp)
				}
			}
		})
	}
}
