package server

import (
	"net/http"

	"seqpoint/internal/serving"
)

// ServeRequest describes one online-serving simulation over the wire:
// a Poisson arrival trace served under a batching policy on a single
// replica. It is exactly the shared workload envelope — Model and Rate
// are required; everything else defaults to a dynamic-batching serving
// setup on the paper's calibration configuration.
type ServeRequest struct {
	WorkloadSpec
}

// normalize fills defaults in place; the normalized form doubles as
// the coalescing identity.
func (r ServeRequest) normalize() ServeRequest {
	r.WorkloadSpec = r.WorkloadSpec.normalize()
	return r
}

// ServeResponse is the serving-simulation outcome over the wire.
type ServeResponse struct {
	// Model and Config echo the resolved request.
	Model  string `json:"model"`
	Config string `json:"config"`
	// Trace names the simulated arrival trace.
	Trace string `json:"trace"`
	// RatePerSec is the offered Poisson rate.
	RatePerSec float64 `json:"rate_rps"`
	// Summary is the serving roll-up: throughput, utilization and the
	// p50/p95/p99 latency tail.
	Summary serving.Summary `json:"summary"`
}

func (s *Server) handleServe(w http.ResponseWriter, r *http.Request) {
	var req ServeRequest
	if !s.decodePost(w, r, &req) {
		return
	}
	req = req.normalize()
	if err := s.validateWorkload(req.WorkloadSpec); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	workload, hw, policy, trace, err := buildWorkloadSetup(req.WorkloadSpec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	status, body := s.execute(r.Context(), coalesceKey("serve", req), func() (int, []byte) {
		res, err := serving.Simulate(serving.Spec{
			Model:    workload.Model,
			Trace:    trace,
			Policy:   policy,
			Profiles: s.eng,
			KV:       req.kvConfig(),
		}, hw)
		if err != nil {
			return http.StatusInternalServerError, errorBody(http.StatusInternalServerError, err)
		}
		return http.StatusOK, marshalBody(ServeResponse{
			Model:      req.Model,
			Config:     req.Config,
			Trace:      trace.Name,
			RatePerSec: req.Rate,
			Summary:    res.Summary(),
		})
	})
	writeRaw(w, status, body)
}
