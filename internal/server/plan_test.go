package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// planBody is a small, quickly-feasible planning request body the table
// cases mutate around.
const planBody = `{"model":"gnmt","rate":400,"batch":4,"requests":32,"seqlens":[4,7,9,12],"routings":["rr"],"max_replicas":4,"slo":{"min_throughput_rps":50}}`

func TestPlanHandlerTable(t *testing.T) {
	s := testServer(Options{})
	cases := []struct {
		name       string
		body       string
		wantStatus int
		wantInBody string
	}{
		{
			name:       "feasible plan with one routing",
			body:       planBody,
			wantStatus: http.StatusOK,
			wantInBody: `"bottleneck"`,
		},
		{
			name:       "default routing axis",
			body:       `{"model":"gnmt","rate":400,"batch":4,"requests":32,"seqlens":[4,7,9,12],"max_replicas":4,"slo":{"min_throughput_rps":50}}`,
			wantStatus: http.StatusOK,
			wantInBody: `"replicas"`,
		},
		{
			name:       "kv axis plans with the memory model",
			body:       `{"model":"gnmt","rate":400,"batch":4,"requests":32,"seqlens":[4,7,9,12],"routings":["rr"],"max_replicas":4,"kv_capacities_gb":[1],"slo":{"ttft_p99_us":1000000,"min_throughput_rps":10}}`,
			wantStatus: http.StatusOK,
			wantInBody: `"kv_capacity_gb": 1`,
		},
		{
			name:       "infeasible slo is 422",
			body:       `{"model":"gnmt","rate":400,"batch":4,"requests":32,"seqlens":[4,7,9,12],"routings":["rr"],"max_replicas":2,"slo":{"latency_p99_us":1}}`,
			wantStatus: http.StatusUnprocessableEntity,
			wantInBody: `"code":"infeasible"`,
		},
		{
			name:       "empty slo",
			body:       `{"model":"gnmt","rate":400,"slo":{}}`,
			wantStatus: http.StatusBadRequest,
			wantInBody: "at least one target",
		},
		{
			name:       "ttft target without kv model",
			body:       `{"model":"gnmt","rate":400,"slo":{"ttft_p99_us":5000}}`,
			wantStatus: http.StatusBadRequest,
			wantInBody: `"code":"kv_capacity"`,
		},
		{
			name:       "kv routing without kv model",
			body:       `{"model":"gnmt","rate":400,"routings":["kv"],"slo":{"min_throughput_rps":50}}`,
			wantStatus: http.StatusBadRequest,
			wantInBody: `"code":"kv_capacity"`,
		},
		{
			name:       "negative max replicas",
			body:       `{"model":"gnmt","rate":400,"max_replicas":-1,"slo":{"min_throughput_rps":50}}`,
			wantStatus: http.StatusBadRequest,
			wantInBody: "max_replicas must be positive",
		},
		{
			name:       "max replicas over the fleet limit",
			body:       `{"model":"gnmt","rate":400,"max_replicas":100,"slo":{"min_throughput_rps":50}}`,
			wantStatus: http.StatusBadRequest,
			wantInBody: "replica limit",
		},
		{
			name:       "unknown routing",
			body:       `{"model":"gnmt","rate":400,"routings":["random"],"slo":{"min_throughput_rps":50}}`,
			wantStatus: http.StatusBadRequest,
			wantInBody: "unknown routing",
		},
		{
			name:       "unknown policy in axis",
			body:       `{"model":"gnmt","rate":400,"policies":["bogus"],"slo":{"min_throughput_rps":50}}`,
			wantStatus: http.StatusBadRequest,
			wantInBody: "unknown policy",
		},
		{
			name:       "non-positive kv capacity entry",
			body:       `{"model":"gnmt","rate":400,"kv_capacities_gb":[-1],"slo":{"min_throughput_rps":50}}`,
			wantStatus: http.StatusBadRequest,
			wantInBody: `"code":"kv_capacity"`,
		},
		{
			name:       "axis length limit",
			body:       `{"model":"gnmt","rate":400,"routings":["rr","rr","rr","rr","rr","rr","rr","rr","rr"],"slo":{"min_throughput_rps":50}}`,
			wantStatus: http.StatusBadRequest,
			wantInBody: "entry limit",
		},
		{
			name:       "combination limit",
			body:       `{"model":"gnmt","rate":400,"policies":["fixed","dynamic","length"],"kv_capacities_gb":[1,2,3],"slo":{"min_throughput_rps":50}}`,
			wantStatus: http.StatusBadRequest,
			wantInBody: "combination limit",
		},
		{
			name:       "negative queue cap",
			body:       `{"model":"gnmt","rate":400,"queue_cap":-1,"slo":{"min_throughput_rps":50}}`,
			wantStatus: http.StatusBadRequest,
			wantInBody: "queue_cap",
		},
		{
			name:       "workload validation applies",
			body:       `{"model":"gnmt","rate":-1,"slo":{"min_throughput_rps":50}}`,
			wantStatus: http.StatusBadRequest,
			wantInBody: "rate must be in",
		},
		{
			name:       "unknown model",
			body:       `{"model":"bert","rate":400,"slo":{"min_throughput_rps":50}}`,
			wantStatus: http.StatusBadRequest,
			wantInBody: "unknown model",
		},
		{
			name:       "unknown field rejected",
			body:       `{"model":"gnmt","rate":400,"replicas":3,"slo":{"min_throughput_rps":50}}`,
			wantStatus: http.StatusBadRequest,
			wantInBody: "unknown field",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := postJSON(t, s, "/v1/plan", tc.body)
			if w.Code != tc.wantStatus {
				t.Fatalf("status = %d, want %d; body %s", w.Code, tc.wantStatus, w.Body.String())
			}
			if !strings.Contains(w.Body.String(), tc.wantInBody) {
				t.Errorf("body %s missing %q", w.Body.String(), tc.wantInBody)
			}
		})
	}
}

func TestPlanGetMethodNotAllowed(t *testing.T) {
	s := testServer(Options{})
	req := httptest.NewRequest(http.MethodGet, "/v1/plan", nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/plan = %d, want 405", w.Code)
	}
}

// TestPlanDeterministicAcrossRequests: planning is a pure function of
// the request — repeat requests must produce byte-identical bodies.
func TestPlanDeterministicAcrossRequests(t *testing.T) {
	s := testServer(Options{})
	first := postJSON(t, s, "/v1/plan", planBody)
	if first.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", first.Code, first.Body.String())
	}
	second := postJSON(t, s, "/v1/plan", planBody)
	if first.Body.String() != second.Body.String() {
		t.Errorf("repeat plan request differs:\n%s\nvs\n%s", first.Body.String(), second.Body.String())
	}
}

// TestPlanClientRoundTrip drives /v1/plan through the typed client and
// checks the plan's invariants: a minimal replica count within bounds,
// SLO evidence for every target, and the machine-readable code on the
// infeasible path.
func TestPlanClientRoundTrip(t *testing.T) {
	ts := httptest.NewServer(testServer(Options{}))
	defer ts.Close()
	c := NewClient(ts.URL, nil)

	req := PlanRequest{
		WorkloadSpec: WorkloadSpec{
			Model:    "gnmt",
			Rate:     400,
			Batch:    4,
			Requests: 32,
			SeqLens:  []int{4, 7, 9, 12},
		},
		SLO:         PlanSLO{MinThroughputRPS: 50, LatencyP99US: 400_000},
		MaxReplicas: 4,
		Routings:    []string{"rr", "jsq"},
	}
	resp, err := c.Plan(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Model != "gnmt" || resp.RatePerSec != 400 {
		t.Errorf("echo fields wrong: %+v", resp)
	}
	plan := resp.Plan
	if plan.Replicas < 1 || plan.Replicas > 4 {
		t.Errorf("replicas = %d outside [1, 4]", plan.Replicas)
	}
	if len(plan.SLO) != 2 {
		t.Errorf("plan reports %d SLO dimensions, want 2", len(plan.SLO))
	}
	for _, d := range plan.SLO {
		if !d.OK {
			t.Errorf("chosen plan violates %s: %+v", d.Name, d)
		}
	}
	if plan.Saturation.Bottleneck == "" || plan.Saturation.KneeRPS < 400 {
		t.Errorf("degenerate saturation analysis: %+v", plan.Saturation)
	}
	if plan.Evaluations <= 0 {
		t.Error("plan reports no probe evaluations")
	}

	// Infeasible targets surface as a typed 422 with the machine code.
	req.SLO = PlanSLO{LatencyP99US: 1}
	_, err = c.Plan(context.Background(), req)
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("want *APIError, got %v", err)
	}
	if apiErr.Status != http.StatusUnprocessableEntity || apiErr.Code != CodeInfeasible {
		t.Errorf("status/code = %d/%q, want 422/%q", apiErr.Status, apiErr.Code, CodeInfeasible)
	}
}

// TestPlanResponseShape decodes a live response strictly: every field
// the server emits must exist in the typed structs.
func TestPlanResponseShape(t *testing.T) {
	s := testServer(Options{})
	w := postJSON(t, s, "/v1/plan", planBody)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", w.Code, w.Body.String())
	}
	dec := json.NewDecoder(strings.NewReader(w.Body.String()))
	dec.DisallowUnknownFields()
	var resp PlanResponse
	if err := dec.Decode(&resp); err != nil {
		t.Fatalf("typed PlanResponse does not cover the wire shape: %v", err)
	}
	if resp.Plan.Summary.Served == 0 {
		t.Errorf("plan summary served nothing: %+v", resp.Plan.Summary)
	}
}
