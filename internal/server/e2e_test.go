package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"seqpoint/internal/engine"
)

// TestE2EConcurrentDeterminism starts the server on a real listener
// (random port), fires many concurrent requests — identical and mixed —
// and asserts every response body is byte-identical to the sequential
// in-process path: the engine's determinism contract must survive the
// HTTP layer, the limiter and coalescing.
func TestE2EConcurrentDeterminism(t *testing.T) {
	eng := engine.New()
	srv := New(Options{Engine: eng, MaxInflight: 8})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	requests := []SimulateRequest{
		{Model: "gnmt", Batch: 8, SeqLens: testSeqLens},
		{Model: "gnmt", Batch: 8, SeqLens: testSeqLens, GPUs: 4},
		{Model: "seq2seq", Batch: 8, SeqLens: testSeqLens, Config: "#3"},
	}

	// Sequential ground truth through a fresh engine: what a one-shot
	// local process would answer.
	want := make([][]byte, len(requests))
	for i, req := range requests {
		spec, hw, err := buildSpec(req.normalize())
		if err != nil {
			t.Fatalf("building spec %d: %v", i, err)
		}
		ref := engine.New()
		ref.SetParallelism(1)
		spec.Profiles = ref
		run, err := ref.Simulate(spec, hw)
		if err != nil {
			t.Fatalf("reference run %d: %v", i, err)
		}
		want[i], err = run.Summary().Serialize()
		if err != nil {
			t.Fatal(err)
		}
	}

	const perRequest = 8
	var wg sync.WaitGroup
	errs := make(chan error, len(requests)*perRequest)
	for i, req := range requests {
		for j := 0; j < perRequest; j++ {
			wg.Add(1)
			go func(i int, req SimulateRequest) {
				defer wg.Done()
				body, status, err := rawSimulate(ts.URL, req)
				if err != nil {
					errs <- fmt.Errorf("request %d: %v", i, err)
					return
				}
				if status != http.StatusOK {
					errs <- fmt.Errorf("request %d: HTTP %d: %s", i, status, body)
					return
				}
				if !bytes.Equal(body, want[i]) {
					errs <- fmt.Errorf("request %d: served body differs from sequential path:\n%s\nvs\n%s", i, body, want[i])
				}
			}(i, req)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The typed client must agree with the raw wire bytes.
	cl := NewClient(ts.URL, nil)
	sum, err := cl.Simulate(context.Background(), requests[0])
	if err != nil {
		t.Fatalf("client simulate: %v", err)
	}
	got, err := sum.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want[0]) {
		t.Fatalf("client round-trip drifted from wire bytes:\n%s\nvs\n%s", got, want[0])
	}

	// 24 requests over 3 unique queries: coalescing and the cache must
	// have shared nearly all the work.
	stats := srv.Stats()
	if stats.Coalesced == 0 {
		t.Error("no requests were coalesced despite identical concurrent queries")
	}
	if stats.Engine.Hits == 0 {
		t.Errorf("no cache hits across identical queries: %+v", stats.Engine)
	}

	if err := cl.Health(context.Background()); err != nil {
		t.Fatalf("health: %v", err)
	}
}

// TestE2EClientSweepAndSeqPoint exercises the remaining typed-client
// surface against a live server.
func TestE2EClientSweepAndSeqPoint(t *testing.T) {
	srv := New(Options{Engine: engine.New()})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	cl := NewClient(ts.URL, nil)

	sweep, err := cl.Sweep(context.Background(), SweepRequest{
		Tasks: []SimulateRequest{
			{Model: "gnmt", Batch: 8, SeqLens: testSeqLens},
			{Model: "gnmt", Batch: 8, SeqLens: testSeqLens, Config: "#2"},
		},
		Parallelism: 2,
	})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if len(sweep.Results) != 2 {
		t.Fatalf("sweep returned %d results, want 2", len(sweep.Results))
	}
	for i, res := range sweep.Results {
		if res.Error != "" || res.Summary == nil {
			t.Fatalf("sweep task %d failed: %+v", i, res)
		}
	}
	if sweep.Results[0].Summary.TrainUS >= sweep.Results[1].Summary.TrainUS {
		t.Fatalf("downclocked #2 should be slower than #1: %v vs %v",
			sweep.Results[0].Summary.TrainUS, sweep.Results[1].Summary.TrainUS)
	}

	sel, err := cl.SeqPoint(context.Background(), SeqPointRequest{
		SimulateRequest:    SimulateRequest{Model: "gnmt", Batch: 4, SeqLens: testSeqLens},
		MaxUniqueNoBinning: 2,
		ErrorThresholdPct:  5,
	})
	if err != nil {
		t.Fatalf("seqpoint: %v", err)
	}
	if len(sel.Points) == 0 || sel.UniqueSLs == 0 {
		t.Fatalf("empty selection: %+v", sel)
	}
	if !sel.Binned {
		t.Fatalf("selection over %d unique SLs with n=2 should have binned", sel.UniqueSLs)
	}

	// Error surfaces verbatim through the typed client.
	if _, err := cl.Simulate(context.Background(), SimulateRequest{Model: "nope"}); err == nil {
		t.Fatal("unknown model did not error through the client")
	}
}

// rawSimulate posts one simulate request and returns the raw body.
func rawSimulate(baseURL string, req SimulateRequest) ([]byte, int, error) {
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, 0, err
	}
	resp, err := http.Post(baseURL+"/v1/simulate", "application/json", bytes.NewReader(payload))
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return body, resp.StatusCode, err
}
