package server

import (
	"errors"
	"fmt"
	"math"
	"net/http"

	"seqpoint/internal/experiments"
	"seqpoint/internal/planner"
	"seqpoint/internal/serving"
)

// Defaults and bounds for PlanRequest fields.
const (
	// DefaultPlanMaxReplicas bounds the replica search when the request
	// leaves it zero.
	DefaultPlanMaxReplicas = planner.DefaultMaxReplicas
	// maxPlanAxis caps one search axis's length; maxPlanCombos caps the
	// routing × policy × KV cross product. Each combination costs
	// O(log max_replicas) fleet simulations, so the caps bound one
	// request's work the way replicas and requests already are.
	maxPlanAxis   = 8
	maxPlanCombos = 32
)

// PlanSLO is the wire form of the planner's target envelope. Zero
// (or absent) targets are untargeted; at least one must be set.
type PlanSLO struct {
	// TTFTP99US caps p99 time-to-first-token; needs the KV model.
	TTFTP99US float64 `json:"ttft_p99_us,omitempty"`
	// LatencyP99US caps p99 end-to-end latency.
	LatencyP99US float64 `json:"latency_p99_us,omitempty"`
	// MinThroughputRPS floors served throughput.
	MinThroughputRPS float64 `json:"min_throughput_rps,omitempty"`
	// MaxDropRatePct caps the admission drop rate in percent; a
	// pointer so an explicit 0 ("drop nothing") is distinct from
	// untargeted.
	MaxDropRatePct *float64 `json:"max_drop_rate_pct,omitempty"`
	// TenantTTFTP99US caps p99 time-to-first-token per tenant label
	// (e.g. {"chat-0": 20000}); needs the KV model and a multi-tenant
	// workload (tenants or a tenanted trace_file).
	TenantTTFTP99US map[string]float64 `json:"tenant_ttft_p99_us,omitempty"`
}

// slo maps the wire form to the planner's.
func (s PlanSLO) slo() planner.SLO {
	return planner.SLO{
		TTFTP99US:        s.TTFTP99US,
		LatencyP99US:     s.LatencyP99US,
		MinThroughputRPS: s.MinThroughputRPS,
		MaxDropRatePct:   s.MaxDropRatePct,
		TenantTTFTP99US:  s.TenantTTFTP99US,
	}
}

// PlanRequest asks for the minimal fleet meeting an SLO: the shared
// workload envelope (model, rate, batching policy, trace shape, KV
// base config) plus the targets and the search bounds. The planner
// decides replicas and routing — they are outputs, not inputs.
type PlanRequest struct {
	WorkloadSpec
	// SLO is the target envelope; at least one target must be set.
	SLO PlanSLO `json:"slo"`
	// MaxReplicas bounds the replica search; 0 uses
	// DefaultPlanMaxReplicas.
	MaxReplicas int `json:"max_replicas,omitempty"`
	// Routings is the routing axis, searched in order; empty uses the
	// planner's default ("rr", "least", "jsq", "po2").
	Routings []string `json:"routings,omitempty"`
	// Policies optionally widens the search across batching policies
	// ("fixed", "dynamic", "length"); empty searches only the
	// envelope's policy.
	Policies []string `json:"policies,omitempty"`
	// KVCapacitiesGB optionally searches per-replica KV capacities;
	// empty keeps the envelope's kv_capacity_gb (or no KV model).
	KVCapacitiesGB []float64 `json:"kv_capacities_gb,omitempty"`
	// QueueCap bounds each replica's admission queue; 0 is unbounded.
	QueueCap int `json:"queue_cap,omitempty"`
}

// normalize fills defaults in place; the normalized form doubles as
// the coalescing identity.
func (r PlanRequest) normalize() PlanRequest {
	r.WorkloadSpec = r.WorkloadSpec.normalize()
	if r.MaxReplicas == 0 {
		r.MaxReplicas = DefaultPlanMaxReplicas
	}
	if len(r.Routings) == 0 {
		r.Routings = planner.DefaultRoutings()
	}
	return r
}

// hasKV reports whether any candidate the search can produce carries
// the KV model.
func (r PlanRequest) hasKV() bool {
	return r.KVCapacityGB != nil || len(r.KVCapacitiesGB) > 0
}

// validatePlan applies the server's request-shape limits on top of
// the shared workload-envelope checks.
func (s *Server) validatePlan(r PlanRequest) error {
	if err := s.validateWorkload(r.WorkloadSpec); err != nil {
		return err
	}
	if err := r.SLO.slo().Validate(); err != nil {
		return err
	}
	if (r.SLO.TTFTP99US > 0 || len(r.SLO.TenantTTFTP99US) > 0) && !r.hasKV() {
		return withCode(CodeKVCapacity,
			fmt.Errorf("ttft_p99_us target needs the KV model: set kv_capacity_gb or kv_capacities_gb"))
	}
	if r.TraceFile != "" && r.Rate <= 0 {
		return fmt.Errorf("plan needs rate even with trace_file: the planner searches the load axis by rescaling the trace")
	}
	switch {
	case r.MaxReplicas < 1:
		return fmt.Errorf("max_replicas must be positive, got %d", r.MaxReplicas)
	case r.MaxReplicas > maxFleetReplicas:
		return fmt.Errorf("max_replicas %d exceeds the %d-replica limit", r.MaxReplicas, maxFleetReplicas)
	case r.QueueCap < 0:
		return fmt.Errorf("queue_cap must be non-negative, got %d", r.QueueCap)
	case len(r.Routings) > maxPlanAxis:
		return fmt.Errorf("routings lists %d entries, more than the %d-entry limit", len(r.Routings), maxPlanAxis)
	case len(r.Policies) > maxPlanAxis:
		return fmt.Errorf("policies lists %d entries, more than the %d-entry limit", len(r.Policies), maxPlanAxis)
	case len(r.KVCapacitiesGB) > maxPlanAxis:
		return fmt.Errorf("kv_capacities_gb lists %d entries, more than the %d-entry limit", len(r.KVCapacitiesGB), maxPlanAxis)
	}
	combos := len(r.Routings) * max(1, len(r.Policies)) * max(1, len(r.KVCapacitiesGB))
	if combos > maxPlanCombos {
		return fmt.Errorf("routings × policies × kv_capacities_gb spans %d combinations, more than the %d-combination limit",
			combos, maxPlanCombos)
	}
	for _, rt := range r.Routings {
		if _, err := serving.ParseRouting(rt, r.Seed); err != nil {
			return err
		}
		if rt == serving.RoutingKV && !r.hasKV() {
			return withCode(CodeKVCapacity, fmt.Errorf("kv routing needs the KV model: set kv_capacity_gb or kv_capacities_gb"))
		}
	}
	for _, p := range r.Policies {
		if _, err := serving.ParsePolicy(p, r.Batch, *r.TimeoutUS); err != nil {
			return err
		}
	}
	for _, gb := range r.KVCapacitiesGB {
		if gb <= 0 || math.IsNaN(gb) || math.IsInf(gb, 0) {
			return withCode(CodeKVCapacity, fmt.Errorf("kv_capacities_gb entries must be positive finite sizes, got %v", gb))
		}
	}
	return nil
}

// PlanResponse is the planning outcome over the wire.
type PlanResponse struct {
	// Model and Config echo the resolved request.
	Model  string `json:"model"`
	Config string `json:"config"`
	// RatePerSec is the offered rate the plan carries.
	RatePerSec float64 `json:"rate_rps"`
	// Plan is the minimal-cost candidate with its SLO evidence and
	// saturation analysis.
	Plan planner.Plan `json:"plan"`
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	var req PlanRequest
	if !s.decodePost(w, r, &req) {
		return
	}
	req = req.normalize()
	if err := s.validatePlan(req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Resolve the envelope exactly as /v1/serve and /v1/fleet do — the
	// probe re-derives traces per searched rate, but this validates the
	// model/config/policy/corpus combination up front as a 400.
	workload, hw, policy, setupTrace, err := buildWorkloadSetup(req.WorkloadSpec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	workload.Batch = req.Batch
	workload.Seed = req.Seed
	probeCfg := experiments.PlanProbeConfig{
		Requests:        req.Requests,
		QueueCap:        req.QueueCap,
		KV:              req.kvConfig(),
		Policy:          policy,
		PolicyTimeoutUS: *req.TimeoutUS,
	}
	switch {
	case req.TraceFile != "":
		// The probe rescales the recorded trace per searched rate, so it
		// needs the unscaled original, not the rate-scaled setup trace.
		raw, err := loadTraceFile(req.TraceFile, 0)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		probeCfg.Trace = &raw
	case len(req.Tenants) > 0 || req.Pattern != "":
		// A generated workload searches the load axis the same way: the
		// setup trace carries the tenant mix, clumps and diurnal shape,
		// and the probe compresses or dilates it per probed rate —
		// substituting a memoryless Poisson process here would erase the
		// very tenants a tenant_ttft_p99_us SLO targets.
		probeCfg.Trace = &setupTrace
	}
	probe, err := experiments.PlanProbe(s.eng, workload, hw, probeCfg)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}

	status, body := s.execute(r.Context(), coalesceKey("plan", req), func() (int, []byte) {
		plan, err := planner.Solve(planner.Spec{
			SLO:            req.SLO.slo(),
			RatePerSec:     req.Rate,
			MaxReplicas:    req.MaxReplicas,
			Routings:       req.Routings,
			Policies:       req.Policies,
			KVCapacitiesGB: req.KVCapacitiesGB,
			Probe:          probe,
		})
		if errors.Is(err, planner.ErrInfeasible) {
			return http.StatusUnprocessableEntity, errorBody(http.StatusUnprocessableEntity, err)
		}
		if err != nil {
			return http.StatusInternalServerError, errorBody(http.StatusInternalServerError, err)
		}
		return http.StatusOK, marshalBody(PlanResponse{
			Model:      req.Model,
			Config:     req.Config,
			RatePerSec: req.Rate,
			Plan:       plan,
		})
	})
	writeRaw(w, status, body)
}
