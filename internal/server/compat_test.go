package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// strictDecode decodes with DisallowUnknownFields, the same mode the
// server's handlers use.
func strictDecode(t *testing.T, body string, dst any) {
	t.Helper()
	dec := json.NewDecoder(strings.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		t.Fatalf("strict decode of %s: %v", body, err)
	}
}

// TestWorkloadEnvelopeWireCompat: moving the shared fields into the
// embedded WorkloadSpec must not change the wire protocol. The flat
// JSON shapes clients sent before the envelope existed still decode —
// strictly — into the typed requests, land in the embedded struct, and
// re-encode without any nesting artifact.
func TestWorkloadEnvelopeWireCompat(t *testing.T) {
	// A pre-envelope /v1/serve body exercising every shared field.
	serveJSON := `{
		"model": "gnmt",
		"rate": 500,
		"config": "#2",
		"batch": 8,
		"policy": "dynamic",
		"timeout_us": 20000,
		"requests": 64,
		"seed": 7,
		"seqlens": [4, 7, 9],
		"kv_capacity_gb": 2,
		"decode_steps": 16,
		"kv_preempt": "block"
	}`
	var serve ServeRequest
	strictDecode(t, serveJSON, &serve)
	if serve.Model != "gnmt" || serve.Rate != 500 || serve.Config != "#2" {
		t.Errorf("flat fields did not land in the embedded envelope: %+v", serve.WorkloadSpec)
	}
	if serve.TimeoutUS == nil || *serve.TimeoutUS != 20000 {
		t.Errorf("timeout_us = %v, want 20000", serve.TimeoutUS)
	}
	if serve.KVCapacityGB == nil || *serve.KVCapacityGB != 2 || serve.DecodeSteps != 16 || serve.KVPreempt != "block" {
		t.Errorf("KV knobs did not land: %+v", serve.WorkloadSpec)
	}

	// A pre-envelope /v1/fleet body: shared fields plus fleet-only ones.
	fleetJSON := `{"model":"gnmt","rate":500,"batch":8,"replicas":3,"routing":"jsq","queue_cap":16,"autoscale":{"max":4}}`
	var fleet FleetRequest
	strictDecode(t, fleetJSON, &fleet)
	if fleet.Model != "gnmt" || fleet.Replicas != 3 || fleet.Routing != "jsq" || fleet.Autoscale == nil {
		t.Errorf("fleet decode: %+v", fleet)
	}

	// Re-encoding stays flat: no "WorkloadSpec" key, shared fields at
	// the top level.
	for name, v := range map[string]any{"serve": serve, "fleet": fleet} {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if strings.Contains(string(b), "WorkloadSpec") || strings.Contains(string(b), "workload") {
			t.Errorf("%s request nests the envelope on the wire: %s", name, b)
		}
		if !strings.Contains(string(b), `"model":"gnmt"`) {
			t.Errorf("%s request lost the flat model field: %s", name, b)
		}
	}

	// The decoded old-shape bodies are also still valid requests
	// end-to-end.
	s := testServer(Options{})
	if w := postJSON(t, s, "/v1/serve", serveJSON); w.Code != http.StatusOK {
		t.Errorf("old-shape serve body = %d: %s", w.Code, w.Body.String())
	}
	if w := postJSON(t, s, "/v1/fleet", fleetJSON); w.Code != http.StatusOK {
		t.Errorf("old-shape fleet body = %d: %s", w.Code, w.Body.String())
	}
}

// TestWorkloadEnvelopeSharedValidation: the envelope gives all three
// endpoints one validation path — the same malformed shared field must
// fail identically everywhere.
func TestWorkloadEnvelopeSharedValidation(t *testing.T) {
	s := testServer(Options{})
	bodies := map[string]string{
		"/v1/serve": `{"model":"gnmt","rate":100,"decode_steps":4}`,
		"/v1/fleet": `{"model":"gnmt","rate":100,"decode_steps":4,"replicas":2}`,
		"/v1/plan":  `{"model":"gnmt","rate":100,"decode_steps":4,"slo":{"min_throughput_rps":1}}`,
	}
	var messages []string
	for path, body := range bodies {
		w := postJSON(t, s, path, body)
		if w.Code != http.StatusBadRequest {
			t.Fatalf("%s: status = %d, want 400; body %s", path, w.Code, w.Body.String())
		}
		var er errorResponse
		if err := json.Unmarshal(w.Body.Bytes(), &er); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if er.Code != CodeKVCapacity {
			t.Errorf("%s: code = %q, want %q", path, er.Code, CodeKVCapacity)
		}
		messages = append(messages, er.Error)
	}
	for _, m := range messages[1:] {
		if m != messages[0] {
			t.Errorf("endpoints diverge on the shared validation message: %q vs %q", m, messages[0])
		}
	}
}
